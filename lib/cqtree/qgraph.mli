(** Query graphs and their tree-width (Section 4, Theorem 4.1).

    The tree-width of a conjunctive query over (at most) binary relations
    is the tree-width of the graph on its variables with an edge per binary
    atom.  Queries of tree-width k are evaluable in time
    O((|A|^(k+1) + ‖A‖)·|Q|); the acyclic queries are exactly those of
    tree-width 1 (when connected), and conjunctive FO^(k+1) queries have
    tree-width ≤ k. *)

val graph : Query.t -> Treewidth.Graph.t * Query.var array
(** The query graph plus the variable numbering used for its vertices. *)

val treewidth_upper : Query.t -> int
(** Upper bound from the min-fill elimination heuristic. *)

val treewidth_exact : Query.t -> int
(** Exact tree-width (queries with at most 24 variables). *)
