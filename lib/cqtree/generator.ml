open Query

let var i = Printf.sprintf "V%d" i

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let label_atoms rng ~labels ~nvars =
  List.filter_map
    (fun i ->
      if Random.State.bool rng then
        Some (U (Lab labels.(Random.State.int rng (Array.length labels)), var i))
      else None)
    (List.init nvars Fun.id)

let head_of ?(head_arity = 1) nvars =
  List.init (min head_arity nvars) var

let state ?rng seed = match rng with Some r -> r | None -> Random.State.make [| seed |]

let acyclic ?(seed = 7) ?rng ~nvars ~axes ~labels ?(extra_atom_prob = 0.0) ?head_arity () =
  if nvars < 1 then invalid_arg "Generator.acyclic: need at least one variable";
  let rng = state ?rng seed in
  let bin = ref [] in
  for i = 1 to nvars - 1 do
    let j = Random.State.int rng i in
    let a = pick rng axes in
    (* random orientation of the atom along the spanning-tree edge *)
    let atom =
      if Random.State.bool rng then A (a, var j, var i) else A (a, var i, var j)
    in
    bin := atom :: !bin;
    if Random.State.float rng 1.0 < extra_atom_prob then begin
      let a' = pick rng axes in
      let atom' =
        if Random.State.bool rng then A (a', var j, var i) else A (a', var i, var j)
      in
      bin := atom' :: !bin
    end
  done;
  let unaries = label_atoms rng ~labels ~nvars in
  let atoms =
    if nvars = 1 && unaries = [] then
      [ U (Lab labels.(0), var 0) ]
    else unaries @ List.rev !bin
  in
  (* a 1-variable query needs at least one atom for safety *)
  let atoms = if atoms = [] then [ U (True, var 0) ] else atoms in
  { head = head_of ?head_arity nvars; atoms }

let arbitrary ?(seed = 7) ?rng ~nvars ~natoms ~axes ~labels ?head_arity () =
  if nvars < 1 then invalid_arg "Generator.arbitrary: need at least one variable";
  let rng = state ?rng seed in
  let bin =
    List.init natoms (fun _ ->
        let i = Random.State.int rng nvars in
        let j = Random.State.int rng nvars in
        let j = if i = j then (j + 1) mod nvars else j in
        if i = j then None
        else Some (A (pick rng axes, var i, var j)))
    |> List.filter_map Fun.id
  in
  let unaries = label_atoms rng ~labels ~nvars in
  let touched =
    List.concat_map (function A (_, x, y) -> [ x; y ] | U (_, x) -> [ x ]) (bin @ unaries)
  in
  let safety =
    List.filter_map
      (fun i ->
        if List.mem (var i) touched then None
        else Some (U (Lab labels.(Random.State.int rng (Array.length labels)), var i)))
      (List.init nvars Fun.id)
  in
  { head = head_of ?head_arity nvars; atoms = safety @ unaries @ bin }

let path_query ~axis ~labels =
  match labels with
  | [] -> invalid_arg "Generator.path_query: empty label list"
  | l0 :: rest ->
    let atoms = ref [ U (Lab l0, var 0) ] in
    List.iteri
      (fun i l ->
        atoms := U (Lab l, var (i + 1)) :: A (axis, var i, var (i + 1)) :: !atoms)
      rest;
    { head = [ var 0 ]; atoms = List.rev !atoms }
