open Query

type dir = Down | Up

type node = {
  var : var;
  unaries : unary list;
  edges : ((Treekit.Axis.t * dir) list * node) list;
}

type t = { components : node list; query : Query.t }

let adjacency q =
  (* merged edges: map unordered var pair -> atoms *)
  let unaries : (var, unary) Hashtbl.t = Hashtbl.create 8 in
  let edges : (var * var, (Treekit.Axis.t * dir) list) Hashtbl.t = Hashtbl.create 8 in
  let neighbours : (var, var) Hashtbl.t = Hashtbl.create 8 in
  let add_neighbour x y =
    if not (List.mem y (Hashtbl.find_all neighbours x)) then Hashtbl.add neighbours x y
  in
  List.iter
    (function
      | U (u, x) -> Hashtbl.add unaries x u
      | A (a, x, y) ->
        if x = y then begin
          (* a self-loop: reflexive-closure axes hold on every (v, v), so
             the atom is trivially true and is dropped; all other axes are
             irreflexive, so the variable has no possible value *)
          match a with
          | Treekit.Axis.Descendant_or_self | Treekit.Axis.Following_sibling_or_self
          | Treekit.Axis.Ancestor_or_self | Treekit.Axis.Preceding_sibling_or_self
          | Treekit.Axis.Self ->
            ()
          | _ -> Hashtbl.add unaries x False
        end
        else begin
          let key = if x < y then (x, y) else (y, x) in
          let d = if x < y then Down else Up in
          (* record orientation relative to the pair (smaller, larger):
             Down = atom is axis(smaller, larger) *)
          let prev = Option.value ~default:[] (Hashtbl.find_opt edges key) in
          Hashtbl.replace edges key ((a, d) :: prev);
          add_neighbour x y;
          add_neighbour y x
        end)
    q.atoms;
  (unaries, edges, neighbours)

let build ?root q =
  match check q with
  | Error m -> Error m
  | Ok () ->
    let q = normalize_forward q in
    let unaries, edges, neighbours = adjacency q in
    begin
      let vs = vars q in
      let visited = Hashtbl.create 8 in
      let cyclic = ref false in
      (* DFS building a rooted tree per component *)
      let rec grow parent x =
        Hashtbl.replace visited x ();
        let kids =
          List.filter_map
            (fun y ->
              if Some y = parent then None
              else if Hashtbl.mem visited y then begin
                cyclic := true;
                None
              end
              else begin
                let key = if x < y then (x, y) else (y, x) in
                let atoms = Hashtbl.find edges key in
                (* orientations were recorded relative to (smaller, larger);
                   re-express relative to (x = parent, y = child) *)
                let atoms =
                  List.map
                    (fun (a, d) ->
                      let d' =
                        if x < y then d
                        else match d with Down -> Up | Up -> Down
                      in
                      (a, d'))
                    atoms
                in
                Some (atoms, grow (Some x) y)
              end)
            (Hashtbl.find_all neighbours x)
        in
        { var = x; unaries = Hashtbl.find_all unaries x; edges = kids }
      in
      let preferred_root =
        match root with
        | Some r -> Some r
        | None -> ( match q.head with h :: _ -> Some h | [] -> None)
      in
      let components = ref [] in
      (match preferred_root with
      | Some r when List.mem r vs -> components := [ grow None r ]
      | _ -> ());
      List.iter
        (fun x -> if not (Hashtbl.mem visited x) then components := grow None x :: !components)
        vs;
      if !cyclic then Error "query graph is cyclic"
      else Ok { components = List.rev !components; query = q }
    end

let is_acyclic q = match build q with Ok _ -> true | Error _ -> false

let rec node_vars node = node.var :: List.concat_map (fun (_, c) -> node_vars c) node.edges

let rec fold_bottom_up f node =
  let child_results = List.map (fun (_, c) -> fold_bottom_up f c) node.edges in
  f child_results node
