(** Yannakakis' algorithm for acyclic conjunctive queries on trees
    (Section 4, Proposition 4.2; full reduction, Section 6).

    The join tree of an acyclic query over axis relations is its variable
    tree ({!Join_tree}); a semijoin step against an axis relation is a
    set-at-a-time axis image ({!Treekit.Axis.image}), which costs O(n) —
    so the whole bottom-up pass costs O(‖A‖ · |Q|), the bound of
    Proposition 4.2, {e without materialising any (possibly quadratic)
    axis relation}.

    - {!boolean}: one bottom-up semijoin pass per component;
    - {!unary}: the join tree is rooted at the head variable, so the root
      domain after the bottom-up pass {e is} the answer (the paper: "the
      join tree has to be oriented such that the output is a subset of a
      column of the input relation at the root");
    - {!domains}: bottom-up + top-down = a {e full reducer}; the reduced
      domains are exactly the maximal arc-consistent pre-valuation of
      Section 6 (tested against {!Actree.Arc_consistency});
    - {!solutions}: backtracking-free enumeration over the reduced
      domains (Proposition 6.9 guarantees no dead ends). *)

exception Cyclic of string
(** Raised when the query graph is cyclic (use {!Rewrite} or
    {!Actree} instead). *)

val domains :
  ?env:Query.env -> Query.t -> Treekit.Tree.t -> (Query.var * Treekit.Nodeset.t) list
(** Fully reduced per-variable domains (the maximal arc-consistent
    pre-valuation restricted to the join forest).  All domains are empty
    iff the query is unsatisfiable on the tree.
    @raise Cyclic *)

val boolean : ?env:Query.env -> Query.t -> Treekit.Tree.t -> bool
(** @raise Cyclic *)

val unary : ?env:Query.env -> Query.t -> Treekit.Tree.t -> Treekit.Nodeset.t
(** @raise Cyclic
    @raise Invalid_argument if the query is not unary *)

val solutions : ?env:Query.env -> Query.t -> Treekit.Tree.t -> int array list
(** All head tuples, sorted, deduplicated.  Enumeration is
    backtracking-free over the reduced domains; note the cost is
    output-sensitive in the number of {e full} assignments when the head
    projects variables away.
    @raise Cyclic *)
