open Query

let graph q =
  let vs = Array.of_list (vars q) in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.add index x i) vs;
  let g = Treewidth.Graph.create (Array.length vs) in
  List.iter
    (function
      | A (_, x, y) when x <> y ->
        Treewidth.Graph.add_edge g (Hashtbl.find index x) (Hashtbl.find index y)
      | A _ | U _ -> ())
    q.atoms;
  (g, vs)

let treewidth_upper q =
  let g, _ = graph q in
  Treewidth.Decomposition.width (Treewidth.Decomposition.min_fill_heuristic g)

let treewidth_exact q =
  let g, _ = graph q in
  Treewidth.Decomposition.exact_treewidth g
