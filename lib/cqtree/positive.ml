module Nodeset = Treekit.Nodeset

type t = { arity : int; disjuncts : Query.t list }

let make disjuncts =
  match disjuncts with
  | [] -> invalid_arg "Positive.make: empty union"
  | first :: rest ->
    List.iter
      (fun q ->
        match Query.check q with
        | Ok () -> ()
        | Error m -> invalid_arg ("Positive.make: " ^ m))
      disjuncts;
    let arity = List.length first.Query.head in
    if List.exists (fun q -> List.length q.Query.head <> arity) rest then
      invalid_arg "Positive.make: disjuncts have different head arities";
    { arity; disjuncts }

let of_strings ss = make (List.map Query.of_string ss)

let boolean ?env u tree =
  List.exists (fun q -> Rewrite.boolean ?env q tree) u.disjuncts

let unary ?env u tree =
  if u.arity <> 1 then invalid_arg "Positive.unary: arity is not 1";
  let out = Nodeset.create (Treekit.Tree.size tree) in
  List.iter (fun q -> Nodeset.union_into out (Rewrite.unary ?env q tree)) u.disjuncts;
  out

let solutions ?env u tree =
  List.sort_uniq compare
    (List.concat_map (fun q -> Rewrite.solutions ?env q tree) u.disjuncts)

let boolean_naive ?env u tree =
  List.exists (fun q -> Naive.boolean ?env q tree) u.disjuncts

let solutions_naive ?env u tree =
  List.sort_uniq compare
    (List.concat_map (fun q -> Naive.solutions ?env q tree) u.disjuncts)

let pp fmt u =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i q ->
      Format.fprintf fmt "%s %a@," (if i = 0 then "   " else "or ") Query.pp q)
    u.disjuncts;
  Format.fprintf fmt "@]"
