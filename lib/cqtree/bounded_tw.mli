(** Conjunctive-query evaluation through query tree decompositions —
    Theorem 4.1 ([17] Chekuri–Rajaraman):

    "A Boolean conjunctive query Q of tree-width k can be evaluated on a
    database A with domain A in time O((|A|^(k+1) + ‖A‖) · |Q|)."

    The algorithm: take a tree decomposition of the query graph (here the
    min-fill heuristic of {!Treewidth}), materialise one relation per bag —
    all assignments of the bag's ≤ k+1 variables satisfying the atoms
    covered by that bag (at most |A|^(k+1) tuples) — and evaluate the
    resulting {e acyclic} query over those relations with the relational
    Yannakakis algorithm ({!Relkit.Acyclic}).  This subsumes the acyclic
    case (k = 1) and handles arbitrary cyclic queries in polynomial time
    for fixed k, which is how FOᵏ⁺¹-expressible conjunctive queries stay
    tractable (Section 4). *)

val decomposition_width : Query.t -> int
(** The width of the decomposition that {!solutions} will use (min-fill
    upper bound on the query's tree-width). *)

val solutions : ?env:Query.env -> Query.t -> Treekit.Tree.t -> int array list
(** All head tuples, sorted, deduplicated.  Works for any conjunctive
    query; cost O(n^(w+1)·|Q|) for decomposition width w. *)

val boolean : ?env:Query.env -> Query.t -> Treekit.Tree.t -> bool

val unary : ?env:Query.env -> Query.t -> Treekit.Tree.t -> Treekit.Nodeset.t
(** @raise Invalid_argument if the query is not unary. *)
