module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
open Query

let check_unary tree env u v =
  match u with
  | Lab a -> Tree.label tree v = a
  | Root -> Tree.is_root tree v
  | Leaf -> Tree.is_leaf tree v
  | First_sibling -> Tree.is_first_sibling tree v
  | Last_sibling -> Tree.is_last_sibling tree v
  | Named p -> (
    match List.assoc_opt p env with
    | Some s -> Nodeset.mem s v
    | None -> invalid_arg ("unbound named predicate " ^ p))
  | False -> false
  | True -> true

let holds ?(env = []) q tree theta =
  List.for_all
    (function
      | U (u, x) -> check_unary tree env u (theta x)
      | A (a, x, y) -> Axis.mem tree a (theta x) (theta y))
    q.atoms

let enumerate ?(env = []) q tree ~on_solution =
  (match check q with Ok () -> () | Error m -> invalid_arg ("Naive: " ^ m));
  let vs = Array.of_list (vars q) in
  let k = Array.length vs in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.add index x i) vs;
  let n = Tree.size tree in
  (* per-variable candidate filters from unary atoms *)
  let unary_ok = Array.make k [] in
  let binary = ref [] in
  List.iter
    (function
      | U (u, x) ->
        let i = Hashtbl.find index x in
        unary_ok.(i) <- u :: unary_ok.(i)
      | A (a, x, y) -> binary := (a, Hashtbl.find index x, Hashtbl.find index y) :: !binary)
    q.atoms;
  let binary = !binary in
  let assignment = Array.make k (-1) in
  (* check the binary atoms whose endpoints are both ≤ i *)
  let checks_at = Array.make k [] in
  List.iter
    (fun (a, ix, iy) ->
      let last = max ix iy in
      checks_at.(last) <- (a, ix, iy) :: checks_at.(last))
    binary;
  let rec go i =
    if i = k then on_solution assignment
    else
      for v = 0 to n - 1 do
        if List.for_all (fun u -> check_unary tree env u v) unary_ok.(i) then begin
          assignment.(i) <- v;
          if
            List.for_all
              (fun (a, ix, iy) -> Axis.mem tree a assignment.(ix) assignment.(iy))
              checks_at.(i)
          then go (i + 1);
          assignment.(i) <- -1
        end
      done
  in
  go 0

exception Found

let boolean ?env q tree =
  try
    enumerate ?env q tree ~on_solution:(fun _ -> raise Found);
    false
  with Found -> true

let unary ?env q tree =
  if not (is_unary q) then invalid_arg "Naive.unary: query is not unary";
  let out = Nodeset.create (Tree.size tree) in
  let head = List.hd q.head in
  let pos =
    let rec find i = function
      | [] -> assert false
      | x :: _ when x = head -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 (vars q)
  in
  enumerate ?env q tree ~on_solution:(fun a -> Nodeset.add out a.(pos));
  out

let solutions ?env q tree =
  let vs = vars q in
  let positions =
    List.map
      (fun h ->
        let rec find i = function
          | [] -> assert false
          | x :: _ when x = h -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 vs)
      q.head
  in
  let seen = Hashtbl.create 64 in
  enumerate ?env q tree ~on_solution:(fun a ->
      let tuple = Array.of_list (List.map (fun i -> a.(i)) positions) in
      Hashtbl.replace seen tuple ());
  List.sort compare (Hashtbl.fold (fun t () acc -> t :: acc) seen [])
