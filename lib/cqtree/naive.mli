(** Naive backtracking evaluation of conjunctive queries.

    The brute-force baseline: try all assignments of variables to nodes,
    pruning with unary predicates and checking binary atoms as soon as both
    endpoints are bound.  Worst-case O(nᵏ) for k variables — this is the
    NP-hard general case (Theorem 6.8's intractable side) and the baseline
    every efficient technique in the paper is measured against.

    Used as ground truth in tests (on small inputs) and in the Figure 7
    benchmarks. *)

val boolean : ?env:Query.env -> Query.t -> Treekit.Tree.t -> bool

val unary : ?env:Query.env -> Query.t -> Treekit.Tree.t -> Treekit.Nodeset.t
(** All witnesses of the (single) head variable.
    @raise Invalid_argument if the query is not unary. *)

val solutions : ?env:Query.env -> Query.t -> Treekit.Tree.t -> int array list
(** All head tuples, sorted lexicographically, without duplicates. *)

val holds :
  ?env:Query.env -> Query.t -> Treekit.Tree.t -> (Query.var -> int) -> bool
(** [holds q t θ] checks whether the total valuation [θ] satisfies every
    atom of [q] — the paper's notion of a consistent valuation. *)
