(** Random conjunctive-query workloads for tests and benchmarks.

    All generators are deterministic given their [seed] and draw axes from
    a configurable pool so that the signature-restricted experiments
    (Corollary 6.7's τ₁/τ₂/τ₃ classes, the Table 1 fragment, forward-only
    queries) can be generated directly.  An explicit [rng] takes
    precedence over [seed] and is advanced in place, so composed
    generation through one state is bit-reproducible. *)

val acyclic :
  ?seed:int ->
  ?rng:Random.State.t ->
  nvars:int ->
  axes:Treekit.Axis.t list ->
  labels:string array ->
  ?extra_atom_prob:float ->
  ?head_arity:int ->
  unit ->
  Query.t
(** A random tree-shaped query: variables [V0 … V(nvars-1)], a random
    spanning tree of binary atoms with axes drawn from [axes], each
    variable labeled with probability 1/2, plus (with probability
    [extra_atom_prob] per edge, default 0) a parallel atom on an existing
    edge.  [head_arity] (default 1) picks the first variables as head. *)

val arbitrary :
  ?seed:int ->
  ?rng:Random.State.t ->
  nvars:int ->
  natoms:int ->
  axes:Treekit.Axis.t list ->
  labels:string array ->
  ?head_arity:int ->
  unit ->
  Query.t
(** A random, possibly cyclic query: [natoms] binary atoms over random
    variable pairs (loops avoided), unary label atoms with probability 1/2
    per variable.  Variables not touched by any atom get a label atom so
    the query stays safe. *)

val path_query : axis:Treekit.Axis.t -> labels:string list -> Query.t
(** The path (twig spine) query
    [q(X0) ← Lab_{l0}(X0), axis(X0,X1), Lab_{l1}(X1), …] — the shape of the
    holistic-path-join workloads of Section 6. *)
