(** Positive first-order queries (Section 5, Corollary 5.2).

    A positive FO query (no negation, no universal quantification) is,
    after DNF normalisation, a finite union of conjunctive queries.  By
    Theorem 5.1 every disjunct rewrites into a union of acyclic positive
    queries, so "a fixed positive Boolean FO query can be evaluated on
    trees A in time O(‖A‖)" (Corollary 5.2) — the union is fixed with the
    query, each acyclic member costs O(‖A‖·|Q'|).

    A value of this type is the union of conjunctive queries with a common
    head arity. *)

type t = { arity : int; disjuncts : Query.t list }

val make : Query.t list -> t
(** @raise Invalid_argument if the list is empty, some query is malformed,
    or head arities differ. *)

val of_strings : string list -> t
(** Parse each disjunct with {!Query.of_string}. *)

val boolean : ?env:Query.env -> t -> Treekit.Tree.t -> bool
(** Via {!Rewrite} per disjunct. *)

val unary : ?env:Query.env -> t -> Treekit.Tree.t -> Treekit.Nodeset.t

val solutions : ?env:Query.env -> t -> Treekit.Tree.t -> int array list
(** Sorted union of the disjuncts' answers. *)

val boolean_naive : ?env:Query.env -> t -> Treekit.Tree.t -> bool
(** Reference implementation over {!Naive}; used by tests. *)

val solutions_naive : ?env:Query.env -> t -> Treekit.Tree.t -> int array list

val pp : Format.formatter -> t -> unit
