module Axis = Treekit.Axis
module Tree = Treekit.Tree

let axes = [ Axis.Child; Axis.Descendant; Axis.Next_sibling; Axis.Following_sibling ]

let sat r s =
  let check a =
    if not (List.mem a axes) then
      invalid_arg ("Sat_table.sat: axis outside the table: " ^ Axis.name a)
  in
  check r;
  check s;
  match r with
  | Axis.Child -> ( match s with Axis.Child | Axis.Descendant -> false | _ -> true)
  | Axis.Descendant -> true
  | Axis.Next_sibling -> false
  | Axis.Following_sibling -> (
    match s with Axis.Child | Axis.Descendant -> false | _ -> true)
  | _ -> assert false

let brute_force r s ~max_size =
  let witness_in tree =
    let n = Tree.size tree in
    let found = ref false in
    for z = 0 to n - 1 do
      for x = 0 to n - 1 do
        if Axis.mem tree r x z then
          for y = x + 1 to n - 1 do
            (* x <pre y is x < y since nodes are pre-order ranks *)
            if Axis.mem tree s y z then found := true
          done
      done
    done;
    !found
  in
  let rec sizes k =
    if k > max_size then false
    else List.exists witness_in (Treekit.Generator.all_shapes ~n:k) || sizes (k + 1)
  in
  sizes 1
