(** Table 1 of the paper: satisfiability of
    [R(x,z) ∧ S(y,z) ∧ x <pre y] for pairs of axes
    [R, S ∈ {Child, Child⁺, NextSibling, NextSibling⁺}].

    This table drives the rewriting step of Theorem 5.1 ({!Rewrite}): when
    two atoms share a target variable [z] and the order of their sources is
    known, an unsatisfiable cell kills the branch and a satisfiable cell
    licenses replacing [R(x,z)] by [R(x,y)].

    The paper's table:

    {v
    R \ S          Child   Child⁺  NextSib  NextSib⁺
    Child          unsat   unsat   sat      sat
    Child⁺         sat     sat     sat      sat
    NextSibling    unsat   unsat   unsat    unsat
    NextSibling⁺   unsat   unsat   sat      sat
    v}

    {!brute_force} recomputes each cell by exhaustive search over all
    ordered trees up to a given size, which is how the benchmark
    [table1] verifies the table empirically. *)

val axes : Treekit.Axis.t list
(** The four axes of the table, in the paper's order:
    [Child; Descendant; Next_sibling; Following_sibling]. *)

val sat : Treekit.Axis.t -> Treekit.Axis.t -> bool
(** [sat r s] is the table cell for row [r], column [s].
    @raise Invalid_argument if either axis is outside {!axes}. *)

val brute_force : Treekit.Axis.t -> Treekit.Axis.t -> max_size:int -> bool
(** True iff some tree with at most [max_size] nodes contains nodes
    [x, y, z] with [r(x,z)], [s(y,z)] and [x <pre y].  A witness for every
    satisfiable cell exists already at size 4, so [max_size = 5] settles
    the whole table. *)
