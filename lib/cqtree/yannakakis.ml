module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
open Query

exception Cyclic of string

(* one bump per join-tree edge per sweep direction, so a full
   bottom-up + top-down reduction records at most 2·(#binary atoms)
   passes — the semijoin program of Prop. 4.2 *)
let c_semijoin = Obs.Counter.make "semijoin_passes"

let c_domain = Obs.Counter.make "domain_nodes_retained"

let c_tuples = Obs.Counter.make "tuples_materialised"

let initial_domain tree env unaries =
  let n = Tree.size tree in
  let d = Nodeset.universe n in
  List.iter
    (fun u ->
      match u with
      | Lab a -> Nodeset.inter_into d (Tree.label_set tree a)
      | Root ->
        let s = Nodeset.create n in
        Nodeset.add s (Tree.root tree);
        Nodeset.inter_into d s
      | Leaf ->
        let s = Nodeset.create n in
        for v = 0 to n - 1 do
          if Tree.is_leaf tree v then Nodeset.add s v
        done;
        Nodeset.inter_into d s
      | First_sibling ->
        let s = Nodeset.create n in
        for v = 0 to n - 1 do
          if Tree.is_first_sibling tree v then Nodeset.add s v
        done;
        Nodeset.inter_into d s
      | Last_sibling ->
        let s = Nodeset.create n in
        for v = 0 to n - 1 do
          if Tree.is_last_sibling tree v then Nodeset.add s v
        done;
        Nodeset.inter_into d s
      | Named p -> (
        match List.assoc_opt p env with
        | Some s -> Nodeset.inter_into d s
        | None -> invalid_arg ("Yannakakis: unbound named predicate " ^ p))
      | False -> Nodeset.clear d
      | True -> ())
    unaries;
  d

(* the axis relating a parent-variable value to a child-variable value,
   read in the parent→child direction *)
let toward_child (axis, dir) =
  match (dir : Join_tree.dir) with Down -> axis | Up -> Axis.inverse axis

let toward_parent (axis, dir) =
  match (dir : Join_tree.dir) with Down -> Axis.inverse axis | Up -> axis

let build_tree ?root q =
  match Join_tree.build ?root q with Ok jt -> jt | Error m -> raise (Cyclic m)

(* Image of a source set under the conjunction of the edge's atoms, read in
   the given direction.  A single atom is a plain O(n) axis image; parallel
   atoms must be witnessed by the SAME source node, so we enumerate one
   atom's relation and filter with the rest. *)
let edge_image tree axes src =
  match axes with
  | [] -> assert false
  | [ a ] -> Axis.image tree a src
  | first :: others ->
    let out = Nodeset.create (Tree.size tree) in
    Nodeset.iter
      (fun w ->
        Axis.fold tree first w
          (fun u () ->
            if List.for_all (fun a -> Axis.mem tree a w u) others then Nodeset.add out u)
          ())
      src;
    out

(* As [edge_image], but intersected with [within] output-sensitively: a
   single-atom edge probes the candidates already retained in the target
   domain rather than materialising the full image first. *)
let edge_image_within tree axes src ~within =
  match axes with
  | [ a ] -> Axis.image_within tree a src within
  | _ -> Nodeset.inter (edge_image tree axes src) within

(* bottom-up semijoin pass; fills [domains] for every variable of the
   component and returns the root's domain *)
let rec bottom_up tree env domains (node : Join_tree.node) =
  let d = initial_domain tree env node.unaries in
  List.iter
    (fun (atoms, child) ->
      let dc = bottom_up tree env domains child in
      Obs.Counter.incr c_semijoin;
      Nodeset.inter_into d
        (edge_image_within tree (List.map toward_parent atoms) dc ~within:d))
    node.edges;
  Hashtbl.replace domains node.var d;
  Obs.Counter.add c_domain (Nodeset.cardinal d);
  d

let rec top_down tree domains (node : Join_tree.node) =
  let d = Hashtbl.find domains node.var in
  List.iter
    (fun (atoms, (child : Join_tree.node)) ->
      let dc = Hashtbl.find domains child.var in
      Obs.Counter.incr c_semijoin;
      Nodeset.inter_into dc
        (edge_image_within tree (List.map toward_child atoms) d ~within:dc);
      top_down tree domains child)
    node.edges

let domains ?(env = []) q tree =
  let jt = build_tree q in
  let tbl = Hashtbl.create 16 in
  let unsat =
    Obs.Span.with_ "yannakakis:bottom-up" (fun () ->
        List.exists
          (fun root -> Nodeset.is_empty (bottom_up tree env tbl root))
          jt.components)
  in
  Obs.Span.with_ "yannakakis:top-down" (fun () ->
      List.iter (fun root -> top_down tree tbl root) jt.components);
  let all_vars = List.concat_map Join_tree.node_vars jt.components in
  if unsat then
    List.map (fun v -> (v, Nodeset.create (Tree.size tree))) all_vars
  else List.map (fun v -> (v, Hashtbl.find tbl v)) all_vars

let boolean ?(env = []) q tree =
  let jt = build_tree q in
  let tbl = Hashtbl.create 16 in
  Obs.Span.with_ "yannakakis:bottom-up" (fun () ->
      List.for_all
        (fun root -> not (Nodeset.is_empty (bottom_up tree env tbl root)))
        jt.components)

let unary ?(env = []) q tree =
  if not (is_unary q) then invalid_arg "Yannakakis.unary: query is not unary";
  (* normalisation may unify the head variable away (Self atoms), so take
     the head name from the normalised query *)
  let q = normalize_forward q in
  let head = List.hd q.head in
  let jt = build_tree ~root:head q in
  let tbl = Hashtbl.create 16 in
  let results =
    Obs.Span.with_ "yannakakis:bottom-up" (fun () ->
        List.map (fun root -> bottom_up tree env tbl root) jt.components)
  in
  (* the component rooted at the head variable yields the answer; the other
     components act as a Boolean filter *)
  match jt.components, results with
  | first :: _, answer :: others when first.var = head ->
    if List.exists Nodeset.is_empty others then Nodeset.create (Tree.size tree)
    else answer
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Enumeration over fully reduced domains (backtracking-free,
   Proposition 6.9). *)

let enumerate_component tree domains (root : Join_tree.node) ~on_assignment =
  (* Depth-first assignment with continuations; with fully reduced domains
     no branch dies (Proposition 6.9), so this never backtracks on failure. *)
  let assignment : (var, int) Hashtbl.t = Hashtbl.create 8 in
  let rec assigned (node : Join_tree.node) v cont =
    Hashtbl.replace assignment node.var v;
    edges_from v node.edges cont
  and edges_from v edges cont =
    match edges with
    | [] -> cont ()
    | (atoms, child) :: rest ->
      let dc = Hashtbl.find domains child.Join_tree.var in
      (match atoms with
      | [] -> assert false (* join-tree edges always carry at least one atom *)
      | first :: others ->
        (* candidates for the child come from folding the first atom's
           relation from v; the remaining atoms and the reduced domain act
           as filters *)
        Axis.fold tree (toward_child first) v
          (fun w () ->
            if
              Nodeset.mem dc w
              && List.for_all (fun e -> Axis.mem tree (toward_child e) v w) others
            then assigned child w (fun () -> edges_from v rest cont))
          ())
  in
  Nodeset.iter
    (fun v -> assigned root v (fun () -> on_assignment assignment))
    (Hashtbl.find domains root.Join_tree.var)

let solutions ?(env = []) q tree =
  let jt = build_tree q in
  let q = jt.query in
  let tbl = Hashtbl.create 16 in
  let unsat =
    Obs.Span.with_ "yannakakis:bottom-up" (fun () ->
        List.exists
          (fun root -> Nodeset.is_empty (bottom_up tree env tbl root))
          jt.components)
  in
  if unsat then []
  else begin
    Obs.Span.with_ "yannakakis:top-down" (fun () ->
        List.iter (fun root -> top_down tree tbl root) jt.components);
    (* enumerate per component, projecting onto the head variables that
       live in it; combine components by cartesian product (they share no
       variables) *)
    let comp_results =
      Obs.Span.with_ "yannakakis:enumerate" (fun () ->
          List.map
            (fun root ->
              let cvars = Join_tree.node_vars root in
              let head_here = List.filter (fun h -> List.mem h cvars) q.head in
              let seen = Hashtbl.create 64 in
              enumerate_component tree tbl root ~on_assignment:(fun asg ->
                  let tuple = List.map (fun h -> Hashtbl.find asg h) head_here in
                  Hashtbl.replace seen tuple ());
              (head_here, Hashtbl.fold (fun tpl () acc -> tpl :: acc) seen []))
            jt.components)
    in
    if List.exists (fun (_, tuples) -> tuples = []) comp_results then []
    else begin
      let rec cross acc = function
        | [] -> [ acc ]
        | (hvars, tuples) :: rest ->
          List.concat_map (fun tpl -> cross (List.combine hvars tpl @ acc) rest) tuples
      in
      let assignments = cross [] comp_results in
      let tuples =
        List.map
          (fun asg -> Array.of_list (List.map (fun h -> List.assoc h asg) q.head))
          assignments
      in
      Obs.Counter.add c_tuples (List.length tuples);
      List.sort_uniq compare tuples
    end
  end
