(** Theorem 5.1: every conjunctive query over trees rewrites into an
    equivalent union of acyclic positive queries.

    The proof's algorithm, with the "Discussion" improvements from [35]:
    instead of materialising the full disjunctive normal form of
    [⋀ᵢ<ⱼ (xᵢ = xⱼ ∨ xᵢ <pre xⱼ ∨ xⱼ <pre xᵢ)] (3^(k choose 2) branches),
    we branch on the order of a variable pair {e only} when a pair of atoms
    [R(x,z), S(y,z)] with a shared target actually needs resolving.

    Pipeline per branch state:
    + [Following(x,y)] atoms are eliminated first via fresh variables
      ([∃x₀ y₀. NextSibling⁺(x₀,y₀) ∧ Child*(x₀,x) ∧ Child*(y₀,y)],
      Section 2);
    + [R*(x,y)] atoms branch into [x = y] (unification) or [R⁺(x,y)]
      (proof step 2);
    + [R(x,y) ∧ R⁺(x,y)] drops the transitive atom (proof step 3);
    + [R(x,y) ∧ S(x,y)] with [R] a child-family and [S] a sibling-family
      axis is unsatisfiable, as is any cycle in the constraint digraph;
    + a shared-target pair [R(x,z), S(y,z)] consults {!Sat_table} under the
      branch's order of [x, y] and either kills the branch or replaces the
      earlier atom's target by the later source.

    The output queries use only the axes
    [{Child, Child⁺, NextSibling, NextSibling⁺}], have at most one binary
    atom into each variable (forest-shaped), and their union is equivalent
    to the input (property-tested against {!Naive} on random queries and
    trees).  The rewriting is worst-case exponential — necessarily so
    ([35]): there are queries over [Child⁺] with no polynomial acyclic
    equivalent. *)

type result = {
  queries : Query.t list;  (** the union of acyclic queries; [[]] means the
                               input is unsatisfiable on every tree *)
  branches_explored : int;  (** number of branch states processed *)
}

exception Too_many_branches
(** Raised by {!rewrite} when the branch-state budget is exhausted; the
    rewriting is worst-case exponential, so callers that can decline
    (e.g. {!Xpath.Forward}) should treat this as "not rewritable". *)

val rewrite : Query.t -> result
(** Rewrite a (possibly cyclic) conjunctive query.  The input is
    forward-normalised first; inverse axes are allowed.
    @raise Too_many_branches past [200_000] explored branch states. *)

val solutions : ?env:Query.env -> Query.t -> Treekit.Tree.t -> int array list
(** Evaluate by rewriting and unioning {!Yannakakis.solutions} over the
    acyclic queries.  Sorted, deduplicated. *)

val boolean : ?env:Query.env -> Query.t -> Treekit.Tree.t -> bool

val unary : ?env:Query.env -> Query.t -> Treekit.Tree.t -> Treekit.Nodeset.t
