(** Conjunctive queries over trees (Sections 3–6).

    A conjunctive query is a positive FO query without disjunction, written
    here as a set of atoms over variables: unary atoms (node labels, τ⁺
    unary predicates, or externally supplied node sets) and binary atoms
    whose relations are the axes of {!Treekit.Axis}.  The head is a list of
    variables: [[]] for a Boolean query, a singleton for a unary query,
    longer lists for k-ary queries.

    Example (the paper's Section 6 shapes):
    [q(x) ← Lab_a(x), Child⁺(x, y), Lab_b(y)] is
    [{ head = ["x"]; atoms = [U (Lab "a", "x"); A (Descendant, "x", "y");
       U (Lab "b", "y")] }]. *)

type var = string

type unary =
  | Lab of string  (** the labeling relation [Lab_a] *)
  | Root
  | Leaf
  | First_sibling
  | Last_sibling
  | Named of string
      (** an externally supplied node set — how the paper's reduction from
          k-ary to Boolean queries adds singleton relations [Xᵢ = {aᵢ}]
          (after Theorem 6.5) *)
  | False
      (** the empty set; used internally to mark variables with
          unsatisfiable constraints (e.g. an irreflexive self-loop) *)
  | True
      (** the set of all nodes ([Dom]); used to keep a variable safe when
          all its other atoms simplify away *)

type atom =
  | U of unary * var
  | A of Treekit.Axis.t * var * var
      (** [A (axis, x, y)] is the atom [axis(x, y)] *)

type t = { head : var list; atoms : atom list }

type env = (string * Treekit.Nodeset.t) list
(** Interpretations for [Named] predicates. *)

val vars : t -> var list
(** All distinct variables, head variables first, in order of appearance. *)

val is_boolean : t -> bool
val is_unary : t -> bool

val atom_count : t -> int

val check : t -> (unit, string) result
(** Well-formedness: every head variable occurs in some atom (safety) and
    the query has at least one variable. *)

val rename : (var -> var) -> t -> t
(** Apply a variable substitution to head and atoms. *)

val normalize_forward : t -> t
(** Replace every inverse-axis atom [A⁻¹(x,y)] by [A(y,x)] and every
    [Self(x,y)] atom by unifying [x] and [y]; the result uses only the
    forward axes of {!Treekit.Axis.forward} minus [Self].  Semantics are
    preserved. *)

val signature : t -> Treekit.Axis.t list
(** The distinct axes used by binary atoms, after forward normalisation. *)

val of_string : string -> t
(** Parse the datalog-rule notation used throughout:
    {v q(X) :- lab(X, "a"), descendant(X, Y), lab(Y, "b"). v}
    Binary predicate names are axis names as accepted by
    {!Treekit.Axis.of_name} (so both ["descendant"] and ["child+"] work);
    unary names: [root], [leaf], [firstsibling], [lastsibling], [lab],
    anything else is a [Named] set.  A Boolean query is written [q :- …].
    @raise Failure on syntax errors. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
