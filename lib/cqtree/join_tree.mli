(** Join trees of acyclic conjunctive queries (Section 4).

    For queries over unary and binary (axis) relations, the hypergraph
    acyclicity of the paper coincides with forest-ness of the query graph
    once parallel atoms between the same variable pair are merged into one
    edge.  A join tree here is that forest: one rooted variable-tree per
    connected component, edges carrying all the axis atoms that connect the
    two variables.

    Yannakakis' algorithm ({!Yannakakis}) and the enumeration algorithm of
    Figure 6 ({!Actree.Enumerate}) both run over this structure. *)

type dir =
  | Down  (** the atom reads [axis(parent_var, child_var)] *)
  | Up  (** the atom reads [axis(child_var, parent_var)] *)

type node = {
  var : Query.var;
  unaries : Query.unary list;  (** unary atoms on this variable *)
  edges : ((Treekit.Axis.t * dir) list * node) list;
      (** children with the atoms labelling the connecting edge *)
}

type t = {
  components : node list;  (** one rooted tree per connected component *)
  query : Query.t;
}

val build : ?root:Query.var -> Query.t -> (t, string) result
(** Build the join forest, rooting the component containing [root] (default:
    the first head variable, if any) at that variable.  Fails with a
    message if the query graph is cyclic.  The query is forward-normalised
    first. *)

val is_acyclic : Query.t -> bool
(** True iff the query graph (parallel edges merged) is a forest — the
    acyclic conjunctive queries of hypertree-width 1. *)

val node_vars : node -> Query.var list
(** Variables of a component in pre-order. *)

val fold_bottom_up : ('a list -> node -> 'a) -> node -> 'a
(** [fold_bottom_up f root] computes [f] at every node, children first. *)
