module Axis = Treekit.Axis

type var = string

type unary =
  | Lab of string
  | Root
  | Leaf
  | First_sibling
  | Last_sibling
  | Named of string
  | False
  | True

type atom = U of unary * var | A of Axis.t * var * var

type t = { head : var list; atoms : atom list }

type env = (string * Treekit.Nodeset.t) list

let atom_vars = function U (_, x) -> [ x ] | A (_, x, y) -> [ x; y ]

let vars q =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      out := x :: !out
    end
  in
  List.iter visit q.head;
  List.iter (fun a -> List.iter visit (atom_vars a)) q.atoms;
  List.rev !out

let is_boolean q = q.head = []
let is_unary q = List.length q.head = 1

let atom_count q = List.length q.atoms

let check q =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let body_vars = List.concat_map atom_vars q.atoms in
  if body_vars = [] then err "query has no atoms"
  else
    let rec go = function
      | [] -> Ok ()
      | h :: rest ->
        if List.mem h body_vars then go rest
        else err "head variable %s does not occur in the body" h
    in
    go q.head

let rename f q =
  {
    head = List.map f q.head;
    atoms =
      List.map
        (function U (u, x) -> U (u, f x) | A (a, x, y) -> A (a, f x, f y))
        q.atoms;
  }

let normalize_forward q =
  (* first unify away Self atoms *)
  let subst = Hashtbl.create 4 in
  let rec resolve x =
    match Hashtbl.find_opt subst x with None -> x | Some y -> resolve y
  in
  List.iter
    (function
      | A (Axis.Self, x, y) ->
        let x = resolve x and y = resolve y in
        if x <> y then Hashtbl.replace subst y x
      | _ -> ())
    q.atoms;
  let q = rename resolve q in
  let atoms =
    List.filter_map
      (function
        | A (Axis.Self, _, _) -> None
        | A (a, x, y) when not (Axis.is_forward a) -> Some (A (Axis.inverse a, y, x))
        | a -> Some a)
      q.atoms
  in
  { q with atoms }

let signature q =
  let q = normalize_forward q in
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  List.iter
    (function
      | A (a, _, _) ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.add seen a ();
          out := a :: !out
        end
      | U _ -> ())
    q.atoms;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Concrete syntax *)

let fail fmt = Format.kasprintf failwith fmt

let of_string input =
  (* q(X, Y) :- atom, atom, ... .   — tokenisation is simple enough to do
     with a cursor *)
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while
      (match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false)
    do
      incr pos
    done
  in
  let is_word = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '+' | '*' -> true
    | _ -> false
  in
  let word () =
    skip_ws ();
    let start = !pos in
    while (match peek () with Some c when is_word c -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a name at offset %d" start;
    String.sub input start (!pos - start)
  in
  let eat c what =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail "expected %s at offset %d" what !pos
  in
  let string_lit () =
    skip_ws ();
    eat '"' "'\"'";
    let start = !pos in
    while (match peek () with Some '"' -> false | Some _ -> true | None -> false) do
      incr pos
    done;
    let s = String.sub input start (!pos - start) in
    eat '"' "closing '\"'";
    s
  in
  let is_var w = w <> "" && (match w.[0] with 'A' .. 'Z' | '_' -> true | _ -> false) in
  (* head *)
  let _qname = word () in
  skip_ws ();
  let head =
    match peek () with
    | Some '(' ->
      incr pos;
      let rec go acc =
        let w = word () in
        if not (is_var w) then fail "head arguments must be variables";
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          go (w :: acc)
        | Some ')' ->
          incr pos;
          List.rev (w :: acc)
        | _ -> fail "expected ',' or ')' in head"
      in
      go []
    | _ -> []
  in
  eat ':' "':-'";
  eat '-' "':-'";
  let parse_atom () =
    let name = word () in
    eat '(' "'('" ;
    let first = word () in
    if not (is_var first) then fail "atom arguments must start with a variable";
    skip_ws ();
    match peek () with
    | Some ')' ->
      incr pos;
      let u =
        match String.lowercase_ascii name with
        | "root" -> Root
        | "leaf" -> Leaf
        | "firstsibling" -> First_sibling
        | "lastsibling" -> Last_sibling
        | "lab" -> fail "lab needs a label argument: lab(X, \"a\")"
        | other -> (
          match Axis.of_name other with
          | Some _ -> fail "%s is a binary axis and needs two arguments" other
          | None -> Named other)
      in
      U (u, first)
    | Some ',' ->
      incr pos;
      skip_ws ();
      let atom =
        match peek () with
        | Some '"' ->
          if String.lowercase_ascii name <> "lab" then
            fail "only lab takes a string argument";
          U (Lab (string_lit ()), first)
        | _ ->
          let second = word () in
          if not (is_var second) then fail "expected a variable";
          (match Axis.of_name name with
          | Some a -> A (a, first, second)
          | None -> fail "unknown axis %s" name)
      in
      eat ')' "')'";
      atom
    | _ -> fail "expected ',' or ')' at offset %d" !pos
  in
  let rec atoms acc =
    let a = parse_atom () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      incr pos;
      atoms (a :: acc)
    | Some '.' ->
      incr pos;
      List.rev (a :: acc)
    | None -> List.rev (a :: acc)
    | _ -> fail "expected ',' or '.' at offset %d" !pos
  in
  let q = { head; atoms = atoms [] } in
  (match check q with Ok () -> () | Error m -> fail "%s" m);
  q

let atom_to_string = function
  | U (Lab a, x) -> Printf.sprintf "lab(%s, \"%s\")" x a
  | U (Root, x) -> Printf.sprintf "root(%s)" x
  | U (Leaf, x) -> Printf.sprintf "leaf(%s)" x
  | U (First_sibling, x) -> Printf.sprintf "firstsibling(%s)" x
  | U (Last_sibling, x) -> Printf.sprintf "lastsibling(%s)" x
  | U (Named p, x) -> Printf.sprintf "%s(%s)" p x
  | U (False, x) -> Printf.sprintf "false(%s)" x
  | U (True, x) -> Printf.sprintf "dom(%s)" x
  | A (a, x, y) -> Printf.sprintf "%s(%s, %s)" (Axis.name a) x y

let to_string q =
  let head =
    match q.head with
    | [] -> "q"
    | hs -> Printf.sprintf "q(%s)" (String.concat ", " hs)
  in
  Printf.sprintf "%s :- %s." head (String.concat ", " (List.map atom_to_string q.atoms))

let pp fmt q = Format.pp_print_string fmt (to_string q)
