module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
open Query

type result = { queries : Query.t list; branches_explored : int }

(* A branch state of the rewriting.  [pre] records the explicit
   [x <pre y] choices made so far; the binary atoms themselves also imply
   source <pre target (all four remaining axes are pre-order-increasing). *)
type state = {
  bin : (Axis.t * var * var) list;
  un : (unary * var) list;
  pre : (var * var) list;
  head : var list;
}

let child_family = function Axis.Child | Axis.Descendant -> true | _ -> false

let sibling_family = function
  | Axis.Next_sibling | Axis.Following_sibling -> true
  | _ -> false

let plus_of = function
  | Axis.Descendant_or_self -> Axis.Descendant
  | Axis.Following_sibling_or_self -> Axis.Following_sibling
  | a -> a

let is_star = function
  | Axis.Descendant_or_self | Axis.Following_sibling_or_self -> true
  | _ -> false

(* x <pre y derivable from the state's constraints?  Reachability by at
   least one edge, so [lt_pre st v v] detects a directed cycle through v. *)
let lt_pre st x y =
  (* only non-star atoms imply a strict pre-order edge; reflexive-closure
     atoms imply x ≤pre y and contribute nothing strict *)
  let edges =
    st.pre
    @ List.filter_map (fun (a, u, v) -> if is_star a then None else Some (u, v)) st.bin
  in
  let succs v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
  let rec reach seen frontier =
    match frontier with
    | [] -> false
    | v :: rest ->
      if v = y then true
      else if List.mem v seen then reach seen rest
      else reach (v :: seen) (succs v @ rest)
  in
  reach [] (succs x)

let has_cycle st =
  let vars =
    List.sort_uniq compare
      (List.concat_map (fun (_, a, b) -> [ a; b ]) st.bin
      @ List.concat_map (fun (a, b) -> [ a; b ]) st.pre)
  in
  List.exists (fun v -> lt_pre st v v) vars

(* substitute y := x everywhere *)
let substitute st ~keep:x ~drop:y =
  let s v = if v = y then x else v in
  {
    bin = List.map (fun (a, u, v) -> (a, s u, s v)) st.bin;
    un = List.map (fun (u, v) -> (u, s v)) st.un;
    pre = List.map (fun (u, v) -> (s u, s v)) st.pre;
    head = List.map s st.head;
  }

let unify st x y =
  (* prefer to keep a head variable as the representative *)
  if List.mem y st.head && not (List.mem x st.head) then substitute st ~keep:y ~drop:x
  else substitute st ~keep:x ~drop:y

(* one pass of the cheap simplifications; [None] = state is unsatisfiable *)
let simplify st =
  let exception Unsat in
  try
    (* drop trivially-true reflexive-closure self-loops; other self-loops
       are unsatisfiable *)
    let bin =
      List.filter
        (fun (a, x, y) ->
          if x <> y then true
          else if is_star a then false
          else raise Unsat)
        st.bin
    in
    let bin = List.sort_uniq compare bin in
    (* R ∧ R⁺ on the same pair: drop the transitive atom *)
    let bin =
      List.filter
        (fun (a, x, y) ->
          not
            ((a = Axis.Descendant && List.mem (Axis.Child, x, y) bin)
            || (a = Axis.Following_sibling && List.mem (Axis.Next_sibling, x, y) bin)
            || (a = Axis.Descendant_or_self
               && (List.mem (Axis.Child, x, y) bin
                  || List.mem (Axis.Descendant, x, y) bin))
            || (a = Axis.Following_sibling_or_self
               && (List.mem (Axis.Next_sibling, x, y) bin
                  || List.mem (Axis.Following_sibling, x, y) bin))))
        bin
    in
    (* child-family ∧ sibling-family on the same ordered pair: unsat *)
    List.iter
      (fun (a, x, y) ->
        if
          child_family a
          && List.exists (fun (b, u, v) -> sibling_family b && u = x && v = y) bin
        then raise Unsat
        else ignore (a, x, y))
      bin;
    let st = { st with bin; pre = List.sort_uniq compare st.pre } in
    if has_cycle st then None else Some st
  with Unsat -> None

let find_star st =
  List.find_opt (fun (a, x, y) -> is_star a && x <> y) st.bin

(* a shared-target pair R(x,z), S(y,z) with x ≠ y, both axes in the
   Table 1 fragment.  Choose z maximal and x minimal w.r.t. the derivable
   order, as in the proof. *)
let find_conflict st =
  let candidates =
    List.concat_map
      (fun ((r, x, z) as a1) ->
        List.filter_map
          (fun ((s, y, z') as a2) ->
            if z = z' && x <> y && a1 <> a2 && not (is_star r) && not (is_star s)
            then Some ((r, x, z), (s, y, z))
            else None)
          st.bin)
      st.bin
  in
  match candidates with
  | [] -> None
  | first :: _ ->
    (* prefer a candidate whose z is not below any other candidate's z and
       whose x is not above any other candidate's x for the same z *)
    let better ((_, x1, z1), _) ((_, x2, z2), _) =
      if z1 <> z2 then if lt_pre st z2 z1 then -1 else if lt_pre st z1 z2 then 1 else 0
      else if lt_pre st x1 x2 then -1
      else if lt_pre st x2 x1 then 1
      else 0
    in
    Some (List.fold_left (fun acc c -> if better c acc < 0 then c else acc) first candidates)

exception Too_many_branches

let max_branches = 200_000

let rewrite q =
  (match check q with Ok () -> () | Error m -> invalid_arg ("Rewrite: " ^ m));
  let q = normalize_forward q in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s__%d" prefix !counter
  in
  (* eliminate Following atoms *)
  let bin, extra =
    List.fold_left
      (fun (bin, extra) atom ->
        match atom with
        | A (Axis.Following, x, y) ->
          let x0 = fresh "F" and y0 = fresh "F" in
          ( (Axis.Following_sibling, x0, y0)
            :: (Axis.Descendant_or_self, x0, x)
            :: (Axis.Descendant_or_self, y0, y)
            :: bin,
            extra )
        | A (a, x, y) -> ((a, x, y) :: bin, extra)
        | U (u, x) -> (bin, (u, x) :: extra))
      ([], []) q.atoms
  in
  let initial = { bin; un = extra; pre = []; head = q.head } in
  let branches = ref 0 in
  let rec process st acc =
    incr branches;
    if !branches > max_branches then raise Too_many_branches;
    match simplify st with
    | None -> acc
    | Some st -> (
      match find_star st with
      | Some (a, x, y) ->
        (* branch: x = y, or x ≠ y and the atom strengthens to R⁺ *)
        let eq_branch = unify st x y in
        let neq_branch =
          {
            st with
            bin = (plus_of a, x, y) :: List.filter (fun b -> b <> (a, x, y)) st.bin;
          }
        in
        process neq_branch (process eq_branch acc)
      | None -> (
        match find_conflict st with
        | None -> st :: acc
        | Some ((r, x, z), (s, y, _)) ->
          let replace_atom st old_atom new_atom =
            { st with bin = new_atom :: List.filter (fun b -> b <> old_atom) st.bin }
          in
          let resolve_with_order st ~small:(r1, x1) ~large:(r2, x2) =
            (* x1 <pre x2; Table 1 row r1 column r2 *)
            if Sat_table.sat r1 r2 then
              process (replace_atom st (r1, x1, z) (r1, x1, x2)) acc
            else acc
          in
          if lt_pre st x y then resolve_with_order st ~small:(r, x) ~large:(s, y)
          else if lt_pre st y x then resolve_with_order st ~small:(s, y) ~large:(r, x)
          else begin
            (* order unknown: branch x = y / x < y / y < x *)
            let acc = process (unify st x y) acc in
            let acc =
              process { st with pre = (x, y) :: st.pre } acc
            in
            process { st with pre = (y, x) :: st.pre } acc
          end))
  in
  let finals = process initial [] in
  let to_query st =
    let atom_vars =
      List.concat_map (fun (_, a, b) -> [ a; b ]) st.bin
      @ List.map snd st.un
    in
    let missing = List.filter (fun h -> not (List.mem h atom_vars)) st.head in
    {
      head = st.head;
      atoms =
        List.map (fun (u, x) -> U (u, x)) st.un
        @ List.map (fun h -> U (True, h)) (List.sort_uniq compare missing)
        @ List.map (fun (a, x, y) -> A (a, x, y)) st.bin;
    }
  in
  { queries = List.rev_map to_query finals; branches_explored = !branches }

let solutions ?env q tree =
  let { queries; _ } = rewrite q in
  let all = List.concat_map (fun q' -> Yannakakis.solutions ?env q' tree) queries in
  List.sort_uniq compare all

let boolean ?env q tree =
  let { queries; _ } = rewrite q in
  List.exists (fun q' -> Yannakakis.boolean ?env q' tree) queries

let unary ?env q tree =
  let { queries; _ } = rewrite q in
  let out = Nodeset.create (Treekit.Tree.size tree) in
  List.iter (fun q' -> Nodeset.union_into out (Yannakakis.unary ?env q' tree)) queries;
  out
