module Nodeset = Treekit.Nodeset
open Query

let decomposition q =
  let g, vars = Qgraph.graph q in
  (Treewidth.Decomposition.min_fill_heuristic g, vars)

let decomposition_width q =
  let d, _ = decomposition (normalize_forward q) in
  Treewidth.Decomposition.width d

let solutions ?env q tree =
  (match check q with Ok () -> () | Error m -> invalid_arg ("Bounded_tw: " ^ m));
  let q = normalize_forward q in
  let d, vars = decomposition q in
  let bag_of_var v =
    (* first bag containing every variable of [v] (a list of var indices) *)
    let rec find b =
      if b >= Array.length d.Treewidth.Decomposition.bags then None
      else if List.for_all (fun x -> List.mem x d.Treewidth.Decomposition.bags.(b)) v
      then Some b
      else find (b + 1)
    in
    find 0
  in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.add index x i) vars;
  let nbags = Array.length d.Treewidth.Decomposition.bags in
  let bag_atoms = Array.make nbags [] in
  List.iter
    (fun atom ->
      let wanted =
        match atom with
        | U (_, x) -> [ Hashtbl.find index x ]
        | A (_, x, y) -> [ Hashtbl.find index x; Hashtbl.find index y ]
      in
      match bag_of_var wanted with
      | Some b -> bag_atoms.(b) <- atom :: bag_atoms.(b)
      | None ->
        (* every query-graph edge is covered by some bag of a valid
           decomposition; self-loop-free normalised atoms always land *)
        invalid_arg "Bounded_tw: atom not covered by the decomposition")
    q.atoms;
  (* one materialised relation per bag: the satisfying assignments of the
     bag's atoms over the bag's variables — at most n^(w+1) tuples *)
  let body =
    List.init nbags (fun b ->
        let bag_vars = List.map (fun i -> vars.(i)) d.Treewidth.Decomposition.bags.(b) in
        let atoms =
          List.map (fun v -> U (True, v)) bag_vars @ List.rev bag_atoms.(b)
        in
        let bag_query = { head = bag_vars; atoms } in
        let rows = Naive.solutions ?env bag_query tree in
        Relkit.Acyclic.make_atom
          ~name:(Printf.sprintf "bag%d" b)
          (Relkit.Relation.of_rows ~arity:(List.length bag_vars) rows)
          bag_vars)
  in
  let relational = { Relkit.Acyclic.head = q.head; body } in
  match Relkit.Acyclic.solutions relational with
  | Some rel -> List.sort compare (Relkit.Relation.rows rel)
  | None ->
    (* tree decompositions always induce acyclic bag hypergraphs *)
    assert false

let boolean ?env q tree = solutions ?env { q with head = [] } tree <> []

let unary ?env q tree =
  if not (is_unary q) then invalid_arg "Bounded_tw.unary: query is not unary";
  let out = Nodeset.create (Treekit.Tree.size tree) in
  List.iter (fun t -> Nodeset.add out t.(0)) (solutions ?env q tree);
  out
