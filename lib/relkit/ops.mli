(** Relational-algebra operators.

    Enough algebra to express the paper's SQL views (Example 2.1), the
    semijoin programs of Yannakakis' algorithm (Section 4) and full reducers
    (Section 6): selection, projection, natural/theta joins, semijoin,
    union and difference. *)

val select : (int array -> bool) -> Relation.t -> Relation.t
(** [select p r] keeps the rows satisfying [p]. *)

val project : int list -> Relation.t -> Relation.t
(** [project cols r] projects onto the given columns, in the given order
    (duplicates removed — set semantics). *)

val union : Relation.t -> Relation.t -> Relation.t
(** Set union.  @raise Invalid_argument on arity mismatch. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Set difference.  @raise Invalid_argument on arity mismatch. *)

val product : Relation.t -> Relation.t -> Relation.t
(** Cartesian product; the result has arity [arity a + arity b]. *)

val equijoin : on:(int * int) list -> Relation.t -> Relation.t -> Relation.t
(** [equijoin ~on:[(i1,j1); …] a b] is the join of [a] and [b] on columns
    [a.iₖ = b.jₖ], computed with a hash join in time
    O(|a| + |b| + |output|).  The result schema is [a]'s columns followed by
    [b]'s columns. *)

val theta_join : (int array -> int array -> bool) -> Relation.t -> Relation.t -> Relation.t
(** Nested-loop join with an arbitrary predicate (used for the [<pre]/[<post]
    structural-join views of Example 2.1 when expressed naively). *)

val semijoin : on:(int * int) list -> Relation.t -> Relation.t -> Relation.t
(** [semijoin ~on a b] keeps the rows of [a] that join with at least one row
    of [b] — the primitive of Yannakakis' algorithm and of full reducers.
    Hash-based, O(|a| + |b|). *)
