let select p r =
  let out = Relation.create ~name:(Relation.name r ^ "_sel") ~arity:(Relation.arity r) () in
  Relation.iter (fun row -> if p row then Relation.add out row) r;
  out

let project cols r =
  let arity = List.length cols in
  List.iter
    (fun c ->
      if c < 0 || c >= Relation.arity r then invalid_arg "Ops.project: bad column")
    cols;
  let out = Relation.create ~name:(Relation.name r ^ "_proj") ~arity () in
  let cols = Array.of_list cols in
  Relation.iter
    (fun row -> Relation.add out (Array.map (fun c -> row.(c)) cols))
    r;
  out

let check_same_arity a b =
  if Relation.arity a <> Relation.arity b then invalid_arg "Ops: arity mismatch"

let union a b =
  check_same_arity a b;
  let out = Relation.create ~name:"union" ~arity:(Relation.arity a) () in
  Relation.iter (Relation.add out) a;
  Relation.iter (Relation.add out) b;
  out

let diff a b =
  check_same_arity a b;
  let out = Relation.create ~name:"diff" ~arity:(Relation.arity a) () in
  Relation.iter (fun row -> if not (Relation.mem b row) then Relation.add out row) a;
  out

let product a b =
  let out =
    Relation.create ~name:"product" ~arity:(Relation.arity a + Relation.arity b) ()
  in
  Relation.iter (fun ra -> Relation.iter (fun rb -> Relation.add out (Array.append ra rb)) b) a;
  out

let key_of on_side row = Array.of_list (List.map (fun c -> row.(c)) on_side)

let equijoin ~on a b =
  let acols = List.map fst on and bcols = List.map snd on in
  List.iter
    (fun c -> if c < 0 || c >= Relation.arity a then invalid_arg "Ops.equijoin: bad column in a")
    acols;
  List.iter
    (fun c -> if c < 0 || c >= Relation.arity b then invalid_arg "Ops.equijoin: bad column in b")
    bcols;
  let index = Hashtbl.create (max 16 (Relation.cardinality b)) in
  Relation.iter (fun rb -> Hashtbl.add index (key_of bcols rb) rb) b;
  let out =
    Relation.create ~name:"join" ~arity:(Relation.arity a + Relation.arity b) ()
  in
  Relation.iter
    (fun ra ->
      List.iter
        (fun rb -> Relation.add out (Array.append ra rb))
        (Hashtbl.find_all index (key_of acols ra)))
    a;
  out

let theta_join pred a b =
  let out =
    Relation.create ~name:"theta" ~arity:(Relation.arity a + Relation.arity b) ()
  in
  Relation.iter
    (fun ra -> Relation.iter (fun rb -> if pred ra rb then Relation.add out (Array.append ra rb)) b)
    a;
  out

let semijoin ~on a b =
  let acols = List.map fst on and bcols = List.map snd on in
  let index = Hashtbl.create (max 16 (Relation.cardinality b)) in
  Relation.iter (fun rb -> Hashtbl.replace index (key_of bcols rb) ()) b;
  let out = Relation.create ~name:(Relation.name a ^ "_semi") ~arity:(Relation.arity a) () in
  Relation.iter
    (fun ra -> if Hashtbl.mem index (key_of acols ra) then Relation.add out ra)
    a;
  out
