let select p r =
  let out = Relation.create ~name:(Relation.name r ^ "_sel") ~arity:(Relation.arity r) () in
  Relation.iter (fun row -> if p row then Relation.add out row) r;
  out

let project cols r =
  let arity = List.length cols in
  List.iter
    (fun c ->
      if c < 0 || c >= Relation.arity r then invalid_arg "Ops.project: bad column")
    cols;
  let out = Relation.create ~name:(Relation.name r ^ "_proj") ~arity () in
  let cols = Array.of_list cols in
  Relation.iter
    (fun row -> Relation.add out (Array.map (fun c -> row.(c)) cols))
    r;
  out

let check_same_arity a b =
  if Relation.arity a <> Relation.arity b then invalid_arg "Ops: arity mismatch"

let union a b =
  check_same_arity a b;
  let out = Relation.create ~name:"union" ~arity:(Relation.arity a) () in
  Relation.iter (Relation.add out) a;
  Relation.iter (Relation.add out) b;
  out

let diff a b =
  check_same_arity a b;
  let out = Relation.create ~name:"diff" ~arity:(Relation.arity a) () in
  Relation.iter (fun row -> if not (Relation.mem b row) then Relation.add out row) a;
  out

let product a b =
  let out =
    Relation.create ~name:"product" ~arity:(Relation.arity a + Relation.arity b) ()
  in
  Relation.iter (fun ra -> Relation.iter (fun rb -> Relation.add out (Array.append ra rb)) b) a;
  out

let key_of on_side row = Array.of_list (List.map (fun c -> row.(c)) on_side)

(* Join keys.  Hashing a fresh [int array] per probe is the dominant cost of
   a hash join here, so keys are packed into a single immediate [int]
   whenever possible: a one-column key is the value itself; a multi-column
   key is mixed-radix-packed using the observed per-position value ranges
   when the product of the range widths fits in an [int].  Only when packing
   would overflow do we fall back to structural array keys. *)
type key_plan =
  | Int_keys of (int array -> int) * (int array -> int)
  | Array_keys

let packed_key_plan acols bcols a b =
  match acols, bcols with
  | [], [] -> Int_keys ((fun _ -> 0), (fun _ -> 0))
  | [ ca ], [ cb ] -> Int_keys ((fun row -> row.(ca)), (fun row -> row.(cb)))
  | _ ->
    let k = List.length acols in
    let acols = Array.of_list acols and bcols = Array.of_list bcols in
    let lo = Array.make k max_int and hi = Array.make k min_int in
    let scan cols r =
      Relation.iter
        (fun row ->
          for i = 0 to k - 1 do
            let v = row.(cols.(i)) in
            if v < lo.(i) then lo.(i) <- v;
            if v > hi.(i) then hi.(i) <- v
          done)
        r
    in
    scan acols a;
    scan bcols b;
    let stride = Array.make k 1 in
    let fits = ref true in
    let acc = ref 1 in
    for i = 0 to k - 1 do
      stride.(i) <- !acc;
      let w = hi.(i) - lo.(i) + 1 in
      if w <= 0 || w > max_int / !acc then fits := false else acc := !acc * w
    done;
    if not !fits then Array_keys
    else
      let pack cols row =
        let key = ref 0 in
        for i = 0 to k - 1 do
          key := !key + ((row.(cols.(i)) - lo.(i)) * stride.(i))
        done;
        !key
      in
      Int_keys (pack acols, pack bcols)

let equijoin ~on a b =
  let acols = List.map fst on and bcols = List.map snd on in
  List.iter
    (fun c -> if c < 0 || c >= Relation.arity a then invalid_arg "Ops.equijoin: bad column in a")
    acols;
  List.iter
    (fun c -> if c < 0 || c >= Relation.arity b then invalid_arg "Ops.equijoin: bad column in b")
    bcols;
  let out =
    Relation.create ~name:"join" ~arity:(Relation.arity a + Relation.arity b) ()
  in
  if Relation.cardinality a > 0 && Relation.cardinality b > 0 then begin
    match packed_key_plan acols bcols a b with
    | Int_keys (ka, kb) ->
      let index = Hashtbl.create (max 16 (Relation.cardinality b)) in
      Relation.iter (fun rb -> Hashtbl.add index (kb rb) rb) b;
      Relation.iter
        (fun ra ->
          List.iter
            (fun rb -> Relation.add out (Array.append ra rb))
            (Hashtbl.find_all index (ka ra)))
        a
    | Array_keys ->
      let index = Hashtbl.create (max 16 (Relation.cardinality b)) in
      Relation.iter (fun rb -> Hashtbl.add index (key_of bcols rb) rb) b;
      Relation.iter
        (fun ra ->
          List.iter
            (fun rb -> Relation.add out (Array.append ra rb))
            (Hashtbl.find_all index (key_of acols ra)))
        a
  end;
  out

let theta_join pred a b =
  let out =
    Relation.create ~name:"theta" ~arity:(Relation.arity a + Relation.arity b) ()
  in
  Relation.iter
    (fun ra -> Relation.iter (fun rb -> if pred ra rb then Relation.add out (Array.append ra rb)) b)
    a;
  out

let semijoin ~on a b =
  let acols = List.map fst on and bcols = List.map snd on in
  let out = Relation.create ~name:(Relation.name a ^ "_semi") ~arity:(Relation.arity a) () in
  if Relation.cardinality a > 0 && Relation.cardinality b > 0 then begin
    match packed_key_plan acols bcols a b with
    | Int_keys (ka, kb) ->
      let index = Hashtbl.create (max 16 (Relation.cardinality b)) in
      Relation.iter (fun rb -> Hashtbl.replace index (kb rb) ()) b;
      Relation.iter
        (fun ra -> if Hashtbl.mem index (ka ra) then Relation.add out ra)
        a
    | Array_keys ->
      let index = Hashtbl.create (max 16 (Relation.cardinality b)) in
      Relation.iter (fun rb -> Hashtbl.replace index (key_of bcols rb) ()) b;
      Relation.iter
        (fun ra -> if Hashtbl.mem index (key_of acols ra) then Relation.add out ra)
        a
  end;
  out
