(** In-memory relations over integer tuples.

    The paper's Section 2 develops relational storage schemes for trees
    (XASR) and evaluates axis joins over them; Yannakakis' algorithm
    (Section 4) and the full reducer (Section 6) are also relational
    algorithms.  This module is the minimal relational substrate they need:
    a relation is a named arity-[k] set of [int array] tuples.

    Rows are deduplicated (set semantics, as in the paper's conjunctive
    query semantics). *)

type t

val create : ?name:string -> arity:int -> unit -> t
(** Fresh empty relation. *)

val of_rows : ?name:string -> arity:int -> int array list -> t
(** Build from rows (deduplicated).
    @raise Invalid_argument on an arity mismatch. *)

val name : t -> string
val arity : t -> int
val cardinality : t -> int

val add : t -> int array -> unit
(** Insert a row (copied; a no-op if already present).
    @raise Invalid_argument on an arity mismatch. *)

val mem : t -> int array -> bool

val iter : (int array -> unit) -> t -> unit
(** Iterate rows in insertion order, without allocating (rows are stored in
    a growable array).  The callback must not mutate rows. *)

val fold : (int array -> 'a -> 'a) -> t -> 'a -> 'a

val rows : t -> int array list
(** All rows, in insertion order (copies). *)

val rows_sorted : t -> int array list
(** All rows in lexicographic order (copies); handy for printing and
    comparison. *)

val equal : t -> t -> bool
(** Same arity and same set of rows. *)

val column_values : t -> int -> int list
(** Distinct values of the given column, sorted. *)

val pp : Format.formatter -> t -> unit
