(** Acyclic conjunctive queries over materialised relations — Yannakakis'
    algorithm in its original relational setting (Section 4), GYO ear
    reduction, and full reducers (Section 6).

    The tree-specific engines ({!Cqtree.Yannakakis}) avoid materialising
    axis relations; this module is the general algorithm the paper quotes:
    "process the join tree of the query bottom-up and project, as soon as
    possible, after each join, all the columns of the intermediate result
    which are not needed in subsequent joins away" — intermediate results
    never exceed the input for acyclic queries.

    A query is a set of atoms, each pairing a relation with a variable
    list; repeated variables within an atom are handled by a preliminary
    selection.  Acyclicity is hypergraph acyclicity, decided by GYO ear
    removal (equivalently: hypertree-width 1). *)

type atom = { name : string; rel : Relation.t; vars : string list }
(** [vars] must have the relation's arity.
    @see {!make_atom} *)

type query = { head : string list; body : atom list }

val make_atom : ?name:string -> Relation.t -> string list -> atom
(** @raise Invalid_argument on arity mismatch. *)

val check : query -> (unit, string) result
(** Safety: every head variable occurs in the body. *)

val is_acyclic : query -> bool
(** GYO reduction succeeds (the hypergraph of variable sets is acyclic). *)

type join_node = { atom : atom; children : join_node list }

val join_forest : query -> join_node list option
(** A join forest from the GYO ear ordering ([None] if cyclic): each ear
    hangs under its witness. *)

val full_reducer : query -> (string * Relation.t) list option
(** The globally consistent (fully reduced) database: each body relation
    restricted to the tuples that participate in at least one solution —
    the bottom-up + top-down semijoin program.  [None] if cyclic.
    Keyed by atom name.

    Paper connection (Section 6): "each tuple in the result of a full
    reducer contributes to a valuation" — property-tested. *)

val solutions : query -> Relation.t option
(** All head tuples via the join tree with eager projection.  [None] if
    cyclic. *)

val boolean : query -> bool option

val naive_solutions : query -> Relation.t
(** Reference: fold the atoms with unrestricted hash joins, then project.
    Exponential intermediate results possible; for tests. *)
