module Row = struct
  type t = int array

  let equal (a : t) (b : t) = a = b
  let hash (a : t) = Hashtbl.hash a
end

module Rowtbl = Hashtbl.Make (Row)

type t = {
  name : string;
  arity : int;
  index : unit Rowtbl.t;
  mutable rev_rows : int array list;  (** reverse insertion order *)
  mutable card : int;
}

let create ?(name = "r") ~arity () =
  if arity < 0 then invalid_arg "Relation.create: negative arity";
  { name; arity; index = Rowtbl.create 64; rev_rows = []; card = 0 }

let name r = r.name
let arity r = r.arity
let cardinality r = r.card

let add r row =
  if Array.length row <> r.arity then invalid_arg "Relation.add: arity mismatch";
  if not (Rowtbl.mem r.index row) then begin
    let row = Array.copy row in
    Rowtbl.add r.index row ();
    r.rev_rows <- row :: r.rev_rows;
    r.card <- r.card + 1
  end

let of_rows ?name ~arity rows =
  let r = create ?name ~arity () in
  List.iter (add r) rows;
  r

let mem r row = Rowtbl.mem r.index row

let iter f r = List.iter f (List.rev r.rev_rows)

let fold f r init = List.fold_left (fun acc row -> f row acc) init (List.rev r.rev_rows)

let rows r = List.rev_map Array.copy r.rev_rows

let rows_sorted r = List.sort compare (List.rev_map Array.copy r.rev_rows)

let equal a b =
  a.arity = b.arity && a.card = b.card
  && List.for_all (fun row -> Rowtbl.mem b.index row) a.rev_rows

let column_values r i =
  if i < 0 || i >= r.arity then invalid_arg "Relation.column_values: bad column";
  let seen = Hashtbl.create 64 in
  List.iter (fun row -> Hashtbl.replace seen row.(i) ()) r.rev_rows;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen [])

let pp fmt r =
  Format.fprintf fmt "@[<v>%s/%d (%d rows)" r.name r.arity r.card;
  List.iter
    (fun row ->
      Format.fprintf fmt "@,(%s)"
        (String.concat ", " (Array.to_list (Array.map string_of_int row))))
    (rows_sorted r);
  Format.fprintf fmt "@]"
