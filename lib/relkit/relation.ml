module Row = struct
  type t = int array

  let equal (a : t) (b : t) = a = b
  let hash (a : t) = Hashtbl.hash a
end

module Rowtbl = Hashtbl.Make (Row)

type t = {
  name : string;
  arity : int;
  index : unit Rowtbl.t;
  mutable store : int array array;  (** first [card] slots live, insertion order *)
  mutable card : int;
}

let create ?(name = "r") ~arity () =
  if arity < 0 then invalid_arg "Relation.create: negative arity";
  { name; arity; index = Rowtbl.create 64; store = [||]; card = 0 }

let name r = r.name
let arity r = r.arity
let cardinality r = r.card

let add r row =
  if Array.length row <> r.arity then invalid_arg "Relation.add: arity mismatch";
  if not (Rowtbl.mem r.index row) then begin
    let row = Array.copy row in
    Rowtbl.add r.index row ();
    let cap = Array.length r.store in
    if r.card = cap then begin
      let store = Array.make (max 16 (2 * cap)) [||] in
      Array.blit r.store 0 store 0 cap;
      r.store <- store
    end;
    r.store.(r.card) <- row;
    r.card <- r.card + 1
  end

let of_rows ?name ~arity rows =
  let r = create ?name ~arity () in
  List.iter (add r) rows;
  r

let mem r row = Rowtbl.mem r.index row

let iter f r =
  for i = 0 to r.card - 1 do
    f r.store.(i)
  done

let fold f r init =
  let acc = ref init in
  for i = 0 to r.card - 1 do
    acc := f r.store.(i) !acc
  done;
  !acc

let rows r = List.init r.card (fun i -> Array.copy r.store.(i))

let rows_sorted r = List.sort compare (rows r)

let equal a b =
  a.arity = b.arity && a.card = b.card
  &&
  let ok = ref true in
  for i = 0 to a.card - 1 do
    if not (Rowtbl.mem b.index a.store.(i)) then ok := false
  done;
  !ok

let column_values r i =
  if i < 0 || i >= r.arity then invalid_arg "Relation.column_values: bad column";
  let seen = Hashtbl.create 64 in
  iter (fun row -> Hashtbl.replace seen row.(i) ()) r;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen [])

let pp fmt r =
  Format.fprintf fmt "@[<v>%s/%d (%d rows)" r.name r.arity r.card;
  List.iter
    (fun row ->
      Format.fprintf fmt "@,(%s)"
        (String.concat ", " (Array.to_list (Array.map string_of_int row))))
    (rows_sorted r);
  Format.fprintf fmt "@]"
