type atom = { name : string; rel : Relation.t; vars : string list }

type query = { head : string list; body : atom list }

type join_node = { atom : atom; children : join_node list }

let counter = ref 0

let make_atom ?name rel vars =
  if List.length vars <> Relation.arity rel then
    invalid_arg "Acyclic.make_atom: arity mismatch";
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "%s#%d" (Relation.name rel) !counter
  in
  { name; rel; vars }

let check q =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if q.body = [] then err "query has no atoms"
  else
    let body_vars = List.concat_map (fun a -> a.vars) q.body in
    match List.find_opt (fun h -> not (List.mem h body_vars)) q.head with
    | Some h -> err "head variable %s not in body" h
    | None -> Ok ()

(* Normalise an atom so its variable list has no duplicates: select rows
   where duplicated columns agree, keep the first occurrence of each
   variable. *)
let normalise a =
  let seen = Hashtbl.create 8 in
  let keep = ref [] and eq_checks = ref [] in
  List.iteri
    (fun i v ->
      match Hashtbl.find_opt seen v with
      | None ->
        Hashtbl.add seen v i;
        keep := i :: !keep
      | Some j -> eq_checks := (i, j) :: !eq_checks)
    a.vars;
  let keep = List.rev !keep in
  let rel =
    if !eq_checks = [] then a.rel
    else
      Ops.select (fun row -> List.for_all (fun (i, j) -> row.(i) = row.(j)) !eq_checks) a.rel
  in
  let rel = if !eq_checks = [] then rel else Ops.project keep rel in
  { a with rel; vars = List.map (List.nth a.vars) keep }

(* ------------------------------------------------------------------ *)
(* GYO ear reduction.  Returns the removal order with witnesses, or None
   if the hypergraph is cyclic. *)

let gyo atoms =
  let module SS = Set.Make (String) in
  let sets = Array.of_list (List.map (fun a -> SS.of_list a.vars) atoms) in
  let alive = Array.make (Array.length sets) true in
  let removed = ref [] in
  let alive_indices () =
    List.filter (fun i -> alive.(i)) (List.init (Array.length sets) Fun.id)
  in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let live = alive_indices () in
    if List.length live > 1 then begin
      let find_ear () =
        List.find_map
          (fun i ->
            let others = List.filter (fun j -> j <> i) live in
            let shared =
              List.fold_left
                (fun acc j -> SS.union acc (SS.inter sets.(i) sets.(j)))
                SS.empty others
            in
            if SS.is_empty shared then Some (i, None)
            else
              match List.find_opt (fun j -> SS.subset shared sets.(j)) others with
              | Some j -> Some (i, Some j)
              | None -> None)
          live
      in
      match find_ear () with
      | Some (i, witness) ->
        alive.(i) <- false;
        removed := (i, witness) :: !removed;
        continue_ := true
      | None -> ()
    end
  done;
  match alive_indices () with
  | [ root ] -> Some (List.rev !removed, [ root ])
  | [] -> assert false
  | several ->
    (* more than one atom left: cyclic — unless they are pairwise
       disconnected roots, which the ear rule would have removed; so
       cyclic *)
    ignore several;
    None

let join_forest q =
  match check q with
  | Error _ -> None
  | Ok () -> (
    let atoms = Array.of_list (List.map normalise q.body) in
    match gyo (Array.to_list atoms) with
    | None -> None
    | Some (removal, roots) ->
      (* children lists from the witness pointers *)
      let children = Array.make (Array.length atoms) [] in
      let extra_roots = ref [] in
      List.iter
        (fun (i, witness) ->
          match witness with
          | Some j -> children.(j) <- i :: children.(j)
          | None -> extra_roots := i :: !extra_roots)
        removal;
      let rec build i =
        { atom = atoms.(i); children = List.map build children.(i) }
      in
      Some (List.map build (roots @ !extra_roots)))

let is_acyclic q = join_forest q <> None

(* ------------------------------------------------------------------ *)
(* semijoins on shared variables *)

let shared_positions vars1 vars2 =
  List.mapi (fun i v -> (i, v)) vars1
  |> List.filter_map (fun (i, v) ->
         let rec pos j = function
           | [] -> None
           | w :: _ when w = v -> Some j
           | _ :: rest -> pos (j + 1) rest
         in
         Option.map (fun j -> (i, j)) (pos 0 vars2))

let c_semijoin = Obs.Counter.make "semijoin_passes"
let c_tuples = Obs.Counter.make "tuples_materialised"

let semijoin_atoms a b =
  (* a ⋉ b on the shared variables *)
  Obs.Counter.incr c_semijoin;
  let on = shared_positions a.vars b.vars in
  if on = [] then if Relation.cardinality b.rel = 0 then { a with rel = Ops.select (fun _ -> false) a.rel } else a
  else { a with rel = Ops.semijoin ~on a.rel b.rel }

let full_reducer q =
  match join_forest q with
  | None -> None
  | Some forest ->
    (* two recursive semijoin passes directly on the tree, threading the
       progressively reduced relations *)
    let rec bottom_up n =
      let children = List.map bottom_up n.children in
      let atom =
        List.fold_left (fun acc c -> semijoin_atoms acc c.atom) n.atom children
      in
      { atom; children }
    in
    let rec top_down n =
      let children =
        List.map
          (fun c -> top_down { c with atom = semijoin_atoms c.atom n.atom })
          n.children
      in
      { n with children }
    in
    let reduced = List.map (fun r -> top_down (bottom_up r)) forest in
    (* a globally empty component empties everything *)
    let rec collect_atoms n = n.atom :: List.concat_map collect_atoms n.children in
    let atoms = List.concat_map collect_atoms reduced in
    let any_empty = List.exists (fun a -> Relation.cardinality a.rel = 0) atoms in
    let final =
      if any_empty then
        List.map (fun a -> (a.name, Ops.select (fun _ -> false) a.rel)) atoms
      else List.map (fun a -> (a.name, a.rel)) atoms
    in
    Some final

(* ------------------------------------------------------------------ *)
(* joins with eager projection *)

let join_cols (cols1, rel1) (cols2, rel2) =
  let on = shared_positions cols1 cols2 in
  let joined =
    if on = [] then Ops.product rel1 rel2 else Ops.equijoin ~on rel1 rel2
  in
  Obs.Counter.add c_tuples (Relation.cardinality joined);
  let n1 = List.length cols1 in
  let fresh =
    List.filteri (fun j _ -> not (List.exists (fun (_, j') -> j' = j) on)) cols2
  in
  let fresh_positions =
    List.filteri (fun j _ -> not (List.exists (fun (_, j') -> j' = j) on))
      (List.init (List.length cols2) Fun.id)
  in
  let cols = cols1 @ fresh in
  let keep = List.init n1 Fun.id @ List.map (fun j -> n1 + j) fresh_positions in
  (cols, Ops.project keep joined)

let project_to cols keep_vars rel =
  let positions =
    List.filter_map
      (fun v ->
        let rec pos i = function
          | [] -> None
          | w :: _ when w = v -> Some i
          | _ :: rest -> pos (i + 1) rest
        in
        pos 0 cols)
      keep_vars
  in
  let kept = List.filter (fun v -> List.mem v cols) keep_vars in
  (kept, Ops.project positions rel)

let solutions q =
  match join_forest q with
  | None -> None
  | Some forest ->
    (* bottom-up join with projection: keep only head variables and the
       variables shared with the parent *)
    let rec solve ~parent_vars n =
      let acc = ref (n.atom.vars, n.atom.rel) in
      List.iter
        (fun c ->
          let sub = solve ~parent_vars:n.atom.vars c in
          acc := join_cols !acc sub)
        n.children;
      let cols, rel = !acc in
      let keep =
        List.filter (fun v -> List.mem v q.head || List.mem v parent_vars) cols
      in
      project_to cols keep rel
    in
    let per_root = List.map (solve ~parent_vars:[]) forest in
    let combined =
      match per_root with
      | [] -> assert false
      | first :: rest -> List.fold_left join_cols first rest
    in
    let _, result = project_to (fst combined) q.head (snd combined) in
    Some result

let boolean q =
  match solutions { q with head = [] } with
  | None -> None
  | Some rel -> Some (Relation.cardinality rel > 0)

let naive_solutions q =
  (match check q with Ok () -> () | Error m -> invalid_arg ("Acyclic.naive: " ^ m));
  let atoms = List.map normalise q.body in
  let combined =
    match atoms with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc a -> join_cols acc (a.vars, a.rel))
        (first.vars, first.rel) rest
  in
  snd (project_to (fst combined) q.head (snd combined))
