(** Structural joins over the XASR storage scheme (Section 2, Example 2.1).

    A tree is stored as the relation
    [R(pre, post, parent_pre, label_code)] (the XASR of Figure 2; ⊥ is
    encoded as [-1] and indices are the 0-based node ids).  The paper's
    point is that axis joins are then {e single theta-joins} on this
    relation — no transitive closure, no materialised [Child⁺]:

    {v
    CREATE VIEW descendant AS
      SELECT r1.pre, r2.pre FROM R r1, R r2
      WHERE r1.pre < r2.pre AND r2.post < r1.post;
    v}

    Four implementations are provided for comparison (benchmark
    [figure2_structural_join]):

    - {!descendant_view} — the SQL view evaluated by a merge over the
      pre-sorted tuples with a stack of open intervals, O(input + output);
    - {!descendant_view_theta}/{!child_view} — the SQL views verbatim, as
      naive theta-joins (quadratic);
    - {!stack_join} — the merge-based structural join of Al-Khalifa et al.
      over node lists, O(input + output);
    - {!iterated_child_join} — the strawman the paper argues against:
      computing [Child⁺] as the fixpoint of joins of [Child] with itself. *)

val store : Treekit.Tree.t -> Relation.t
(** The XASR as a relation [R(pre, post, parent_pre, label_code)];
    0-based, root's [parent_pre = -1]. *)

val child_rel : Treekit.Tree.t -> Relation.t
(** The base [Child] relation as node pairs. *)

val descendant_view : Relation.t -> Relation.t
(** Example 2.1's descendant view over {!store}'s output: pairs [(u, v)]
    with [Child⁺(u,v)], computed by a single merge pass over the
    pre-sorted tuples (O(input + output)).  Requires the input to be the
    XASR of a forest (nested-or-disjoint pre/post intervals); counts each
    emitted pair in [tuples_materialised]. *)

val descendant_view_theta : Relation.t -> Relation.t
(** The same view as the literal quadratic theta-join of Example 2.1; the
    reference definition {!descendant_view} is tested against. *)

val child_view : Relation.t -> Relation.t
(** Example 2.1's child view: [SELECT parent_pre, pre WHERE parent_pre IS
    NOT NULL]. *)

val stack_join :
  Treekit.Tree.t -> ancestors:int list -> descendants:int list -> (int * int) list
(** [stack_join t ~ancestors ~descendants] returns all pairs [(u, v)] with
    [u] in [ancestors], [v] in [descendants] and [Child⁺(u,v)], in time
    O(|ancestors| + |descendants| + |output|).  Both inputs must be sorted
    by pre-order rank (they are node lists, and node = pre rank). *)

val iterated_child_join : Treekit.Tree.t -> Relation.t
(** [Child⁺] computed as a naive fixpoint [C ∪ C∘C ∪ …] of hash joins —
    the expensive alternative the XASR avoids.  Correct but
    O(height · |Child⁺|). *)

val descendant_pairs : Treekit.Tree.t -> Relation.t
(** Ground truth: all [Child⁺] pairs enumerated directly from the tree. *)
