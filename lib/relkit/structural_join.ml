module Tree = Treekit.Tree

let c_tuples = Obs.Counter.make "tuples_materialised"

let store t =
  let r = Relation.create ~name:"xasr" ~arity:4 () in
  for v = 0 to Tree.size t - 1 do
    Relation.add r [| v; Tree.post t v; Tree.parent t v; Tree.label_code t v |]
  done;
  r

let child_rel t =
  let r = Relation.create ~name:"child" ~arity:2 () in
  for v = 1 to Tree.size t - 1 do
    Relation.add r [| Tree.parent t v; v |]
  done;
  r

let descendant_view_theta xasr =
  (* SELECT r1.pre, r2.pre FROM R r1, R r2
     WHERE r1.pre < r2.pre AND r2.post < r1.post
     — the literal O(n²) reference definition, kept for equivalence tests
     and as the naive column of the figure-2 experiment *)
  let joined = Ops.theta_join (fun r1 r2 -> r1.(0) < r2.(0) && r2.(1) < r1.(1)) xasr xasr in
  Ops.project [ 0; 4 ] joined

let descendant_view xasr =
  (* Same view, computed by one merge pass over the pre-sorted tuples with a
     stack of open ancestor intervals: a tuple's ancestors are exactly the
     stack contents once every earlier-closing interval is popped (pre/post
     intervals of a forest are nested or disjoint).  O(input + output)
     instead of the theta join's O(input²). *)
  let rows = Array.of_list (Relation.rows xasr) in
  Array.sort (fun r1 r2 -> compare r1.(0) r2.(0)) rows;
  let out = Relation.create ~name:"descendant" ~arity:2 () in
  let stack = Array.make (Array.length rows) [||] in
  let top = ref 0 in
  let pair = [| 0; 0 |] in
  Array.iter
    (fun r ->
      while !top > 0 && stack.(!top - 1).(1) < r.(1) do
        decr top
      done;
      for i = 0 to !top - 1 do
        pair.(0) <- stack.(i).(0);
        pair.(1) <- r.(0);
        Relation.add out pair;
        Obs.Counter.incr c_tuples
      done;
      stack.(!top) <- r;
      incr top)
    rows;
  out

let child_view xasr =
  let non_root = Ops.select (fun row -> row.(2) <> -1) xasr in
  Ops.project [ 2; 0 ] non_root

let stack_join t ~ancestors ~descendants =
  (* Classic stack-based structural join: scan both lists in document order;
     the stack holds the ancestors whose pre-order interval is still open. *)
  let out = ref [] in
  let stack = ref [] in
  let interval_end u = u + Tree.subtree_size t u in
  let rec pop_closed v =
    match !stack with
    | u :: rest when v >= interval_end u ->
      stack := rest;
      pop_closed v
    | _ -> ()
  in
  let emit v = List.iter (fun u -> if u <> v then out := (u, v) :: !out) !stack in
  let rec go anc desc =
    match anc, desc with
    | [], [] -> ()
    | a :: anc', d :: _ when a <= d ->
      pop_closed a;
      stack := a :: !stack;
      go anc' desc
    | _, d :: desc' ->
      pop_closed d;
      emit d;
      go anc desc'
    | a :: anc', [] ->
      pop_closed a;
      go anc' []
  in
  go ancestors descendants;
  let pairs = List.rev !out in
  Obs.Counter.add c_tuples (List.length pairs);
  pairs

let iterated_child_join t =
  let child = child_rel t in
  let closure = ref child in
  let frontier = ref child in
  let continue = ref true in
  while !continue do
    (* frontier ∘ child : pairs (x, z) with frontier(x,y), child(y,z) *)
    let step = Ops.project [ 0; 3 ] (Ops.equijoin ~on:[ (1, 0) ] !frontier child) in
    let fresh = Ops.diff step !closure in
    Obs.Counter.add c_tuples (Relation.cardinality fresh);
    if Relation.cardinality fresh = 0 then continue := false
    else begin
      closure := Ops.union !closure fresh;
      frontier := fresh
    end
  done;
  !closure

let descendant_pairs t =
  let r = Relation.create ~name:"descendant" ~arity:2 () in
  for u = 0 to Tree.size t - 1 do
    for v = u + 1 to u + Tree.subtree_size t u - 1 do
      Relation.add r [| u; v |]
    done
  done;
  r
