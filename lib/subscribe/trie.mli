(** Merged prefix-sharing trie/NFA over registered path spines — the
    YFilter technique at the core of the standing-query index.

    Every registered spine ({!Streamq.Path_pattern} shape: [/]- and
    [//]-edges with label or wildcard tests) is inserted step by step
    from the shared root state; common prefixes share states, so N
    registered patterns merge into one structure whose size is bounded
    by their distinct prefixes, not by N.  A single SAX pass over a
    document then advances all patterns at once: per [Open] event the
    pass extends [Child] transitions from the states matched exactly at
    the parent and [Descendant] transitions from the states matched at
    any open ancestor (the "sticky" set that {!Streamq.Path_matcher}
    keeps as its [acc] bitmask, here a dense counted set), firing the
    handles attached to every terminal state reached.  Per-document cost
    is O(events · active states + fired), independent of the number of
    registered patterns once their prefixes saturate.

    The trie only ever grows: unregistration detaches handles but keeps
    states, so churn never invalidates in-flight passes structurally —
    pooled passes just grow their arrays when {!states} has increased. *)

type t

val create : unit -> t
(** An empty trie: one root state, no terminals. *)

val states : t -> int

val version : t -> int
(** Bumped whenever a state is added (pooled passes use it to detect
    growth; {!pass} working arrays resize lazily on [begin_doc]). *)

val add : t -> Streamq.Path_pattern.t -> int
(** Insert a spine, sharing every existing prefix; returns the terminal
    state (identical spines return the same state).
    @raise Invalid_argument on the empty pattern. *)

val attach : t -> state:int -> handle:int -> unit
(** Fire [handle] whenever [state] is reached.  Handles are the caller's
    subscription-entry keys; attach each handle to exactly one state. *)

val detach : t -> state:int -> handle:int -> unit

(** {1 Matching passes}

    A [pass] is the pooled working state for matching documents one at a
    time: dense live-state set, stamp arrays sized to the trie.  Passes
    are single-threaded; parallel matching uses one pass per domain. *)

type pass

val pass : t -> pass

val begin_doc : pass -> unit
(** Reset for the next document (O(live states), not O(trie)); also
    grows the working arrays if the trie gained states. *)

val push : pass -> Treekit.Event.t -> unit
(** @raise Invalid_argument on unbalanced event streams. *)

val fired : pass -> int list
(** Handles fired so far in the current document, each at most once,
    unordered. *)

val doc_events : pass -> int

val doc_peak_depth : pass -> int

val doc_active_work : pass -> int
(** Σ over events of the number of exactly-matched states — the cost
    witness for the "document + matched set, not registrations" claim
    (benchmarked in [bench/exp_subscribe.ml]). *)
