(** The standing-query registry: pub/sub matching of registered queries
    against a stream of incoming documents (ROADMAP item 2 — the serving
    model inverted).

    Subscriptions are registered by integer ID and deduplicated through
    {!Treequery.Engine.canonical}: identical queries share one index
    entry whose ID list fans out on firing, so a million copies of a
    popular query cost one matcher.  Each distinct entry is routed to a
    class:

    - {e Spine} — the query is a forward path spine
      ({!Streamq.Path_pattern.of_xpath}); merged into the shared
      prefix-sharing {!Trie}, where all spines are matched at once.
    - {e Twig} — conjunctive forward path with qualifiers
      ({!Streamq.Xpath_filter.twig_of}); a pooled streaming
      {!Streamq.Twig_matcher} (created once per session, [reset] per
      document) fed in the same SAX pass.
    - {e Auto} — a registered {!Automata.Automaton} (MSO property),
      advanced through the same pass by its push {!Automata.Automaton.stepper}.
    - {e General} — everything else (CQs, datalog, non-forward XPath):
      compiled once with {!Treequery.Engine.prepare} and evaluated as a
      Boolean plan on the materialised tree per document.

    One {!match_tree} call therefore streams the document's SAX events
    exactly once through trie + twig matchers + automata, and fires every
    matching subscription; Boolean semantics in every class agree with
    one-at-a-time [Engine.eval_boolean] (the [standing-match] differential
    oracle).

    Registration/unregistration must not run concurrently with matching;
    sessions are single-threaded and parallel document matching uses one
    session per domain ([Serve.Ingest]). *)

type query_class = Spine | Twig | General | Auto

val class_name : query_class -> string

type t

val create : unit -> t

val register : t -> id:int -> Treequery.Engine.query -> query_class
(** Register a subscription; returns the class its canonical entry lives
    in.  @raise Invalid_argument on a duplicate live ID. *)

val register_automaton : t -> id:int -> Automata.Automaton.t -> query_class
(** Register a standing automaton (deduplicated by automaton name);
    always returns {!Auto}.  @raise Invalid_argument on a duplicate live
    ID. *)

val unregister : t -> id:int -> bool
(** Remove a subscription; [false] if the ID is not live (idempotent —
    churn streams may target already-dead IDs).  When an entry's fan-out
    drops to zero the entry is dropped and its trie handle detached. *)

val live : t -> int
(** Live subscription IDs. *)

val entries : t -> int
(** Distinct canonical entries ([entries <= live]; the gap is dedup
    fan-out). *)

val trie_states : t -> int

val class_counts : t -> (string * int) list
(** Live entries per class, as [(class name, count)]. *)

(** {1 Matching sessions}

    A session owns the pooled per-pass state (trie pass, twig matchers,
    automaton steppers).  It lazily rebuilds when the entry set has
    churned (version counter).  One session per domain. *)

type session

val session : t -> session

val match_tree : session -> Treekit.Tree.t -> int list
(** Match one document: the sorted list of fired subscription IDs.
    Cost: one SAX pass (trie active states + twig/automaton steps) plus
    the compiled Boolean plans of the [General] entries plus the fired
    set. *)

val doc_active_work : session -> int
(** Trie active-state work of the last {!match_tree} (the scaling
    witness). *)

val doc_peak_depth : session -> int
