module Event = Treekit.Event
module P = Streamq.Path_pattern

(* One NFA state per distinct registered spine prefix.  Transitions are
   keyed by (edge, label test); a [Child] edge extends a prefix matched
   exactly at the parent, a [Descendant] edge a prefix matched at any
   ancestor-or-self of the parent — the same frame semantics as
   [Streamq.Path_matcher], with the per-pattern prefix bitmask replaced
   by shared trie states so N patterns cost one merged structure.
   Targets are unique per (state, edge, test), which is what makes the
   structure a prefix-sharing trie. *)
type state = {
  mutable child_lab : (string * int) list;
  mutable child_wild : int;  (* -1 when absent *)
  mutable desc_lab : (string * int) list;
  mutable desc_wild : int;
  mutable terminals : int list;  (* handles fired when this state is reached *)
}

let fresh_state () =
  { child_lab = []; child_wild = -1; desc_lab = []; desc_wild = -1; terminals = [] }

type t = {
  mutable states : state array;
  mutable count : int;
  mutable version : int;  (* bumped whenever [count] grows *)
}

let create () =
  { states = Array.init 8 (fun _ -> fresh_state ()); count = 1; version = 0 }

let states t = t.count

let version t = t.version

let new_state t =
  if t.count = Array.length t.states then begin
    let bigger = Array.init (2 * t.count) (fun _ -> fresh_state ()) in
    Array.blit t.states 0 bigger 0 t.count;
    t.states <- bigger
  end;
  let id = t.count in
  t.count <- t.count + 1;
  t.version <- t.version + 1;
  id

let step_target t from (s : P.step) =
  let st = t.states.(from) in
  let existing =
    match (s.edge, s.label) with
    | P.Child, Some l -> List.assoc_opt l st.child_lab
    | P.Child, None -> if st.child_wild >= 0 then Some st.child_wild else None
    | P.Descendant, Some l -> List.assoc_opt l st.desc_lab
    | P.Descendant, None -> if st.desc_wild >= 0 then Some st.desc_wild else None
  in
  match existing with
  | Some target -> target
  | None ->
    let target = new_state t in
    let st = t.states.(from) in
    (* re-read: [new_state] may have swapped the array *)
    (match (s.edge, s.label) with
    | P.Child, Some l -> st.child_lab <- (l, target) :: st.child_lab
    | P.Child, None -> st.child_wild <- target
    | P.Descendant, Some l -> st.desc_lab <- (l, target) :: st.desc_lab
    | P.Descendant, None -> st.desc_wild <- target);
    target

let add t pattern =
  if pattern = [] then invalid_arg "Subscribe.Trie.add: empty pattern";
  List.fold_left (fun from s -> step_target t from s) 0 pattern

let attach t ~state ~handle =
  let st = t.states.(state) in
  st.terminals <- handle :: st.terminals

let detach t ~state ~handle =
  let st = t.states.(state) in
  st.terminals <- List.filter (fun h -> h <> handle) st.terminals

(* ------------------------------------------------------------------ *)
(* Matching pass *)

(* Pooled per-pass working state, reusable across documents and across
   trie growth.  [acc_count.(s)] counts the open ancestors-or-self where
   [s] is exactly matched; the states with a positive count form the
   dense [live] array (swap-removal via [live_pos]), which is what
   [Descendant] transitions extend from.  Stamp arrays ([mark] per Open
   event, [fired_mark] per document) avoid O(states) clearing. *)
type pass = {
  trie : t;
  mutable cap : int;
  mutable acc_count : int array;
  mutable live : int array;
  mutable live_pos : int array;
  mutable live_len : int;
  mutable mark : int array;
  mutable fired_mark : int array;
  mutable gen : int;
  mutable doc : int;
  mutable frames : int list list;
  mutable depth : int;
  mutable fired : int list;
  mutable events : int;
  mutable peak : int;
  mutable active_work : int;
}

let pass trie =
  let cap = trie.count in
  {
    trie;
    cap;
    acc_count = Array.make cap 0;
    live = Array.make cap 0;
    live_pos = Array.make cap (-1);
    live_len = 0;
    mark = Array.make cap 0;
    fired_mark = Array.make cap 0;
    gen = 0;
    doc = 0;
    frames = [];
    depth = 0;
    fired = [];
    events = 0;
    peak = 0;
    active_work = 0;
  }

let ensure p =
  if p.cap < p.trie.count then begin
    let cap = max p.trie.count (2 * p.cap) in
    (* stamps restart at zero in the fresh arrays; [gen]/[doc] keep
       counting upward from their previous values, so no stale stamp can
       collide *)
    p.cap <- cap;
    p.acc_count <- Array.make cap 0;
    p.live <- Array.make cap 0;
    p.live_pos <- Array.make cap (-1);
    p.live_len <- 0;
    p.mark <- Array.make cap 0;
    p.fired_mark <- Array.make cap 0
  end

let begin_doc p =
  ensure p;
  for i = 0 to p.live_len - 1 do
    let s = p.live.(i) in
    p.acc_count.(s) <- 0;
    p.live_pos.(s) <- -1
  done;
  p.live_len <- 0;
  p.frames <- [];
  p.depth <- 0;
  p.fired <- [];
  p.doc <- p.doc + 1;
  p.events <- 0;
  p.peak <- 0;
  p.active_work <- 0

let push p ev =
  p.events <- p.events + 1;
  match ev with
  | Event.Open { label; _ } ->
    p.gen <- p.gen + 1;
    let exact = ref [] in
    let add s =
      if p.mark.(s) <> p.gen then begin
        p.mark.(s) <- p.gen;
        exact := s :: !exact
      end
    in
    (match p.frames with
    | [] -> add 0 (* the root anchors every pattern *)
    | parent :: _ ->
      List.iter
        (fun s ->
          let st = p.trie.states.(s) in
          (match List.assoc_opt label st.child_lab with
          | Some target -> add target
          | None -> ());
          if st.child_wild >= 0 then add st.child_wild)
        parent;
      for i = 0 to p.live_len - 1 do
        let st = p.trie.states.(p.live.(i)) in
        (match List.assoc_opt label st.desc_lab with
        | Some target -> add target
        | None -> ());
        if st.desc_wild >= 0 then add st.desc_wild
      done);
    List.iter
      (fun s ->
        if p.acc_count.(s) = 0 then begin
          p.live_pos.(s) <- p.live_len;
          p.live.(p.live_len) <- s;
          p.live_len <- p.live_len + 1
        end;
        p.acc_count.(s) <- p.acc_count.(s) + 1;
        let terminals = p.trie.states.(s).terminals in
        if terminals <> [] && p.fired_mark.(s) <> p.doc then begin
          p.fired_mark.(s) <- p.doc;
          p.fired <- terminals @ p.fired
        end)
      !exact;
    p.active_work <- p.active_work + List.length !exact;
    p.frames <- !exact :: p.frames;
    p.depth <- p.depth + 1;
    if p.depth > p.peak then p.peak <- p.depth
  | Event.Close _ -> (
    match p.frames with
    | [] -> invalid_arg "Subscribe.Trie.push: unbalanced events"
    | exact :: rest ->
      List.iter
        (fun s ->
          p.acc_count.(s) <- p.acc_count.(s) - 1;
          if p.acc_count.(s) = 0 then begin
            let pos = p.live_pos.(s) in
            let last = p.live.(p.live_len - 1) in
            p.live.(pos) <- last;
            p.live_pos.(last) <- pos;
            p.live_len <- p.live_len - 1;
            p.live_pos.(s) <- -1
          end)
        exact;
      p.frames <- rest;
      p.depth <- p.depth - 1)

let fired p = p.fired

let doc_events p = p.events

let doc_peak_depth p = p.peak

let doc_active_work p = p.active_work
