module Engine = Treequery.Engine
module Event = Treekit.Event
module P = Streamq.Path_pattern

type query_class = Spine | Twig | General | Auto

let class_name = function
  | Spine -> "spine"
  | Twig -> "twig"
  | General -> "general"
  | Auto -> "auto"

let c_docs = Obs.Counter.make "subscribe_documents"

let c_fired = Obs.Counter.make "subscribe_fired"

let c_fired_spine = Obs.Counter.make "subscribe_fired_spine"

let c_fired_twig = Obs.Counter.make "subscribe_fired_twig"

let c_fired_general = Obs.Counter.make "subscribe_fired_general"

let c_fired_auto = Obs.Counter.make "subscribe_fired_auto"

let c_active_work = Obs.Counter.make "subscribe_active_states"

let c_registered = Obs.Counter.make "subscribe_registrations"

let c_unregistered = Obs.Counter.make "subscribe_unregistrations"

type body =
  | Spine_body of { state : int }
  | Twig_body of { twig : Actree.Twigjoin.node }
  | Auto_body of { auto : Automata.Automaton.t }
  | General_body of { prepared : Engine.prepared }

type entry = {
  handle : int;
  canon : string;
  body : body;
  mutable ids : int list;  (* subscription fan-out, unordered *)
}

type t = {
  trie : Trie.t;
  by_canon : (string, entry) Hashtbl.t;
  by_id : (int, entry) Hashtbl.t;
  by_handle : (int, entry) Hashtbl.t;
  mutable next_handle : int;
  mutable version : int;  (* bumped when the entry set changes *)
}

let create () =
  {
    trie = Trie.create ();
    by_canon = Hashtbl.create 256;
    by_id = Hashtbl.create 256;
    by_handle = Hashtbl.create 256;
    next_handle = 0;
    version = 0;
  }

let live t = Hashtbl.length t.by_id

let entries t = Hashtbl.length t.by_canon

let trie_states t = Trie.states t.trie

let class_of_body = function
  | Spine_body _ -> Spine
  | Twig_body _ -> Twig
  | General_body _ -> General
  | Auto_body _ -> Auto

let class_counts t =
  let counts = [| 0; 0; 0; 0 |] in
  let slot = function Spine -> 0 | Twig -> 1 | General -> 2 | Auto -> 3 in
  Hashtbl.iter
    (fun _ e -> counts.(slot (class_of_body e.body)) <- counts.(slot (class_of_body e.body)) + 1)
    t.by_canon;
  [
    ("spine", counts.(0)); ("twig", counts.(1)); ("general", counts.(2));
    ("auto", counts.(3));
  ]

let rec twig_size (n : Actree.Twigjoin.node) =
  List.fold_left (fun acc (_, c) -> acc + twig_size c) 1 n.children

(* The class ladder: a query whose whole meaning is a forward spine goes
   into the merged trie (per-document cost shared with every other
   spine); a conjunctive forward path with qualifiers becomes a pooled
   streaming twig matcher fed in the same pass; anything else falls back
   to its compiled one-at-a-time plan, evaluated per document on the
   materialised tree.  Boolean semantics agree with
   [Engine.eval_boolean] in every class (the [standing-match] oracle). *)
let classify q =
  match q with
  | Engine.Xpath_query p -> (
    match P.of_xpath p with
    | Some pat when List.length pat <= 61 -> `Spine pat
    | _ -> (
      match Streamq.Xpath_filter.twig_of p with
      | Some twig when twig_size twig <= 62 -> `Twig twig
      | _ -> `General))
  | _ -> `General

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let add_entry t ~canon body =
  let handle = fresh_handle t in
  let e = { handle; canon; body; ids = [] } in
  Hashtbl.replace t.by_canon canon e;
  Hashtbl.replace t.by_handle handle e;
  (match body with
  | Spine_body { state } -> Trie.attach t.trie ~state ~handle
  | Twig_body _ | General_body _ | Auto_body _ -> ());
  t.version <- t.version + 1;
  e

let subscribe t ~id entry =
  if Hashtbl.mem t.by_id id then
    invalid_arg (Printf.sprintf "Subscribe.Index.register: duplicate id %d" id);
  entry.ids <- id :: entry.ids;
  Hashtbl.replace t.by_id id entry;
  Obs.Counter.incr c_registered;
  class_of_body entry.body

let register t ~id q =
  let canon = Engine.canonical q in
  let entry =
    match Hashtbl.find_opt t.by_canon canon with
    | Some e -> e
    | None ->
      let body =
        match classify q with
        | `Spine pat -> Spine_body { state = Trie.add t.trie pat }
        | `Twig twig -> Twig_body { twig }
        | `General -> General_body { prepared = Engine.prepare q }
      in
      add_entry t ~canon body
  in
  subscribe t ~id entry

let register_automaton t ~id auto =
  let canon = "auto|" ^ auto.Automata.Automaton.name in
  let entry =
    match Hashtbl.find_opt t.by_canon canon with
    | Some e -> e
    | None -> add_entry t ~canon (Auto_body { auto })
  in
  subscribe t ~id entry

let unregister t ~id =
  match Hashtbl.find_opt t.by_id id with
  | None -> false
  | Some e ->
    Hashtbl.remove t.by_id id;
    e.ids <- List.filter (fun i -> i <> id) e.ids;
    Obs.Counter.incr c_unregistered;
    if e.ids = [] then begin
      Hashtbl.remove t.by_canon e.canon;
      Hashtbl.remove t.by_handle e.handle;
      (match e.body with
      | Spine_body { state } -> Trie.detach t.trie ~state ~handle:e.handle
      | Twig_body _ | General_body _ | Auto_body _ -> ());
      t.version <- t.version + 1
    end;
    true

(* ------------------------------------------------------------------ *)
(* Matching sessions *)

type session = {
  index : t;
  pass : Trie.pass;
  mutable sversion : int;
  mutable twigs : (entry * Streamq.Twig_matcher.t) array;
  mutable autos : (entry * Automata.Automaton.stepper) array;
  mutable generals : entry array;
}

let session index =
  {
    index;
    pass = Trie.pass index.trie;
    sversion = -1;
    twigs = [||];
    autos = [||];
    generals = [||];
  }

let refresh s =
  if s.sversion <> s.index.version then begin
    let twigs = ref [] and autos = ref [] and generals = ref [] in
    Hashtbl.iter
      (fun _ e ->
        match e.body with
        | Spine_body _ -> ()
        | Twig_body { twig } ->
          twigs := (e, Streamq.Twig_matcher.create ~anchored:true twig) :: !twigs
        | Auto_body { auto } -> autos := (e, Automata.Automaton.stepper auto) :: !autos
        | General_body _ -> generals := e :: !generals)
      s.index.by_canon;
    s.twigs <- Array.of_list !twigs;
    s.autos <- Array.of_list !autos;
    s.generals <- Array.of_list !generals;
    s.sversion <- s.index.version
  end

let match_tree s tree =
  refresh s;
  Trie.begin_doc s.pass;
  Array.iter (fun (_, m) -> Streamq.Twig_matcher.reset m) s.twigs;
  Array.iter (fun (_, st) -> Automata.Automaton.reset_stepper st) s.autos;
  Event.iter tree (fun ev ->
      Trie.push s.pass ev;
      Array.iter (fun (_, m) -> Streamq.Twig_matcher.push m ev) s.twigs;
      Array.iter (fun (_, st) -> Automata.Automaton.step st ev) s.autos);
  let fired = ref [] in
  let fire counter (e : entry) =
    Obs.Counter.incr counter;
    fired := List.rev_append e.ids !fired
  in
  List.iter
    (fun handle ->
      match Hashtbl.find_opt s.index.by_handle handle with
      | Some e -> fire c_fired_spine e
      | None -> ())
    (Trie.fired s.pass);
  Array.iter
    (fun (e, m) ->
      if (Streamq.Twig_matcher.stats m).Streamq.Twig_matcher.matched then
        fire c_fired_twig e)
    s.twigs;
  Array.iter
    (fun (e, st) ->
      match Automata.Automaton.accepted st with
      | Some true -> fire c_fired_auto e
      | Some false | None -> ())
    s.autos;
  Array.iter
    (fun (e : entry) ->
      if e.body |> function
         | General_body { prepared } -> prepared.Engine.exec_boolean tree
         | _ -> false
      then fire c_fired_general e)
    s.generals;
  Obs.Counter.incr c_docs;
  Obs.Counter.add c_active_work (Trie.doc_active_work s.pass);
  let out = List.sort_uniq compare !fired in
  Obs.Counter.add c_fired (List.length out);
  out

let doc_active_work s = Trie.doc_active_work s.pass

let doc_peak_depth s = Trie.doc_peak_depth s.pass
