module Tree = Treekit.Tree
module Nodeset = Treekit.Nodeset

type query =
  | Xpath_query of Xpath.Ast.path
  | Cq_query of Cqtree.Query.t
  | Datalog_query of Mdatalog.Ast.program
  | Positive_query of Cqtree.Positive.t
  | Axis_datalog_query of Mdatalog.Axis_datalog.program

let parse_xpath s = Xpath_query (Xpath.Parser.parse s)
let parse_cq s = Cq_query (Cqtree.Query.of_string s)
let parse_datalog s = Datalog_query (Mdatalog.Parser.parse s)
let parse_positive ss = Positive_query (Cqtree.Positive.of_strings ss)
let parse_axis_datalog s = Axis_datalog_query (Mdatalog.Axis_datalog.parse s)

type strategy =
  | Xpath_bottom_up
  | Cq_yannakakis
  | Cq_arc_consistency
  | Cq_rewrite
  | Datalog_hornsat
  | Positive_rewrite
  | Datalog_fixpoint
  | Xpath_fo2

let strategy_name = function
  | Xpath_bottom_up -> "xpath-bottom-up"
  | Cq_yannakakis -> "yannakakis"
  | Cq_arc_consistency -> "arc-consistency"
  | Cq_rewrite -> "rewrite-to-acyclic"
  | Datalog_hornsat -> "datalog-hornsat"
  | Positive_rewrite -> "positive-union-rewrite"
  | Datalog_fixpoint -> "datalog-yannakakis-fixpoint"
  | Xpath_fo2 -> "xpath-fo2"

let strategy_of_name s =
  List.find_opt
    (fun st -> strategy_name st = s)
    [
      Xpath_bottom_up; Cq_yannakakis; Cq_arc_consistency; Cq_rewrite;
      Datalog_hornsat; Positive_rewrite; Datalog_fixpoint; Xpath_fo2;
    ]

let plan = function
  | Xpath_query _ -> Xpath_bottom_up
  | Datalog_query _ -> Datalog_hornsat
  | Positive_query _ -> Positive_rewrite
  | Axis_datalog_query _ -> Datalog_fixpoint
  | Cq_query q ->
    if Cqtree.Join_tree.is_acyclic q then Cq_yannakakis
    else if Actree.Xeval.supported q <> None then Cq_arc_consistency
    else Cq_rewrite

(* Every strategy able to answer the query, planner default first.  An
   XPath query has up to four interchangeable engines (the optimizer's
   arms): the bottom-up evaluator, monadic datalog via the Section 3
   translation, Yannakakis when the path is conjunctive (Prop. 4.2), and
   FO² (Marx / Section 4, O(n²·|Q|) — dominated on large documents, but
   a genuine candidate on small ones).  A CQ has the three Section 4–6
   engines where applicable; the remaining languages have exactly one
   evaluator. *)
let strategies query =
  let default = plan query in
  let extras =
    match query with
    | Xpath_query p ->
      (match Xpath.To_cq.to_query p with
      | Some cq when Cqtree.Join_tree.is_acyclic cq -> [ Cq_yannakakis ]
      | _ -> [])
      @ [ Datalog_hornsat; Xpath_fo2 ]
    | Cq_query q ->
      List.filter
        (fun s -> s <> default)
        ((if Cqtree.Join_tree.is_acyclic q then [ Cq_yannakakis ] else [])
        @ (if Actree.Xeval.supported q <> None then [ Cq_arc_consistency ]
           else [])
        @ [ Cq_rewrite ])
    | Datalog_query _ | Positive_query _ | Axis_datalog_query _ -> []
  in
  default :: extras

(* the |Q| term of the paper's bounds: syntactic size of the query *)
let query_size = function
  | Xpath_query p -> Xpath.Ast.size p
  | Cq_query q -> Cqtree.Query.atom_count q + List.length (Cqtree.Query.vars q)
  | Positive_query u ->
    List.fold_left
      (fun a q -> a + Cqtree.Query.atom_count q)
      (List.length u.Cqtree.Positive.disjuncts)
      u.Cqtree.Positive.disjuncts
  | Datalog_query p ->
    List.fold_left
      (fun a r -> a + 1 + List.length r.Mdatalog.Ast.body)
      0 p.Mdatalog.Ast.rules
  | Axis_datalog_query p -> 1 + List.length p.Mdatalog.Axis_datalog.rules

(* ------------------------------------------------------------------ *)
(* Canonical forms and fingerprints (the plan-cache key).               *)

(* Re-associate the Seq/Union spines to the right and canonicalize
   qualifiers, so `(a/b)/c` and `a/(b/c)` — same query, different parse
   trees — print identically.  Top-level `and`s inside a qualifier are
   folded into the step's qualifier list (`a[p and q]` ≡ `a[p][q]`). *)
let rec canon_path = function
  | Xpath.Ast.Step s -> Xpath.Ast.Step (canon_step s)
  | Xpath.Ast.Seq (a, b) -> seq_right (canon_path a) (canon_path b)
  | Xpath.Ast.Union (a, b) -> union_right (canon_path a) (canon_path b)

and seq_right a b =
  match a with
  | Xpath.Ast.Seq (x, y) -> Xpath.Ast.Seq (x, seq_right y b)
  | _ -> Xpath.Ast.Seq (a, b)

and union_right a b =
  match a with
  | Xpath.Ast.Union (x, y) -> Xpath.Ast.Union (x, union_right y b)
  | _ -> Xpath.Ast.Union (a, b)

and canon_step { Xpath.Ast.axis; quals } =
  { Xpath.Ast.axis; quals = List.concat_map flatten_and (List.map canon_qual quals) }

and flatten_and = function
  | Xpath.Ast.And (a, b) -> flatten_and a @ flatten_and b
  | q -> [ q ]

and canon_qual = function
  | Xpath.Ast.Exists p -> Xpath.Ast.Exists (canon_path p)
  | Xpath.Ast.Lab l -> Xpath.Ast.Lab l
  | Xpath.Ast.And (a, b) -> and_right (canon_qual a) (canon_qual b)
  | Xpath.Ast.Or (a, b) -> or_right (canon_qual a) (canon_qual b)
  | Xpath.Ast.Not q -> Xpath.Ast.Not (canon_qual q)

and and_right a b =
  match a with
  | Xpath.Ast.And (x, y) -> Xpath.Ast.And (x, and_right y b)
  | _ -> Xpath.Ast.And (a, b)

and or_right a b =
  match a with
  | Xpath.Ast.Or (x, y) -> Xpath.Ast.Or (x, or_right y b)
  | _ -> Xpath.Ast.Or (a, b)

(* alpha-rename to v0, v1, … in order of first appearance (head first) *)
let canon_cq q =
  let map =
    List.mapi (fun i v -> (v, "v" ^ string_of_int i)) (Cqtree.Query.vars q)
  in
  Cqtree.Query.rename (fun v -> List.assoc v map) q

(* per-rule alpha-renaming for monadic datalog over tau+ *)
let canon_datalog_rule (r : Mdatalog.Ast.rule) =
  let map = ref [] in
  let fresh v =
    match List.assoc_opt v !map with
    | Some v' -> v'
    | None ->
      let v' = "v" ^ string_of_int (List.length !map) in
      map := (v, v') :: !map;
      v'
  in
  let head_var = fresh r.Mdatalog.Ast.head_var in
  let body =
    List.map
      (function
        | Mdatalog.Ast.U (u, x) -> Mdatalog.Ast.U (u, fresh x)
        | Mdatalog.Ast.B (b, x, y) ->
          let x = fresh x in
          Mdatalog.Ast.B (b, x, fresh y))
      r.Mdatalog.Ast.body
  in
  { r with Mdatalog.Ast.head_var; body }

(* an axis-datalog rule body is a CQ atom list: reuse the CQ renamer by
   wrapping it in a throwaway query *)
let canon_axis_rule (r : Mdatalog.Axis_datalog.rule) =
  let q =
    canon_cq
      { Cqtree.Query.head = [ r.Mdatalog.Axis_datalog.head_var ];
        atoms = r.Mdatalog.Axis_datalog.body }
  in
  Printf.sprintf "%s(%s)%s" r.Mdatalog.Axis_datalog.head
    (List.hd q.Cqtree.Query.head)
    (Cqtree.Query.to_string q)

let canonical = function
  | Xpath_query p -> "xpath|" ^ Xpath.Ast.to_string (canon_path p)
  | Cq_query q -> "cq|" ^ Cqtree.Query.to_string (canon_cq q)
  | Positive_query u ->
    "positive|"
    ^ String.concat " | "
        (List.map
           (fun d -> Cqtree.Query.to_string (canon_cq d))
           u.Cqtree.Positive.disjuncts)
  | Datalog_query p ->
    "datalog|"
    ^ Format.asprintf "%a" Mdatalog.Ast.pp_program
        { p with Mdatalog.Ast.rules = List.map canon_datalog_rule p.rules }
  | Axis_datalog_query p ->
    "axis-datalog|"
    ^ String.concat " "
        (List.map canon_axis_rule p.Mdatalog.Axis_datalog.rules)
    ^ " ?- " ^ p.Mdatalog.Axis_datalog.query

(* 64-bit FNV-1a: stable across runs and word sizes, unlike Hashtbl.hash *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fingerprint q =
  let c = canonical q in
  let lang = String.sub c 0 (String.index c '|') in
  Printf.sprintf "%s:%016Lx" lang (fnv1a64 c)

let explain ?auto ?observed ?plan_cache query =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match query with
  | Xpath_query p ->
    pr "language:    Core XPath\n";
    pr "query:       %s\n" (Xpath.Ast.to_string p);
    pr "size |Q|:    %d\n" (Xpath.Ast.size p);
    pr "fragment:    %s%s%s\n"
      (if Xpath.Ast.is_conjunctive p then "conjunctive "
       else if Xpath.Ast.is_positive p then "positive "
       else "full ")
      (if Xpath.Ast.is_forward p then "forward " else "")
      "Core XPath";
    pr "strategy:    %s\n" (strategy_name Xpath_bottom_up);
    pr "bound:       O(n * |Q|) per axis image; linear data complexity (Fig. 7)\n"
  | Datalog_query p ->
    pr "language:    monadic datalog over tau+\n";
    pr "rules:       %d (query predicate %s)\n" (List.length p.rules) p.query;
    pr "tmnf:        %b\n" (Mdatalog.Tmnf.is_tmnf p);
    pr "strategy:    %s\n" (strategy_name Datalog_hornsat);
    pr "bound:       O(|P| * |Dom|) combined complexity (Theorem 3.2)\n"
  | Positive_query u ->
    pr "language:    positive FO (union of %d conjunctive queries)\n"
      (List.length u.Cqtree.Positive.disjuncts);
    pr "arity:       %d\n" u.Cqtree.Positive.arity;
    pr "strategy:    %s\n" (strategy_name Positive_rewrite);
    pr "bound:       O(||A||) for fixed queries (Corollary 5.2)\n"
  | Axis_datalog_query p ->
    pr "language:    monadic datalog over axis relations\n";
    pr "rules:       %d (query predicate %s)\n"
      (List.length p.Mdatalog.Axis_datalog.rules) p.Mdatalog.Axis_datalog.query;
    pr "strategy:    %s\n" (strategy_name Datalog_fixpoint);
    pr "bound:       O(||A|| * |rule|) per pass (Section 7 remark; Fig. 7 mon.datalog[X])\n"
  | Cq_query q ->
    pr "language:    conjunctive query\n";
    pr "query:       %s\n" (Cqtree.Query.to_string q);
    pr "variables:   %d, atoms: %d\n"
      (List.length (Cqtree.Query.vars q))
      (Cqtree.Query.atom_count q);
    let acyclic = Cqtree.Join_tree.is_acyclic q in
    pr "acyclic:     %b\n" acyclic;
    if not acyclic then
      pr "tree-width:  %d (min-fill upper bound)\n" (Cqtree.Qgraph.treewidth_upper q);
    (match Actree.Xeval.supported q with
    | Some kind ->
      pr "x-property:  signature tractable w.r.t. <%s (Prop. 6.6)\n"
        (Treekit.Order.kind_name kind)
    | None -> pr "x-property:  signature not within tau1/tau2/tau3\n");
    let strat = plan query in
    pr "strategy:    %s\n" (strategy_name strat);
    pr "bound:       %s\n"
      (match strat with
      | Cq_yannakakis -> "O(||A|| * |Q|) (Yannakakis, Prop. 4.2)"
      | Cq_arc_consistency -> "O(||A|| * |Q|) Boolean/unary (Theorem 6.5)"
      | Cq_rewrite ->
        "exponential in |Q| to rewrite (Theorem 5.1), then O(||A|| * |Q'|) per branch"
      | Xpath_bottom_up | Datalog_hornsat | Positive_rewrite | Datalog_fixpoint
      | Xpath_fo2 ->
        assert false));
  (* the interchangeable engines an adaptive (`Auto`) run may pick from *)
  (match strategies query with
  | [] | [ _ ] -> ()
  | cands ->
    pr "candidates:  %s\n" (String.concat ", " (List.map strategy_name cands)));
  (match auto with
  | None -> ()
  | Some (picked, why) -> pr "auto-pick:   %s (%s)\n" (strategy_name picked) why);
  pr "fingerprint: %s\n" (fingerprint query);
  (match plan_cache with
  | None -> ()
  | Some `Hit -> pr "plan-cache:  hit\n"
  | Some `Miss -> pr "plan-cache:  miss\n");
  (* after a traced run, show what the strategy actually did so the
     bound above can be checked against observed work *)
  let report =
    match observed with Some r -> r | None -> Obs.Report.capture ()
  in
  if report.Obs.Report.counters <> [] then begin
    pr "observed:\n";
    List.iter
      (fun (name, v) -> pr "  %-28s %d\n" name v)
      report.Obs.Report.counters
  end;
  (* scoped-collection profiles (one per served request when the serving
     layer ran): which part of the observed work each region did *)
  if report.Obs.Report.profiles <> [] then begin
    pr "profiles:\n";
    List.iter
      (fun (p : Obs.profile) ->
        pr "  %-28s %.3f ms%s\n" p.Obs.profile_label
          (p.Obs.profile_duration *. 1000.0)
          (match List.assoc_opt "fingerprint" p.Obs.profile_attrs with
          | Some a -> "  [" ^ Obs.attr_to_string a ^ "]"
          | None -> "");
        List.iter
          (fun (name, v) -> pr "    %-28s %d\n" name v)
          p.Obs.profile_counters)
      report.Obs.Report.profiles
  end;
  Buffer.contents buf

(* Span attributes tying a measurement to its inputs: |D|, |Q|, the
   chosen strategy and the plan fingerprint.  Only computed when
   observability is enabled — fingerprinting canonicalizes the query,
   which must not tax an untraced hot path. *)
let strategy_attrs ?tree query strategy =
  if not (Obs.enabled ()) then []
  else
    [
      ("strategy", Obs.Str (strategy_name strategy));
      ("|Q|", Obs.Int (query_size query));
      ("fingerprint", Obs.Str (fingerprint query));
    ]
    @
    match tree with
    | Some t -> [ ("|D|", Obs.Int (Tree.size t)) ]
    | None -> []

(* one registered counter per strategy, bumped at every strategy-span
   entry: an [Obs.Scope] profile's counter deltas then carry the
   strategy tag intrinsically ([strategy_runs_<name>]), so the serving
   layer's telemetry can attribute work to a strategy even from a bare
   profile with no attrs *)
let strategy_counter =
  let counter_of name =
    Obs.Counter.make
      ("strategy_runs_" ^ String.map (fun c -> if c = '-' then '_' else c) name)
  in
  let counters =
    List.map
      (fun s -> (s, counter_of (strategy_name s)))
      [
        Xpath_bottom_up; Cq_yannakakis; Cq_arc_consistency; Cq_rewrite;
        Datalog_hornsat; Positive_rewrite; Datalog_fixpoint; Xpath_fo2;
      ]
  in
  fun strategy -> List.assq strategy counters

(* one span per strategy run, so a traced evaluation shows up as
   [strategy:<name>] with the per-phase spans of the underlying
   algorithm nested below it *)
let in_strategy_span ?tree query f =
  let strategy = plan query in
  Obs.Span.with_
    ~attrs:(strategy_attrs ?tree query strategy)
    ("strategy:" ^ strategy_name strategy)
    (fun () ->
      Obs.Counter.incr (strategy_counter strategy);
      f ())

let eval_cq_with strategy q tree =
  match strategy with
  | Cq_yannakakis ->
    if Cqtree.Query.is_unary q then Cqtree.Yannakakis.unary q tree
    else
      let sat = Cqtree.Yannakakis.boolean q tree in
      if Cqtree.Query.is_boolean q then begin
        let s = Nodeset.create (Tree.size tree) in
        if sat then Nodeset.add s (Tree.root tree);
        s
      end
      else begin
        let s = Nodeset.create (Tree.size tree) in
        List.iter (fun t -> Nodeset.add s t.(0)) (Cqtree.Yannakakis.solutions q tree);
        s
      end
  | Cq_arc_consistency ->
    if Cqtree.Query.is_boolean q then begin
      let s = Nodeset.create (Tree.size tree) in
      (match Actree.Xeval.boolean q tree with
      | Some true -> Nodeset.add s (Tree.root tree)
      | Some false | None -> ());
      s
    end
    else begin
      match Actree.Xeval.solutions q tree with
      | Some sols ->
        let s = Nodeset.create (Tree.size tree) in
        List.iter (fun t -> Nodeset.add s t.(0)) sols;
        s
      | None -> assert false
    end
  | Cq_rewrite ->
    if Cqtree.Query.is_unary q then Cqtree.Rewrite.unary q tree
    else if Cqtree.Query.is_boolean q then begin
      let s = Nodeset.create (Tree.size tree) in
      if Cqtree.Rewrite.boolean q tree then Nodeset.add s (Tree.root tree);
      s
    end
    else begin
      let s = Nodeset.create (Tree.size tree) in
      List.iter (fun t -> Nodeset.add s t.(0)) (Cqtree.Rewrite.solutions q tree);
      s
    end
  | Xpath_bottom_up | Datalog_hornsat | Positive_rewrite | Datalog_fixpoint
  | Xpath_fo2 ->
    assert false

let eval_cq q tree = eval_cq_with (plan (Cq_query q)) q tree

(* unwrapped body shared by [eval] and the non-CQ fall-through branches
   of [eval_boolean]/[solutions], so a run opens exactly one strategy
   span *)
let eval_inner query tree =
  match query with
  | Xpath_query p -> Xpath.Eval.query tree p
  | Datalog_query p -> Mdatalog.Eval.run p tree
  | Axis_datalog_query p -> Mdatalog.Axis_datalog.run p tree
  | Positive_query u ->
    if u.Cqtree.Positive.arity = 1 then Cqtree.Positive.unary u tree
    else begin
      let s = Nodeset.create (Tree.size tree) in
      if u.Cqtree.Positive.arity = 0 then begin
        if Cqtree.Positive.boolean u tree then Nodeset.add s (Tree.root tree)
      end
      else
        List.iter (fun t -> Nodeset.add s t.(0)) (Cqtree.Positive.solutions u tree);
      s
    end
  | Cq_query q -> eval_cq q tree

let eval query tree = in_strategy_span ~tree query (fun () -> eval_inner query tree)

let boolean_cq_with strategy q tree =
  match strategy with
  | Cq_yannakakis -> Cqtree.Yannakakis.boolean q tree
  | Cq_arc_consistency -> (
    match Actree.Xeval.boolean q tree with Some b -> b | None -> assert false)
  | Cq_rewrite -> Cqtree.Rewrite.boolean q tree
  | Xpath_bottom_up | Datalog_hornsat | Positive_rewrite | Datalog_fixpoint
  | Xpath_fo2 ->
    assert false

let eval_boolean query tree =
  in_strategy_span ~tree query @@ fun () ->
  match query with
  | Cq_query q -> boolean_cq_with (plan query) q tree
  | Positive_query u -> Cqtree.Positive.boolean u tree
  | Xpath_query _ | Datalog_query _ | Axis_datalog_query _ ->
    not (Nodeset.is_empty (eval_inner query tree))

let solutions query tree =
  in_strategy_span ~tree query @@ fun () ->
  match query with
  | Cq_query q -> (
    match plan query with
    | Cq_yannakakis -> Cqtree.Yannakakis.solutions q tree
    | Cq_arc_consistency -> (
      match Actree.Xeval.solutions q tree with Some s -> s | None -> assert false)
    | Cq_rewrite -> Cqtree.Rewrite.solutions q tree
    | Xpath_bottom_up | Datalog_hornsat | Positive_rewrite | Datalog_fixpoint
    | Xpath_fo2 ->
      assert false)
  | Positive_query u -> Cqtree.Positive.solutions u tree
  | Xpath_query _ | Datalog_query _ | Axis_datalog_query _ ->
    List.map (fun v -> [| v |]) (Nodeset.elements (eval_inner query tree))

(* ------------------------------------------------------------------ *)
(* Prepared plans: the planning decision — and, for the rewrite
   strategy, the exponential-in-|Q| union of acyclic queries — is
   computed once, so a cached plan pays only evaluation on reuse. *)

type prepared = {
  source : query;
  strategy : strategy;
  canon : string;
  fp : string;
  exec : Tree.t -> Nodeset.t;
  exec_boolean : Tree.t -> bool;
}

let prepare_with strategy query =
  if not (List.mem strategy (strategies query)) then
    invalid_arg
      (Printf.sprintf "Engine.prepare_with: %s cannot evaluate %s"
         (strategy_name strategy) (fingerprint query));
  let span f tree =
    Obs.Span.with_
      ~attrs:(strategy_attrs ~tree query strategy)
      ("strategy:" ^ strategy_name strategy)
      (fun () ->
        Obs.Counter.incr (strategy_counter strategy);
        f tree)
  in
  let exec, exec_boolean =
    match (query, strategy) with
    | Cq_query q, Cq_rewrite ->
      let { Cqtree.Rewrite.queries; _ } = Cqtree.Rewrite.rewrite q in
      let sat tree = List.exists (fun q' -> Cqtree.Yannakakis.boolean q' tree) queries in
      let exec tree =
        if Cqtree.Query.is_unary q then begin
          let out = Nodeset.create (Tree.size tree) in
          List.iter
            (fun q' -> Nodeset.union_into out (Cqtree.Yannakakis.unary q' tree))
            queries;
          out
        end
        else begin
          let s = Nodeset.create (Tree.size tree) in
          if Cqtree.Query.is_boolean q then begin
            if sat tree then Nodeset.add s (Tree.root tree)
          end
          else
            List.iter
              (fun q' ->
                List.iter
                  (fun t -> Nodeset.add s t.(0))
                  (Cqtree.Yannakakis.solutions q' tree))
              queries;
          s
        end
      in
      (exec, sat)
    | Cq_query q, _ -> (eval_cq_with strategy q, boolean_cq_with strategy q)
    | Xpath_query p, Cq_yannakakis ->
      (* conjunctive path → acyclic CQ (Prop. 4.2): [strategies] only
         offers this arm when the translation exists *)
      let cq =
        match Xpath.To_cq.to_query p with Some cq -> cq | None -> assert false
      in
      (eval_cq_with Cq_yannakakis cq, boolean_cq_with Cq_yannakakis cq)
    | Xpath_query p, Datalog_hornsat ->
      let exec tree = Xpath.To_datalog.eval_via_datalog tree p in
      (exec, fun tree -> not (Nodeset.is_empty (exec tree)))
    | Xpath_query p, Xpath_fo2 ->
      (* translate once at prepare time (linear, Marx); evaluation is the
         O(n²·|Q|) naive FO² pass *)
      let phi = Folang.Of_xpath.unary p in
      let psi = Folang.Of_xpath.boolean p in
      ( (fun tree -> Folang.Eval.unary tree phi),
        fun tree -> Folang.Eval.holds tree psi )
    | Positive_query u, _ -> (eval_inner query, Cqtree.Positive.boolean u)
    | (Xpath_query _ | Datalog_query _ | Axis_datalog_query _), _ ->
      ( eval_inner query,
        fun tree -> not (Nodeset.is_empty (eval_inner query tree)) )
  in
  {
    source = query;
    strategy;
    canon = canonical query;
    fp = fingerprint query;
    exec = span exec;
    exec_boolean = span exec_boolean;
  }

let prepare query = prepare_with (plan query) query
