(** The unified query-processing front end.

    Ties the whole library together along the paper's tractability map
    (Figure 7 and Sections 4–6): parse a query in one of three languages,
    pick an evaluation strategy, evaluate.

    Strategy selection for conjunctive queries follows the paper:
    + acyclic → Yannakakis' algorithm (Section 4, O(‖A‖·|Q|));
    + cyclic but X-property signature → arc-consistency (Section 6,
      O(‖A‖·|Q|) for Boolean/unary);
    + otherwise → rewrite into a union of acyclic queries (Theorem 5.1,
      exponential in |Q|, then linear in the data) — the general case is
      NP-complete, so some exponential in |Q| is unavoidable unless
      P = NP.

    Core XPath uses the set-at-a-time bottom-up evaluator (O(n·|Q|²)
    overall; O(n·|Q|) per axis image); monadic datalog grounds to Horn-SAT
    (Theorem 3.2). *)

type query =
  | Xpath_query of Xpath.Ast.path
  | Cq_query of Cqtree.Query.t
  | Datalog_query of Mdatalog.Ast.program
  | Positive_query of Cqtree.Positive.t
      (** a union of conjunctive queries = positive FO (Corollary 5.2) *)
  | Axis_datalog_query of Mdatalog.Axis_datalog.program
      (** monadic datalog over arbitrary axes (Figure 7's mon.datalog[X]) *)

val parse_xpath : string -> query
(** @raise Treekit.Parse_error.Error with the offending token's offset *)

val parse_cq : string -> query
(** @raise Failure *)

val parse_datalog : string -> query
(** @raise Mdatalog.Parser.Syntax_error *)

val parse_positive : string list -> query
(** One conjunctive query per string; their union.
    @raise Failure @raise Invalid_argument *)

val parse_axis_datalog : string -> query
(** @raise Treekit.Parse_error.Error with the offending statement's
    offset *)

type strategy =
  | Xpath_bottom_up
  | Cq_yannakakis
  | Cq_arc_consistency
  | Cq_rewrite
  | Datalog_hornsat
  | Positive_rewrite
  | Datalog_fixpoint
  | Xpath_fo2
      (** Core XPath via the FO² embedding (Marx / Section 4): translate
          in linear time, evaluate naively in O(n²·|Q|).  Never the
          planner default — an optimizer arm that only wins on small
          documents. *)

val strategy_name : strategy -> string

val strategy_of_name : string -> strategy option
(** Inverse of {!strategy_name} (the CLI's [--strategy] parser). *)

val plan : query -> strategy
(** The strategy {!eval} will use. *)

val strategies : query -> strategy list
(** Every strategy able to answer the query, {!plan}'s default first:
    the candidate set an adaptive optimizer picks from.  XPath queries
    offer the bottom-up evaluator, monadic datalog via the Section 3
    translation, Yannakakis when the path is conjunctive (Prop. 4.2) and
    FO²; conjunctive queries offer Yannakakis (acyclic), arc-consistency
    (X-property signature) and the acyclic-union rewrite; the remaining
    languages have exactly one evaluator. *)

val query_size : query -> int
(** The |Q| term of the paper's bounds: syntactic size of the query
    (steps + qualifiers for XPath, atoms + variables for CQs, atoms over
    all rules for datalog).  Used by the serving layer's admission
    control and by span attributes. *)

(** {1 Canonical forms and fingerprints}

    The serving layer's plan cache keys on a canonical query fingerprint:
    two textual variants of the same query must collapse to one cache
    entry, and structurally distinct queries must not collide. *)

val canonical : query -> string
(** A language-tagged canonical rendering: XPath paths have their [Seq],
    [Union], [and]/[or] spines re-associated (so parenthesization variants
    print identically) and top-level [and]s inside a qualifier folded into
    the step's qualifier list; conjunctive queries (and each disjunct of a
    positive query, and each datalog rule) are alpha-renamed to [v0, v1, …]
    in order of first appearance.  Whitespace variants are already erased
    by parsing.  [canonical q = canonical q'] iff the plan compiled for
    [q] may be reused for [q']. *)

val fingerprint : query -> string
(** ["lang:%016x"] — the language tag and a 64-bit FNV-1a hash of
    {!canonical} (stable across runs and architectures).  The plan cache
    stores the full canonical string alongside, so a hash collision can
    never silently serve the wrong plan; the fingerprint is the short
    name used in [explain] output, traces and eviction bookkeeping. *)

(** {1 Prepared (compiled) plans} *)

type prepared = private {
  source : query;
  strategy : strategy;
  canon : string;  (** {!canonical} of [source] *)
  fp : string;  (** {!fingerprint} of [source] *)
  exec : Treekit.Tree.t -> Treekit.Nodeset.t;
  exec_boolean : Treekit.Tree.t -> bool;
}
(** A query with its planning decisions (and, for the rewrite strategy,
    the exponential-in-|Q| union of acyclic queries) computed once, so a
    cached plan pays only evaluation on reuse.  [exec]/[exec_boolean]
    agree with {!eval}/{!eval_boolean} (property-tested by the
    [plan-cache] differential oracle). *)

val prepare : query -> prepared
(** Plan and compile once.  Raises whatever {!plan} would on malformed
    queries. *)

val prepare_with : strategy -> query -> prepared
(** Compile with a caller-chosen strategy instead of {!plan}'s default —
    the hook the adaptive optimizer (and a fixed [--strategy] serve run)
    uses to force an arm.  [exec]/[exec_boolean] agree with {!prepare}'s
    for every strategy in {!strategies} (property-tested by the
    [optimizer-pick] differential oracle).
    @raise Invalid_argument when the strategy is not in
    [strategies query]. *)

val explain :
  ?auto:strategy * string ->
  ?observed:Obs.Report.t ->
  ?plan_cache:[ `Hit | `Miss ] ->
  query ->
  string
(** A human-readable account of the plan: language, fragment properties
    (conjunctive/positive/forward, acyclicity, signature class, estimated
    tree-width), chosen strategy, the complexity bound the paper gives
    for it, the candidate strategy set ({!strategies}, when more than
    one), and the query's {!fingerprint}.  [auto] (supplied by the
    adaptive optimizer) adds an "auto-pick:" line reporting the picked
    strategy and why.  [plan_cache] (supplied by the
    serving layer) adds a "plan-cache:" line with the lookup outcome.  If
    [observed] (default: the counters recorded since the last [Obs.reset],
    i.e. of the preceding traced run) is nonempty, an "observed:" section
    lists the counters so the bound can be compared with the work actually
    done. *)

val eval : query -> Treekit.Tree.t -> Treekit.Nodeset.t
(** Unary evaluation.  A Boolean conjunctive query returns [{root}] when
    satisfied and [{}] otherwise; a k-ary (k ≥ 2) conjunctive query
    returns the set of nodes in its first head column (use {!solutions}
    for the tuples).
    @raise Invalid_argument on malformed queries *)

val eval_boolean : query -> Treekit.Tree.t -> bool
(** Nonemptiness of the query answer. *)

val solutions : query -> Treekit.Tree.t -> int array list
(** Head tuples for conjunctive queries; singleton tuples of {!eval} for
    the other languages. *)
