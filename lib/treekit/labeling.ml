type row = { pre : int; post : int; parent_pre : int option; lab : string }

type t = row array

let xasr tree =
  Array.init (Tree.size tree) (fun v ->
      {
        pre = v + 1;
        post = Tree.post tree v + 1;
        parent_pre =
          (let p = Tree.parent tree v in
           if p = -1 then None else Some (p + 1));
        lab = Tree.label tree v;
      })

let same_parent ru rv = ru.parent_pre = rv.parent_pre

(* Immediate-sibling adjacency is not a function of two (pre, post, parent)
   rows: it additionally needs the subtree size (equivalently the depth) of
   the left sibling.  All other axes are row-local; see the .mli. *)
let rec decide_axis axis ru rv =
  let ancestor a b = a.pre < b.pre && b.post < a.post in
  let following a b = a.pre < b.pre && a.post < b.post in
  match axis with
  | Axis.Self -> ru.pre = rv.pre
  | Axis.Child -> rv.parent_pre = Some ru.pre
  | Axis.Descendant -> ancestor ru rv
  | Axis.Descendant_or_self -> ru.pre = rv.pre || ancestor ru rv
  | Axis.Following_sibling -> same_parent ru rv && ru.pre < rv.pre
  | Axis.Following_sibling_or_self -> same_parent ru rv && ru.pre <= rv.pre
  | Axis.Following -> following ru rv
  | Axis.Parent -> ru.parent_pre = Some rv.pre
  | Axis.Ancestor -> ancestor rv ru
  | Axis.Ancestor_or_self -> ru.pre = rv.pre || ancestor rv ru
  | Axis.Preceding_sibling -> same_parent ru rv && rv.pre < ru.pre
  | Axis.Preceding_sibling_or_self -> same_parent ru rv && rv.pre <= ru.pre
  | Axis.Preceding -> following rv ru
  | Axis.Prev_sibling -> decide_axis Axis.Next_sibling rv ru
  | Axis.Next_sibling ->
    invalid_arg
      "Labeling.decide_axis: immediate-sibling adjacency is not decidable \
       from two (pre, post, parent) rows; use Following_sibling plus \
       pre-minimality over the relation"

let pp fmt rows =
  Format.fprintf fmt "@[<v>pre post parent_pre lab";
  Array.iter
    (fun r ->
      Format.fprintf fmt "@,%3d %4d %10s %3s" r.pre r.post
        (match r.parent_pre with None -> "bot" | Some p -> string_of_int p)
        r.lab)
    rows;
  Format.fprintf fmt "@]"

let pp_node tree fmt v =
  Format.fprintf fmt "%d:%d:%s" (v + 1) (Tree.post tree v + 1) (Tree.label tree v)
