(** The XPath axis relations over trees (Section 2 of the paper).

    The paper's binary tree-navigation relations and their inverses, as a
    closed variant.  In the paper's notation:

    - [Child], [Descendant = Child⁺], [Descendant_or_self = Child*],
    - [Next_sibling = NextSibling],
      [Following_sibling = NextSibling⁺],
      [Following_sibling_or_self = NextSibling*],
    - [Following],
    - the inverses [Parent], [Ancestor], [Ancestor_or_self], [Prev_sibling],
      [Preceding_sibling], [Preceding_sibling_or_self], [Preceding],
    - and [Self].

    Three access paths are provided, each matching a different engine in the
    repository:

    - {!mem} — O(1) membership via the pre/post characterisations
      ([Child⁺(x,y) ⇔ x <pre y ∧ y <post x],
       [Following(x,y) ⇔ x <pre y ∧ x <post y]);
    - {!fold} — enumeration of one node's axis image in document order;
    - {!image} / {!image_within} — set-at-a-time image of a whole node set,
      the primitive underlying the efficient bottom-up Core XPath evaluator
      ({!Xpath}) and the arc-consistency engine ({!Actree}).  Each call
      picks, per axis and input, between an O(n) sweep and an
      output-sensitive walk; the choice is recorded in the observability
      counters [axis_kernel_sweep] / [axis_kernel_walk], and the work done
      (nodes scanned, emitted or probed) in [nodes_visited]. *)

type t =
  | Self
  | Child
  | Descendant  (** [Child⁺] *)
  | Descendant_or_self  (** [Child] reflexive-transitive closure *)
  | Next_sibling  (** [NextSibling] *)
  | Following_sibling  (** [NextSibling⁺] *)
  | Following_sibling_or_self  (** [NextSibling] reflexive-transitive closure *)
  | Following
  | Parent
  | Ancestor  (** inverse of [Descendant] *)
  | Ancestor_or_self  (** inverse of [Descendant_or_self] *)
  | Prev_sibling  (** inverse of [Next_sibling] *)
  | Preceding_sibling  (** inverse of [Following_sibling] *)
  | Preceding_sibling_or_self  (** inverse of [Following_sibling_or_self] *)
  | Preceding  (** inverse of [Following] *)

val all : t list
(** All fifteen axes. *)

val forward : t list
(** The forward axes of Section 5: [Self], [Child], [Descendant],
    [Descendant_or_self], [Next_sibling], [Following_sibling],
    [Following_sibling_or_self], [Following]. *)

val is_forward : t -> bool

val inverse : t -> t
(** [inverse a] is the axis denoting the converse relation;
    [inverse (inverse a) = a]. *)

val name : t -> string
(** XPath-style lower-case name, e.g. ["descendant-or-self"]. *)

val of_name : string -> t option
(** Inverse of {!name}; also accepts the paper's names ["child+"],
    ["child*"], ["nextsibling"], ["nextsibling+"], ["nextsibling*"]. *)

val pp : Format.formatter -> t -> unit

val mem : Tree.t -> t -> int -> int -> bool
(** [mem t a u v] is true iff [(u,v)] is in the axis relation [a] on tree
    [t].  O(1). *)

val fold : Tree.t -> t -> int -> (int -> 'a -> 'a) -> 'a -> 'a
(** [fold t a u f init] folds [f] over [{v | a(u,v)}] in document order.
    Costs O(result) for all axes except [Preceding]/[Following]/the
    [-or-self] sibling closures, which cost O(result + depth). *)

val nodes : Tree.t -> t -> int -> int list
(** [nodes t a u] is the axis image of the single node [u], in document
    order. *)

val image : Tree.t -> t -> Nodeset.t -> Nodeset.t
(** [image t a s] is [{v | ∃u ∈ s. a(u,v)}].  O(n) worst case; for
    [Descendant]/[Descendant_or_self] an output-sensitive kernel emits the
    merged subtree intervals of the sources directly when their total size
    is below [n] (so selective sources cost O(output), not O(n)), and the
    per-source axes ([Child], siblings, [Ancestor], …) cost
    O(|s| + output) as before. *)

val image_within : Tree.t -> t -> Nodeset.t -> Nodeset.t -> Nodeset.t
(** [image_within t a s within] is [Nodeset.inter (image t a s) within],
    computed output-sensitively: when [within] is small (e.g. a label set)
    the candidates are probed against [s] directly — O(1) per probe for
    [Self]/[Child]/[Following], O(log |s|) interval search for
    [Descendant]/[Descendant_or_self] — instead of materialising the full
    image.  Falls back to [image]-then-intersect when probing would not be
    cheaper or the axis has no probe kernel. *)

val count_pairs : Tree.t -> t -> int
(** Number of pairs in the relation; used by tests and benchmarks. *)
