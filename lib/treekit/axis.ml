type t =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Next_sibling
  | Following_sibling
  | Following_sibling_or_self
  | Following
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Prev_sibling
  | Preceding_sibling
  | Preceding_sibling_or_self
  | Preceding

let all =
  [
    Self;
    Child;
    Descendant;
    Descendant_or_self;
    Next_sibling;
    Following_sibling;
    Following_sibling_or_self;
    Following;
    Parent;
    Ancestor;
    Ancestor_or_self;
    Prev_sibling;
    Preceding_sibling;
    Preceding_sibling_or_self;
    Preceding;
  ]

let forward =
  [
    Self;
    Child;
    Descendant;
    Descendant_or_self;
    Next_sibling;
    Following_sibling;
    Following_sibling_or_self;
    Following;
  ]

let is_forward = function
  | Self | Child | Descendant | Descendant_or_self | Next_sibling
  | Following_sibling | Following_sibling_or_self | Following ->
    true
  | Parent | Ancestor | Ancestor_or_self | Prev_sibling | Preceding_sibling
  | Preceding_sibling_or_self | Preceding ->
    false

let inverse = function
  | Self -> Self
  | Child -> Parent
  | Descendant -> Ancestor
  | Descendant_or_self -> Ancestor_or_self
  | Next_sibling -> Prev_sibling
  | Following_sibling -> Preceding_sibling
  | Following_sibling_or_self -> Preceding_sibling_or_self
  | Following -> Preceding
  | Parent -> Child
  | Ancestor -> Descendant
  | Ancestor_or_self -> Descendant_or_self
  | Prev_sibling -> Next_sibling
  | Preceding_sibling -> Following_sibling
  | Preceding_sibling_or_self -> Following_sibling_or_self
  | Preceding -> Following

let name = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Next_sibling -> "next-sibling"
  | Following_sibling -> "following-sibling"
  | Following_sibling_or_self -> "following-sibling-or-self"
  | Following -> "following"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Prev_sibling -> "previous-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Preceding_sibling_or_self -> "preceding-sibling-or-self"
  | Preceding -> "preceding"

let of_name s =
  match String.lowercase_ascii s with
  | "self" -> Some Self
  | "child" -> Some Child
  | "descendant" | "child+" -> Some Descendant
  | "descendant-or-self" | "child*" -> Some Descendant_or_self
  | "next-sibling" | "nextsibling" -> Some Next_sibling
  | "following-sibling" | "nextsibling+" -> Some Following_sibling
  | "following-sibling-or-self" | "nextsibling*" -> Some Following_sibling_or_self
  | "following" -> Some Following
  | "parent" -> Some Parent
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | "previous-sibling" | "prev-sibling" -> Some Prev_sibling
  | "preceding-sibling" -> Some Preceding_sibling
  | "preceding-sibling-or-self" -> Some Preceding_sibling_or_self
  | "preceding" -> Some Preceding
  | _ -> None

let pp fmt a = Format.pp_print_string fmt (name a)

let same_parent t u v = Tree.parent t u = Tree.parent t v

let mem t axis u v =
  match axis with
  | Self -> u = v
  | Child -> Tree.parent t v = u
  | Descendant -> Tree.is_ancestor t u v
  | Descendant_or_self -> u = v || Tree.is_ancestor t u v
  | Next_sibling -> Tree.next_sibling t u = v
  | Following_sibling -> u < v && same_parent t u v
  | Following_sibling_or_self -> u <= v && same_parent t u v
  | Following -> Tree.is_following t u v
  | Parent -> Tree.parent t u = v
  | Ancestor -> Tree.is_ancestor t v u
  | Ancestor_or_self -> u = v || Tree.is_ancestor t v u
  | Prev_sibling -> Tree.next_sibling t v = u
  | Preceding_sibling -> v < u && same_parent t u v
  | Preceding_sibling_or_self -> v <= u && same_parent t u v
  | Preceding -> Tree.is_following t v u

let fold t axis u f init =
  let fold_range lo hi init =
    let acc = ref init in
    for v = lo to hi do
      acc := f v !acc
    done;
    !acc
  in
  match axis with
  | Self -> f u init
  | Child -> Tree.fold_children t u (fun acc c -> f c acc) init
  | Descendant -> fold_range (u + 1) (u + Tree.subtree_size t u - 1) init
  | Descendant_or_self -> fold_range u (u + Tree.subtree_size t u - 1) init
  | Next_sibling ->
    let v = Tree.next_sibling t u in
    if v = -1 then init else f v init
  | Following_sibling ->
    let rec go acc v = if v = -1 then acc else go (f v acc) (Tree.next_sibling t v) in
    go init (Tree.next_sibling t u)
  | Following_sibling_or_self ->
    let rec go acc v = if v = -1 then acc else go (f v acc) (Tree.next_sibling t v) in
    go init u
  | Following -> fold_range (u + Tree.subtree_size t u) (Tree.size t - 1) init
  | Parent ->
    let p = Tree.parent t u in
    if p = -1 then init else f p init
  | Ancestor ->
    let rec ups acc v =
      let p = Tree.parent t v in
      if p = -1 then acc else ups (p :: acc) p
    in
    List.fold_left (fun acc v -> f v acc) init (ups [] u)
  | Ancestor_or_self ->
    let rec ups acc v =
      let p = Tree.parent t v in
      if p = -1 then acc else ups (p :: acc) p
    in
    List.fold_left (fun acc v -> f v acc) init (ups [ u ] u)
  | Prev_sibling ->
    let v = Tree.prev_sibling t u in
    if v = -1 then init else f v init
  | Preceding_sibling | Preceding_sibling_or_self ->
    let p = Tree.parent t u in
    let start = if p = -1 then u else Tree.first_child t p in
    let rec go acc v =
      if v = u then if axis = Preceding_sibling_or_self then f u acc else acc
      else go (f v acc) (Tree.next_sibling t v)
    in
    go init start
  | Preceding ->
    let acc = ref init in
    for v = 0 to u - 1 do
      if not (Tree.is_ancestor t v u) then acc := f v !acc
    done;
    !acc

let nodes t axis u = List.rev (fold t axis u (fun v acc -> v :: acc) [])

(* [nodes_visited] counts the work of the set-at-a-time kernels below: nodes
   scanned by a sweep, or emitted/probed by an output-sensitive walk.  The
   two kernel counters record which strategy each {!image} call picked. *)
let c_nodes = Obs.Counter.make "nodes_visited"
let c_sweep = Obs.Counter.make "axis_kernel_sweep"
let c_walk = Obs.Counter.make "axis_kernel_walk"

(* Sum of the subtree sizes of the sources, capped at [cap]: an upper bound
   on the output of a descendant walk, hence on its cost. *)
let descendant_estimate t ~include_self s ~cap =
  let est = ref 0 in
  (try
     Nodeset.iter
       (fun u ->
         est := !est + Tree.subtree_size t u - (if include_self then 0 else 1);
         if !est >= cap then raise Exit)
       s
   with Exit -> ());
  min !est cap

(* Merged subtree intervals [lo.(i), hi.(i)) of the sources, disjoint and in
   increasing order.  Because subtrees are pre-order ranges and any two are
   nested or disjoint, clipping each new interval at the running end is an
   exact merge. *)
let subtree_intervals t ~include_self s =
  let m = max (Nodeset.cardinal s) 1 in
  let lo = Array.make m 0 and hi = Array.make m 0 in
  let k = ref 0 in
  Nodeset.iter
    (fun u ->
      let l = if include_self then u else u + 1
      and h = u + Tree.subtree_size t u in
      if !k > 0 && l <= hi.(!k - 1) then begin
        if h > hi.(!k - 1) then hi.(!k - 1) <- h
      end
      else if l < h then begin
        lo.(!k) <- l;
        hi.(!k) <- h;
        incr k
      end)
    s;
  (lo, hi, !k)

(* Is [v] inside one of the [k] disjoint sorted intervals?  O(log k). *)
let interval_mem lo hi k v =
  let a = ref 0 and b = ref (k - 1) and res = ref (-1) in
  while !a <= !b do
    let mid = (!a + !b) / 2 in
    if lo.(mid) <= v then begin
      res := mid;
      a := mid + 1
    end
    else b := mid - 1
  done;
  !res >= 0 && v < hi.(!res)

let image t axis s =
  let n = Tree.size t in
  let r = Nodeset.create n in
  let visited = ref 0 in
  let add v =
    Nodeset.add r v;
    incr visited
  in
  let descendants ~include_self =
    let est = descendant_estimate t ~include_self s ~cap:n in
    if est < n then begin
      (* output-sensitive: emit the merged subtree intervals directly *)
      Obs.Counter.incr c_walk;
      let lo, hi, k = subtree_intervals t ~include_self s in
      for i = 0 to k - 1 do
        Nodeset.add_range r lo.(i) (hi.(i) - 1);
        visited := !visited + (hi.(i) - lo.(i))
      done
    end
    else begin
      (* sources cover most of the tree: one +1/-1 sweep over pre-order *)
      Obs.Counter.incr c_sweep;
      visited := n;
      let delta = Array.make (n + 1) 0 in
      Nodeset.iter
        (fun u ->
          let lo = if include_self then u else u + 1 in
          delta.(lo) <- delta.(lo) + 1;
          let hi = u + Tree.subtree_size t u in
          delta.(hi) <- delta.(hi) - 1)
        s;
      let open_count = ref 0 in
      for v = 0 to n - 1 do
        open_count := !open_count + delta.(v);
        if !open_count > 0 then Nodeset.add r v
      done
    end
  in
  let chain_walk step first =
    (* follow [step] from each source, stopping at nodes already in [r]
       (their chain suffix has already been added) *)
    Obs.Counter.incr c_walk;
    Nodeset.iter
      (fun u ->
        let v = ref (first u) in
        while !v <> -1 && not (Nodeset.mem r !v) do
          add !v;
          v := step !v
        done)
      s
  in
  let per_source f =
    Obs.Counter.incr c_walk;
    Nodeset.iter f s
  in
  (match axis with
  | Self -> per_source add
  | Child -> per_source (fun u -> Tree.iter_children t u add)
  | Descendant -> descendants ~include_self:false
  | Descendant_or_self -> descendants ~include_self:true
  | Next_sibling ->
    per_source (fun u ->
        let v = Tree.next_sibling t u in
        if v <> -1 then add v)
  | Following_sibling -> chain_walk (Tree.next_sibling t) (Tree.next_sibling t)
  | Following_sibling_or_self -> chain_walk (Tree.next_sibling t) (fun u -> u)
  | Following ->
    (match Nodeset.min_elt s with
    | None -> ()
    | Some _ ->
      Obs.Counter.incr c_walk;
      let m = Nodeset.fold (fun u m -> min m (u + Tree.subtree_size t u)) s max_int in
      if m <= n - 1 then begin
        Nodeset.add_range r m (n - 1);
        visited := !visited + (n - m)
      end)
  | Parent ->
    per_source (fun u ->
        let p = Tree.parent t u in
        if p <> -1 then add p)
  | Ancestor -> chain_walk (Tree.parent t) (Tree.parent t)
  | Ancestor_or_self -> chain_walk (Tree.parent t) (fun u -> u)
  | Prev_sibling ->
    per_source (fun u ->
        let v = Tree.prev_sibling t u in
        if v <> -1 then add v)
  | Preceding_sibling -> chain_walk (Tree.prev_sibling t) (Tree.prev_sibling t)
  | Preceding_sibling_or_self -> chain_walk (Tree.prev_sibling t) (fun u -> u)
  | Preceding ->
    (match Nodeset.max_elt s with
    | None -> ()
    | Some m ->
      (* scans the whole prefix 0..m: a sweep *)
      Obs.Counter.incr c_sweep;
      visited := !visited + m + 1;
      for v = 0 to m do
        if v + Tree.subtree_size t v <= m then Nodeset.add r v
      done));
  Obs.Counter.add c_nodes !visited;
  r

let image_within t axis s within =
  let n = Tree.size t in
  let cs = Nodeset.cardinal s and cw = Nodeset.cardinal within in
  let probe pred =
    (* filter the candidates instead of materialising the full image *)
    Obs.Counter.incr c_walk;
    Obs.Counter.add c_nodes cw;
    let r = Nodeset.create n in
    Nodeset.iter (fun v -> if pred v then Nodeset.add r v) within;
    r
  in
  match axis with
  | Self ->
    Obs.Counter.incr c_walk;
    Obs.Counter.add c_nodes (min cs cw);
    Nodeset.inter s within
  | Child when cw <= cs -> probe (fun v ->
        let p = Tree.parent t v in
        p <> -1 && Nodeset.mem s p)
  | Descendant | Descendant_or_self ->
    let include_self = axis = Descendant_or_self in
    let est = descendant_estimate t ~include_self s ~cap:n in
    if cw < est then begin
      let lo, hi, k = subtree_intervals t ~include_self s in
      probe (fun v -> interval_mem lo hi k v)
    end
    else Nodeset.inter (image t axis s) within
  | Following ->
    (match Nodeset.min_elt s with
    | None -> Nodeset.create n
    | Some _ ->
      let m = Nodeset.fold (fun u m -> min m (u + Tree.subtree_size t u)) s max_int in
      probe (fun v -> v >= m))
  | _ -> Nodeset.inter (image t axis s) within

let count_pairs t axis =
  let n = Tree.size t in
  match axis with
  | Self -> n
  | Child | Parent -> n - 1
  | Descendant | Ancestor ->
    let c = ref 0 in
    for v = 0 to n - 1 do
      c := !c + Tree.depth t v
    done;
    !c
  | Descendant_or_self | Ancestor_or_self ->
    let c = ref n in
    for v = 0 to n - 1 do
      c := !c + Tree.depth t v
    done;
    !c
  | Next_sibling | Prev_sibling ->
    let c = ref 0 in
    for v = 0 to n - 1 do
      if Tree.next_sibling t v <> -1 then incr c
    done;
    !c
  | Following_sibling | Preceding_sibling ->
    (* for each parent with k children: k(k-1)/2 ordered pairs *)
    let c = ref 0 in
    for v = 0 to n - 1 do
      if Tree.first_child t v <> -1 then begin
        let k = Tree.fold_children t v (fun acc _ -> acc + 1) 0 in
        c := !c + (k * (k - 1) / 2)
      end
    done;
    !c
  | Following_sibling_or_self | Preceding_sibling_or_self ->
    let c = ref n in
    for v = 0 to n - 1 do
      if Tree.first_child t v <> -1 then begin
        let k = Tree.fold_children t v (fun acc _ -> acc + 1) 0 in
        c := !c + (k * (k - 1) / 2)
      end
    done;
    !c
  | Following | Preceding ->
    let c = ref 0 in
    for u = 0 to n - 1 do
      c := !c + (n - (u + Tree.subtree_size t u))
    done;
    !c
