(** Mutable sets of tree nodes.

    Nodes of a tree of size [n] are the integers [0 .. n-1] (their pre-order
    ranks, see {!Tree}).  All query-evaluation engines in this repository
    ({!Xpath}, {!Cqtree}, {!Actree}) manipulate node sets through this
    interface; the set-at-a-time axis images of {!Axis} produce them.

    The representation is {e adaptive}: a set holds a sorted int array
    while its cardinality stays below a crossover threshold
    ({!promote_threshold}) and a 63-bit-word bitset above it, so selective
    sets cost O(cardinality) to build and traverse while bulk set algebra
    on large sets runs one word operation per 63 nodes.  Promotion and
    demotion are automatic (with hysteresis) and invisible through this
    interface except via {!rep_kind}. *)

type t

val create : int -> t
(** [create n] is the empty subset of [{0, …, n-1}]. *)

val universe : int -> t
(** [universe n] is the full set [{0, …, n-1}]. *)

val capacity : t -> int
(** [capacity s] is the [n] the set was created with. *)

val cardinal : t -> int
(** Number of elements, maintained incrementally (O(1)). *)

val is_empty : t -> bool

val mem : t -> int -> bool

val add : t -> int -> unit
(** [add s v] inserts [v]; a no-op if already present. *)

val remove : t -> int -> unit
(** [remove s v] deletes [v]; a no-op if absent. *)

val copy : t -> t

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** [iter f s] applies [f] to the elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f s init] folds over elements in increasing order. *)

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n vs] is the subset of [{0, …, n-1}] containing [vs]. *)

val of_sorted_array : int -> int array -> t
(** [of_sorted_array n arr] is the subset of [{0, …, n-1}] containing the
    elements of [arr], in time O(|arr|).
    @raise Invalid_argument unless [arr] is strictly increasing and within
    range. *)

val add_range : t -> int -> int -> unit
(** [add_range s lo hi] inserts every node in [lo .. hi] (inclusive; the
    range is clipped to the capacity universe, and an empty range is a
    no-op).  On a bitset this is a word-masked fill. *)

val min_elt : t -> int option
(** Smallest element, if any. *)

val max_elt : t -> int option
(** Largest element, if any. *)

val choose : t -> int option
(** An arbitrary element ([min_elt] in this implementation). *)

val union : t -> t -> t
(** Fresh union; arguments must have equal capacity. *)

val inter : t -> t -> t
(** Fresh intersection; arguments must have equal capacity. *)

val diff : t -> t -> t
(** Fresh difference; arguments must have equal capacity. *)

val complement : t -> t
(** Fresh complement within the capacity universe. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds all of [src] into [dst]. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] everything not in [src]. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{v1, v2, …}]. *)

(** {1 Representation introspection}

    Exposed for tests and benchmarks; no consumer should branch on it. *)

val rep_kind : t -> [ `Sparse | `Dense ]
(** Current physical representation. *)

val promote_threshold : int -> int
(** [promote_threshold n] is the cardinality above which a set over a
    universe of [n] nodes switches from the sorted-array to the bitset
    representation (demotion happens below half of it). *)
