(** Mutable sets of tree nodes.

    Nodes of a tree of size [n] are the integers [0 .. n-1] (their pre-order
    ranks, see {!Tree}), so a node set is a bit vector of length [n] with a
    maintained cardinality.  All query-evaluation engines in this repository
    ({!Xpath}, {!Cqtree}, {!Actree}) manipulate node sets through this
    interface; the set-at-a-time axis images of {!Axis} produce them. *)

type t

val create : int -> t
(** [create n] is the empty subset of [{0, …, n-1}]. *)

val universe : int -> t
(** [universe n] is the full set [{0, …, n-1}]. *)

val capacity : t -> int
(** [capacity s] is the [n] the set was created with. *)

val cardinal : t -> int
(** Number of elements, maintained incrementally (O(1)). *)

val is_empty : t -> bool

val mem : t -> int -> bool

val add : t -> int -> unit
(** [add s v] inserts [v]; a no-op if already present. *)

val remove : t -> int -> unit
(** [remove s v] deletes [v]; a no-op if absent. *)

val copy : t -> t

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** [iter f s] applies [f] to the elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f s init] folds over elements in increasing order. *)

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n vs] is the subset of [{0, …, n-1}] containing [vs]. *)

val min_elt : t -> int option
(** Smallest element, if any. *)

val max_elt : t -> int option
(** Largest element, if any. *)

val choose : t -> int option
(** An arbitrary element ([min_elt] in this implementation). *)

val union : t -> t -> t
(** Fresh union; arguments must have equal capacity. *)

val inter : t -> t -> t
(** Fresh intersection; arguments must have equal capacity. *)

val diff : t -> t -> t
(** Fresh difference; arguments must have equal capacity. *)

val complement : t -> t
(** Fresh complement within the capacity universe. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds all of [src] into [dst]. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] everything not in [src]. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{v1, v2, …}]. *)
