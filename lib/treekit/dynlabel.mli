(** Dynamic node labeling: order maintenance for documents under updates
    (Section 2, "A great number of labeling and indexing schemes … have
    improved the efficiency of queries and updates of XML data"; the
    pre/post technique goes back to Dietz–Sleator order maintenance [23]).

    A {!t} is a mutable document.  Every node owns two positions in a
    single maintained total order — its opening and closing "tag", i.e.
    dynamic [<pre] and [<post] ranks — so the structural-join
    characterisations stay O(1) under insertions:

    - [is_ancestor u v  ⇔  open(u) < open(v) ∧ close(v) < close(u)],
    - [is_following u v ⇔  close(u) < open(v)].

    Positions carry integer labels from a 2⁶² space; an insertion takes
    the midpoint of the neighbouring labels and, when a gap fills up,
    relabels a small window (amortised cheap — measured by the benchmark
    [dynlabel]).  This is the list-labeling simplification of
    Dietz–Sleator; comparisons are plain integer comparisons, never
    traversals. *)

type t
(** A mutable labeled document. *)

type node
(** A handle to a document node; stays valid across insertions. *)

val create : string -> t
(** A document with just a root. *)

val root : t -> node

val size : t -> int

val label : node -> string

val insert_last_child : t -> node -> string -> node
(** Append a new leaf as the last child of a node. *)

val insert_first_child : t -> node -> string -> node

val insert_after : t -> node -> string -> node
(** Insert a new leaf as the immediate right sibling.
    @raise Invalid_argument on the root. *)

val is_ancestor : t -> node -> node -> bool
(** O(1): tag comparisons only. *)

val is_following : t -> node -> node -> bool

val compare_pre : t -> node -> node -> int
(** Document-order comparison, O(1). *)

val parent : node -> node option

val relabel_count : t -> int
(** Total number of positions moved by relabeling so far — the amortised
    cost counter reported by the benchmark. *)

val snapshot : t -> Tree.t * (node -> int)
(** Freeze into an immutable {!Tree} (for cross-checking and querying with
    the static engines) together with the node-to-preorder mapping. *)
