exception Parse_error of string

type state = { input : string; mutable pos : int }

let error st fmt =
  Format.kasprintf (fun msg ->
      raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg)))
    fmt

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let skip_spaces st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let skip_until st sub =
  (* advance past the next occurrence of [sub] *)
  let n = String.length st.input and k = String.length sub in
  let rec go i =
    if i + k > n then error st "unterminated construct (expected %S)" sub
    else if String.sub st.input i k = sub then st.pos <- i + k
    else go (i + 1)
  in
  go st.pos

let read_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then error st "expected a name";
  String.sub st.input start (st.pos - start)

let skip_attributes st =
  (* consume everything up to '>' or '/>'; attribute values may contain '>' *)
  let rec go () =
    skip_spaces st;
    match peek st with
    | None -> error st "unterminated tag"
    | Some '>' | Some '/' -> ()
    | Some '"' ->
      advance st;
      skip_until st "\"";
      go ()
    | Some '\'' ->
      advance st;
      skip_until st "'";
      go ()
    | Some _ ->
      advance st;
      go ()
  in
  go ()

let skip_misc st =
  (* skip text, comments, PIs, doctype between elements *)
  let rec go () =
    match peek st with
    | None -> ()
    | Some '<' ->
      if st.pos + 3 < String.length st.input && String.sub st.input st.pos 4 = "<!--"
      then begin
        skip_until st "-->";
        go ()
      end
      else if st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = '?' then begin
        skip_until st "?>";
        go ()
      end
      else if st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = '!' then begin
        skip_until st ">";
        go ()
      end
      else ()
    | Some _ ->
      advance st;
      go ()
  in
  go ()

(* Iterative element parser: maintains a stack of (label, reversed children). *)
let parse_elements st =
  let stack = ref [] in
  let completed = ref [] in
  let finish_element lbl kids =
    let node = Tree.Node (lbl, List.rev kids) in
    match !stack with
    | [] -> completed := node :: !completed
    | (plbl, pkids) :: rest -> stack := (plbl, node :: pkids) :: rest
  in
  let rec go () =
    skip_misc st;
    match peek st with
    | None ->
      if !stack <> [] then error st "unexpected end of input: unclosed element"
    | Some '<' ->
      advance st;
      (match peek st with
      | Some '/' ->
        advance st;
        let name = read_name st in
        skip_spaces st;
        (match peek st with
        | Some '>' -> advance st
        | _ -> error st "expected '>' after closing tag");
        (match !stack with
        | (lbl, kids) :: rest when lbl = name ->
          stack := rest;
          finish_element lbl kids
        | (lbl, _) :: _ -> error st "mismatched closing tag </%s>, open element <%s>" name lbl
        | [] -> error st "closing tag </%s> with no open element" name);
        go ()
      | Some _ ->
        let name = read_name st in
        skip_attributes st;
        (match peek st with
        | Some '/' ->
          advance st;
          (match peek st with
          | Some '>' ->
            advance st;
            finish_element name []
          | _ -> error st "expected '>' after '/'")
        | Some '>' ->
          advance st;
          stack := (name, []) :: !stack
        | _ -> error st "unterminated start tag <%s" name);
        go ()
      | None -> error st "dangling '<'")
    | Some _ -> assert false
  in
  go ();
  List.rev !completed

let parse_fragment s =
  let st = { input = s; pos = 0 } in
  match parse_elements st with
  | [] -> raise (Parse_error "no element found")
  | [ b ] -> Tree.of_builder b
  | bs -> Tree.of_builder (Tree.Node ("#root", bs))

let parse s =
  let st = { input = s; pos = 0 } in
  match parse_elements st with
  | [ b ] -> Tree.of_builder b
  | [] -> raise (Parse_error "no element found")
  | _ -> raise (Parse_error "multiple root elements (use parse_fragment)")

let to_string t =
  let buf = Buffer.create (Tree.size t * 8) in
  let rec go v =
    let lbl = Tree.label t v in
    if Tree.is_leaf t v then begin
      Buffer.add_char buf '<';
      Buffer.add_string buf lbl;
      Buffer.add_string buf "/>"
    end
    else begin
      Buffer.add_char buf '<';
      Buffer.add_string buf lbl;
      Buffer.add_char buf '>';
      Tree.iter_children t v go;
      Buffer.add_string buf "</";
      Buffer.add_string buf lbl;
      Buffer.add_char buf '>'
    end
  in
  go 0;
  Buffer.contents buf

let pp fmt t =
  let rec go indent v =
    let lbl = Tree.label t v in
    if Tree.is_leaf t v then Format.fprintf fmt "%s<%s/>@," indent lbl
    else begin
      Format.fprintf fmt "%s<%s>@," indent lbl;
      Tree.iter_children t v (go (indent ^ "  "));
      Format.fprintf fmt "%s</%s>@," indent lbl
    end
  in
  Format.fprintf fmt "@[<v>";
  go "" 0;
  Format.fprintf fmt "@]"
