type t = int

type table = {
  mutable names : string array;
  index : (string, int) Hashtbl.t;
  mutable count : int;
}

let create_table () = { names = Array.make 8 ""; index = Hashtbl.create 16; count = 0 }

let intern tbl s =
  match Hashtbl.find_opt tbl.index s with
  | Some c -> c
  | None ->
    let c = tbl.count in
    if c = Array.length tbl.names then begin
      let names = Array.make (2 * c) "" in
      Array.blit tbl.names 0 names 0 c;
      tbl.names <- names
    end;
    tbl.names.(c) <- s;
    Hashtbl.add tbl.index s c;
    tbl.count <- c + 1;
    c

let find tbl s = Hashtbl.find_opt tbl.index s

let name tbl c =
  if c < 0 || c >= tbl.count then invalid_arg "Label.name: invalid code";
  tbl.names.(c)

let count tbl = tbl.count

let copy tbl =
  { names = Array.copy tbl.names; index = Hashtbl.copy tbl.index; count = tbl.count }
