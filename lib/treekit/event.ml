type t =
  | Open of { node : int; label : string; depth : int }
  | Close of { node : int; label : string; depth : int }

let label = function Open { label; _ } | Close { label; _ } -> label
let depth = function Open { depth; _ } | Close { depth; _ } -> depth

let iter tree f =
  (* Walk the first-child / next-sibling structure iteratively: from a node
     we either descend, emit Close and move to the sibling, or climb. *)
  let open_of v = Open { node = v; label = Tree.label tree v; depth = Tree.depth tree v } in
  let close_of v =
    Close { node = v; label = Tree.label tree v; depth = Tree.depth tree v }
  in
  let rec down v =
    f (open_of v);
    let c = Tree.first_child tree v in
    if c <> -1 then down c else up v
  and up v =
    f (close_of v);
    let s = Tree.next_sibling tree v in
    if s <> -1 then down s
    else
      let p = Tree.parent tree v in
      if p <> -1 then up p
  in
  down 0

let to_seq tree =
  let open_of v = Open { node = v; label = Tree.label tree v; depth = Tree.depth tree v } in
  let close_of v =
    Close { node = v; label = Tree.label tree v; depth = Tree.depth tree v }
  in
  (* state: (node, opening?) — None when exhausted *)
  let rec next = function
    | None -> Seq.Nil
    | Some (v, true) ->
      let c = Tree.first_child tree v in
      let st = if c <> -1 then Some (c, true) else Some (v, false) in
      Seq.Cons (open_of v, fun () -> next st)
    | Some (v, false) ->
      let s = Tree.next_sibling tree v in
      let st =
        if s <> -1 then Some (s, true)
        else
          let p = Tree.parent tree v in
          if p <> -1 then Some (p, false) else None
      in
      Seq.Cons (close_of v, fun () -> next st)
  in
  fun () -> next (Some (0, true))

let to_list tree = List.of_seq (to_seq tree)

let count tree = 2 * Tree.size tree
