(** A small XML reader/writer for the navigational tree structure.

    The paper studies queries on "the bare tree structures of the parse
    trees of XML documents" (Section 2), so this parser keeps exactly that:
    element nesting and tag names.  Attributes are parsed and discarded;
    character data, comments, processing instructions and the XML
    declaration are skipped.  This is not a validating parser — it is the
    substrate needed to feed documents to the query engines. *)

exception Parse_error of string
(** Raised with a human-readable message (including position) on input that
    is not well-formed under the supported subset. *)

val parse : string -> Tree.t
(** [parse s] parses an XML document (one root element) into a tree whose
    node labels are the tag names.
    @raise Parse_error on malformed input. *)

val parse_fragment : string -> Tree.t
(** Like {!parse}, but if the input contains several top-level elements they
    are wrapped under a synthetic root labeled ["#root"]. *)

val to_string : Tree.t -> string
(** Serialise a tree back to XML (tags only, [<a/>] for leaves). *)

val pp : Format.formatter -> Tree.t -> unit
(** Indented XML rendering. *)
