let labels_abc = [| "a"; "b"; "c" |]

(* Every randomized generator threads an explicit [Random.State.t]: the
   caller either passes one (advanced in place, so composed generation from
   a single state is bit-reproducible) or gets a fresh state from [seed]. *)
let state ?rng seed = match rng with Some r -> r | None -> Random.State.make [| seed |]

(* Rebuild a (parents, labels) pair whose parent vector is valid
   (parents.(v) < v) but not necessarily a pre-order numbering into a tree,
   by renumbering the nodes in pre-order. *)
let of_loose_parents parents labels =
  let n = Array.length parents in
  let first_child = Array.make n (-1) and next_sibling = Array.make n (-1) in
  (* build children lists preserving insertion (index) order *)
  let last_child = Array.make n (-1) in
  for v = 1 to n - 1 do
    let p = parents.(v) in
    if first_child.(p) = -1 then first_child.(p) <- v
    else next_sibling.(last_child.(p)) <- v;
    last_child.(p) <- v
  done;
  let order = Array.make n 0 in
  let rank = Array.make n (-1) in
  let i = ref 0 in
  let rec down v =
    rank.(v) <- !i;
    order.(!i) <- v;
    incr i;
    let c = first_child.(v) in
    if c <> -1 then down c else up v
  and up v =
    let s = next_sibling.(v) in
    if s <> -1 then down s else if parents.(v) >= 0 then up parents.(v)
  in
  down 0;
  let parents' =
    Array.init n (fun j ->
        let v = order.(j) in
        if parents.(v) = -1 then -1 else rank.(parents.(v)))
  and labels' = Array.init n (fun j -> labels.(order.(j))) in
  Tree.of_parent_vector ~parents:parents' ~labels:labels' ()

let pick_label rng labels = labels.(Random.State.int rng (Array.length labels))

let random ?(seed = 42) ?rng ~n ~labels () =
  if n <= 0 then invalid_arg "Generator.random: n must be positive";
  let rng = state ?rng seed in
  let parents = Array.init n (fun v -> if v = 0 then -1 else Random.State.int rng v)
  and labs = Array.init n (fun _ -> pick_label rng labels) in
  of_loose_parents parents labs

let random_deep ?(seed = 42) ?rng ~n ~labels ~descend_bias () =
  if n <= 0 then invalid_arg "Generator.random_deep: n must be positive";
  if descend_bias < 0.0 || descend_bias > 1.0 then
    invalid_arg "Generator.random_deep: bias must be in [0,1]";
  let rng = state ?rng seed in
  let parents = Array.make n (-1) in
  (* generate directly in pre-order with a stack of currently-open nodes *)
  let stack = ref [ 0 ] in
  for v = 1 to n - 1 do
    (match !stack with
    | top :: _ -> parents.(v) <- top
    | [] -> assert false);
    if Random.State.float rng 1.0 < descend_bias then stack := v :: !stack
    else begin
      (* stay at the same level or pop a few levels *)
      let rec pops k st =
        match st with
        | _ :: (_ :: _ as rest) when k > 0 -> pops (k - 1) rest
        | st -> st
      in
      stack := pops (Random.State.int rng 3) !stack
    end
  done;
  let labs = Array.init n (fun _ -> pick_label rng labels) in
  Tree.of_parent_vector ~parents ~labels:labs ()

let path ?(label = "a") ~n () =
  if n <= 0 then invalid_arg "Generator.path: n must be positive";
  Tree.of_parent_vector
    ~parents:(Array.init n (fun v -> v - 1))
    ~labels:(Array.make n label) ()

let star ?(label = "a") ~n () =
  if n <= 0 then invalid_arg "Generator.star: n must be positive";
  Tree.of_parent_vector
    ~parents:(Array.init n (fun v -> if v = 0 then -1 else 0))
    ~labels:(Array.make n label) ()

let full ?(label = "a") ~fanout ~depth () =
  if fanout <= 0 || depth < 0 then invalid_arg "Generator.full: bad parameters";
  let rec build d = Tree.Node (label, if d = 0 then [] else List.init fanout (fun _ -> build (d - 1))) in
  Tree.of_builder (build depth)

let xmark ?(seed = 42) ?rng ~scale () =
  if scale <= 0 then invalid_arg "Generator.xmark: scale must be positive";
  let rng = state ?rng seed in
  let leaf l = Tree.Node (l, []) in
  let many lo hi f = List.init (lo + Random.State.int rng (hi - lo + 1)) (fun _ -> f ()) in
  let item () =
    Tree.Node
      ( "item",
        [
          leaf "location";
          leaf "quantity";
          leaf "name";
          Tree.Node ("description", many 0 2 (fun () -> leaf "parlist"));
          Tree.Node ("mailbox", many 0 2 (fun () -> Tree.Node ("mail", [ leaf "from"; leaf "to"; leaf "date" ])));
        ] )
  in
  let person () =
    Tree.Node
      ( "person",
        leaf "name" :: leaf "emailaddress"
        :: many 0 1 (fun () ->
               Tree.Node ("address", [ leaf "street"; leaf "city"; leaf "country" ]))
        @ many 0 1 (fun () -> Tree.Node ("profile", [ leaf "interest"; leaf "education" ]))
        @ many 0 1 (fun () -> leaf "watches") )
  in
  let open_auction () =
    Tree.Node
      ( "open_auction",
        [
          leaf "initial";
          leaf "reserve";
          Tree.Node ("bidder", [ leaf "date"; leaf "time"; leaf "personref"; leaf "increase" ]);
          leaf "itemref";
          leaf "seller";
          Tree.Node ("annotation", [ leaf "author"; leaf "happiness" ]);
        ] )
  in
  let closed_auction () =
    Tree.Node
      ( "closed_auction",
        [ leaf "seller"; leaf "buyer"; leaf "itemref"; leaf "price"; leaf "date" ] )
  in
  let region name = Tree.Node (name, many 1 (max 1 scale) item) in
  let doc =
    Tree.Node
      ( "site",
        [
          Tree.Node
            ( "regions",
              [ region "africa"; region "asia"; region "europe"; region "namerica" ] );
          Tree.Node ("categories", many 1 scale (fun () -> Tree.Node ("category", [ leaf "name" ])));
          Tree.Node ("people", many 1 scale person);
          Tree.Node ("open_auctions", many 1 scale open_auction);
          Tree.Node ("closed_auctions", many 1 scale closed_auction);
        ] )
  in
  Tree.of_builder doc

let all_shapes ~n =
  if n <= 0 then invalid_arg "Generator.all_shapes: n must be positive";
  (* forests k = all ordered forests with k nodes, as builder lists *)
  let memo = Hashtbl.create 16 in
  let rec forests k =
    if k = 0 then [ [] ]
    else
      match Hashtbl.find_opt memo k with
      | Some r -> r
      | None ->
        (* first tree uses j nodes (1 ≤ j ≤ k), rest is a forest of k - j *)
        let r =
          List.concat_map
            (fun j ->
              let heads = trees j and tails = forests (k - j) in
              List.concat_map (fun h -> List.map (fun t -> h :: t) tails) heads)
            (List.init k (fun i -> i + 1))
        in
        Hashtbl.add memo k r;
        r
  and trees j = List.map (fun f -> Tree.Node ("a", f)) (forests (j - 1)) in
  List.map Tree.of_builder (trees n)
