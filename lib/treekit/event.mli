(** SAX-style event streams (Section 5, streaming algorithms).

    "A streaming algorithm scans its input data only once from left to
    right."  The stream of a tree is the sequence of opening and closing
    tags in document order; the [<pre] order is the order of [Open] events
    and [<post] the order of [Close] events (Section 2).  The streaming
    engines in {!Streamq} consume these events one at a time and are
    forbidden (by construction) from touching the tree. *)

type t =
  | Open of { node : int; label : string; depth : int }
      (** opening tag of [node]; [depth] is the nesting depth (root = 0) *)
  | Close of { node : int; label : string; depth : int }  (** closing tag *)

val label : t -> string

val depth : t -> int

val iter : Tree.t -> (t -> unit) -> unit
(** [iter t f] pushes the events of [t]'s document to [f] in document
    order, using O(depth) auxiliary space. *)

val to_seq : Tree.t -> t Seq.t
(** The event stream as a lazy sequence. *)

val to_list : Tree.t -> t list

val count : Tree.t -> int
(** Number of events (always [2 * size]). *)
