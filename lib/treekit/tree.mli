(** Unranked ordered labeled trees (Section 2 of the paper).

    A tree is stored as a set of parallel arrays indexed by {e pre-order
    rank}: node [v] of a tree [t] is the integer [v ∈ {0, …, size t - 1}]
    and [v] {e is} its own [<pre]-index.  The root is node [0].  This makes
    the paper's order-based labeling scheme (Section 2, "Orders and Labeling
    Schemes") the native representation: every node is the triple
    [(pre, post, label)] with [pre = v] and [post = post t v], and

    - [Child⁺(u,v)  ⇔  u <pre v ∧ v <post u]  (descendant),
    - [Following(u,v) ⇔ u <pre v ∧ u <post v],

    are O(1) integer comparisons.  Equivalently, the descendants of [u] are
    exactly the contiguous pre-order range [u+1 … u + subtree_size t u - 1].

    Trees are immutable once built. *)

type t

type builder = Node of string * builder list
(** A convenient recursive description of a tree used for construction:
    [Node (label, children)]. *)

(** {1 Construction} *)

val of_builder : ?table:Label.table -> builder -> t
(** [of_builder b] builds the tree described by [b].  Construction is
    iterative, so arbitrarily deep builders are fine.  If [table] is given,
    labels are interned into it (sharing codes across trees); otherwise a
    fresh table is created. *)

val of_parent_vector :
  ?table:Label.table -> parents:int array -> labels:string array -> unit -> t
(** [of_parent_vector ~parents ~labels ()] builds a tree from a parent
    vector in pre-order: [parents.(0) = -1] for the root and
    [parents.(v) < v] for every other node [v]; siblings are ordered by
    pre-order rank.
    @raise Invalid_argument if the vector is not a valid pre-order parent
    vector. *)

(** {1 Basic accessors} *)

val size : t -> int
(** Number of nodes. *)

val root : t -> int
(** The root node (always [0]). *)

val parent : t -> int -> int
(** Parent of a node, [-1] for the root. *)

val first_child : t -> int -> int
(** First (leftmost) child, [-1] for a leaf. *)

val last_child : t -> int -> int
(** Last (rightmost) child, [-1] for a leaf. *)

val next_sibling : t -> int -> int
(** Immediate right sibling, [-1] if last among its siblings. *)

val prev_sibling : t -> int -> int
(** Immediate left sibling, [-1] if first among its siblings. *)

val post : t -> int -> int
(** [<post]-index of a node (0-based post-order rank). *)

val node_of_post : t -> int -> int
(** Inverse of {!post}: the node with the given post-order rank. *)

val depth : t -> int -> int
(** Depth of a node; the root has depth 0. *)

val height : t -> int
(** Depth of the deepest node. *)

val subtree_size : t -> int -> int
(** Number of nodes in the subtree rooted at the node (including itself). *)

val label_code : t -> int -> Label.t
(** Interned label of a node. *)

val label : t -> int -> string
(** Label string of a node. *)

val label_table : t -> Label.table
(** The interning table of this tree's labels. *)

(** {1 Derived unary predicates of the signature τ⁺ (Section 3)} *)

val is_root : t -> int -> bool
val is_leaf : t -> int -> bool
val is_first_sibling : t -> int -> bool
val is_last_sibling : t -> int -> bool

(** {1 Traversal} *)

val children : t -> int -> int list
(** Children in document order. *)

val fold_children : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Left fold over children in document order. *)

val iter_children : t -> int -> (int -> unit) -> unit
(** [iter_children t v f] applies [f] to each child of [v] in document
    order, without allocating. *)

val nodes_with_label : t -> string -> int list
(** All nodes carrying the given label, in document order; [[]] if the label
    is unknown.  O(occurrences) after the first label query on this tree
    (which lazily builds a cached inverted index in one O(n) pass). *)

val occurrences : t -> string -> int array
(** Same as {!nodes_with_label} but the pre-order-sorted bucket of the
    cached label index itself; callers must not mutate it. *)

val label_set : t -> string -> Nodeset.t
(** Same as {!nodes_with_label} but as a node set (the relation [Lab_a]);
    also O(occurrences) after the first touch. *)

val bflr_rank : t -> int array
(** [<bflr] ranks: [(bflr_rank t).(v)] is the position of node [v] in the
    breadth-first left-to-right traversal (Section 2).  Computed on first
    use and cached. *)

val node_of_bflr : t -> int array
(** Inverse permutation of {!bflr_rank}. *)

(** {1 Cross-domain publication} *)

val ensure_index : t -> unit
(** Force the lazily built label inverted index now.  See {!seal}. *)

val seal : t -> unit
(** Force every lazily built cache (the label inverted index and the
    [<bflr] ranks) so the tree can be shared read-only across OCaml 5
    domains: after [seal], no accessor mutates the structure, so
    concurrent readers are race-free.  Idempotent and cheap to repeat
    (forced caches are just returned). *)

(** {1 Ancestry tests} *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t u v] is true iff [u] is a proper ancestor of [v]
    ([Child⁺(u,v)]); O(1). *)

val is_following : t -> int -> int -> bool
(** [is_following t u v] is true iff [Following(u,v)]; O(1). *)

(** {1 Conversion and printing} *)

val to_builder : t -> builder
(** Inverse of {!of_builder}. *)

val equal : t -> t -> bool
(** Structural equality (same shape and same label strings). *)

val pp : Format.formatter -> t -> unit
(** Prints the tree as a term, e.g. [a(b(a, c), a(b, d))]. *)

val validate : t -> (unit, string) result
(** Internal consistency check of all parallel arrays; used by tests. *)
