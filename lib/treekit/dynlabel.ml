(* Order-maintenance list with integer tags (list labeling): an insertion
   takes the midpoint of its neighbours' tags and, when a gap is exhausted,
   relabels a window that grows until its enclosing tag range exceeds the
   square of its item count — the classic amortisation.  Two sentinels pin
   the ends of the tag space; comparisons are plain integer comparisons. *)

type item = {
  mutable tag : int;
  mutable prev : item;  (* sentinels point to themselves *)
  mutable next : item;
}

let max_tag = 1 lsl 60

type node = {
  id : int;
  node_label : string;
  opening : item;
  closing : item;
  node_parent : node option;
}

type t = {
  mutable count : int;
  relabeled : int ref;
  doc_root : node;
  mutable registry : node list;  (* reverse insertion order *)
}

let label n = n.node_label
let parent n = n.node_parent

(* ------------------------------------------------------------------ *)

let new_list () =
  let rec head = { tag = 0; prev = head; next = tail }
  and tail = { tag = max_tag; prev = head; next = tail } in
  head

let is_head it = it.prev == it
let is_tail it = it.next == it

let rec insert_between relabeled a b =
  assert (a.next == b);
  if b.tag - a.tag > 1 then begin
    let it = { tag = a.tag + ((b.tag - a.tag) / 2); prev = a; next = b } in
    a.next <- it;
    b.prev <- it;
    it
  end
  else begin
    (* grow a window around [a] until the enclosing gap beats the square
       of the window size, then spread the window evenly *)
    let lo = ref a and hi = ref a in
    let count = ref 1 in
    let gap () = !hi.next.tag - !lo.prev.tag in
    let can_grow () = (not (is_head !lo.prev)) || not (is_tail !hi.next) in
    while gap () <= (!count + 2) * (!count + 2) && can_grow () do
      if not (is_head !lo.prev) then begin
        lo := !lo.prev;
        incr count
      end;
      if (not (is_tail !hi.next)) && gap () <= (!count + 2) * (!count + 2) then begin
        hi := !hi.next;
        incr count
      end
    done;
    let low = !lo.prev.tag and high = !hi.next.tag in
    let step = max 2 ((high - low) / (!count + 1)) in
    let cur = ref !lo and t = ref (low + step) in
    let continue_ = ref true in
    while !continue_ do
      !cur.tag <- min !t (high - 1);
      t := !t + step;
      incr relabeled;
      if !cur == !hi then continue_ := false else cur := !cur.next
    done;
    insert_between relabeled a b
  end

(* ------------------------------------------------------------------ *)

let create root_label =
  let head = new_list () in
  let relabeled = ref 0 in
  let opening = insert_between relabeled head head.next in
  let closing = insert_between relabeled opening opening.next in
  let doc_root = { id = 0; node_label = root_label; opening; closing; node_parent = None } in
  { count = 1; relabeled; doc_root; registry = [ doc_root ] }

let root doc = doc.doc_root

let size doc = doc.count

let fresh_node doc ~label ~parent ~after =
  let opening = insert_between doc.relabeled after after.next in
  let closing = insert_between doc.relabeled opening opening.next in
  let n =
    { id = doc.count; node_label = label; opening; closing; node_parent = Some parent }
  in
  doc.count <- doc.count + 1;
  doc.registry <- n :: doc.registry;
  n

let insert_last_child doc p label = fresh_node doc ~label ~parent:p ~after:p.closing.prev

let insert_first_child doc p label = fresh_node doc ~label ~parent:p ~after:p.opening

let insert_after doc v label =
  match v.node_parent with
  | None -> invalid_arg "Dynlabel.insert_after: the root has no siblings"
  | Some p -> fresh_node doc ~label ~parent:p ~after:v.closing

let is_ancestor _doc u v =
  u.opening.tag < v.opening.tag && v.closing.tag < u.closing.tag

let is_following _doc u v = u.closing.tag < v.opening.tag

let compare_pre _doc u v = compare u.opening.tag v.opening.tag

let relabel_count doc = !(doc.relabeled)

let snapshot doc =
  let nodes = Array.of_list doc.registry in
  Array.sort (fun a b -> compare a.opening.tag b.opening.tag) nodes;
  let pre_of_id = Array.make doc.count 0 in
  Array.iteri (fun pre n -> pre_of_id.(n.id) <- pre) nodes;
  let parents =
    Array.map
      (fun n -> match n.node_parent with None -> -1 | Some p -> pre_of_id.(p.id))
      nodes
  in
  let labels = Array.map (fun n -> n.node_label) nodes in
  let tree = Tree.of_parent_vector ~parents ~labels () in
  (tree, fun n -> pre_of_id.(n.id))
