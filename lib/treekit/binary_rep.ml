type t = {
  n : int;
  first_child : (int * int) list;
  next_sibling : (int * int) list;
  labels : string array;
}

let of_tree tree =
  let n = Tree.size tree in
  let fc = ref [] and ns = ref [] in
  for u = n - 1 downto 0 do
    let c = Tree.first_child tree u in
    if c <> -1 then fc := (u, c) :: !fc;
    let s = Tree.next_sibling tree u in
    if s <> -1 then ns := (u, s) :: !ns
  done;
  { n; first_child = !fc; next_sibling = !ns; labels = Array.init n (Tree.label tree) }

let to_tree { n; first_child; next_sibling; labels } =
  if n = 0 then invalid_arg "Binary_rep.to_tree: empty";
  if Array.length labels <> n then invalid_arg "Binary_rep.to_tree: labels mismatch";
  let fc = Array.make n (-1) and ns = Array.make n (-1) in
  let set arr what (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg ("Binary_rep.to_tree: node out of range in " ^ what);
    if arr.(u) <> -1 then invalid_arg ("Binary_rep.to_tree: duplicate " ^ what ^ " source");
    arr.(u) <- v
  in
  List.iter (set fc "FirstChild") first_child;
  List.iter (set ns "NextSibling") next_sibling;
  (* Recover the parent vector: the parent of a first child is its
     FirstChild-source; the parent of a next sibling is its left sibling's
     parent.  Nodes are in pre-order, so sources precede targets. *)
  let parents = Array.make n (-1) in
  let owner = Array.make n (-1) in
  (* owner.(v) = u if FirstChild(u,v) *)
  List.iter
    (fun (u, v) ->
      if v <= u then invalid_arg "Binary_rep.to_tree: FirstChild must go forward";
      owner.(v) <- u)
    first_child;
  let left = Array.make n (-1) in
  List.iter
    (fun (u, v) ->
      if v <= u then invalid_arg "Binary_rep.to_tree: NextSibling must go forward";
      left.(v) <- u)
    next_sibling;
  for v = 1 to n - 1 do
    if owner.(v) <> -1 then parents.(v) <- owner.(v)
    else if left.(v) <> -1 then parents.(v) <- parents.(left.(v))
    else invalid_arg "Binary_rep.to_tree: unreachable node"
  done;
  Tree.of_parent_vector ~parents ~labels ()

let pp fmt { first_child; next_sibling; _ } =
  let pp_edges name edges =
    Format.fprintf fmt "%s = {" name;
    List.iteri
      (fun i (u, v) ->
        if i > 0 then Format.fprintf fmt ", ";
        Format.fprintf fmt "(n%d,n%d)" (u + 1) (v + 1))
      edges;
    Format.fprintf fmt "}"
  in
  pp_edges "FirstChild" first_child;
  Format.fprintf fmt "@ ";
  pp_edges "NextSibling" next_sibling
