exception Error of { pos : int; msg : string }

let raise_at pos fmt =
  Printf.ksprintf (fun msg -> raise (Error { pos; msg })) fmt

let to_string ~pos ~msg = Printf.sprintf "at offset %d: %s" pos msg

let () =
  Printexc.register_printer (function
    | Error { pos; msg } -> Some ("Parse_error " ^ to_string ~pos ~msg)
    | _ -> None)
