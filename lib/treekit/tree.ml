type t = {
  parent : int array;
  first_child : int array;
  last_child : int array;
  next_sibling : int array;
  prev_sibling : int array;
  post : int array;
  post_inv : int array;
  depth : int array;
  subtree_size : int array;
  label : int array;
  table : Label.table;
  mutable bflr : (int array * int array) option; (* rank, inverse; cached *)
  mutable label_index : int array array option;
      (* label code → pre-order-sorted occurrences; built lazily *)
}

type builder = Node of string * builder list

let size t = Array.length t.parent
let root _ = 0
let parent t v = t.parent.(v)
let first_child t v = t.first_child.(v)
let last_child t v = t.last_child.(v)
let next_sibling t v = t.next_sibling.(v)
let prev_sibling t v = t.prev_sibling.(v)
let post t v = t.post.(v)
let node_of_post t i = t.post_inv.(i)
let depth t v = t.depth.(v)
let subtree_size t v = t.subtree_size.(v)
let label_code t v = t.label.(v)
let label t v = Label.name t.table t.label.(v)
let label_table t = t.table

let height t =
  let h = ref 0 in
  Array.iter (fun d -> if d > !h then h := d) t.depth;
  !h

let is_root t v = t.parent.(v) = -1
let is_leaf t v = t.first_child.(v) = -1
let is_first_sibling t v = t.prev_sibling.(v) = -1
let is_last_sibling t v = t.next_sibling.(v) = -1

let fold_children t v f init =
  let rec go acc c = if c = -1 then acc else go (f acc c) t.next_sibling.(c) in
  go init t.first_child.(v)

let iter_children t v f =
  let c = ref t.first_child.(v) in
  while !c <> -1 do
    f !c;
    c := t.next_sibling.(!c)
  done

let children t v = List.rev (fold_children t v (fun acc c -> c :: acc) [])

let is_ancestor t u v = u < v && v < u + t.subtree_size.(u)
let is_following t u v = v >= u + t.subtree_size.(u)

(* Construction from a pre-order parent vector.  All other constructors
   funnel through this one. *)
let of_parent_vector ?table ~parents ~labels () =
  let n = Array.length parents in
  if n = 0 then invalid_arg "Tree.of_parent_vector: empty tree";
  if Array.length labels <> n then
    invalid_arg "Tree.of_parent_vector: labels length mismatch";
  if parents.(0) <> -1 then invalid_arg "Tree.of_parent_vector: node 0 must be root";
  for v = 1 to n - 1 do
    if parents.(v) < 0 || parents.(v) >= v then
      invalid_arg "Tree.of_parent_vector: parent must precede node in pre-order"
  done;
  let table = match table with Some tbl -> tbl | None -> Label.create_table () in
  let first_child = Array.make n (-1)
  and last_child = Array.make n (-1)
  and next_sibling = Array.make n (-1)
  and prev_sibling = Array.make n (-1)
  and depth = Array.make n 0
  and subtree_size = Array.make n 1
  and post = Array.make n 0
  and post_inv = Array.make n 0
  and label = Array.make n 0 in
  for v = 0 to n - 1 do
    label.(v) <- Label.intern table labels.(v);
    if v > 0 then begin
      let p = parents.(v) in
      depth.(v) <- depth.(p) + 1;
      if first_child.(p) = -1 then first_child.(p) <- v
      else begin
        let prev = last_child.(p) in
        next_sibling.(prev) <- v;
        prev_sibling.(v) <- prev
      end;
      last_child.(p) <- v
    end
  done;
  (* Pre-order validity also requires each node to lie inside its parent's
     pre-order interval; the construction above is consistent for any vector
     with parents.(v) < v, but sibling lists would interleave subtrees if the
     vector is not a real pre-order.  Detect that by checking contiguity. *)
  for v = n - 1 downto 1 do
    subtree_size.(parents.(v)) <- subtree_size.(parents.(v)) + subtree_size.(v)
  done;
  for v = 0 to n - 1 do
    let fc = first_child.(v) in
    if fc <> -1 && fc <> v + 1 then
      invalid_arg "Tree.of_parent_vector: not a pre-order parent vector";
    let ns = next_sibling.(v) in
    if ns <> -1 && ns <> v + subtree_size.(v) then
      invalid_arg "Tree.of_parent_vector: not a pre-order parent vector"
  done;
  (* Post-order ranks, iteratively. *)
  let counter = ref 0 in
  let assign_post v =
    (* iterative post-order via explicit stack of (node, next child) *)
    let stack = Stack.create () in
    Stack.push (v, first_child.(v)) stack;
    while not (Stack.is_empty stack) do
      let node, child = Stack.pop stack in
      if child = -1 then begin
        post.(node) <- !counter;
        post_inv.(!counter) <- node;
        incr counter
      end
      else begin
        Stack.push (node, next_sibling.(child)) stack;
        Stack.push (child, first_child.(child)) stack
      end
    done
  in
  assign_post 0;
  {
    parent = parents;
    first_child;
    last_child;
    next_sibling;
    prev_sibling;
    post;
    post_inv;
    depth;
    subtree_size;
    label;
    table;
    bflr = None;
    label_index = None;
  }

let of_builder ?table b =
  (* Iterative pre-order flattening of the builder. *)
  let parents = ref [] and labels = ref [] and n = ref 0 in
  let stack = Stack.create () in
  Stack.push (b, -1) stack;
  (* A stack pops children in reverse order, so push children reversed. *)
  while not (Stack.is_empty stack) do
    let Node (lbl, kids), p = Stack.pop stack in
    let v = !n in
    incr n;
    parents := p :: !parents;
    labels := lbl :: !labels;
    List.iter (fun k -> Stack.push (k, v) stack) (List.rev kids)
  done;
  let parents = Array.of_list (List.rev !parents)
  and labels = Array.of_list (List.rev !labels) in
  of_parent_vector ?table ~parents ~labels ()

let to_builder t =
  let rec build v =
    Node (label t v, List.map build (children t v))
  in
  (* children lists are short relative to total size; recursion depth equals
     tree height, which can be large, so rebuild iteratively for safety. *)
  if height t < 10_000 then build 0
  else begin
    let memo = Array.make (size t) None in
    for v = size t - 1 downto 0 do
      let kids =
        List.map
          (fun c -> match memo.(c) with Some b -> b | None -> assert false)
          (children t v)
      in
      memo.(v) <- Some (Node (label t v, kids))
    done;
    match memo.(0) with Some b -> b | None -> assert false
  end

let equal a b =
  size a = size b
  && (let ok = ref true in
      for v = 0 to size a - 1 do
        if a.parent.(v) <> b.parent.(v) || label a v <> label b v then ok := false
      done;
      !ok)

let compute_bflr t =
  match t.bflr with
  | Some r -> r
  | None ->
    let n = size t in
    let rank = Array.make n 0 and inv = Array.make n 0 in
    let q = Queue.create () in
    Queue.add 0 q;
    let i = ref 0 in
    while not (Queue.is_empty q) do
      let v = Queue.take q in
      rank.(v) <- !i;
      inv.(!i) <- v;
      incr i;
      fold_children t v (fun () c -> Queue.add c q) ()
    done;
    let r = (rank, inv) in
    t.bflr <- Some r;
    r

let bflr_rank t = fst (compute_bflr t)
let node_of_bflr t = snd (compute_bflr t)

(* One O(n) counting pass builds the whole inverted index; every later
   label lookup is O(occurrences).  Nodes are appended in increasing [v],
   so each bucket is pre-order-sorted by construction. *)
let compute_label_index t =
  match t.label_index with
  | Some idx -> idx
  | None ->
    let n = size t in
    let ncodes = Label.count t.table in
    let counts = Array.make ncodes 0 in
    for v = 0 to n - 1 do
      counts.(t.label.(v)) <- counts.(t.label.(v)) + 1
    done;
    let idx = Array.init ncodes (fun c -> Array.make counts.(c) 0) in
    let fill = Array.make ncodes 0 in
    for v = 0 to n - 1 do
      let c = t.label.(v) in
      idx.(c).(fill.(c)) <- v;
      fill.(c) <- fill.(c) + 1
    done;
    t.label_index <- Some idx;
    idx

let occurrences t lbl =
  match Label.find t.table lbl with
  | None -> [||]
  | Some c ->
    let idx = compute_label_index t in
    (* the table may be shared and have interned codes after this tree was
       built (and indexed); those codes label none of our nodes *)
    if c < Array.length idx then idx.(c) else [||]

let nodes_with_label t lbl = Array.to_list (occurrences t lbl)

let label_set t lbl = Nodeset.of_sorted_array (size t) (occurrences t lbl)

(* Publication protocol for sharing a tree read-only across domains: the
   two lazily built caches ([label_index], [bflr]) are the only mutation
   a read path can trigger.  Forcing them before handing the tree to
   other domains makes every subsequent accessor a pure array read. *)
let ensure_index t = ignore (compute_label_index t)

let seal t =
  ignore (compute_label_index t);
  ignore (compute_bflr t)

let pp fmt t =
  let buf = Buffer.create 64 in
  let rec go v =
    Buffer.add_string buf (label t v);
    if not (is_leaf t v) then begin
      Buffer.add_char buf '(';
      iter_children t v (fun c ->
          if c <> t.first_child.(v) then Buffer.add_string buf ", ";
          go c);
      Buffer.add_char buf ')'
    end
  in
  go 0;
  Format.pp_print_string fmt (Buffer.contents buf)

let validate t =
  let n = size t in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check = ref (Ok ()) in
  let fail msg = if !check = Ok () then check := msg in
  if n = 0 then fail (err "empty tree")
  else begin
    if t.parent.(0) <> -1 then fail (err "root has a parent");
    for v = 1 to n - 1 do
      let p = t.parent.(v) in
      if p < 0 || p >= v then fail (err "node %d: bad parent %d" v p);
      if not (is_ancestor t p v) then fail (err "node %d outside parent interval" v)
    done;
    (* post/pre characterisation of descendants *)
    for v = 0 to n - 1 do
      let p = t.parent.(v) in
      if p <> -1 && not (t.post.(v) < t.post.(p)) then
        fail (err "post order: child %d not before parent %d" v p);
      if t.post_inv.(t.post.(v)) <> v then fail (err "post_inv broken at %d" v);
      let fc = t.first_child.(v) in
      if fc <> -1 && (t.parent.(fc) <> v || t.prev_sibling.(fc) <> -1) then
        fail (err "first_child broken at %d" v);
      let ns = t.next_sibling.(v) in
      if ns <> -1 && (t.prev_sibling.(ns) <> v || t.parent.(ns) <> t.parent.(v)) then
        fail (err "sibling links broken at %d" v)
    done
  end;
  !check
