(* Adaptive node sets: a sorted int array while the set is small, a
   63-bit-word bitset once it grows past the crossover threshold.  The
   array keeps selective sets O(cardinality) to build and traverse; the
   bitset keeps bulk set algebra at one machine-word operation per 63
   nodes.  Promotion/demotion happens automatically with hysteresis
   (promote above [promote_threshold], demote below half of it) so
   oscillating workloads do not thrash between representations. *)

let bits_per_word = 63

let words_for n = (n + bits_per_word - 1) / bits_per_word

(* crossover: the memory/scan break-even point is card ≈ n/63; the factor
   2 biases toward the array (better constants), and the cap bounds the
   O(card) insertion shifts on huge universes *)
let promote_threshold n = min 1024 (max 16 (2 * words_for n))

let demote_threshold n = promote_threshold n / 2

type rep =
  | Sparse of { mutable elts : int array }  (** sorted; first [card] slots live *)
  | Dense of { words : int array }

type t = { n : int; mutable card : int; mutable rep : rep }

let create n = { n; card = 0; rep = Sparse { elts = [||] } }

let capacity s = s.n
let cardinal s = s.card
let is_empty s = s.card = 0

let rep_kind s = match s.rep with Sparse _ -> `Sparse | Dense _ -> `Dense

(* ------------------------------------------------------------------ *)
(* word helpers *)

let pop8 =
  let t = Bytes.create 256 in
  let rec count x = if x = 0 then 0 else (x land 1) + count (x lsr 1) in
  for i = 0 to 255 do
    Bytes.set t i (Char.chr (count i))
  done;
  t

(* SWAR-free byte-table popcount: 8 lookups cover the 63-bit pattern *)
let popcount x =
  let p b = Char.code (Bytes.unsafe_get pop8 (b land 0xff)) in
  p x + p (x lsr 8) + p (x lsr 16) + p (x lsr 24) + p (x lsr 32) + p (x lsr 40)
  + p (x lsr 48) + p (x lsr 56)

(* apply [f] to the set bits of [w], lowest first, offset by [base] *)
let iter_word f base w =
  let w = ref w in
  while !w <> 0 do
    let low = !w land (- !w) in
    f (base + popcount (low - 1));
    w := !w land (!w - 1)
  done

(* number of live words of a dense set over universe [n] *)
let nwords s = words_for s.n

(* mask of the valid bits of the last word *)
let last_word_mask n =
  let used = n - ((words_for n - 1) * bits_per_word) in
  if used = bits_per_word then -1 else (1 lsl used) - 1

(* ------------------------------------------------------------------ *)
(* binary search over the live prefix of a sparse array *)

(* smallest index in [0, len) with elts.(i) >= v, or len *)
let lower_bound elts len v =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get elts mid < v then lo := mid + 1 else hi := mid
  done;
  !lo

let sparse_mem elts len v =
  let i = lower_bound elts len v in
  i < len && elts.(i) = v

(* ------------------------------------------------------------------ *)
(* representation switches *)

let to_dense_words s =
  match s.rep with
  | Dense d -> d.words
  | Sparse a ->
    let words = Array.make (nwords s) 0 in
    for i = 0 to s.card - 1 do
      let v = a.elts.(i) in
      let w = v / bits_per_word in
      words.(w) <- words.(w) lor (1 lsl (v mod bits_per_word))
    done;
    words

let promote s =
  match s.rep with
  | Dense _ -> ()
  | Sparse _ -> s.rep <- Dense { words = to_dense_words s }

let sparse_of_words s words =
  let elts = Array.make (max 1 s.card) 0 in
  let k = ref 0 in
  Array.iteri
    (fun i w ->
      iter_word
        (fun v ->
          elts.(!k) <- v;
          incr k)
        (i * bits_per_word) w)
    words;
  Sparse { elts }

let demote s =
  match s.rep with
  | Sparse _ -> ()
  | Dense d -> s.rep <- sparse_of_words s d.words

(* demote after bulk shrinking ops, with hysteresis *)
let maybe_demote s = if s.card <= demote_threshold s.n then demote s

(* ------------------------------------------------------------------ *)
(* point operations *)

let mem s v =
  v >= 0 && v < s.n
  &&
  match s.rep with
  | Sparse a -> sparse_mem a.elts s.card v
  | Dense d ->
    Array.unsafe_get d.words (v / bits_per_word) land (1 lsl (v mod bits_per_word))
    <> 0

let rec add s v =
  if v < 0 || v >= s.n then invalid_arg "Nodeset.add: out of range";
  match s.rep with
  | Dense d ->
    let w = v / bits_per_word and m = 1 lsl (v mod bits_per_word) in
    let old = Array.unsafe_get d.words w in
    if old land m = 0 then begin
      Array.unsafe_set d.words w (old lor m);
      s.card <- s.card + 1
    end
  | Sparse a ->
    let i = lower_bound a.elts s.card v in
    if not (i < s.card && a.elts.(i) = v) then
      if s.card >= promote_threshold s.n then begin
        promote s;
        add s v
      end
      else begin
        let cap = Array.length a.elts in
        if s.card = cap then begin
          let bigger = Array.make (max 8 (2 * cap)) 0 in
          Array.blit a.elts 0 bigger 0 s.card;
          a.elts <- bigger
        end;
        Array.blit a.elts i a.elts (i + 1) (s.card - i);
        a.elts.(i) <- v;
        s.card <- s.card + 1
      end

let remove s v =
  if v >= 0 && v < s.n then
    match s.rep with
    | Dense d ->
      let w = v / bits_per_word and m = 1 lsl (v mod bits_per_word) in
      let old = Array.unsafe_get d.words w in
      if old land m <> 0 then begin
        Array.unsafe_set d.words w (old land lnot m);
        s.card <- s.card - 1;
        maybe_demote s
      end
    | Sparse a ->
      let i = lower_bound a.elts s.card v in
      if i < s.card && a.elts.(i) = v then begin
        Array.blit a.elts (i + 1) a.elts i (s.card - i - 1);
        s.card <- s.card - 1
      end

(* ------------------------------------------------------------------ *)
(* bulk constructors *)

let universe n =
  let s = create n in
  if n > promote_threshold n then begin
    let words = Array.make (words_for n) (-1) in
    words.(Array.length words - 1) <- last_word_mask n;
    s.rep <- Dense { words };
    s.card <- n
  end
  else begin
    s.rep <- Sparse { elts = Array.init (max 1 n) Fun.id };
    s.card <- n
  end;
  s

let of_sorted_array n arr =
  let len = Array.length arr in
  for i = 0 to len - 1 do
    if arr.(i) < 0 || arr.(i) >= n then
      invalid_arg "Nodeset.of_sorted_array: out of range";
    if i > 0 && arr.(i - 1) >= arr.(i) then
      invalid_arg "Nodeset.of_sorted_array: not strictly increasing"
  done;
  let s = create n in
  s.card <- len;
  if len > promote_threshold n then s.rep <- Dense { words = to_dense_words { s with rep = Sparse { elts = arr } } }
  else s.rep <- Sparse { elts = Array.append arr [||] };
  s

let copy s =
  {
    s with
    rep =
      (match s.rep with
      | Sparse a -> Sparse { elts = Array.copy a.elts }
      | Dense d -> Dense { words = Array.copy d.words });
  }

let clear s =
  s.card <- 0;
  s.rep <- Sparse { elts = [||] }

let add_range s lo hi =
  let lo = max lo 0 and hi = min hi (s.n - 1) in
  if lo <= hi then begin
    (match s.rep with
    | Sparse _ when s.card + (hi - lo + 1) > promote_threshold s.n -> promote s
    | _ -> ());
    match s.rep with
    | Dense d ->
      let wlo = lo / bits_per_word and whi = hi / bits_per_word in
      for w = wlo to whi do
        let from = if w = wlo then lo mod bits_per_word else 0 in
        let upto = if w = whi then hi mod bits_per_word else bits_per_word - 1 in
        let mask =
          let upper = if upto = bits_per_word - 1 then -1 else (1 lsl (upto + 1)) - 1 in
          upper land lnot ((1 lsl from) - 1)
        in
        let old = d.words.(w) in
        s.card <- s.card + popcount (mask land lnot old);
        d.words.(w) <- old lor mask
      done
    | Sparse a ->
      (* splice the absent part of [lo, hi] into the sorted prefix *)
      let i = lower_bound a.elts s.card lo in
      let j = lower_bound a.elts s.card (hi + 1) in
      let fresh = (hi - lo + 1) - (j - i) in
      if fresh > 0 then begin
        let merged = Array.make (max 8 (s.card + fresh)) 0 in
        Array.blit a.elts 0 merged 0 i;
        for v = lo to hi do
          merged.(i + v - lo) <- v
        done;
        Array.blit a.elts j merged (i + hi - lo + 1) (s.card - j);
        a.elts <- merged;
        s.card <- s.card + fresh
      end
  end

(* ------------------------------------------------------------------ *)
(* traversal *)

let iter f s =
  match s.rep with
  | Sparse a ->
    for i = 0 to s.card - 1 do
      f (Array.unsafe_get a.elts i)
    done
  | Dense d ->
    let nw = Array.length d.words in
    for w = 0 to nw - 1 do
      let word = Array.unsafe_get d.words w in
      if word <> 0 then iter_word f (w * bits_per_word) word
    done

let fold f s init =
  let acc = ref init in
  iter (fun v -> acc := f v !acc) s;
  !acc

let elements s = List.rev (fold (fun v acc -> v :: acc) s [])

let of_list n vs =
  let s = create n in
  List.iter (add s) vs;
  s

let min_elt s =
  if s.card = 0 then None
  else
    match s.rep with
    | Sparse a -> Some a.elts.(0)
    | Dense d ->
      let found = ref None in
      let w = ref 0 in
      while !found = None do
        let word = d.words.(!w) in
        if word <> 0 then found := Some ((!w * bits_per_word) + popcount ((word land -word) - 1));
        incr w
      done;
      !found

let max_elt s =
  if s.card = 0 then None
  else
    match s.rep with
    | Sparse a -> Some a.elts.(s.card - 1)
    | Dense d ->
      let found = ref None in
      let w = ref (Array.length d.words - 1) in
      while !found = None do
        let word = d.words.(!w) in
        if word <> 0 then begin
          let high = ref 0 in
          iter_word (fun v -> high := v) (!w * bits_per_word) word;
          found := Some !high
        end;
        decr w
      done;
      !found

let choose = min_elt

(* ------------------------------------------------------------------ *)
(* set algebra *)

let check_same_capacity a b =
  if a.n <> b.n then invalid_arg "Nodeset: capacity mismatch"

(* wrap freshly computed dense words, demoting small results *)
let of_words n words =
  let card = Array.fold_left (fun acc w -> acc + popcount w) 0 words in
  let s = { n; card; rep = Dense { words } } in
  maybe_demote s;
  s

(* merge two sorted live prefixes; [keep] picks by (in_a, in_b) *)
let sparse_merge ~keep n (ea, ca) (eb, cb) =
  let out = Array.make (max 1 (ca + cb)) 0 in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  let push v = out.(!k) <- v; incr k in
  while !i < ca || !j < cb do
    if !j >= cb || (!i < ca && ea.(!i) < eb.(!j)) then begin
      if keep true false then push ea.(!i);
      incr i
    end
    else if !i >= ca || eb.(!j) < ea.(!i) then begin
      if keep false true then push eb.(!j);
      incr j
    end
    else begin
      if keep true true then push ea.(!i);
      incr i;
      incr j
    end
  done;
  let s = { n; card = !k; rep = Sparse { elts = out } } in
  if !k > promote_threshold n then promote s;
  s

let union a b =
  check_same_capacity a b;
  match a.rep, b.rep with
  | Sparse ea, Sparse eb ->
    sparse_merge ~keep:(fun _ _ -> true) a.n (ea.elts, a.card) (eb.elts, b.card)
  | Dense da, Dense db ->
    of_words a.n (Array.init (Array.length da.words) (fun i -> da.words.(i) lor db.words.(i)))
  | Dense _, Sparse _ | Sparse _, Dense _ ->
    let dense, sparse = match a.rep with Dense _ -> (a, b) | _ -> (b, a) in
    let words =
      match dense.rep with Dense d -> Array.copy d.words | Sparse _ -> assert false
    in
    let selts = match sparse.rep with Sparse sp -> sp.elts | Dense _ -> assert false in
    let card = ref dense.card in
    for i = 0 to sparse.card - 1 do
      let v = selts.(i) in
      let w = v / bits_per_word and m = 1 lsl (v mod bits_per_word) in
      if words.(w) land m = 0 then begin
        words.(w) <- words.(w) lor m;
        incr card
      end
    done;
    { n = a.n; card = !card; rep = Dense { words } }

(* galloping: probe each element of the small side into the big side *)
let gallop_inter n (small, cs) mem_big =
  let out = Array.make (max 1 cs) 0 in
  let k = ref 0 in
  for i = 0 to cs - 1 do
    let v = small.(i) in
    if mem_big v then begin
      out.(!k) <- v;
      incr k
    end
  done;
  { n; card = !k; rep = Sparse { elts = out } }

let inter a b =
  check_same_capacity a b;
  match a.rep, b.rep with
  | Sparse ea, Sparse eb ->
    let (small, cs), (big, cb) =
      if a.card <= b.card then ((ea.elts, a.card), (eb.elts, b.card))
      else ((eb.elts, b.card), (ea.elts, a.card))
    in
    if cb > 16 * cs then gallop_inter a.n (small, cs) (fun v -> sparse_mem big cb v)
    else sparse_merge ~keep:(fun x y -> x && y) a.n (ea.elts, a.card) (eb.elts, b.card)
  | Dense da, Dense db ->
    of_words a.n
      (Array.init (Array.length da.words) (fun i -> da.words.(i) land db.words.(i)))
  | Sparse sp, Dense _ -> gallop_inter a.n (sp.elts, a.card) (mem b)
  | Dense _, Sparse sp -> gallop_inter a.n (sp.elts, b.card) (mem a)

let diff a b =
  check_same_capacity a b;
  match a.rep, b.rep with
  | Sparse ea, Sparse eb ->
    sparse_merge ~keep:(fun x y -> x && not y) a.n (ea.elts, a.card) (eb.elts, b.card)
  | Sparse sp, Dense _ ->
    gallop_inter a.n (sp.elts, a.card) (fun v -> not (mem b v))
  | Dense da, Dense db ->
    of_words a.n
      (Array.init (Array.length da.words) (fun i -> da.words.(i) land lnot db.words.(i)))
  | Dense da, Sparse sp ->
    let words = Array.copy da.words in
    let removed = ref 0 in
    for i = 0 to b.card - 1 do
      let v = sp.elts.(i) in
      let w = v / bits_per_word and m = 1 lsl (v mod bits_per_word) in
      if words.(w) land m <> 0 then begin
        words.(w) <- words.(w) land lnot m;
        incr removed
      end
    done;
    let s = { n = a.n; card = a.card - !removed; rep = Dense { words } } in
    maybe_demote s;
    s

let complement a =
  let n = a.n in
  match a.rep with
  | Sparse sp ->
    (* result is large: full dense universe minus the few elements *)
    let words = Array.make (words_for n) (-1) in
    if Array.length words > 0 then words.(Array.length words - 1) <- last_word_mask n;
    for i = 0 to a.card - 1 do
      let v = sp.elts.(i) in
      words.(v / bits_per_word) <-
        words.(v / bits_per_word) land lnot (1 lsl (v mod bits_per_word))
    done;
    let s = { n; card = n - a.card; rep = Dense { words } } in
    maybe_demote s;
    s
  | Dense d ->
    let nw = Array.length d.words in
    let words = Array.init nw (fun i -> lnot d.words.(i)) in
    if nw > 0 then words.(nw - 1) <- words.(nw - 1) land last_word_mask n;
    let s = { n; card = n - a.card; rep = Dense { words } } in
    maybe_demote s;
    s

let assign dst src =
  dst.card <- src.card;
  dst.rep <- src.rep

let union_into dst src =
  check_same_capacity dst src;
  match dst.rep, src.rep with
  | Dense dd, Dense ds ->
    let card = ref 0 in
    for i = 0 to Array.length dd.words - 1 do
      let w = dd.words.(i) lor ds.words.(i) in
      dd.words.(i) <- w;
      card := !card + popcount w
    done;
    dst.card <- !card
  | Dense _, Sparse sp ->
    for i = 0 to src.card - 1 do
      add dst sp.elts.(i)
    done
  | Sparse _, _ -> assign dst (union dst src)

let inter_into dst src =
  check_same_capacity dst src;
  match dst.rep, src.rep with
  | Dense dd, Dense ds ->
    let card = ref 0 in
    for i = 0 to Array.length dd.words - 1 do
      let w = dd.words.(i) land ds.words.(i) in
      dd.words.(i) <- w;
      card := !card + popcount w
    done;
    dst.card <- !card;
    maybe_demote dst
  | _ -> assign dst (inter dst src)

let equal a b =
  a.n = b.n && a.card = b.card
  &&
  match a.rep, b.rep with
  | Dense da, Dense db -> da.words = db.words
  | Sparse ea, Sparse eb ->
    let ok = ref true in
    for i = 0 to a.card - 1 do
      if ea.elts.(i) <> eb.elts.(i) then ok := false
    done;
    !ok
  | Sparse _, Dense _ | Dense _, Sparse _ ->
    let sparse, dense = match a.rep with Sparse _ -> (a, b) | _ -> (b, a) in
    let selts = match sparse.rep with Sparse sp -> sp.elts | Dense _ -> assert false in
    let ok = ref true in
    for i = 0 to sparse.card - 1 do
      if not (mem dense selts.(i)) then ok := false
    done;
    !ok

let subset a b =
  check_same_capacity a b;
  if a.card > b.card then false
  else
    match a.rep, b.rep with
    | Dense da, Dense db ->
      let ok = ref true in
      for i = 0 to Array.length da.words - 1 do
        if da.words.(i) land lnot db.words.(i) <> 0 then ok := false
      done;
      !ok
    | _ -> fold (fun v ok -> ok && mem b v) a true

let pp fmt s =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun v ->
      if !first then first := false else Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" v)
    s;
  Format.fprintf fmt "}"
