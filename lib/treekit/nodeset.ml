type t = {
  bits : Bytes.t;
  n : int;
  mutable card : int;
}

let create n = { bits = Bytes.make ((n + 7) / 8) '\000'; n; card = 0 }

let capacity s = s.n
let cardinal s = s.card
let is_empty s = s.card = 0

let mem s v =
  v >= 0 && v < s.n
  && Char.code (Bytes.unsafe_get s.bits (v lsr 3)) land (1 lsl (v land 7)) <> 0

let add s v =
  if v < 0 || v >= s.n then invalid_arg "Nodeset.add: out of range";
  let i = v lsr 3 and m = 1 lsl (v land 7) in
  let b = Char.code (Bytes.unsafe_get s.bits i) in
  if b land m = 0 then begin
    Bytes.unsafe_set s.bits i (Char.unsafe_chr (b lor m));
    s.card <- s.card + 1
  end

let remove s v =
  if v >= 0 && v < s.n then begin
    let i = v lsr 3 and m = 1 lsl (v land 7) in
    let b = Char.code (Bytes.unsafe_get s.bits i) in
    if b land m <> 0 then begin
      Bytes.unsafe_set s.bits i (Char.unsafe_chr (b land lnot m));
      s.card <- s.card - 1
    end
  end

let universe n =
  let s = create n in
  for v = 0 to n - 1 do add s v done;
  s

let copy s = { bits = Bytes.copy s.bits; n = s.n; card = s.card }

let clear s =
  Bytes.fill s.bits 0 (Bytes.length s.bits) '\000';
  s.card <- 0

let iter f s =
  let nbytes = Bytes.length s.bits in
  for i = 0 to nbytes - 1 do
    let b = Char.code (Bytes.unsafe_get s.bits i) in
    if b <> 0 then
      for j = 0 to 7 do
        if b land (1 lsl j) <> 0 then f ((i lsl 3) lor j)
      done
  done

let fold f s init =
  let acc = ref init in
  iter (fun v -> acc := f v !acc) s;
  !acc

let elements s = List.rev (fold (fun v acc -> v :: acc) s [])

let of_list n vs =
  let s = create n in
  List.iter (add s) vs;
  s

let min_elt s =
  if s.card = 0 then None
  else begin
    let found = ref (-1) in
    (try iter (fun v -> found := v; raise Exit) s with Exit -> ());
    Some !found
  end

let max_elt s =
  if s.card = 0 then None
  else begin
    let found = ref (-1) in
    iter (fun v -> found := v) s;
    Some !found
  end

let choose = min_elt

let check_same_capacity a b =
  if a.n <> b.n then invalid_arg "Nodeset: capacity mismatch"

let recount s =
  let c = ref 0 in
  Bytes.iter
    (fun ch ->
      let b = Char.code ch in
      for j = 0 to 7 do
        if b land (1 lsl j) <> 0 then incr c
      done)
    s.bits;
  s.card <- !c

let binop op a b =
  check_same_capacity a b;
  let r = create a.n in
  for i = 0 to Bytes.length a.bits - 1 do
    Bytes.unsafe_set r.bits i
      (Char.unsafe_chr
         (op (Char.code (Bytes.unsafe_get a.bits i)) (Char.code (Bytes.unsafe_get b.bits i))))
  done;
  recount r;
  r

let union a b = binop (fun x y -> x lor y) a b
let inter a b = binop (fun x y -> x land y) a b
let diff a b = binop (fun x y -> x land lnot y land 0xff) a b

let complement a =
  let r = create a.n in
  for v = 0 to a.n - 1 do
    if not (mem a v) then add r v
  done;
  r

let union_into dst src =
  check_same_capacity dst src;
  for i = 0 to Bytes.length dst.bits - 1 do
    Bytes.unsafe_set dst.bits i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst.bits i)
         lor Char.code (Bytes.unsafe_get src.bits i)))
  done;
  recount dst

let inter_into dst src =
  check_same_capacity dst src;
  for i = 0 to Bytes.length dst.bits - 1 do
    Bytes.unsafe_set dst.bits i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst.bits i)
         land Char.code (Bytes.unsafe_get src.bits i)))
  done;
  recount dst

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let subset a b =
  check_same_capacity a b;
  let ok = ref true in
  for i = 0 to Bytes.length a.bits - 1 do
    let x = Char.code (Bytes.unsafe_get a.bits i)
    and y = Char.code (Bytes.unsafe_get b.bits i) in
    if x land lnot y <> 0 then ok := false
  done;
  !ok

let pp fmt s =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun v ->
      if !first then first := false else Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" v)
    s;
  Format.fprintf fmt "}"
