(** Node-labeling schemes (Section 2, "Orders and Labeling Schemes" and
    "Structural Joins").

    The extended access support relation (XASR) of Fiebig–Moerkotte stores,
    for each node, the tuple [(pre, post, parent_pre, label)] — exactly
    Figure 2(b) of the paper.  Indices here are 1-based to match the figure;
    [parent_pre = None] encodes the figure's ⊥ for the root.

    From an XASR row alone all axis relationships are decidable
    ({!decide_axis}): e.g. [u] is an ancestor of [v] iff
    [u.pre < v.pre ∧ v.post < u.post] — the structural-join condition of
    Example 2.1. *)

type row = {
  pre : int;  (** 1-based [<pre]-index *)
  post : int;  (** 1-based [<post]-index *)
  parent_pre : int option;  (** [<pre]-index of the parent, [None] for the root *)
  lab : string;
}

type t = row array
(** The XASR of a tree, ordered by [pre] (so row [i] describes the node with
    pre-order rank [i]). *)

val xasr : Tree.t -> t
(** Compute the XASR of a tree. *)

val decide_axis : Axis.t -> row -> row -> bool
(** [decide_axis a ru rv] decides [a(u,v)] from the two rows alone.  This
    works for 13 of the 15 axes; immediate-sibling adjacency
    ([Next_sibling]/[Prev_sibling]) is provably not a function of two
    (pre, post, parent) rows (it needs the left sibling's subtree size), so
    those raise [Invalid_argument].  Use [Following_sibling] plus
    pre-minimality over the whole relation instead. *)

val pp : Format.formatter -> t -> unit
(** Prints the relation as in Figure 2(b): one [pre:post:parent:label] row
    per line. *)

val pp_node : Tree.t -> Format.formatter -> int -> unit
(** Prints a node in Figure 2(a)'s [pre:post:label] notation. *)
