(** The three total orders on tree nodes from Section 2: [<pre], [<post]
    and [<bflr], together with the paper's interdefinability formulas.

    The survey recalls that

    - [x <pre y  ⇔ Child⁺(x,y) ∨ Following(x,y)],
    - [x <post y ⇔ Child⁺(y,x) ∨ Following(x,y)],

    and conversely

    - [Child⁺(x,y)   ⇔ x <pre y ∧ y <post x],
    - [Following(x,y) ⇔ x <pre y ∧ x <post y],

    so a node-labeled tree is completely represented by the triples
    [(pre, post, label)].  {!lt_defined} implements the first pair of
    definitions literally; tests check it coincides with {!lt}. *)

type kind = Pre | Post | Bflr

val all_kinds : kind list

val kind_name : kind -> string
(** ["pre"], ["post"] or ["bflr"]. *)

val rank : Tree.t -> kind -> int -> int
(** [rank t k v] is the position of [v] in the total order [k]
    (0-based).  [Pre] is the identity; [Post] and [Bflr] are table
    lookups. *)

val node_of_rank : Tree.t -> kind -> int -> int
(** Inverse of {!rank}. *)

val lt : Tree.t -> kind -> int -> int -> bool
(** [lt t k u v] is true iff [u] strictly precedes [v] in order [k]. *)

val compare : Tree.t -> kind -> int -> int -> int
(** Three-way comparison in the given order. *)

val lt_defined : Tree.t -> kind -> int -> int -> bool
(** The orders as {e defined} in the paper from [Child⁺] and [Following]
    (for [Pre]/[Post]) or by breadth-first traversal (for [Bflr]);
    extensionally equal to {!lt} (property-tested). *)

val permutation : Tree.t -> kind -> int array
(** [permutation t k] lists the nodes in order [k]. *)
