(* ORDPATH labels: a node's label extends its parent's by one "group" of
   components — zero or more even carets followed by one odd component.
   Groups at the same sibling level are lexicographically ordered, new
   groups are minted between/around neighbours without touching existing
   labels, and one group = one tree level, which makes the ancestor test a
   plain strict-prefix test on full labels. *)

type node = {
  id : int;
  node_label : string;
  path : int array;
  node_parent : node option;
  mutable first : node option;
  mutable last : node option;
  mutable next : node option;
}

type t = {
  mutable count : int;
  doc_root : node;
  mutable registry : node list;  (* reverse insertion order *)
}

let label n = n.node_label
let ordpath n = Array.to_list n.path

let ordpath_string n =
  if Array.length n.path = 0 then "(root)"
  else String.concat "." (List.map string_of_int (ordpath n))

(* ------------------------------------------------------------------ *)
(* group arithmetic; a group is a nonempty int list, evens then one odd *)

let is_odd x = x land 1 = 1

let group_after g =
  match g with
  | f :: _ -> if is_odd f then [ f + 2 ] else [ f + 1 ]
  | [] -> invalid_arg "Ordpath: empty group"

let group_before g =
  match g with
  | f :: _ -> if is_odd f then [ f - 2 ] else [ f - 1 ]
  | [] -> invalid_arg "Ordpath: empty group"

let rec group_between g h =
  match g, h with
  | fg :: tg, fh :: th ->
    if fh >= fg + 2 then begin
      let x = if is_odd (fg + 1) then fg + 1 else fg + 2 in
      if x < fh then [ x ] else fg + 1 :: [ 1 ]
    end
    else if fh = fg + 1 then
      if is_odd fg then (* g = [fg]; h = even :: tail *) fh :: group_before th
      else (* fg even with a tail; h = [fh] *) fg :: group_after tg
    else if fh = fg then fg :: group_between tg th
    else invalid_arg "Ordpath.group_between: not ordered"
  | _ -> invalid_arg "Ordpath.group_between: empty group"

let suffix_of ~parent n =
  (* the group of [n] below [parent] *)
  let plen = Array.length parent.path in
  Array.to_list (Array.sub n.path plen (Array.length n.path - plen))

(* ------------------------------------------------------------------ *)

let create root_label =
  let doc_root =
    {
      id = 0;
      node_label = root_label;
      path = [||];
      node_parent = None;
      first = None;
      last = None;
      next = None;
    }
  in
  { count = 1; doc_root; registry = [ doc_root ] }

let root doc = doc.doc_root
let size doc = doc.count

let mint doc ~parent ~group ~label =
  let n =
    {
      id = doc.count;
      node_label = label;
      path = Array.append parent.path (Array.of_list group);
      node_parent = Some parent;
      first = None;
      last = None;
      next = None;
    }
  in
  doc.count <- doc.count + 1;
  doc.registry <- n :: doc.registry;
  n

let insert_last_child doc p label =
  let group =
    match p.last with None -> [ 1 ] | Some c -> group_after (suffix_of ~parent:p c)
  in
  let n = mint doc ~parent:p ~group ~label in
  (match p.last with
  | None -> p.first <- Some n
  | Some c -> c.next <- Some n);
  p.last <- Some n;
  n

let insert_first_child doc p label =
  let group =
    match p.first with None -> [ 1 ] | Some c -> group_before (suffix_of ~parent:p c)
  in
  let n = mint doc ~parent:p ~group ~label in
  n.next <- p.first;
  p.first <- Some n;
  if p.last = None then p.last <- Some n;
  n

let insert_after doc v label =
  match v.node_parent with
  | None -> invalid_arg "Ordpath.insert_after: the root has no siblings"
  | Some p ->
    let g = suffix_of ~parent:p v in
    let group =
      match v.next with
      | None -> group_after g
      | Some w -> group_between g (suffix_of ~parent:p w)
    in
    let n = mint doc ~parent:p ~group ~label in
    n.next <- v.next;
    v.next <- Some n;
    (match p.last with Some l when l == v -> p.last <- Some n | _ -> ());
    n

(* ------------------------------------------------------------------ *)

let is_ancestor a d =
  let la = Array.length a.path and ld = Array.length d.path in
  la < ld
  &&
  let rec go i = i >= la || (a.path.(i) = d.path.(i) && go (i + 1)) in
  go 0

let compare_doc u v =
  let lu = Array.length u.path and lv = Array.length v.path in
  let rec go i =
    if i >= lu && i >= lv then 0
    else if i >= lu then -1 (* prefix: ancestor first *)
    else if i >= lv then 1
    else if u.path.(i) <> v.path.(i) then compare u.path.(i) v.path.(i)
    else go (i + 1)
  in
  go 0

let is_following u v = compare_doc u v < 0 && not (is_ancestor u v)

let max_label_length doc =
  List.fold_left (fun m n -> max m (Array.length n.path)) 0 doc.registry

let snapshot doc =
  let nodes = Array.of_list doc.registry in
  Array.sort compare_doc nodes;
  let pre_of_id = Array.make doc.count 0 in
  Array.iteri (fun pre n -> pre_of_id.(n.id) <- pre) nodes;
  let parents =
    Array.map
      (fun n -> match n.node_parent with None -> -1 | Some p -> pre_of_id.(p.id))
      nodes
  in
  let labels = Array.map (fun n -> n.node_label) nodes in
  let tree = Tree.of_parent_vector ~parents ~labels () in
  (tree, fun n -> pre_of_id.(n.id))
