(** The binary [FirstChild]/[NextSibling] representation of unranked trees
    (Figure 1 of the paper).

    An unranked ordered tree is completely described by the two partial
    bijections [FirstChild] and [NextSibling]; this module materialises them
    as edge lists and converts back, reproducing Figure 1's encoding. *)

type t = {
  n : int;  (** number of nodes; nodes are pre-order ranks *)
  first_child : (int * int) list;  (** [FirstChild(u,v)] edges (ւ in Fig. 1) *)
  next_sibling : (int * int) list;  (** [NextSibling(u,v)] edges (ց in Fig. 1) *)
  labels : string array;  (** label of each node *)
}

val of_tree : Tree.t -> t
(** Extract the binary representation; edges are listed in document order of
    their source node. *)

val to_tree : t -> Tree.t
(** Rebuild the unranked tree.
    @raise Invalid_argument if the edges do not describe a tree whose nodes
    are numbered in pre-order. *)

val pp : Format.formatter -> t -> unit
(** Prints the two edge relations, e.g. for Figure 1(a):
    [FirstChild = {(n1,n2), (n2,n3), (n4,n5)} …]. *)
