type kind = Pre | Post | Bflr

let all_kinds = [ Pre; Post; Bflr ]

let kind_name = function Pre -> "pre" | Post -> "post" | Bflr -> "bflr"

let rank t k v =
  match k with
  | Pre -> v
  | Post -> Tree.post t v
  | Bflr -> (Tree.bflr_rank t).(v)

let node_of_rank t k i =
  match k with
  | Pre -> i
  | Post -> Tree.node_of_post t i
  | Bflr -> (Tree.node_of_bflr t).(i)

let lt t k u v = rank t k u < rank t k v

let compare t k u v = Stdlib.compare (rank t k u) (rank t k v)

let lt_defined t k u v =
  match k with
  | Pre -> Tree.is_ancestor t u v || Tree.is_following t u v
  | Post -> Tree.is_ancestor t v u || Tree.is_following t u v
  | Bflr ->
    (* breadth-first left-to-right: smaller depth first; at equal depth,
       document order *)
    let du = Tree.depth t u and dv = Tree.depth t v in
    du < dv || (du = dv && u < v)

let permutation t k =
  let n = Tree.size t in
  Array.init n (fun i -> node_of_rank t k i)
