(** A positioned parse error shared by the hand-rolled query parsers
    (path patterns, axis datalog, …), so front ends can point at the
    offending input offset instead of surfacing an anonymous [Failure]. *)

exception Error of { pos : int; msg : string }
(** [pos] is a 0-based character offset into the input string. *)

val raise_at : int -> ('a, unit, string, 'b) format4 -> 'a
(** [raise_at pos fmt …] raises {!Error} with a formatted message. *)

val to_string : pos:int -> msg:string -> string
