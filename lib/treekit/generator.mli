(** Synthetic tree workloads.

    The paper's experiments in the literature run on XML corpora; all
    algorithms in the survey depend only on tree shape, size and labels, so
    these generators (documented substitution, see DESIGN.md) produce the
    workloads for every benchmark:

    - {!random} — random recursive trees with controlled fan-out bias
      (shallow, "XML-like" shape);
    - {!random_deep} — shape-biased trees with controllable expected depth,
      for the streaming memory experiments;
    - {!path}, {!full}, {!star} — extreme shapes;
    - {!xmark} — an XMark-flavoured auction document;
    - {!all_shapes} — exhaustive enumeration of all ordered trees of a given
      size (Catalan many), used for the exhaustive Table 1 verification.

    All generators are deterministic given their [seed].  Alternatively a
    caller may pass an explicit random state via [rng] (which then takes
    precedence over [seed]): the state is advanced in place, so a sequence
    of generator calls threaded through one state is bit-reproducible —
    no generator ever touches the global [Random] state. *)

val random :
  ?seed:int -> ?rng:Random.State.t -> n:int -> labels:string array -> unit -> Tree.t
(** Uniform random recursive tree: node [v] chooses its parent uniformly
    among [0..v-1] (expected depth O(log n)); labels drawn uniformly. *)

val random_deep :
  ?seed:int ->
  ?rng:Random.State.t ->
  n:int ->
  labels:string array ->
  descend_bias:float ->
  unit ->
  Tree.t
(** Stack-walk generator: with probability [descend_bias] the next node is a
    child of the current node, otherwise the walk pops up first.  A bias
    close to 1.0 yields path-like trees, close to 0.0 star-like trees. *)

val path : ?label:string -> n:int -> unit -> Tree.t
(** The path (monadic tree) with [n] nodes. *)

val star : ?label:string -> n:int -> unit -> Tree.t
(** A root with [n - 1] leaf children. *)

val full : ?label:string -> fanout:int -> depth:int -> unit -> Tree.t
(** The complete [fanout]-ary tree of the given depth (root depth 0). *)

val xmark : ?seed:int -> ?rng:Random.State.t -> scale:int -> unit -> Tree.t
(** An XMark-like auction site document with roughly [36 * scale] element
    nodes, using the XMark element vocabulary (site, regions, item, person,
    open_auction, …). *)

val all_shapes : n:int -> Tree.t list
(** All ordered rooted trees with exactly [n] nodes (Catalan(n-1) many),
    every node labeled ["a"].  Intended for small [n] (≤ 8). *)

val labels_abc : string array
(** The 3-letter alphabet [\["a"; "b"; "c"\]] used across tests. *)
