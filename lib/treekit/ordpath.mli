(** ORDPATH-style hierarchical node labels (Section 2's insert-friendly
    labeling schemes; O'Neil et al. [63]).

    Where {!Dynlabel} keeps fixed-size labels and occasionally relabels a
    window, ORDPATH {e never relabels}: a node's label is a sequence of
    integer components extending its parent's label, and insertions
    between existing siblings "caret in" with an even component followed
    by a fresh odd one.  Trade-off: labels grow with update pathology.

    Invariants (tested):
    - ancestor test  = strict prefix test on labels;
    - document order = componentwise lexicographic order, prefixes first;
    - [Following(u,v) ⇔ u <doc v ∧ u not a prefix of v]. *)

type t
(** A mutable labeled document. *)

type node

val create : string -> t

val root : t -> node

val size : t -> int

val label : node -> string
(** The node's element label. *)

val ordpath : node -> int list
(** The ORDPATH components (root = []). *)

val ordpath_string : node -> string
(** Dotted rendering, e.g. ["1.3.2.1"]. *)

val insert_last_child : t -> node -> string -> node

val insert_first_child : t -> node -> string -> node

val insert_after : t -> node -> string -> node
(** New right sibling; carets in when the sibling gap is exhausted.
    @raise Invalid_argument on the root. *)

val is_ancestor : node -> node -> bool
(** Prefix test; O(label length). *)

val compare_doc : node -> node -> int
(** Document order. *)

val is_following : node -> node -> bool

val max_label_length : t -> int
(** Longest label in components — the growth the benchmark reports. *)

val snapshot : t -> Tree.t * (node -> int)
(** Freeze into a static {!Tree} plus the node → pre-order mapping. *)
