(** Interned node labels.

    The paper assumes a node-labeling alphabet [Σ] that is not fixed in
    advance; labels are represented by relations [(Lab_a)] for [a ∈ Σ].  We
    intern label strings to dense integer codes so that label tests are
    integer comparisons and label-indexed structures are arrays. *)

type table
(** A mutable interning table mapping label strings to dense codes
    [0 .. count - 1]. *)

type t = int
(** An interned label code, valid for the table that produced it. *)

val create_table : unit -> table
(** [create_table ()] is a fresh, empty table. *)

val intern : table -> string -> t
(** [intern tbl s] returns the code for [s], assigning a fresh code if [s]
    has not been seen before. *)

val find : table -> string -> t option
(** [find tbl s] is the code of [s] if it has been interned, else [None]. *)

val name : table -> t -> string
(** [name tbl c] is the string whose code is [c].
    @raise Invalid_argument if [c] is not a valid code. *)

val count : table -> int
(** [count tbl] is the number of distinct labels interned so far. *)

val copy : table -> table
(** [copy tbl] is an independent copy of [tbl]. *)
