(* Complexity attestation: seeded scaling sweeps that check the paper's
   asymptotic claims against the counters that witness them.

   Each registered [Obs.Bound] ties a counter to the input-size term it
   must scale against and the claimed log-log slope; [run] sweeps the
   term, reads the counter at each point with observability enabled, fits
   the observed slope with [Obs.Bound.fit_slope] and flags any bound
   whose slope exceeds the claim beyond tolerance (plus, where the paper
   gives an exact envelope such as Prop. 4.2's 2·|edges|, a pointwise
   check).  The sweeps reuse the bench generators: fixed seeds make every
   point an exact machine-independent expectation. *)

module Generator = Treekit.Generator
module Q = Cqtree.Query

(* ------------------------------------------------------------------ *)
(* The registry: one entry per paper claim. *)

let b_datalog =
  Obs.Bound.register ~id:"datalog-grounding"
    ~claim:"Theorem 3.2: monadic datalog grounds to <= c*|D|*|Q| Horn rules"
    ~counter:"datalog_ground_rules" ~term:"|D|" ~exponent:1.0

let b_hornsat =
  Obs.Bound.register ~id:"hornsat-unit-props"
    ~claim:"Figure 3 (Minoux): unit propagation linear in program size"
    ~counter:"hornsat_unit_props" ~term:"|P| ground rules" ~exponent:1.0

let b_semijoin =
  Obs.Bound.register ~id:"semijoin-passes"
    ~claim:"Prop. 4.2 (Yannakakis): full reducer = 2*|edges| semijoin passes"
    ~counter:"semijoin_passes" ~term:"|Q| atoms" ~exponent:1.0

let b_structural =
  Obs.Bound.register ~id:"structural-join-merge"
    ~claim:"structural join: interval merge materialises O(input+output)"
    ~counter:"tuples_materialised" ~term:"input+output" ~exponent:1.0

let b_stream =
  Obs.Bound.register ~id:"stream-buffer-depth"
    ~claim:"Section 7 ([40]): streaming matcher buffers O(depth) frames"
    ~counter:"stream_peak_depth" ~term:"document depth" ~exponent:1.0

let b_plan_cache =
  Obs.Bound.register ~id:"plan-cache-lookup"
    ~claim:"serving layer: warm plan-cache lookups are O(1), misses O(shapes)"
    ~counter:"plan_cache_miss" ~term:"requests" ~exponent:0.0

let b_xpath =
  Obs.Bound.register ~id:"xpath-bottom-up"
    ~claim:"Figure 7: Core XPath bottom-up has linear data complexity"
    ~counter:"nodes_visited" ~term:"|D|" ~exponent:1.0

let b_optimizer =
  Obs.Bound.register ~id:"optimizer-pick"
    ~claim:"adaptive optimizer: the converged pick's cost is never worse than the best strategy's linear bound"
    ~counter:"optimizer_picked_cost" ~term:"|D|" ~exponent:1.0

(* ------------------------------------------------------------------ *)
(* Sweeps.  Each returns (term, counter) points measured on fresh
   observability state; [read c] is the counter's value after the traced
   run. *)

let read name =
  match List.assoc_opt name (Obs.Counter.snapshot ()) with
  | Some v -> float_of_int v
  | None -> 0.0

let traced f =
  Obs.reset ();
  Obs.with_enabled true f

let sizes = [ 2_000; 4_000; 8_000; 16_000 ]

let tree_of ~seed n =
  Generator.random ~seed:((seed * 1009) + (n * 13) + 1) ~n
    ~labels:Generator.labels_abc ()

let sweep_datalog ~seed =
  let p = Mdatalog.Examples.has_ancestor_labeled "b" in
  List.map
    (fun n ->
      let t = tree_of ~seed n in
      traced (fun () -> ignore (Mdatalog.Eval.run p t));
      let v = read "datalog_ground_rules" in
      Obs.reset ();
      (float_of_int n, v))
    sizes

(* same workload, but the term is the grounded program size itself: unit
   propagation must be linear in what grounding produced *)
let sweep_hornsat ~seed =
  let p = Mdatalog.Examples.has_ancestor_labeled "b" in
  List.map
    (fun n ->
      let t = tree_of ~seed n in
      traced (fun () -> ignore (Mdatalog.Eval.run p t));
      let rules = read "datalog_ground_rules" in
      let props = read "hornsat_unit_props" in
      Obs.reset ();
      (rules, props))
    sizes

(* Boolean descendant chains of growing length over a fixed document:
   the reducer runs 2 passes over the join tree's edges, so the counter
   must stay within 2*atoms pointwise and scale linearly in |Q| *)
let chain_cq k =
  let v i = Printf.sprintf "V%d" i in
  let atoms =
    List.init k (fun i -> Q.U (Q.Lab "a", v i))
    @ List.init (k - 1) (fun i -> Q.A (Treekit.Axis.Descendant, v i, v (i + 1)))
  in
  { Q.head = []; atoms }

let sweep_semijoin ~seed =
  let t = tree_of ~seed 4_000 in
  List.map
    (fun k ->
      let q = chain_cq k in
      traced (fun () -> ignore (Cqtree.Yannakakis.boolean q t));
      let v = read "semijoin_passes" in
      Obs.reset ();
      (float_of_int (Q.atom_count q), v))
    (* longer chains: passes and atoms differ by an affine offset, so the
       log-log slope only converges to 1 once k dominates the constant *)
    [ 4; 8; 16; 32 ]

let sweep_structural ~seed =
  List.map
    (fun n ->
      let t = tree_of ~seed n in
      let store = Relkit.Structural_join.store t in
      let out = ref 0 in
      traced (fun () ->
          out := Relkit.Relation.cardinality (Relkit.Structural_join.descendant_view store));
      let v = read "tuples_materialised" in
      Obs.reset ();
      (float_of_int (n + !out), v))
    [ 1_000; 2_000; 4_000; 8_000 ]

let sweep_stream ~seed:_ =
  let p = Streamq.Path_pattern.of_string "//a//b" in
  List.map
    (fun depth ->
      let t = Generator.full ~fanout:2 ~depth () in
      traced (fun () ->
          ignore (Streamq.Path_matcher.run t p ~on_match:(fun _ -> ())));
      let v = read "stream_peak_depth" in
      Obs.reset ();
      (float_of_int (Treekit.Tree.height t + 1), v))
    [ 6; 8; 10; 12 ]

(* a closed-loop warm-cache serve run: the misses are exactly the
   distinct shapes, however many requests arrive *)
let sweep_plan_cache ~seed =
  let tree = Generator.xmark ~seed:(seed + 3) ~scale:64 () in
  List.map
    (fun count ->
      let rng = Random.State.make [| seed; 0xca11 |] in
      let shapes = Serve.Workload.shapes ~rng ~count:32 in
      let reqs =
        Serve.Workload.requests ~rng ~shapes:32 ~count Serve.Workload.Closed_loop
      in
      let cache = Serve.Plan_cache.create ~capacity:64 () in
      let cfg = Serve.Server.config ~cache ~concurrency:100 ~share:true () in
      traced (fun () -> ignore (Serve.Server.run cfg tree shapes reqs));
      let v = read "plan_cache_miss" in
      Obs.reset ();
      (float_of_int count, v))
    [ 500; 1_000; 2_000; 4_000 ]

let sweep_xpath ~seed =
  let p = Xpath.Parser.parse "//a[b and not(descendant::c)]/following-sibling::*" in
  List.map
    (fun n ->
      let t = tree_of ~seed n in
      traced (fun () -> ignore (Xpath.Eval.query t p));
      let v = read "nodes_visited" in
      Obs.reset ();
      (float_of_int n, v))
    sizes

(* the adaptive optimizer's never-worse gate: converge an optimizer on a
   multi-arm XPath shape at each document size, then execute its
   converged pick and charge the elementary operations that execution
   burned to [optimizer_picked_cost].  Every plausible arm of the shape
   is linear in |D| (the quadratic FO² embedding prices itself out of
   the plausible set), so whichever arm the observed latencies crown,
   the fitted slope must stay linear. *)
let c_picked_cost = Obs.Counter.make "optimizer_picked_cost"

let counter_delta before after =
  List.fold_left
    (fun acc (k, v) ->
      let b = Option.value ~default:0 (List.assoc_opt k before) in
      if v > b then acc + (v - b) else acc)
    0 after

let sweep_optimizer_with ~invert ~sizes ~seed =
  List.map
    (fun n ->
      let t = tree_of ~seed n in
      (* [following]: the bottom-up/Yannakakis arms stay linear per axis
         image, but the FO² embedding materialises the axis {e relation}
         — ~n²/2 Following pairs — so a forced bad pick is provably
         quadratic while the honest pick stays linear *)
      let q = Treequery.Engine.parse_xpath "//a/following::b" in
      let default = Treequery.Engine.prepare q in
      let opt = Optimizer.create ~epsilon:0.0 ~invert ~seed () in
      traced (fun () ->
          (* explore until the entry converges; the inverted optimizer
             never converges — its every decision is already the forced
             worst arm, which is exactly what the fault injects *)
          let converged = ref invert and guard = ref 0 in
          while (not !converged) && !guard < 32 do
            incr guard;
            let d = Optimizer.decide opt t default in
            let t0 = Obs.now () in
            ignore (d.Optimizer.d_prepared.Treequery.Engine.exec t);
            let dt = Obs.now () -. t0 in
            match
              Optimizer.observe opt ~canon:default.Treequery.Engine.canon
                ~strategy:
                  (Treequery.Engine.strategy_name d.Optimizer.d_strategy)
                ~latency:dt ~cost:dt
            with
            | Some _ -> converged := true
            | None -> ()
          done;
          let d = Optimizer.decide opt t default in
          let before = Obs.Counter.snapshot () in
          ignore (d.Optimizer.d_prepared.Treequery.Engine.exec t);
          let after = Obs.Counter.snapshot () in
          Obs.Counter.add c_picked_cost (counter_delta before after));
      let v = read "optimizer_picked_cost" in
      Obs.reset ();
      (float_of_int n, v))
    sizes

let sweep_optimizer ~seed = sweep_optimizer_with ~invert:false ~sizes ~seed

(* --inject: a deliberately superlinear counter, proving the gate has
   teeth — its fitted slope is ~2 against a claimed exponent of 1 *)
let c_injected = Obs.Counter.make "attest_injected_work"

let injected_bound () =
  Obs.Bound.register ~id:"injected-superlinear"
    ~claim:"(fault injection) pretends quadratic work is linear"
    ~counter:"attest_injected_work" ~term:"n" ~exponent:1.0

let sweep_injected ~seed:_ =
  List.map
    (fun n ->
      traced (fun () -> Obs.Counter.add c_injected (n * n / 1_000));
      let v = read "attest_injected_work" in
      Obs.reset ();
      (float_of_int n, v))
    sizes

(* --inject, second fault: an optimizer whose every decision routes to
   the worst-estimated arm — on XPath that is the O(n²·|Q|) FO²
   embedding, so the same never-worse gate must fail.  Smaller sizes:
   the whole point is that the forced arm does quadratic work. *)
let injected_pick_bound () =
  Obs.Bound.register ~id:"injected-bad-pick"
    ~claim:"(fault injection) optimizer forced onto the quadratic FO2 arm"
    ~counter:"optimizer_picked_cost" ~term:"|D|" ~exponent:1.0

let sweep_injected_pick ~seed =
  sweep_optimizer_with ~invert:true ~sizes:[ 250; 500; 1_000; 2_000 ] ~seed

(* ------------------------------------------------------------------ *)

type spec = {
  bound : Obs.Bound.t;
  sweep : seed:int -> (float * float) list;
  envelope : (float -> float) option;
      (* pointwise cap on the counter, where the paper gives an exact
         one (Prop. 4.2: passes <= 2*atoms; streaming: peak <= depth) *)
}

let specs =
  [
    { bound = b_datalog; sweep = sweep_datalog; envelope = None };
    { bound = b_hornsat; sweep = sweep_hornsat; envelope = None };
    { bound = b_semijoin; sweep = sweep_semijoin;
      envelope = Some (fun atoms -> 2.0 *. atoms) };
    { bound = b_structural; sweep = sweep_structural; envelope = None };
    { bound = b_stream; sweep = sweep_stream;
      envelope = Some (fun depth -> depth) };
    { bound = b_plan_cache; sweep = sweep_plan_cache; envelope = None };
    { bound = b_xpath; sweep = sweep_xpath; envelope = None };
    { bound = b_optimizer; sweep = sweep_optimizer; envelope = None };
  ]

type outcome = {
  bound : Obs.Bound.t;
  points : (float * float) list;
  slope : float;
  slope_ok : bool;
  envelope_ok : bool;
}

let outcome_ok o = o.slope_ok && o.envelope_ok

let run ?(inject = false) ~seed ~tolerance () =
  let was = Obs.enabled () in
  let specs =
    if inject then
      specs
      @ [
          { bound = injected_bound (); sweep = sweep_injected; envelope = None };
          { bound = injected_pick_bound (); sweep = sweep_injected_pick;
            envelope = None };
        ]
    else specs
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled was)
    (fun () ->
      List.map
        (fun s ->
          let points = s.sweep ~seed in
          let slope = Obs.Bound.fit_slope points in
          {
            bound = s.bound;
            points;
            slope;
            slope_ok = slope <= s.bound.Obs.Bound.exponent +. tolerance;
            envelope_ok =
              (match s.envelope with
              | None -> true
              | Some cap -> List.for_all (fun (x, y) -> y <= cap x) points);
          })
        specs)

let all_ok = List.for_all outcome_ok

let to_json ~seed ~tolerance outcomes =
  let point (x, y) = Obs.Json.Obj [ ("term", Obs.Json.Num x); ("counter", Obs.Json.Num y) ] in
  Obs.Json.Obj
    [
      ("seed", Obs.Json.Num (float_of_int seed));
      ("tolerance", Obs.Json.Num tolerance);
      ("ok", Obs.Json.Bool (all_ok outcomes));
      ( "bounds",
        Obs.Json.Arr
          (List.map
             (fun o ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Str o.bound.Obs.Bound.id);
                   ("claim", Obs.Json.Str o.bound.Obs.Bound.claim);
                   ("counter", Obs.Json.Str o.bound.Obs.Bound.counter);
                   ("term", Obs.Json.Str o.bound.Obs.Bound.term);
                   ("claimed_exponent", Obs.Json.Num o.bound.Obs.Bound.exponent);
                   ("fitted_slope", Obs.Json.Num o.slope);
                   ("slope_ok", Obs.Json.Bool o.slope_ok);
                   ("envelope_ok", Obs.Json.Bool o.envelope_ok);
                   ("ok", Obs.Json.Bool (outcome_ok o));
                   ("points", Obs.Json.Arr (List.map point o.points));
                 ])
             outcomes) );
    ]

let to_text outcomes =
  let buf = Buffer.create 512 in
  List.iter
    (fun o ->
      Printf.bprintf buf "[%s] %-24s %-24s slope %.3f (claimed <= %.1f)%s\n"
        (if outcome_ok o then "PASS" else "FAIL")
        o.bound.Obs.Bound.id
        (Printf.sprintf "%s vs %s" o.bound.Obs.Bound.counter o.bound.Obs.Bound.term)
        o.slope o.bound.Obs.Bound.exponent
        (if o.envelope_ok then "" else "  ENVELOPE EXCEEDED");
      Printf.bprintf buf "       %s\n" o.bound.Obs.Bound.claim;
      List.iter
        (fun (x, y) -> Printf.bprintf buf "       %12.0f -> %12.0f\n" x y)
        o.points)
    outcomes;
  Printf.bprintf buf "%d/%d bounds attested\n"
    (List.length (List.filter outcome_ok outcomes))
    (List.length outcomes);
  Buffer.contents buf
