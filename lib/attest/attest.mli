(** Complexity attestation: check the paper's asymptotic claims against
    the counters that witness them.

    Each registered {!Obs.Bound} maps a claim (Theorem 3.2's |D|·|Q|
    grounding, Prop. 4.2's 2·|edges| semijoin program, Minoux's
    linear-time unit propagation, …) to a witnessing counter and the
    input-size term it must scale against.  {!run} sweeps each bound's
    term with the fixed-seed bench generators, fits the observed log-log
    slope and fails any bound whose slope exceeds its claimed exponent
    beyond tolerance — the paper's complexity map (Figure 7) as a CI
    regression gate.  Where the paper gives an exact envelope (semijoin
    passes ≤ 2·|Q| atoms, stream peak ≤ depth), the sweep also checks it
    pointwise. *)

type outcome = {
  bound : Obs.Bound.t;
  points : (float * float) list;  (** (term, counter) per sweep step *)
  slope : float;  (** fitted log-log slope of counter vs term *)
  slope_ok : bool;  (** slope ≤ claimed exponent + tolerance *)
  envelope_ok : bool;  (** pointwise cap held (true when none claimed) *)
}

val outcome_ok : outcome -> bool

val run : ?inject:bool -> seed:int -> tolerance:float -> unit -> outcome list
(** Sweep every registered bound — eight claims, including the adaptive
    optimizer's never-worse gate (its converged pick's observed cost
    must scale no worse than the best strategy's linear bound).
    [inject] adds two fault bounds that must FAIL, proving the gate has
    teeth: a deliberately superlinear counter, and an inverted optimizer
    whose every decision routes to the quadratic FO² arm.  Runs with
    observability enabled internally and restores the previous enabled
    state and counters afterwards. *)

val all_ok : outcome list -> bool

val to_json : seed:int -> tolerance:float -> outcome list -> Obs.Json.t
(** The BENCH_pr5.json document: seed, tolerance, verdicts and the raw
    (term, counter) points per bound. *)

val to_text : outcome list -> string
