(** Concrete syntax for monadic datalog programs.

    {v
    program  ::= clause* query
    clause   ::= head ":-" atom ("," atom)* "."  |  head "."
    head     ::= name "(" VAR ")"
    atom     ::= name "(" VAR ")"                  (unary)
               | "lab" "(" VAR "," STRING ")"      (node label)
               | name "(" VAR "," VAR ")"          (binary axis)
    query    ::= "?-" name "."
    v}

    Variables are capitalised identifiers, predicate names lower-case.
    Built-in predicate names: [dom], [root], [leaf], [firstsibling],
    [lastsibling] (unary); [lab] (label); [firstchild], [nextsibling],
    [child] (binary).  Any other lower-case name is an intensional (or
    externally supplied) unary predicate.  [%] starts a comment. *)

exception Syntax_error of string

val parse : string -> Ast.program
(** @raise Syntax_error with a readable message on bad input. *)

val parse_rule : string -> Ast.rule
(** Parse a single clause (without the query directive). *)
