type var = string

type unary =
  | Dom
  | Root
  | Leaf
  | First_sibling
  | Last_sibling
  | Lab of string
  | Pred of string

type binary = First_child | Next_sibling | Child

type atom = U of unary * var | B of binary * var * var

type rule = { head : string; head_var : var; body : atom list }

type program = { rules : rule list; query : string }

let atom_vars = function U (_, x) -> [ x ] | B (_, x, y) -> [ x; y ]

let rule_vars r =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      out := x :: !out
    end
  in
  visit r.head_var;
  List.iter (fun a -> List.iter visit (atom_vars a)) r.body;
  List.rev !out

let intensional p =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun r ->
      if not (Hashtbl.mem seen r.head) then begin
        Hashtbl.add seen r.head ();
        out := r.head :: !out
      end)
    p.rules;
  List.rev !out

type shape = Tree_shaped | Cyclic | Disconnected

let rule_shape r =
  let vars = rule_vars r in
  let n = List.length vars in
  let idx = Hashtbl.create 8 in
  List.iteri (fun i x -> Hashtbl.add idx x i) vars;
  let edges =
    List.filter_map
      (function
        | B (_, x, y) -> Some (Hashtbl.find idx x, Hashtbl.find idx y)
        | U _ -> None)
      r.body
  in
  let nedges = List.length edges in
  (* union-find connectivity; a connected graph on n vertices with n-1 edges
     and no self-loop multi-edge cycle is a tree *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let cyclic = ref false in
  List.iter
    (fun (a, b) ->
      let ra = find a and rb = find b in
      if ra = rb then cyclic := true else parent.(ra) <- rb)
    edges;
  let roots = ref 0 in
  for i = 0 to n - 1 do
    if find i = i then incr roots
  done;
  if !cyclic then Cyclic
  else if !roots > 1 then Disconnected
  else if nedges = n - 1 then Tree_shaped
  else Cyclic

let check p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if p.rules = [] then err "program has no rules"
  else if not (List.mem p.query (intensional p)) then
    err "query predicate %s has no rule" p.query
  else
    let rec go = function
      | [] -> Ok ()
      | r :: rest ->
        let body_vars = List.concat_map atom_vars r.body in
        if not (List.mem r.head_var body_vars) then
          err "rule for %s is unsafe: head variable %s not in body" r.head r.head_var
        else begin
          match rule_shape r with
          | Tree_shaped -> go rest
          | Cyclic -> err "rule for %s has a cyclic variable graph" r.head
          | Disconnected -> err "rule for %s has a disconnected variable graph" r.head
        end
    in
    go p.rules

let unary_name = function
  | Dom -> "dom"
  | Root -> "root"
  | Leaf -> "leaf"
  | First_sibling -> "firstsibling"
  | Last_sibling -> "lastsibling"
  | Lab _ -> "lab"
  | Pred s -> s

let binary_name = function
  | First_child -> "firstchild"
  | Next_sibling -> "nextsibling"
  | Child -> "child"

let pp_atom fmt = function
  | U (Lab a, x) -> Format.fprintf fmt "lab(%s, %S)" x a
  | U (u, x) -> Format.fprintf fmt "%s(%s)" (unary_name u) x
  | B (b, x, y) -> Format.fprintf fmt "%s(%s, %s)" (binary_name b) x y

let pp_rule fmt r =
  Format.fprintf fmt "%s(%s)" r.head r.head_var;
  (match r.body with
  | [] -> ()
  | atoms ->
    Format.fprintf fmt " :- ";
    List.iteri
      (fun i a ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_atom fmt a)
      atoms);
  Format.fprintf fmt "."

let pp_program fmt p =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%a@," pp_rule r) p.rules;
  Format.fprintf fmt "?- %s.@]" p.query
