open Ast
module Tree = Treekit.Tree
module Nodeset = Treekit.Nodeset

type env = (string * Nodeset.t) list

exception Unbound_predicate of string

(* ground rules emitted by the Theorem 3.2 grounding; linear in
   |P|·|Dom| for TMNF programs *)
let c_ground = Obs.Counter.make "datalog_ground_rules"

(* ------------------------------------------------------------------ *)
(* Embedding enumeration.

   For a tree-shaped rule, enumerate all assignments of the rule variables
   to tree nodes that satisfy the body's extensional atoms.  Binary atoms
   over FirstChild/NextSibling are bidirectional partial bijections, so the
   assignment propagates deterministically; Child(x,y) with x known branches
   over the children of x.  Intensional (and env) unary atoms are collected
   and handed to [accept] for the caller to interpret. *)

let enumerate rule tree ~is_extensional ~test_env ~accept =
  let vars = rule_vars rule in
  let idx = Hashtbl.create 8 in
  List.iteri (fun i x -> Hashtbl.add idx x i) vars;
  let nvars = List.length vars in
  let assignment = Array.make nvars (-1) in
  (* adjacency: per variable index, the binary atoms touching it *)
  let adj = Array.make nvars [] in
  let unary_atoms = Array.make nvars [] in
  List.iter
    (function
      | B (b, x, y) ->
        let ix = Hashtbl.find idx x and iy = Hashtbl.find idx y in
        adj.(ix) <- (b, ix, iy) :: adj.(ix);
        adj.(iy) <- (b, ix, iy) :: adj.(iy)
      | U (u, x) ->
        let ix = Hashtbl.find idx x in
        unary_atoms.(ix) <- u :: unary_atoms.(ix))
    rule.body;
  let rec bind ix v pendings cont =
    if assignment.(ix) <> -1 then (if assignment.(ix) = v then cont pendings)
    else begin
      (* check unary atoms on this variable *)
      let rec unaries pendings = function
        | [] -> Some pendings
        | u :: rest -> begin
          match u with
          | Dom -> unaries pendings rest
          | Root -> if Tree.is_root tree v then unaries pendings rest else None
          | Leaf -> if Tree.is_leaf tree v then unaries pendings rest else None
          | First_sibling ->
            if Tree.is_first_sibling tree v then unaries pendings rest else None
          | Last_sibling ->
            if Tree.is_last_sibling tree v then unaries pendings rest else None
          | Lab a -> if Tree.label tree v = a then unaries pendings rest else None
          | Pred p ->
            if is_extensional p then
              if test_env p v then unaries pendings rest else None
            else unaries ((p, v) :: pendings) rest
        end
      in
      match unaries pendings unary_atoms.(ix) with
      | None -> ()
      | Some pendings ->
        assignment.(ix) <- v;
        propagate ix adj.(ix) pendings (fun ps -> cont ps);
        assignment.(ix) <- -1
    end
  and propagate ix edges pendings cont =
    (* satisfy every binary atom adjacent to ix whose other endpoint is
       determined by ix's value *)
    match edges with
    | [] -> cont pendings
    | (b, sx, sy) :: rest ->
      let v = assignment.(ix) in
      let other = if sx = ix then sy else sx in
      let continue_with w =
        if w = -1 then ()
        else bind other w pendings (fun ps -> propagate ix rest ps cont)
      in
      if assignment.(other) <> -1 then begin
        (* both endpoints bound: just test *)
        let holds =
          let xv = assignment.(sx) and yv = assignment.(sy) in
          match b with
          | First_child -> Tree.first_child tree xv = yv
          | Next_sibling -> Tree.next_sibling tree xv = yv
          | Child -> Tree.parent tree yv = xv
        in
        if holds then propagate ix rest pendings cont
      end
      else begin
        match b, sx = ix with
        | First_child, true -> continue_with (Tree.first_child tree v)
        | First_child, false ->
          if Tree.is_first_sibling tree v then continue_with (Tree.parent tree v)
        | Next_sibling, true -> continue_with (Tree.next_sibling tree v)
        | Next_sibling, false -> continue_with (Tree.prev_sibling tree v)
        | Child, false -> continue_with (Tree.parent tree v)
        | Child, true ->
          (* branch over the children of v *)
          Tree.fold_children tree v
            (fun () c -> bind other c pendings (fun ps -> propagate ix rest ps cont))
            ()
      end
  in
  let head_ix = Hashtbl.find idx rule.head_var in
  let seed v =
    bind head_ix v [] (fun pendings ->
        accept ~head_node:assignment.(head_ix) ~pending:pendings)
  in
  (* if the head variable carries a label atom, only that label's
     occurrences can seed an embedding: O(occurrences) via the tree's
     cached label index instead of a full scan *)
  let rec first_lab = function
    | [] -> None
    | U (Lab a, x) :: _ when x = rule.head_var -> Some a
    | _ :: rest -> first_lab rest
  in
  match first_lab rule.body with
  | Some a -> Array.iter seed (Tree.occurrences tree a)
  | None ->
    for v = 0 to Tree.size tree - 1 do
      seed v
    done

(* ------------------------------------------------------------------ *)

let predicates program =
  let names = intensional program in
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i nm -> Hashtbl.add tbl nm i) names;
  (names, tbl)

let env_lookup env p =
  match List.assoc_opt p env with
  | Some s -> s
  | None -> raise (Unbound_predicate p)

let ground ?(env = []) program tree =
  (match check program with Ok () -> () | Error m -> invalid_arg ("Eval.ground: " ^ m));
  let n = Tree.size tree in
  let _, ptbl = predicates program in
  let is_intensional p = Hashtbl.mem ptbl p in
  let var_of p v = (Hashtbl.find ptbl p * n) + v in
  let f = Hornsat.create ~nvars:(Hashtbl.length ptbl * n) in
  Obs.Span.with_ "datalog:ground" (fun () ->
      List.iter
        (fun rule ->
          enumerate rule tree
            ~is_extensional:(fun p -> not (is_intensional p))
            ~test_env:(fun p v -> Nodeset.mem (env_lookup env p) v)
            ~accept:(fun ~head_node ~pending ->
              Obs.Counter.incr c_ground;
              ignore
                (Hornsat.add_rule f
                   ~head:(var_of rule.head head_node)
                   ~body:(List.map (fun (p, v) -> var_of p v) pending))))
        program.rules);
  (f, var_of)

let run ?env program tree =
  let f, var_of = ground ?env program tree in
  let model = Obs.Span.with_ "datalog:hornsat-solve" (fun () -> Hornsat.solve f) in
  let n = Tree.size tree in
  let out = Nodeset.create n in
  for v = 0 to n - 1 do
    if model.(var_of program.query v) then Nodeset.add out v
  done;
  out

let ground_size ?env program tree =
  let f, _ = ground ?env program tree in
  Hornsat.size_of_formula f

let run_naive ?(env = []) program tree =
  (match check program with Ok () -> () | Error m -> invalid_arg ("Eval.run_naive: " ^ m));
  let n = Tree.size tree in
  let _, ptbl = predicates program in
  let is_intensional p = Hashtbl.mem ptbl p in
  let current = Hashtbl.create 16 in
  Hashtbl.iter (fun nm _ -> Hashtbl.replace current nm (Nodeset.create n)) ptbl;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun rule ->
        enumerate rule tree
          ~is_extensional:(fun p -> not (is_intensional p))
          ~test_env:(fun p v -> Nodeset.mem (env_lookup env p) v)
          ~accept:(fun ~head_node ~pending ->
            let sat =
              List.for_all (fun (p, v) -> Nodeset.mem (Hashtbl.find current p) v) pending
            in
            if sat then begin
              let s = Hashtbl.find current rule.head in
              if not (Nodeset.mem s head_node) then begin
                Nodeset.add s head_node;
                changed := true
              end
            end))
      program.rules
  done;
  Hashtbl.find current program.query
