(** Evaluation of monadic datalog programs on trees (Theorem 3.2).

    The paper's evaluation pipeline: given a program [P] and a tree with
    domain [Dom], compute an equivalent ground (propositional) program in
    time O(|P| · |Dom|), then evaluate it with Minoux's linear-time
    Horn-SAT algorithm.  The grounding is linear because all binary
    relations of τ⁺ ([FirstChild], [NextSibling]) are partial bijections —
    fixing one variable of a tree-shaped rule fixes all others.  Rules
    using the convenience predicate [Child] still ground correctly but may
    produce more instances ([Child] is only backward-functional); apply
    {!Tmnf.of_program} first to restore guaranteed linearity.

    An [env] supplies externally-defined unary predicates (node sets) for
    names that appear in rule bodies but in no head — this is how query
    translations inject start/context sets. *)

type env = (string * Treekit.Nodeset.t) list

exception Unbound_predicate of string
(** A body predicate that is neither intensional nor in the environment. *)

val run : ?env:env -> Ast.program -> Treekit.Tree.t -> Treekit.Nodeset.t
(** Evaluate via grounding + Minoux: the set of nodes satisfying the query
    predicate. *)

val run_naive : ?env:env -> Ast.program -> Treekit.Tree.t -> Treekit.Nodeset.t
(** Reference implementation: iterate the immediate-consequence operator to
    fixpoint directly on the non-ground program.  Slower; used by tests to
    validate {!run}. *)

val ground :
  ?env:env -> Ast.program -> Treekit.Tree.t -> Hornsat.t * (string -> int -> int)
(** [ground p t] is the ground program of Theorem 3.2 as a Horn formula,
    together with the encoding of ground atoms: [(snd (ground p t)) pred v]
    is the Horn variable for the ground atom [pred(v)].
    @raise Unbound_predicate *)

val ground_size : ?env:env -> Ast.program -> Treekit.Tree.t -> int
(** Total size (atom occurrences) of the ground program — the quantity that
    Theorem 3.2 bounds by O(|P| · |Dom|); measured by the benchmarks. *)
