let has_ancestor_labeled l =
  let program =
    Printf.sprintf
      {|
        p0(X) :- lab(X, "%s").
        p0(X0) :- nextsibling(X0, X), p0(X).
        p(X0) :- firstchild(X0, X), p0(X).
        p0(X) :- p(X).
        ?- p.
      |}
      l
  in
  Parser.parse program

let example_33_formula () =
  let f = Hornsat.create ~nvars:6 in
  (* paper variable k is our k-1 *)
  let r1 = Hornsat.add_rule f ~head:0 ~body:[] in
  let r2 = Hornsat.add_rule f ~head:1 ~body:[] in
  let r3 = Hornsat.add_rule f ~head:2 ~body:[] in
  let r4 = Hornsat.add_rule f ~head:3 ~body:[ 0 ] in
  let r5 = Hornsat.add_rule f ~head:4 ~body:[ 2; 3 ] in
  let r6 = Hornsat.add_rule f ~head:5 ~body:[ 1; 4 ] in
  assert (r1 = 1 && r2 = 2 && r3 = 3 && r4 = 4 && r5 = 5 && r6 = 6);
  (f, Array.init 6 (fun i -> string_of_int (i + 1)))
