(** Monadic datalog over the tree signature τ⁺ (Section 3).

    The signature is
    [τ⁺ = ⟨Dom, Root, Leaf, (Lab_a), FirstChild, NextSibling, LastSibling⟩]
    (plus [FirstSibling], derivable, and [Child] as convenience — the paper
    notes monadic datalog over τ⁺ ∪ {Child} translates to TMNF over τ⁺,
    see {!Tmnf}).  All intensional predicates are unary; a program
    distinguishes one intensional predicate as the query predicate.

    Example 3.1 (nodes with an ancestor labeled L) in this AST's concrete
    syntax (see {!Parser}):

    {v
    p0(X) :- lab(X, "l").
    p0(X0) :- nextsibling(X0, X), p0(X).
    p(X0) :- firstchild(X0, X), p0(X).
    p0(X) :- p(X).
    ?- p.
    v} *)

type var = string
(** Rule variables ([x], [x0], …). *)

(** Extensional unary predicates of τ⁺, plus intensional predicates. *)
type unary =
  | Dom  (** true of every node *)
  | Root
  | Leaf
  | First_sibling
  | Last_sibling
  | Lab of string  (** [Lab_a(x)] — the node labeling relations *)
  | Pred of string  (** an intensional predicate (or an externally
                        supplied node set, see {!Eval.run}) *)

(** Extensional binary predicates. *)
type binary =
  | First_child
  | Next_sibling
  | Child
      (** convenience beyond τ⁺; eliminated by the TMNF translation *)

type atom =
  | U of unary * var
  | B of binary * var * var

type rule = { head : string; head_var : var; body : atom list }
(** [head(head_var) ← body].  Safety requires [head_var] to occur in
    [body]. *)

type program = { rules : rule list; query : string }

val atom_vars : atom -> var list

val rule_vars : rule -> var list
(** All distinct variables of the rule, head variable first. *)

val intensional : program -> string list
(** Names appearing in some rule head, without duplicates. *)

(** The shape of a rule's variable graph (vertices: variables; edges:
    binary atoms). *)
type shape =
  | Tree_shaped  (** connected and acyclic — the fragment the linear
                     grounding and the TMNF translation cover *)
  | Cyclic
  | Disconnected

val rule_shape : rule -> shape

val check : program -> (unit, string) result
(** Well-formedness: safety, nonempty rule set, query predicate
    intensional, every rule tree-shaped. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
