open Ast

let is_tmnf_rule r =
  match r.body with
  | [ U (_, x) ] -> x = r.head_var
  | [ U (_, x); U (_, y) ] -> x = r.head_var && y = r.head_var
  | [ U (p0, x0); B (b, y, z) ] | [ B (b, y, z); U (p0, x0) ] ->
    ignore p0;
    b <> Child && x0 <> r.head_var
    && ((y = x0 && z = r.head_var) || (y = r.head_var && z = x0))
  | _ -> false

let is_tmnf p = List.for_all is_tmnf_rule p.rules

(* ------------------------------------------------------------------ *)

type edge = { pred : binary; src : var; dst : var }
(* the body atom [pred(src, dst)] *)

let fresh_counter = ref 0

let fresh prefix =
  incr fresh_counter;
  Printf.sprintf "%s__%d" prefix !fresh_counter

let of_rule r =
  (match rule_shape r with
  | Tree_shaped -> ()
  | Cyclic | Disconnected ->
    invalid_arg (Format.asprintf "Tmnf.of_rule: rule not tree-shaped: %a" pp_rule r));
  let out = ref [] in
  let emit head head_var body = out := { head; head_var; body } :: !out in
  (* adjacency of the rule's variable tree *)
  let adj : (var, edge) Hashtbl.t = Hashtbl.create 8 in
  let unaries : (var, unary) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | B (pred, src, dst) ->
        let e = { pred; src; dst } in
        Hashtbl.add adj src e;
        Hashtbl.add adj dst e
      | U (u, x) -> Hashtbl.add unaries x u)
    r.body;
  (* Produce, for variable [y] approached from [coming] (the rule-tree
     parent edge, if any), the name of a fresh predicate q_y such that
     q_y(v) holds iff the subtree of the rule tree rooted at y matches with
     y ↦ v.  Rules are emitted along the way. *)
  let rec compile y ~via =
    let sub_edges =
      List.filter (fun e -> match via with Some e' -> e != e' | None -> true)
        (Hashtbl.find_all adj y)
    in
    (* one certifying unary predicate per conjunct at y *)
    let structural =
      List.map
        (fun e ->
          let z = if e.src = y then e.dst else e.src in
          let qz = compile z ~via:(Some e) in
          let s = fresh "s" in
          (match e.pred, e.src = y with
          | First_child, true | Next_sibling, true ->
            (* e = B(y, z): s(y) ← q_z(z), B(y, z) *)
            emit s y [ U (Pred qz, z); B (e.pred, y, z) ]
          | First_child, false | Next_sibling, false ->
            (* e = B(z, y): s(y) ← q_z(z), B(z, y) *)
            emit s y [ U (Pred qz, z); B (e.pred, z, y) ]
          | Child, true ->
            (* Child(y, z): z ranges over children of y.
               b(c) ⇔ c or a right sibling of c satisfies q_z;
               s(y) ← b(first child of y). *)
            let b = fresh "anychild" in
            let c = fresh "V" and c2 = fresh "V" in
            emit b c [ U (Pred qz, c) ];
            emit b c [ U (Pred b, c2); B (Next_sibling, c, c2) ];
            emit s y [ U (Pred b, c); B (First_child, y, c) ]
          | Child, false ->
            (* Child(z, y): the parent of y satisfies q_z.
               pp(w) ⇔ the parent of w satisfies q_z, propagated from the
               first child rightwards. *)
            let pp = fresh "parentok" in
            let w = fresh "V" and w2 = fresh "V" and zv = fresh "V" in
            emit pp w [ U (Pred qz, zv); B (First_child, zv, w) ];
            emit pp w2 [ U (Pred pp, w); B (Next_sibling, w, w2) ];
            emit s y [ U (Pred pp, y) ]);
          s)
        sub_edges
    in
    let local = Hashtbl.find_all unaries y in
    let conjuncts = local @ List.map (fun s -> Pred s) structural in
    let qy = fresh "q" in
    (match conjuncts with
    | [] -> emit qy y [ U (Dom, y) ]
    | [ c ] -> emit qy y [ U (c, y) ]
    | c0 :: rest ->
      (* chain of form-(3) rules: t₁ = c₀ ∧ c₁, t₂ = t₁ ∧ c₂, … *)
      let final =
        List.fold_left
          (fun acc c ->
            let t = fresh "and" in
            emit t y [ U (acc, y); U (c, y) ];
            Pred t)
          c0 rest
      in
      emit qy y [ U (final, y) ]);
    qy
  in
  let q_head = compile r.head_var ~via:None in
  emit r.head r.head_var [ U (Pred q_head, r.head_var) ];
  List.rev !out

let of_program p =
  let rules = List.concat_map of_rule p.rules in
  { rules; query = p.query }
