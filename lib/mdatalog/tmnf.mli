(** Tree-Marking Normal Form (Definition 3.4).

    A monadic datalog program over τ⁺ is in TMNF if every rule has one of
    the three forms

    {v
    (1) p(x) ← p₀(x).
    (2) p(x) ← p₀(x₀), B(x₀, x).
    (3) p(x) ← p₀(x), p₁(x).
    v}

    where [B] is [R] or [R⁻¹] for [R ∈ {FirstChild, NextSibling}].

    [of_program] implements the linear-time translation of Gottlob–Koch
    [31]: every tree-shaped monadic datalog rule over τ⁺ ∪ {Child} is split
    into TMNF rules by introducing one fresh predicate per rule-tree node,
    and [Child] atoms are eliminated with the sibling-propagation idiom of
    Example 3.1 ([Child(x,y) ⇔ FirstChild(x,c) ∧ NextSibling*(c,y)]),
    which costs O(1) fresh predicates per atom.  The output size is linear
    in the input size. *)

val is_tmnf_rule : Ast.rule -> bool
(** True iff the rule has one of the three TMNF shapes (and uses no
    [Child] atom). *)

val is_tmnf : Ast.program -> bool

val of_program : Ast.program -> Ast.program
(** Equivalent TMNF program (same query predicate, same answers on every
    tree — property-tested).
    @raise Invalid_argument if some rule is not tree-shaped. *)
