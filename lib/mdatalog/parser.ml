exception Syntax_error of string

type token =
  | NAME of string
  | VAR of string
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | TURNSTILE
  | QUERY
  | EOF

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let pos = ref 0 in
  let error fmt =
    Format.kasprintf (fun m ->
        raise (Syntax_error (Printf.sprintf "at offset %d: %s" !pos m)))
      fmt
  in
  let is_alpha = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false in
  while !pos < n do
    let c = input.[!pos] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '%' ->
      while !pos < n && input.[!pos] <> '\n' do
        incr pos
      done
    | '(' ->
      toks := LPAREN :: !toks;
      incr pos
    | ')' ->
      toks := RPAREN :: !toks;
      incr pos
    | ',' ->
      toks := COMMA :: !toks;
      incr pos
    | '.' ->
      toks := DOT :: !toks;
      incr pos
    | ':' ->
      if !pos + 1 < n && input.[!pos + 1] = '-' then begin
        toks := TURNSTILE :: !toks;
        pos := !pos + 2
      end
      else error "expected ':-'"
    | '?' ->
      if !pos + 1 < n && input.[!pos + 1] = '-' then begin
        toks := QUERY :: !toks;
        pos := !pos + 2
      end
      else error "expected '?-'"
    | '"' ->
      let start = !pos + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> '"' do
        incr j
      done;
      if !j >= n then error "unterminated string literal";
      toks := STRING (String.sub input start (!j - start)) :: !toks;
      pos := !j + 1
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let start = !pos in
      while !pos < n && is_alpha input.[!pos] do
        incr pos
      done;
      let word = String.sub input start (!pos - start) in
      let tok =
        match word.[0] with
        | 'A' .. 'Z' | '_' -> VAR word
        | _ -> NAME word
      in
      toks := tok :: !toks
    | _ -> error "unexpected character %C" c);
    ()
  done;
  List.rev (EOF :: !toks)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let next st =
  match st.toks with
  | [] -> EOF
  | t :: rest ->
    st.toks <- rest;
    t

let expect st tok what =
  let t = next st in
  if t <> tok then raise (Syntax_error ("expected " ^ what))

let unary_of_name name x : Ast.atom =
  match name with
  | "dom" -> U (Dom, x)
  | "root" -> U (Root, x)
  | "leaf" -> U (Leaf, x)
  | "firstsibling" -> U (First_sibling, x)
  | "lastsibling" -> U (Last_sibling, x)
  | "lab" -> raise (Syntax_error "lab/1 is not a predicate; use lab(X, \"a\")")
  | "firstchild" | "nextsibling" | "child" ->
    raise (Syntax_error (name ^ " is binary"))
  | p -> U (Pred p, x)

let parse_atom st : Ast.atom =
  let name =
    match next st with
    | NAME nm -> nm
    | _ -> raise (Syntax_error "expected a predicate name")
  in
  expect st LPAREN "'('";
  let first =
    match next st with
    | VAR x -> x
    | _ -> raise (Syntax_error "expected a variable")
  in
  match next st with
  | RPAREN -> unary_of_name name first
  | COMMA -> begin
    let atom : Ast.atom =
      match next st with
      | STRING lit ->
        if name <> "lab" then raise (Syntax_error "only lab/2 takes a string argument");
        U (Lab lit, first)
      | VAR y -> begin
        match name with
        | "firstchild" -> B (First_child, first, y)
        | "nextsibling" -> B (Next_sibling, first, y)
        | "child" -> B (Child, first, y)
        | "lab" -> raise (Syntax_error "lab/2 takes a string as second argument")
        | other -> raise (Syntax_error (other ^ " is not a binary predicate"))
      end
      | _ -> raise (Syntax_error "expected a variable or string literal")
    in
    expect st RPAREN "')'";
    atom
  end
  | _ -> raise (Syntax_error "expected ',' or ')'")

let parse_clause st : Ast.rule =
  let head_atom = parse_atom st in
  let head, head_var =
    match head_atom with
    | U (Pred p, x) -> (p, x)
    | _ -> raise (Syntax_error "rule head must be an intensional unary predicate")
  in
  match next st with
  | DOT -> { head; head_var; body = [ U (Ast.Dom, head_var) ] }
  | TURNSTILE ->
    let rec atoms acc =
      let a = parse_atom st in
      match next st with
      | COMMA -> atoms (a :: acc)
      | DOT -> List.rev (a :: acc)
      | _ -> raise (Syntax_error "expected ',' or '.'")
    in
    { head; head_var; body = atoms [] }
  | _ -> raise (Syntax_error "expected ':-' or '.'")

let parse input : Ast.program =
  let st = { toks = tokenize input } in
  let rec clauses acc =
    match peek st with
    | EOF -> raise (Syntax_error "missing query directive '?- pred.'")
    | QUERY ->
      ignore (next st);
      let q =
        match next st with
        | NAME nm -> nm
        | _ -> raise (Syntax_error "expected a predicate name after '?-'")
      in
      expect st DOT "'.'";
      (match peek st with
      | EOF -> { Ast.rules = List.rev acc; query = q }
      | _ -> raise (Syntax_error "trailing input after query directive"))
    | _ -> clauses (parse_clause st :: acc)
  in
  clauses []

let parse_rule input =
  let st = { toks = tokenize input } in
  let r = parse_clause st in
  match peek st with
  | EOF -> r
  | _ -> raise (Syntax_error "trailing input after clause")
