module Q = Cqtree.Query
module Nodeset = Treekit.Nodeset

type rule = { head : string; head_var : Q.var; body : Q.atom list }

type program = { rules : rule list; query : string }

let c_rounds = Obs.Counter.make "fixpoint_rounds"

(* ------------------------------------------------------------------ *)
(* parsing: statements separated by '.' (string literals respected),
   the last one being the ?- query directive.  Errors are positioned
   [Treekit.Parse_error.Error]s carrying the offending statement's
   offset into the input. *)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* (start offset, trimmed statement text) pairs *)
let statements input =
  let out = ref [] and buf = Buffer.create 64 in
  let in_string = ref false in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '"' then begin
        if Buffer.length buf = 0 then start := i;
        in_string := not !in_string;
        Buffer.add_char buf c
      end
      else if c = '.' && not !in_string then begin
        let s = String.trim (Buffer.contents buf) in
        if s <> "" then out := (!start, s) :: !out;
        Buffer.clear buf
      end
      else if Buffer.length buf = 0 && is_ws c then ()
      else begin
        if Buffer.length buf = 0 then start := i;
        Buffer.add_char buf c
      end)
    input;
  if String.trim (Buffer.contents buf) <> "" then
    Treekit.Parse_error.raise_at !start "missing final '.'";
  List.rev !out

let head_name pos stmt =
  match String.index_opt stmt '(' with
  | None -> Treekit.Parse_error.raise_at pos "expected 'name(Var) :- …'"
  | Some i -> String.trim (String.sub stmt 0 i)

let parse input =
  let stmts = statements input in
  let rec go acc = function
    | [] ->
      Treekit.Parse_error.raise_at (String.length input)
        "missing '?- pred.' directive"
    | [ (pos, last) ] ->
      if String.length last > 2 && String.sub last 0 2 = "?-" then
        { rules = List.rev acc;
          query = String.trim (String.sub last 2 (String.length last - 2)) }
      else Treekit.Parse_error.raise_at pos "last statement must be '?- pred.'"
    | (pos, stmt) :: rest ->
      let name = head_name pos stmt in
      let q =
        try Q.of_string (stmt ^ ".")
        with Failure m -> Treekit.Parse_error.raise_at pos "%s" m
      in
      (match q.Q.head with
      | [ v ] -> go ({ head = name; head_var = v; body = q.Q.atoms } :: acc) rest
      | _ -> Treekit.Parse_error.raise_at pos "rule heads must be unary")
  in
  go [] stmts

(* ------------------------------------------------------------------ *)

let intensional p =
  List.sort_uniq compare (List.map (fun r -> r.head) p.rules)

let rule_query r = { Q.head = [ r.head_var ]; atoms = r.body }

let check p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if p.rules = [] then err "program has no rules"
  else if not (List.mem p.query (intensional p)) then
    err "query predicate %s has no rule" p.query
  else
    let rec go = function
      | [] -> Ok ()
      | r :: rest -> (
        match Q.check (rule_query r) with
        | Error m -> err "rule for %s: %s" r.head m
        | Ok () ->
          if Cqtree.Join_tree.is_acyclic (rule_query r) then go rest
          else err "rule for %s has a cyclic body" r.head)
    in
    go p.rules

let fixpoint ~eval_rule ?(env = []) p tree =
  (match check p with
  | Ok () -> ()
  | Error m -> invalid_arg ("Axis_datalog: " ^ m));
  let n = Treekit.Tree.size tree in
  let sets = Hashtbl.create 8 in
  List.iter (fun nm -> Hashtbl.replace sets nm (Nodeset.create n)) (intensional p);
  let current_env () =
    Hashtbl.fold (fun nm s acc -> (nm, s) :: acc) sets [] @ env
  in
  Obs.Span.with_ "datalog:fixpoint" (fun () ->
      let changed = ref true in
      while !changed do
        changed := false;
        Obs.Counter.incr c_rounds;
        List.iter
          (fun r ->
            let result = eval_rule (rule_query r) tree (current_env ()) in
            let target = Hashtbl.find sets r.head in
            let before = Nodeset.cardinal target in
            Nodeset.union_into target result;
            if Nodeset.cardinal target <> before then changed := true)
          p.rules
      done);
  Hashtbl.find sets p.query

let run ?env p tree =
  fixpoint ?env p tree ~eval_rule:(fun q tree env -> Cqtree.Yannakakis.unary ~env q tree)

let run_naive ?env p tree =
  fixpoint ?env p tree ~eval_rule:(fun q tree env -> Cqtree.Naive.unary ~env q tree)

(* ------------------------------------------------------------------ *)

let of_tau_program (tau : Ast.program) =
  let conv_unary x : Ast.unary -> Q.atom = function
    | Ast.Dom -> Q.U (Q.True, x)
    | Ast.Root -> Q.U (Q.Root, x)
    | Ast.Leaf -> Q.U (Q.Leaf, x)
    | Ast.First_sibling -> Q.U (Q.First_sibling, x)
    | Ast.Last_sibling -> Q.U (Q.Last_sibling, x)
    | Ast.Lab a -> Q.U (Q.Lab a, x)
    | Ast.Pred nm -> Q.U (Q.Named nm, x)
  in
  let conv_atom : Ast.atom -> Q.atom list = function
    | Ast.U (u, x) -> [ conv_unary x u ]
    | Ast.B (Ast.First_child, x, y) ->
      [ Q.A (Treekit.Axis.Child, x, y); Q.U (Q.First_sibling, y) ]
    | Ast.B (Ast.Next_sibling, x, y) -> [ Q.A (Treekit.Axis.Next_sibling, x, y) ]
    | Ast.B (Ast.Child, x, y) -> [ Q.A (Treekit.Axis.Child, x, y) ]
  in
  {
    rules =
      List.map
        (fun (r : Ast.rule) ->
          { head = r.head; head_var = r.head_var; body = List.concat_map conv_atom r.body })
        tau.rules;
    query = tau.query;
  }
