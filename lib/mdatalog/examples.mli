(** Worked programs from the paper. *)

val has_ancestor_labeled : string -> Ast.program
(** Example 3.1: the monadic datalog program over τ⁺ computing the nodes
    that have an ancestor labeled [l]:

    {v
    P₀(x)  ← Label_l(x).
    P₀(x₀) ← NextSibling(x₀, x), P₀(x).
    P(x₀)  ← FirstChild(x₀, x), P₀(x).
    P₀(x)  ← P(x).
    v}

    Careful reading: [P(x₀)] holds when some node in the subtree rooted at
    a child of [x₀] has label [l] — i.e. [x₀] is a proper ancestor of an
    [l]-labeled node.  The query predicate is [P].

    Note the paper states the program computes "nodes that have an ancestor
    labeled L"; the program as printed actually marks the {e ancestors of
    L-labeled nodes} (the sensible reading of its rules), and that is what
    we reproduce and test. *)

val example_33_formula : unit -> Hornsat.t * string array
(** Example 3.3: the six-rule ground Horn program

    {v
    r₁: 1 ←        r₂: 2 ←        r₃: 3 ←
    r₄: 4 ← 1      r₅: 5 ← 3, 4   r₆: 6 ← 2, 5
    v}

    (variables renamed to 0-based internally; the returned array maps our
    variable ids to the paper's names "1" … "6"). *)
