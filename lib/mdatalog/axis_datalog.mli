(** Monadic datalog over arbitrary axis relations — the [mon.datalog\[X\]]
    node of Figure 7 and the Section 7 remark: "in the case that all
    individual rules are acyclic (conjunctive queries), monadic datalog
    over arbitrary axes can be evaluated in linear time".

    A program is a set of rules [p(x) ← body] where the body is a
    conjunctive query over the axes (any of the fifteen), label tests, τ⁺
    unary predicates, and intensional unary predicates.  Every rule body
    must be acyclic as a conjunctive query; evaluation is then a
    semi-naive fixpoint where each rule application is one Yannakakis
    pass with the current intensional sets supplied as external unary
    predicates — O(‖A‖·|rule|) per application, and every application
    adds at least one node to some predicate, so O(‖A‖·|P|·|preds·n|)
    overall with the per-pass linearity the paper's remark is about.

    Example 3.1 in this language is a single non-recursive rule
    [p(x) ← Child⁺(x, y), Lab_l(y)] — recursion is only needed when the
    signature lacks transitive axes. *)

type rule = {
  head : string;
  head_var : Cqtree.Query.var;
  body : Cqtree.Query.atom list;
      (** may use [Named p] for intensional predicates *)
}

type program = { rules : rule list; query : string }

val parse : string -> program
(** Same rule syntax as {!Cqtree.Query.of_string} with named heads and the
    final [?- pred.] directive of {!Parser}:

    {v
    reach(X) :- root(X).
    reach(Y) :- reach(X), child(X, Y), lab(Y, "a").
    ?- reach.
    v}
    @raise Failure *)

val check : program -> (unit, string) result
(** Safety, query predicate defined, and every rule body acyclic. *)

val run : ?env:Cqtree.Query.env -> program -> Treekit.Tree.t -> Treekit.Nodeset.t
(** Fixpoint evaluation; the answer of the query predicate.
    @raise Invalid_argument on ill-formed programs
    @raise Failure on cyclic rule bodies *)

val run_naive : ?env:Cqtree.Query.env -> program -> Treekit.Tree.t -> Treekit.Nodeset.t
(** Reference: naive fixpoint with backtracking rule bodies; for tests. *)

val of_tau_program : Ast.program -> program
(** Embed a τ⁺ monadic datalog program (τ⁺ binary relations become the
    corresponding axes: [FirstChild(x,y) ↦ Child(x,y) ∧ FirstSibling(y)],
    [NextSibling ↦ Next_sibling], [Child ↦ Child]).  Used by tests to
    cross-check the two engines. *)
