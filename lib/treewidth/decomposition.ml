module ISet = Set.Make (Int)
module Tree = Treekit.Tree

type t = { bags : int list array; parent : int array }

let width d =
  Array.fold_left (fun w bag -> max w (List.length bag - 1)) (-1) d.bags

let bag_count d = Array.length d.bags

let validate g d =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let nbags = Array.length d.bags in
  let n = Graph.vertex_count g in
  let bag_sets = Array.map ISet.of_list d.bags in
  let result = ref (Ok ()) in
  let fail e = if !result = Ok () then result := e in
  if Array.length d.parent <> nbags then fail (err "parent array length mismatch")
  else begin
    (* the parent pointers must form a rooted forest with exactly one root
       (or zero bags) *)
    Array.iteri
      (fun b p ->
        if p < -1 || p >= nbags || p = b then fail (err "bag %d: bad parent %d" b p))
      d.parent;
    (* acyclicity: parents must be decreasing along some topological order;
       walk up with a step bound *)
    Array.iteri
      (fun b _ ->
        let steps = ref 0 and cur = ref b in
        while !cur <> -1 && !steps <= nbags do
          incr steps;
          cur := d.parent.(!cur)
        done;
        if !steps > nbags then fail (err "parent pointers contain a cycle"))
      d.parent;
    (* condition 1: vertex coverage *)
    let covered = Array.make n false in
    Array.iter (List.iter (fun v -> if v >= 0 && v < n then covered.(v) <- true)) d.bags;
    for v = 0 to n - 1 do
      if not covered.(v) then fail (err "vertex %d in no bag" v)
    done;
    (* condition 2: edge coverage *)
    List.iter
      (fun (u, v) ->
        let ok =
          Array.exists (fun s -> ISet.mem u s && ISet.mem v s) bag_sets
        in
        if not ok then fail (err "edge (%d,%d) in no bag" u v))
      (Graph.edges g);
    (* condition 3: connectedness of occurrences *)
    for v = 0 to n - 1 do
      let roots = ref 0 in
      Array.iteri
        (fun b s ->
          if ISet.mem v s then begin
            let p = d.parent.(b) in
            if p = -1 || not (ISet.mem v bag_sets.(p)) then incr roots
          end)
        bag_sets;
      if !roots > 1 then fail (err "occurrences of vertex %d are disconnected" v)
    done
  end;
  !result

let of_data_tree tree =
  let n = Tree.size tree in
  (* bag b describes tree node b *)
  let bags =
    Array.init n (fun v ->
        if v = 0 then [ 0 ]
        else begin
          let p = Tree.parent tree v and ps = Tree.prev_sibling tree v in
          if ps = -1 then List.sort compare [ v; p ] else List.sort compare [ v; p; ps ]
        end)
  in
  let parent =
    Array.init n (fun v ->
        if v = 0 then -1
        else
          let ps = Tree.prev_sibling tree v in
          if ps <> -1 then ps else Tree.parent tree v)
  in
  { bags; parent }

let of_elimination_order g order =
  let n = Graph.vertex_count g in
  if List.sort compare order <> List.init n (fun i -> i) then
    invalid_arg "Decomposition.of_elimination_order: not a permutation";
  let adj = Array.make n ISet.empty in
  List.iter (fun (u, v) ->
      adj.(u) <- ISet.add v adj.(u);
      adj.(v) <- ISet.add u adj.(v))
    (Graph.edges g);
  let position = Array.make n 0 in
  List.iteri (fun i v -> position.(v) <- i) order;
  let eliminated = Array.make n false in
  let bags = Array.make n [] in
  let bag_of_vertex = Array.make n 0 in
  List.iteri (fun i v -> bag_of_vertex.(v) <- i) order;
  let parent = Array.make n (-1) in
  List.iteri
    (fun i v ->
      let nbrs = ISet.filter (fun w -> not eliminated.(w)) adj.(v) in
      bags.(i) <- List.sort compare (v :: ISet.elements nbrs);
      (* fill: neighbours become a clique *)
      ISet.iter
        (fun a ->
          ISet.iter
            (fun b -> if a <> b then adj.(a) <- ISet.add b adj.(a))
            nbrs)
        nbrs;
      eliminated.(v) <- true;
      (* attach to the bag of the next-eliminated neighbour *)
      (match
         ISet.fold
           (fun w best ->
             match best with
             | None -> Some w
             | Some b -> if position.(w) < position.(b) then Some w else best)
           nbrs None
       with
      | Some w -> parent.(i) <- bag_of_vertex.(w)
      | None -> ());
      ())
    order;
  { bags; parent }

let greedy score g =
  let n = Graph.vertex_count g in
  let adj = Array.make n ISet.empty in
  List.iter (fun (u, v) ->
      adj.(u) <- ISet.add v adj.(u);
      adj.(v) <- ISet.add u adj.(v))
    (Graph.edges g);
  let alive = Array.make n true in
  let order = ref [] in
  for _ = 1 to n do
    let best = ref (-1) and best_score = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let s = score adj alive v in
        if s < !best_score then begin
          best := v;
          best_score := s
        end
      end
    done;
    let v = !best in
    let nbrs = ISet.filter (fun w -> alive.(w)) adj.(v) in
    ISet.iter
      (fun a -> ISet.iter (fun b -> if a <> b then adj.(a) <- ISet.add b adj.(a)) nbrs)
      nbrs;
    alive.(v) <- false;
    order := v :: !order
  done;
  List.rev !order

let live_degree adj alive v = ISet.cardinal (ISet.filter (fun w -> alive.(w)) adj.(v))

let min_degree_heuristic g =
  of_elimination_order g (greedy live_degree g)

let min_fill_heuristic g =
  let fill adj alive v =
    let nbrs = ISet.filter (fun w -> alive.(w)) adj.(v) in
    let missing = ref 0 in
    ISet.iter
      (fun a ->
        ISet.iter (fun b -> if a < b && not (ISet.mem b adj.(a)) then incr missing)
        nbrs)
      nbrs;
    !missing
  in
  of_elimination_order g (greedy fill g)

let exact_treewidth g =
  let n = Graph.vertex_count g in
  if n > 24 then invalid_arg "Decomposition.exact_treewidth: graph too large";
  if n = 0 then -1
  else begin
    let adj = Array.make n 0 in
    List.iter
      (fun (u, v) ->
        adj.(u) <- adj.(u) lor (1 lsl v);
        adj.(v) <- adj.(v) lor (1 lsl u))
      (Graph.edges g);
    (* q s v = number of vertices outside s∪{v} reachable from v through s *)
    let q s v =
      let visited = ref (1 lsl v) in
      let frontier = ref (1 lsl v) in
      let reached_outside = ref 0 in
      while !frontier <> 0 do
        let next = ref 0 in
        for u = 0 to n - 1 do
          if !frontier land (1 lsl u) <> 0 then begin
            let fresh = adj.(u) land lnot !visited in
            visited := !visited lor fresh;
            reached_outside := !reached_outside lor (fresh land lnot s);
            next := !next lor (fresh land s)
          end
        done;
        frontier := !next
      done;
      let count = ref 0 in
      for u = 0 to n - 1 do
        if !reached_outside land (1 lsl u) <> 0 && u <> v then incr count
      done;
      !count
    in
    let memo = Hashtbl.create 1024 in
    let rec tw s =
      if s = 0 then min_int
      else
        match Hashtbl.find_opt memo s with
        | Some r -> r
        | None ->
          let best = ref max_int in
          for v = 0 to n - 1 do
            if s land (1 lsl v) <> 0 then begin
              let s' = s land lnot (1 lsl v) in
              let cost = max (tw s') (q s' v) in
              if cost < !best then best := cost
            end
          done;
          Hashtbl.add memo s !best;
          !best
    in
    tw ((1 lsl n) - 1)
  end

let pp fmt d =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun b bag ->
      Format.fprintf fmt "bag %d (parent %d): {%s}@," b d.parent.(b)
        (String.concat ", " (List.map string_of_int bag)))
    d.bags;
  Format.fprintf fmt "@]"
