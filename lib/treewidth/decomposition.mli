(** Tree decompositions (Section 4).

    A tree decomposition of a graph [G = (V, E)] is a rooted tree of bags
    [χ : bags → 2^V] such that (i) every vertex occurs in some bag,
    (ii) every edge is contained in some bag, and (iii) for each vertex the
    set of bags containing it induces a connected subtree.  Its width is
    [max |χ(b)| - 1]; the tree-width of [G] is the minimum width over all
    its decompositions. *)

type t = {
  bags : int list array;  (** [bags.(b)] is the sorted content χ(b) *)
  parent : int array;  (** decomposition-tree parent of each bag; root = -1 *)
}

val width : t -> int
(** [max |bag| - 1]; the width of the empty decomposition is [-1]. *)

val bag_count : t -> int

val validate : Graph.t -> t -> (unit, string) result
(** Check the three decomposition conditions against the graph. *)

val of_data_tree : Treekit.Tree.t -> t
(** Figure 4's construction: a width-≤2 decomposition of the
    (Child, NextSibling)-structure of a data tree.  The bag of a non-root
    node [v] is [{v, parent v}] if [v] is a first child and
    [{v, parent v, prev_sibling v}] otherwise, attached under the bag of
    the previous sibling (if any) or of the parent. *)

val of_elimination_order : Graph.t -> int list -> t
(** The decomposition induced by an elimination ordering: eliminating [v]
    creates the bag [{v} ∪ N(v)] in the current (filled-in) graph, then
    removes [v] after turning its neighbourhood into a clique.  Width =
    maximum bag size - 1. *)

val min_degree_heuristic : Graph.t -> t
(** Greedy upper bound: eliminate a minimum-degree vertex first. *)

val min_fill_heuristic : Graph.t -> t
(** Greedy upper bound: eliminate a vertex adding fewest fill edges. *)

val exact_treewidth : Graph.t -> int
(** Exact tree-width by the Held–Karp-style dynamic program over vertex
    subsets (O(2ⁿ·n²)); intended for graphs with at most ~20 vertices.
    @raise Invalid_argument if the graph has more than 24 vertices. *)

val pp : Format.formatter -> t -> unit
