module ISet = Set.Make (Int)

type t = { n : int; mutable adj : ISet.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n ISet.empty }

let vertex_count g = g.n

let check g v = if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  if u <> v then begin
    g.adj.(u) <- ISet.add v g.adj.(u);
    g.adj.(v) <- ISet.add u g.adj.(v)
  end

let mem_edge g u v =
  check g u;
  check g v;
  ISet.mem v g.adj.(u)

let neighbors g v =
  check g v;
  ISet.elements g.adj.(v)

let degree g v =
  check g v;
  ISet.cardinal g.adj.(v)

let edges g =
  let out = ref [] in
  for u = g.n - 1 downto 0 do
    ISet.iter (fun v -> if u < v then out := (u, v) :: !out) g.adj.(u)
  done;
  !out

let edge_count g = List.length (edges g)

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { n = g.n; adj = Array.map (fun s -> s) g.adj }

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let stack = ref [ 0 ] in
    let count = ref 0 in
    seen.(0) <- true;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        incr count;
        ISet.iter
          (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              stack := w :: !stack
            end)
          g.adj.(v)
    done;
    !count = g.n
  end

let is_acyclic g =
  (* a forest has exactly n - (number of components) edges *)
  let seen = Array.make g.n false in
  let components = ref 0 in
  for s = 0 to g.n - 1 do
    if not seen.(s) then begin
      incr components;
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
          stack := rest;
          ISet.iter
            (fun w ->
              if not seen.(w) then begin
                seen.(w) <- true;
                stack := w :: !stack
              end)
            g.adj.(v)
      done
    end
  done;
  edge_count g = g.n - !components

let of_tree_structure t =
  let module Tree = Treekit.Tree in
  let n = Tree.size t in
  let g = create n in
  for v = 1 to n - 1 do
    add_edge g (Tree.parent t v) v;
    let s = Tree.next_sibling t v in
    if s <> -1 then add_edge g v s
  done;
  (* the root's next sibling never exists; node 0's children edges were
     added from the children's side *)
  g

let pp fmt g =
  Format.fprintf fmt "graph(%d vertices): " g.n;
  List.iter (fun (u, v) -> Format.fprintf fmt "(%d,%d) " u v) (edges g)
