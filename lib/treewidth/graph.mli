(** Simple undirected graphs over vertices [0 … n-1] (Section 4).

    Used for two purposes: the query graphs of conjunctive queries (whose
    tree-width controls evaluation complexity, Theorem 4.1) and the
    (Child, NextSibling)-structure of a data tree (which has tree-width 2,
    Figure 4). *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val vertex_count : t -> int

val add_edge : t -> int -> int -> unit
(** Add an undirected edge (self-loops are ignored; duplicate edges are
    no-ops). *)

val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Sorted list of neighbours. *)

val degree : t -> int -> int

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], sorted. *)

val edge_count : t -> int

val of_edges : int -> (int * int) list -> t

val copy : t -> t

val is_connected : t -> bool

val is_acyclic : t -> bool
(** True iff the graph is a forest. *)

val of_tree_structure : Treekit.Tree.t -> t
(** The (Child, NextSibling)-structure of a data tree as an undirected
    graph: vertices are the tree nodes, edges are the [Child] and
    [NextSibling] pairs (Figure 4(a)). *)

val pp : Format.formatter -> t -> unit
