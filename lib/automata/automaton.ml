module Tree = Treekit.Tree
module Event = Treekit.Event
module Nodeset = Treekit.Nodeset

type t = {
  name : string;
  states : int;
  monoid_size : int;
  one : int;
  mul : int -> int -> int;
  embed : int -> int;
  up : string -> int -> int;
  accept : int -> bool;
}

let c_transitions = Obs.Counter.make "automaton_transitions"

let state_at a tree =
  let n = Tree.size tree in
  let state = Array.make n 0 in
  (* children have larger pre-order ranks, so a downward sweep sees every
     child before its parent *)
  for v = n - 1 downto 0 do
    let m =
      Tree.fold_children tree v (fun acc c -> a.mul acc (a.embed state.(c))) a.one
    in
    state.(v) <- a.up (Tree.label tree v) m;
    Obs.Counter.incr c_transitions
  done;
  state

let run a tree = a.accept (state_at a tree).(0)

let run_events_stats a events =
  let stack = ref [] in
  let depth = ref 0 and peak = ref 0 in
  let result = ref None in
  Seq.iter
    (fun ev ->
      match ev with
      | Event.Open _ ->
        stack := ref a.one :: !stack;
        incr depth;
        if !depth > !peak then peak := !depth
      | Event.Close { label; _ } -> (
        match !stack with
        | [] -> invalid_arg "Automaton.run_events: unbalanced stream"
        | acc :: rest ->
          let s = a.up label !acc in
          Obs.Counter.incr c_transitions;
          decr depth;
          stack := rest;
          (match rest with
          | [] -> result := Some (a.accept s)
          | parent :: _ -> parent := a.mul !parent (a.embed s))))
    events;
  match !result with
  | Some b when !stack = [] -> (b, !peak)
  | _ -> invalid_arg "Automaton.run_events: unbalanced stream"

let run_events a events = fst (run_events_stats a events)

(* Reusable push-based stepper: the standing-query index advances many
   registered automata through ONE shared SAX pass, so the run state must
   be a value it can hold per subscription and reset per document —
   [run_events]'s Seq-pull shape cannot interleave like that. *)
type stepper = {
  auto : t;
  mutable sstack : int list;  (** monoid accumulators, innermost first *)
  mutable outcome : bool option;
}

let stepper auto = { auto; sstack = []; outcome = None }

let reset_stepper s =
  s.sstack <- [];
  s.outcome <- None

let step s ev =
  let a = s.auto in
  match ev with
  | Event.Open _ -> s.sstack <- a.one :: s.sstack
  | Event.Close { label; _ } -> (
    match s.sstack with
    | [] -> invalid_arg "Automaton.step: unbalanced stream"
    | acc :: rest ->
      let st = a.up label acc in
      Obs.Counter.incr c_transitions;
      (match rest with
      | [] ->
        s.outcome <- Some (a.accept st);
        s.sstack <- []
      | parent :: rest' -> s.sstack <- a.mul parent (a.embed st) :: rest'))

let accepted s = if s.sstack = [] then s.outcome else None

let check_monoid a ~labels =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let m = a.monoid_size in
  let result = ref (Ok ()) in
  let fail e = if !result = Ok () then result := e in
  if a.one < 0 || a.one >= m then fail (err "one out of range");
  for x = 0 to m - 1 do
    let xy1 = a.mul x a.one and x1y = a.mul a.one x in
    if xy1 <> x || x1y <> x then fail (err "one is not neutral at %d" x);
    for y = 0 to m - 1 do
      let p = a.mul x y in
      if p < 0 || p >= m then fail (err "mul out of range at (%d,%d)" x y);
      for z = 0 to m - 1 do
        if a.mul (a.mul x y) z <> a.mul x (a.mul y z) then
          fail (err "mul not associative at (%d,%d,%d)" x y z)
      done
    done
  done;
  for s = 0 to a.states - 1 do
    let e = a.embed s in
    if e < 0 || e >= m then fail (err "embed out of range at state %d" s)
  done;
  List.iter
    (fun l ->
      for x = 0 to m - 1 do
        let s = a.up l x in
        if s < 0 || s >= a.states then fail (err "up out of range at (%s,%d)" l x)
      done)
    labels;
  !result

(* ------------------------------------------------------------------ *)
(* combinators *)

let product ?name f a b =
  let pack sa sb = (sa * b.states) + sb in
  let mpack ma mb = (ma * b.monoid_size) + mb in
  {
    name =
      (match name with
      | Some n -> n
      | None -> Printf.sprintf "(%s x %s)" a.name b.name);
    states = a.states * b.states;
    monoid_size = a.monoid_size * b.monoid_size;
    one = mpack a.one b.one;
    mul =
      (fun x y ->
        mpack
          (a.mul (x / b.monoid_size) (y / b.monoid_size))
          (b.mul (x mod b.monoid_size) (y mod b.monoid_size)));
    embed = (fun s -> mpack (a.embed (s / b.states)) (b.embed (s mod b.states)));
    up =
      (fun l m ->
        pack (a.up l (m / b.monoid_size)) (b.up l (m mod b.monoid_size)));
    accept = (fun s -> f (a.accept (s / b.states)) (b.accept (s mod b.states)));
  }

let complement a =
  { a with name = "not " ^ a.name; accept = (fun s -> not (a.accept s)) }

let conj a b = product ( && ) a b
let disj a b = product ( || ) a b

(* ------------------------------------------------------------------ *)
(* example automata *)

let exists_label l =
  {
    name = Printf.sprintf "exists-%s" l;
    states = 2;
    monoid_size = 2;
    one = 0;
    mul = ( lor );
    embed = Fun.id;
    up = (fun lbl m -> if lbl = l then 1 else m);
    accept = (fun s -> s = 1);
  }

let root_label l =
  {
    name = Printf.sprintf "root-%s" l;
    states = 2;
    monoid_size = 1;
    one = 0;
    mul = (fun _ _ -> 0);
    embed = (fun _ -> 0);
    up = (fun lbl _ -> if lbl = l then 1 else 0);
    accept = (fun s -> s = 1);
  }

let all_leaves_labeled l =
  (* monoid: 0 = empty forest, 1 = all leaves good, 2 = some leaf bad;
     tree states: 1 = all leaves in the subtree labeled l, 0 = not *)
  {
    name = Printf.sprintf "all-leaves-%s" l;
    states = 2;
    monoid_size = 3;
    one = 0;
    mul =
      (fun x y ->
        if x = 2 || y = 2 then 2 else if x = 0 then y else if y = 0 then x else 1);
    embed = (fun s -> if s = 1 then 1 else 2);
    up =
      (fun lbl m ->
        if m = 0 then if lbl = l then 1 else 0 (* a leaf *)
        else if m = 1 then 1
        else 0);
    accept = (fun s -> s = 1);
  }

let count_label_mod l ~modulus ~residue =
  if modulus <= 0 then invalid_arg "Automaton.count_label_mod";
  {
    name = Printf.sprintf "count-%s-mod-%d" l modulus;
    states = modulus;
    monoid_size = modulus;
    one = 0;
    mul = (fun x y -> (x + y) mod modulus);
    embed = Fun.id;
    up = (fun lbl m -> (m + if lbl = l then 1 else 0) mod modulus);
    accept = (fun s -> s = residue mod modulus);
  }

let every_a_has_b_descendant a b =
  (* tree state bits: 1 = subtree contains b, 2 = subtree contains a bad a
     (an a-node without a proper b descendant); monoid = bitwise or *)
  {
    name = Printf.sprintf "every-%s-has-%s-descendant" a b;
    states = 4;
    monoid_size = 4;
    one = 0;
    mul = ( lor );
    embed = Fun.id;
    up =
      (fun lbl m ->
        let has_b_below = m land 1 = 1 in
        let bad_below = m land 2 = 2 in
        let bad = bad_below || (lbl = a && not has_b_below) in
        let has_b = has_b_below || lbl = b in
        (if has_b then 1 else 0) lor if bad then 2 else 0);
    accept = (fun s -> s land 2 = 0);
  }

let adjacent_children a b =
  (* tree state: class (0 = a, 1 = b, 2 = other) + 3 * found.
     monoid: 0 = empty; otherwise 1 + ((first*3 + last)*2 + found) where
     first/last are the classes of the forest's end trees and found records
     an adjacent (a,b) pair or a nested match. *)
  let cls lbl = if lbl = a then 0 else if lbl = b then 1 else 2 in
  let elem f l d = 1 + ((((f * 3) + l) * 2) + d) in
  let decode x =
    let x = x - 1 in
    let d = x mod 2 and fl = x / 2 in
    (fl / 3, fl mod 3, d)
  in
  {
    name = Printf.sprintf "adjacent-%s-%s-children" a b;
    states = 6;
    monoid_size = 19;
    one = 0;
    mul =
      (fun x y ->
        if x = 0 then y
        else if y = 0 then x
        else begin
          let f1, l1, d1 = decode x and f2, l2, d2 = decode y in
          let found =
            if d1 = 1 || d2 = 1 || (l1 = 0 && f2 = 1) then 1 else 0
          in
          elem f1 l2 found
        end);
    embed =
      (fun s ->
        let c = s mod 3 and d = s / 3 in
        elem c c d);
    up =
      (fun lbl m ->
        let found = if m = 0 then 0 else (let _, _, d = decode m in d) in
        cls lbl + (3 * found));
    accept = (fun s -> s >= 3);
  }

(* ------------------------------------------------------------------ *)
(* two-pass unary queries *)

type 'ctx context = {
  initial : 'ctx;
  down : 'ctx -> string -> int -> int -> 'ctx;
}

let select a ctx ~pred tree =
  let n = Tree.size tree in
  let state = state_at a tree in
  (* per-node products of the embeds of left and right sibling lists *)
  let left = Array.make n a.one and right = Array.make n a.one in
  for v = 0 to n - 1 do
    if Tree.first_child tree v <> -1 then begin
      let acc = ref a.one in
      Tree.iter_children tree v (fun c ->
          left.(c) <- !acc;
          acc := a.mul !acc (a.embed state.(c)));
      let racc = ref a.one in
      let c = ref (Tree.last_child tree v) in
      while !c <> -1 do
        right.(!c) <- !racc;
        racc := a.mul (a.embed state.(!c)) !racc;
        c := Tree.prev_sibling tree !c
      done
    end
  done;
  let contexts = Array.make n ctx.initial in
  for v = 1 to n - 1 do
    let p = Tree.parent tree v in
    contexts.(v) <- ctx.down contexts.(p) (Tree.label tree p) left.(v) right.(v)
  done;
  let out = Nodeset.create n in
  for v = 0 to n - 1 do
    if pred contexts.(v) state.(v) then Nodeset.add out v
  done;
  out

let has_ancestor_labeled l tree =
  (* the automaton's states are irrelevant here; the context carries "some
     proper ancestor is labeled l" *)
  let trivial =
    {
      name = "trivial";
      states = 1;
      monoid_size = 1;
      one = 0;
      mul = (fun _ _ -> 0);
      embed = (fun _ -> 0);
      up = (fun _ _ -> 0);
      accept = (fun _ -> true);
    }
  in
  let ctx = { initial = false; down = (fun c plbl _ _ -> c || plbl = l) } in
  select trivial ctx ~pred:(fun c _ -> c) tree
