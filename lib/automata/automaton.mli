(** Deterministic automata on unranked trees — the MSO technique
    (Sections 3, 4 and 7 of the paper).

    "Boolean MSO queries on trees correspond to tree automata and have
    linear-time data complexity" (Thatcher–Wright/Doner, quoted in
    Section 4); the TMNF evaluation technique of [29, 51] and the
    streaming bound of [60, 70] (an MSO-definable tree language is
    recognisable by a streaming algorithm with memory O(depth)) are both
    automata-theoretic.  This module implements the {e stepwise} flavour
    of deterministic unranked tree automata, equivalent to bottom-up
    automata on the FirstChild/NextSibling encoding:

    - every node gets a {e tree state} in [0 .. states-1], computed by
      [up label m] from its label and the product [m] of its children's
      images in a {e horizontal monoid} ([one]/[mul]/[embed]);
    - the automaton accepts iff the root's tree state satisfies [accept].

    Because the horizontal structure is a monoid (not just a left fold),
    prefix and suffix products of sibling lists are well-defined, which
    gives both the O(depth)-memory streaming run ({!run_events}) and the
    two-pass unary query evaluation ({!select}) — the technique behind
    evaluating TMNF in time O(f(|Q|) + ‖A‖). *)

type t = {
  name : string;
  states : int;  (** number of tree states *)
  monoid_size : int;  (** number of forest-monoid elements *)
  one : int;  (** the neutral element (the empty forest) *)
  mul : int -> int -> int;  (** monoid operation; must be associative *)
  embed : int -> int;  (** tree state → monoid element *)
  up : string -> int -> int;  (** label, children product → tree state *)
  accept : int -> bool;
}

val run : t -> Treekit.Tree.t -> bool
(** Bottom-up evaluation in time O(n). *)

val state_at : t -> Treekit.Tree.t -> int array
(** The tree state of every node (index = pre-order rank). *)

val run_events : t -> Treekit.Event.t Seq.t -> bool
(** Streaming run over a SAX event stream: one monoid accumulator per open
    element — memory O(depth), the tight bound of Section 7.
    @raise Invalid_argument on an unbalanced stream. *)

val run_events_stats : t -> Treekit.Event.t Seq.t -> bool * int
(** Like {!run_events} but also reports the peak stack depth. *)

(** {1 Push-based streaming run}

    {!run_events} pulls from a [Seq.t], so two automata cannot share one
    traversal.  A {!stepper} inverts control: the caller pushes each event
    to any number of steppers, which is how the standing-query index
    advances every registered automaton in a single SAX pass.  Memory per
    stepper is the same O(depth) accumulator stack. *)

type stepper
(** Reusable run state for one automaton. *)

val stepper : t -> stepper

val reset_stepper : stepper -> unit
(** Forget the current document; ready for a fresh stream. *)

val step : stepper -> Treekit.Event.t -> unit
(** @raise Invalid_argument on a [Close] with no matching [Open]. *)

val accepted : stepper -> bool option
(** [Some b] once the root element has closed ([b] = acceptance, equal to
    {!run_events} on the same stream — property-tested); [None]
    mid-stream or before any event. *)

val check_monoid : t -> labels:string list -> (unit, string) result
(** Sanity check used by tests: associativity of [mul], neutrality of
    [one], and range checks of [embed]/[up] over the given labels. *)

(** {1 Combinators} *)

val product : ?name:string -> (bool -> bool -> bool) -> t -> t -> t
(** Synchronous product; acceptance combines the components with the given
    boolean function.  States/monoid multiply. *)

val complement : t -> t
val conj : t -> t -> t
val disj : t -> t -> t

(** {1 Example automata (each an MSO/FO property from the survey's space)} *)

val exists_label : string -> t
(** Some node is labeled [l]. *)

val root_label : string -> t

val all_leaves_labeled : string -> t

val count_label_mod : string -> modulus:int -> residue:int -> t
(** The number of [l]-labeled nodes is ≡ residue (mod modulus) — a
    properly MSO (not FO-definable) property. *)

val every_a_has_b_descendant : string -> string -> t
(** Every [a]-labeled node has a proper [b]-labeled descendant. *)

val adjacent_children : string -> string -> t
(** Some node has an [a]-labeled child immediately followed by a
    [b]-labeled child — exercises the horizontal order. *)

(** {1 Unary queries: the two-pass technique of [29, 51]} *)

type 'ctx context = {
  initial : 'ctx;  (** context of the root *)
  down : 'ctx -> string -> int -> int -> 'ctx;
      (** [down parent_ctx parent_label left_product right_product] is the
          context of a child given the monoid products of its left and
          right sibling lists *)
}

val select :
  t -> 'ctx context -> pred:('ctx -> int -> bool) -> Treekit.Tree.t -> Treekit.Nodeset.t
(** Two passes (bottom-up states, then top-down contexts with prefix/suffix
    sibling products): the nodes [v] with [pred ctx(v) state(v)].  O(n). *)

val has_ancestor_labeled : string -> Treekit.Tree.t -> Treekit.Nodeset.t
(** Example 3.1 via automata: the nodes with a proper ancestor labeled [l]
    (tested against the monadic-datalog evaluation of the same query). *)
