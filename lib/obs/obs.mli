(** Observability for the query engine: hierarchical tracing spans, named
    counters and reports serialisable to text and JSON.

    The whole library is OCaml-stdlib-only and is near-zero-cost when
    disabled (the default): every probe is a single flag test.  Enable it
    around a run, evaluate, then {!Report.capture} what happened:

    {[
      Obs.set_enabled true;
      Obs.reset ();
      let answer = Treequery.Engine.eval q tree in
      let report = Obs.Report.capture () in
      print_string (Obs.Report.to_text report)
    ]}

    Counters witness the paper's complexity bounds empirically: e.g. the
    [hornsat_unit_props] counter is exactly the work term of Minoux's
    linear-time algorithm (Figure 3), and [semijoin_passes] is the
    2·|edges| semijoin program of Yannakakis' algorithm (Prop. 4.2). *)

val enabled : unit -> bool
(** Observability is off by default. *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the flag set, restoring the previous value after
    (also on exception). *)

val set_clock : (unit -> float) -> unit
(** Install the clock used for span durations (seconds).  Defaults to
    [Sys.time]; executables that link unix should install a wall/monotonic
    clock such as [Unix.gettimeofday] at startup. *)

val now : unit -> float
(** The current reading of the installed clock, so other subsystems (the
    serving layer's cache TTLs and latency measurements) share the same
    time source as span durations. *)

val reset : unit -> unit
(** Zero every counter, clear every histogram and discard all recorded
    spans. *)

module Counter : sig
  type t

  val make : string -> t
  (** Create (or look up — names are deduplicated) a registered counter.
      Intended to be called once at module-initialisation time. *)

  val incr : t -> unit
  (** One flag test + one increment; no-op when disabled. *)

  val add : t -> int -> unit

  val record_max : t -> int -> unit
  (** Gauge semantics: keep the maximum value seen (e.g. peak stack
      depth). *)

  val value : t -> int

  val name : t -> string

  val reset_all : unit -> unit

  val snapshot : unit -> (string * int) list
  (** The nonzero counters, sorted by name. *)
end

type histogram_summary = {
  count : int;
  mean : float;  (** seconds *)
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  max : float;
}
(** Quantile digest of a histogram.  Quantiles are approximate (resolved
    to the log-bucket the sample fell in); [max] is exact. *)

(** Log-bucketed value histograms, sized for request latencies: buckets
    grow geometrically (ratio √2) from 1 µs, so the whole range 1 µs – 4 min
    fits in 56 buckets with ≤ ~19% quantile error.

    Unlike counters and spans, histograms are {e not} gated by the enabled
    flag: they are explicit driver-level instruments (the serving layer's
    per-request latency), created and fed deliberately, not inline probes
    sprinkled through the hot paths — and their summaries must be
    available for the driver's plain-text report even when tracing is
    off. *)
module Histogram : sig
  type t

  val make : string -> t
  (** Create (or look up — names are deduplicated) a registered
      histogram. *)

  val observe : t -> float -> unit
  (** Record one sample (seconds; negative samples are clamped to 0). *)

  val count : t -> int

  val percentile : t -> float -> float
  (** [percentile h q] for [q ∈ \[0, 1\]]; 0 when empty. *)

  val mean : t -> float

  val max_value : t -> float

  val summary : t -> histogram_summary

  val name : t -> string

  val clear : t -> unit
  (** Zero this histogram only (e.g. between serving runs in one
      process). *)

  val reset_all : unit -> unit

  val snapshot : unit -> (string * histogram_summary) list
  (** The nonempty histograms, sorted by name. *)
end

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f] inside a span.  When enabled, the span
      records its duration and nests under the innermost enclosing span
      (spans opened during [f] become children).  When disabled this is
      just [f ()]. *)
end

(** Minimal JSON values — enough to serialise reports and read them back
    without an external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_failure of { pos : int; msg : string }

  val to_string : t -> string

  val of_string : string -> t
  (** @raise Parse_failure on syntax errors. *)

  val member : string -> t -> t option
end

module Report : sig
  type span = { name : string; duration : float; children : span list }

  type t = {
    spans : span list;
    counters : (string * int) list;
    histograms : (string * histogram_summary) list;
  }

  val empty : t

  val is_empty : t -> bool

  val capture : unit -> t
  (** Snapshot the completed spans, nonzero counters and nonempty
      histograms recorded since the last {!reset}.  With observability
      disabled throughout (and no histogram fed), the result is
      {!empty}. *)

  val to_text : t -> string
  (** Indented span tree with millisecond durations, then a counter
      table, then histogram quantiles. *)

  val to_json : t -> string

  exception Malformed of string

  val of_json : string -> t
  (** Inverse of {!to_json}. @raise Malformed *)
end
