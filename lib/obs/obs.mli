(** Observability for the query engine: hierarchical tracing spans, named
    counters and reports serialisable to text and JSON.

    The whole library is OCaml-stdlib-only and is near-zero-cost when
    disabled (the default): every probe is a single flag test.  Enable it
    around a run, evaluate, then {!Report.capture} what happened:

    {[
      Obs.set_enabled true;
      Obs.reset ();
      let answer = Treequery.Engine.eval q tree in
      let report = Obs.Report.capture () in
      print_string (Obs.Report.to_text report)
    ]}

    Counters witness the paper's complexity bounds empirically: e.g. the
    [hornsat_unit_props] counter is exactly the work term of Minoux's
    linear-time algorithm (Figure 3), and [semijoin_passes] is the
    2·|edges| semijoin program of Yannakakis' algorithm (Prop. 4.2). *)

val enabled : unit -> bool
(** Observability is off by default. *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the flag set, restoring the previous value after
    (also on exception). *)

val set_clock : (unit -> float) -> unit
(** Install the clock used for span durations (seconds).  Defaults to
    [Sys.time]; executables that link unix should install a wall/monotonic
    clock such as [Unix.gettimeofday] at startup. *)

val now : unit -> float
(** The current reading of the installed clock, so other subsystems (the
    serving layer's cache TTLs and latency measurements) share the same
    time source as span durations. *)

val reset : unit -> unit
(** Zero every counter, clear every histogram and discard all recorded
    spans and scope profiles. *)

type attr = Int of int | Str of string
(** Typed span/profile attributes — the sizes and identifiers a reader
    needs to interpret a measurement (|D|, |Q|, strategy, plan
    fingerprint). *)

val attr_to_string : attr -> string

type profile = {
  profile_label : string;
  profile_attrs : (string * attr) list;
  profile_counters : (string * int) list;
      (** counter {e deltas} inside the scope: nonzero only, sorted *)
  profile_duration : float;  (** seconds *)
}
(** The scoped-collection result for one labelled region (e.g. one served
    request): what the counters did while the region ran.  See {!Scope}. *)

module Counter : sig
  type t

  val make : string -> t
  (** Create (or look up — names are deduplicated) a registered counter.
      Intended to be called once at module-initialisation time. *)

  val incr : t -> unit
  (** One flag test + one increment; no-op when disabled. *)

  val add : t -> int -> unit

  val record_max : t -> int -> unit
  (** Gauge semantics: keep the maximum value seen (e.g. peak stack
      depth). *)

  val value : t -> int

  val name : t -> string

  val reset_all : unit -> unit

  val snapshot : unit -> (string * int) list
  (** The nonzero counters, sorted by name. *)
end

type histogram_summary = {
  count : int;
  mean : float;  (** seconds *)
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  max : float;
}
(** Quantile digest of a histogram.  Quantiles are approximate (resolved
    to the log-bucket the sample fell in); [max] is exact. *)

(** Log-bucketed value histograms, sized for request latencies: buckets
    grow geometrically (ratio √2) from 1 µs, so the whole range 1 µs – 4 min
    fits in 56 buckets with ≤ ~19% quantile error.

    Unlike counters and spans, histograms are {e not} gated by the enabled
    flag: they are explicit driver-level instruments (the serving layer's
    per-request latency), created and fed deliberately, not inline probes
    sprinkled through the hot paths — and their summaries must be
    available for the driver's plain-text report even when tracing is
    off. *)
module Histogram : sig
  type t

  val make : string -> t
  (** Create (or look up — names are deduplicated) a registered
      histogram. *)

  val observe : t -> float -> unit
  (** Record one sample (seconds; negative samples are clamped to 0). *)

  val count : t -> int

  val percentile : t -> float -> float
  (** [percentile h q] for [q ∈ \[0, 1\]]; 0 when empty. *)

  val mean : t -> float

  val max_value : t -> float

  val summary : t -> histogram_summary

  val name : t -> string

  val merge : into:t -> t -> unit
  (** [merge ~into src] folds [src] into [into]: bucket-wise count
      addition (every histogram shares the one fixed √2-ratio bucket
      layout, so this is total — no interpolation, no failure case),
      [count] and [sum] add, [max] takes the larger.  [src] is left
      unchanged.  This is how domain-local shards fold their private
      twins into the registered histogram at {!Shard.merge} time. *)

  val clear : t -> unit
  (** Zero this histogram only (e.g. between serving runs in one
      process). *)

  val reset_all : unit -> unit

  val snapshot : unit -> (string * histogram_summary) list
  (** The nonempty histograms, sorted by name. *)
end

module Span : sig
  val with_ : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
  (** [with_ name f] runs [f] inside a span.  When enabled, the span
      records its start, duration and [attrs], and nests under the
      innermost enclosing span (spans opened during [f] become children).
      The span is recorded even when [f] raises.  When disabled this is
      just [f ()]. *)

  val set_attr : string -> attr -> unit
  (** Attach (or overwrite) an attribute on the innermost open span —
      for values only known mid-flight, e.g. a result size.  No-op when
      disabled or when no span is open. *)
end

(** Scoped collection: attribute counter increments and wall time to a
    labelled region (one served request, one batch rep) instead of the
    global blob.  A scope diffs a snapshot of every registered counter
    around the region, so interleaved sequential regions each see exactly
    their own work; a nested scope's counts are also visible to its
    enclosing scope, as expected of deltas. *)
module Scope : sig
  val collect : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a * profile
  (** Run the thunk and return its result with the region's profile.
      When disabled the profile is empty (no counters move). *)

  val record : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
  (** Like {!collect} but appends the profile to a global list that
      {!Report.capture} picks up; the profile is recorded even when the
      thunk raises.  No-op wrapper when disabled. *)

  val recorded : unit -> profile list
  (** Profiles recorded since the last {!reset}, oldest first. *)

  val note : profile -> unit
  (** Append a profile obtained from {!collect} to the recorded list —
      for callers that need to inspect a profile (e.g. to feed a
      telemetry store) {e and} have {!Report.capture} pick it up.
      No-op when disabled. *)
end

(** Domain-local observability shards, the race-freedom mechanism behind
    parallel serving: a parallel executor creates one shard per task,
    wraps the task in {!Shard.run} (on whichever domain picks it up),
    and folds the completed shard into the global state with
    {!Shard.merge} on the publishing domain.

    While a shard is installed in a domain, that domain's counter bumps
    go to the shard's private arrays (additive counters sum-merged,
    {!Counter.record_max} gauges max-merged), histogram observations go
    to private twins (bucket-wise {!Histogram.merge}d), and spans /
    scope profiles collect in the domain's own state and drain into the
    shard when [run] returns — no instrumented code ever writes memory
    another domain is writing.

    Merging shards in task order on one domain makes the merged counter
    totals, profile order and span order deterministic regardless of how
    tasks were scheduled.  The protocol relies on the publishing domain
    quiescing the workers before merging (a pool's [run] returns only
    after every task finished), so the global cells are stable while
    workers run. *)
module Shard : sig
  type t

  val create : unit -> t
  (** A fresh, empty shard.  Cheap — intended per task, not per domain. *)

  val run : t -> (unit -> 'a) -> 'a
  (** Run the thunk with this shard installed in the current domain,
      restoring the domain's previous observability state after (also on
      exception).  Safe on any domain, including the main one (useful
      for deterministic tests without spawning domains). *)

  val merge : t -> unit
  (** Fold the shard into the global counters, histograms, span forest
      (grafting worker spans under the innermost span currently open on
      the calling domain, and replaying them through a live streaming
      trace sink children-before-parents) and recorded profiles.  Call
      on the publishing domain, after the task completed, at most once
      per shard. *)
end

(** Minimal JSON values — enough to serialise reports and read them back
    without an external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_failure of { pos : int; msg : string }

  val to_string : t -> string

  val of_string : string -> t
  (** @raise Parse_failure on syntax errors. *)

  val member : string -> t -> t option

  val write_raw : string -> string -> unit
  (** [write_raw path contents] — the one file-writing helper every CLI
      sink goes through.  ["-"] writes to stdout; any other path is
      opened, written and closed under [Fun.protect] so the fd is
      released even when the write raises. *)

  val write_file : string -> t -> unit
  (** {!write_raw} of [to_string j] plus a trailing newline. *)
end

module Report : sig
  type span = {
    name : string;
    start : float;  (** seconds, absolute clock reading; 0 when unknown *)
    duration : float;
    attrs : (string * attr) list;
    children : span list;
  }

  type t = {
    spans : span list;
    counters : (string * int) list;
    histograms : (string * histogram_summary) list;
    profiles : profile list;
  }

  val empty : t

  val is_empty : t -> bool

  val capture : unit -> t
  (** Snapshot the completed spans, nonzero counters, nonempty histograms
      and scope profiles recorded since the last {!reset}.  With
      observability disabled throughout (and no histogram fed), the
      result is {!empty}. *)

  val span_count : t -> int
  (** Total spans in the forest (every node, not just roots). *)

  val to_text : t -> string
  (** Indented span tree with millisecond durations and attributes, then
      a counter table, histogram quantiles and per-scope profiles. *)

  val to_json : t -> string

  val to_json_value : t -> Json.t
  (** The {!Json.t} value {!to_json} serialises — for callers that splice
      extra sections (e.g. the serving layer's telemetry summary) into
      the stats document before writing it. *)

  exception Malformed of string

  val of_json : string -> t
  (** Inverse of {!to_json}: [to_json (of_json s) = s] for any [s]
      produced by {!to_json} (new fields are omitted when empty, so
      pre-existing reports round-trip unchanged too). @raise Malformed *)
end

(** Chrome trace-event export: one complete ("ph":"X") event per span,
    loadable in Perfetto or chrome://tracing.  Timestamps are
    microseconds relative to the earliest span start. *)
module Trace : sig
  val of_report : Report.t -> Json.t
  (** Convert a captured report's span forest; the event count equals
      {!Report.span_count}. *)

  val event_count : Json.t -> int
  (** Number of entries in the ["traceEvents"] array (0 if absent). *)

  type sink

  val start_stream : unit -> sink
  (** Subscribe to span completions: every span finishing after this
      call is appended to the sink as it completes (children before
      parents — event order is irrelevant to the format).  Only one
      sink can be live at a time; starting a new one replaces the
      previous subscription. *)

  val stop_stream : sink -> Json.t
  (** Unsubscribe and return the accumulated trace document. *)
end

(** OpenMetrics text exposition of a captured report's counters and
    histogram summaries (metric names are prefixed [treequery_]; the
    exposition ends with [# EOF]). *)
module Openmetrics : sig
  type summary = {
    metric : string;  (** unprefixed metric name, e.g. ["serve_fp_latency"] *)
    labels : (string * string) list;
        (** label set distinguishing the series, e.g. fingerprint and
            strategy; values are escaped per the exposition format *)
    quantiles : (string * float) list;  (** quantile label → seconds *)
    sum : float;  (** seconds *)
    count : int;
  }
  (** A labelled summary series (the telemetry layer's per-fingerprint
      latency sketches), rendered as
      [treequery_<metric>_seconds{labels,quantile="q"} v] lines plus
      [_count]/[_sum]. *)

  type gauge = {
    gname : string;  (** unprefixed metric name, e.g. ["build_info"] *)
    ghelp : string;  (** [# HELP] text (escaped on render) *)
    glabels : (string * string) list;
    gvalue : float;
  }
  (** A labelled gauge sample, rendered as
      [treequery_<gname>{labels} v] with [# TYPE .. gauge]/[# HELP]
      header lines. *)

  val gauge :
    ?labels:(string * string) list -> ?help:string -> string -> float -> gauge
  (** [gauge name v] with optional labels and help text. *)

  val escape_label : string -> string
  (** Escape a label value per the exposition format: backslash, double
      quote, and newline become two-character escape sequences. *)

  val sanitize : string -> string
  (** Map a name onto the metric-name alphabet
      ([[a-zA-Z0-9_:]]; anything else becomes [_]). *)

  val render : ?gauges:gauge list -> ?extra:summary list -> Report.t -> string
  (** [gauges] (default none) prepends gauge samples before the
      report's counters; [extra] (default none) appends labelled
      summaries after the report's counters and histograms, before
      [# EOF].  Every metric family carries [# HELP] and [# TYPE]
      lines. *)
end

(** Declarative complexity attestation: bounds tie a witnessing counter
    to the paper claim it certifies and the input-size term it must scale
    against.  [treequery attest] sweeps each registered bound's term,
    fits the observed log-log slope with {!fit_slope} and fails when it
    exceeds [exponent] beyond tolerance. *)
module Bound : sig
  type t = {
    id : string;  (** stable identifier, e.g. ["datalog-grounding"] *)
    claim : string;  (** the theorem/figure being attested *)
    counter : string;  (** the witnessing counter *)
    term : string;  (** the input-size term swept, e.g. ["|D|"] *)
    exponent : float;  (** claimed log-log slope of counter vs term *)
  }

  val register :
    id:string -> claim:string -> counter:string -> term:string -> exponent:float -> t
  (** Add a bound to the registry (idempotent per [id]). *)

  val all : unit -> t list
  (** Registration order. *)

  val find : string -> t option

  val fit_slope : (float * float) list -> float
  (** Least-squares slope of log y vs log x.  Points with a nonpositive
      coordinate are skipped; fewer than two usable points fit 0. *)
end
