(* Observability: tracing spans, named counters and serialisable reports.

   The module is dependency-free (OCaml stdlib only) and near-zero-cost
   when disabled: every counter bump and span entry first reads the global
   [on] flag, so a disabled run pays one load and one branch per probe.
   Instrumented libraries create their counters at module-initialisation
   time with [Counter.make]; the registry deduplicates by name so the same
   logical counter can be referenced from several modules. *)

let on = ref false

let enabled () = !on

let set_enabled b = on := b

(* [Sys.time] (processor time) is the only clock the stdlib offers; the
   executables that link unix install [Unix.gettimeofday] at startup so
   span durations are wall-clock there. *)
let clock : (unit -> float) ref = ref Sys.time

let set_clock f = clock := f

(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let registry : t list ref = ref []

  let make name =
    match List.find_opt (fun c -> c.name = name) !registry with
    | Some c -> c
    | None ->
      let c = { name; value = 0 } in
      registry := c :: !registry;
      c

  let[@inline] incr c = if !on then c.value <- c.value + 1

  let[@inline] add c n = if !on then c.value <- c.value + n

  let[@inline] record_max c n = if !on && n > c.value then c.value <- n

  let value c = c.value

  let name c = c.name

  let reset_all () = List.iter (fun c -> c.value <- 0) !registry

  (* nonzero counters only, sorted by name: a disabled (or idle) run
     snapshots to [] *)
  let snapshot () =
    !registry
    |> List.filter_map (fun c -> if c.value <> 0 then Some (c.name, c.value) else None)
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)

module Span = struct
  type node = {
    span_name : string;
    mutable duration : float;
    mutable children : node list;  (** reversed *)
  }

  let roots : node list ref = ref []  (* reversed *)

  let stack : node list ref = ref []

  let reset () =
    roots := [];
    stack := []

  let attach node =
    match !stack with
    | top :: rest when top == node ->
      stack := rest;
      (match rest with
      | parent :: _ -> parent.children <- node :: parent.children
      | [] -> roots := node :: !roots)
    | _ -> () (* unbalanced exit (e.g. reset inside a span): drop the span *)

  let with_ name f =
    if not !on then f ()
    else begin
      let node = { span_name = name; duration = 0.0; children = [] } in
      let t0 = !clock () in
      stack := node :: !stack;
      Fun.protect
        ~finally:(fun () ->
          node.duration <- !clock () -. t0;
          attach node)
        f
    end
end

let reset () =
  Counter.reset_all ();
  Span.reset ()

let with_enabled b f =
  let saved = !on in
  on := b;
  Fun.protect ~finally:(fun () -> on := saved) f

(* ------------------------------------------------------------------ *)
(* A hand-rolled JSON value type: just enough to serialise reports and
   parse them back (round-trip tested), keeping the library
   dependency-free. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let number_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  exception Parse_failure of { pos : int; msg : string }

  (* recursive-descent parser for the subset above *)
  let of_string input =
    let n = String.length input in
    let pos = ref 0 in
    let fail msg = raise (Parse_failure { pos = !pos; msg }) in
    let peek () = if !pos < n then Some input.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if !pos < n && input.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub input !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match input.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match input.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub input (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* BMP code points only; enough for our own output *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while
        !pos < n
        && (match input.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
      do
        incr pos
      done;
      match float_of_string_opt (String.sub input start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := member () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)

module Report = struct
  type span = { name : string; duration : float; children : span list }

  type t = { spans : span list; counters : (string * int) list }

  let empty = { spans = []; counters = [] }

  let is_empty r = r.spans = [] && r.counters = []

  let rec freeze (node : Span.node) =
    {
      name = node.span_name;
      duration = node.duration;
      children = List.rev_map freeze node.children;
    }

  let capture () =
    { spans = List.rev_map freeze !Span.roots; counters = Counter.snapshot () }

  (* ---- text ---- *)

  let to_text r =
    let buf = Buffer.create 256 in
    let rec span indent s =
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms\n" indent (max 1 (32 - String.length indent))
           s.name (s.duration *. 1000.0));
      List.iter (span (indent ^ "  ")) s.children
    in
    List.iter (span "") r.spans;
    if r.counters <> [] then begin
      Buffer.add_string buf "counters:\n";
      List.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-30s %d\n" name v))
        r.counters
    end;
    Buffer.contents buf

  (* ---- json ---- *)

  let rec json_of_span s =
    Json.Obj
      [
        ("name", Json.Str s.name);
        ("duration_ms", Json.Num (s.duration *. 1000.0));
        ("children", Json.Arr (List.map json_of_span s.children));
      ]

  let to_json_value r =
    Json.Obj
      [
        ("spans", Json.Arr (List.map json_of_span r.spans));
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) r.counters));
      ]

  let to_json r = Json.to_string (to_json_value r)

  exception Malformed of string

  let rec span_of_json j =
    let get key =
      match Json.member key j with
      | Some v -> v
      | None -> raise (Malformed ("span missing field " ^ key))
    in
    let name = match get "name" with Json.Str s -> s | _ -> raise (Malformed "span name") in
    let duration =
      match get "duration_ms" with
      | Json.Num f -> f /. 1000.0
      | _ -> raise (Malformed "span duration_ms")
    in
    let children =
      match get "children" with
      | Json.Arr xs -> List.map span_of_json xs
      | _ -> raise (Malformed "span children")
    in
    { name; duration; children }

  let of_json_value j =
    let spans =
      match Json.member "spans" j with
      | Some (Json.Arr xs) -> List.map span_of_json xs
      | _ -> raise (Malformed "report missing spans")
    in
    let counters =
      match Json.member "counters" j with
      | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match v with
            | Json.Num f -> (k, int_of_float f)
            | _ -> raise (Malformed "counter value"))
          kvs
      | _ -> raise (Malformed "report missing counters")
    in
    { spans; counters }

  let of_json s =
    match Json.of_string s with
    | j -> of_json_value j
    | exception Json.Parse_failure { pos; msg } ->
      raise (Malformed (Printf.sprintf "JSON syntax at %d: %s" pos msg))
end
