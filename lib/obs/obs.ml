(* Observability: tracing spans, named counters and serialisable reports.

   The module is dependency-free (OCaml stdlib only) and near-zero-cost
   when disabled: every counter bump and span entry first reads the global
   [on] flag, so a disabled run pays one load and one branch per probe.
   Instrumented libraries create their counters at module-initialisation
   time with [Counter.make]; the registry deduplicates by name so the same
   logical counter can be referenced from several modules. *)

let on = ref false

let enabled () = !on

let set_enabled b = on := b

(* [Sys.time] (processor time) is the only clock the stdlib offers; the
   executables that link unix install [Unix.gettimeofday] at startup so
   span durations are wall-clock there. *)
let clock : (unit -> float) ref = ref Sys.time

let set_clock f = clock := f

let now () = !clock ()

(* Typed span/profile attributes: the sizes and identifiers a reader needs
   to interpret a measurement (|D|, |Q|, strategy, plan fingerprint). *)
type attr = Int of int | Str of string

let attr_to_string = function Int i -> string_of_int i | Str s -> s

(* A scoped-collection result: the counter deltas (and wall time) of one
   labelled region, e.g. a single served request.  See {!Scope}. *)
type profile = {
  profile_label : string;
  profile_attrs : (string * attr) list;
  profile_counters : (string * int) list;  (* deltas, nonzero, sorted *)
  profile_duration : float;  (* seconds *)
}

(* ------------------------------------------------------------------ *)

(* Domain-local counter shards (see {!Shard}): when one is installed in
   the current domain's DLS, counter bumps land in the shard's arrays
   (indexed by each counter's registration index) instead of the shared
   registry cells, so parallel workers never write the same memory.
   Additive bumps ([incr]/[add]) and gauge updates ([record_max]) use
   separate arrays because they merge differently (sum vs max). *)
module Cshard = struct
  type t = { mutable adds : int array; mutable maxes : int array }

  let create () = { adds = [||]; maxes = [||] }

  let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let ensure sh i =
    if i >= Array.length sh.adds then begin
      let n = max 16 (max (i + 1) (2 * Array.length sh.adds)) in
      let grow a =
        let b = Array.make n 0 in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      sh.adds <- grow sh.adds;
      sh.maxes <- grow sh.maxes
    end

  let add sh i n =
    ensure sh i;
    sh.adds.(i) <- sh.adds.(i) + n

  let record_max sh i n =
    ensure sh i;
    if n > sh.maxes.(i) then sh.maxes.(i) <- n

  let get_add sh i = if i < Array.length sh.adds then sh.adds.(i) else 0

  let get_max sh i = if i < Array.length sh.maxes then sh.maxes.(i) else 0
end

module Counter = struct
  type t = {
    name : string;
    idx : int;  (* position in the registry, stable for a counter's lifetime *)
    mutable gauge : bool;  (* has ever been fed via record_max *)
    mutable value : int;
  }

  let registry : t list ref = ref []

  let next_idx = ref 0

  let make name =
    match List.find_opt (fun c -> c.name = name) !registry with
    | Some c -> c
    | None ->
      let c = { name; idx = !next_idx; gauge = false; value = 0 } in
      Stdlib.incr next_idx;
      registry := c :: !registry;
      c

  let[@inline] incr c =
    if !on then
      match Domain.DLS.get Cshard.key with
      | None -> c.value <- c.value + 1
      | Some sh -> Cshard.add sh c.idx 1

  let[@inline] add c n =
    if !on then
      match Domain.DLS.get Cshard.key with
      | None -> c.value <- c.value + n
      | Some sh -> Cshard.add sh c.idx n

  let[@inline] record_max c n =
    if !on then begin
      if not c.gauge then c.gauge <- true;
      match Domain.DLS.get Cshard.key with
      | None -> if n > c.value then c.value <- n
      | Some sh -> Cshard.record_max sh c.idx n
    end

  let value c = c.value

  (* shard-aware read: the global cell plus this domain's pending shard
     contribution — what {!Scope} snapshots inside a worker, so deltas
     computed there see the worker's own work (the global cells are
     stable while a parallel section runs: only merges mutate them, and
     merges happen on the publishing domain after the workers finish) *)
  let read c =
    match Domain.DLS.get Cshard.key with
    | None -> c.value
    | Some sh ->
      if c.gauge then max c.value (Cshard.get_max sh c.idx)
      else c.value + Cshard.get_add sh c.idx

  let name c = c.name

  let reset_all () = List.iter (fun c -> c.value <- 0) !registry

  (* nonzero counters only, sorted by name: a disabled (or idle) run
     snapshots to [] *)
  let snapshot () =
    !registry
    |> List.filter_map (fun c -> if c.value <> 0 then Some (c.name, c.value) else None)
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)

type histogram_summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  max : float;
}

(* Log-bucketed histograms: bucket i covers [base·ratio^i, base·ratio^(i+1))
   with base = 1 µs and ratio = √2, so 56 buckets span 1 µs to ~4.5 min.
   A quantile is reported as the geometric midpoint of its bucket, giving
   a bounded relative error of ratio^½ ≈ 19%.  Deliberately NOT gated on
   the [on] flag (see the .mli). *)
module Histogram = struct
  let nbuckets = 56

  let base = 1e-6

  let log_ratio = 0.5 *. log 2.0 (* log √2 *)

  type t = {
    hist_name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable max : float;
  }

  let registry : t list ref = ref []

  let detached name =
    { hist_name = name; buckets = Array.make nbuckets 0; count = 0; sum = 0.0; max = 0.0 }

  let make name =
    match List.find_opt (fun h -> h.hist_name = name) !registry with
    | Some h -> h
    | None ->
      let h = detached name in
      registry := h :: !registry;
      h

  (* Domain-local histogram shard (see {!Shard}): name → unregistered
     twin.  While installed, observations into any registered histogram
     are redirected to this domain's private twin of the same name. *)
  let shard_key : (string, t) Hashtbl.t option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let twin tbl h =
    match Hashtbl.find_opt tbl h.hist_name with
    | Some d -> d
    | None ->
      let d = detached h.hist_name in
      Hashtbl.add tbl h.hist_name d;
      d

  let bucket_of v =
    if v <= base then 0
    else min (nbuckets - 1) (int_of_float (log (v /. base) /. log_ratio))

  let observe h v =
    let h =
      match Domain.DLS.get shard_key with None -> h | Some tbl -> twin tbl h
    in
    let v = Float.max 0.0 v in
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v > h.max then h.max <- v

  (* Total merge: every histogram shares the one fixed bucket layout, so
     merging is bucket-wise addition — no interpolation, no failure case.
     [count]/[sum] add, [max] takes the max; [src] is left untouched. *)
  let merge ~into src =
    for i = 0 to nbuckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.max > into.max then into.max <- src.max

  let count h = h.count

  let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

  let max_value h = h.max

  (* midpoint of bucket i in log space; bucket 0 also holds sub-µs samples,
     so report its lower edge *)
  let bucket_value i =
    if i = 0 then base else base *. exp ((float_of_int i +. 0.5) *. log_ratio)

  let percentile h q =
    if h.count = 0 then 0.0
    else begin
      let target =
        let t = int_of_float (ceil (q *. float_of_int h.count)) in
        max 1 (min h.count t)
      in
      let rec go i cum =
        if i >= nbuckets then h.max
        else
          let cum = cum + h.buckets.(i) in
          if cum >= target then Float.min (bucket_value i) h.max else go (i + 1) cum
      in
      go 0 0
    end

  let summary h =
    {
      count = h.count;
      mean = mean h;
      p50 = percentile h 0.50;
      p90 = percentile h 0.90;
      p95 = percentile h 0.95;
      p99 = percentile h 0.99;
      max = h.max;
    }

  let name h = h.hist_name

  let clear h =
    Array.fill h.buckets 0 nbuckets 0;
    h.count <- 0;
    h.sum <- 0.0;
    h.max <- 0.0

  let reset_all () = List.iter clear !registry

  let snapshot () =
    !registry
    |> List.filter_map (fun h ->
           if h.count > 0 then Some (h.hist_name, summary h) else None)
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)

module Span = struct
  type node = {
    span_name : string;
    start : float;  (** clock reading at entry (seconds) *)
    mutable duration : float;
    mutable attrs : (string * attr) list;  (** reversed insertion order *)
    mutable children : node list;  (** reversed *)
  }

  (* Span bookkeeping is per-domain: each domain has its own open-span
     stack and completed-root list, so workers never contend on the main
     domain's trace.  On the main domain this is the same state the
     pre-domains code kept in two global refs. *)
  type state = { mutable roots : node list (* reversed *); mutable stack : node list }

  let state_key : state Domain.DLS.key =
    Domain.DLS.new_key (fun () -> { roots = []; stack = [] })

  let state () = Domain.DLS.get state_key

  (* Streaming sinks (the Chrome trace writer) observe each span the
     moment it completes — children strictly before their parents.  The
     hook must never break the instrumented program, so its exceptions
     are swallowed.  It fires only on the domain that installed it;
     worker spans are replayed through it when their shard merges. *)
  let completion_hook : (node -> unit) option ref = ref None

  let hook_domain : Domain.id ref = ref (Domain.self ())

  let set_completion_hook h =
    hook_domain := Domain.self ();
    completion_hook := h

  let fire_hook node =
    match !completion_hook with
    | Some f when Domain.self () = !hook_domain -> ( try f node with _ -> ())
    | _ -> ()

  (* Replay a merged worker span through the streaming hook, children
     strictly before parents (the order the sink would have seen live). *)
  let rec replay_hook node =
    List.iter replay_hook (List.rev node.children);
    fire_hook node

  let reset () =
    let st = state () in
    st.roots <- [];
    st.stack <- []

  let attach node =
    let st = state () in
    match st.stack with
    | top :: rest when top == node ->
      st.stack <- rest;
      (match rest with
      | parent :: _ -> parent.children <- node :: parent.children
      | [] -> st.roots <- node :: st.roots);
      fire_hook node
    | _ -> () (* unbalanced exit (e.g. reset inside a span): drop the span *)

  let with_ ?(attrs = []) name f =
    if not !on then f ()
    else begin
      let t0 = !clock () in
      let node =
        { span_name = name; start = t0; duration = 0.0; attrs = List.rev attrs; children = [] }
      in
      let st = state () in
      st.stack <- node :: st.stack;
      Fun.protect
        ~finally:(fun () ->
          node.duration <- !clock () -. t0;
          attach node)
        f
    end

  (* Attach a late-bound attribute (e.g. a result size only known at the
     end) to the innermost open span.  No-op when disabled or when no
     span is open, so callers need no guards. *)
  let set_attr key value =
    if !on then
      match (state ()).stack with
      | top :: _ -> top.attrs <- (key, value) :: List.remove_assoc key top.attrs
      | [] -> ()
end

(* ------------------------------------------------------------------ *)

(* Scoped collection: attribute counter increments (and wall time) to a
   labelled region rather than the global blob.  A scope snapshots every
   registered counter on entry and diffs on exit, so nested/interleaved
   regions each see exactly the work performed inside them (a nested
   scope's work is also visible to its enclosing scope, as expected of a
   delta).  Cost is O(#registered counters) per scope — paid only when
   observability is enabled. *)
module Scope = struct
  (* per-domain, like span state: a worker's scopes collect into its own
     list, drained into the active {!Shard} when the task ends *)
  let captured_key : profile list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let captured () = Domain.DLS.get captured_key  (* reversed *)

  let reset () = captured () := []

  (* [Counter.read], not [.value]: inside a worker's shard the snapshot
     must include the shard contribution or every delta would be zero *)
  let snapshot_values () =
    List.map (fun (c : Counter.t) -> (c, Counter.read c)) !Counter.registry

  let deltas before =
    !Counter.registry
    |> List.filter_map (fun (c : Counter.t) ->
           let b =
             match List.find_opt (fun (c', _) -> c' == c) before with
             | Some (_, v) -> v
             | None -> 0 (* counter registered inside the scope *)
           in
           let d = Counter.read c - b in
           if d <> 0 then Some (c.Counter.name, d) else None)
    |> List.sort compare

  let collect ?(attrs = []) label f =
    if not !on then
      let x = f () in
      ( x,
        { profile_label = label; profile_attrs = attrs; profile_counters = [];
          profile_duration = 0.0 } )
    else begin
      let before = snapshot_values () in
      let t0 = !clock () in
      let finish () =
        { profile_label = label;
          profile_attrs = attrs;
          profile_counters = deltas before;
          profile_duration = !clock () -. t0 }
      in
      let x = f () in
      (x, finish ())
    end

  (* Like [collect], but keeps the profile in a global list that
     {!Report.capture} picks up (and records it even when [f] raises). *)
  let record ?(attrs = []) label f =
    if not !on then f ()
    else begin
      let before = snapshot_values () in
      let t0 = !clock () in
      let finish () =
        let cap = captured () in
        cap :=
          { profile_label = label;
            profile_attrs = attrs;
            profile_counters = deltas before;
            profile_duration = !clock () -. t0 }
          :: !cap
      in
      Fun.protect ~finally:finish f
    end

  let recorded () = List.rev !(captured ())

  (* Append an externally-collected profile (from {!collect}) to the
     recorded list — lets a caller look at a profile (e.g. to feed a
     telemetry store) and still have {!Report.capture} pick it up. *)
  let note p =
    if !on then begin
      let cap = captured () in
      cap := p :: !cap
    end
end

(* ------------------------------------------------------------------ *)

(* Domain-local observability shards.  A parallel executor creates one
   shard per task, runs the task under {!Shard.run} (on whatever domain
   picks it up), and — once the task has completed and its results are
   back on the publishing domain — folds the shard into the global state
   with {!Shard.merge}.  While a shard is installed:

   - counter bumps go to the shard's per-index arrays (sum-merged;
     [record_max] gauges max-merged);
   - histogram observations go to private unregistered twins (merged
     bucket-wise with {!Histogram.merge});
   - spans and scope profiles collect in the running domain's own DLS
     state and are drained into the shard when [run] returns.

   Merging in task order on one domain makes the merged totals, profile
   order and span order deterministic regardless of how tasks were
   scheduled across domains.  [run] touches no shared mutable state, so
   it is also safe (and useful in tests) on the main domain. *)
module Shard = struct
  type t = {
    counters : Cshard.t;
    hists : (string, Histogram.t) Hashtbl.t;
    mutable roots : Span.node list;  (* completed worker spans, oldest first *)
    mutable profiles : profile list;  (* oldest first *)
  }

  let create () =
    { counters = Cshard.create (); hists = Hashtbl.create 8; roots = []; profiles = [] }

  let run sh f =
    let st = Span.state () in
    let saved_roots = st.Span.roots and saved_stack = st.Span.stack in
    st.Span.roots <- [];
    st.Span.stack <- [];
    let cap = Scope.captured () in
    let saved_cap = !cap in
    cap := [];
    let saved_csh = Domain.DLS.get Cshard.key in
    let saved_hsh = Domain.DLS.get Histogram.shard_key in
    Domain.DLS.set Cshard.key (Some sh.counters);
    Domain.DLS.set Histogram.shard_key (Some sh.hists);
    Fun.protect
      ~finally:(fun () ->
        sh.roots <- sh.roots @ List.rev st.Span.roots;
        sh.profiles <- sh.profiles @ List.rev !cap;
        st.Span.roots <- saved_roots;
        st.Span.stack <- saved_stack;
        cap := saved_cap;
        Domain.DLS.set Cshard.key saved_csh;
        Domain.DLS.set Histogram.shard_key saved_hsh)
      f

  let merge sh =
    (* counters: additive deltas sum into the global cells, gauge maxes
       max into them.  O(#registered counters) per shard. *)
    List.iter
      (fun (c : Counter.t) ->
        let d = Cshard.get_add sh.counters c.Counter.idx in
        if d <> 0 then c.Counter.value <- c.Counter.value + d;
        let m = Cshard.get_max sh.counters c.Counter.idx in
        if m > c.Counter.value then c.Counter.value <- m)
      !Counter.registry;
    Hashtbl.iter
      (fun name twin -> Histogram.merge ~into:(Histogram.make name) twin)
      sh.hists;
    (* spans: graft under the innermost span open on this domain (the
       executor's enclosing span, if any), replaying the streaming hook
       children-before-parents so exported traces include worker spans *)
    let st = Span.state () in
    List.iter
      (fun n ->
        Span.replay_hook n;
        match st.Span.stack with
        | parent :: _ -> parent.Span.children <- n :: parent.Span.children
        | [] -> st.Span.roots <- n :: st.Span.roots)
      sh.roots;
    let cap = Scope.captured () in
    List.iter (fun p -> cap := p :: !cap) sh.profiles
end

let reset () =
  Counter.reset_all ();
  Histogram.reset_all ();
  Span.reset ();
  Scope.reset ()

let with_enabled b f =
  let saved = !on in
  on := b;
  Fun.protect ~finally:(fun () -> on := saved) f

(* ------------------------------------------------------------------ *)
(* A hand-rolled JSON value type: just enough to serialise reports and
   parse them back (round-trip tested), keeping the library
   dependency-free. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let number_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  exception Parse_failure of { pos : int; msg : string }

  (* recursive-descent parser for the subset above *)
  let of_string input =
    let n = String.length input in
    let pos = ref 0 in
    let fail msg = raise (Parse_failure { pos = !pos; msg }) in
    let peek () = if !pos < n then Some input.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if !pos < n && input.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub input !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match input.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match input.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub input (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* BMP code points only; enough for our own output *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while
        !pos < n
        && (match input.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
      do
        incr pos
      done;
      match float_of_string_opt (String.sub input start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := member () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  (* The one file-writing helper every CLI sink goes through ([--stats-json],
     [--trace-out], [attest --out], [--telemetry-out], …): ["-"] means
     stdout, anything else is opened, written and closed under
     [Fun.protect] so the fd is released even when the write raises. *)
  let write_raw path contents =
    if path = "-" then print_string contents
    else
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents)

  let write_file path j = write_raw path (to_string j ^ "\n")
end

(* ------------------------------------------------------------------ *)

module Report = struct
  type span = {
    name : string;
    start : float;  (** seconds, absolute clock reading; 0 when unknown *)
    duration : float;
    attrs : (string * attr) list;
    children : span list;
  }

  type t = {
    spans : span list;
    counters : (string * int) list;
    histograms : (string * histogram_summary) list;
    profiles : profile list;
  }

  let empty = { spans = []; counters = []; histograms = []; profiles = [] }

  let is_empty r =
    r.spans = [] && r.counters = [] && r.histograms = [] && r.profiles = []

  let rec freeze (node : Span.node) =
    {
      name = node.span_name;
      start = node.start;
      duration = node.duration;
      attrs = List.rev node.attrs;
      children = List.rev_map freeze node.children;
    }

  let capture () =
    {
      spans = List.rev_map freeze (Span.state ()).Span.roots;
      counters = Counter.snapshot ();
      histograms = Histogram.snapshot ();
      profiles = Scope.recorded ();
    }

  let span_count r =
    let rec count s = 1 + List.fold_left (fun acc c -> acc + count c) 0 s.children in
    List.fold_left (fun acc s -> acc + count s) 0 r.spans

  (* ---- text ---- *)

  let attrs_to_text attrs =
    if attrs = [] then ""
    else
      "  {"
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (attr_to_string v)) attrs)
      ^ "}"

  let to_text r =
    let buf = Buffer.create 256 in
    let rec span indent s =
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms%s\n" indent (max 1 (32 - String.length indent))
           s.name (s.duration *. 1000.0) (attrs_to_text s.attrs));
      List.iter (span (indent ^ "  ")) s.children
    in
    List.iter (span "") r.spans;
    if r.counters <> [] then begin
      Buffer.add_string buf "counters:\n";
      List.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-30s %d\n" name v))
        r.counters
    end;
    if r.histograms <> [] then begin
      Buffer.add_string buf "histograms:\n";
      List.iter
        (fun (name, h) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %-30s n=%d p50=%.3fms p90=%.3fms p95=%.3fms p99=%.3fms max=%.3fms\n"
               name h.count (h.p50 *. 1000.0) (h.p90 *. 1000.0) (h.p95 *. 1000.0)
               (h.p99 *. 1000.0) (h.max *. 1000.0)))
        r.histograms
    end;
    if r.profiles <> [] then begin
      Buffer.add_string buf "profiles:\n";
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "  %-30s %10.3f ms%s\n" p.profile_label
               (p.profile_duration *. 1000.0) (attrs_to_text p.profile_attrs));
          List.iter
            (fun (name, v) ->
              Buffer.add_string buf (Printf.sprintf "    %-30s %d\n" name v))
            p.profile_counters)
        r.profiles
    end;
    Buffer.contents buf

  (* ---- json ---- *)

  let json_of_attr = function
    | Int i -> Json.Num (float_of_int i)
    | Str s -> Json.Str s

  let json_of_attrs attrs =
    Json.Obj (List.map (fun (k, v) -> (k, json_of_attr v)) attrs)

  (* [start_ms] and [attrs] are omitted when absent so reports written
     before this PR still round-trip unchanged *)
  let rec json_of_span s =
    Json.Obj
      ([ ("name", Json.Str s.name) ]
      @ (if s.start = 0.0 then [] else [ ("start_ms", Json.Num (s.start *. 1000.0)) ])
      @ [ ("duration_ms", Json.Num (s.duration *. 1000.0)) ]
      @ (if s.attrs = [] then [] else [ ("attrs", json_of_attrs s.attrs) ])
      @ [ ("children", Json.Arr (List.map json_of_span s.children)) ])

  let json_of_histogram (h : histogram_summary) =
    Json.Obj
      [
        ("count", Json.Num (float_of_int h.count));
        ("mean_ms", Json.Num (h.mean *. 1000.0));
        ("p50_ms", Json.Num (h.p50 *. 1000.0));
        ("p90_ms", Json.Num (h.p90 *. 1000.0));
        ("p95_ms", Json.Num (h.p95 *. 1000.0));
        ("p99_ms", Json.Num (h.p99 *. 1000.0));
        ("max_ms", Json.Num (h.max *. 1000.0));
      ]

  let json_of_profile p =
    Json.Obj
      ([ ("label", Json.Str p.profile_label) ]
      @ (if p.profile_attrs = [] then [] else [ ("attrs", json_of_attrs p.profile_attrs) ])
      @ [
          ( "counters",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Num (float_of_int v)))
                 p.profile_counters) );
          ("duration_ms", Json.Num (p.profile_duration *. 1000.0));
        ])

  let to_json_value r =
    Json.Obj
      ([
         ("spans", Json.Arr (List.map json_of_span r.spans));
         ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) r.counters));
       ]
      @ (* omitted when empty, so pre-serving reports round-trip unchanged *)
      (if r.histograms = [] then []
       else
         [
           ( "histograms",
             Json.Obj (List.map (fun (k, h) -> (k, json_of_histogram h)) r.histograms) );
         ])
      @
      if r.profiles = [] then []
      else [ ("profiles", Json.Arr (List.map json_of_profile r.profiles)) ])

  let to_json r = Json.to_string (to_json_value r)

  exception Malformed of string

  let attr_of_json = function
    | Json.Num f -> Int (int_of_float f)
    | Json.Str s -> Str s
    | _ -> raise (Malformed "attr value")

  let attrs_of_json j =
    match Json.member "attrs" j with
    | None -> []
    | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, attr_of_json v)) kvs
    | Some _ -> raise (Malformed "attrs")

  let rec span_of_json j =
    let get key =
      match Json.member key j with
      | Some v -> v
      | None -> raise (Malformed ("span missing field " ^ key))
    in
    let name = match get "name" with Json.Str s -> s | _ -> raise (Malformed "span name") in
    let start =
      match Json.member "start_ms" j with
      | None -> 0.0
      | Some (Json.Num f) -> f /. 1000.0
      | Some _ -> raise (Malformed "span start_ms")
    in
    let duration =
      match get "duration_ms" with
      | Json.Num f -> f /. 1000.0
      | _ -> raise (Malformed "span duration_ms")
    in
    let children =
      match get "children" with
      | Json.Arr xs -> List.map span_of_json xs
      | _ -> raise (Malformed "span children")
    in
    { name; start; duration; attrs = attrs_of_json j; children }

  let of_json_value j =
    let spans =
      match Json.member "spans" j with
      | Some (Json.Arr xs) -> List.map span_of_json xs
      | _ -> raise (Malformed "report missing spans")
    in
    let counters =
      match Json.member "counters" j with
      | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match v with
            | Json.Num f -> (k, int_of_float f)
            | _ -> raise (Malformed "counter value"))
          kvs
      | _ -> raise (Malformed "report missing counters")
    in
    let histogram_of_json h =
      let num key =
        match Json.member key h with
        | Some (Json.Num f) -> f
        | _ -> raise (Malformed ("histogram missing field " ^ key))
      in
      {
        count = int_of_float (num "count");
        mean = num "mean_ms" /. 1000.0;
        p50 = num "p50_ms" /. 1000.0;
        p90 = num "p90_ms" /. 1000.0;
        p95 = num "p95_ms" /. 1000.0;
        p99 = num "p99_ms" /. 1000.0;
        max = num "max_ms" /. 1000.0;
      }
    in
    let histograms =
      (* absent in reports written before the serving layer existed *)
      match Json.member "histograms" j with
      | None -> []
      | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, histogram_of_json v)) kvs
      | Some _ -> raise (Malformed "report histograms")
    in
    let profile_of_json p =
      let label =
        match Json.member "label" p with
        | Some (Json.Str s) -> s
        | _ -> raise (Malformed "profile label")
      in
      let counters =
        match Json.member "counters" p with
        | Some (Json.Obj kvs) ->
          List.map
            (fun (k, v) ->
              match v with
              | Json.Num f -> (k, int_of_float f)
              | _ -> raise (Malformed "profile counter value"))
            kvs
        | _ -> raise (Malformed "profile counters")
      in
      let duration =
        match Json.member "duration_ms" p with
        | Some (Json.Num f) -> f /. 1000.0
        | _ -> raise (Malformed "profile duration_ms")
      in
      {
        profile_label = label;
        profile_attrs = attrs_of_json p;
        profile_counters = counters;
        profile_duration = duration;
      }
    in
    let profiles =
      (* absent in reports written before scoped collection existed *)
      match Json.member "profiles" j with
      | None -> []
      | Some (Json.Arr ps) -> List.map profile_of_json ps
      | Some _ -> raise (Malformed "report profiles")
    in
    { spans; counters; histograms; profiles }

  let of_json s =
    match Json.of_string s with
    | j -> of_json_value j
    | exception Json.Parse_failure { pos; msg } ->
      raise (Malformed (Printf.sprintf "JSON syntax at %d: %s" pos msg))
end

(* ------------------------------------------------------------------ *)

(* Chrome trace-event export: one complete ("ph":"X") event per span,
   loadable in Perfetto / chrome://tracing.  Timestamps are microseconds
   relative to the earliest span start, so the trace starts at t=0
   regardless of the clock's epoch. *)
module Trace = struct
  let event ~t0 ~name ~start ~duration ~attrs =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str "X");
         ("ts", Json.Num (Float.max 0.0 (start -. t0) *. 1e6));
         ("dur", Json.Num (duration *. 1e6));
         ("pid", Json.Num 1.0);
         ("tid", Json.Num 1.0);
       ]
      @
      if attrs = [] then []
      else [ ("args", Report.json_of_attrs attrs) ])

  let wrap events =
    Json.Obj
      [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]

  (* earliest nonzero start in the span forest; 0 for pre-PR-5 reports *)
  let earliest_start spans =
    let rec go acc (s : Report.span) =
      let acc =
        if s.Report.start > 0.0 && (acc = 0.0 || s.Report.start < acc) then s.Report.start
        else acc
      in
      List.fold_left go acc s.Report.children
    in
    List.fold_left go 0.0 spans

  let of_report (r : Report.t) =
    let t0 = earliest_start r.Report.spans in
    let events = ref [] in
    let rec emit (s : Report.span) =
      (* parents first, so the enclosing slice appears before its
         children; Perfetto nests by (pid, tid, ts, dur) containment *)
      events :=
        event ~t0 ~name:s.Report.name ~start:s.Report.start ~duration:s.Report.duration
          ~attrs:s.Report.attrs
        :: !events;
      List.iter emit s.Report.children
    in
    List.iter emit r.Report.spans;
    wrap (List.rev !events)

  let event_count = function
    | Json.Obj kvs -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (Json.Arr evs) -> List.length evs
      | _ -> 0)
    | _ -> 0

  (* Streaming sink: subscribes to span completion, so a long run can be
     exported without retaining anything beyond the event list.  Spans
     complete children-before-parents; the trace-event format does not
     care about event order. *)
  type sink = { mutable events : Json.t list (* reversed *); mutable t0 : float }

  let start_stream () =
    let s = { events = []; t0 = 0.0 } in
    Span.set_completion_hook
      (Some
        (fun (n : Span.node) ->
          if s.t0 = 0.0 || n.Span.start < s.t0 then s.t0 <- n.Span.start;
          s.events <-
            (* t0 is normalised at [stop_stream]; record absolute µs here *)
            event ~t0:0.0 ~name:n.Span.span_name ~start:n.Span.start
              ~duration:n.Span.duration ~attrs:(List.rev n.Span.attrs)
            :: s.events));
    s

  let stop_stream s =
    Span.set_completion_hook None;
    let shift = s.t0 *. 1e6 in
    let rebase = function
      | Json.Obj kvs ->
        Json.Obj
          (List.map
             (function
               | "ts", Json.Num ts -> ("ts", Json.Num (Float.max 0.0 (ts -. shift)))
               | kv -> kv)
             kvs)
      | j -> j
    in
    wrap (List.rev_map rebase s.events)
end

(* ------------------------------------------------------------------ *)

(* OpenMetrics text exposition (counters and histogram summaries), for
   scraping the serving layer.  Rendered from a captured report so the
   exposition and the JSON stats describe the same instant. *)
module Openmetrics = struct
  let sanitize name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name

  let float_str f = Json.number_to_string f

  type summary = {
    metric : string;
    labels : (string * string) list;
    quantiles : (string * float) list;
    sum : float;
    count : int;
  }

  let escape_label v =
    let buf = Buffer.create (String.length v + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let render_labels labels =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v)) labels)

  (* # HELP text shares the label-value escapes minus the quote (help is
     not quoted in the exposition format). *)
  let escape_help v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let family buf m kind help =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m kind)

  type gauge = {
    gname : string;
    ghelp : string;
    glabels : (string * string) list;
    gvalue : float;
  }

  let gauge ?(labels = []) ?help name v =
    let help =
      match help with Some h -> h | None -> Printf.sprintf "Gauge %s." name
    in
    { gname = name; ghelp = help; glabels = labels; gvalue = v }

  let render_gauges buf gauges =
    List.iter
      (fun g ->
        let m = "treequery_" ^ sanitize g.gname in
        family buf m "gauge" g.ghelp;
        let ls = render_labels g.glabels in
        let braces = if ls = "" then "" else "{" ^ ls ^ "}" in
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" m braces (float_str g.gvalue)))
      gauges

  (* labelled summaries (the telemetry layer's per-fingerprint sketches);
     one # TYPE line per metric name, then a series per label set *)
  let render_extra buf extras =
    let typed = Hashtbl.create 8 in
    List.iter
      (fun s ->
        let m = "treequery_" ^ sanitize s.metric ^ "_seconds" in
        if not (Hashtbl.mem typed m) then begin
          Hashtbl.add typed m ();
          family buf m "summary"
            (Printf.sprintf "Per-series latency summary %s (seconds)." s.metric)
        end;
        let ls = render_labels s.labels in
        List.iter
          (fun (q, v) ->
            let sep = if ls = "" then "" else "," in
            Buffer.add_string buf
              (Printf.sprintf "%s{%s%squantile=\"%s\"} %s\n" m ls sep q (float_str v)))
          s.quantiles;
        let braces = if ls = "" then "" else "{" ^ ls ^ "}" in
        Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" m braces s.count);
        Buffer.add_string buf (Printf.sprintf "%s_sum%s %s\n" m braces (float_str s.sum)))
      extras

  let render ?(gauges = []) ?(extra = []) (r : Report.t) =
    let buf = Buffer.create 1024 in
    render_gauges buf gauges;
    List.iter
      (fun (name, v) ->
        let m = "treequery_" ^ sanitize name in
        family buf m "counter"
          (Printf.sprintf "Cumulative count of %s events." name);
        Buffer.add_string buf (Printf.sprintf "%s_total %d\n" m v))
      r.Report.counters;
    List.iter
      (fun (name, (h : histogram_summary)) ->
        let m = "treequery_" ^ sanitize name ^ "_seconds" in
        family buf m "summary"
          (Printf.sprintf "Latency summary %s (seconds)." name);
        List.iter
          (fun (q, v) ->
            Buffer.add_string buf
              (Printf.sprintf "%s{quantile=\"%s\"} %s\n" m q (float_str v)))
          [ ("0.5", h.p50); ("0.9", h.p90); ("0.95", h.p95); ("0.99", h.p99) ];
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m h.count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" m (float_str (h.mean *. float_of_int h.count))))
      r.Report.histograms;
    render_extra buf extra;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)

(* Declarative complexity attestation: each bound names a counter that
   witnesses a paper claim and the input-size term it must scale against,
   with the claimed log-log slope.  `treequery attest` sweeps each bound's
   term, fits the observed slope and fails when it exceeds the claim
   beyond tolerance — turning the paper's complexity map (Fig. 7) into a
   CI regression gate. *)
module Bound = struct
  type t = {
    id : string;  (** stable identifier, e.g. ["datalog-grounding"] *)
    claim : string;  (** the theorem/figure being attested *)
    counter : string;  (** the witnessing counter *)
    term : string;  (** the input-size term swept, e.g. ["|D|"] *)
    exponent : float;  (** claimed log-log slope of counter vs term *)
  }

  let registry : t list ref = ref []

  let register ~id ~claim ~counter ~term ~exponent =
    match List.find_opt (fun b -> b.id = id) !registry with
    | Some existing -> existing
    | None ->
      let b = { id; claim; counter; term; exponent } in
      registry := b :: !registry;
      b

  let all () = List.rev !registry

  let find id = List.find_opt (fun b -> b.id = id) !registry

  (* Least-squares slope of log y against log x.  Points with a
     nonpositive coordinate are skipped (a counter that never fires is
     within any bound); fewer than two usable points fit slope 0. *)
  let fit_slope points =
    let pts =
      List.filter_map
        (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
        points
    in
    match pts with
    | [] | [ _ ] -> 0.0
    | _ ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-12 then 0.0 else ((n *. sxy) -. (sx *. sy)) /. denom
end
