(** Forward path patterns for streaming evaluation (Section 5).

    A forward path pattern is the streamable core of forward XPath: a
    chain of steps, each reached by [/] (Child) or [//] (Descendant) and
    optionally testing a label — e.g. [//a/b//c].  The first step's edge
    anchors the pattern at the root: [Child] means the root's children,
    [Descendant] anywhere below the root. *)

type edge = Child | Descendant

type step = { edge : edge; label : string option }

type t = step list
(** Nonempty; matched top-down. *)

val of_string : string -> t
(** Parse [//a/b//c]-style syntax ([*] for a wildcard).
    @raise Failure on syntax errors. *)

val to_string : t -> string

val length : t -> int

val to_xpath : t -> Xpath.Ast.path
(** The same query as a Core XPath expression (for the in-memory
    cross-check). *)

val of_xpath : Xpath.Ast.path -> t option
(** Recognise an XPath expression of the path-pattern shape (steps along
    [Child]/[Descendant]/[Descendant_or_self]-then-[Child] with only label
    qualifiers).  [None] otherwise. *)

val random :
  ?seed:int -> ?rng:Random.State.t -> length:int -> labels:string array -> unit -> t
(** Random pattern for tests/benchmarks.  An explicit [rng] takes
    precedence over [seed] and is advanced in place. *)
