module Event = Treekit.Event
module Nodeset = Treekit.Nodeset

type stats = { matches : int; peak_depth : int; events : int }

let c_events = Obs.Counter.make "sax_events"

let c_peak = Obs.Counter.make "stream_peak_depth"

type frame = { exact : int; acc : int }
(* [exact] bit i: the length-i pattern prefix is matched with step i at
   this node; [acc] bit i: matched at some ancestor-or-self.  Bit 0 is the
   empty prefix and is set exactly at the root, which anchors the pattern:
   a leading / extends bit 0 of [exact] (children of the root), a leading
   // extends bit 0 of [acc] (strict descendants of the root). *)

type state = {
  steps : Path_pattern.step array;
  mutable stack : frame list;
  mutable depth : int;
  mutable peak : int;
  mutable matches : int;
  mutable events : int;
  full : int;  (* the bit meaning "whole pattern matched" *)
  on_match : int -> unit;
}

let make pattern ~on_match =
  let steps = Array.of_list pattern in
  let k = Array.length steps in
  if k = 0 then invalid_arg "Path_matcher: empty pattern";
  if k > 61 then invalid_arg "Path_matcher: pattern too long (max 61 steps)";
  {
    steps;
    stack = [];
    depth = 0;
    peak = 0;
    matches = 0;
    events = 0;
    full = 1 lsl k;
    on_match;
  }

let push_event st ev =
  st.events <- st.events + 1;
  Obs.Counter.incr c_events;
  match ev with
  | Event.Open { node; label; _ } ->
    let frame =
      match st.stack with
      | [] -> { exact = 1; acc = 1 } (* the root anchors the pattern *)
      | parent :: _ ->
        let exact = ref 0 in
        Array.iteri
          (fun i0 (s : Path_pattern.step) ->
            let i = i0 + 1 in
            let label_ok = match s.label with None -> true | Some l -> l = label in
            let from =
              match s.edge with
              | Path_pattern.Child -> parent.exact
              | Path_pattern.Descendant -> parent.acc
            in
            if label_ok && from land (1 lsl (i - 1)) <> 0 then
              exact := !exact lor (1 lsl i))
          st.steps;
        { exact = !exact; acc = parent.acc lor !exact }
    in
    if frame.exact land st.full <> 0 then begin
      st.matches <- st.matches + 1;
      st.on_match node
    end;
    st.stack <- frame :: st.stack;
    st.depth <- st.depth + 1;
    if st.depth > st.peak then begin
      st.peak <- st.depth;
      Obs.Counter.record_max c_peak st.peak
    end
  | Event.Close _ -> (
    match st.stack with
    | [] -> invalid_arg "Path_matcher: unbalanced events"
    | _ :: rest ->
      st.stack <- rest;
      st.depth <- st.depth - 1)

let stats_of st = { matches = st.matches; peak_depth = st.peak; events = st.events }

(* reusable interface: one matcher allocation amortised over many
   documents (the standing-query index pools these per pass) *)
type t = state

let create pattern ~on_match = make pattern ~on_match

let reset st =
  st.stack <- [];
  st.depth <- 0;
  st.peak <- 0;
  st.matches <- 0;
  st.events <- 0

let push = push_event

let stats = stats_of

let feed pattern =
  let st = make pattern ~on_match:(fun _ -> ()) in
  ((fun ev -> push_event st ev), fun () -> stats_of st)

let run tree pattern ~on_match =
  let st = make pattern ~on_match in
  Event.iter tree (push_event st);
  stats_of st

let select tree pattern =
  let out = Nodeset.create (Treekit.Tree.size tree) in
  let (_ : stats) = run tree pattern ~on_match:(Nodeset.add out) in
  out

exception Found

let matches tree pattern =
  let st = make pattern ~on_match:(fun _ -> raise Found) in
  try
    Event.iter tree (push_event st);
    false
  with Found -> true
