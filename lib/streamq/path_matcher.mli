(** Streaming evaluation of forward path patterns (Section 5; Olteanu et
    al. [61, 62], transducer networks).

    The matcher consumes the SAX events of a document once, left to right,
    and selects the nodes matched by a {!Path_pattern}.  Its working
    memory is a stack with one small frame per open element — i.e.
    O(depth(tree) · |Q|) bits, independent of document size.  This meets
    (and, by the lower bound of [40] quoted in Section 7, cannot beat) the
    depth-linear memory bound for streaming XPath.

    Each stack frame holds two bitmasks over pattern prefixes: the
    prefixes matched {e exactly} at this node, and those matched at some
    ancestor-or-self (the "sticky" states that descendant edges may extend
    from arbitrarily far above). *)

type stats = {
  matches : int;  (** number of selected nodes *)
  peak_depth : int;  (** maximum number of live stack frames *)
  events : int;  (** events consumed *)
}

val run : Treekit.Tree.t -> Path_pattern.t -> on_match:(int -> unit) -> stats
(** Stream the tree's events through the matcher; [on_match] receives each
    selected node (at its [Open] event), in document order. *)

val select : Treekit.Tree.t -> Path_pattern.t -> Treekit.Nodeset.t
(** The selected node set (for cross-checks against {!Xpath.Eval}). *)

val matches : Treekit.Tree.t -> Path_pattern.t -> bool
(** Boolean filtering: does the document match at all? *)

val feed :
  Path_pattern.t ->
  (Treekit.Event.t -> unit) * (unit -> stats)
(** Incremental interface: [let push, finish = feed p in …] — push events
    one at a time (from any source), then read the statistics.  Matched
    nodes are counted in the stats. *)

(** {1 Reusable matcher state}

    [run]/[feed] allocate a fresh matcher per document.  A standing-query
    index matching every incoming document against the same pattern pools
    one matcher instead: [create] once, then [reset] + [push] per
    document.  [reset] restores exactly the post-[create] state
    (property-tested: reset ≡ fresh construction). *)

type t
(** Matcher state for one pattern; reusable across documents. *)

val create : Path_pattern.t -> on_match:(int -> unit) -> t
(** @raise Invalid_argument on an empty pattern or more than 61 steps. *)

val reset : t -> unit
(** Forget all per-document state (stack, counts, peak depth); the
    pattern and [on_match] callback are kept. *)

val push : t -> Treekit.Event.t -> unit
(** @raise Invalid_argument on unbalanced event streams. *)

val stats : t -> stats
