type edge = Child | Descendant

type step = { edge : edge; label : string option }

type t = step list

let of_string input =
  let error pos fmt = Treekit.Parse_error.raise_at pos fmt in
  let n = String.length input in
  let pos = ref 0 in
  let steps = ref [] in
  if n = 0 then error 0 "empty pattern";
  while !pos < n do
    let edge =
      if !pos + 1 < n && input.[!pos] = '/' && input.[!pos + 1] = '/' then begin
        pos := !pos + 2;
        Descendant
      end
      else if input.[!pos] = '/' then begin
        incr pos;
        Child
      end
      else if !pos = 0 then Descendant (* a bare leading name: anchor anywhere *)
      else error !pos "expected '/' or '//'"
    in
    let start = !pos in
    while
      !pos < n
      &&
      match input.[!pos] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | '*' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then error !pos "expected a step name or '*'";
    let word = String.sub input start (!pos - start) in
    let label = if word = "*" then None else Some word in
    steps := { edge; label } :: !steps
  done;
  List.rev !steps

let to_string p =
  String.concat ""
    (List.map
       (fun { edge; label } ->
         (match edge with Child -> "/" | Descendant -> "//")
         ^ match label with Some l -> l | None -> "*")
       p)

let length = List.length

let to_xpath p =
  let module A = Xpath.Ast in
  let module Ax = Treekit.Axis in
  let step_of { edge; label } =
    let quals = match label with Some l -> [ A.Lab l ] | None -> [] in
    match edge with
    | Child -> A.Step { axis = Ax.Child; quals }
    | Descendant -> A.Step { axis = Ax.Descendant; quals }
  in
  match p with
  | [] -> invalid_arg "Path_pattern.to_xpath: empty pattern"
  | first :: rest ->
    List.fold_left (fun acc s -> A.Seq (acc, step_of s)) (step_of first) rest

let of_xpath path =
  let module A = Xpath.Ast in
  let module Ax = Treekit.Axis in
  (* flatten Seq into a list of steps *)
  let rec flatten = function
    | A.Seq (a, b) -> flatten a @ flatten b
    | p -> [ p ]
  in
  let label_of quals =
    match quals with
    | [] -> Some None
    | [ A.Lab l ] -> Some (Some l)
    | _ -> None
  in
  let rec convert = function
    | [] -> Some []
    | A.Step { axis = Ax.Child; quals } :: rest -> (
      match label_of quals, convert rest with
      | Some label, Some tail -> Some ({ edge = Child; label } :: tail)
      | _ -> None)
    | A.Step { axis = Ax.Descendant; quals } :: rest -> (
      match label_of quals, convert rest with
      | Some label, Some tail -> Some ({ edge = Descendant; label } :: tail)
      | _ -> None)
    | A.Step { axis = Ax.Descendant_or_self; quals = [] }
      :: A.Step { axis = Ax.Child; quals }
      :: rest -> (
      (* the //-desugaring shape *)
      match label_of quals, convert rest with
      | Some label, Some tail -> Some ({ edge = Descendant; label } :: tail)
      | _ -> None)
    | _ -> None
  in
  match convert (flatten path) with Some ([] : t) -> None | other -> other

let random ?(seed = 3) ?rng ~length ~labels () =
  let rng = match rng with Some r -> r | None -> Random.State.make [| seed |] in
  List.init length (fun _ ->
      {
        edge = (if Random.State.bool rng then Child else Descendant);
        label =
          (if Random.State.int rng 4 = 0 then None
           else Some labels.(Random.State.int rng (Array.length labels)));
      })
