module Event = Treekit.Event
module Twig = Actree.Twigjoin

type stats = { matched : bool; match_count : int; peak_depth : int; events : int }

(* [Obs.Counter.make] deduplicates by name, so these are the same logical
   counters Path_matcher bumps *)
let c_events = Obs.Counter.make "sax_events"

let c_peak = Obs.Counter.make "stream_peak_depth"

(* pattern nodes are numbered in pre-order; per pattern node we keep its
   label and its children with edges *)
type pnode = { label : string option; kids : (Twig.edge * int) list }

let index_pattern (pattern : Twig.node) =
  let nodes = ref [] in
  let counter = ref 0 in
  let rec visit (n : Twig.node) =
    let id = !counter in
    incr counter;
    let kids = List.map (fun (e, c) -> (e, visit c)) n.children in
    nodes := (id, { label = n.label; kids }) :: !nodes;
    id
  in
  let root = visit pattern in
  let arr = Array.make !counter { label = None; kids = [] } in
  List.iter (fun (id, pn) -> arr.(id) <- pn) !nodes;
  (arr, root)

type frame = {
  mutable child_sat : int;  (** q matched exactly at some child closed so far *)
  mutable desc_sat : int;  (** q matched at some strict descendant *)
}

type state = {
  pattern : pnode array;
  root_bit : int;
  anchored : bool;  (** pattern root may only match the document root *)
  mutable stack : (string * frame) list;  (** (label of open node, frame) *)
  mutable depth : int;
  mutable peak : int;
  mutable count : int;
  mutable events : int;
}

let make ?(anchored = false) pattern =
  let arr, root = index_pattern pattern in
  if Array.length arr > 62 then invalid_arg "Twig_matcher: pattern too large";
  {
    pattern = arr;
    root_bit = 1 lsl root;
    anchored;
    stack = [];
    depth = 0;
    peak = 0;
    count = 0;
    events = 0;
  }

let push_event st ev =
  st.events <- st.events + 1;
  Obs.Counter.incr c_events;
  match ev with
  | Event.Open { label; _ } ->
    st.stack <- (label, { child_sat = 0; desc_sat = 0 }) :: st.stack;
    st.depth <- st.depth + 1;
    if st.depth > st.peak then begin
      st.peak <- st.depth;
      Obs.Counter.record_max c_peak st.peak
    end
  | Event.Close { label; _ } -> (
    match st.stack with
    | [] -> invalid_arg "Twig_matcher: unbalanced events"
    | (open_label, frame) :: rest ->
      assert (open_label = label);
      (* which pattern subtrees match at this node? *)
      let sat = ref 0 in
      Array.iteri
        (fun q pn ->
          let label_ok = match pn.label with None -> true | Some l -> l = label in
          if
            label_ok
            && List.for_all
                 (fun (e, q') ->
                   let mask =
                     match (e : Twig.edge) with
                     | Twig.Child_edge -> frame.child_sat
                     | Twig.Descendant_edge -> frame.child_sat lor frame.desc_sat
                   in
                   mask land (1 lsl q') <> 0)
                 pn.kids
          then sat := !sat lor (1 lsl q))
        st.pattern;
      if !sat land st.root_bit <> 0 && ((not st.anchored) || rest = []) then
        st.count <- st.count + 1;
      st.stack <- rest;
      st.depth <- st.depth - 1;
      (match rest with
      | [] -> ()
      | (_, parent) :: _ ->
        parent.child_sat <- parent.child_sat lor !sat;
        parent.desc_sat <- parent.desc_sat lor frame.child_sat lor frame.desc_sat))

let stats_of st =
  { matched = st.count > 0; match_count = st.count; peak_depth = st.peak; events = st.events }

(* reusable interface: the pattern indexing ([index_pattern]) is paid once
   and one matcher is pooled across documents by the standing-query
   index *)
type t = state

let create ?anchored pattern = make ?anchored pattern

let reset st =
  st.stack <- [];
  st.depth <- 0;
  st.peak <- 0;
  st.count <- 0;
  st.events <- 0

let push = push_event

let stats = stats_of

let feed ?anchored pattern =
  let st = make ?anchored pattern in
  ((fun ev -> push_event st ev), fun () -> stats_of st)

let run ?anchored tree pattern =
  let st = make ?anchored pattern in
  Event.iter tree (push_event st);
  stats_of st

let matches ?anchored tree pattern = (run ?anchored tree pattern).matched
