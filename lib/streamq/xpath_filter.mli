(** Streaming Boolean evaluation of conjunctive forward Core XPath — path
    expressions {e with qualifiers} against event streams (Section 5; the
    scenario of Olteanu et al. [61], "An Evaluation of Regular Path
    Expressions with Qualifiers against XML Streams").

    The supported fragment: conjunctive (no [∪]/[or]/[not]) expressions
    whose axes are [child], [descendant] and [descendant-or-self], with
    label tests and nested path qualifiers of the same shape — e.g.
    [//open_auction[bidder//increase]/seller].  Such an expression is a
    twig pattern anchored at the document root, so one O(depth·|Q|)-memory
    bottom-up pass ({!Twig_matcher}) decides whether the document
    matches. *)

val twig_of : Xpath.Ast.path -> Actree.Twigjoin.node option
(** The expression as a twig whose root stands for the document root
    (match with [~anchored:true]).  [None] outside the fragment. *)

val supported : Xpath.Ast.path -> bool

val matches : Treekit.Tree.t -> Xpath.Ast.path -> bool option
(** Streaming Boolean answer: [Some b] iff the fragment applies, with
    [b ⇔ Eval.query t p ≠ ∅] (property-tested).  One pass, O(depth·|Q|)
    memory. *)

val feed :
  Xpath.Ast.path -> ((Treekit.Event.t -> unit) * (unit -> bool)) option
(** Incremental interface for external event sources. *)
