module A = Xpath.Ast
module Axis = Treekit.Axis
module Twig = Actree.Twigjoin

exception Outside_fragment

(* Build the children list of a twig node from a path continuation: the
   path [step/rest] hangs the twig of [step…rest] under the current node.
   A step contributes its own twig node (label from a [Lab] qualifier if
   present, remaining qualifiers as extra children). *)
let rec twig_children path : (Twig.edge * Twig.node) list =
  match path with
  | A.Union _ -> raise Outside_fragment
  | A.Seq (p1, p2) -> (
    (* associate to the right: find the first step of p1 *)
    match p1 with
    | A.Step _ -> attach p1 (Some p2)
    | A.Seq (a, b) -> twig_children (A.Seq (a, A.Seq (b, p2)))
    | A.Union _ -> raise Outside_fragment)
  | A.Step _ -> attach path None

and attach step rest =
  match step with
  | A.Step { axis; quals } ->
    let edge =
      match axis with
      | Axis.Child -> Twig.Child_edge
      | Axis.Descendant -> Twig.Descendant_edge
      | Axis.Descendant_or_self ->
        (* only as the [//] desugaring: descendant-or-self::* followed by a
           child step ≡ a descendant step; standalone dos steps with
           qualifiers or at the end are outside the fragment *)
        raise Outside_fragment
      | _ -> raise Outside_fragment
    in
    let label, extra_quals =
      List.fold_left
        (fun (label, extras) q ->
          match q with
          | A.Lab l -> (
            match label with
            | None -> (Some l, extras)
            | Some l' when l' = l -> (label, extras)
            | Some _ -> raise Outside_fragment (* two different labels: unsat,
                                                  not expressible as a twig *))
          | A.Exists p -> (label, p :: extras)
          | A.And (q1, q2) ->
            (* flatten: treat as two qualifiers *)
            let label, extras = collect (label, extras) q1 in
            collect (label, extras) q2
          | A.Or _ | A.Not _ -> raise Outside_fragment)
        (None, []) quals
    in
    let qual_children = List.concat_map twig_children (List.rev extra_quals) in
    let rest_children = match rest with None -> [] | Some r -> twig_children r in
    [ (edge, { Twig.label; children = qual_children @ rest_children }) ]
  | A.Seq _ | A.Union _ -> assert false

and collect (label, extras) q =
  match q with
  | A.Lab l -> (
    match label with
    | None -> (Some l, extras)
    | Some l' when l' = l -> (label, extras)
    | Some _ -> raise Outside_fragment)
  | A.Exists p -> (label, p :: extras)
  | A.And (q1, q2) -> collect (collect (label, extras) q1) q2
  | A.Or _ | A.Not _ -> raise Outside_fragment

(* handle the [//] desugaring shape: Seq(dos-star, p) at the top or inside
   sequences — normalise Seq(Step dos [], next) into a Descendant edge *)
let rec normalise path =
  match path with
  | A.Seq (A.Step { axis = Axis.Descendant_or_self; quals = [] }, p) -> (
    match normalise p with
    | A.Step { axis = Axis.Child; quals } -> A.Step { axis = Axis.Descendant; quals }
    | A.Seq (A.Step { axis = Axis.Child; quals }, rest) ->
      A.Seq (A.Step { axis = Axis.Descendant; quals }, rest)
    | _ -> raise Outside_fragment)
  | A.Seq (p1, p2) -> A.Seq (normalise p1, normalise p2)
  | A.Step { axis; quals } ->
    A.Step { axis; quals = List.map normalise_qual quals }
  | A.Union _ -> raise Outside_fragment

and normalise_qual = function
  | A.Exists p -> A.Exists (normalise p)
  | A.And (a, b) -> A.And (normalise_qual a, normalise_qual b)
  | (A.Lab _ | A.Or _ | A.Not _) as q -> q

(* right-associate sequences so [normalise] and [twig_children] always see
   a step at the head *)
let rec reassoc = function
  | A.Seq (A.Seq (a, b), c) -> reassoc (A.Seq (a, A.Seq (b, c)))
  | A.Seq (a, b) -> A.Seq (reassoc a, reassoc b)
  | A.Step { axis; quals } -> A.Step { axis; quals = List.map reassoc_qual quals }
  | A.Union _ -> raise Outside_fragment

and reassoc_qual = function
  | A.Exists p -> A.Exists (reassoc p)
  | A.And (a, b) -> A.And (reassoc_qual a, reassoc_qual b)
  | (A.Lab _ | A.Or _ | A.Not _) as q -> q

let twig_of path =
  match
    let children = twig_children (normalise (reassoc path)) in
    { Twig.label = None; children }
  with
  | twig -> Some twig
  | exception Outside_fragment -> None

let supported path = twig_of path <> None

let matches tree path =
  Option.map (fun twig -> Twig_matcher.matches ~anchored:true tree twig) (twig_of path)

let feed path =
  Option.map
    (fun twig ->
      let push, stats = Twig_matcher.feed ~anchored:true twig in
      (push, fun () -> (stats ()).Twig_matcher.matched))
    (twig_of path)
