(* Subscriptions are stored as matcher factories so path patterns and
   qualified-XPath twigs mix freely in one engine. *)
type factory = unit -> (Treekit.Event.t -> unit) * (unit -> bool)

type t = { mutable subs : factory list (* reversed *); mutable count : int }

let create () = { subs = []; count = 0 }

let add t factory =
  t.subs <- factory :: t.subs;
  let id = t.count in
  t.count <- t.count + 1;
  id

let subscribe t p =
  add t (fun () ->
      let push, finish = Path_matcher.feed p in
      (push, fun () -> (finish ()).Path_matcher.matches > 0))

let subscribe_xpath t p =
  Option.map
    (fun twig ->
      add t (fun () ->
          let push, finish = Twig_matcher.feed ~anchored:true twig in
          (push, fun () -> (finish ()).Twig_matcher.matched)))
    (Xpath_filter.twig_of p)

let subscription_count t = t.count

let match_events t events =
  Obs.Span.with_ "streamq:match-events" (fun () ->
      let matchers = Array.of_list (List.rev_map (fun f -> f ()) t.subs) in
      (* rev_map reverses the reversed list: subscription order *)
      Seq.iter (fun ev -> Array.iter (fun (push, _) -> push ev) matchers) events;
      let out = ref [] in
      for i = Array.length matchers - 1 downto 0 do
        let _, matched = matchers.(i) in
        if matched () then out := i :: !out
      done;
      !out)

let match_document t tree = match_events t (Treekit.Event.to_seq tree)
