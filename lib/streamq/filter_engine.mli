(** Selective dissemination of information (SDI): filtering a document
    stream against many subscriber queries at once (Section 1's stream
    processing / selective data dissemination application; XFilter/YFilter
    scenario).

    Subscriptions are forward path patterns or qualified conjunctive
    forward XPath expressions; one pass over the event stream of each
    incoming document decides which subscriptions match.  Memory is
    O(depth · Σ|Qᵢ|). *)

type t

val create : unit -> t

val subscribe : t -> Path_pattern.t -> int
(** Register a pattern; returns its subscription id (0, 1, …). *)

val subscribe_xpath : t -> Xpath.Ast.path -> int option
(** Register a conjunctive forward XPath query with qualifiers
    ({!Xpath_filter}'s fragment); [None] if outside the fragment. *)

val subscription_count : t -> int

val match_document : t -> Treekit.Tree.t -> int list
(** Ids of the subscriptions the document matches, ascending.  The
    document's events are scanned once per call (all subscriptions are
    advanced together). *)

val match_events : t -> Treekit.Event.t Seq.t -> int list
(** Same, from a raw event sequence. *)
