(** Streaming Boolean matching of twig patterns.

    Evaluates a {!Actree.Twigjoin} tree pattern against the event stream
    bottom-up: at each [Close] event the matcher knows, for every pattern
    node q, whether the pattern subtree rooted at q matches below (or at)
    the closing tree node, and propagates two bitmask summaries (matched
    at some child / at some strict descendant) into the parent's frame.
    Memory is O(depth · |pattern|) bits — the streaming twig counterpart
    of the depth lower bound discussion in Section 7. *)

type stats = {
  matched : bool;  (** does the pattern match anywhere in the document? *)
  match_count : int;  (** number of tree nodes at which the pattern root matches *)
  peak_depth : int;
  events : int;
}

val run : ?anchored:bool -> Treekit.Tree.t -> Actree.Twigjoin.node -> stats
(** With [~anchored:true] the pattern root may only match the document
    root (used for XPath expressions starting with a [child] step). *)

val matches : ?anchored:bool -> Treekit.Tree.t -> Actree.Twigjoin.node -> bool

val feed :
  ?anchored:bool -> Actree.Twigjoin.node -> (Treekit.Event.t -> unit) * (unit -> stats)
(** Incremental interface for external event sources. *)

(** {1 Reusable matcher state}

    Pattern indexing is paid once at [create]; [reset] + [push] then
    match any number of documents with the one allocation (the
    standing-query index pools these per matching pass).  [reset]
    restores exactly the post-[create] state (property-tested). *)

type t
(** Matcher state for one twig pattern; reusable across documents. *)

val create : ?anchored:bool -> Actree.Twigjoin.node -> t
(** @raise Invalid_argument on patterns with more than 62 nodes. *)

val reset : t -> unit
(** Forget all per-document state; pattern index and [anchored] kept. *)

val push : t -> Treekit.Event.t -> unit
(** @raise Invalid_argument on unbalanced event streams. *)

val stats : t -> stats
