(** Propositional Horn-SAT and Minoux's linear-time algorithm
    (Figure 3 of the paper; Minoux's LTUR, Information Processing Letters
    1988).

    A definite Horn formula is a conjunction of rules
    [p ← q₁, …, q_k] over propositional variables [0 … nvars-1]; a rule
    with an empty body is a fact.  {!solve} computes the least model — the
    set of derivable variables — in time linear in the total size of the
    formula, by unit resolution driven by a queue, exactly as in Figure 3:
    each rule keeps a count [size] of its not-yet-derived body atoms, each
    variable an occurrence list [rules] of the rules it appears in the body
    of, and deriving a variable decrements the counts of those rules.

    Goal clauses [← q₁, …, q_k] (headless) make the formula a general Horn
    formula; it is satisfiable iff no goal clause has all its body atoms in
    the least model.

    The module exposes the algorithm's initial data-structure state
    ({!init_state}) and the derivation order ({!solve_order}) so that the
    paper's worked Example 3.3 can be checked step by step. *)

type t
(** A mutable Horn formula under construction. *)

type rule_id = int
(** Rules are numbered 1, 2, … in insertion order (1-based, to match the
    paper's r₁, r₂, …). *)

val create : nvars:int -> t
(** A formula over variables [0 … nvars-1] with no rules yet. *)

val nvars : t -> int

val add_rule : t -> head:int -> body:int list -> rule_id
(** [add_rule f ~head ~body] adds the definite clause [head ← body] and
    returns its 1-based id.
    @raise Invalid_argument on out-of-range variables. *)

val add_goal : t -> body:int list -> unit
(** Add the goal (negative) clause [← body]. *)

val rule_count : t -> int

val size_of_formula : t -> int
(** Total number of atom occurrences — the input-size measure ‖Φ‖ in which
    the algorithm is linear. *)

val solve : t -> bool array
(** The least model: [m.(p)] is true iff [p] is derivable.  Time
    O(‖Φ‖).  (Goal clauses are ignored here.) *)

val solve_order : t -> int list
(** The variables in the order Minoux's algorithm outputs
    ["p is true"] — the queue-processing order of Figure 3. *)

val satisfiable : t -> bool
(** True iff the formula including its goal clauses is satisfiable, i.e.
    no goal clause is fully contained in the least model. *)

(** The initialisation state of Figure 3, for inspection. *)
type state = {
  size : (rule_id * int) list;  (** per rule: number of body atoms *)
  head : (rule_id * int) list;  (** per rule: head variable *)
  rules : (int * rule_id list) list;
      (** per variable occurring in some body: the rules it occurs in *)
  queue : int list;  (** heads of facts, in insertion order *)
}

val init_state : t -> state
(** The data structures exactly as built by the initialisation phase of
    Figure 3 (before the main loop runs). *)

val solve_brute : t -> bool array
(** Reference implementation: naive fixpoint iteration, O(‖Φ‖²).
    Used by tests to validate {!solve}. *)
