type rule_id = int

(* [c_props] counts body-atom decrements in the main loop — exactly the
   work term of Minoux's linear-time bound (Figure 3): its final value is
   at most the number of atom occurrences in the formula.  [c_units] counts
   variables derived (queue pops). *)
let c_props = Obs.Counter.make "hornsat_unit_props"

let c_units = Obs.Counter.make "hornsat_units_derived"

type t = {
  nvars : int;
  mutable heads : int list;  (** reverse order of rule heads *)
  mutable bodies : int list list;  (** reverse order of rule bodies *)
  mutable goals : int list list;
  mutable nrules : int;
  mutable atom_occurrences : int;
}

let create ~nvars =
  if nvars < 0 then invalid_arg "Hornsat.create: negative nvars";
  { nvars; heads = []; bodies = []; goals = []; nrules = 0; atom_occurrences = 0 }

let nvars f = f.nvars

let check_var f p =
  if p < 0 || p >= f.nvars then invalid_arg "Hornsat: variable out of range"

let add_rule f ~head ~body =
  check_var f head;
  List.iter (check_var f) body;
  f.heads <- head :: f.heads;
  f.bodies <- body :: f.bodies;
  f.nrules <- f.nrules + 1;
  f.atom_occurrences <- f.atom_occurrences + 1 + List.length body;
  f.nrules

let add_goal f ~body =
  List.iter (check_var f) body;
  f.goals <- body :: f.goals;
  f.atom_occurrences <- f.atom_occurrences + List.length body

let rule_count f = f.nrules

let size_of_formula f = f.atom_occurrences

(* The data structures of Figure 3, built from the recorded rules. *)
type arrays = {
  arr_head : int array;  (** head[i], 1-based rule ids (slot 0 unused) *)
  arr_size : int array;  (** size[i] = number of body atoms *)
  arr_rules : rule_id list array;  (** rules[p] = rules with p in the body *)
  initial_queue : int list;
}

let build_arrays f =
  let l = f.nrules in
  let arr_head = Array.make (l + 1) (-1)
  and arr_size = Array.make (l + 1) 0
  and arr_rules = Array.make f.nvars [] in
  let q = ref [] in
  let heads = Array.of_list (List.rev f.heads)
  and bodies = Array.of_list (List.rev f.bodies) in
  for i0 = 0 to l - 1 do
    let i = i0 + 1 in
    arr_head.(i) <- heads.(i0);
    arr_size.(i) <- List.length bodies.(i0);
    List.iter (fun p -> arr_rules.(p) <- i :: arr_rules.(p)) bodies.(i0);
    if arr_size.(i) = 0 then q := heads.(i0) :: !q
  done;
  (* occurrence lists were built backwards; restore insertion order *)
  Array.iteri (fun p rs -> arr_rules.(p) <- List.rev rs) arr_rules;
  { arr_head; arr_size; arr_rules; initial_queue = List.rev !q }

type state = {
  size : (rule_id * int) list;
  head : (rule_id * int) list;
  rules : (int * rule_id list) list;
  queue : int list;
}

let init_state f =
  let a = build_arrays f in
  let size = List.init f.nrules (fun i0 -> (i0 + 1, a.arr_size.(i0 + 1)))
  and head = List.init f.nrules (fun i0 -> (i0 + 1, a.arr_head.(i0 + 1)))
  and rules =
    List.filteri (fun _ (_, rs) -> rs <> [])
      (List.init f.nvars (fun p -> (p, a.arr_rules.(p))))
  in
  { size; head; rules; queue = a.initial_queue }

(* The main loop of Figure 3. *)
let run f =
  let a = build_arrays f in
  let truth = Array.make f.nvars false in
  let order = ref [] in
  let q = Queue.create () in
  let enqueue p =
    if not truth.(p) then begin
      truth.(p) <- true;
      Queue.add p q
    end
  in
  List.iter enqueue a.initial_queue;
  while not (Queue.is_empty q) do
    let p = Queue.take q in
    Obs.Counter.incr c_units;
    order := p :: !order;
    List.iter
      (fun i ->
        Obs.Counter.incr c_props;
        a.arr_size.(i) <- a.arr_size.(i) - 1;
        if a.arr_size.(i) = 0 then enqueue a.arr_head.(i))
      a.arr_rules.(p)
  done;
  (truth, List.rev !order)

let solve f = fst (run f)

let solve_order f = snd (run f)

let satisfiable f =
  let m = solve f in
  not (List.exists (fun body -> List.for_all (fun p -> m.(p)) body) f.goals)

let solve_brute f =
  let heads = Array.of_list (List.rev f.heads)
  and bodies = Array.of_list (List.rev f.bodies) in
  let truth = Array.make f.nvars false in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to f.nrules - 1 do
      if (not truth.(heads.(i))) && List.for_all (fun p -> truth.(p)) bodies.(i) then begin
        truth.(heads.(i)) <- true;
        changed := true
      end
    done
  done;
  truth
