module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
module R = Relkit.Relation
module Ops = Relkit.Ops
open Formula

(* the elementary-operation witness of the FO² embedding's O(n²·|Q|)
   bound: every row a subformula table materialises counts once, so the
   cost model (and the serving layer's observed-cost telemetry) sees the
   quadratic intermediates that make this strategy a last resort *)
let c_rows = Obs.Counter.make "fo2_rows_materialised"

(* tables: satisfying assignments with named columns *)
type table = { cols : var list; rel : R.t }

let position cols v =
  let rec go i = function
    | [] -> None
    | w :: _ when w = v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 cols

let domain_rel n =
  let r = R.create ~name:"dom" ~arity:1 () in
  for v = 0 to n - 1 do
    R.add r [| v |]
  done;
  Obs.Counter.add c_rows n;
  r

(* natural join of two tables *)
let join t1 t2 =
  let on =
    List.filteri (fun _ _ -> true) t1.cols
    |> List.mapi (fun i v -> (i, position t2.cols v))
    |> List.filter_map (fun (i, j) -> Option.map (fun j -> (i, j)) j)
  in
  let joined = if on = [] then Ops.product t1.rel t2.rel else Ops.equijoin ~on t1.rel t2.rel in
  Obs.Counter.add c_rows (R.cardinality joined);
  let n1 = List.length t1.cols in
  let fresh_positions =
    List.filteri
      (fun j _ -> not (List.exists (fun (_, j') -> j' = j) on))
      (List.init (List.length t2.cols) Fun.id)
  in
  let cols = t1.cols @ List.map (List.nth t2.cols) fresh_positions in
  let keep = List.init n1 Fun.id @ List.map (fun j -> n1 + j) fresh_positions in
  { cols; rel = Ops.project keep joined }

(* extend a table with the missing columns, each ranging over the domain *)
let cylindrify n target_cols t =
  let missing = List.filter (fun v -> position t.cols v = None) target_cols in
  let extended =
    List.fold_left (fun acc v -> join acc { cols = [ v ]; rel = domain_rel n }) t missing
  in
  (* reorder to target_cols *)
  let positions = List.filter_map (position extended.cols) target_cols in
  { cols = target_cols; rel = Ops.project positions extended.rel }

let full_table n cols =
  cylindrify n cols { cols = []; rel = R.of_rows ~arity:0 [ [||] ] }

let rec eval_table tree phi =
  let n = Tree.size tree in
  match phi with
  | True_ -> { cols = []; rel = R.of_rows ~arity:0 [ [||] ] }
  | False_ -> { cols = []; rel = R.create ~arity:0 () }
  | Lab (l, x) ->
    let r = R.create ~arity:1 () in
    List.iter (fun v -> R.add r [| v |]) (Tree.nodes_with_label tree l);
    Obs.Counter.add c_rows (R.cardinality r);
    { cols = [ x ]; rel = r }
  | Eq (x, y) when x = y -> { cols = [ x ]; rel = domain_rel n }
  | Eq (x, y) ->
    let r = R.create ~arity:2 () in
    for v = 0 to n - 1 do
      R.add r [| v; v |]
    done;
    Obs.Counter.add c_rows n;
    { cols = [ x; y ]; rel = r }
  | Axis (a, x, y) when x = y ->
    let r = R.create ~arity:1 () in
    for v = 0 to n - 1 do
      if Axis.mem tree a v v then R.add r [| v |]
    done;
    Obs.Counter.add c_rows n;
    { cols = [ x ]; rel = r }
  | Axis (a, x, y) ->
    let r = R.create ~arity:2 () in
    for u = 0 to n - 1 do
      Axis.fold tree a u (fun v () -> R.add r [| u; v |]) ()
    done;
    Obs.Counter.add c_rows (R.cardinality r);
    { cols = [ x; y ]; rel = r }
  | And (f, g) -> join (eval_table tree f) (eval_table tree g)
  | Or (f, g) ->
    let tf = eval_table tree f and tg = eval_table tree g in
    let cols = free_vars phi in
    let tf = cylindrify n cols tf and tg = cylindrify n cols tg in
    { cols; rel = Ops.union tf.rel tg.rel }
  | Not f ->
    let tf = eval_table tree f in
    let cols = free_vars f in
    let tf = cylindrify n cols tf in
    let full = full_table n cols in
    { cols; rel = Ops.diff full.rel tf.rel }
  | Exists (x, f) ->
    let tf = eval_table tree f in
    (match position tf.cols x with
    | None ->
      (* x does not occur free below: ∃x φ ≡ φ (nonempty domain) *)
      tf
    | Some i ->
      let keep =
        List.filteri (fun j _ -> j <> i) (List.init (List.length tf.cols) Fun.id)
      in
      {
        cols = List.filteri (fun j _ -> j <> i) tf.cols;
        rel = Ops.project keep tf.rel;
      })
  | Forall (x, f) -> eval_table tree (Not (Exists (x, Not f)))

let eval tree phi =
  let t = eval_table tree phi in
  (* align with the canonical free-variable order *)
  let cols = free_vars phi in
  let t = cylindrify (Tree.size tree) cols t in
  (cols, t.rel)

let holds tree phi =
  if not (is_sentence phi) then invalid_arg "Folang.Eval.holds: free variables";
  let _, rel = eval tree phi in
  R.cardinality rel > 0

let unary tree phi =
  match free_vars phi with
  | [ _ ] ->
    let _, rel = eval tree phi in
    let out = Nodeset.create (Tree.size tree) in
    R.iter (fun row -> Nodeset.add out row.(0)) rel;
    out
  | _ -> invalid_arg "Folang.Eval.unary: expected exactly one free variable"
