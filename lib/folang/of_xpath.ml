module A = Xpath.Ast
module Axis = Treekit.Axis
open Formula

let flip v = if v = "x" then "y" else "x"

(* root(v) := ¬∃w Child(w, v), written with the flipped name *)
let is_root v = Not (Exists (flip v, Axis (Axis.Child, flip v, v)))

(* φ(target): target ∈ F(path, {root}).  The path is consumed from the
   right: the last step relates a quantified predecessor (the flipped
   name) to the target. *)
let rec fwd path target =
  match path with
  | A.Union (p1, p2) -> Or (fwd p1 target, fwd p2 target)
  | A.Seq (p1, A.Union (a, b)) -> Or (fwd (A.Seq (p1, a)) target, fwd (A.Seq (p1, b)) target)
  | A.Seq (p1, A.Seq (a, b)) -> fwd (A.Seq (A.Seq (p1, a), b)) target
  | A.Seq (p1, A.Step { axis; quals }) ->
    let prev = flip target in
    conj
      (Exists (prev, And (fwd p1 prev, Axis (axis, prev, target)))
      :: List.map (fun q -> qual q target) quals)
  | A.Step { axis; quals } ->
    let prev = flip target in
    conj
      (Exists (prev, And (is_root prev, Axis (axis, prev, target)))
      :: List.map (fun q -> qual q target) quals)

(* ψ(src): the qualifier holds at src *)
and qual q src =
  match q with
  | A.Lab l -> Lab (l, src)
  | A.And (a, b) -> And (qual a src, qual b src)
  | A.Or (a, b) -> Or (qual a src, qual b src)
  | A.Not a -> Not (qual a src)
  | A.Exists p -> succeeds p src

(* ψ(src): the path succeeds starting at src (consumed from the left) *)
and succeeds path src =
  match path with
  | A.Union (p1, p2) -> Or (succeeds p1 src, succeeds p2 src)
  | A.Seq (A.Union (a, b), p2) -> Or (succeeds (A.Seq (a, p2)) src, succeeds (A.Seq (b, p2)) src)
  | A.Seq (A.Seq (a, b), c) -> succeeds (A.Seq (a, A.Seq (b, c))) src
  | A.Seq (A.Step { axis; quals }, rest) ->
    let next = flip src in
    Exists
      ( next,
        conj
          ((Axis (axis, src, next) :: List.map (fun q -> qual q next) quals)
          @ [ succeeds rest next ]) )
  | A.Step { axis; quals } ->
    let next = flip src in
    Exists (next, conj (Axis (axis, src, next) :: List.map (fun q -> qual q next) quals))

let unary p = fwd p "x"

let boolean p = Exists ("x", fwd p "x")
