type var = string

type t =
  | Axis of Treekit.Axis.t * var * var
  | Lab of string * var
  | Eq of var * var
  | True_
  | False_
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of var * t
  | Forall of var * t

let free_vars phi =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit bound x =
    if (not (List.mem x bound)) && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      out := x :: !out
    end
  in
  let rec go bound = function
    | Axis (_, x, y) ->
      visit bound x;
      visit bound y
    | Lab (_, x) -> visit bound x
    | Eq (x, y) ->
      visit bound x;
      visit bound y
    | True_ | False_ -> ()
    | Not f -> go bound f
    | And (a, b) | Or (a, b) ->
      go bound a;
      go bound b
    | Exists (x, f) | Forall (x, f) -> go (x :: bound) f
  in
  go [] phi;
  List.rev !out

let variable_count phi =
  let names = Hashtbl.create 8 in
  let rec go = function
    | Axis (_, x, y) | Eq (x, y) ->
      Hashtbl.replace names x ();
      Hashtbl.replace names y ()
    | Lab (_, x) -> Hashtbl.replace names x ()
    | True_ | False_ -> ()
    | Not f -> go f
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Exists (x, f) | Forall (x, f) ->
      Hashtbl.replace names x ();
      go f
  in
  go phi;
  Hashtbl.length names

let rec size = function
  | Axis _ | Lab _ | Eq _ | True_ | False_ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let is_sentence phi = free_vars phi = []

let conj = function [] -> True_ | f :: rest -> List.fold_left (fun a b -> And (a, b)) f rest

let disj = function [] -> False_ | f :: rest -> List.fold_left (fun a b -> Or (a, b)) f rest

let exists vars body = List.fold_right (fun v f -> Exists (v, f)) vars body

let rec pp fmt = function
  | Axis (a, x, y) -> Format.fprintf fmt "%s(%s, %s)" (Treekit.Axis.name a) x y
  | Lab (l, x) -> Format.fprintf fmt "Lab_%s(%s)" l x
  | Eq (x, y) -> Format.fprintf fmt "%s = %s" x y
  | True_ -> Format.fprintf fmt "true"
  | False_ -> Format.fprintf fmt "false"
  | Not f -> Format.fprintf fmt "not(%a)" pp f
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Exists (x, f) -> Format.fprintf fmt "(exists %s. %a)" x pp f
  | Forall (x, f) -> Format.fprintf fmt "(forall %s. %a)" x pp f
