(** First-order logic over tree structures (Sections 3, 4 and 7).

    The paper's Figure 7 places FO, FO² and FO³ in the expressiveness map:
    Core XPath translates in linear time into FO² [57, 9], FOᵏ queries
    evaluate in time O(‖A‖ᵏ·|Q|), and conjunctive FOᵏ⁺¹ queries have
    tree-width ≤ k.  This module gives FO formulas over the tree signature
    (axis relations, label predicates, equality) with named variables,
    plus the syntactic measures those results are stated in. *)

type var = string

type t =
  | Axis of Treekit.Axis.t * var * var  (** [axis(x, y)] *)
  | Lab of string * var  (** [Lab_a(x)] *)
  | Eq of var * var
  | True_
  | False_
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of var * t
  | Forall of var * t

val free_vars : t -> var list
(** Free variables, in order of first occurrence. *)

val variable_count : t -> int
(** Number of {e distinct variable names} in the formula — the k of FOᵏ
    (reused names count once; this is the point of the FOᵏ fragments). *)

val size : t -> int

val is_sentence : t -> bool

val conj : t list -> t
val disj : t list -> t
val exists : var list -> t -> t

val pp : Format.formatter -> t -> unit
(** Conventional syntax, e.g.
    [∃y (child(x, y) ∧ Lab_a(y))] printed with ASCII connectives. *)
