(** Core XPath → two-variable first-order logic (Marx [57]; Sections 4
    and 7).

    "Core XPath queries can be translated efficiently, in linear time,
    into equivalent FO² queries; thus Boolean Core XPath is in time
    O(‖A‖² · |Q|)."  The translation produces a unary formula over the
    two variable names [x] and [y], alternating them along path
    composition so each quantifier rebinds the name not currently in
    use.  Output size is linear in the query (property-tested), the
    formula uses exactly ≤ 2 distinct names, and evaluating it with
    {!Eval} (intermediates bounded by n²) agrees with the XPath
    engines. *)

val unary : Xpath.Ast.path -> Formula.t
(** The FO² formula [φ(x)] defining the unary query [[p]](root). *)

val boolean : Xpath.Ast.path -> Formula.t
(** The FO² sentence "[[p]](root) ≠ ∅". *)
