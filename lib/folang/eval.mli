(** Naive FO evaluation over trees: O(‖A‖ᵏ · |φ|) for FOᵏ.

    A formula with free variables [x₁ … x_j] denotes the relation of its
    satisfying assignments; connectives map to relational algebra
    (∧ = natural join, ∨ = aligned union, ¬ = complement against the
    cylinder, ∃ = projection, ∀ = ¬∃¬).  Intermediate relations are
    bounded by n^k for k distinct variables — exactly the FOᵏ bound the
    paper quotes ("FOᵏ is in time O(‖A‖ᵏ · |Q|)", Section 4), and the
    reason FO² matters for Core XPath. *)

val eval :
  Treekit.Tree.t -> Formula.t -> Formula.var list * Relkit.Relation.t
(** The satisfying assignments, with the column order of the relation. *)

val holds : Treekit.Tree.t -> Formula.t -> bool
(** Truth of a sentence.
    @raise Invalid_argument if the formula has free variables. *)

val unary : Treekit.Tree.t -> Formula.t -> Treekit.Nodeset.t
(** The set defined by a formula with exactly one free variable.
    @raise Invalid_argument otherwise. *)
