(* Immutable observability snapshots published with a single Atomic.set.

   The admitting domain is the only writer: it captures the merged Obs
   state (shards are merged into the globals before `on_tick` fires, so
   a capture here sees a consistent, monotone view), renders anything
   backed by mutable state (the flight-recorder ring), and swaps the
   atomic.  Readers (the HTTP listener domain) only ever Atomic.get and
   walk immutable structure. *)

type t = {
  seq : int;
  at : float;
  report : Obs.Report.t;
  summaries : Obs.Openmetrics.summary list;
  gauges : Obs.Openmetrics.gauge list;
  status : (string * string) list;
  flight : Obs.Json.t option;
}

type publisher = {
  cell : t option Atomic.t;
  version : string;
  strategies : string;
  started : float;
}

let create ?(version = "dev") ?(strategies = "") ?start_time () =
  let started =
    match start_time with Some t -> t | None -> Unix.gettimeofday ()
  in
  { cell = Atomic.make None; version; strategies; started }

let start_time p = p.started

let publish ?report ?telemetry ?summaries ?recorder ?(gauges = [])
    ?(status = []) ?at p =
  let report =
    match report with Some r -> r | None -> Obs.Report.capture ()
  in
  let summaries =
    match (summaries, telemetry) with
    | Some ss, _ -> ss
    | None, Some store -> Telemetry.Cost_store.openmetrics store
    | None, None -> []
  in
  let flight =
    match recorder with
    | Some r -> Some (Telemetry.Flight_recorder.to_json r)
    | None -> None
  in
  let at = match at with Some t -> t | None -> Unix.gettimeofday () in
  let seq = (match Atomic.get p.cell with Some s -> s.seq | None -> 0) + 1 in
  let snap = { seq; at; report; summaries; gauges; status; flight } in
  Atomic.set p.cell (Some snap);
  snap

let latest p = Atomic.get p.cell

let seq p = match Atomic.get p.cell with Some s -> s.seq | None -> 0

let build_gauges p =
  [
    Obs.Openmetrics.gauge ~help:"Build identity of this process (value 1)."
      ~labels:[ ("version", p.version); ("strategies", p.strategies) ]
      "build_info" 1.0;
    Obs.Openmetrics.gauge
      ~help:"Unix time this process started, in seconds."
      "process_start_time_seconds" p.started;
  ]

let to_openmetrics p snap =
  Obs.Openmetrics.render
    ~gauges:(build_gauges p @ snap.gauges)
    ~extra:snap.summaries snap.report

let to_statusz ?now p snap =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let buf = Buffer.create 512 in
  let line k v = Buffer.add_string buf (Printf.sprintf "%-28s %s\n" k v) in
  line "treequery" (Printf.sprintf "%s (strategies: %s)" p.version p.strategies);
  line "uptime_seconds" (Printf.sprintf "%.1f" (now -. p.started));
  line "snapshot_seq" (string_of_int snap.seq);
  line "snapshot_age_seconds" (Printf.sprintf "%.1f" (now -. snap.at));
  List.iter (fun (k, v) -> line k v) snap.status;
  Buffer.contents buf

let tracez snap = Obs.Trace.of_report snap.report
