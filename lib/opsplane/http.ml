(* Minimal HTTP/1.1: just enough for a scrape endpoint, with the
   parsing kept pure (string in, result out) so the error paths are
   property-testable without sockets. *)

type request = {
  meth : string;
  path : string;
  query : string;
  headers : (string * string) list;
}

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

type response = {
  status : int;
  content_type : string;
  body : string;
}

let response ?(content_type = "text/plain; charset=utf-8") status body =
  { status; content_type; body }

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let serialize ?(head_only = false) r =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      r.status (reason_phrase r.status) r.content_type
      (String.length r.body)
  in
  if head_only then head else head ^ r.body

type limits = {
  max_request_line : int;
  max_header_count : int;
  max_head_bytes : int;
}

let default_limits =
  { max_request_line = 4096; max_header_count = 64; max_head_bytes = 16384 }

type parse_result =
  | Complete of request * int
  | Incomplete
  | Reject of int * string

(* End of the request head: the first blank line.  We accept CRLF CRLF
   and bare LF LF (and the mixed forms a hand-typed client produces). *)
let find_head_end s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if s.[i] = '\n' then
      let j = i + 1 in
      if j < n && s.[j] = '\n' then Some (j + 1)
      else if j + 1 < n && s.[j] = '\r' && s.[j + 1] = '\n' then Some (j + 2)
      else go (i + 1)
    else go (i + 1)
  in
  go 0

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse ?(limits = default_limits) buf =
  match find_head_end buf with
  | None ->
    if String.length buf > limits.max_head_bytes then
      Reject (431, "request head too large")
    else Incomplete
  | Some consumed ->
    if consumed > limits.max_head_bytes then
      Reject (431, "request head too large")
    else begin
      let head = String.sub buf 0 consumed in
      let lines = String.split_on_char '\n' head in
      let lines = List.filter_map
          (fun l -> let l = strip_cr l in if l = "" then None else Some l)
          lines
      in
      match lines with
      | [] -> Reject (400, "empty request")
      | request_line :: header_lines ->
        if String.length request_line > limits.max_request_line then
          Reject (431, "request line too long")
        else if List.length header_lines > limits.max_header_count then
          Reject (431, "too many headers")
        else begin
          match String.split_on_char ' ' request_line with
          | [ meth; target; version ]
            when meth <> "" && target <> ""
                 && String.length version >= 5
                 && String.sub version 0 5 = "HTTP/" ->
            let path, query =
              match String.index_opt target '?' with
              | None -> (target, "")
              | Some i ->
                ( String.sub target 0 i,
                  String.sub target (i + 1) (String.length target - i - 1) )
            in
            if String.length path = 0 || path.[0] <> '/' then
              Reject (400, "bad request target")
            else begin
              let exception Bad of string in
              match
                List.map
                  (fun line ->
                    match String.index_opt line ':' with
                    | None | Some 0 -> raise (Bad "malformed header")
                    | Some i ->
                      let name =
                        String.lowercase_ascii (String.sub line 0 i)
                      in
                      let value =
                        String.trim
                          (String.sub line (i + 1)
                             (String.length line - i - 1))
                      in
                      (name, value))
                  header_lines
              with
              | headers ->
                Complete
                  ( { meth = String.uppercase_ascii meth;
                      path;
                      query;
                      headers },
                    consumed )
              | exception Bad msg -> Reject (400, msg)
            end
          | _ -> Reject (400, "malformed request line")
        end
    end

module type TRANSPORT = sig
  type conn

  val read : conn -> bytes -> int -> int -> int
  val write : conn -> string -> unit
end

module Make (T : TRANSPORT) = struct
  let serve_connection ?(limits = default_limits) ~handler conn =
    let chunk = Bytes.create 4096 in
    let buf = Buffer.create 512 in
    let respond ?(head_only = false) r =
      try T.write conn (serialize ~head_only r) with _ -> ()
    in
    let rec step () =
      match parse ~limits (Buffer.contents buf) with
      | Complete (req, _consumed) ->
        let resp =
          try handler req
          with _ -> response 500 "internal error\n"
        in
        respond ~head_only:(req.meth = "HEAD") resp
      | Reject (status, msg) -> respond (response status (msg ^ "\n"))
      | Incomplete ->
        let n = try T.read conn chunk 0 (Bytes.length chunk) with _ -> 0 in
        if n <= 0 then begin
          (* peer closed before completing a request head; answer 400
             only if it sent something *)
          if Buffer.length buf > 0 then
            respond (response 400 "truncated request\n")
        end
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          step ()
        end
    in
    step ()
end
