(** Lock-free snapshot publication for the ops plane.

    The serving (admitting) domain periodically freezes the current
    observability state — merged counters, histogram summaries, span
    forest, per-fingerprint telemetry sketches, driver-supplied gauges —
    into an immutable {!t} and publishes it with a single [Atomic.set].
    Scrape handlers running on the listener domain read the latest
    snapshot with [Atomic.get] and never touch a serving-path mutex.

    Because counters are cumulative and every publish happens after the
    admitting domain has merged its shards, consecutive snapshots carry
    monotonically non-decreasing counter totals (property-tested in
    [test_opsplane]). *)

type t = {
  seq : int;  (** publication sequence number, 1-based and monotone *)
  at : float;  (** wall-clock publish time (Unix epoch seconds) *)
  report : Obs.Report.t;  (** merged counters / histograms / spans *)
  summaries : Obs.Openmetrics.summary list;
      (** per-fingerprint telemetry summaries (frozen at publish) *)
  gauges : Obs.Openmetrics.gauge list;  (** driver-supplied gauges *)
  status : (string * string) list;  (** human key/value lines for /statusz *)
  flight : Obs.Json.t option;  (** flight-recorder dump, when attached *)
}

type publisher
(** An atomic cell holding the latest published snapshot, plus the
    process build identity.  [publish] must be called from a single
    domain (the admitting domain); [latest] is safe from any domain. *)

val create :
  ?version:string ->
  ?strategies:string ->
  ?start_time:float ->
  unit ->
  publisher
(** [version]/[strategies] label the [treequery_build_info] gauge;
    [start_time] (default [Unix.gettimeofday ()] at creation) feeds
    [treequery_process_start_time_seconds]. *)

val start_time : publisher -> float

val publish :
  ?report:Obs.Report.t ->
  ?telemetry:Telemetry.Cost_store.t ->
  ?summaries:Obs.Openmetrics.summary list ->
  ?recorder:Telemetry.Flight_recorder.t ->
  ?gauges:Obs.Openmetrics.gauge list ->
  ?status:(string * string) list ->
  ?at:float ->
  publisher ->
  t
(** Freeze the current state into a snapshot and publish it.  [report]
    defaults to [Obs.Report.capture ()]; [summaries] overrides the
    per-fingerprint summaries otherwise derived from [telemetry]; the
    flight-recorder dump is rendered here (on the publishing domain) so
    scrapes never race the mutable ring.  Returns the published
    snapshot. *)

val latest : publisher -> t option
(** The most recently published snapshot ([None] before the first
    {!publish}).  Wait-free; safe from any domain. *)

val seq : publisher -> int
(** Sequence number of the latest snapshot (0 before the first). *)

val build_gauges : publisher -> Obs.Openmetrics.gauge list
(** [treequery_build_info] (value 1, labelled with version and strategy
    set) and [treequery_process_start_time_seconds]. *)

val to_openmetrics : publisher -> t -> string
(** OpenMetrics text exposition of a snapshot: build gauges, then
    driver gauges, counters, histograms and telemetry summaries,
    terminated by [# EOF]. *)

val to_statusz : ?now:float -> publisher -> t -> string
(** Human-readable status page: uptime, snapshot age/sequence, then the
    snapshot's status pairs. *)

val tracez : t -> Obs.Json.t
(** Chrome trace-event document of the snapshot's span forest. *)
