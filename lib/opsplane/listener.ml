(* Accept loop on a dedicated domain.  The listening socket is
   non-blocking and the loop waits in [Unix.select] with a short
   timeout, re-checking the stopping flag between waits — portable
   (shutdown on a *listening* socket is ENOTCONN on the BSDs, and close
   does not wake a blocked accept there), and the fd is only closed
   after the accept domain has exited, so there is no close/accept
   fd-reuse race. *)

module Fd_transport = struct
  type conn = Unix.file_descr

  let read fd buf off len = try Unix.read fd buf off len with _ -> 0

  let write fd s =
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        let w = Unix.write fd b off (n - off) in
        if w > 0 then go (off + w)
    in
    go 0
end

module Conn = Http.Make (Fd_transport)

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  accepted : int Atomic.t;
  domain : unit Domain.t;
}

(* A disconnecting scrape client (scrape timeout, [curl -m]) turns the
   response write into SIGPIPE, whose default disposition kills the
   whole process; ignoring it makes [Unix.write] raise EPIPE instead,
   which the serve/respond error paths already swallow. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let start ?(host = "127.0.0.1") ?(port = 0) ?limits ~handler () =
  Lazy.force ignore_sigpipe;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock addr;
     Unix.listen sock 16;
     Unix.set_nonblock sock
   with e ->
     Unix.close sock;
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let accepted = Atomic.make 0 in
  let domain =
    Domain.spawn (fun () ->
        let rec loop () =
          if not (Atomic.get stopping) then begin
            let readable =
              match Unix.select [ sock ] [] [] 0.05 with
              | [ _ ], _, _ -> true
              | _ -> false
              | exception _ -> false
            in
            (if readable then
               match Unix.accept sock with
               | exception _ -> ()
               | conn, _peer ->
                 Atomic.incr accepted;
                 (* accepted fds can inherit O_NONBLOCK on some systems *)
                 (try Unix.clear_nonblock conn with _ -> ());
                 (* bound a stalled client: the loop is single-threaded,
                    and a well-formed scrape request arrives in one
                    packet *)
                 (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO 1.0
                  with _ -> ());
                 (try Conn.serve_connection ?limits ~handler conn
                  with _ -> ());
                 (try Unix.close conn with _ -> ()));
            loop ()
          end
        in
        loop ())
  in
  { sock; bound_port; stopping; accepted; domain }

let port t = t.bound_port

let connections t = Atomic.get t.accepted

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Domain.join t.domain;
    try Unix.close t.sock with _ -> ()
  end

(* Minimal blocking client for tests and the bench scraper.  Read and
   write timeouts on the socket turn a stalled server into a failed
   scrape (status 0) instead of a hung test. *)
let get ?(host = "127.0.0.1") ?(timeout = 5.0) ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      (try
         Unix.setsockopt_float sock Unix.SO_RCVTIMEO timeout;
         Unix.setsockopt_float sock Unix.SO_SNDTIMEO timeout
       with _ -> ());
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Fd_transport.write sock
        (Printf.sprintf
           "GET %s HTTP/1.1\r\nHost: %s\r\nAccept: \
            application/openmetrics-text\r\n\r\n"
           path host);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Fd_transport.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> ( try int_of_string code with _ -> 0)
        | _ -> 0
      in
      let body =
        (* head/body split: first blank line *)
        let rec find i =
          if i + 3 < String.length raw then
            if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
            else find (i + 1)
          else None
        in
        match find 0 with
        | Some i -> String.sub raw i (String.length raw - i)
        | None -> ""
      in
      (status, body))
