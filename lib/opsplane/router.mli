(** Ops-plane request routing over the latest published snapshot.

    Endpoints:
    - [GET /metrics]  OpenMetrics exposition of the latest snapshot
      (content-negotiated: [application/openmetrics-text] when the
      [Accept] header asks for it, [text/plain] otherwise)
    - [GET /healthz]  liveness ("ok" as soon as the process serves HTTP)
    - [GET /readyz]   readiness (503 until the first snapshot publishes)
    - [GET /statusz]  human-readable status (uptime, snapshot age,
      driver status lines)
    - [GET /tracez]   the snapshot's span forest as Chrome trace JSON
    - [GET /flightz]  flight-recorder dump (404 when no recorder is
      attached)

    All handlers read the snapshot with a single [Atomic.get] and never
    touch serving-path state. *)

type state = {
  publisher : Snapshot.publisher;
  extra_status : unit -> (string * string) list;
      (** appended live to /statusz (e.g. listener connection count) *)
}

val make : ?extra_status:(unit -> (string * string) list) ->
  Snapshot.publisher -> state

val handle : state -> Http.request -> Http.response
(** Total: unknown paths answer 404, non-GET/HEAD methods 405. *)
