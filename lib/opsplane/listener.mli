(** TCP front-end for the ops plane: a loopback listener running its
    accept loop on a dedicated domain, serving one request per
    connection through {!Http.Make} over Unix file descriptors.

    Connections are handled sequentially on the listener domain — ops
    traffic is a scraper every few seconds, and keeping it
    single-threaded means a scrape can never contend with serving for
    anything but the snapshot atomic.  A per-connection receive timeout
    bounds how long a stalled client can hold the loop. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?limits:Http.limits ->
  handler:(Http.request -> Http.response) ->
  unit ->
  t
(** Bind [host] (default ["127.0.0.1"]) on [port] (default [0] =
    ephemeral), start the accept domain, return the running listener.
    @raise Unix.Unix_error when the bind fails (e.g. port in use). *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val connections : t -> int
(** Connections accepted so far. *)

val stop : t -> unit
(** Close the listening socket and join the accept domain.
    Idempotent. *)

val get : ?host:string -> port:int -> string -> int * string
(** Minimal test/bench client: open a connection, send
    [GET <path> HTTP/1.1], return (status, body).  Blocks until the
    server closes the connection. *)
