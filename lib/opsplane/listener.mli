(** TCP front-end for the ops plane: a loopback listener running its
    accept loop on a dedicated domain, serving one request per
    connection through {!Http.Make} over Unix file descriptors.

    Connections are handled sequentially on the listener domain — ops
    traffic is a scraper every few seconds, and keeping it
    single-threaded means a scrape can never contend with serving for
    anything but the snapshot atomic.  The flip side is head-of-line
    blocking: a slow or idle client stalls every endpoint (including
    [/healthz]) until its per-connection 1 s receive timeout fires, so
    point nothing but trusted loopback scrapers at it.

    Starting a listener installs [Signal_ignore] for SIGPIPE
    process-wide (once), so a client disconnecting mid-response
    surfaces as EPIPE on write — swallowed by the connection error
    path — rather than a process-killing signal. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?limits:Http.limits ->
  handler:(Http.request -> Http.response) ->
  unit ->
  t
(** Bind [host] (default ["127.0.0.1"]) on [port] (default [0] =
    ephemeral), start the accept domain, return the running listener.
    @raise Unix.Unix_error when the bind fails (e.g. port in use). *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val connections : t -> int
(** Connections accepted so far. *)

val stop : t -> unit
(** Stop accepting, join the accept domain, then close the listening
    socket — in that order: the accept loop polls a stopping flag
    between short selects, so no shutdown-on-a-listening-socket or
    close/accept fd-reuse race is involved (portable beyond Linux).
    An in-flight connection finishes first; stopping waits at most the
    50 ms poll interval plus that request.  Idempotent. *)

val get : ?host:string -> ?timeout:float -> port:int -> string -> int * string
(** Minimal test/bench client: open a connection, send
    [GET <path> HTTP/1.1], return (status, body).  Blocks until the
    server closes the connection or the socket-level [timeout]
    (default 5 s, applied to both send and receive) fires; a timed-out
    or refused connection surfaces as status [0]. *)
