(** Minimal HTTP/1.1 for the ops plane: request parsing, response
    serialisation, and a connection loop functorized over a read/write
    transport so the whole path — including partial reads, malformed
    request lines, and header limits — is unit-testable without
    sockets.

    Scope is deliberately tiny: one request per connection
    ([Connection: close]), no request bodies, GET/HEAD only (other
    methods reach the handler, which answers 405). *)

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** request target without the query string *)
  query : string;  (** raw query string ([""] when absent) *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
}

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

val response : ?content_type:string -> int -> string -> response
(** [response status body]; [content_type] defaults to
    ["text/plain; charset=utf-8"]. *)

val reason_phrase : int -> string

val serialize : ?head_only:bool -> response -> string
(** Wire form with [Content-Length] and [Connection: close] headers;
    [head_only] (for HEAD requests) drops the body but keeps its
    [Content-Length]. *)

type limits = {
  max_request_line : int;  (** bytes; longer request lines answer 431 *)
  max_header_count : int;
  max_head_bytes : int;  (** total head size before the blank line *)
}

val default_limits : limits
(** 4096-byte request line, 64 headers, 16 KiB head. *)

type parse_result =
  | Complete of request * int
      (** parsed request and the number of bytes consumed *)
  | Incomplete  (** head terminator not seen yet; read more *)
  | Reject of int * string  (** status code and diagnostic *)

val parse : ?limits:limits -> string -> parse_result
(** Parse one request head from the start of the accumulated buffer.
    Tolerates both CRLF and bare-LF line endings.  Never raises. *)

module type TRANSPORT = sig
  type conn

  val read : conn -> bytes -> int -> int -> int
  (** [read c buf off len] returns the number of bytes read; [<= 0]
      means end-of-stream. *)

  val write : conn -> string -> unit
end

module Make (T : TRANSPORT) : sig
  val serve_connection :
    ?limits:limits -> handler:(request -> response) -> T.conn -> unit
  (** Read one request (accumulating across partial reads), invoke
      [handler], and write the response.  Parse rejections write the
      matching error response; handler exceptions write a 500.  Never
      raises on malformed input. *)
end
