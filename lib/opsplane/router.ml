type state = {
  publisher : Snapshot.publisher;
  extra_status : unit -> (string * string) list;
}

let make ?(extra_status = fun () -> []) publisher =
  { publisher; extra_status }

let openmetrics_content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

let text_metrics_content_type = "text/plain; version=0.0.4; charset=utf-8"

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_snapshot st f =
  match Snapshot.latest st.publisher with
  | Some snap -> f snap
  | None -> Http.response 503 "no snapshot published yet\n"

let handle st (req : Http.request) =
  if req.meth <> "GET" && req.meth <> "HEAD" then
    Http.response 405 "method not allowed\n"
  else
    match req.path with
    | "/healthz" -> Http.response 200 "ok\n"
    | "/readyz" ->
      if Snapshot.seq st.publisher > 0 then Http.response 200 "ready\n"
      else Http.response 503 "starting\n"
    | "/metrics" ->
      with_snapshot st (fun snap ->
          let accept =
            Option.value ~default:"" (Http.header req "accept")
          in
          let content_type =
            if contains_substring accept "application/openmetrics-text" then
              openmetrics_content_type
            else text_metrics_content_type
          in
          Http.response ~content_type 200
            (Snapshot.to_openmetrics st.publisher snap))
    | "/statusz" ->
      with_snapshot st (fun snap ->
          let body =
            Snapshot.to_statusz st.publisher snap
            ^ String.concat ""
                (List.map
                   (fun (k, v) -> Printf.sprintf "%-28s %s\n" k v)
                   (st.extra_status ()))
          in
          Http.response 200 body)
    | "/tracez" ->
      with_snapshot st (fun snap ->
          Http.response ~content_type:"application/json" 200
            (Obs.Json.to_string (Snapshot.tracez snap)))
    | "/flightz" ->
      with_snapshot st (fun snap ->
          match snap.Snapshot.flight with
          | Some j ->
            Http.response ~content_type:"application/json" 200
              (Obs.Json.to_string j)
          | None -> Http.response 404 "flight recorder not enabled\n")
    | _ -> Http.response 404 "not found\n"
