(** Core XPath abstract syntax (Section 3 of the paper).

    The paper's grammar:

    {v
    p    ::= step | p/p | p ∪ p
    step ::= axis | step[q]
    axis ::= arel | arel⁻¹ | Self
    q    ::= p | lab() = L | q ∧ q | q ∨ q | ¬q
    v}

    A unary Core XPath query is [[p]](root); {!Semantics} implements the
    rules (P1)–(P4), (Q1)–(Q5) literally and {!Eval} implements the
    efficient set-at-a-time algebra.

    We fold the [step[q]] form into a step record carrying a qualifier
    list, which is the same language. *)

type path =
  | Step of step
  | Seq of path * path  (** [p₁/p₂] *)
  | Union of path * path  (** [p₁ ∪ p₂] *)

and step = { axis : Treekit.Axis.t; quals : qual list }

and qual =
  | Exists of path  (** a path qualifier: [[p]](n) ≠ ∅ *)
  | Lab of string  (** [lab() = L] *)
  | And of qual * qual
  | Or of qual * qual
  | Not of qual

val step : ?quals:qual list -> Treekit.Axis.t -> path
(** Convenience constructor. *)

val size : path -> int
(** Number of AST nodes — the |Q| of the complexity statements. *)

val is_conjunctive : path -> bool
(** No [Union], no [Or], no [Not] — the conjunctive Core XPath fragment
    (acyclic, Proposition 4.2). *)

val is_positive : path -> bool
(** No [Not] (union and or allowed) — positive Core XPath (LOGCFL). *)

val is_forward : path -> bool
(** Only forward axes — the streamable fragment of Section 5. *)

val to_string : path -> string
(** Concrete syntax accepted back by {!Parser.parse}. *)

val pp : Format.formatter -> path -> unit
