(** Literal denotational semantics of Core XPath (Section 3, rules
    (P1)–(P4) and (Q1)–(Q5)).

    [[p]]_NodeSet is a function from a node to a set of nodes;
    [[q]]_Boolean a predicate on nodes.  This implementation follows the
    rules verbatim — in particular [[p₁/p₂]](n) recomputes [[p₂]](w) for
    every [w ∈ [[p₁]](n)], which is why it can be exponentially slower
    than {!Eval} on nested paths (the naive-engine behaviour the paper's
    [33] measured in real XPath processors).  It is the executable
    specification that every other engine is tested against. *)

val node_set : Treekit.Tree.t -> Ast.path -> int -> Treekit.Nodeset.t
(** [[p]]_NodeSet(n) — rule-by-rule, no sharing, no memoisation. *)

val boolean : Treekit.Tree.t -> Ast.qual -> int -> bool
(** [[q]]_Boolean(n). *)

val query : Treekit.Tree.t -> Ast.path -> Treekit.Nodeset.t
(** The unary query [[p]](root). *)
