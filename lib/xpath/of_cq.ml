open Ast
module Q = Cqtree.Query
module Axis = Treekit.Axis

exception Unsupported

let forward_xpath q =
  try
    let q = Q.normalize_forward q in
    (match Q.check q with Ok () -> () | Error _ -> raise Unsupported);
    if List.length q.head > 1 then raise Unsupported;
    let all_vars = Q.vars q in
    let nvars = List.length all_vars in
    let incoming : (Q.var, Axis.t * Q.var) Hashtbl.t = Hashtbl.create 8 in
    let children : (Q.var, Axis.t * Q.var) Hashtbl.t = Hashtbl.create 8 in
    let unaries : (Q.var, Q.unary) Hashtbl.t = Hashtbl.create 8 in
    let root_vars : (Q.var, unit) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (function
        | Q.A (a, x, y) ->
          if not (Axis.is_forward a) || a = Axis.Self || x = y then raise Unsupported;
          if Hashtbl.mem incoming y then raise Unsupported;
          Hashtbl.add incoming y (a, x);
          Hashtbl.add children x (a, y)
        | Q.U (Q.Root, x) ->
          (* expressible only as the anchor of a pattern component (checked
             below): the component then starts at [self::*] instead of
             [descendant-or-self::*] *)
          Hashtbl.replace root_vars x ()
        | Q.U (u, x) -> Hashtbl.add unaries x u)
      q.atoms;
    (* root of each variable's component; a step bound catches ρ-shaped
       cycles (each variable has at most one incoming atom, so a cycle is
       unreachable from any root and must be rejected, not dropped) *)
    let root_of v =
      let rec up v steps =
        if steps > nvars then raise Unsupported
        else
          match Hashtbl.find_opt incoming v with
          | None -> v
          | Some (_, p) -> up p (steps + 1)
      in
      up v 0
    in
    let roots = List.sort_uniq compare (List.map root_of all_vars) in
    (* a Root-constrained variable must be the pattern root of its
       component — elsewhere forward XPath cannot test root-ness *)
    Hashtbl.iter (fun v () -> if root_of v <> v then raise Unsupported) root_vars;
    let anchor_axis r =
      if Hashtbl.mem root_vars r then Axis.Self else Axis.Descendant_or_self
    in
    let unary_qual = function
      | Q.Lab l -> Some (Lab l)
      | Q.True -> None
      | Q.Leaf -> Some (Not (Exists (step Axis.Child)))
      | Q.Last_sibling -> Some (Not (Exists (step Axis.Next_sibling)))
      | Q.Root | Q.First_sibling | Q.Named _ | Q.False -> raise Unsupported
    in
    let rec subtree_quals ?skip v =
      let uq = List.filter_map unary_qual (Hashtbl.find_all unaries v) in
      let cq =
        List.filter_map
          (fun (a, c) ->
            if Some c = skip then None
            else Some (Exists (Step { axis = a; quals = subtree_quals c })))
          (Hashtbl.find_all children v)
      in
      uq @ cq
    in
    let anchored r =
      Exists (Step { axis = anchor_axis r; quals = subtree_quals r })
    in
    match q.head with
    | [] -> Some (Step { axis = Axis.Self; quals = List.map anchored roots })
    | [ h ] ->
      let hroot = root_of h in
      let others = List.filter (fun r -> r <> hroot) roots in
      (* spine hroot … h in top-down order *)
      let rec spine acc v =
        if v = hroot then v :: acc
        else
          match Hashtbl.find_opt incoming v with
          | Some (_, p) -> spine (v :: acc) p
          | None -> assert false
      in
      let spine_vars = spine [] h in
      let axis_into v =
        if v = hroot then anchor_axis hroot else fst (Hashtbl.find incoming v)
      in
      let rec build = function
        | [] -> assert false
        | [ v ] -> Step { axis = axis_into v; quals = subtree_quals v }
        | v :: (w :: _ as rest) ->
          Seq (Step { axis = axis_into v; quals = subtree_quals ~skip:w v }, build rest)
      in
      let main = build spine_vars in
      if others = [] then Some main
      else Some (Seq (Step { axis = Axis.Self; quals = List.map anchored others }, main))
    | _ -> raise Unsupported
  with Unsupported -> None
