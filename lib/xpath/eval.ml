module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
open Ast

(* every node surviving an axis-image step is counted once; the O(n·|Q|)
   per-step bound (Fig. 7) caps this at n per Step of the query *)
let c_nodes = Obs.Counter.make "nodes_visited"

let rec forward tree p s =
  match p with
  | Step { axis; quals } ->
    let out = Axis.image tree axis s in
    Obs.Counter.add c_nodes (Nodeset.cardinal out);
    List.fold_left (fun acc q -> Nodeset.inter acc (qual_set tree q)) out quals
  | Seq (p1, p2) -> forward tree p2 (forward tree p1 s)
  | Union (p1, p2) -> Nodeset.union (forward tree p1 s) (forward tree p2 s)

and backward tree p s =
  match p with
  | Step { axis; quals } ->
    let filtered =
      List.fold_left (fun acc q -> Nodeset.inter acc (qual_set tree q)) s quals
    in
    let out = Axis.image tree (Axis.inverse axis) filtered in
    Obs.Counter.add c_nodes (Nodeset.cardinal out);
    out
  | Seq (p1, p2) -> backward tree p1 (backward tree p2 s)
  | Union (p1, p2) -> Nodeset.union (backward tree p1 s) (backward tree p2 s)

and qual_set tree q =
  let n = Tree.size tree in
  match q with
  | Lab l -> Tree.label_set tree l
  | Exists p -> backward tree p (Nodeset.universe n)
  | And (q1, q2) -> Nodeset.inter (qual_set tree q1) (qual_set tree q2)
  | Or (q1, q2) -> Nodeset.union (qual_set tree q1) (qual_set tree q2)
  | Not q -> Nodeset.complement (qual_set tree q)

let query tree p =
  Obs.Span.with_ "xpath:bottom-up" (fun () ->
      let s = Nodeset.create (Tree.size tree) in
      Nodeset.add s (Tree.root tree);
      forward tree p s)
