module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
open Ast

(* work accounting (the nodes_visited counter, the O(n·|Q|) per-step bound
   of Fig. 7) lives in the Axis kernels; see Treekit.Axis.image *)

let rec forward tree p s =
  match p with
  | Step { axis; quals } ->
    (* evaluate label qualifiers first: their sets are O(occurrences) via
       the tree's label index, and a small candidate set lets the axis
       kernel probe instead of sweeping *)
    let labels, others = List.partition (function Lab _ -> true | _ -> false) quals in
    let out =
      match labels with
      | [] -> Axis.image tree axis s
      | Lab l :: rest ->
        let within =
          List.fold_left
            (fun acc q ->
              match q with
              | Lab l -> Nodeset.inter acc (Tree.label_set tree l)
              | _ -> acc)
            (Tree.label_set tree l) rest
        in
        Axis.image_within tree axis s within
      | _ -> assert false
    in
    List.fold_left (fun acc q -> Nodeset.inter acc (qual_set tree q)) out others
  | Seq (p1, p2) -> forward tree p2 (forward tree p1 s)
  | Union (p1, p2) -> Nodeset.union (forward tree p1 s) (forward tree p2 s)

and backward tree p s =
  match p with
  | Step { axis; quals } ->
    let filtered =
      List.fold_left (fun acc q -> Nodeset.inter acc (qual_set tree q)) s quals
    in
    Axis.image tree (Axis.inverse axis) filtered
  | Seq (p1, p2) -> backward tree p1 (backward tree p2 s)
  | Union (p1, p2) -> Nodeset.union (backward tree p1 s) (backward tree p2 s)

and qual_set tree q =
  let n = Tree.size tree in
  match q with
  | Lab l -> Tree.label_set tree l
  | Exists p -> backward tree p (Nodeset.universe n)
  | And (q1, q2) -> Nodeset.inter (qual_set tree q1) (qual_set tree q2)
  | Or (q1, q2) -> Nodeset.union (qual_set tree q1) (qual_set tree q2)
  | Not q -> Nodeset.complement (qual_set tree q)

let query tree p =
  Obs.Span.with_ "xpath:bottom-up" (fun () ->
      let s = Nodeset.create (Tree.size tree) in
      Nodeset.add s (Tree.root tree);
      forward tree p s)
