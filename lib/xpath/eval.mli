(** Efficient set-at-a-time Core XPath evaluation.

    The "context-set" algebra behind the polynomial-time algorithms of
    Gottlob–Koch–Pichler [32, 33]: instead of evaluating a path from one
    node at a time, every operator maps whole node sets —

    - forward: [F(step, S) = image(axis, S) ∩ qual-set],
      [F(p₁/p₂, S) = F(p₂, F(p₁, S))], [F(∪)] = set union;
    - backward (for qualifiers): [B(p, S) = {n : [[p]](n) ∩ S ≠ ∅}] with
      [B(step, S) = image(axis⁻¹, S ∩ qual-set)];
    - a qualifier denotes the set of nodes where it holds; negation is set
      complement.

    Each operator costs one O(n) axis image, so a query runs in time
    O(|Q| · n) — the bound underlying Proposition 4.2 and the linear data
    complexity of unary Core XPath (Figure 7).  Results are tested equal
    to the literal {!Semantics} on random queries and trees. *)

val forward : Treekit.Tree.t -> Ast.path -> Treekit.Nodeset.t -> Treekit.Nodeset.t
(** [forward t p s] = [{n' : ∃n ∈ s. n' ∈ [[p]](n)}]. *)

val backward : Treekit.Tree.t -> Ast.path -> Treekit.Nodeset.t -> Treekit.Nodeset.t
(** [backward t p s] = [{n : [[p]](n) ∩ s ≠ ∅}]. *)

val qual_set : Treekit.Tree.t -> Ast.qual -> Treekit.Nodeset.t
(** The set of nodes where the qualifier holds. *)

val query : Treekit.Tree.t -> Ast.path -> Treekit.Nodeset.t
(** The unary query [[p]](root) = [forward t p {root}]. *)
