type state = { input : string; mutable pos : int }

let error st fmt = Treekit.Parse_error.raise_at st.pos fmt

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let skip_ws st =
  while
    (match peek st with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let looking_at st s =
  let k = String.length s in
  st.pos + k <= String.length st.input && String.sub st.input st.pos k = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st "expected %S" s

let name st =
  skip_ws st;
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected a name";
  String.sub st.input start (st.pos - start)

let string_lit st =
  skip_ws st;
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) -> q
    | _ -> error st "expected a string literal"
  in
  st.pos <- st.pos + 1;
  let start = st.pos in
  while (match peek st with Some c when c <> quote -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  (match peek st with Some _ -> () | None -> error st "unterminated string literal");
  let s = String.sub st.input start (st.pos - start) in
  st.pos <- st.pos + 1;
  s

(* keyword lookahead that does not consume *)
let at_keyword st kw =
  skip_ws st;
  looking_at st kw
  && (let after = st.pos + String.length kw in
      after >= String.length st.input || not (is_name_char st.input.[after]))

let dos_star : Ast.path = Ast.Step { axis = Treekit.Axis.Descendant_or_self; quals = [] }

let rec parse_rel st : Ast.path =
  let first = parse_disjunct st in
  skip_ws st;
  if (match peek st with Some '|' -> true | _ -> false) then begin
    eat st "|";
    Ast.Union (first, parse_rel st)
  end
  else first

and parse_disjunct st : Ast.path =
  (* each disjunct may carry its own leading "/" (no-op: evaluation starts
     at the context node) or "//" (descendant-or-self) *)
  skip_ws st;
  if looking_at st "//" then begin
    eat st "//";
    Ast.Seq (dos_star, parse_seq st)
  end
  else begin
    if looking_at st "/" then eat st "/";
    parse_seq st
  end

and parse_seq st : Ast.path =
  let first = parse_element st in
  parse_seq_rest st first

and parse_element st : Ast.path =
  (* a step, or a parenthesised path expression (e.g. a union used in the
     middle of a sequence) *)
  skip_ws st;
  if (match peek st with Some '(' -> true | _ -> false) then begin
    eat st "(";
    let p = parse_rel st in
    skip_ws st;
    eat st ")";
    p
  end
  else parse_step st

and parse_seq_rest st acc =
  skip_ws st;
  if looking_at st "//" then begin
    eat st "//";
    let next = parse_element st in
    parse_seq_rest st (Ast.Seq (acc, Ast.Seq (dos_star, next)))
  end
  else if (match peek st with Some '/' -> true | _ -> false) then begin
    eat st "/";
    let next = parse_element st in
    parse_seq_rest st (Ast.Seq (acc, next))
  end
  else acc

and parse_step st : Ast.path =
  skip_ws st;
  let axis, label_test =
    if (match peek st with Some '*' -> true | _ -> false) then begin
      eat st "*";
      (Treekit.Axis.Child, None)
    end
    else begin
      skip_ws st;
      let name_start = st.pos in
      let nm = name st in
      skip_ws st;
      if looking_at st "::" then begin
        eat st "::";
        match Treekit.Axis.of_name nm with
        | None -> Treekit.Parse_error.raise_at name_start "unknown axis %s" nm
        | Some a ->
          skip_ws st;
          if (match peek st with Some '*' -> true | _ -> false) then begin
            eat st "*";
            (a, None)
          end
          else (a, Some (name st))
      end
      else (Treekit.Axis.Child, Some nm)
    end
  in
  let initial = match label_test with None -> [] | Some l -> [ Ast.Lab l ] in
  let quals = parse_quals st initial in
  Ast.Step { axis; quals }

and parse_quals st acc =
  skip_ws st;
  if (match peek st with Some '[' -> true | _ -> false) then begin
    eat st "[";
    let q = parse_or st in
    skip_ws st;
    eat st "]";
    parse_quals st (q :: acc)
  end
  else List.rev acc

and parse_or st : Ast.qual =
  let first = parse_and st in
  if at_keyword st "or" then begin
    eat st "or";
    Ast.Or (first, parse_or st)
  end
  else first

and parse_and st : Ast.qual =
  let first = parse_prim st in
  if at_keyword st "and" then begin
    eat st "and";
    Ast.And (first, parse_and st)
  end
  else first

and parse_prim st : Ast.qual =
  skip_ws st;
  if at_keyword st "not" then begin
    eat st "not";
    skip_ws st;
    eat st "(";
    let q = parse_or st in
    skip_ws st;
    eat st ")";
    Ast.Not q
  end
  else if looking_at st "lab()" then begin
    eat st "lab()";
    skip_ws st;
    eat st "=";
    Ast.Lab (string_lit st)
  end
  else if (match peek st with Some '(' -> true | _ -> false) then begin
    (* "(" starts either a parenthesised qualifier or a parenthesised path
       used inside a sequence (e.g. "(a | b)/c"); try the qualifier reading
       and fall back to the path reading if a path continuation follows *)
    let save = st.pos in
    match
      (let () = eat st "(" in
       let q = parse_or st in
       skip_ws st;
       eat st ")";
       q)
    with
    | q ->
      skip_ws st;
      if looking_at st "/" then begin
        st.pos <- save;
        Ast.Exists (parse_rel st)
      end
      else q
    | exception Treekit.Parse_error.Error _ ->
      st.pos <- save;
      Ast.Exists (parse_rel st)
  end
  else Ast.Exists (parse_rel st)

let parse input =
  let st = { input; pos = 0 } in
  let p = parse_rel st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> error st "unexpected trailing character %C" c);
  p
