module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
open Ast

(* (P1)–(P4) *)
let rec node_set tree p n =
  match p with
  | Step { axis; quals } ->
    (* (P1) axis image of a single node, then (P2) filter by qualifiers *)
    let out = Nodeset.create (Tree.size tree) in
    Axis.fold tree axis n
      (fun n' () -> if List.for_all (fun q -> boolean tree q n') quals then Nodeset.add out n')
      ();
    out
  | Seq (p1, p2) ->
    (* (P3): recompute [[p2]](w) for each w — deliberately no sharing *)
    let out = Nodeset.create (Tree.size tree) in
    Nodeset.iter
      (fun w -> Nodeset.iter (Nodeset.add out) (node_set tree p2 w))
      (node_set tree p1 n);
    out
  | Union (p1, p2) ->
    (* (P4) *)
    Nodeset.union (node_set tree p1 n) (node_set tree p2 n)

(* (Q1)–(Q5) *)
and boolean tree q n =
  match q with
  | Lab l -> Tree.label tree n = l
  | Exists p -> not (Nodeset.is_empty (node_set tree p n))
  | And (q1, q2) -> boolean tree q1 n && boolean tree q2 n
  | Or (q1, q2) -> boolean tree q1 n || boolean tree q2 n
  | Not q -> not (boolean tree q n)

let query tree p = node_set tree p (Tree.root tree)
