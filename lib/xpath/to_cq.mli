(** Conjunctive Core XPath → conjunctive queries (Sections 4 and 5).

    A Core XPath expression without union, disjunction and negation is a
    conjunctive query over the axis relations (and it is acyclic — the
    translation produces a tree-shaped query, which is how Proposition 4.2
    follows from Yannakakis' algorithm). *)

val to_query : Ast.path -> Cqtree.Query.t option
(** [to_query p] is the unary conjunctive query equivalent to the unary
    XPath query [[p]](root): head = the variable of the last step, body =
    a [Root] atom for the context plus one atom per step/label test.
    [None] if [p] is not conjunctive. *)
