let rewrite_and_check p =
  if Ast.is_forward p then Some (p, 1)
  else
    match To_cq.to_query p with
    | None -> None
    | Some cq ->
      (* the rewrite's branch budget is a completeness cap, not an error:
         a query that blows it is simply not rewritable here *)
      match Cqtree.Rewrite.rewrite cq with
      | exception Cqtree.Rewrite.Too_many_branches -> None
      | { Cqtree.Rewrite.queries; _ } ->
      let branches =
        List.map
          (fun q ->
            match Of_cq.forward_xpath q with
            | Some fp when Ast.is_forward fp -> Some fp
            | Some _ | None -> None)
          queries
      in
      if List.exists Option.is_none branches then None
      else begin
        match List.filter_map Fun.id branches with
        | [] ->
          (* the query is unsatisfiable on every tree: any always-empty
             forward expression will do *)
          Some
            ( Ast.Step
                {
                  axis = Treekit.Axis.Child;
                  quals = [ Ast.And (Ast.Lab "\000never", Ast.Not (Ast.Lab "\000never")) ];
                },
              0 )
        | first :: rest ->
          Some (List.fold_left (fun acc b -> Ast.Union (acc, b)) first rest,
                1 + List.length rest)
      end

let rewrite p = Option.map fst (rewrite_and_check p)
