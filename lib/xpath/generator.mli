(** Random Core XPath queries for tests and benchmarks. *)

val random :
  ?seed:int ->
  ?rng:Random.State.t ->
  depth:int ->
  labels:string array ->
  ?axes:Treekit.Axis.t list ->
  ?allow_negation:bool ->
  ?allow_union:bool ->
  unit ->
  Ast.path
(** A random Core XPath expression with recursion depth bounded by
    [depth].  [axes] defaults to all fifteen axes.  With
    [allow_negation]/[allow_union] false the result is conjunctive.
    An explicit [rng] takes precedence over [seed] and is advanced in
    place (for bit-reproducible composed generation). *)

val nested_qualifier : depth:int -> label:string -> Ast.path
(** The deeply nested query [child::*[child::*[…[lab() = label]…]]] used by
    the naive-vs-bottom-up blow-up benchmark: naive spec evaluation
    re-evaluates the inner qualifier once per candidate node. *)

val star_chain : length:int -> Ast.path
(** [descendant-or-self::*/descendant-or-self::*/…] — the classic
    quadratic-intermediate-result query for naive engines. *)
