open Ast
module Q = Cqtree.Query

exception Not_conjunctive

let to_query p =
  let counter = ref 0 in
  let fresh () =
    let v = Printf.sprintf "X%d" !counter in
    incr counter;
    v
  in
  let atoms = ref [] in
  let emit a = atoms := a :: !atoms in
  (* returns the end variable of the path started at [x] *)
  let rec path x = function
    | Step { axis; quals } ->
      let y = fresh () in
      emit (Q.A (axis, x, y));
      List.iter (qual y) quals;
      y
    | Seq (p1, p2) ->
      let w = path x p1 in
      path w p2
    | Union _ -> raise Not_conjunctive
  and qual y = function
    | Lab l -> emit (Q.U (Q.Lab l, y))
    | Exists p -> ignore (path y p)
    | And (q1, q2) ->
      qual y q1;
      qual y q2
    | Or _ | Not _ -> raise Not_conjunctive
  in
  try
    let x0 = fresh () in
    emit (Q.U (Q.Root, x0));
    let h = path x0 p in
    Some { Q.head = [ h ]; atoms = List.rev !atoms }
  with Not_conjunctive -> None
