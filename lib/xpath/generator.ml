module Axis = Treekit.Axis
open Ast

let random ?(seed = 11) ?rng ~depth ~labels ?(axes = Axis.all) ?(allow_negation = true)
    ?(allow_union = true) () =
  let rng = match rng with Some r -> r | None -> Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let label () = labels.(Random.State.int rng (Array.length labels)) in
  let rec path d =
    let choices = Random.State.int rng (if allow_union && d > 0 then 10 else 8) in
    if choices >= 8 then Union (path (d - 1), path (d - 1))
    else if choices >= 5 && d > 0 then Seq (path (d - 1), path (d - 1))
    else Step { axis = pick axes; quals = quals d }
  and quals d =
    if d = 0 then if Random.State.bool rng then [ Lab (label ()) ] else []
    else begin
      let k = Random.State.int rng 3 in
      List.init k (fun _ -> qual (d - 1))
    end
  and qual d =
    if d = 0 then Lab (label ())
    else
      match Random.State.int rng (if allow_negation then 6 else 5) with
      | 0 -> Lab (label ())
      | 1 -> And (qual (d - 1), qual (d - 1))
      | 2 -> Or (qual (d - 1), qual (d - 1))
      | 3 | 4 -> Exists (path (d - 1))
      | _ -> Not (qual (d - 1))
  in
  path depth

let nested_qualifier ~depth ~label =
  let rec build d =
    if d = 0 then Step { axis = Axis.Child; quals = [ Lab label ] }
    else Step { axis = Axis.Child; quals = [ Exists (build (d - 1)) ] }
  in
  build depth

let star_chain ~length =
  let dos = Step { axis = Axis.Descendant_or_self; quals = [] } in
  let rec build k = if k <= 1 then dos else Seq (dos, build (k - 1)) in
  build length
