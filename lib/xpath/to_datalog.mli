(** Core XPath → monadic datalog over τ⁺ ∪ {Child} (Section 3; [29, 31]).

    Each Core XPath query translates in linear time into a monadic datalog
    program: axis images become linear recursions over
    [FirstChild]/[NextSibling]/[Child] (e.g. a [descendant] step from the
    set [S] is the program [O(y) ← S(x), Child(x,y); O(y) ← O(x),
    Child(x,y)]), path qualifiers are evaluated backwards through inverse
    axes, and the program can then be brought into TMNF
    ({!Mdatalog.Tmnf}) and solved in time O(|P|·|Dom|) via Horn-SAT.

    Negation is not expressible in datalog; the paper's pure-TMNF
    treatment of negation [29] is automata-based.  Here negated qualifiers
    are handled by {e stratification} (documented deviation, see
    DESIGN.md): the inner qualifier is evaluated first as its own program,
    its complement is fed to the enclosing program as an external unary
    predicate, which computes the same sets on finite trees. *)

val to_program : Ast.path -> (Mdatalog.Ast.program, string) result
(** A single monadic datalog program equivalent to the unary query
    [[p]](root), for negation-free [p].  [Error _] if [p] contains
    negation. *)

val eval_via_datalog :
  ?tmnf:bool -> Treekit.Tree.t -> Ast.path -> Treekit.Nodeset.t
(** Evaluate by compiling to (stratified) datalog and running
    {!Mdatalog.Eval}; with [~tmnf:true] each stratum is additionally
    normalised with {!Mdatalog.Tmnf.of_program} first.  Tested equal to
    {!Eval.query}. *)

val program_size : Mdatalog.Ast.program -> int
(** Number of atoms in the program (to check the linear-size claim). *)
