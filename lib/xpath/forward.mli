(** Reverse-axis elimination: rewriting Core XPath into forward XPath
    (Section 5, "Evaluating Positive Queries using XPath", after Olteanu
    et al. [62] "XPath: Looking Forward").

    Forward queries can be evaluated in one document-order pass
    ({!Streamq}); this module removes reverse axes ([parent], [ancestor],
    [preceding-sibling], [preceding], …) from conjunctive Core XPath by
    composing three existing translations:

    query → conjunctive query ({!To_cq}) → union of acyclic forward
    queries (Theorem 5.1, {!Cqtree.Rewrite}) → forward XPath per branch
    ({!Of_cq}), reassembled with [∪].

    The result can be exponentially larger than the input (unavoidable:
    Theorem 5.1's lower bound), but is equivalent (property-tested) and
    uses forward axes only. *)

val rewrite : Ast.path -> Ast.path option
(** [rewrite p] is a forward Core XPath expression equivalent to the unary
    query [[p]](root).  [None] when [p] is not conjunctive (contains
    union, [or], or [not]) or uses a unary feature forward XPath cannot
    express.  If [p] is already forward it is returned unchanged. *)

val rewrite_and_check : Ast.path -> (Ast.path * int) option
(** Like {!rewrite}, also reporting the number of union branches. *)
