(** Concrete syntax for Core XPath.

    {v
    path  ::= ("/" | "//")? rel
    rel   ::= seq ("|" seq)*
    seq   ::= step (("/" | "//") step)*
    step  ::= (axis "::")? test qual*
    test  ::= NAME | "*"
    qual  ::= "[" or "]"
    or    ::= and ("or" and)*
    and   ::= prim ("and" prim)*
    prim  ::= "not" "(" or ")" | "(" or ")" | "lab()" "=" STRING | rel
    v}

    [axis] is any axis name accepted by {!Treekit.Axis.of_name} (e.g.
    [child], [descendant-or-self], [parent], [ancestor], [following]);
    a step without an explicit axis means [child].  A name test [a]
    desugars to the qualifier [lab() = "a"]; [*] is no test.  [//] between
    steps desugars to [/descendant-or-self::*/]; a leading [/] or [//]
    anchors at the root (all queries are evaluated from the root anyway,
    per the paper's definition of unary Core XPath queries).

    Examples: [/child::a//b[following-sibling::c and not(d)]],
    [//open_auction[bidder][not(seller)]]. *)

val parse : string -> Ast.path
(** @raise Treekit.Parse_error.Error with the 0-based character offset of
    the offending token (for an unknown axis name, the offset of the name
    itself, not of the [::] that follows it). *)
