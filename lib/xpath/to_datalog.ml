module D = Mdatalog.Ast
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset

type ctx = {
  mutable rules : D.rule list;
  mutable counter : int;
  mutable negations : (string * Ast.qual) list;
}

let new_ctx () = { rules = []; counter = 0; negations = [] }

let fresh ctx prefix =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s_%d" prefix ctx.counter

let emit ctx head head_var body = ctx.rules <- { D.head; head_var; body } :: ctx.rules

(* Emit rules defining a predicate equal to the image of [axis] over the
   predicate [s].  All recursions are linear in [FirstChild]/[NextSibling]/
   [Child]. *)
let rec axis_image ctx axis s =
  let o = fresh ctx "step" in
  let p name = D.U (D.Pred name, "X") in
  (match axis with
  | Axis.Self -> emit ctx o "X" [ p s ]
  | Axis.Child -> emit ctx o "Y" [ D.U (D.Pred s, "X"); D.B (D.Child, "X", "Y") ]
  | Axis.Descendant ->
    emit ctx o "Y" [ D.U (D.Pred s, "X"); D.B (D.Child, "X", "Y") ];
    emit ctx o "Y" [ D.U (D.Pred o, "X"); D.B (D.Child, "X", "Y") ]
  | Axis.Descendant_or_self ->
    emit ctx o "X" [ p s ];
    emit ctx o "Y" [ D.U (D.Pred o, "X"); D.B (D.Child, "X", "Y") ]
  | Axis.Next_sibling ->
    emit ctx o "Y" [ D.U (D.Pred s, "X"); D.B (D.Next_sibling, "X", "Y") ]
  | Axis.Following_sibling ->
    emit ctx o "Y" [ D.U (D.Pred s, "X"); D.B (D.Next_sibling, "X", "Y") ];
    emit ctx o "Y" [ D.U (D.Pred o, "X"); D.B (D.Next_sibling, "X", "Y") ]
  | Axis.Following_sibling_or_self ->
    emit ctx o "X" [ p s ];
    emit ctx o "Y" [ D.U (D.Pred o, "X"); D.B (D.Next_sibling, "X", "Y") ]
  | Axis.Following ->
    (* ancestors-or-self of s, then strict right siblings, then
       descendants-or-self *)
    let anc = axis_image ctx Axis.Ancestor_or_self s in
    let sib = axis_image ctx Axis.Following_sibling anc in
    let dos = axis_image ctx Axis.Descendant_or_self sib in
    emit ctx o "X" [ p dos ]
  | Axis.Parent -> emit ctx o "X" [ D.U (D.Pred s, "Y"); D.B (D.Child, "X", "Y") ]
  | Axis.Ancestor ->
    emit ctx o "X" [ D.U (D.Pred s, "Y"); D.B (D.Child, "X", "Y") ];
    emit ctx o "X" [ D.U (D.Pred o, "Y"); D.B (D.Child, "X", "Y") ]
  | Axis.Ancestor_or_self ->
    emit ctx o "X" [ p s ];
    emit ctx o "X" [ D.U (D.Pred o, "Y"); D.B (D.Child, "X", "Y") ]
  | Axis.Prev_sibling ->
    emit ctx o "X" [ D.U (D.Pred s, "Y"); D.B (D.Next_sibling, "X", "Y") ]
  | Axis.Preceding_sibling ->
    emit ctx o "X" [ D.U (D.Pred s, "Y"); D.B (D.Next_sibling, "X", "Y") ];
    emit ctx o "X" [ D.U (D.Pred o, "Y"); D.B (D.Next_sibling, "X", "Y") ]
  | Axis.Preceding_sibling_or_self ->
    emit ctx o "X" [ p s ];
    emit ctx o "X" [ D.U (D.Pred o, "Y"); D.B (D.Next_sibling, "X", "Y") ]
  | Axis.Preceding ->
    let anc = axis_image ctx Axis.Ancestor_or_self s in
    let sib = axis_image ctx Axis.Preceding_sibling anc in
    let dos = axis_image ctx Axis.Descendant_or_self sib in
    emit ctx o "X" [ p dos ]);
  o

let rec fwd ctx s = function
  | Ast.Step { axis; quals } ->
    let o = axis_image ctx axis s in
    constrain ctx o quals
  | Ast.Seq (p1, p2) -> fwd ctx (fwd ctx s p1) p2
  | Ast.Union (p1, p2) ->
    let o1 = fwd ctx s p1 and o2 = fwd ctx s p2 in
    let o = fresh ctx "union" in
    emit ctx o "X" [ D.U (D.Pred o1, "X") ];
    emit ctx o "X" [ D.U (D.Pred o2, "X") ];
    o

and bwd ctx s = function
  (* nodes from which the path can reach a node of [s] *)
  | Ast.Step { axis; quals } ->
    let s' = constrain ctx s quals in
    axis_image ctx (Axis.inverse axis) s'
  | Ast.Seq (p1, p2) -> bwd ctx (bwd ctx s p2) p1
  | Ast.Union (p1, p2) ->
    let o1 = bwd ctx s p1 and o2 = bwd ctx s p2 in
    let o = fresh ctx "union" in
    emit ctx o "X" [ D.U (D.Pred o1, "X") ];
    emit ctx o "X" [ D.U (D.Pred o2, "X") ];
    o

and constrain ctx s quals =
  List.fold_left
    (fun acc q ->
      let qp = qual_pred ctx q in
      let o = fresh ctx "filter" in
      emit ctx o "X" [ D.U (D.Pred acc, "X"); D.U (D.Pred qp, "X") ];
      o)
    s quals

and qual_pred ctx = function
  | Ast.Lab l ->
    let o = fresh ctx "lab" in
    emit ctx o "X" [ D.U (D.Lab l, "X") ];
    o
  | Ast.And (q1, q2) ->
    let p1 = qual_pred ctx q1 and p2 = qual_pred ctx q2 in
    let o = fresh ctx "and" in
    emit ctx o "X" [ D.U (D.Pred p1, "X"); D.U (D.Pred p2, "X") ];
    o
  | Ast.Or (q1, q2) ->
    let p1 = qual_pred ctx q1 and p2 = qual_pred ctx q2 in
    let o = fresh ctx "or" in
    emit ctx o "X" [ D.U (D.Pred p1, "X") ];
    emit ctx o "X" [ D.U (D.Pred p2, "X") ];
    o
  | Ast.Exists p ->
    let u = fresh ctx "univ" in
    emit ctx u "X" [ D.U (D.Dom, "X") ];
    bwd ctx u p
  | Ast.Not q ->
    (* stratified: the complement set is computed separately and supplied
       through the environment under a fresh external name *)
    let env_name = fresh ctx "negated" in
    ctx.negations <- (env_name, q) :: ctx.negations;
    let o = fresh ctx "not" in
    emit ctx o "X" [ D.U (D.Pred env_name, "X") ];
    o

let compile p =
  let ctx = new_ctx () in
  let s0 = fresh ctx "context" in
  emit ctx s0 "X" [ D.U (D.Root, "X") ];
  let answer = fwd ctx s0 p in
  ({ D.rules = List.rev ctx.rules; query = answer }, List.rev ctx.negations)

let compile_qual q =
  let ctx = new_ctx () in
  let answer = qual_pred ctx q in
  ({ D.rules = List.rev ctx.rules; query = answer }, List.rev ctx.negations)

let to_program p =
  let program, negations = compile p in
  if negations = [] then Ok program
  else Error "query contains negation; use eval_via_datalog (stratified)"

let rec eval_program ?(tmnf = false) tree (program, negations) =
  let env =
    List.map
      (fun (name, q) ->
        let inner = eval_program ~tmnf tree (compile_qual q) in
        (name, Nodeset.complement inner))
      negations
  in
  let program = if tmnf then Mdatalog.Tmnf.of_program program else program in
  Mdatalog.Eval.run ~env program tree

let eval_via_datalog ?tmnf tree p = eval_program ?tmnf tree (compile p)

let program_size (program : D.program) =
  List.fold_left (fun acc r -> acc + 1 + List.length r.D.body) 0 program.D.rules
