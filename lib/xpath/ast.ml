type path = Step of step | Seq of path * path | Union of path * path

and step = { axis : Treekit.Axis.t; quals : qual list }

and qual = Exists of path | Lab of string | And of qual * qual | Or of qual * qual | Not of qual

let step ?(quals = []) axis = Step { axis; quals }

let rec size = function
  | Step { quals; _ } -> 1 + List.fold_left (fun s q -> s + qual_size q) 0 quals
  | Seq (a, b) | Union (a, b) -> 1 + size a + size b

and qual_size = function
  | Exists p -> size p
  | Lab _ -> 1
  | And (a, b) | Or (a, b) -> 1 + qual_size a + qual_size b
  | Not q -> 1 + qual_size q

let rec is_conjunctive = function
  | Step { quals; _ } -> List.for_all qual_conjunctive quals
  | Seq (a, b) -> is_conjunctive a && is_conjunctive b
  | Union _ -> false

and qual_conjunctive = function
  | Exists p -> is_conjunctive p
  | Lab _ -> true
  | And (a, b) -> qual_conjunctive a && qual_conjunctive b
  | Or _ | Not _ -> false

let rec is_positive = function
  | Step { quals; _ } -> List.for_all qual_positive quals
  | Seq (a, b) | Union (a, b) -> is_positive a && is_positive b

and qual_positive = function
  | Exists p -> is_positive p
  | Lab _ -> true
  | And (a, b) | Or (a, b) -> qual_positive a && qual_positive b
  | Not _ -> false

let rec is_forward = function
  | Step { axis; quals } ->
    Treekit.Axis.is_forward axis && List.for_all qual_forward quals
  | Seq (a, b) | Union (a, b) -> is_forward a && is_forward b

and qual_forward = function
  | Exists p -> is_forward p
  | Lab _ -> true
  | And (a, b) | Or (a, b) -> qual_forward a && qual_forward b
  | Not q -> qual_forward q

let rec path_to_string = function
  | Step { axis; quals } ->
    let base = Treekit.Axis.name axis ^ "::*" in
    base ^ String.concat "" (List.map (fun q -> "[" ^ qual_to_string q ^ "]") quals)
  | Seq (a, b) -> path_to_string a ^ "/" ^ path_to_string b
  | Union (a, b) -> "(" ^ path_to_string a ^ " | " ^ path_to_string b ^ ")"

and qual_to_string = function
  | Exists p -> path_to_string p
  | Lab l -> "lab() = \"" ^ l ^ "\""
  | And (a, b) -> "(" ^ qual_to_string a ^ " and " ^ qual_to_string b ^ ")"
  | Or (a, b) -> "(" ^ qual_to_string a ^ " or " ^ qual_to_string b ^ ")"
  | Not q -> "not(" ^ qual_to_string q ^ ")"

let to_string = path_to_string

let pp fmt p = Format.pp_print_string fmt (to_string p)
