(** Acyclic forward conjunctive queries → forward Core XPath (Section 5,
    "Evaluating Positive Queries using XPath", after Olteanu et al. [62]).

    The rewriting of Theorem 5.1 produces forest-shaped queries over the
    forward axes with at most one atom into each variable.  Such a query
    converts to a {e forward} XPath expression: every pattern component is
    anchored under the document root with [descendant-or-self::*]; for a
    unary query, the spine from its component's pattern root to the head
    variable becomes the step sequence and everything else becomes
    qualifiers.  Combined with {!Cqtree.Rewrite}, this evaluates arbitrary
    positive queries with a (streamable) forward XPath engine. *)

val forward_xpath : Cqtree.Query.t -> Ast.path option
(** [forward_xpath q] for a Boolean or unary query [q].  [None] when [q]
    is not forest-shaped with forward axes and at-most-one atom per target
    variable, or uses unary predicates that forward XPath cannot express
    ([Root], [First_sibling], [Named], [False]).  [Leaf] and
    [Last_sibling] are expressed with (forward) negation.

    Guarantee (tested): when [Some p] is returned,
    [Eval.query t p = Yannakakis.unary q t] for unary [q] (and nonempty
    iff [Yannakakis.boolean q t] for Boolean [q] — the result set is
    [{root}] or empty). *)
