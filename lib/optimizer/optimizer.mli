(** Adaptive per-plan strategy selection.

    For each prepared plan (keyed by {!Treequery.Engine.canonical} form)
    the optimizer holds one {e arm} per strategy that can evaluate the
    query ({!Treequery.Engine.strategies}), seeded with a static cost
    estimate: the paper's per-strategy bound shape — the same shapes
    admission control prices with — with the data term narrowed by label
    selectivity (rarest query-mentioned label frequency) and tree
    statistics (size, height, mean fan-out) from the document's label
    index.

    Decisions are epsilon-greedy over the {e plausible set} (arms whose
    estimate is within [explore_span] of the best): each plausible arm
    is tried [min_trials] times — mostly round-robin, an [epsilon] of
    uniform draws — after which the entry {e converges} and every later
    decision is the argmin by observed latency.  Latency comes from the
    {!Telemetry.Cost_store} EWMA when a store is attached (so routing
    tracks the same online estimate the sketches export) and from the
    optimizer's own per-arm EWMA otherwise.  With [epsilon = 0] and
    deterministic latencies the whole process is deterministic, and a
    converged entry never regresses.

    Implausible arms — e.g. the O(n²·|Q|) FO² embedding on a large
    document — are never explored: their seeded estimate already rules
    them out, which is what keeps cold-start exploration cheap.

    The serving layer persists a converged pick in its
    {!Serve.Plan_cache} entry and passes it back as [?pinned] on later
    decisions, so a warm fleet skips exploration entirely. *)

module Stats : sig
  type t = {
    nodes : int;
    height : int;
    branching : float;  (** mean fan-out b solving b{^ height} ≈ nodes *)
    tree : Treekit.Tree.t;
  }

  val of_tree : Treekit.Tree.t -> t

  val label_frequency : t -> string -> float
  (** Fraction of nodes carrying the label, via the label index —
      O(occurrences) on first touch, O(1) after. *)
end

val selectivity : Stats.t -> Treequery.Engine.query -> float
(** The rarest positively-tested label's frequency (labels under
    negation don't narrow anything and are ignored), clamped to
    [1/nodes]; [1.0] when the query mentions no labels. *)

val estimate : Stats.t -> Treequery.Engine.prepared -> float
(** The seeded cost estimate for one arm, in elementary operations. *)

type t

val create :
  ?epsilon:float ->
  ?min_trials:int ->
  ?explore_span:float ->
  ?ops_per_second:float ->
  ?seed:int ->
  ?invert:bool ->
  ?store:Telemetry.Cost_store.t ->
  unit ->
  t
(** [epsilon] (default 0.1) is the warm-up exploration rate — pass [0.]
    for fully deterministic routing; [min_trials] (default 2) is the
    per-plausible-arm trial count before convergence; [explore_span]
    (default 16) bounds the plausible set (arms within this factor of
    the best estimate); [ops_per_second] (default 5e7) converts seeded
    estimates into pseudo-latencies comparable with observed seconds;
    [seed] drives the epsilon draws; [store] attaches the telemetry
    cost store the argmin reads EWMAs from (and pick counters are
    reported to).

    [invert] is fault injection for the attestation gate: every
    decision routes to the {e worst} estimated arm, which on XPath
    inputs forces the quadratic FO² embedding and makes the
    never-worse slope bound provably fail.

    Raises [Invalid_argument] on [epsilon] outside [0,1],
    [min_trials < 1], or [explore_span < 1]. *)

type reason =
  | Only_candidate  (** single arm; nothing to pick *)
  | Cached_pick  (** warm [?pinned] pick honored, exploration skipped *)
  | Exploring  (** warm-up: an under-tried plausible arm *)
  | Converged  (** argmin by observed latency *)
  | Seeded  (** {!seeded_decision}: estimate argmin, no observations *)
  | Injected_worst  (** [invert] fault injection *)

type decision = {
  d_prepared : Treequery.Engine.prepared;
  d_strategy : Treequery.Engine.strategy;
  d_reason : reason;
  d_estimate : float;  (** the picked arm's seeded estimate, ops *)
  d_candidates : (string * float) list;  (** all arms, name × estimate *)
}

val decide :
  t -> ?pinned:string -> Treekit.Tree.t -> Treequery.Engine.prepared -> decision
(** Route one request: given the planner-default prepared plan, return
    the arm to execute.  [?pinned] is a persisted pick (strategy name)
    from a previous convergence — when it names a live arm the entry
    converges immediately and exploration is skipped.  The first call
    for a canonical form prepares the sibling arms (once; they are
    cached with the entry).  Records the pick in the attached cost
    store.  Thread-safe. *)

val seeded_decision :
  t -> Treekit.Tree.t -> Treequery.Engine.prepared -> decision
(** The decision the optimizer would converge to from the seeded
    estimates alone — no exploration bookkeeping, no observations.
    [treequery explain --strategy auto] reports this. *)

val observe :
  t ->
  canon:string ->
  strategy:string ->
  latency:float ->
  cost:float ->
  (string * float) option
(** Feed back one executed request: [latency] in seconds, [cost] in
    observed profile-counter ops.  Returns [Some (strategy, mean_cost)]
    — the current best arm and its observed mean cost — once the entry
    has converged, so the caller can persist the pick
    ({!Serve.Plan_cache.set_pick}); [None] while still exploring or for
    an unknown [canon]. *)

val reason_to_string : reason -> string

val explain_decision : decision -> string
(** One-line rationale for [treequery explain --strategy auto] and the
    serve log: reason, seeded estimate, and the candidate table. *)

type arm_report = {
  r_strategy : string;
  r_estimate : float;
  r_trials : int;
  r_ewma_latency : float;
  r_mean_cost : float;
  r_explorable : bool;
}

type entry_report = {
  r_fingerprint : string;
  r_canon : string;
  r_decisions : int;
  r_converged : bool;
  r_choice : string option;  (** current argmin, when converged *)
  r_arms : arm_report list;
}

val report : t -> entry_report list
(** Per-fingerprint state, sorted by fingerprint. *)

type stats = {
  entries : int;
  converged : int;
  decisions : int;
  explorations : int;
}

val stats : t -> stats

val to_json : t -> Obs.Json.t
(** The [serve --optimizer-out] document: global counters plus the full
    per-fingerprint arm table. *)
