(* Cost-based adaptive strategy selection.  See optimizer.mli. *)

module Engine = Treequery.Engine
module Tree = Treekit.Tree

let c_decisions = Obs.Counter.make "optimizer_decisions"
let c_explorations = Obs.Counter.make "optimizer_explorations"
let c_converged = Obs.Counter.make "optimizer_converged"
let c_cached_picks = Obs.Counter.make "optimizer_cached_picks"

(* ------------------------------------------------------------------ *)
(* Tree statistics: the |D|-side inputs of the seeded estimates.        *)

module Stats = struct
  type t = {
    nodes : int;
    height : int;
    branching : float;
    tree : Tree.t;  (* for lazy label-frequency lookups *)
  }

  let of_tree tree =
    let nodes = Tree.size tree in
    let height = max 1 (Tree.height tree) in
    {
      nodes;
      height;
      (* mean fan-out b solving b^height ≈ nodes: cheap, and enough to
         tell a skinny chain from a bushy document *)
      branching = Float.pow (float_of_int (max 1 nodes)) (1.0 /. float_of_int height);
      tree;
    }

  let label_frequency t l =
    if t.nodes = 0 then 0.0
    else
      float_of_int (Array.length (Tree.occurrences t.tree l))
      /. float_of_int t.nodes
end

(* labels the query tests positively: the seed scans of a label-driven
   strategy touch only their occurrence buckets, so the rarest mentioned
   label bounds its working set.  Labels under [Not] do not narrow
   anything and are skipped. *)
let rec xpath_labels acc = function
  | Xpath.Ast.Step { Xpath.Ast.quals; _ } ->
    List.fold_left xpath_qual_labels acc quals
  | Xpath.Ast.Seq (a, b) | Xpath.Ast.Union (a, b) ->
    xpath_labels (xpath_labels acc a) b

and xpath_qual_labels acc = function
  | Xpath.Ast.Lab l -> l :: acc
  | Xpath.Ast.Exists p -> xpath_labels acc p
  | Xpath.Ast.And (a, b) | Xpath.Ast.Or (a, b) ->
    xpath_qual_labels (xpath_qual_labels acc a) b
  | Xpath.Ast.Not _ -> acc

let query_labels = function
  | Engine.Xpath_query p -> xpath_labels [] p
  | Engine.Cq_query q ->
    List.filter_map
      (function Cqtree.Query.U (Cqtree.Query.Lab l, _) -> Some l | _ -> None)
      q.Cqtree.Query.atoms
  | Engine.Datalog_query _ | Engine.Positive_query _
  | Engine.Axis_datalog_query _ -> []

let selectivity stats query =
  match query_labels query with
  | [] -> 1.0
  | ls ->
    let sel =
      List.fold_left
        (fun acc l -> Float.min acc (Stats.label_frequency stats l))
        1.0 ls
    in
    (* an absent label still costs one bucket probe; clamp away 0 *)
    Float.max sel (1.0 /. float_of_int (max 1 stats.Stats.nodes))

(* The seeded per-arm estimate: the paper's per-strategy bound (the same
   shapes [Serve.Server.naive_bound] prices admission with) with the
   data term narrowed by label selectivity for the label-driven engines.
   FO² stays label-blind — its intermediates are n² cylinders no matter
   how rare the labels. *)
let estimate stats (p : Engine.prepared) =
  let n = float_of_int stats.Stats.nodes in
  let q = float_of_int (Engine.query_size p.Engine.source) in
  let sel = selectivity stats p.Engine.source in
  (* a label-driven pass always pays an O(n) skeleton walk; only the
     per-|Q| re-traversals shrink with selectivity *)
  let eff = n *. (0.25 +. (0.75 *. sel)) in
  match p.Engine.strategy with
  | Engine.Xpath_bottom_up -> eff *. q *. q
  | Engine.Cq_yannakakis | Engine.Cq_arc_consistency -> eff *. q
  | Engine.Datalog_hornsat ->
    (* grounding touches all of Dom per rule; the Section 3 translation
       inflates |P| by a small constant *)
    n *. q *. 2.0
  | Engine.Datalog_fixpoint -> n *. q
  | Engine.Cq_rewrite | Engine.Positive_rewrite ->
    eff *. q *. Float.pow 2.0 (Float.min q 24.0)
  | Engine.Xpath_fo2 -> n *. n *. q

(* ------------------------------------------------------------------ *)
(* Bandit state                                                         *)

type arm = {
  strategy : Engine.strategy;
  name : string;
  prepared : Engine.prepared;
  arm_estimate : float;
  explorable : bool;  (* estimate within [explore_span] of the best *)
  mutable trials : int;
  mutable ewma_latency : float;  (* seconds; own estimate, store-refreshed *)
  mutable cost_total : float;  (* observed profile counter ops *)
}

type entry = {
  canon : string;
  fp : string;
  arms : arm array;
  mutable decisions : int;
  mutable converged : bool;
}

type t = {
  epsilon : float;
  min_trials : int;
  explore_span : float;
  ops_per_second : float;
  invert : bool;
  rng : Random.State.t;
  store : Telemetry.Cost_store.t option;
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable total_decisions : int;
  mutable total_explorations : int;
}

let create ?(epsilon = 0.1) ?(min_trials = 2) ?(explore_span = 16.0)
    ?(ops_per_second = 5e7) ?(seed = 0) ?(invert = false) ?store () =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Optimizer.create: epsilon must be in [0, 1]";
  if min_trials < 1 then
    invalid_arg "Optimizer.create: min_trials must be >= 1";
  if explore_span < 1.0 then
    invalid_arg "Optimizer.create: explore_span must be >= 1";
  {
    epsilon;
    min_trials;
    explore_span;
    ops_per_second;
    invert;
    rng = Random.State.make [| seed; 0x0b71 |];
    store;
    lock = Mutex.create ();
    entries = Hashtbl.create 64;
    total_decisions = 0;
    total_explorations = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_of t tree (default : Engine.prepared) =
  match Hashtbl.find_opt t.entries default.Engine.canon with
  | Some e -> e
  | None ->
    let stats = Stats.of_tree tree in
    let strategies = Engine.strategies default.Engine.source in
    let prepared_for s =
      if s = default.Engine.strategy then default
      else Engine.prepare_with s default.Engine.source
    in
    let with_estimates =
      List.map
        (fun s ->
          let p = prepared_for s in
          (s, p, estimate stats p))
        strategies
    in
    let best =
      List.fold_left (fun acc (_, _, e) -> Float.min acc e) infinity
        with_estimates
    in
    let arms =
      Array.of_list
        (List.map
           (fun (s, p, est) ->
             {
               strategy = s;
               name = Engine.strategy_name s;
               prepared = p;
               arm_estimate = est;
               explorable = est <= best *. t.explore_span;
               trials = 0;
               ewma_latency = 0.0;
               cost_total = 0.0;
             })
           with_estimates)
    in
    let e =
      {
        canon = default.Engine.canon;
        fp = default.Engine.fp;
        arms;
        decisions = 0;
        converged = Array.length arms <= 1;
      }
    in
    Hashtbl.add t.entries default.Engine.canon e;
    e

(* an arm's current score, as (pseudo-)latency: the cost store's EWMA
   when telemetry saw the cell, the optimizer's own EWMA otherwise, and
   the seeded estimate converted at [ops_per_second] before any trial *)
let score t (e : entry) (a : arm) =
  let from_store =
    match t.store with
    | Some store ->
      Telemetry.Cost_store.ewma_latency store ~fingerprint:e.fp
        ~strategy:a.name
    | None -> None
  in
  match from_store with
  | Some l -> l
  | None ->
    if a.trials > 0 then a.ewma_latency
    else a.arm_estimate /. t.ops_per_second

let argmin_by f arms =
  let best = ref arms.(0) and best_v = ref (f arms.(0)) in
  Array.iter
    (fun a ->
      let v = f a in
      if v < !best_v then begin
        best := a;
        best_v := v
      end)
    arms;
  !best

type reason =
  | Only_candidate
  | Cached_pick
  | Exploring
  | Converged
  | Seeded
  | Injected_worst

let reason_to_string = function
  | Only_candidate -> "only candidate"
  | Cached_pick -> "plan-cache pick, exploration skipped"
  | Exploring -> "exploring"
  | Converged -> "converged argmin"
  | Seeded -> "seeded estimate argmin, no observations yet"
  | Injected_worst -> "fault injection: worst arm forced"

type decision = {
  d_prepared : Engine.prepared;
  d_strategy : Engine.strategy;
  d_reason : reason;
  d_estimate : float;
  d_candidates : (string * float) list;
}

let explain_decision d =
  Printf.sprintf "%s; seeded estimate %.3g ops; candidates: %s"
    (reason_to_string d.d_reason)
    d.d_estimate
    (String.concat ", "
       (List.map (fun (n, e) -> Printf.sprintf "%s=%.3g" n e) d.d_candidates))

let decide t ?pinned tree (default : Engine.prepared) =
  locked t @@ fun () ->
  let e = entry_of t tree default in
  e.decisions <- e.decisions + 1;
  t.total_decisions <- t.total_decisions + 1;
  Obs.Counter.incr c_decisions;
  let pick_arm, reason =
    if Array.length e.arms = 1 then (e.arms.(0), Only_candidate)
    else if t.invert then
      (* attestation fault injection: route to the most expensive
         estimate so the never-worse gate provably fires *)
      (argmin_by (fun a -> -.a.arm_estimate) e.arms, Injected_worst)
    else
      match
        Option.bind pinned (fun name ->
            Array.find_opt (fun a -> a.name = name) e.arms)
      with
      | Some a ->
        (* a warm fleet's persisted pick: trust it and stop exploring *)
        e.converged <- true;
        Obs.Counter.incr c_cached_picks;
        (a, Cached_pick)
      | None ->
        let explorable = Array.of_list
            (List.filter (fun a -> a.explorable)
               (Array.to_list e.arms))
        in
        let explorable = if Array.length explorable = 0 then e.arms else explorable in
        let under =
          List.filter (fun a -> a.trials < t.min_trials)
            (Array.to_list explorable)
        in
        if under <> [] then begin
          t.total_explorations <- t.total_explorations + 1;
          Obs.Counter.incr c_explorations;
          (* epsilon-greedy while warming up: mostly round-robin the
             under-tried arms (fewest trials first), an epsilon of
             uniform draws across the plausible set *)
          if t.epsilon > 0.0 && Random.State.float t.rng 1.0 < t.epsilon then
            (explorable.(Random.State.int t.rng (Array.length explorable)),
             Exploring)
          else
            ( List.fold_left
                (fun acc a -> if a.trials < acc.trials then a else acc)
                (List.hd under) (List.tl under),
              Exploring )
        end
        else begin
          if not e.converged then begin
            e.converged <- true;
            Obs.Counter.incr c_converged
          end;
          (argmin_by (score t e) explorable, Converged)
        end
  in
  (match t.store with
  | Some store ->
    Telemetry.Cost_store.record_pick store ~fingerprint:e.fp
      ~strategy:pick_arm.name
  | None -> ());
  {
    d_prepared = pick_arm.prepared;
    d_strategy = pick_arm.strategy;
    d_reason = reason;
    d_estimate = pick_arm.arm_estimate;
    d_candidates =
      Array.to_list (Array.map (fun a -> (a.name, a.arm_estimate)) e.arms);
  }

(* the decision the optimizer would converge to from estimates alone —
   what [treequery explain --strategy auto] reports without serving *)
let seeded_decision t tree (default : Engine.prepared) =
  locked t @@ fun () ->
  let e = entry_of t tree default in
  let best =
    if Array.length e.arms = 1 then e.arms.(0)
    else argmin_by (fun a -> a.arm_estimate) e.arms
  in
  {
    d_prepared = best.prepared;
    d_strategy = best.strategy;
    d_reason = (if Array.length e.arms = 1 then Only_candidate else Seeded);
    d_estimate = best.arm_estimate;
    d_candidates =
      Array.to_list (Array.map (fun a -> (a.name, a.arm_estimate)) e.arms);
  }

(* EWMA weight for the optimizer's own latency estimate (used when no
   cost store refreshes the arm): recent-biased but stable *)
let alpha = 0.3

let observe t ~canon ~strategy ~latency ~cost =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.entries canon with
  | None -> None
  | Some e -> (
    (match Array.find_opt (fun a -> a.name = strategy) e.arms with
    | None -> ()
    | Some a ->
      a.trials <- a.trials + 1;
      a.cost_total <- a.cost_total +. cost;
      a.ewma_latency <-
        (if a.trials = 1 then latency
         else (alpha *. latency) +. ((1.0 -. alpha) *. a.ewma_latency)));
    let explorable = List.filter (fun a -> a.explorable) (Array.to_list e.arms) in
    let explorable = if explorable = [] then Array.to_list e.arms else explorable in
    if List.for_all (fun a -> a.trials >= t.min_trials) explorable then begin
      if not e.converged then begin
        e.converged <- true;
        Obs.Counter.incr c_converged
      end;
      let best = argmin_by (score t e) (Array.of_list explorable) in
      let mean_cost =
        if best.trials > 0 then best.cost_total /. float_of_int best.trials
        else best.arm_estimate
      in
      Some (best.name, mean_cost)
    end
    else None)

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)

type arm_report = {
  r_strategy : string;
  r_estimate : float;
  r_trials : int;
  r_ewma_latency : float;
  r_mean_cost : float;
  r_explorable : bool;
}

type entry_report = {
  r_fingerprint : string;
  r_canon : string;
  r_decisions : int;
  r_converged : bool;
  r_choice : string option;  (* current argmin, when converged *)
  r_arms : arm_report list;
}

let report t =
  locked t @@ fun () ->
  Hashtbl.fold
    (fun _ (e : entry) acc ->
      let explorable = List.filter (fun a -> a.explorable) (Array.to_list e.arms) in
      let explorable = if explorable = [] then Array.to_list e.arms else explorable in
      let choice =
        if e.converged || Array.length e.arms = 1 then
          Some (argmin_by (score t e) (Array.of_list explorable)).name
        else None
      in
      {
        r_fingerprint = e.fp;
        r_canon = e.canon;
        r_decisions = e.decisions;
        r_converged = e.converged;
        r_choice = choice;
        r_arms =
          Array.to_list
            (Array.map
               (fun a ->
                 {
                   r_strategy = a.name;
                   r_estimate = a.arm_estimate;
                   r_trials = a.trials;
                   r_ewma_latency = a.ewma_latency;
                   r_mean_cost =
                     (if a.trials > 0 then
                        a.cost_total /. float_of_int a.trials
                      else 0.0);
                   r_explorable = a.explorable;
                 })
               e.arms);
      }
      :: acc)
    t.entries []
  |> List.sort (fun a b -> compare a.r_fingerprint b.r_fingerprint)

type stats = {
  entries : int;
  converged : int;
  decisions : int;
  explorations : int;
}

let stats t =
  locked t @@ fun () ->
  {
    entries = Hashtbl.length t.entries;
    converged =
      Hashtbl.fold
        (fun _ (e : entry) acc -> if e.converged then acc + 1 else acc)
        t.entries 0;
    decisions = t.total_decisions;
    explorations = t.total_explorations;
  }

let to_json t =
  let s = stats t in
  Obs.Json.Obj
    [
      ("entries", Obs.Json.Num (float_of_int s.entries));
      ("converged", Obs.Json.Num (float_of_int s.converged));
      ("decisions", Obs.Json.Num (float_of_int s.decisions));
      ("explorations", Obs.Json.Num (float_of_int s.explorations));
      ( "fingerprints",
        Obs.Json.Arr
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("fingerprint", Obs.Json.Str r.r_fingerprint);
                   ("canon", Obs.Json.Str r.r_canon);
                   ("decisions", Obs.Json.Num (float_of_int r.r_decisions));
                   ("converged", Obs.Json.Bool r.r_converged);
                   ( "choice",
                     match r.r_choice with
                     | Some c -> Obs.Json.Str c
                     | None -> Obs.Json.Null );
                   ( "arms",
                     Obs.Json.Arr
                       (List.map
                          (fun a ->
                            Obs.Json.Obj
                              [
                                ("strategy", Obs.Json.Str a.r_strategy);
                                ("estimate", Obs.Json.Num a.r_estimate);
                                ("trials", Obs.Json.Num (float_of_int a.r_trials));
                                ( "ewma_latency_ms",
                                  Obs.Json.Num (a.r_ewma_latency *. 1000.0) );
                                ("mean_cost", Obs.Json.Num a.r_mean_cost);
                                ("explorable", Obs.Json.Bool a.r_explorable);
                              ])
                          r.r_arms) );
                 ])
             (report t)) );
    ]
