module Nodeset = Treekit.Nodeset
module Order = Treekit.Order
open Cqtree.Query

type t = (var * Nodeset.t) list

let find pv x =
  match List.assoc_opt x pv with Some s -> s | None -> raise Not_found

let is_arc_consistent ?(env = []) q tree pv =
  let module Axis = Treekit.Axis in
  let module Tree = Treekit.Tree in
  let dom x = find pv x in
  List.for_all (fun (_, s) -> not (Nodeset.is_empty s)) pv
  && List.for_all
       (function
         | U (u, x) ->
           Nodeset.fold
             (fun v acc ->
               acc
               &&
               (match u with
               | Lab a -> Tree.label tree v = a
               | Root -> Tree.is_root tree v
               | Leaf -> Tree.is_leaf tree v
               | First_sibling -> Tree.is_first_sibling tree v
               | Last_sibling -> Tree.is_last_sibling tree v
               | Named p -> (
                 match List.assoc_opt p env with
                 | Some s -> Nodeset.mem s v
                 | None -> invalid_arg ("unbound named predicate " ^ p))
               | False -> false
               | True -> true))
             (dom x) true
         | A (a, x, y) ->
           let dx = dom x and dy = dom y in
           Nodeset.fold
             (fun v acc ->
               acc && Nodeset.fold (fun w found -> found || Axis.mem tree a v w) dy false)
             dx true
           && Nodeset.fold
                (fun w acc ->
                  acc && Nodeset.fold (fun v found -> found || Axis.mem tree a v w) dx false)
                dy true)
       q.atoms

let minimum_valuation tree kind pv =
  List.map
    (fun (x, s) ->
      let best =
        Nodeset.fold
          (fun v best ->
            match best with
            | None -> Some v
            | Some b -> if Order.lt tree kind v b then Some v else best)
          s None
      in
      match best with
      | Some v -> (x, v)
      | None -> invalid_arg "Prevaluation.minimum_valuation: empty set")
    pv

let equal a b =
  List.length a = List.length b
  && List.for_all
       (fun (x, s) ->
         match List.assoc_opt x b with Some s' -> Nodeset.equal s s' | None -> false)
       a

let pp fmt pv =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (x, s) -> Format.fprintf fmt "%s -> %a@," x Nodeset.pp s) pv;
  Format.fprintf fmt "@]"
