(** Computing the subset-maximal arc-consistent pre-valuation
    (Proposition 6.2).

    Two implementations, tested to agree:

    - {!via_hornsat} is the paper's construction verbatim: the problem
      "decide, for each (x,v), whether v ∉ Θ(x)" is phrased as a
      propositional Horn program (one proposition per variable/node pair,
      support clauses per binary atom) and solved with Minoux's algorithm.
      Its cost is linear in the size of the {e materialised} relations,
      which for transitive axes is quadratic in the tree — exactly the
      O(‖A‖·|Q|) bound the paper states.
    - {!direct} is a worklist (AC-3 style) algorithm over node-set
      domains, revising both endpoints of each binary atom with
      set-at-a-time axis images; each pass is O(n·|Q|) and at most
      O(n·|Q|) revisions fire, so it is the fast engine.

    Both return [None] when no arc-consistent pre-valuation exists (some
    domain becomes empty) — in which case the query is unsatisfiable. *)

val direct :
  ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> Prevaluation.t option

val via_hornsat :
  ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> Prevaluation.t option

val hornsat_program_size :
  ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> int
(** Size (atom occurrences) of the Horn program built by {!via_hornsat} —
    the ‖A‖·|Q| measure, reported by benchmarks. *)
