module Nodeset = Treekit.Nodeset
module Tree = Treekit.Tree
module Axis = Treekit.Axis

type binary_rel = {
  mutable pairs : (int * int) list;  (** reverse insertion order, deduplicated *)
  succ : int list array;  (** kept sorted *)
  pred : int list array;
  member : (int * int, unit) Hashtbl.t;
}

type t = {
  size : int;
  unaries : (string, Nodeset.t) Hashtbl.t;
  binaries : (string, binary_rel) Hashtbl.t;
}

let create ~size =
  if size < 0 then invalid_arg "Structure.create: negative size";
  { size; unaries = Hashtbl.create 8; binaries = Hashtbl.create 8 }

let size s = s.size

let check s v = if v < 0 || v >= s.size then invalid_arg "Structure: element out of range"

let add_unary s name elems =
  let set =
    match Hashtbl.find_opt s.unaries name with
    | Some set -> set
    | None ->
      let set = Nodeset.create s.size in
      Hashtbl.add s.unaries name set;
      set
  in
  List.iter
    (fun v ->
      check s v;
      Nodeset.add set v)
    elems

let get_binary s name =
  match Hashtbl.find_opt s.binaries name with
  | Some r -> r
  | None ->
    let r =
      {
        pairs = [];
        succ = Array.make s.size [];
        pred = Array.make s.size [];
        member = Hashtbl.create 64;
      }
    in
    Hashtbl.add s.binaries name r;
    r

let insert_sorted x xs =
  let rec go = function
    | [] -> [ x ]
    | y :: rest as l -> if x < y then x :: l else if x = y then l else y :: go rest
  in
  go xs

let add_binary s name pairs =
  let r = get_binary s name in
  List.iter
    (fun (v, w) ->
      check s v;
      check s w;
      if not (Hashtbl.mem r.member (v, w)) then begin
        Hashtbl.add r.member (v, w) ();
        r.pairs <- (v, w) :: r.pairs;
        r.succ.(v) <- insert_sorted w r.succ.(v);
        r.pred.(w) <- insert_sorted v r.pred.(w)
      end)
    pairs

let unary_names s = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) s.unaries [])

let binary_names s =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) s.binaries [])

let mem_unary s name v =
  match Hashtbl.find_opt s.unaries name with
  | Some set -> Nodeset.mem set v
  | None -> false

let mem_binary s name v w =
  match Hashtbl.find_opt s.binaries name with
  | Some r -> Hashtbl.mem r.member (v, w)
  | None -> false

let successors s name v =
  match Hashtbl.find_opt s.binaries name with Some r -> r.succ.(v) | None -> []

let predecessors s name v =
  match Hashtbl.find_opt s.binaries name with Some r -> r.pred.(v) | None -> []

let unary_set s name =
  match Hashtbl.find_opt s.unaries name with
  | Some set -> Nodeset.copy set
  | None -> Nodeset.create s.size

let relation_size s name =
  match Hashtbl.find_opt s.binaries name with
  | Some r -> List.length r.pairs
  | None -> 0

let of_tree tree axes =
  let n = Tree.size tree in
  let s = create ~size:n in
  List.iter
    (fun axis ->
      let pairs = ref [] in
      for v = 0 to n - 1 do
        Axis.fold tree axis v (fun w () -> pairs := (v, w) :: !pairs) ()
      done;
      add_binary s (Axis.name axis) !pairs)
    axes;
  for v = 0 to n - 1 do
    add_unary s ("lab:" ^ Tree.label tree v) [ v ]
  done;
  s

let has_x_property s name ~order =
  if Array.length order <> s.size then invalid_arg "Structure.has_x_property: bad order";
  match Hashtbl.find_opt s.binaries name with
  | None -> true
  | Some r ->
    let lt a b = order.(a) < order.(b) in
    List.for_all
      (fun (n1, n2) ->
        List.for_all
          (fun (n0, n3) ->
            if lt n0 n1 && lt n2 n3 then Hashtbl.mem r.member (n0, n2) else true)
          r.pairs)
      r.pairs

let x_closure s name ~order =
  let lt a b = order.(a) < order.(b) in
  let changed = ref true in
  while !changed do
    changed := false;
    let r = get_binary s name in
    let additions = ref [] in
    List.iter
      (fun (n1, n2) ->
        List.iter
          (fun (n0, n3) ->
            if lt n0 n1 && lt n2 n3 && not (Hashtbl.mem r.member (n0, n2)) then
              additions := (n0, n2) :: !additions)
          r.pairs)
      r.pairs;
    if !additions <> [] then begin
      changed := true;
      add_binary s name !additions
    end
  done

let example_61 () =
  let s = create ~size:4 in
  add_binary s "R" [ (0, 1); (2, 3) ];
  add_binary s "S" [ (2, 1); (0, 3) ];
  s

let pp fmt s =
  Format.fprintf fmt "@[<v>structure (domain %d)" s.size;
  List.iter
    (fun name -> Format.fprintf fmt "@,%s = %a" name Nodeset.pp (unary_set s name))
    (unary_names s);
  List.iter
    (fun name ->
      let r = Hashtbl.find s.binaries name in
      Format.fprintf fmt "@,%s = {%s}" name
        (String.concat ", "
           (List.map
              (fun (v, w) -> Printf.sprintf "(%d,%d)" v w)
              (List.sort compare r.pairs))))
    (binary_names s);
  Format.fprintf fmt "@]"
