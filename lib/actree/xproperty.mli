(** The X-underbar property (Definition 6.3, Proposition 6.6, Theorem 6.8).

    A binary relation R has the X-property w.r.t. a total order < iff for
    all [n0 < n1] and [n2 < n3]: [R(n1,n2) ∧ R(n0,n3) ⇒ R(n0,n2)]
    (crossing arcs force the "underbar" arc).  On structures with the
    X-property, arc-consistency implies global consistency via minimum
    valuations (Lemma 6.4), giving O(‖A‖·|Q|) conjunctive query
    evaluation (Theorem 6.5).

    Proposition 6.6 lists the axis/order combinations where the property
    holds; Theorem 6.8 (the dichotomy) says these are {e exactly} the
    tractable signatures.  {!check} verifies the property by brute force
    (used to validate Proposition 6.6 and to map the frontier empirically),
    {!order_for_signature} is the planner's side of the dichotomy. *)

val check : Treekit.Tree.t -> Treekit.Axis.t -> Treekit.Order.kind -> bool
(** Exhaustive check of Definition 6.3 over all pairs of arcs of the axis
    relation on the given tree.  O(r²) for r arcs — use small trees. *)

val proposition_66 : (Treekit.Axis.t * Treekit.Order.kind) list
(** The paper's positive cases:
    - [Child⁺], [Child*] w.r.t. [<pre];
    - [Following] w.r.t. [<post];
    - [Child], [NextSibling], [NextSibling*], [NextSibling⁺] w.r.t. [<bflr]. *)

val signatures : (string * Treekit.Axis.t list * Treekit.Order.kind) list
(** The three maximal tractable signatures of Corollary 6.7:
    τ₁ (descendant axes, [<pre]), τ₂ ([Following], [<post]),
    τ₃ (child/sibling axes, [<bflr]). *)

val order_for_signature : Treekit.Axis.t list -> Treekit.Order.kind option
(** [order_for_signature axes] returns an order under which {e all} the
    given (forward) axes have the X-property, if one of the three orders
    works — the tractable side of the Theorem 6.8 dichotomy.  [None] means
    the signature is NP-hard (for conjunctive queries) unless it is
    acyclic. *)
