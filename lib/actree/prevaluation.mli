(** Pre-valuations (Section 6).

    A pre-valuation for a query [Q] on a structure with domain [A] assigns
    to each variable of [Q] a nonempty subset of [A]; it is arc-consistent
    if every unary atom holds on every assigned node and every binary atom
    [R(x,y)] is supported in both directions.  The subset-maximal
    arc-consistent pre-valuation is what {!Arc_consistency} computes. *)

type t = (Cqtree.Query.var * Treekit.Nodeset.t) list
(** One entry per query variable, in order of first appearance. *)

val find : t -> Cqtree.Query.var -> Treekit.Nodeset.t
(** @raise Not_found *)

val is_arc_consistent :
  ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> t -> bool
(** Check the definition directly (every domain nonempty, unary atoms hold,
    binary atoms supported both ways).  O(‖A‖·|Q|) worst case; used by
    tests. *)

val minimum_valuation :
  Treekit.Tree.t -> Treekit.Order.kind -> t -> (Cqtree.Query.var * int) list
(** The minimum valuation w.r.t. the given order: each variable is mapped
    to the smallest node of its set (Lemma 6.4 proves it consistent when
    the structure has the X-property w.r.t. that order).
    @raise Invalid_argument if some set is empty. *)

val equal : t -> t -> bool
(** Same variables (any order) with equal sets. *)

val pp : Format.formatter -> t -> unit
