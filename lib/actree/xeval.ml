module Tree = Treekit.Tree
module Nodeset = Treekit.Nodeset
open Cqtree.Query

let supported q = Xproperty.order_for_signature (signature q)

let boolean ?env q tree =
  match supported q with
  | None -> None
  | Some _ ->
    let q = normalize_forward q in
    Some (Arc_consistency.direct ?env q tree <> None)

let witness ?env q tree =
  match supported q with
  | None -> None
  | Some kind -> (
    let q' = normalize_forward q in
    match Arc_consistency.direct ?env q' tree with
    | None -> Some None
    | Some pv -> Some (Some (Prevaluation.minimum_valuation tree kind pv)))

let check_tuple ?(env = []) q tree tuple =
  if List.length tuple <> List.length q.head then
    invalid_arg "Xeval.check_tuple: arity mismatch";
  let n = Tree.size tree in
  (* adjoin singleton relations X_i = {a_i} *)
  let extra_atoms, extra_env =
    List.mapi
      (fun i (h, a) ->
        let name = Printf.sprintf "__singleton_%d" i in
        let s = Nodeset.create n in
        Nodeset.add s a;
        (U (Named name, h), (name, s)))
      (List.combine q.head tuple)
    |> List.split
  in
  boolean ~env:(extra_env @ env) { head = []; atoms = extra_atoms @ q.atoms } tree

let solutions ?(env = []) q tree =
  match supported q with
  | None -> None
  | Some _ -> (
    let q' = normalize_forward q in
    match Arc_consistency.direct ~env q' tree with
    | None -> Some []
    | Some pv ->
      (* candidate head tuples come from the pre-valuation domains (every
         solution is contained in the maximal arc-consistent
         pre-valuation) *)
      let head_domains =
        List.map (fun h -> Nodeset.elements (Prevaluation.find pv h)) q'.head
      in
      let rec cartesian = function
        | [] -> [ [] ]
        | d :: rest ->
          let tails = cartesian rest in
          List.concat_map (fun v -> List.map (fun t -> v :: t) tails) d
      in
      let candidates = cartesian head_domains in
      let sols =
        List.filter_map
          (fun tuple ->
            match check_tuple ~env q' tree tuple with
            | Some true -> Some (Array.of_list tuple)
            | Some false | None -> None)
          candidates
      in
      Some (List.sort_uniq compare sols))
