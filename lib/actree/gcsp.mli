(** Conjunctive queries over arbitrary structures of unary and binary
    relations — Section 6 in its full generality.

    The tree engines elsewhere in the repository specialise this machinery
    to axis relations; here the statements are implemented over explicit
    {!Structure}s, which is the setting of Example 6.1, of the
    H-colouring/CSP connection ([45, 21, 46, 54]) and of Lemma 6.4's
    proof.  Evaluating a Boolean conjunctive query is exactly deciding
    homomorphism (CSP): NP-complete in general, polynomial under the
    X-property (Theorem 6.5). *)

type var = string

type atom =
  | U of string * var  (** [P(x)] for a unary relation name [P] *)
  | B of string * var * var  (** [R(x, y)] for a binary relation name [R] *)

type query = { head : var list; atoms : atom list }

val vars : query -> var list

val of_string : string -> query
(** Same concrete syntax as {!Cqtree.Query.of_string} except that relation
    names are free-form: [q(X) :- p(X), r(X, Y), s(Y, X).]
    @raise Failure *)

val holds : Structure.t -> query -> (var -> int) -> bool
(** Is the valuation consistent (satisfies every atom)? *)

val naive_solutions : Structure.t -> query -> int array list
(** Backtracking over all assignments; exponential.  Ground truth. *)

val naive_boolean : Structure.t -> query -> bool

val arc_consistency : Structure.t -> query -> Prevaluation.t option
(** The subset-maximal arc-consistent pre-valuation (worklist AC over the
    explicit relations), or [None] if none exists.  O(‖A‖·|Q|). *)

val minimum_valuation : order:int array -> Prevaluation.t -> (var * int) list
(** Smallest element of each set w.r.t. the order (Lemma 6.4: consistent
    whenever the structure has the X-property w.r.t. that order). *)

val boolean_via_x_property :
  Structure.t -> query -> order:int array -> bool * (var * int) list option
(** Theorem 6.5: satisfiability via arc-consistency, plus the minimum
    valuation as a witness when satisfiable.  {e The caller is responsible
    for the structure having the X-property w.r.t. the order} (check with
    {!Structure.has_x_property}); without it the answer may be wrong —
    which is precisely Example 6.1, and is what the tests demonstrate. *)

val homomorphism_query : Treewidth.Graph.t -> edge_rel:string -> query
(** The H-colouring bridge: the Boolean query asking for a homomorphism
    from the given pattern graph into the structure's [edge_rel] relation
    (each pattern edge becomes one atom; pattern vertices become
    variables). *)
