(** Conjunctive-query evaluation through the X-property
    (Theorem 6.5, Lemma 6.4, and the k-ary extension after Theorem 6.5).

    For queries over a signature that has the X-property w.r.t. one of the
    three orders (the tractable side of the Theorem 6.8 dichotomy), a
    Boolean query is satisfied iff the maximal arc-consistent
    pre-valuation exists; a witness is then the minimum valuation w.r.t.
    that order.  Crucially this works for {e cyclic} queries too — where
    {!Cqtree.Yannakakis} does not apply.

    k-ary queries reduce to Boolean ones by adjoining singleton unary
    relations [Xᵢ = {aᵢ}] (which never break the X-property), giving the
    paper's O(|A|ᵏ · ‖A‖ · |Q|) bound. *)

val supported : Cqtree.Query.t -> Treekit.Order.kind option
(** The order (if any) under which all axes of the forward-normalised
    query have the X-property. *)

val boolean : ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> bool option
(** [None] if the signature is outside the tractable classes. *)

val witness :
  ?env:Cqtree.Query.env ->
  Cqtree.Query.t ->
  Treekit.Tree.t ->
  (Cqtree.Query.var * int) list option option
(** [Some (Some θ)]: satisfiable, with θ the minimum valuation (consistent
    by Lemma 6.4); [Some None]: unsatisfiable; [None]: unsupported
    signature. *)

val check_tuple :
  ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> int list -> bool option
(** Membership of one head tuple, via the singleton-relation reduction. *)

val solutions :
  ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> int array list option
(** All head tuples by candidate enumeration over the pre-valuation's head
    domains and per-tuple {!check_tuple} — the paper's
    O(|A|ᵏ · ‖A‖ · |Q|) algorithm.  Sorted, deduplicated. *)
