module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Order = Treekit.Order

let check tree axis kind =
  let n = Tree.size tree in
  (* materialise the arcs *)
  let arcs = ref [] in
  for u = 0 to n - 1 do
    arcs := Axis.fold tree axis u (fun v acc -> (u, v) :: acc) !arcs
  done;
  let arcs = !arcs in
  let rank v = Order.rank tree kind v in
  List.for_all
    (fun (n1, n2) ->
      List.for_all
        (fun (n0, n3) ->
          if rank n0 < rank n1 && rank n2 < rank n3 then Axis.mem tree axis n0 n2
          else true)
        arcs)
    arcs

let proposition_66 =
  [
    (Axis.Descendant, Order.Pre);
    (Axis.Descendant_or_self, Order.Pre);
    (Axis.Following, Order.Post);
    (Axis.Child, Order.Bflr);
    (Axis.Next_sibling, Order.Bflr);
    (Axis.Following_sibling_or_self, Order.Bflr);
    (Axis.Following_sibling, Order.Bflr);
  ]

let signatures =
  [
    ("tau1", [ Axis.Descendant; Axis.Descendant_or_self ], Order.Pre);
    ("tau2", [ Axis.Following ], Order.Post);
    ( "tau3",
      [
        Axis.Child;
        Axis.Next_sibling;
        Axis.Following_sibling_or_self;
        Axis.Following_sibling;
      ],
      Order.Bflr );
  ]

let order_for_signature axes =
  let fits (_, allowed, _) = List.for_all (fun a -> List.mem a allowed) axes in
  match List.find_opt fits signatures with
  | Some (_, _, kind) -> Some kind
  | None -> None
