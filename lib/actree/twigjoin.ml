module Tree = Treekit.Tree
module Axis = Treekit.Axis
open Cqtree.Query

type edge = Child_edge | Descendant_edge

let c_pushes = Obs.Counter.make "twig_stack_pushes"

let c_tuples = Obs.Counter.make "tuples_materialised"

type node = { label : string option; children : (edge * node) list }

let path specs =
  match List.rev specs with
  | [] -> invalid_arg "Twigjoin.path: empty pattern"
  | (l_last, e_last) :: rest ->
    (* the edge stored with a node connects it to its parent, so when
       wrapping a parent around the accumulated child we use the child's
       edge *)
    let rec wrap child child_edge = function
      | [] -> child
      | (l, e) :: more -> wrap { label = l; children = [ (child_edge, child) ] } e more
    in
    wrap { label = l_last; children = [] } e_last rest

let rec pattern_size n = 1 + List.fold_left (fun s (_, c) -> s + pattern_size c) 0 n.children

(* ------------------------------------------------------------------ *)
(* Conversion to/from conjunctive queries *)

let to_query pattern =
  let counter = ref 0 in
  let atoms = ref [] and head = ref [] in
  let rec visit parent_var edge n =
    let v = Printf.sprintf "V%d" !counter in
    incr counter;
    head := v :: !head;
    (match n.label with Some l -> atoms := U (Lab l, v) :: !atoms | None -> ());
    (match parent_var, edge with
    | Some p, Some Child_edge -> atoms := A (Axis.Child, p, v) :: !atoms
    | Some p, Some Descendant_edge -> atoms := A (Axis.Descendant, p, v) :: !atoms
    | None, _ -> ()
    | Some _, None -> assert false);
    (* a wildcard root with no label still needs an atom for safety *)
    if n.label = None && parent_var = None && n.children = [] then
      atoms := U (True, v) :: !atoms;
    List.iter (fun (e, c) -> visit (Some v) (Some e) c) n.children
  in
  visit None None pattern;
  { head = List.rev !head; atoms = List.rev !atoms }

let of_query q =
  match Cqtree.Join_tree.build q with
  | Error _ -> None
  | Ok jt -> (
    match jt.components with
    | [ root ] ->
      let exception Not_twig in
      let rec conv (n : Cqtree.Join_tree.node) =
        let label =
          match n.unaries with
          | [] -> None
          | [ Lab l ] -> Some l
          | [ True ] -> None
          | _ -> raise Not_twig
        in
        let children =
          List.map
            (fun (atoms, child) ->
              match atoms with
              | [ (Axis.Child, Cqtree.Join_tree.Down) ] -> (Child_edge, conv child)
              | [ (Axis.Descendant, Cqtree.Join_tree.Down) ] ->
                (Descendant_edge, conv child)
              | _ -> raise Not_twig)
            n.edges
        in
        { label; children }
      in
      (try Some (conv root) with Not_twig -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* PathStack *)

type stack_entry = { node : int; ptr : int  (** top index of the previous stack *) }

let stream_of tree = function
  | Some l -> Tree.nodes_with_label tree l
  | None -> List.init (Tree.size tree) Fun.id

let path_stack tree specs =
  let k = List.length specs in
  if k = 0 then invalid_arg "Twigjoin.path_stack: empty pattern";
  let labels = Array.of_list (List.map fst specs)
  and edges = Array.of_list (List.map snd specs) in
  (* streams as arrays with a cursor *)
  let streams = Array.map (stream_of tree) labels in
  let streams = Array.map Array.of_list streams in
  let cursor = Array.make k 0 in
  let stacks : stack_entry array array = Array.map (fun s -> Array.make (Array.length s) { node = 0; ptr = 0 }) streams in
  let top = Array.make k (-1) in
  (* closed(u) = first pre-order rank after u's subtree *)
  let closed u = u + Tree.subtree_size tree u in
  let results = ref [] in
  let expand_leaf v prev_top =
    let tuple = Array.make k (-1) in
    tuple.(k - 1) <- v;
    let rec level i max_idx =
      if i < 0 then results := Array.copy tuple :: !results
      else
        for j = 0 to max_idx do
          let entry = stacks.(i).(j) in
          let ok =
            match edges.(i + 1) with
            | Descendant_edge ->
              (* stack entries are ancestors-or-self of the current node;
                 Child+ is strict *)
              entry.node <> tuple.(i + 1)
            | Child_edge -> Tree.parent tree tuple.(i + 1) = entry.node
          in
          if ok then begin
            tuple.(i) <- entry.node;
            level (i - 1) entry.ptr
          end
        done
    in
    level (k - 2) prev_top
  in
  let exhausted i = cursor.(i) >= Array.length streams.(i) in
  let continue = ref true in
  while !continue do
    (* qmin: stream with the smallest next pre rank *)
    let qmin = ref (-1) in
    for i = 0 to k - 1 do
      if not (exhausted i) then
        if !qmin = -1 || streams.(i).(cursor.(i)) < streams.(!qmin).(cursor.(!qmin)) then
          qmin := i
    done;
    if !qmin = -1 then continue := false
    else begin
      let i = !qmin in
      let v = streams.(i).(cursor.(i)) in
      cursor.(i) <- cursor.(i) + 1;
      (* pop entries whose subtree closed before v *)
      for j = 0 to k - 1 do
        while top.(j) >= 0 && closed stacks.(j).(top.(j)).node <= v do
          top.(j) <- top.(j) - 1
        done
      done;
      if i = 0 || top.(i - 1) >= 0 then begin
        if i < k - 1 then begin
          Obs.Counter.incr c_pushes;
          top.(i) <- top.(i) + 1;
          stacks.(i).(top.(i)) <- { node = v; ptr = (if i = 0 then -1 else top.(i - 1)) }
        end
        else if k = 1 then results := [| v |] :: !results
        else expand_leaf v top.(k - 2)
      end
    end
  done;
  Obs.Counter.add c_tuples (List.length !results);
  List.sort_uniq compare !results

(* ------------------------------------------------------------------ *)
(* Twigs: decompose into root-to-leaf paths, PathStack each, merge on the
   shared prefix variables. *)

let solutions tree pattern =
  (* assign pre-order ids to pattern nodes and collect root-to-leaf paths
     as lists of (id, label, edge-from-parent) *)
  let counter = ref 0 in
  let paths = ref [] in
  let rec visit prefix edge n =
    let id = !counter in
    incr counter;
    let prefix = (id, n.label, edge) :: prefix in
    if n.children = [] then paths := List.rev prefix :: !paths
    else List.iter (fun (e, c) -> visit prefix (Some e) c) n.children
  in
  visit [] None pattern;
  let paths = List.rev !paths in
  let total = !counter in
  (* solve each path with PathStack *)
  let solved =
    List.map
      (fun p ->
        let specs =
          List.map
            (fun (_, l, e) ->
              (l, match e with Some e -> e | None -> Descendant_edge))
            p
        in
        let ids = List.map (fun (id, _, _) -> id) p in
        (ids, path_stack tree specs))
      paths
  in
  (* merge: join successive path solution sets on their shared id prefix *)
  let merge (ids1, sols1) (ids2, sols2) =
    let shared = List.filter (fun id -> List.mem id ids1) ids2 in
    let proj ids sol = List.map (fun id ->
        let rec pos i = function
          | [] -> assert false
          | x :: _ when x = id -> i
          | _ :: r -> pos (i + 1) r
        in
        sol.(pos 0 ids)) shared
    in
    let index = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.add index (proj ids2 s) s) sols2;
    let new_ids = ids1 @ List.filter (fun id -> not (List.mem id ids1)) ids2 in
    let extra_positions =
      List.filter_map
        (fun id ->
          if List.mem id ids1 then None
          else
            let rec pos i = function
              | [] -> assert false
              | x :: _ when x = id -> i
              | _ :: r -> pos (i + 1) r
            in
            Some (pos 0 ids2))
        ids2
    in
    let merged =
      List.concat_map
        (fun s1 ->
          List.map
            (fun s2 ->
              Array.append s1 (Array.of_list (List.map (fun p -> s2.(p)) extra_positions)))
            (Hashtbl.find_all index (proj ids1 s1)))
        sols1
    in
    (new_ids, merged)
  in
  match solved with
  | [] -> []
  | first :: rest ->
    let ids, sols = List.fold_left merge first rest in
    (* reorder columns to pattern pre-order 0..total-1 *)
    let position = Array.make total 0 in
    List.iteri (fun i id -> position.(id) <- i) ids;
    List.sort_uniq compare
      (List.map (fun s -> Array.init total (fun id -> s.(position.(id)))) sols)
