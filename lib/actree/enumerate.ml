module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
module Join_tree = Cqtree.Join_tree
open Cqtree.Query

(* Flatten a join-tree component into the pre-order variable numbering of
   Figure 6: for each variable (except the first) we record its parent's
   position and the atoms connecting it to the parent. *)
type slot = {
  var : var;
  parent : int;  (** index into the slot array; -1 for the component root *)
  atoms : (Axis.t * Join_tree.dir) list;  (** atoms towards the parent *)
}

let slots_of_component root =
  let out = ref [] in
  let counter = ref 0 in
  let rec visit parent_idx atoms (node : Join_tree.node) =
    let idx = !counter in
    incr counter;
    out := { var = node.var; parent = parent_idx; atoms } :: !out;
    List.iter (fun (edge_atoms, child) -> visit idx edge_atoms child) node.edges
  in
  visit (-1) [] root;
  Array.of_list (List.rev !out)

(* the literal enumerate_satisfactions of Figure 6, with [on_solution]
   instead of "output θ" *)
let enumerate_satisfactions tree pv slots ~on_solution =
  let k = Array.length slots in
  let theta = Array.make k (-1) in
  let rec at i =
    if i = k then on_solution theta
    else begin
      let { var = x; parent; atoms } = slots.(i) in
      let domain = Prevaluation.find pv x in
      Nodeset.iter
        (fun v ->
          let consistent =
            i = 0 || parent = -1
            || List.for_all
                 (fun (a, dir) ->
                   match (dir : Join_tree.dir) with
                   | Down -> Axis.mem tree a theta.(parent) v
                   | Up -> Axis.mem tree a v theta.(parent))
                 atoms
          in
          if consistent then begin
            theta.(i) <- v;
            at (i + 1)
          end)
        domain;
      theta.(i) <- -1
    end
  in
  at 0

let prepare ?env q tree =
  match Join_tree.build q with
  | Error _ -> None
  | Ok jt -> (
    match Arc_consistency.direct ?env jt.query tree with
    | None -> Some (jt, None)
    | Some pv -> Some (jt, Some pv))

let satisfactions ?env q tree =
  match prepare ?env q tree with
  | None -> None
  | Some (_, None) -> Some []
  | Some (jt, Some pv) ->
    (* enumerate each component, combine by cartesian product *)
    let comp_sols =
      List.map
        (fun root ->
          let slots = slots_of_component root in
          let acc = ref [] in
          enumerate_satisfactions tree pv slots ~on_solution:(fun theta ->
              acc :=
                Array.to_list (Array.mapi (fun i v -> (slots.(i).var, v)) theta) :: !acc);
          List.rev !acc)
        jt.components
    in
    if List.exists (fun sols -> sols = []) comp_sols then Some []
    else begin
      let rec cross = function
        | [] -> [ [] ]
        | sols :: rest ->
          let tails = cross rest in
          List.concat_map (fun s -> List.map (fun t -> s @ t) tails) sols
      in
      Some (cross comp_sols)
    end

let solutions ?env q tree =
  (* normalisation inside the join tree may rename head variables (Self
     unification), so resolve the head against the normalised query *)
  match Join_tree.build q with
  | Error _ -> None
  | Ok jt -> (
    match satisfactions ?env q tree with
    | None -> None
    | Some sats ->
      let tuples =
        List.map
          (fun theta ->
            Array.of_list (List.map (fun h -> List.assoc h theta) jt.query.head))
          sats
      in
      Some (List.sort_uniq compare tuples))

let count ?env q tree =
  match prepare ?env q tree with
  | None -> None
  | Some (_, None) -> Some 0
  | Some (jt, Some pv) ->
    let comp_counts =
      List.map
        (fun root ->
          let slots = slots_of_component root in
          let c = ref 0 in
          enumerate_satisfactions tree pv slots ~on_solution:(fun _ -> incr c);
          !c)
        jt.components
    in
    Some (List.fold_left ( * ) 1 comp_counts)
