(** Backtracking-free enumeration of the solutions of an acyclic
    conjunctive query from its maximal arc-consistent pre-valuation
    (Figure 6 and Propositions 6.9/6.10).

    Proposition 6.9: for acyclic queries, {e every} node in the maximal
    arc-consistent pre-valuation participates in a solution, so the
    pre-valuation is a compact representation of the full answer set and
    the recursive algorithm of Figure 6 reads the answers out without ever
    failing below a consistent parent choice.  Its cost is
    O(|A| · ‖Q(A)‖): per query-tree node it scans Θ(xᵢ) and keeps the
    values consistent with the parent's assigned value.

    This is the paper's point about holistic twig joins: computing the
    pre-valuation is applying a full reducer, and the stack-based twig
    algorithms ({!Twigjoin}) are a pointer-optimised special case. *)

val satisfactions :
  ?env:Cqtree.Query.env ->
  Cqtree.Query.t ->
  Treekit.Tree.t ->
  (Cqtree.Query.var * int) list list option
(** All consistent valuations (full assignments), enumerated per Figure 6.
    [None] if the query is cyclic (the algorithm requires a join tree). *)

val solutions :
  ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> int array list option
(** {!satisfactions} projected onto the head, sorted and deduplicated. *)

val count : ?env:Cqtree.Query.env -> Cqtree.Query.t -> Treekit.Tree.t -> int option
(** Number of consistent valuations, without materialising them. *)
