(** Holistic twig joins (Section 6, "Holistic Processing of Acyclic
    Queries"; Bruno–Koudas–Srivastava's PathStack/TwigStack).

    A twig is a tree pattern whose edges are [/] (Child) or [//]
    (Descendant) and whose nodes carry optional label tests.  PathStack
    processes a {e path} pattern against label-sorted node streams with one
    stack per pattern node; stack entries point into the stack above, so
    the stacks compactly encode all partial solutions — the same
    compact-representation idea as the arc-consistent pre-valuation, which
    is the paper's point.  Twigs are processed by decomposing into
    root-to-leaf paths and merge-joining the path solutions on the shared
    branch variables.

    Streams are consumed in document order, each node enters and leaves its
    stack at most once, so PathStack runs in time O(input + output) for
    descendant edges. *)

type edge =
  | Child_edge  (** [/] *)
  | Descendant_edge  (** [//] *)

type node = {
  label : string option;  (** [None] = wildcard *)
  children : (edge * node) list;
}
(** A twig pattern; the pattern root may match any tree node. *)

val path : (string option * edge) list -> node
(** [path [(l0, _); (l1, e1); …]] is the path pattern
    [l0 e1 l1 e2 l2 …]; the first pair's edge is ignored. *)

val of_query : Cqtree.Query.t -> node option
(** Convert a conjunctive query if it is a twig: connected, tree-shaped
    with all binary atoms [Child]/[Descendant] oriented away from one root
    variable, and only label unaries.  Returns [None] otherwise. *)

val to_query : node -> Cqtree.Query.t
(** The twig as a conjunctive query with head = all pattern variables in
    pattern pre-order (variables [V0], [V1], …) — the ground-truth bridge
    used by tests. *)

val pattern_size : node -> int

val solutions : Treekit.Tree.t -> node -> int array list
(** All matches as tuples over the pattern nodes in pattern pre-order,
    sorted and deduplicated. *)

val path_stack : Treekit.Tree.t -> (string option * edge) list -> int array list
(** The PathStack algorithm proper, for path patterns (exposed for the
    Figure 6 / Proposition 6.10 benchmarks). *)
