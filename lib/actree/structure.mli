(** Finite relational structures of unary and binary relations.

    Section 6 of the paper states its results (arc-consistency,
    Prop. 6.2; the X-property, Def. 6.3; minimum valuations, Lemma 6.4;
    Theorem 6.5) over {e arbitrary} structures of unary and binary
    relations — trees are the special case the rest of the survey needs.
    This module provides such structures explicitly, so the general
    statements can be implemented and tested verbatim (including the
    paper's Example 6.1), and so the Gutjahr–Welzl–Woeginger H-colouring
    connection can be exercised on non-tree data. *)

type t

val create : size:int -> t
(** A structure with domain [{0, …, size-1}] and no relations. *)

val size : t -> int

val add_unary : t -> string -> int list -> unit
(** Define (or extend) a unary relation.
    @raise Invalid_argument on out-of-range elements. *)

val add_binary : t -> string -> (int * int) list -> unit
(** Define (or extend) a binary relation. *)

val unary_names : t -> string list
val binary_names : t -> string list

val mem_unary : t -> string -> int -> bool
(** False for unknown relation names. *)

val mem_binary : t -> string -> int -> int -> bool

val successors : t -> string -> int -> int list
(** [{ w | R(v, w) }], sorted.  [[]] for unknown names. *)

val predecessors : t -> string -> int -> int list

val unary_set : t -> string -> Treekit.Nodeset.t

val relation_size : t -> string -> int
(** Number of pairs in a binary relation. *)

val of_tree : Treekit.Tree.t -> Treekit.Axis.t list -> t
(** Materialise the given axes (named by {!Treekit.Axis.name}) and the
    label relations ([lab:a] for label [a]) of a tree — the bridge between
    the general machinery and the tree case.  Quadratic for transitive
    axes, by design (this is the ‖A‖ the paper's bounds charge). *)

val has_x_property : t -> string -> order:int array -> bool
(** Definition 6.3, checked exhaustively: for all [R(n1,n2)], [R(n0,n3)]
    with [n0 < n1] and [n2 < n3] in the given order (a permutation's rank
    array), [R(n0,n2)] must hold.  O(|R|²). *)

val x_closure : t -> string -> order:int array -> unit
(** Add the arcs forced by the X-property until a fixpoint is reached —
    a convenient way to {e make} relations with the X-property for tests
    and benchmarks. *)

val example_61 : unit -> t
(** The paper's Example 6.1 database over domain {1,…,4} (internally
    0-based: the paper's element k is [k-1]):
    [R = {(1,2), (3,4)}], [S = {(3,2), (1,4)}]. *)

val pp : Format.formatter -> t -> unit
