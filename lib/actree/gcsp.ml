module Nodeset = Treekit.Nodeset

type var = string

type atom = U of string * var | B of string * var * var

type query = { head : var list; atoms : atom list }

let atom_vars = function U (_, x) -> [ x ] | B (_, x, y) -> [ x; y ]

let vars q =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let visit x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      out := x :: !out
    end
  in
  List.iter visit q.head;
  List.iter (fun a -> List.iter visit (atom_vars a)) q.atoms;
  List.rev !out

(* reuse the cursor-parser structure of Cqtree.Query, with free-form names *)
let of_string input =
  let fail fmt = Format.kasprintf failwith fmt in
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while (match peek () with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false) do
      incr pos
    done
  in
  let is_word = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' -> true
    | _ -> false
  in
  let word () =
    skip_ws ();
    let start = !pos in
    while (match peek () with Some c when is_word c -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a name at offset %d" start;
    String.sub input start (!pos - start)
  in
  let eat c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail "expected %C at offset %d" c !pos
  in
  let is_var w = w <> "" && (match w.[0] with 'A' .. 'Z' | '_' -> true | _ -> false) in
  let _ = word () in
  skip_ws ();
  let head =
    match peek () with
    | Some '(' ->
      incr pos;
      let rec go acc =
        let w = word () in
        if not (is_var w) then fail "head arguments must be variables";
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          go (w :: acc)
        | Some ')' ->
          incr pos;
          List.rev (w :: acc)
        | _ -> fail "expected ',' or ')'"
      in
      go []
    | _ -> []
  in
  eat ':';
  eat '-';
  let parse_atom () =
    let name = word () in
    eat '(';
    let first = word () in
    if not (is_var first) then fail "atom arguments must be variables";
    skip_ws ();
    match peek () with
    | Some ')' ->
      incr pos;
      U (name, first)
    | Some ',' ->
      incr pos;
      let second = word () in
      if not (is_var second) then fail "expected a variable";
      eat ')';
      B (name, first, second)
    | _ -> fail "expected ',' or ')'"
  in
  let rec atoms acc =
    let a = parse_atom () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      incr pos;
      atoms (a :: acc)
    | Some '.' ->
      incr pos;
      List.rev (a :: acc)
    | None -> List.rev (a :: acc)
    | _ -> fail "expected ',' or '.' at offset %d" !pos
  in
  let q = { head; atoms = atoms [] } in
  let body_vars = List.concat_map atom_vars q.atoms in
  List.iter
    (fun h -> if not (List.mem h body_vars) then fail "unsafe head variable %s" h)
    q.head;
  q

let holds s q theta =
  List.for_all
    (function
      | U (p, x) -> Structure.mem_unary s p (theta x)
      | B (r, x, y) -> Structure.mem_binary s r (theta x) (theta y))
    q.atoms

let naive_enumerate s q ~on_solution =
  let vs = Array.of_list (vars q) in
  let k = Array.length vs in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.add index x i) vs;
  let n = Structure.size s in
  let assignment = Array.make k (-1) in
  let checks_at = Array.make k [] in
  let unary_at = Array.make k [] in
  List.iter
    (function
      | U (p, x) ->
        let i = Hashtbl.find index x in
        unary_at.(i) <- p :: unary_at.(i)
      | B (r, x, y) ->
        let ix = Hashtbl.find index x and iy = Hashtbl.find index y in
        checks_at.(max ix iy) <- (r, ix, iy) :: checks_at.(max ix iy))
    q.atoms;
  let rec go i =
    if i = k then on_solution assignment
    else
      for v = 0 to n - 1 do
        if List.for_all (fun p -> Structure.mem_unary s p v) unary_at.(i) then begin
          assignment.(i) <- v;
          if
            List.for_all
              (fun (r, ix, iy) -> Structure.mem_binary s r assignment.(ix) assignment.(iy))
              checks_at.(i)
          then go (i + 1);
          assignment.(i) <- -1
        end
      done
  in
  go 0

let naive_solutions s q =
  let vs = vars q in
  let positions =
    List.map
      (fun h ->
        let rec find i = function
          | [] -> assert false
          | x :: _ when x = h -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 vs)
      q.head
  in
  let seen = Hashtbl.create 64 in
  naive_enumerate s q ~on_solution:(fun a ->
      Hashtbl.replace seen (Array.of_list (List.map (fun i -> a.(i)) positions)) ());
  List.sort compare (Hashtbl.fold (fun t () acc -> t :: acc) seen [])

exception Found

let naive_boolean s q =
  try
    naive_enumerate s q ~on_solution:(fun _ -> raise Found);
    false
  with Found -> true

let arc_consistency s q =
  let n = Structure.size s in
  let domains = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace domains x (Nodeset.universe n)) (vars q);
  List.iter
    (function
      | U (p, x) -> Nodeset.inter_into (Hashtbl.find domains x) (Structure.unary_set s p)
      | B _ -> ())
    q.atoms;
  let binary = List.filter_map (function B (r, x, y) -> Some (r, x, y) | U _ -> None) q.atoms in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r, x, y) ->
        let dx = Hashtbl.find domains x and dy = Hashtbl.find domains y in
        let cx = Nodeset.cardinal dx and cy = Nodeset.cardinal dy in
        (* v stays in dx iff some R-successor is in dy; w stays in dy iff
           some R-predecessor is in dx *)
        Nodeset.iter
          (fun v ->
            if not (List.exists (Nodeset.mem dy) (Structure.successors s r v)) then
              Nodeset.remove dx v)
          (Nodeset.copy dx);
        Nodeset.iter
          (fun w ->
            if not (List.exists (Nodeset.mem dx) (Structure.predecessors s r w)) then
              Nodeset.remove dy w)
          (Nodeset.copy dy);
        if Nodeset.cardinal dx <> cx || Nodeset.cardinal dy <> cy then changed := true)
      binary
  done;
  let pv = List.map (fun x -> (x, Hashtbl.find domains x)) (vars q) in
  if List.exists (fun (_, s) -> Nodeset.is_empty s) pv then None else Some pv

let minimum_valuation ~order pv =
  List.map
    (fun (x, s) ->
      let best =
        Nodeset.fold
          (fun v best ->
            match best with
            | None -> Some v
            | Some b -> if order.(v) < order.(b) then Some v else best)
          s None
      in
      match best with
      | Some v -> (x, v)
      | None -> invalid_arg "Gcsp.minimum_valuation: empty set")
    pv

let boolean_via_x_property s q ~order =
  match arc_consistency s q with
  | None -> (false, None)
  | Some pv -> (true, Some (minimum_valuation ~order pv))

let homomorphism_query g ~edge_rel =
  let var i = Printf.sprintf "V%d" i in
  let atoms =
    List.concat_map
      (fun (u, v) -> [ B (edge_rel, var u, var v); B (edge_rel, var v, var u) ])
      (Treewidth.Graph.edges g)
  in
  (* a homomorphism into a symmetric edge relation; for directed targets
     callers can build the query directly *)
  { head = []; atoms }
