module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Nodeset = Treekit.Nodeset
open Cqtree.Query

(* one bump per directed revision of a binary constraint in the
   propagation loop; Theorem 6.5's O(||A||·|Q|) bound caps the total *)
let c_revisions = Obs.Counter.make "arc_revisions"

let c_domain = Obs.Counter.make "domain_nodes_retained"

let initial_domain tree env u d =
  let n = Tree.size tree in
  (match u with
  | Lab a -> Nodeset.inter_into d (Tree.label_set tree a)
  | Root ->
    let s = Nodeset.create n in
    Nodeset.add s (Tree.root tree);
    Nodeset.inter_into d s
  | Leaf | First_sibling | Last_sibling ->
    let keep v =
      match u with
      | Leaf -> Tree.is_leaf tree v
      | First_sibling -> Tree.is_first_sibling tree v
      | Last_sibling -> Tree.is_last_sibling tree v
      | _ -> assert false
    in
    let s = Nodeset.create n in
    for v = 0 to n - 1 do
      if keep v then Nodeset.add s v
    done;
    Nodeset.inter_into d s
  | Named p -> (
    match List.assoc_opt p env with
    | Some s -> Nodeset.inter_into d s
    | None -> invalid_arg ("Arc_consistency: unbound named predicate " ^ p))
  | False -> Nodeset.clear d
  | True -> ());
  d

let start_domains ?(env = []) q tree =
  let n = Tree.size tree in
  let domains = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace domains x (Nodeset.universe n)) (vars q);
  List.iter
    (function
      | U (u, x) -> ignore (initial_domain tree env u (Hashtbl.find domains x))
      | A _ -> ())
    q.atoms;
  domains

let result_of q domains =
  let pv = List.map (fun x -> (x, Hashtbl.find domains x)) (vars q) in
  if List.exists (fun (_, s) -> Nodeset.is_empty s) pv then None else Some pv

let direct ?env q tree =
  (match check q with Ok () -> () | Error m -> invalid_arg ("Arc_consistency: " ^ m));
  let domains = start_domains ?env q tree in
  let binary =
    List.filter_map (function A (a, x, y) -> Some (a, x, y) | U _ -> None) q.atoms
  in
  Obs.Span.with_ "arc-consistency:propagate" (fun () ->
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (a, x, y) ->
            Obs.Counter.incr c_revisions;
            let dx = Hashtbl.find domains x and dy = Hashtbl.find domains y in
            let cx = Nodeset.cardinal dx and cy = Nodeset.cardinal dy in
            Nodeset.inter_into dx (Axis.image tree (Axis.inverse a) dy);
            Nodeset.inter_into dy (Axis.image tree a dx);
            if Nodeset.cardinal dx <> cx || Nodeset.cardinal dy <> cy then
              changed := true)
          binary
      done);
  List.iter
    (fun x -> Obs.Counter.add c_domain (Nodeset.cardinal (Hashtbl.find domains x)))
    (vars q);
  result_of q domains

(* ------------------------------------------------------------------ *)
(* Proposition 6.2 verbatim: Horn-SAT over propositions Θ̄(x, v)
   ("v is NOT in Θ(x)"). *)

let build_hornsat ?(env = []) q tree =
  (match check q with Ok () -> () | Error m -> invalid_arg ("Arc_consistency: " ^ m));
  let n = Tree.size tree in
  let vs = Array.of_list (vars q) in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i x -> Hashtbl.add index x i) vs;
  let notin x v = (Hashtbl.find index x * n) + v in
  let f = Hornsat.create ~nvars:(Array.length vs * n) in
  (* unary atoms: Θ̄(x,v) ← .  whenever ¬P(v) *)
  let initial = start_domains ~env q tree in
  List.iter
    (fun x ->
      let d = Hashtbl.find initial x in
      for v = 0 to n - 1 do
        if not (Nodeset.mem d v) then ignore (Hornsat.add_rule f ~head:(notin x v) ~body:[])
      done)
    (vars q);
  (* binary atoms: for R(x,y):
       Θ̄(x,v) ← ⋀ { Θ̄(y,w) | R(v,w) }   for every v
       Θ̄(y,w) ← ⋀ { Θ̄(x,v) | R(v,w) }   for every w *)
  List.iter
    (function
      | U _ -> ()
      | A (a, x, y) ->
        for v = 0 to n - 1 do
          let body = Axis.fold tree a v (fun w acc -> notin y w :: acc) [] in
          ignore (Hornsat.add_rule f ~head:(notin x v) ~body)
        done;
        let inv = Axis.inverse a in
        for w = 0 to n - 1 do
          let body = Axis.fold tree inv w (fun v acc -> notin x v :: acc) [] in
          ignore (Hornsat.add_rule f ~head:(notin y w) ~body)
        done)
    q.atoms;
  (f, notin)

let via_hornsat ?env q tree =
  let f, notin = build_hornsat ?env q tree in
  let model = Hornsat.solve f in
  let n = Tree.size tree in
  let pv =
    List.map
      (fun x ->
        let s = Nodeset.create n in
        for v = 0 to n - 1 do
          if not model.(notin x v) then Nodeset.add s v
        done;
        (x, s))
      (vars q)
  in
  if List.exists (fun (_, s) -> Nodeset.is_empty s) pv then None else Some pv

let hornsat_program_size ?env q tree =
  let f, _ = build_hornsat ?env q tree in
  Hornsat.size_of_formula f
