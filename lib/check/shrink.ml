module Tree = Treekit.Tree

let parents_of t = Array.init (Tree.size t) (Tree.parent t)

let labels_of t = Array.init (Tree.size t) (Tree.label t)

let rebuild parents labels = Tree.of_parent_vector ~parents ~labels ()

(* remove the pre-order positions [k, k+len) and remap surviving parents *)
let remove_range parents labels k len =
  let n = Array.length parents in
  let keep i = i < k || i >= k + len in
  let remap i = if i < k then i else i - len in
  let parents' = Array.make (n - len) (-1) in
  let labels' = Array.make (n - len) "" in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if keep i then begin
      let p = parents.(i) in
      parents'.(!j) <- (if p < 0 then -1 else remap p);
      labels'.(!j) <- labels.(i);
      incr j
    end
  done;
  (parents', labels')

let delete_subtree t k =
  let parents = parents_of t and labels = labels_of t in
  let parents', labels' = remove_range parents labels k (Tree.subtree_size t k) in
  rebuild parents' labels'

(* children of [k] reattach to [k]'s parent; the remaining positions are
   still a valid pre-order of the contracted tree *)
let contract t k =
  let parents = parents_of t in
  let labels = labels_of t in
  Array.iteri (fun i p -> if p = k then parents.(i) <- parents.(k)) parents;
  let parents', labels' = remove_range parents labels k 1 in
  rebuild parents' labels'

let subtree_as_root t k =
  let sz = Tree.subtree_size t k in
  let parents = Array.init sz (fun i ->
      if i = 0 then -1 else Tree.parent t (k + i) - k)
  in
  let labels = Array.init sz (fun i -> Tree.label t (k + i)) in
  rebuild parents labels

let relabel t k l =
  let labels = labels_of t in
  labels.(k) <- l;
  rebuild (parents_of t) labels

let tree_candidates t =
  let n = Tree.size t in
  let by_size =
    (* delete big subtrees before leaves: fastest descent first *)
    List.init (n - 1) (fun i -> i + 1)
    |> List.sort (fun a b -> compare (Tree.subtree_size t b) (Tree.subtree_size t a))
  in
  let deletions = List.to_seq by_size |> Seq.map (fun k -> delete_subtree t k) in
  let promotions =
    List.to_seq by_size
    |> Seq.filter (fun k -> Tree.parent t k = 0)
    |> Seq.map (fun k -> subtree_as_root t k)
  in
  let contractions =
    List.to_seq (List.init (max 0 (n - 1)) (fun i -> i + 1))
    |> Seq.map (fun k -> contract t k)
  in
  let relabels =
    List.to_seq (List.init n (fun i -> i))
    |> Seq.filter (fun k -> Tree.label t k <> "a")
    |> Seq.map (fun k -> relabel t k "a")
  in
  Seq.append deletions (Seq.append promotions (Seq.append contractions relabels))

(* ------------------------------------------------------------------ *)
(* Query shrinking *)

let rec shrink_path (p : Xpath.Ast.path) : Xpath.Ast.path list =
  match p with
  | Xpath.Ast.Seq (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Xpath.Ast.Seq (a', b)) (shrink_path a)
    @ List.map (fun b' -> Xpath.Ast.Seq (a, b')) (shrink_path b)
  | Xpath.Ast.Union (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Xpath.Ast.Union (a', b)) (shrink_path a)
    @ List.map (fun b' -> Xpath.Ast.Union (a, b')) (shrink_path b)
  | Xpath.Ast.Step { axis; quals } ->
    let drop_one =
      List.mapi
        (fun i _ ->
          Xpath.Ast.Step
            { axis; quals = List.filteri (fun j _ -> j <> i) quals })
        quals
    in
    let shrink_in_place =
      List.concat
        (List.mapi
           (fun i q ->
             List.map
               (fun q' ->
                 Xpath.Ast.Step
                   {
                     axis;
                     quals = List.mapi (fun j q0 -> if j = i then q' else q0) quals;
                   })
               (shrink_qual q))
           quals)
    in
    drop_one @ shrink_in_place

and shrink_qual (q : Xpath.Ast.qual) : Xpath.Ast.qual list =
  match q with
  | Xpath.Ast.Lab _ -> []
  | Xpath.Ast.Exists p -> List.map (fun p' -> Xpath.Ast.Exists p') (shrink_path p)
  | Xpath.Ast.And (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Xpath.Ast.And (a', b)) (shrink_qual a)
    @ List.map (fun b' -> Xpath.Ast.And (a, b')) (shrink_qual b)
  | Xpath.Ast.Or (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Xpath.Ast.Or (a', b)) (shrink_qual a)
    @ List.map (fun b' -> Xpath.Ast.Or (a, b')) (shrink_qual b)
  | Xpath.Ast.Not a -> a :: List.map (fun a' -> Xpath.Ast.Not a') (shrink_qual a)

let shrink_cq (q : Cqtree.Query.t) : Cqtree.Query.t list =
  let drop_atom =
    List.mapi
      (fun i _ ->
        { q with Cqtree.Query.atoms = List.filteri (fun j _ -> j <> i) q.atoms })
      q.Cqtree.Query.atoms
  in
  let drop_head =
    if List.length q.Cqtree.Query.head > 1 then
      List.mapi
        (fun i _ ->
          { q with Cqtree.Query.head = List.filteri (fun j _ -> j <> i) q.head })
        q.Cqtree.Query.head
    else []
  in
  (* only keep safe queries: every head variable still bound by an atom *)
  List.filter
    (fun q' -> Result.is_ok (Cqtree.Query.check q'))
    (drop_atom @ drop_head)

let shrink_pattern (p : Streamq.Path_pattern.t) : Streamq.Path_pattern.t list =
  let drop_step =
    if List.length p > 1 then
      List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) p) p
    else []
  in
  let drop_label =
    List.concat
      (List.mapi
         (fun i (s : Streamq.Path_pattern.step) ->
           match s.label with
           | None -> []
           | Some _ ->
             [
               List.mapi
                 (fun j (s0 : Streamq.Path_pattern.step) ->
                   if j = i then { s0 with label = None } else s0)
                 p;
             ])
         p)
  in
  drop_step @ drop_label

let rec shrink_auto (e : Case.auto_expr) : Case.auto_expr list =
  match e with
  | Case.Conj (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Case.Conj (a', b)) (shrink_auto a)
    @ List.map (fun b' -> Case.Conj (a, b')) (shrink_auto b)
  | Case.Disj (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Case.Disj (a', b)) (shrink_auto a)
    @ List.map (fun b' -> Case.Disj (a, b')) (shrink_auto b)
  | Case.Compl a -> a :: List.map (fun a' -> Case.Compl a') (shrink_auto a)
  | Case.Exists_label _ | Case.Root_label _ | Case.All_leaves _
  | Case.Count_mod _ | Case.Every_desc _ | Case.Adjacent _ ->
    []

let shrink_setops ops =
  let drop_one =
    if List.length ops > 1 then
      List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) ops) ops
    else []
  in
  let simplify =
    List.concat
      (List.mapi
         (fun i op ->
           match op with
           | Case.Add_range (a, _) ->
             [ List.mapi (fun j o -> if j = i then Case.Add a else o) ops ]
           | _ -> [])
         ops)
  in
  drop_one @ simplify

let rec query_candidates = function
  | Case.Xpath p -> List.map (fun p' -> Case.Xpath p') (shrink_path p)
  | Case.Cq q -> List.map (fun q' -> Case.Cq q') (shrink_cq q)
  | Case.Pattern p -> List.map (fun p' -> Case.Pattern p') (shrink_pattern p)
  | Case.Auto e -> List.map (fun e' -> Case.Auto e') (shrink_auto e)
  | Case.Axis_law _ | Case.Order_law _ -> []
  | Case.Setops ops -> List.map (fun o -> Case.Setops o) (shrink_setops ops)
  (* a failing report is already a self-contained repro: the JSON in the
     report line replays it without shrinking *)
  | Case.Obs_report _ -> []
  | Case.Sketch_sample xs ->
    if List.length xs > 1 then
      List.mapi
        (fun i _ -> Case.Sketch_sample (List.filteri (fun j _ -> j <> i) xs))
        xs
    else []
  | Case.Standing ops ->
    (* drop one op (unregister IDs are script positions, resolved
       leniently at interpretation, so dropped registrations leave the
       script valid), then shrink registered queries in place *)
    let drop_one =
      if List.length ops > 1 then
        List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) ops) ops
      else []
    in
    let shrink_in_place =
      List.concat
        (List.mapi
           (fun i op ->
             match op with
             | Case.S_register q ->
               List.map
                 (fun q' ->
                   List.mapi
                     (fun j o -> if j = i then Case.S_register q' else o)
                     ops)
                 (query_candidates q)
             | Case.S_unregister _ | Case.S_match -> [])
           ops)
    in
    List.map (fun o -> Case.Standing o) (drop_one @ shrink_in_place)

let candidates (c : Case.t) =
  let queries =
    List.to_seq (query_candidates c.query)
    |> Seq.map (fun q -> { c with Case.query = q })
  in
  let trees =
    tree_candidates c.tree |> Seq.map (fun t -> { c with Case.tree = t })
  in
  Seq.append queries trees

let minimize ?(budget = 4000) ~still_fails c0 =
  let attempts = ref 0 in
  let steps = ref 0 in
  let rec loop c =
    let rec scan seq =
      if !attempts >= budget then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (cand, rest) ->
          incr attempts;
          if still_fails cand then Some cand else scan rest
    in
    match scan (candidates c) with
    | Some smaller ->
      incr steps;
      loop smaller
    | None -> c
  in
  let result = loop c0 in
  (result, !steps)
