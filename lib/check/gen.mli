(** Seeded, size-parameterized case generation.

    Composes the explicit-state generators of {!Treekit.Generator},
    {!Xpath.Generator}, {!Cqtree.Generator} and {!Streamq.Path_pattern}
    into joint (tree, query) cases.  Everything is driven by one
    [Random.State.t] threaded through all composed calls, so a case is a
    pure function of [(seed, case index, salt)] — the triple printed in a
    repro line — independent of which other oracles ran before it. *)

type config = {
  max_nodes : int;  (** upper bound on generated tree size *)
  labels : string array;
      (** master label alphabet; each case draws a prefix of it *)
}

val default : config
(** 40 nodes, alphabet [a b c d]. *)

val rng_for : seed:int -> case:int -> salt:string -> Random.State.t
(** The per-(case, oracle) random state.  [salt] is hashed with a stable
    string hash (no dependence on OCaml's [Hashtbl.hash]), so replaying a
    single oracle reproduces its cases bit-for-bit. *)

val tree : config -> Random.State.t -> Treekit.Tree.t
(** A tree of 1 .. [max_nodes] nodes with a randomly chosen shape
    (uniform-recursive, depth-biased, path, star, full) and a random label
    alphabet prefix. *)

val xpath :
  ?axes:Treekit.Axis.t list ->
  ?allow_negation:bool ->
  ?allow_union:bool ->
  ?max_depth:int ->
  config ->
  Random.State.t ->
  Case.query
(** A random Core XPath query; the axis pool defaults to a random choice
    among several mixes (all axes, forward-only, vertical-only,
    sibling-heavy, upward-heavy). *)

val cq_acyclic : config -> Random.State.t -> Case.query
(** Tree-shaped conjunctive query, occasionally with a parallel atom. *)

val cq_arbitrary : config -> Random.State.t -> Case.query
(** Possibly cyclic conjunctive query over all axes. *)

val cq_xproperty : config -> Random.State.t -> Case.query
(** Possibly cyclic query whose axes are drawn from one of the three
    maximal tractable signatures of Corollary 6.7 (τ₁/τ₂/τ₃). *)

val pattern : config -> Random.State.t -> Case.query
(** Streaming forward path pattern. *)

val auto : config -> Random.State.t -> Case.query
(** Composed tree automaton (conjunction/disjunction/complement over the
    example automata). *)

val axis_law : config -> Random.State.t -> Case.query

val order_law : config -> Random.State.t -> Case.query

val setops : config -> Random.State.t -> Case.query
(** A node-set algebra script of 1–12 operations. *)

val standing : config -> Random.State.t -> Case.query
(** A standing-query script of 3–9 operations: registrations drawn
    across all four index classes (path spines, qualified forward XPath,
    general XPath, CQs, composed automata), unregistrations of earlier
    script positions, match points; always ends on a match. *)

val obs_report : config -> Random.State.t -> Case.query
(** A synthetic {!Obs.Report.t}: nested spans with typed attributes,
    counters, histogram summaries and scope profiles.  Durations are
    whole microseconds and names exercise every JSON string-escape
    class, so the serialised report must be a round-trip fixpoint. *)

val sketch_sample : config -> Random.State.t -> Case.query
(** An adversarial sample (1–24 values) for the telemetry quantile
    sketch: all-equal, sorted, reverse-sorted, single-element,
    two-valued or random, on a quarter-integer value grid so all
    arithmetic is exact. *)
