module A = Automata.Automaton

type auto_expr =
  | Exists_label of string
  | Root_label of string
  | All_leaves of string
  | Count_mod of string * int * int
  | Every_desc of string * string
  | Adjacent of string * string
  | Conj of auto_expr * auto_expr
  | Disj of auto_expr * auto_expr
  | Compl of auto_expr

type setop =
  | Add of int
  | Remove of int
  | Add_range of int * int
  | Union_label of string
  | Inter_label of string
  | Diff_label of string
  | Complement

type query =
  | Xpath of Xpath.Ast.path
  | Cq of Cqtree.Query.t
  | Pattern of Streamq.Path_pattern.t
  | Auto of auto_expr
  | Axis_law of Treekit.Axis.t
  | Order_law of Treekit.Order.kind
  | Setops of setop list
  | Obs_report of Obs.Report.t
  | Sketch_sample of float list
  | Standing of standing_op list

and standing_op =
  | S_register of query
  | S_unregister of int
  | S_match

type t = { tree : Treekit.Tree.t; query : query }

let rec automaton = function
  | Exists_label l -> A.exists_label l
  | Root_label l -> A.root_label l
  | All_leaves l -> A.all_leaves_labeled l
  | Count_mod (l, m, r) -> A.count_label_mod l ~modulus:m ~residue:r
  | Every_desc (a, b) -> A.every_a_has_b_descendant a b
  | Adjacent (a, b) -> A.adjacent_children a b
  | Conj (a, b) -> A.conj (automaton a) (automaton b)
  | Disj (a, b) -> A.disj (automaton a) (automaton b)
  | Compl a -> A.complement (automaton a)

let rec auto_size = function
  | Exists_label _ | Root_label _ | All_leaves _ | Count_mod _ | Every_desc _
  | Adjacent _ ->
    1
  | Conj (a, b) | Disj (a, b) -> 1 + auto_size a + auto_size b
  | Compl a -> 1 + auto_size a

let rec auto_to_string = function
  | Exists_label l -> Printf.sprintf "exists(%s)" l
  | Root_label l -> Printf.sprintf "root(%s)" l
  | All_leaves l -> Printf.sprintf "all-leaves(%s)" l
  | Count_mod (l, m, r) -> Printf.sprintf "count(%s) mod %d = %d" l m r
  | Every_desc (a, b) -> Printf.sprintf "every(%s)-has-desc(%s)" a b
  | Adjacent (a, b) -> Printf.sprintf "adjacent(%s,%s)" a b
  | Conj (a, b) -> Printf.sprintf "(%s & %s)" (auto_to_string a) (auto_to_string b)
  | Disj (a, b) -> Printf.sprintf "(%s | %s)" (auto_to_string a) (auto_to_string b)
  | Compl a -> Printf.sprintf "!%s" (auto_to_string a)

let setop_to_string = function
  | Add i -> Printf.sprintf "add %d" i
  | Remove i -> Printf.sprintf "remove %d" i
  | Add_range (lo, hi) -> Printf.sprintf "add-range %d %d" lo hi
  | Union_label l -> Printf.sprintf "union lab(%s)" l
  | Inter_label l -> Printf.sprintf "inter lab(%s)" l
  | Diff_label l -> Printf.sprintf "diff lab(%s)" l
  | Complement -> "complement"

let rec query_size = function
  | Xpath p -> Xpath.Ast.size p
  | Cq q -> Cqtree.Query.atom_count q
  | Pattern p -> Streamq.Path_pattern.length p
  | Auto e -> auto_size e
  | Axis_law _ | Order_law _ -> 1
  | Setops ops -> List.length ops
  | Obs_report r ->
    Obs.Report.span_count r
    + List.length r.Obs.Report.counters
    + List.length r.Obs.Report.histograms
    + List.length r.Obs.Report.profiles
  | Sketch_sample xs -> List.length xs
  | Standing ops ->
    List.fold_left
      (fun acc op ->
        acc
        + match op with S_register q -> 1 + query_size q | S_unregister _ | S_match -> 1)
      0 ops

let rec query_to_string = function
  | Xpath p -> "xpath: " ^ Xpath.Ast.to_string p
  | Cq q -> "cq: " ^ Cqtree.Query.to_string q
  | Pattern p -> "pattern: " ^ Streamq.Path_pattern.to_string p
  | Auto e -> "automaton: " ^ auto_to_string e
  | Axis_law a -> "axis-law: " ^ Treekit.Axis.name a
  | Order_law k -> "order-law: " ^ Treekit.Order.kind_name k
  | Setops ops -> "setops: " ^ String.concat "; " (List.map setop_to_string ops)
  | Obs_report r -> "obs-report: " ^ Obs.Report.to_json r
  | Sketch_sample xs ->
    "sketch-sample: " ^ String.concat " " (List.map (Printf.sprintf "%g") xs)
  | Standing ops -> "standing: " ^ String.concat "; " (List.map standing_op_to_string ops)

and standing_op_to_string = function
  | S_register q -> Printf.sprintf "register(%s)" (query_to_string q)
  | S_unregister k -> Printf.sprintf "unregister %d" k
  | S_match -> "match"

let size c = Treekit.Tree.size c.tree + query_size c.query

let to_string c =
  Printf.sprintf "tree (%d nodes): %s\n%s" (Treekit.Tree.size c.tree)
    (Treekit.Xml.to_string c.tree)
    (query_to_string c.query)
