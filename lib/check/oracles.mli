(** The oracle registry: engine pairs and metamorphic laws.

    An oracle owns a case-generation recipe (which query family it needs)
    and a [run] function that compares two or more independent evaluation
    paths on one case.  Each oracle names the theorem of the paper it
    guards, so a discrepancy report points straight at the claim that
    broke (see DESIGN.md, "Differential oracle map"). *)

type verdict =
  | Pass
  | Skip of string
      (** the case falls outside the oracle's fragment (e.g. a cyclic
          query for Yannakakis, an unsupported X-property signature) *)
  | Fail of string  (** human-readable description of the disagreement *)

type t = {
  name : string;  (** stable identifier, used in [--oracles] and repro lines *)
  theorem : string;  (** the paper claim this oracle guards *)
  cap_nodes : int;
      (** per-oracle tree-size cap (min-ed with the configured
          [max_nodes]) bounding the slow reference engine *)
  gen : Gen.config -> Random.State.t -> Case.query;
  run : Case.t -> verdict;
}

val all : t list
(** The full registry, in documentation order. *)

val find : string -> t option

val names : unit -> string list

(** {1 Helpers shared with {!Fault}} *)

val sets_equal : string -> Treekit.Nodeset.t -> Treekit.Nodeset.t -> verdict
(** [Pass] iff the two node sets are equal, else a [Fail] showing both
    sides' elements (truncated). *)

val solutions_equal : string -> int array list -> int array list -> verdict
(** Equality of sorted, deduplicated head-tuple lists. *)
