(** Joint (tree, query) test cases for the differential oracle.

    A case pairs a document tree with a "query" in the widest sense: a Core
    XPath expression, a conjunctive query, a streaming path pattern, a
    composed tree automaton, or the parameter of a metamorphic law (an axis,
    an order, a node-set-algebra script).  Every variant serialises to a
    replayable textual form so a failing case can be reported as
    [seed + serialized case] and reproduced bit-for-bit. *)

(** Composed tree automata, as a shrinkable expression over the example
    automata of {!Automata.Automaton} and the closure combinators. *)
type auto_expr =
  | Exists_label of string
  | Root_label of string
  | All_leaves of string
  | Count_mod of string * int * int  (** label, modulus, residue *)
  | Every_desc of string * string
  | Adjacent of string * string
  | Conj of auto_expr * auto_expr
  | Disj of auto_expr * auto_expr
  | Compl of auto_expr

(** One step of a node-set-algebra script, interpreted against both
    {!Treekit.Nodeset} and a boolean-array model.  Integer arguments are
    taken modulo the tree size at interpretation time, so scripts survive
    tree shrinking. *)
type setop =
  | Add of int
  | Remove of int
  | Add_range of int * int
  | Union_label of string
  | Inter_label of string
  | Diff_label of string
  | Complement

type query =
  | Xpath of Xpath.Ast.path
  | Cq of Cqtree.Query.t
  | Pattern of Streamq.Path_pattern.t
  | Auto of auto_expr
  | Axis_law of Treekit.Axis.t  (** metamorphic axis-image laws *)
  | Order_law of Treekit.Order.kind  (** pre/post/bflr order invariants *)
  | Setops of setop list  (** node-set algebra vs the bool-array model *)
  | Obs_report of Obs.Report.t
      (** a synthetic observability report; the tree is ignored and the
          oracle checks the JSON round-trip fixpoint *)
  | Sketch_sample of float list
      (** a sample for the telemetry quantile sketch; the tree is ignored
          and the oracle compares sketch quantiles (single and merged in
          several association orders) with exact sorted-array quantiles *)
  | Standing of standing_op list
      (** a standing-query script against one document: registrations
          (nested queries, including composed automata), unregistrations
          and match points, interpreted against both the shared
          {!Subscribe.Index} and one-at-a-time evaluation *)

(** One step of a standing-query script.  [S_register] at script
    position [i] registers under subscription ID [i]; [S_unregister k]
    unregisters ID [k] (a no-op when [k] is not live, so scripts survive
    shrinking); [S_match] matches the case tree and compares fired
    sets. *)
and standing_op =
  | S_register of query
  | S_unregister of int
  | S_match

type t = { tree : Treekit.Tree.t; query : query }

val automaton : auto_expr -> Automata.Automaton.t
(** Compile the expression with the {!Automata.Automaton} combinators. *)

val size : t -> int
(** Tree nodes + query size — the measure the shrinker decreases. *)

val query_size : query -> int

val query_to_string : query -> string

val setop_to_string : setop -> string

val standing_op_to_string : standing_op -> string

val to_string : t -> string
(** The serialized repro: the tree as one-line XML plus the query. *)
