(** The differential-check driver.

    For each case index [k] and each selected oracle [o], the case is
    generated from the random state [Gen.rng_for ~seed ~case:k
    ~salt:o.name] — a pure function of the triple, independent of which
    other oracles or case indices ran.  A discrepancy is therefore
    replayable with

    {v treequery check --seed SEED --from K --cases 1 --oracles NAME v}

    which is exactly the repro line the report prints.  Progress and cost
    are recorded in the [check_*] observability counters and the ["check"]
    span, so [--trace]/[--stats-json] work on check runs like on any other
    subcommand. *)

type config = {
  seed : int;
  cases : int;  (** number of case indices to run *)
  from : int;  (** first case index *)
  max_nodes : int;  (** global tree-size ceiling (per-oracle caps still apply) *)
  oracles : Oracles.t list;
  shrink_budget : int;  (** predicate evaluations per discrepancy *)
  max_failures : int;  (** stop early after this many discrepancies *)
}

val default : config
(** seed 42, 200 cases from 0, 40-node ceiling, the full {!Oracles.all}
    registry, shrink budget 4000, stop after 10 failures. *)

type discrepancy = {
  oracle_name : string;
  theorem : string;
  case_index : int;
  seed : int;
  message : string;  (** the oracle's disagreement, from the original case *)
  original_size : int;
  shrunk : Case.t;
  shrink_steps : int;
}

type stats = {
  run_config : config;
  per_oracle : (string * int * int * int) list;
      (** oracle name, passes, skips, fails — registry order *)
  discrepancies : discrepancy list;  (** in discovery order *)
}

val run : config -> stats

val discrepancy_count : stats -> int

val to_text : stats -> string
(** Human-readable report: a per-oracle table, then one block per
    discrepancy with the shrunk case and its repro line. *)
