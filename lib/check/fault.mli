(** Fault injection: a deliberately broken kernel behind a real engine.

    The acceptance test for the whole harness: wire a mutated galloping
    set-intersection (the probe loop stops one element short, so the
    highest-numbered probe of the small side is dropped whenever the
    galloping path is taken) into a forward Core XPath evaluator, and
    demand that the differential run {e catches} the bug and {e shrinks}
    it to a handful of nodes.  The control oracle runs the identical
    evaluator with the correct intersection and must never fail. *)

val buggy_inter :
  Treekit.Nodeset.t -> Treekit.Nodeset.t -> Treekit.Nodeset.t
(** Galloping intersection with the injected off-by-one: when one side is
    more than twice the other, probe the small side against the large —
    but the loop runs [0 .. cs-2] instead of [0 .. cs-1].  Falls back to
    the correct dense path when the sides are comparable, so the bug only
    fires on skewed inputs (exactly what galloping is for). *)

val eval_with_inter :
  inter:(Treekit.Nodeset.t -> Treekit.Nodeset.t -> Treekit.Nodeset.t) ->
  Treekit.Tree.t ->
  Xpath.Ast.path ->
  Treekit.Nodeset.t
(** The set-at-a-time forward evaluation of {!Xpath.Eval} with the
    qualifier intersection kernel supplied by the caller:
    [F(step, S) = inter (image axis S) qual-set]. *)

val oracle : Oracles.t
(** ["inject-galloping"]: {!Xpath.Eval.query} vs the evaluator with
    {!buggy_inter}.  Expected to fail (that is the point); used by tests
    and [treequery check --inject]. *)

val control : Oracles.t
(** ["inject-control"]: the same evaluator with the correct
    {!Treekit.Nodeset.inter} — must pass on every case, demonstrating the
    harness itself is sound. *)
