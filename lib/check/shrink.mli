(** Greedy case minimisation.

    Shrinking works on both halves of a case: the tree (delete a whole
    subtree, contract one node into its parent, promote a root child to be
    the new root, normalise a label to ["a"]) and the query (drop a
    qualifier, an atom, a step, a set operation; unwrap a connective).
    Every tree surgery works directly on the pre-order parent vector —
    deleting a contiguous descendant range or one position keeps the
    vector a valid pre-order, so candidates rebuild with
    {!Treekit.Tree.of_parent_vector}.

    Minimisation is greedy: scan the candidates of the current case in
    order and restart from the first one on which the failure persists,
    until no candidate fails or the attempt budget is exhausted. *)

val tree_candidates : Treekit.Tree.t -> Treekit.Tree.t Seq.t
(** Strictly smaller (or equal-size, label-simplified) trees, biggest
    deletions first. *)

val query_candidates : Case.query -> Case.query list
(** Strictly simpler queries of the same kind. *)

val candidates : Case.t -> Case.t Seq.t
(** Query shrinks (cheap, tree unchanged) first, then tree shrinks. *)

val minimize :
  ?budget:int -> still_fails:(Case.t -> bool) -> Case.t -> Case.t * int
(** [minimize ~still_fails c] greedily minimises a failing case; the
    predicate must treat an exception in the oracle as a failure.  Returns
    the smallest case found and the number of accepted shrink steps.
    [budget] (default 4000) caps the number of predicate evaluations. *)
