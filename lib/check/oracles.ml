module Ns = Treekit.Nodeset
module Tree = Treekit.Tree
module Axis = Treekit.Axis
module Order = Treekit.Order

type verdict = Pass | Skip of string | Fail of string

type t = {
  name : string;
  theorem : string;
  cap_nodes : int;
  gen : Gen.config -> Random.State.t -> Case.query;
  run : Case.t -> verdict;
}

let show_set s =
  let xs = Ns.elements s in
  let shown = List.filteri (fun i _ -> i < 12) xs in
  let body = String.concat "," (List.map string_of_int shown) in
  let ell = if List.length xs > 12 then ",…" else "" in
  Printf.sprintf "{%s%s} (%d)" body ell (Ns.cardinal s)

let sets_equal what a b =
  if Ns.equal a b then Pass
  else Fail (Printf.sprintf "%s: %s vs %s" what (show_set a) (show_set b))

let show_solutions sols =
  let tup a =
    "(" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ ")"
  in
  let shown = List.filteri (fun i _ -> i < 8) sols in
  let ell = if List.length sols > 8 then ";…" else "" in
  Printf.sprintf "[%s%s] (%d)"
    (String.concat ";" (List.map tup shown))
    ell (List.length sols)

let solutions_equal what a b =
  if a = b then Pass
  else
    Fail
      (Printf.sprintf "%s: %s vs %s" what (show_solutions a) (show_solutions b))

let wrong_query name c =
  Skip (Printf.sprintf "%s: unexpected query kind %s" name
          (Case.query_to_string c.Case.query))

(* ------------------------------------------------------------------ *)
(* Core XPath engine pairs                                             *)

let xpath_spec =
  {
    name = "xpath-spec";
    theorem = "Section 3 semantics (P1)-(P4), (Q1)-(Q5)";
    cap_nodes = 20;
    gen = (fun cfg rng -> Gen.xpath ~max_depth:2 cfg rng);
    run =
      (fun c ->
        match c.Case.query with
        | Case.Xpath p ->
          sets_equal "Eval vs Semantics"
            (Xpath.Eval.query c.tree p)
            (Xpath.Semantics.query c.tree p)
        | _ -> wrong_query "xpath-spec" c);
  }

let xpath_datalog =
  {
    name = "xpath-datalog";
    theorem = "Theorem 3.2: Core XPath = monadic datalog (via Horn-SAT)";
    cap_nodes = 40;
    gen = Gen.xpath;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Xpath p ->
          let reference = Xpath.Eval.query c.tree p in
          let plain = Xpath.To_datalog.eval_via_datalog ~tmnf:false c.tree p in
          let tmnf = Xpath.To_datalog.eval_via_datalog ~tmnf:true c.tree p in
          (match sets_equal "Eval vs datalog" reference plain with
          | Pass -> sets_equal "Eval vs datalog(TMNF)" reference tmnf
          | v -> v)
        | _ -> wrong_query "xpath-datalog" c);
  }

let xpath_fo2 =
  {
    name = "xpath-fo2";
    theorem = "Section 4 (Marx): Core XPath embeds in FO², time O(n^2 * |Q|)";
    cap_nodes = 16;
    gen = (fun cfg rng -> Gen.xpath ~max_depth:2 cfg rng);
    run =
      (fun c ->
        match c.Case.query with
        | Case.Xpath p ->
          sets_equal "Eval vs FO2"
            (Xpath.Eval.query c.tree p)
            (Folang.Eval.unary c.tree (Folang.Of_xpath.unary p))
        | _ -> wrong_query "xpath-fo2" c);
  }

let xpath_forward =
  {
    name = "xpath-forward";
    theorem = "Section 5 / Theorem 5.1: reverse-axis elimination";
    cap_nodes = 25;
    gen =
      (fun cfg rng ->
        Gen.xpath ~allow_negation:false ~allow_union:false ~max_depth:2 cfg rng);
    run =
      (fun c ->
        match c.Case.query with
        | Case.Xpath p -> (
          match Xpath.Forward.rewrite p with
          | None -> Skip "not conjunctive / not forward-expressible"
          | Some fwd ->
            sets_equal "Eval vs Eval(forward rewrite)"
              (Xpath.Eval.query c.tree p)
              (Xpath.Eval.query c.tree fwd))
        | _ -> wrong_query "xpath-forward" c);
  }

let xpath_stream =
  {
    name = "xpath-stream";
    theorem = "Section 5: streaming twig filter = in-memory Boolean answer";
    cap_nodes = 40;
    gen =
      (fun cfg rng ->
        Gen.xpath
          ~axes:[ Axis.Child; Axis.Descendant; Axis.Descendant_or_self ]
          ~allow_negation:false ~allow_union:false cfg rng);
    run =
      (fun c ->
        match c.Case.query with
        | Case.Xpath p -> (
          let reference = not (Ns.is_empty (Xpath.Eval.query c.tree p)) in
          match Streamq.Xpath_filter.matches c.tree p with
          | None -> Skip "outside the streaming twig fragment"
          | Some b when b <> reference ->
            Fail
              (Printf.sprintf "stream filter %b vs in-memory %b" b reference)
          | Some _ -> (
            match Streamq.Xpath_filter.feed p with
            | None -> Fail "matches is Some but feed is None"
            | Some (push, finish) ->
              Treekit.Event.iter c.tree push;
              let incremental = finish () in
              if incremental = reference then Pass
              else
                Fail
                  (Printf.sprintf "incremental feed %b vs in-memory %b"
                     incremental reference)))
        | _ -> wrong_query "xpath-stream" c);
  }

(* ------------------------------------------------------------------ *)
(* Conjunctive-query engine pairs                                      *)

let cq_yannakakis =
  {
    name = "cq-yannakakis";
    theorem = "Proposition 4.2: acyclic CQs in O(||A|| * |Q|) by semijoins";
    cap_nodes = 16;
    gen = Gen.cq_acyclic;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Cq q -> (
          try
            solutions_equal "Naive vs Yannakakis"
              (Cqtree.Naive.solutions q c.tree)
              (Cqtree.Yannakakis.solutions q c.tree)
          with Cqtree.Yannakakis.Cyclic m -> Skip ("cyclic: " ^ m))
        | _ -> wrong_query "cq-yannakakis" c);
  }

let cq_rewrite =
  {
    name = "cq-rewrite";
    theorem = "Theorem 5.1: CQ = union of acyclic queries";
    cap_nodes = 12;
    gen = Gen.cq_arbitrary;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Cq q ->
          solutions_equal "Naive vs Rewrite"
            (Cqtree.Naive.solutions q c.tree)
            (Cqtree.Rewrite.solutions q c.tree)
        | _ -> wrong_query "cq-rewrite" c);
  }

let cq_actree =
  {
    name = "cq-actree";
    theorem = "Theorem 6.5 / Corollary 6.7: X-property arc consistency";
    cap_nodes = 14;
    gen = Gen.cq_xproperty;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Cq q -> (
          match Actree.Xeval.solutions q c.tree with
          | None -> Skip "signature outside the tractable classes"
          | Some sols ->
            solutions_equal "Naive vs Actree"
              (Cqtree.Naive.solutions q c.tree)
              sols)
        | _ -> wrong_query "cq-actree" c);
  }

(* ------------------------------------------------------------------ *)
(* Streaming and automata                                              *)

let stream_path =
  {
    name = "stream-path";
    theorem = "Section 5: one-pass O(depth * |Q|) path-pattern matching";
    cap_nodes = 40;
    gen = Gen.pattern;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Pattern p -> (
          let selected = Streamq.Path_matcher.select c.tree p in
          let reference =
            Xpath.Eval.query c.tree (Streamq.Path_pattern.to_xpath p)
          in
          match sets_equal "matcher vs Eval(to_xpath)" selected reference with
          | Pass ->
            let push, finish = Streamq.Path_matcher.feed p in
            Treekit.Event.iter c.tree push;
            let stats = finish () in
            if stats.Streamq.Path_matcher.matches = Ns.cardinal selected then
              Pass
            else
              Fail
                (Printf.sprintf "feed counted %d matches, select has %d"
                   stats.Streamq.Path_matcher.matches (Ns.cardinal selected))
          | v -> v)
        | _ -> wrong_query "stream-path" c);
  }

let automata_stream =
  {
    name = "automata-stream";
    theorem = "Sections 4, 7: MSO via tree automata; streaming run O(depth)";
    cap_nodes = 40;
    gen = Gen.auto;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Auto e ->
          let a = Case.automaton e in
          let bottom_up = Automata.Automaton.run a c.tree in
          let streamed =
            Automata.Automaton.run_events a (Treekit.Event.to_seq c.tree)
          in
          let stepper = Automata.Automaton.stepper a in
          Treekit.Event.iter c.tree (Automata.Automaton.step stepper);
          let pushed = Automata.Automaton.accepted stepper in
          let states = Automata.Automaton.state_at a c.tree in
          let at_root = a.Automata.Automaton.accept states.(0) in
          if bottom_up <> streamed then
            Fail
              (Printf.sprintf "bottom-up %b vs streaming %b" bottom_up streamed)
          else if pushed <> Some bottom_up then
            Fail
              (Printf.sprintf "push-stepper %s vs bottom-up %b"
                 (match pushed with
                 | None -> "None"
                 | Some b -> Printf.sprintf "Some %b" b)
                 bottom_up)
          else if bottom_up <> at_root then
            Fail
              (Printf.sprintf "run %b vs accept(state_at root) %b" bottom_up
                 at_root)
          else Pass
        | _ -> wrong_query "automata-stream" c);
  }

(* ------------------------------------------------------------------ *)
(* Metamorphic laws                                                    *)

(* deterministic set family derived from the tree: label sets, their
   complements' building blocks, extremes, and a middle range.  Derived
   (not generated) so the family shrinks with the tree. *)
let set_family t =
  let n = Tree.size t in
  let labels = [ "a"; "b"; "c"; "d" ] in
  let label_sets = List.map (fun l -> Tree.label_set t l) labels in
  let range =
    let s = Ns.create n in
    Ns.add_range s (n / 3) (2 * n / 3);
    s
  in
  Ns.universe n :: Ns.create n :: Ns.of_list n [ 0 ] :: range :: label_sets

let axis_law_run c =
  match c.Case.query with
  | Case.Axis_law a ->
    let t = c.Case.tree in
    let n = Tree.size t in
    let reference s =
      (* {v | exists u in s. a(u,v)} from the O(1) mem characterisation *)
      let out = Ns.create n in
      for v = 0 to n - 1 do
        if Ns.fold (fun u acc -> acc || Axis.mem t a u v) s false then
          Ns.add out v
      done;
      out
    in
    let family = set_family t in
    let check_source s =
      let img = Axis.image t a s in
      match sets_equal "image vs mem-reference" img (reference s) with
      | Pass ->
        List.fold_left
          (fun acc w ->
            match acc with
            | Pass ->
              (* image_within must agree with inter(image, within) and be
                 monotone in the source *)
              let direct = Axis.image_within t a s w in
              let composed = Ns.inter img w in
              (match sets_equal "image_within vs inter(image)" direct composed
               with
              | Pass ->
                let sub = Ns.inter s w in
                if Ns.subset (Axis.image t a sub) img then Pass
                else Fail "image not monotone in the source set"
              | v -> v)
            | v -> v)
          Pass family
      | v -> v
    in
    List.fold_left
      (fun acc s -> match acc with Pass -> check_source s | v -> v)
      Pass family
  | _ -> wrong_query "law-axis" c

let law_axis =
  {
    name = "law-axis";
    theorem = "Section 2: axis algebra (image/mem/image_within agreement)";
    cap_nodes = 30;
    gen = Gen.axis_law;
    run = axis_law_run;
  }

let order_law_run c =
  match c.Case.query with
  | Case.Order_law k ->
    let t = c.Case.tree in
    let n = Tree.size t in
    let fail = ref None in
    let set_fail msg = if !fail = None then fail := Some msg in
    for u = 0 to n - 1 do
      let r = Order.rank t k u in
      if Order.node_of_rank t k r <> u then
        set_fail
          (Printf.sprintf "node_of_rank (rank %d) <> %d in %s" r u
             (Order.kind_name k));
      for v = 0 to n - 1 do
        if Order.lt t k u v <> Order.lt_defined t k u v then
          set_fail
            (Printf.sprintf "lt vs lt_defined disagree on (%d,%d) in %s" u v
               (Order.kind_name k));
        (* the paper's interdefinability: Child+ and Following from the
           orders (Section 2) *)
        let descendant = Order.lt t Order.Pre u v && Order.lt t Order.Post v u in
        if Axis.mem t Axis.Descendant u v <> descendant then
          set_fail
            (Printf.sprintf "Descendant(%d,%d) <> pre/post characterisation" u
               v);
        let following = Order.lt t Order.Pre u v && Order.lt t Order.Post u v in
        if Axis.mem t Axis.Following u v <> following then
          set_fail
            (Printf.sprintf "Following(%d,%d) <> pre/post characterisation" u v)
      done
    done;
    (match !fail with Some m -> Fail m | None -> Pass)
  | _ -> wrong_query "law-order" c

let law_order =
  {
    name = "law-order";
    theorem = "Section 2: <pre/<post/<bflr interdefinability with Child+, Following";
    cap_nodes = 30;
    gen = Gen.order_law;
    run = order_law_run;
  }

let setops_run c =
  match c.Case.query with
  | Case.Setops ops ->
    let t = c.Case.tree in
    let n = Tree.size t in
    let ns = ref (Ns.create n) in
    let model = Array.make n false in
    let apply_label f l =
      let ls = Tree.label_set t l in
      ns := f !ns ls;
      ls
    in
    let step i op =
      (match op with
      | Case.Add x ->
        Ns.add !ns (x mod n);
        model.(x mod n) <- true
      | Case.Remove x ->
        Ns.remove !ns (x mod n);
        model.(x mod n) <- false
      | Case.Add_range (a, b) ->
        let lo = min (a mod n) (b mod n) and hi = max (a mod n) (b mod n) in
        Ns.add_range !ns lo hi;
        for j = lo to hi do
          model.(j) <- true
        done
      | Case.Union_label l ->
        let ls = apply_label Ns.union l in
        for j = 0 to n - 1 do
          model.(j) <- model.(j) || Ns.mem ls j
        done
      | Case.Inter_label l ->
        let ls = apply_label Ns.inter l in
        for j = 0 to n - 1 do
          model.(j) <- model.(j) && Ns.mem ls j
        done
      | Case.Diff_label l ->
        let ls = apply_label Ns.diff l in
        for j = 0 to n - 1 do
          model.(j) <- model.(j) && not (Ns.mem ls j)
        done
      | Case.Complement ->
        ns := Ns.complement !ns;
        for j = 0 to n - 1 do
          model.(j) <- not model.(j)
        done);
      (* after every step the adaptive set must agree with the boolean
         model on membership, cardinality and enumeration order *)
      let card = Array.fold_left (fun a b -> if b then a + 1 else a) 0 model in
      if Ns.cardinal !ns <> card then
        Some
          (Printf.sprintf "after step %d (%s): cardinal %d vs model %d" i
             (Case.setop_to_string op) (Ns.cardinal !ns) card)
      else
        let expected = ref [] in
        for j = n - 1 downto 0 do
          if model.(j) then expected := j :: !expected
        done;
        if Ns.elements !ns <> !expected then
          Some
            (Printf.sprintf "after step %d (%s): elements diverge from model" i
               (Case.setop_to_string op))
        else None
    in
    let rec go i = function
      | [] -> Pass
      | op :: rest -> (
        match step i op with Some m -> Fail m | None -> go (i + 1) rest)
    in
    go 0 ops
  | _ -> wrong_query "law-setops" c

let law_setops =
  {
    name = "law-setops";
    theorem = "Adaptive node-set algebra vs the boolean-array model";
    cap_nodes = 40;
    gen = Gen.setops;
    run = setops_run;
  }

(* ------------------------------------------------------------------ *)
(* Serving layer                                                       *)

(* one cache shared across cases, so later cases genuinely exercise the
   hit path (the per-case second lookup is a guaranteed hit either way) *)
let plan_cache =
  let cache = lazy (Serve.Plan_cache.create ~capacity:64 ()) in
  {
    name = "plan-cache";
    theorem = "serving layer: cached prepared plan = cold evaluation";
    cap_nodes = 16;
    gen =
      (fun cfg rng ->
        if Random.State.bool rng then Gen.xpath cfg rng
        else Gen.cq_arbitrary cfg rng);
    run =
      (fun c ->
        let query =
          match c.Case.query with
          | Case.Xpath p -> Some (Treequery.Engine.Xpath_query p)
          | Case.Cq q -> Some (Treequery.Engine.Cq_query q)
          | _ -> None
        in
        match query with
        | None -> wrong_query "plan-cache" c
        | Some q -> (
          let cache = Lazy.force cache in
          let cold = Treequery.Engine.eval q c.tree in
          let _, p1 = Serve.Plan_cache.find cache q in
          let _, p2 = Serve.Plan_cache.find cache q in
          match
            sets_equal "cold vs first lookup" cold
              (p1.Treequery.Engine.exec c.tree)
          with
          | Pass -> (
            match
              sets_equal "cold vs cached hit" cold
                (p2.Treequery.Engine.exec c.tree)
            with
            | Pass ->
              let b_cold = Treequery.Engine.eval_boolean q c.tree in
              let b_cached = p2.Treequery.Engine.exec_boolean c.tree in
              if b_cold = b_cached then Pass
              else
                Fail
                  (Printf.sprintf "boolean: cold %b vs cached %b" b_cold
                     b_cached)
            | v -> v)
          | v -> v));
  }

(* ------------------------------------------------------------------ *)
(* Adaptive optimizer routing *)

(* Whichever arm the optimizer routes a query to — cold (seeded
   estimates, round-robin exploration) or warm (a pick persisted on the
   plan-cache entry) — the answers must be indistinguishable from every
   fixed strategy the query admits, node set and boolean alike.  The
   optimizer and cache are shared across cases so repeated shapes hit
   warm entries with stored picks: one sweep exercises both states.
   Observations are fed back with the seeded estimate as a deterministic
   pseudo-latency, so convergence (and hence the routing sequence) is a
   pure function of the case stream — seed-replayable. *)
let optimizer_pick =
  let shared =
    lazy
      ( Serve.Plan_cache.create ~capacity:64 (),
        Optimizer.create ~epsilon:0.25 ~min_trials:1 ~seed:0 () )
  in
  {
    name = "optimizer-pick";
    theorem = "adaptive optimizer: auto-picked strategy = every fixed strategy";
    cap_nodes = 16;
    gen =
      (fun cfg rng ->
        if Random.State.bool rng then Gen.xpath cfg rng
        else Gen.cq_arbitrary cfg rng);
    run =
      (fun c ->
        let module E = Treequery.Engine in
        let query =
          match c.Case.query with
          | Case.Xpath p -> Some (E.Xpath_query p)
          | Case.Cq q -> Some (E.Cq_query q)
          | _ -> None
        in
        match query with
        | None -> wrong_query "optimizer-pick" c
        | Some q ->
          let cache, opt = Lazy.force shared in
          let _, default = Serve.Plan_cache.find cache q in
          let canon = default.E.canon in
          let pinned =
            Option.map
              (fun pk -> pk.Serve.Plan_cache.pick_strategy)
              (Serve.Plan_cache.pick cache ~canon)
          in
          let d = Optimizer.decide opt ?pinned c.tree default in
          let auto = d.Optimizer.d_prepared in
          let auto_set = auto.E.exec c.tree in
          let auto_bool = auto.E.exec_boolean c.tree in
          (* close the loop the way the serving layer does, with the
             estimate standing in for latency so routing stays
             deterministic; a convergence persists the pick *)
          (match
             Optimizer.observe opt ~canon
               ~strategy:(E.strategy_name d.Optimizer.d_strategy)
               ~latency:(d.Optimizer.d_estimate /. 5e7)
               ~cost:d.Optimizer.d_estimate
           with
          | Some (strategy, cost) ->
            Serve.Plan_cache.set_pick cache ~canon ~strategy ~cost
          | None -> ());
          List.fold_left
            (fun acc s ->
              match acc with
              | Pass -> (
                let p = E.prepare_with s q in
                let what =
                  Printf.sprintf "auto(%s) vs %s"
                    (E.strategy_name d.Optimizer.d_strategy)
                    (E.strategy_name s)
                in
                match sets_equal what auto_set (p.E.exec c.tree) with
                | Pass ->
                  let b = p.E.exec_boolean c.tree in
                  if auto_bool = b then Pass
                  else
                    Fail
                      (Printf.sprintf "%s: boolean %b vs %b" what auto_bool b)
                | v -> v)
              | v -> v)
            Pass (E.strategies q));
  }

(* ------------------------------------------------------------------ *)
(* Parallel batch execution                                             *)

(* Pool-executed batch answers must be indistinguishable from the
   sequential batch executor and from direct single-engine evaluation,
   for every domain count, with identical seeds.  Pools are shared
   across cases (like the plan cache above) and never shut down — the
   worker domains idle on a condition variable until process exit. *)
let parallel_batch =
  let pools =
    lazy (List.map (fun domains -> (domains, Serve.Pool.create ~domains ())) [ 1; 2; 4 ])
  in
  {
    name = "parallel-batch";
    theorem =
      "serving layer: pool-executed batch = sequential batch = single engine";
    cap_nodes = 16;
    gen =
      (fun cfg rng ->
        if Random.State.bool rng then Gen.xpath cfg rng
        else Gen.cq_arbitrary cfg rng);
    run =
      (fun c ->
        let module E = Treequery.Engine in
        let query =
          match c.Case.query with
          | Case.Xpath p -> Some (E.Xpath_query p)
          | Case.Cq q -> Some (E.Cq_query q)
          | _ -> None
        in
        match query with
        | None -> wrong_query "parallel-batch" c
        | Some q ->
          (* the case query — duplicated, so dedup aliasing is live —
             plus one descendant-label probe per distinct tree label:
             a batch with several independent representatives *)
          let labels =
            let seen = Hashtbl.create 8 in
            let acc = ref [] in
            for i = 0 to Tree.size c.tree - 1 do
              let l = Tree.label c.tree i in
              if not (Hashtbl.mem seen l) && Hashtbl.length seen < 4 then begin
                Hashtbl.add seen l ();
                acc := l :: !acc
              end
            done;
            List.rev !acc
          in
          let probes =
            List.map
              (fun l ->
                E.Xpath_query
                  (Xpath.Ast.step ~quals:[ Xpath.Ast.Lab l ] Axis.Descendant))
              labels
          in
          let queries = Array.of_list ((q :: probes) @ [ q ]) in
          let prepared = Array.map E.prepare queries in
          Tree.seal c.tree;
          let direct = Array.map (fun q -> E.eval q c.tree) queries in
          let seq = Serve.Batch.run_prepared c.tree prepared in
          let compare_answers what (answers : Ns.t array) =
            let verdict = ref Pass in
            Array.iteri
              (fun i a ->
                match !verdict with
                | Pass -> (
                  match
                    sets_equal (Printf.sprintf "%s, query %d" what i) direct.(i) a
                  with
                  | Pass -> ()
                  | v -> verdict := v)
                | _ -> ())
              answers;
            !verdict
          in
          (match compare_answers "sequential batch vs engine" seq.Serve.Batch.answers with
          | Pass ->
            List.fold_left
              (fun verdict (domains, pool) ->
                match verdict with
                | Pass ->
                  let par = Serve.Batch.run_prepared ~pool c.tree prepared in
                  if par.Serve.Batch.distinct <> seq.Serve.Batch.distinct then
                    Fail
                      (Printf.sprintf
                         "%d domains: distinct %d vs sequential %d" domains
                         par.Serve.Batch.distinct seq.Serve.Batch.distinct)
                  else
                    compare_answers
                      (Printf.sprintf "%d-domain batch vs engine" domains)
                      par.Serve.Batch.answers
                | v -> v)
              Pass (Lazy.force pools)
          | v -> v));
  }

(* ------------------------------------------------------------------ *)
(* Standing-query index *)

(* A standing-query script (register / unregister / match) interpreted
   twice: against the shared Subscribe.Index — spines in the merged trie,
   twigs as pooled streaming matchers, automata as push steppers, the
   rest as compiled Boolean plans, all fed by ONE SAX pass per match —
   and against the reference, one-at-a-time evaluation of every live
   registration.  Fired ID sets must be identical at every match point,
   including after mid-script churn.  The session is reused across match
   points, so churn-triggered session refresh is exercised too. *)
let standing_match =
  {
    name = "standing-match";
    theorem =
      "standing-query index: fired subscriptions = one-at-a-time \
       evaluation of every live registration";
    cap_nodes = 25;
    gen = Gen.standing;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Standing ops ->
          let module E = Treequery.Engine in
          let index = Subscribe.Index.create () in
          let session = Subscribe.Index.session index in
          let live = ref [] in
          let show ids = String.concat "," (List.map string_of_int ids) in
          let step (i, verdict) op =
            let verdict =
              match verdict with
              | Pass -> (
                match op with
                | Case.S_register q -> (
                  let payload =
                    match q with
                    | Case.Xpath p -> Some (`Q (E.Xpath_query p))
                    | Case.Cq cq -> Some (`Q (E.Cq_query cq))
                    | Case.Pattern p ->
                      Some (`Q (E.Xpath_query (Streamq.Path_pattern.to_xpath p)))
                    | Case.Auto e -> Some (`A (Case.automaton e))
                    | _ -> None
                  in
                  match payload with
                  | None -> Skip "unsupported registered query kind"
                  | Some (`Q q) ->
                    let (_ : Subscribe.Index.query_class) =
                      Subscribe.Index.register index ~id:i q
                    in
                    live := (i, `Q q) :: !live;
                    Pass
                  | Some (`A a) ->
                    let (_ : Subscribe.Index.query_class) =
                      Subscribe.Index.register_automaton index ~id:i a
                    in
                    live := (i, `A a) :: !live;
                    Pass)
                | Case.S_unregister k ->
                  let (_ : bool) = Subscribe.Index.unregister index ~id:k in
                  live := List.filter (fun (id, _) -> id <> k) !live;
                  Pass
                | Case.S_match ->
                  let fired = Subscribe.Index.match_tree session c.tree in
                  let expected =
                    List.filter_map
                      (fun (id, p) ->
                        let b =
                          match p with
                          | `Q q -> E.eval_boolean q c.tree
                          | `A a -> Automata.Automaton.run a c.tree
                        in
                        if b then Some id else None)
                      !live
                    |> List.sort compare
                  in
                  if fired = expected then Pass
                  else
                    Fail
                      (Printf.sprintf
                         "match at op %d: index fired {%s} vs one-at-a-time \
                          {%s} (%d live)"
                         i (show fired) (show expected) (List.length !live)))
              | v -> v
            in
            (i + 1, verdict)
          in
          snd (List.fold_left step (0, Pass) ops)
        | _ -> wrong_query "standing-match" c);
  }

(* ------------------------------------------------------------------ *)
(* Observability serialisation                                          *)

(* [Report.to_json] output must be a fixpoint of parse-then-reserialise:
   every span (with typed attrs and escape-heavy names), counter,
   histogram summary and scope profile survives bit-for-bit.  This is the
   contract CI relies on when it diffs --stats-json files across runs. *)
let obs_roundtrip =
  {
    name = "obs-roundtrip";
    theorem = "observability: Report.of_json inverts to_json bit-for-bit";
    cap_nodes = 4;
    gen = Gen.obs_report;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Obs_report r -> (
          let s = Obs.Report.to_json r in
          match Obs.Report.of_json s with
          | exception Obs.Report.Malformed m ->
            Fail ("of_json rejected to_json output: " ^ m)
          | exception Obs.Json.Parse_failure { pos; msg } ->
            Fail (Printf.sprintf "Json parse failure at byte %d: %s" pos msg)
          | r' ->
            let s' = Obs.Report.to_json r' in
            if s = s' then
              if Obs.Report.span_count r = Obs.Report.span_count r' then Pass
              else Fail "span_count changed across round-trip"
            else begin
              let n = min (String.length s) (String.length s') in
              let i = ref 0 in
              while !i < n && s.[!i] = s'.[!i] do
                incr i
              done;
              let frag str =
                String.sub str !i (min 32 (String.length str - !i))
              in
              Fail
                (Printf.sprintf "round-trip diverges at byte %d: %S vs %S" !i
                   (frag s) (frag s'))
            end)
        | _ -> wrong_query "obs-roundtrip" c);
  }

(* ------------------------------------------------------------------ *)
(* Telemetry quantile sketch                                            *)

(* Under capacity the sketch is exact: [quantile t q] must equal the
   rank-⌈q·n⌉ order statistic of the sorted sample, for any insertion
   order and for any association order of 3-way merges.  Over capacity
   (forced with capacity 2) answers must still be observed values,
   monotone in q, and within the greedy-compaction rank-error bound
   (the largest stored tuple weight). *)
let sketch_quantile =
  let qs = [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
  let reference sorted q =
    let n = Array.length sorted in
    let rank =
      max 1 (min n (int_of_float (ceil (q *. float_of_int n))))
    in
    sorted.(rank - 1)
  in
  let feed capacity xs =
    let t = Telemetry.Sketch.Quantile.create ~capacity () in
    List.iter (Telemetry.Sketch.Quantile.add t) xs;
    t
  in
  {
    name = "sketch-quantile";
    theorem =
      "telemetry: under-capacity sketch quantiles = exact order \
       statistics, for any merge association; over capacity, answers \
       stay within the greedy rank-error bound";
    cap_nodes = 4;
    gen = Gen.sketch_sample;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Sketch_sample xs -> (
          let module Q = Telemetry.Sketch.Quantile in
          let n = List.length xs in
          let sorted = Array.of_list (List.sort compare xs) in
          let check_exact label t =
            if Q.count t <> n then
              Some (Printf.sprintf "%s: count %d, expected %d" label (Q.count t) n)
            else if Q.min_value t <> sorted.(0) then
              Some (Printf.sprintf "%s: min %g, expected %g" label (Q.min_value t) sorted.(0))
            else if Q.max_value t <> sorted.(n - 1) then
              Some (Printf.sprintf "%s: max %g, expected %g" label (Q.max_value t) sorted.(n - 1))
            else
              List.find_map
                (fun q ->
                  let got = Q.quantile t q in
                  let want = reference sorted q in
                  if got = want then None
                  else
                    Some
                      (Printf.sprintf "%s: q=%g gave %g, exact is %g" label q
                         got want))
                qs
          in
          (* capacity 64 ≥ any generated sample: exact *)
          let whole = feed 64 xs in
          match check_exact "single sketch" whole with
          | Some m -> Fail m
          | None -> (
            (* 3-way split, merged under both associations *)
            let third = max 1 (n / 3) in
            let rec split i = function
              | [] -> ([], [], [])
              | x :: rest ->
                let a, b, d = split (i + 1) rest in
                if i < third then (x :: a, b, d)
                else if i < 2 * third then (a, x :: b, d)
                else (a, b, x :: d)
            in
            let xa, xb, xd = split 0 xs in
            let sa = feed 64 xa and sb = feed 64 xb and sd = feed 64 xd in
            let left = Q.merge (Q.merge sa sb) sd in
            let right = Q.merge sa (Q.merge sb sd) in
            match check_exact "merge (a+b)+c" left with
            | Some m -> Fail m
            | None -> (
              match check_exact "merge a+(b+c)" right with
              | Some m -> Fail m
              | None ->
                (* forced compaction: capacity 2 *)
                let tight = feed 2 xs in
                let max_weight =
                  List.fold_left
                    (fun acc (_, w) -> max acc w)
                    0 (Q.tuples tight)
                in
                let prev = ref neg_infinity in
                List.find_map
                  (fun q ->
                    let got = Q.quantile tight q in
                    if got < sorted.(0) || got > sorted.(n - 1) then
                      Some
                        (Printf.sprintf
                           "compacted: q=%g gave %g outside [%g, %g]" q got
                           sorted.(0)
                           sorted.(n - 1))
                    else if got < !prev then
                      Some
                        (Printf.sprintf
                           "compacted: q=%g gave %g < previous quantile %g" q
                           got !prev)
                    else if not (List.mem got xs) then
                      Some
                        (Printf.sprintf
                           "compacted: q=%g gave %g, not an observed value" q
                           got)
                    else begin
                      prev := got;
                      (* rank-error bound: the answer's true rank range
                         must be within max tuple weight of the target *)
                      let target =
                        max 1
                          (min n (int_of_float (ceil (q *. float_of_int n))))
                      in
                      let first = ref max_int and last = ref 0 in
                      Array.iteri
                        (fun i v ->
                          if v = got then begin
                            if i + 1 < !first then first := i + 1;
                            if i + 1 > !last then last := i + 1
                          end)
                        sorted;
                      let dist =
                        if target < !first then !first - target
                        else if target > !last then target - !last
                        else 0
                      in
                      if dist <= max_weight then None
                      else
                        Some
                          (Printf.sprintf
                             "compacted: q=%g gave %g, rank error %d > \
                              bound %d"
                             q got dist max_weight)
                    end)
                  qs
                |> Option.fold ~none:Pass ~some:(fun m -> Fail m))))
        | _ -> wrong_query "sketch-quantile" c);
  }

(* ------------------------------------------------------------------ *)
(* Ops-plane scrape fidelity                                            *)

(* The /metrics exposition must be a faithful, parseable projection of
   the report it snapshots: every counter appears as an exact _total
   sample, every histogram's _count matches, labelled telemetry-style
   summaries survive with their (escape-heavy) label values intact, and
   the whole body is line-parseable ending in # EOF.  This is the law
   that makes a live scrape ≡ the run's final --stats-json accounting. *)
let ops_scrape =
  let unescape v =
    let buf = Buffer.create (String.length v) in
    let n = String.length v in
    let rec go i =
      if i < n then
        if v.[i] = '\\' && i + 1 < n then begin
          (match v.[i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c);
          go (i + 2)
        end
        else begin
          Buffer.add_char buf v.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf
  in
  (* one exposition sample: name, labels (unescaped), value text *)
  let parse_sample line =
    match String.index_opt line ' ' with
    | None -> Error "sample without value"
    | Some _ -> (
      let name_end =
        match String.index_opt line '{' with
        | Some i -> i
        | None -> String.index line ' '
      in
      let name = String.sub line 0 name_end in
      let rest = String.sub line name_end (String.length line - name_end) in
      if rest = "" || rest.[0] <> '{' then
        match String.split_on_char ' ' (String.trim rest) with
        | [ v ] -> Ok (name, [], v)
        | _ -> Error ("malformed unlabelled sample: " ^ line)
      else begin
        (* scan k="v" pairs with escape awareness *)
        let n = String.length rest in
        let labels = ref [] in
        let i = ref 1 in
        let ok = ref true in
        let err = ref "" in
        let fail m =
          ok := false;
          err := m;
          i := n
        in
        while !ok && !i < n && rest.[!i] <> '}' do
          match String.index_from_opt rest !i '=' with
          | None -> fail "label without ="
          | Some eq ->
            if eq + 1 >= n || rest.[eq + 1] <> '"' then fail "unquoted label"
            else begin
              let k = String.sub rest !i (eq - !i) in
              let buf = Buffer.create 16 in
              let j = ref (eq + 2) in
              let closed = ref false in
              while (not !closed) && !j < n do
                if rest.[!j] = '\\' && !j + 1 < n then begin
                  Buffer.add_char buf rest.[!j];
                  Buffer.add_char buf rest.[!j + 1];
                  j := !j + 2
                end
                else if rest.[!j] = '"' then closed := true
                else begin
                  Buffer.add_char buf rest.[!j];
                  incr j
                end
              done;
              if not !closed then fail "unterminated label value"
              else begin
                labels := (k, unescape (Buffer.contents buf)) :: !labels;
                i := !j + 1;
                if !i < n && rest.[!i] = ',' then incr i
              end
            end
        done;
        if not !ok then Error (!err ^ ": " ^ line)
        else if !i >= n || rest.[!i] <> '}' then
          Error ("unterminated label set: " ^ line)
        else
          match String.split_on_char ' ' (String.trim (String.sub rest (!i + 1) (n - !i - 1))) with
          | [ v ] -> Ok (name, List.rev !labels, v)
          | _ -> Error ("malformed labelled sample: " ^ line)
      end)
  in
  {
    name = "ops-scrape";
    theorem =
      "ops plane: the OpenMetrics exposition is a faithful, parseable \
       projection of the snapshot report (scraped counters = stats-json \
       counters, labelled summaries survive escaping)";
    cap_nodes = 4;
    gen = Gen.obs_report;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Obs_report r ->
          (* adversarial labelled summaries derived deterministically
             from the report: span names carry every escape class *)
          let span_name i =
            match List.nth_opt r.Obs.Report.spans i with
            | Some s -> s.Obs.Report.name
            | None -> Printf.sprintf "fp\"\\\n%d" i
          in
          let summaries =
            List.mapi
              (fun i (_, (h : Obs.histogram_summary)) ->
                {
                  Obs.Openmetrics.metric = "fp_latency";
                  (* distinct report spans can share a name; suffix the
                     index so each derived series stays unique *)
                  labels =
                    [ ("fingerprint", Printf.sprintf "%s#%d" (span_name i) i) ];
                  quantiles = [ ("0.5", h.Obs.p50); ("0.99", h.Obs.p99) ];
                  sum = h.Obs.mean *. float_of_int h.Obs.count;
                  count = h.Obs.count;
                })
              r.Obs.Report.histograms
          in
          let publisher =
            Opsplane.Snapshot.create ~version:"check" ~strategies:"s\"1,s\\2"
              ~start_time:12345.0 ()
          in
          let snap =
            Opsplane.Snapshot.publish ~report:r ~summaries
              ~gauges:
                [
                  Obs.Openmetrics.gauge
                    ~labels:[ ("mode", span_name 0) ]
                    "ops_scrape_case" 1.0;
                ]
              ~at:12346.0 publisher
          in
          let body = Opsplane.Snapshot.to_openmetrics publisher snap in
          let lines = String.split_on_char '\n' body in
          (* structure: parseable lines, # EOF terminal *)
          let rec structure acc = function
            | [] | [ "" ] -> (
              match acc with
              | "# EOF" :: _ -> Ok ()
              | l :: _ -> Error ("last line is not # EOF: " ^ l)
              | [] -> Error "empty exposition")
            | l :: rest -> structure (l :: acc) rest
          in
          let samples = ref [] in
          let parse_all () =
            List.fold_left
              (fun acc l ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                  if l = "" || (String.length l >= 1 && l.[0] = '#') then Ok ()
                  else (
                    match parse_sample l with
                    | Ok s ->
                      samples := s :: !samples;
                      Ok ()
                    | Error m -> Error m))
              (Ok ()) lines
          in
          let find_sample name labels =
            List.find_opt
              (fun (n, ls, _) -> n = name && ls = labels)
              !samples
          in
          let sanitize = Obs.Openmetrics.sanitize in
          let check_counters () =
            List.find_map
              (fun (name, v) ->
                let m = "treequery_" ^ sanitize name ^ "_total" in
                match find_sample m [] with
                | Some (_, _, txt) when txt = string_of_int v -> None
                | Some (_, _, txt) ->
                  Some
                    (Printf.sprintf "counter %s scraped %s, report says %d" m
                       txt v)
                | None -> Some (Printf.sprintf "counter %s missing" m))
              r.Obs.Report.counters
          in
          let check_histograms () =
            List.find_map
              (fun (name, (h : Obs.histogram_summary)) ->
                let m = "treequery_" ^ sanitize name ^ "_seconds_count" in
                match find_sample m [] with
                | Some (_, _, txt) when txt = string_of_int h.Obs.count -> None
                | Some (_, _, txt) ->
                  Some
                    (Printf.sprintf "histogram %s scraped %s, report says %d"
                       m txt h.Obs.count)
                | None -> Some (Printf.sprintf "histogram %s missing" m))
              r.Obs.Report.histograms
          in
          let check_summaries () =
            List.find_map
              (fun (s : Obs.Openmetrics.summary) ->
                let m = "treequery_fp_latency_seconds_count" in
                match find_sample m s.Obs.Openmetrics.labels with
                | Some (_, _, txt)
                  when txt = string_of_int s.Obs.Openmetrics.count ->
                  None
                | Some (_, _, txt) ->
                  Some
                    (Printf.sprintf
                       "summary %s{%s} scraped %s, expected %d" m
                       (String.concat ","
                          (List.map fst s.Obs.Openmetrics.labels))
                       txt s.Obs.Openmetrics.count)
                | None ->
                  Some
                    (Printf.sprintf
                       "summary series lost its label value %S (parsed: %s)"
                       (String.concat ","
                          (List.map snd s.Obs.Openmetrics.labels))
                       (String.concat "; "
                          (List.filter_map
                             (fun (n, ls, _) ->
                               if n = m then
                                 Some
                                   (String.concat ","
                                      (List.map
                                         (fun (k, v) ->
                                           Printf.sprintf "%s=%S" k v)
                                         ls))
                               else None)
                             !samples))))
              summaries
          in
          let check_build () =
            match
              ( find_sample "treequery_build_info"
                  [ ("version", "check"); ("strategies", "s\"1,s\\2") ],
                find_sample "treequery_process_start_time_seconds" [] )
            with
            | Some (_, _, "1"), Some (_, _, "12345") -> None
            | Some (_, _, "1"), Some (_, _, t) ->
              Some ("process_start_time_seconds scraped " ^ t)
            | Some (_, _, v), _ -> Some ("build_info scraped value " ^ v)
            | None, _ -> Some "build_info missing or labels mangled"
          in
          (match structure [] lines with
          | Error m -> Fail m
          | Ok () -> (
            match parse_all () with
            | Error m -> Fail ("unparseable exposition: " ^ m)
            | Ok () -> (
              match
                List.find_map
                  (fun f -> f ())
                  [
                    check_counters; check_histograms; check_summaries;
                    check_build;
                  ]
              with
              | Some m -> Fail m
              | None -> Pass)))
        | _ -> wrong_query "ops-scrape" c);
  }

let all =
  [
    xpath_spec;
    xpath_datalog;
    xpath_fo2;
    xpath_forward;
    xpath_stream;
    cq_yannakakis;
    cq_rewrite;
    cq_actree;
    stream_path;
    automata_stream;
    law_axis;
    law_order;
    law_setops;
    plan_cache;
    optimizer_pick;
    parallel_batch;
    standing_match;
    obs_roundtrip;
    sketch_quantile;
    ops_scrape;
  ]

let find name = List.find_opt (fun o -> o.name = name) all

let names () = List.map (fun o -> o.name) all
