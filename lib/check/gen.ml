module Axis = Treekit.Axis
module Tree = Treekit.Tree

type config = { max_nodes : int; labels : string array }

let default = { max_nodes = 40; labels = [| "a"; "b"; "c"; "d" |] }

(* stable string hash (do not use Hashtbl.hash: its value is not part of
   any compatibility contract, and repro lines must replay across builds) *)
let salt_hash s =
  String.fold_left (fun h c -> ((h * 131) + Char.code c) land 0x3FFFFFFF) 7 s

let rng_for ~seed ~case ~salt = Random.State.make [| seed; case; salt_hash salt |]

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let sub_alphabet cfg rng =
  let k = 1 + Random.State.int rng (Array.length cfg.labels) in
  Array.sub cfg.labels 0 k

(* relabel a fixed-shape generator's output with random labels *)
let relabel rng labels t =
  let n = Tree.size t in
  let parents = Array.init n (Tree.parent t) in
  let labs =
    Array.init n (fun _ -> labels.(Random.State.int rng (Array.length labels)))
  in
  Tree.of_parent_vector ~parents ~labels:labs ()

let tree cfg rng =
  let n = 1 + Random.State.int rng cfg.max_nodes in
  let labels = sub_alphabet cfg rng in
  match Random.State.int rng 12 with
  | 0 | 1 | 2 | 3 | 4 -> Treekit.Generator.random ~rng ~n ~labels ()
  | 5 | 6 | 7 | 8 ->
    let descend_bias = 0.15 +. Random.State.float rng 0.8 in
    Treekit.Generator.random_deep ~rng ~n ~labels ~descend_bias ()
  | 9 -> relabel rng labels (Treekit.Generator.path ~n ())
  | 10 -> relabel rng labels (Treekit.Generator.star ~n ())
  | _ ->
    let fanout = 2 + Random.State.int rng 2 in
    let depth = Random.State.int rng 3 in
    relabel rng labels (Treekit.Generator.full ~fanout ~depth ())

(* axis mixes: each query draws its pool, so the corpus covers both broad
   and fragment-specific axis usage *)
let axis_pools =
  [
    Axis.all;
    Axis.forward;
    [ Axis.Child; Axis.Descendant; Axis.Descendant_or_self ];
    [ Axis.Child; Axis.Next_sibling; Axis.Following_sibling; Axis.Following_sibling_or_self ];
    [ Axis.Parent; Axis.Ancestor; Axis.Child; Axis.Descendant ];
    [ Axis.Self; Axis.Child; Axis.Descendant; Axis.Preceding; Axis.Following ];
  ]

let xpath ?axes ?allow_negation ?allow_union ?(max_depth = 3) cfg rng =
  let axes = match axes with Some a -> a | None -> pick rng axis_pools in
  let allow_negation =
    match allow_negation with Some b -> b | None -> Random.State.bool rng
  in
  let allow_union =
    match allow_union with Some b -> b | None -> Random.State.bool rng
  in
  let depth = 1 + Random.State.int rng max_depth in
  let labels = sub_alphabet cfg rng in
  Case.Xpath
    (Xpath.Generator.random ~rng ~depth ~labels ~axes ~allow_negation ~allow_union ())

let cq_acyclic cfg rng =
  let nvars = 1 + Random.State.int rng 3 in
  let labels = sub_alphabet cfg rng in
  let axes = pick rng axis_pools in
  let head_arity = 1 + Random.State.int rng (min 2 nvars) in
  Case.Cq
    (Cqtree.Generator.acyclic ~rng ~nvars ~axes ~labels ~extra_atom_prob:0.15
       ~head_arity ())

let cq_arbitrary cfg rng =
  let nvars = 2 + Random.State.int rng 2 in
  let natoms = 2 + Random.State.int rng 3 in
  let labels = sub_alphabet cfg rng in
  let head_arity = 1 + Random.State.int rng 2 in
  Case.Cq
    (Cqtree.Generator.arbitrary ~rng ~nvars ~natoms ~axes:Axis.all ~labels
       ~head_arity ())

let cq_xproperty cfg rng =
  let _, axes, _ = pick rng Actree.Xproperty.signatures in
  let nvars = 2 + Random.State.int rng 2 in
  let natoms = 2 + Random.State.int rng 2 in
  let labels = sub_alphabet cfg rng in
  let head_arity = 1 + Random.State.int rng 2 in
  Case.Cq
    (Cqtree.Generator.arbitrary ~rng ~nvars ~natoms ~axes ~labels ~head_arity ())

let pattern cfg rng =
  let length = 1 + Random.State.int rng 4 in
  Case.Pattern (Streamq.Path_pattern.random ~rng ~length ~labels:cfg.labels ())

let auto cfg rng =
  let labels = cfg.labels in
  let lab () = labels.(Random.State.int rng (Array.length labels)) in
  let leaf () =
    match Random.State.int rng 6 with
    | 0 -> Case.Exists_label (lab ())
    | 1 -> Case.Root_label (lab ())
    | 2 -> Case.All_leaves (lab ())
    | 3 ->
      let m = 2 + Random.State.int rng 3 in
      Case.Count_mod (lab (), m, Random.State.int rng m)
    | 4 -> Case.Every_desc (lab (), lab ())
    | _ -> Case.Adjacent (lab (), lab ())
  in
  let rec build d =
    if d = 0 then leaf ()
    else
      match Random.State.int rng 4 with
      | 0 -> Case.Conj (build (d - 1), build (d - 1))
      | 1 -> Case.Disj (build (d - 1), build (d - 1))
      | 2 -> Case.Compl (build (d - 1))
      | _ -> leaf ()
  in
  Case.Auto (build (Random.State.int rng 3))

let axis_law _cfg rng = Case.Axis_law (pick rng Axis.all)

let order_law _cfg rng = Case.Order_law (pick rng Treekit.Order.all_kinds)

(* synthetic observability reports for the JSON round-trip oracle.  All
   durations are whole microseconds (and ms magnitudes stay well under
   10^9 = 9 significant digits), so serialising, parsing and
   re-serialising must reproduce the exact byte string; names and attr
   strings deliberately exercise every escape class the writer knows
   (quote, backslash, \n, \r, \t, raw control byte, non-ASCII). *)
let obs_report _cfg rng =
  let ri n = Random.State.int rng n in
  let dur () = float_of_int (ri 1_000_000) /. 1_000_000.0 in
  let names =
    [|
      "eval"; "load-document"; "semijoin"; "request-7"; "weird \"name\"";
      "back\\slash"; "tab\there"; "line\nbreak"; "cr\rhere"; "ctrl\001byte";
      "caf\xc3\xa9";
    |]
  in
  let name () = names.(ri (Array.length names)) in
  let attr () =
    let keys = [| "|D|"; "|Q|"; "strategy"; "fingerprint"; "note" |] in
    ( keys.(ri (Array.length keys)),
      if Random.State.bool rng then Obs.Int (ri 200_000 - 100_000)
      else Obs.Str (name ()) )
  in
  let attrs () = List.init (ri 3) (fun _ -> attr ()) in
  let rec span depth =
    {
      Obs.Report.name = name ();
      start = (if Random.State.bool rng then 0.0 else dur ());
      duration = dur ();
      attrs = attrs ();
      children =
        (if depth = 0 then [] else List.init (ri 3) (fun _ -> span (depth - 1)));
    }
  in
  let summary () =
    {
      Obs.count = 1 + ri 10_000;
      mean = dur ();
      p50 = dur ();
      p90 = dur ();
      p95 = dur ();
      p99 = dur ();
      max = dur ();
    }
  in
  let profile i =
    {
      Obs.profile_label = Printf.sprintf "request-%d" i;
      profile_attrs = attrs ();
      profile_counters = List.init (ri 3) (fun j -> (Printf.sprintf "work_%d" j, ri 100_000));
      profile_duration = dur ();
    }
  in
  Case.Obs_report
    {
      Obs.Report.spans = List.init (ri 4) (fun _ -> span (1 + ri 2));
      counters =
        List.init (ri 4) (fun i -> (Printf.sprintf "nodes_visited_%d" i, ri 1_000_000));
      histograms = List.init (ri 3) (fun i -> (Printf.sprintf "latency_%d" i, summary ()));
      profiles = List.init (ri 3) profile;
    }

(* adversarial samples for the sketch-quantile oracle: heavy duplicate
   mass, pre-sorted and reverse-sorted runs, single elements, two-valued
   mixtures and random draws.  Values live on a small quarter-integer
   grid so every arithmetic combination (sums, means) is exact in binary
   floating point and repro lines stay short. *)
let sketch_sample _cfg rng =
  let ri n = Random.State.int rng n in
  let v () = float_of_int (ri 65) /. 4.0 in
  let n = 1 + ri 24 in
  let xs =
    match ri 6 with
    | 0 ->
      let x = v () in
      List.init n (fun _ -> x)
    | 1 -> List.sort compare (List.init n (fun _ -> v ()))
    | 2 -> List.sort (fun a b -> compare b a) (List.init n (fun _ -> v ()))
    | 3 -> [ v () ]
    | 4 ->
      let a = v () and b = v () in
      List.init n (fun i -> if i mod 2 = 0 then a else b)
    | _ -> List.init n (fun _ -> v ())
  in
  Case.Sketch_sample xs

(* standing-query scripts: a churn of registrations (across all four
   index classes — spines, twigs via qualified XPath, general CQs,
   automata), unregistrations of earlier script positions, and match
   points.  Always ends on a match so every script exercises the index;
   unregistrations between matches exercise churn mid-stream. *)
let standing cfg rng =
  let registered q = Case.S_register q in
  let gen_registration () =
    match Random.State.int rng 5 with
    | 0 -> registered (pattern cfg rng)
    | 1 | 2 ->
      registered
        (xpath
           ~axes:[ Axis.Child; Axis.Descendant; Axis.Descendant_or_self ]
           ~allow_negation:false ~allow_union:false cfg rng)
    | 3 -> registered (xpath cfg rng)
    | _ -> if Random.State.bool rng then registered (cq_arbitrary cfg rng)
           else registered (auto cfg rng)
  in
  let n = 2 + Random.State.int rng 7 in
  let ops =
    List.init n (fun i ->
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 -> gen_registration ()
        | 5 when i > 0 -> Case.S_unregister (Random.State.int rng i)
        | 5 -> gen_registration ()
        | _ -> Case.S_match)
  in
  Case.Standing (ops @ [ Case.S_match ])

let setops cfg rng =
  let lab () = cfg.labels.(Random.State.int rng (Array.length cfg.labels)) in
  let op () =
    match Random.State.int rng 8 with
    | 0 | 1 -> Case.Add (Random.State.int rng 1024)
    | 2 -> Case.Remove (Random.State.int rng 1024)
    | 3 -> Case.Add_range (Random.State.int rng 1024, Random.State.int rng 1024)
    | 4 -> Case.Union_label (lab ())
    | 5 -> Case.Inter_label (lab ())
    | 6 -> Case.Diff_label (lab ())
    | _ -> Case.Complement
  in
  Case.Setops (List.init (1 + Random.State.int rng 12) (fun _ -> op ()))
