module Ns = Treekit.Nodeset
module Tree = Treekit.Tree

let buggy_inter a b =
  let ca = Ns.cardinal a and cb = Ns.cardinal b in
  let small, big, cs = if ca <= cb then (a, b, ca) else (b, a, cb) in
  let cl = max ca cb in
  if cs > 0 && cl > 2 * cs then begin
    let elems = Array.of_list (Ns.elements small) in
    let out = Ns.create (Ns.capacity a) in
    (* BUG: stops at cs - 2, silently dropping the last probe *)
    for i = 0 to cs - 2 do
      if Ns.mem big elems.(i) then Ns.add out elems.(i)
    done;
    out
  end
  else Ns.inter a b

let rec forward ~inter t (p : Xpath.Ast.path) s =
  match p with
  | Xpath.Ast.Step { axis; quals } ->
    let img = Treekit.Axis.image t axis s in
    List.fold_left (fun acc q -> inter acc (Xpath.Eval.qual_set t q)) img quals
  | Xpath.Ast.Seq (a, b) -> forward ~inter t b (forward ~inter t a s)
  | Xpath.Ast.Union (a, b) ->
    Ns.union (forward ~inter t a s) (forward ~inter t b s)

let eval_with_inter ~inter t p =
  forward ~inter t p (Ns.of_list (Tree.size t) [ 0 ])

let make name theorem inter =
  {
    Oracles.name;
    theorem;
    cap_nodes = 40;
    gen = Gen.xpath;
    run =
      (fun c ->
        match c.Case.query with
        | Case.Xpath p ->
          Oracles.sets_equal "Eval vs injected kernel"
            (Xpath.Eval.query c.tree p)
            (eval_with_inter ~inter c.tree p)
        | _ -> Oracles.Skip "unexpected query kind");
  }

let oracle =
  make "inject-galloping"
    "fault injection: mutated galloping intersection (must be caught)"
    buggy_inter

let control =
  make "inject-control" "fault injection control: correct kernel (must pass)"
    Ns.inter
