let c_cases = Obs.Counter.make "check_cases"
let c_runs = Obs.Counter.make "check_oracle_runs"
let c_skips = Obs.Counter.make "check_oracle_skips"
let c_discrepancies = Obs.Counter.make "check_discrepancies"
let c_shrink_steps = Obs.Counter.make "check_shrink_steps"

type config = {
  seed : int;
  cases : int;
  from : int;
  max_nodes : int;
  oracles : Oracles.t list;
  shrink_budget : int;
  max_failures : int;
}

let default =
  {
    seed = 42;
    cases = 200;
    from = 0;
    max_nodes = 40;
    oracles = Oracles.all;
    shrink_budget = 4000;
    max_failures = 10;
  }

type discrepancy = {
  oracle_name : string;
  theorem : string;
  case_index : int;
  seed : int;
  message : string;
  original_size : int;
  shrunk : Case.t;
  shrink_steps : int;
}

type stats = {
  run_config : config;
  per_oracle : (string * int * int * int) list;
  discrepancies : discrepancy list;
}

(* an exception in any engine is a failure of the oracle, not of the
   harness: it gets reported and shrunk like a set disagreement *)
let run_case (o : Oracles.t) c =
  match o.run c with
  | v -> v
  | exception e -> Oracles.Fail ("exception: " ^ Printexc.to_string e)

let generate (cfg : config) (o : Oracles.t) ~case =
  let rng = Gen.rng_for ~seed:cfg.seed ~case ~salt:o.name in
  let gcfg =
    { Gen.default with max_nodes = min cfg.max_nodes o.cap_nodes }
  in
  let tree = Gen.tree gcfg rng in
  let query = o.gen gcfg rng in
  { Case.tree; query }

let shrink (cfg : config) (o : Oracles.t) c =
  let still_fails c' =
    match run_case o c' with Oracles.Fail _ -> true | _ -> false
  in
  Shrink.minimize ~budget:cfg.shrink_budget ~still_fails c

let run cfg =
  Obs.Span.with_ "check" @@ fun () ->
  let tallies =
    List.map (fun (o : Oracles.t) -> (o.Oracles.name, ref 0, ref 0, ref 0))
      cfg.oracles
  in
  let discrepancies = ref [] in
  let failures = ref 0 in
  (try
     for k = cfg.from to cfg.from + cfg.cases - 1 do
       Obs.Counter.incr c_cases;
       List.iter2
         (fun (o : Oracles.t) (_, passes, skips, fails) ->
           Obs.Counter.incr c_runs;
           let c = generate cfg o ~case:k in
           match run_case o c with
           | Oracles.Pass -> incr passes
           | Oracles.Skip _ ->
             Obs.Counter.incr c_skips;
             incr skips
           | Oracles.Fail message ->
             Obs.Counter.incr c_discrepancies;
             incr fails;
             incr failures;
             let shrunk, shrink_steps = shrink cfg o c in
             Obs.Counter.add c_shrink_steps shrink_steps;
             discrepancies :=
               {
                 oracle_name = o.Oracles.name;
                 theorem = o.Oracles.theorem;
                 case_index = k;
                 seed = cfg.seed;
                 message;
                 original_size = Case.size c;
                 shrunk;
                 shrink_steps;
               }
               :: !discrepancies;
             if !failures >= cfg.max_failures then raise Exit)
         cfg.oracles tallies
     done
   with Exit -> ());
  {
    run_config = cfg;
    per_oracle =
      List.map (fun (n, p, s, f) -> (n, !p, !s, !f)) tallies;
    discrepancies = List.rev !discrepancies;
  }

let discrepancy_count st = List.length st.discrepancies

let to_text st =
  let b = Buffer.create 1024 in
  let cfg = st.run_config in
  Buffer.add_string b
    (Printf.sprintf "check: seed %d, cases %d..%d, max-nodes %d\n" cfg.seed
       cfg.from
       (cfg.from + cfg.cases - 1)
       cfg.max_nodes);
  Buffer.add_string b
    (Printf.sprintf "%-18s %8s %8s %8s\n" "oracle" "pass" "skip" "fail");
  List.iter
    (fun (name, p, s, f) ->
      Buffer.add_string b (Printf.sprintf "%-18s %8d %8d %8d\n" name p s f))
    st.per_oracle;
  (match st.discrepancies with
  | [] -> Buffer.add_string b "no discrepancies\n"
  | ds ->
    Buffer.add_string b
      (Printf.sprintf "\n%d discrepanc%s\n" (List.length ds)
         (if List.length ds = 1 then "y" else "ies"));
    List.iter
      (fun d ->
        Buffer.add_string b
          (Printf.sprintf
             "\n[%s] case %d: %s\n  guards: %s\n  %s (original size %d, %d \
              shrink steps)\n  repro: treequery check --seed %d --from %d \
              --cases 1 --oracles %s\n"
             d.oracle_name d.case_index d.message d.theorem
             (String.concat "\n  " (String.split_on_char '\n' (Case.to_string d.shrunk)))
             d.original_size d.shrink_steps d.seed d.case_index d.oracle_name))
      ds);
  Buffer.contents b
