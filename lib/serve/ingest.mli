(** The document-ingest side of the standing-query index: the serving
    model inverted.  Where {!Server} streams N requests at one document,
    ingest streams M generated documents past a churning population of
    registered queries ({!Subscribe.Index}), firing subscriptions per
    document — the [treequery subscribe] subcommand and the CI smoke
    drive this loop.

    Determinism: registrations come from {!Workload.registrations_split}
    (seed-split, prefix-stable), shapes from {!Workload.shapes}, and
    document [i] from its own [(seed, i, salt)]-derived RNG — so fired
    sets are a pure function of the config, and the one-at-a-time twin
    ([one_at_a_time = true]) must produce identical per-document fired
    counts (asserted in CI). *)

type config = {
  seed : int;
  registrations : int;
      (** length of the churn stream; register events within it ≈
          [registrations * (1 - churn)] *)
  docs : int;
  churn : float;
      (** probability an event is an unregistration; [0] = pure
          registration phase before the first document, [> 0] = events
          interleaved at fixed epoch boundaries of the document stream
          (mid-stream churn).  Epochs are a function of [docs] alone, so
          fired sets are identical for every pool size. *)
  scale : int;  (** XMark scale of each generated document *)
  pool : Pool.t option;
      (** parallel per-document matching: chunks of [Pool.size] documents
          matched concurrently, one {!Subscribe.Index.session} per slot;
          [None] = sequential (chunk size 1) *)
  one_at_a_time : bool;
      (** evaluate every live registration's compiled plan per document
          instead of the shared index — the differential twin *)
  on_chunk : (int -> int -> unit) option;
      (** fired after each matched chunk with (documents matched so far,
          subscriptions fired so far), on the admitting domain after the
          chunk's shard state has been merged — the publication hook the
          ops plane hangs snapshots on ([None] = no-op) *)
}

type summary = {
  events : int;
  registered : int;  (** register events in the stream *)
  unregistered : int;  (** unregistrations that hit a live ID *)
  live : int;  (** live subscriptions after the full stream *)
  entries : int;  (** distinct canonical index entries (dedup fan-out) *)
  trie_states : int;
  class_counts : (string * int) list;
  docs_matched : int;
  fired_total : int;
  fired_per_doc : int array;
  active_work : int;  (** Σ trie active-state work over documents *)
  elapsed : float;  (** wall seconds *)
}

val run : config -> summary

val summary_json : summary -> Obs.Json.t
