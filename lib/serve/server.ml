module Engine = Treequery.Engine
module Tree = Treekit.Tree
module Nodeset = Treekit.Nodeset

type config = {
  cache : Plan_cache.t option;
  concurrency : int;
  share : bool;
  stream_prefilter : bool;
  deadline : float option;
  ops_per_second : float;
  clock : unit -> float;
  telemetry : Telemetry.Cost_store.t option;
  recorder : Telemetry.Flight_recorder.t option;
  (* [optimizer]: adaptive strategy selection — each planned request is
     re-routed through [Optimizer.decide] (seeded estimates, then online
     argmin by observed latency), admission prices the *picked* arm's
     bound, and converged picks persist in the plan cache so a warm
     fleet skips exploration *)
  optimizer : Optimizer.t option;
  (* [force_strategy]: route every request whose query the strategy can
     evaluate through it (re-prepared once per canonical shape); shapes
     it cannot evaluate keep the planner default.  Wins over
     [optimizer].  The fixed arms of the auto-vs-fixed bench use this. *)
  force_strategy : Engine.strategy option;
  inject_overbudget : bool;
  tick_every : float option;
  on_tick : (int -> float -> unit) option;
  (* [pool]: admitted requests of a chunk (or batch reps in share mode)
     execute in parallel on its domains; the tree must be sealed
     ({!Treekit.Tree.seal}) before [run].  [None] keeps the sequential
     path bit-identical to pre-pool behaviour. *)
  pool : Pool.t option;
  (* [wall_clock]: open-loop arrivals are honoured in real time — the
     loop sleeps until each chunk's last arrival instead of advancing
     the virtual clock, so throughput/latency come from [clock] itself *)
  wall_clock : bool;
  (* how to wait for the next arrival in wall-clock mode; the library
     does not link [unix], so the CLI injects [Unix.sleepf] (default:
     no-op, i.e. arrivals are treated as already due) *)
  sleep : float -> unit;
}

let config ?cache ?(concurrency = 1) ?(share = false)
    ?(stream_prefilter = false) ?deadline ?(ops_per_second = 5e7)
    ?(clock = Obs.now) ?telemetry ?recorder ?optimizer ?force_strategy
    ?(inject_overbudget = false) ?tick_every ?on_tick ?pool
    ?(wall_clock = false) ?(sleep = fun _ -> ()) () =
  if concurrency < 1 then invalid_arg "Server.config: concurrency must be >= 1";
  (match tick_every with
  | Some e when e <= 0.0 -> invalid_arg "Server.config: tick_every must be > 0"
  | _ -> ());
  {
    cache; concurrency; share; stream_prefilter; deadline; ops_per_second;
    clock; telemetry; recorder; optimizer; force_strategy; inject_overbudget;
    tick_every; on_tick; pool; wall_clock; sleep;
  }

let reject_reason = "degraded: naive bound exceeded"

let c_served = Obs.Counter.make "serve_requests_served"
let c_rejected = Obs.Counter.make "serve_requests_rejected"
let c_shed = Obs.Counter.make "serve_requests_shed"
let c_residual = Obs.Counter.make "serve_residual_violations"

(* the fault the telemetry smoke tests inject: work the admission bound
   never priced, bumped inside the request's scope so the observed cost
   provably exceeds the prediction *)
let c_injected = Obs.Counter.make "serve_injected_work"

let latency_hist = Obs.Histogram.make "serve_latency"

(* the paper's per-strategy operation bounds, as a scalar estimate *)
let naive_bound (p : Engine.prepared) tree =
  let n = float_of_int (Tree.size tree) in
  let q = float_of_int (Engine.query_size p.Engine.source) in
  match p.Engine.strategy with
  | Engine.Xpath_bottom_up -> n *. q *. q (* O(n·|Q|²), Theorem 3.1 *)
  | Engine.Cq_yannakakis | Engine.Cq_arc_consistency -> n *. q (* O(‖A‖·|Q|) *)
  | Engine.Cq_rewrite | Engine.Positive_rewrite ->
    (* union of up to exp(|Q|) acyclic queries, each O(‖A‖·|Q|) *)
    n *. q *. (2.0 ** Float.min q 24.0)
  | Engine.Datalog_hornsat | Engine.Datalog_fixpoint -> n *. q
  | Engine.Xpath_fo2 -> n *. n *. q (* O(n²·|Q|), Marx / Section 4 *)

type stats = {
  requests : int;
  served : int;
  rejected : int;
  shed : int;
  errors : int;
  distinct_evaluated : int;
  stream_pruned : int;
  result_nodes : int;
  elapsed : float;
  throughput : float;
  latency : Obs.histogram_summary;
  cache : Plan_cache.stats option;
  degraded : (string * float) list;
  residual_violations : int;
}

(* observed cost of a request: the sum of its profile's (positive)
   counter deltas — the same elementary-operation counters the paper's
   bounds are claimed against, so observed/predicted is dimensionless *)
let observed_cost (profile : Obs.profile) =
  List.fold_left
    (fun acc (_, d) -> if d > 0 then acc + d else acc)
    0 profile.Obs.profile_counters

let run cfg tree (shapes : Workload.shape array) (reqs : Workload.request list) =
  let serve_attrs =
    if Obs.enabled () then
      [
        ("|D|", Obs.Int (Tree.size tree));
        ("requests", Obs.Int (List.length reqs));
        ("concurrency", Obs.Int cfg.concurrency);
        ("share", Obs.Str (string_of_bool cfg.share));
      ]
      @ (match cfg.pool with
        | Some p -> [ ("domains", Obs.Int (Pool.size p)) ]
        | None -> [])
    else []
  in
  Obs.Span.with_ ~attrs:serve_attrs "serve" @@ fun () ->
  Obs.Histogram.clear latency_hist;
  let t_start = cfg.clock () in
  let served = ref 0 and rejected = ref 0 and shed = ref 0 and errors = ref 0 in
  let distinct = ref 0 and pruned = ref 0 and nodes = ref 0 in
  let total = ref 0 in
  (* shed/degrade decisions, with the fingerprint (and bound) they
     priced: surfaced in [stats.degraded], in the trace (one
     [serve:degrade]/[serve:shed] child span per decision) and in
     {!to_text} *)
  let degraded = ref [] in
  let residual_violations = ref 0 in
  (* virtual server time (seconds since t_start); service durations are
     real, queueing is simulated *)
  let vnow = ref 0.0 in
  (* periodic telemetry ticks are driven by virtual time, so snapshot
     cadence is deterministic under a fake clock *)
  let tick_idx = ref 0 in
  let next_tick = ref (match cfg.tick_every with Some e -> e | None -> infinity) in
  let fire_ticks () =
    match cfg.on_tick with
    | Some f ->
      while !vnow >= !next_tick do
        f !tick_idx !next_tick;
        incr tick_idx;
        next_tick := !next_tick +. (match cfg.tick_every with Some e -> e | None -> infinity)
      done
    | None -> ()
  in
  let strategy_of (p : Engine.prepared) = Engine.strategy_name p.Engine.strategy in
  (* forced-strategy plans, compiled once per canonical shape (the plan
     cache holds the planner default; re-preparing per request would pay
     the rewrite strategy's exponential compile on every hit) *)
  let forced_memo : (string, Engine.prepared) Hashtbl.t = Hashtbl.create 8 in
  let apply_force s (p : Engine.prepared) =
    if p.Engine.strategy = s then p
    else
      match Hashtbl.find_opt forced_memo p.Engine.canon with
      | Some fp -> fp
      | None ->
        let fp =
          if List.mem s (Engine.strategies p.Engine.source) then
            Engine.prepare_with s p.Engine.source
          else p
        in
        Hashtbl.add forced_memo p.Engine.canon fp;
        fp
  in
  (* feed the cost store and flight recorder with one served request's
     (or batch rep's) profile; returns nothing but counts violations *)
  let record_telemetry ~id ~(p : Engine.prepared) ~bound ~(profile : Obs.profile)
      ~wall =
    let latency =
      if profile.Obs.profile_duration > 0.0 then profile.Obs.profile_duration
      else wall
    in
    let observed = float_of_int (observed_cost profile) in
    let violation =
      match cfg.telemetry with
      | Some store ->
        Telemetry.Cost_store.observe store ~fingerprint:p.Engine.fp
          ~strategy:(strategy_of p) ~predicted:bound ~observed ~latency
          ~counters:profile.Obs.profile_counters
      | None -> false
    in
    if violation then begin
      incr residual_violations;
      Obs.Counter.incr c_residual
    end;
    (* close the optimizer's loop after the cost store has absorbed the
       observation, so the EWMA the next decision reads is fresh; a
       convergence result is persisted on the plan-cache entry *)
    (match cfg.optimizer with
    | None -> ()
    | Some opt -> (
      match
        Optimizer.observe opt ~canon:p.Engine.canon ~strategy:(strategy_of p)
          ~latency ~cost:observed
      with
      | Some (strategy, cost) -> (
        match cfg.cache with
        | Some c -> Plan_cache.set_pick c ~canon:p.Engine.canon ~strategy ~cost
        | None -> ())
      | None -> ()));
    match cfg.recorder with
    | None -> ()
    | Some rec_ ->
      if violation then Telemetry.Flight_recorder.trigger rec_ "residual-violation";
      Telemetry.Flight_recorder.push rec_
        {
          Telemetry.Flight_recorder.id;
          fingerprint = p.Engine.fp;
          strategy = strategy_of p;
          attrs = profile.Obs.profile_attrs;
          counters = profile.Obs.profile_counters;
          latency;
          predicted = bound;
          observed;
          outcome =
            (if violation then Telemetry.Flight_recorder.Violation
             else Telemetry.Flight_recorder.Served);
        }
  in
  let rec chunks = function
    | [] -> ()
    | reqs ->
      let rec take k acc = function
        | r :: rest when k > 0 -> take (k - 1) (r :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let chunk, rest = take cfg.concurrency [] reqs in
      (* the batch is admitted when its last request has arrived *)
      let arrival_max =
        List.fold_left
          (fun v (r : Workload.request) ->
            match r.arrival with Some a -> Float.max v a | None -> v)
          !vnow chunk
      in
      let vstart =
        if cfg.wall_clock then begin
          (* honour the arrival schedule in real time: wait out the gap
             when the server is ahead; when it is behind, the backlog is
             real queueing delay and shows up in the open-loop latency *)
          let now = cfg.clock () -. t_start in
          if arrival_max > now then cfg.sleep (arrival_max -. now);
          Float.max arrival_max (cfg.clock () -. t_start)
        end
        else arrival_max
      in
      let admitted =
        List.filter_map
          (fun (r : Workload.request) ->
            incr total;
            let late =
              match (cfg.deadline, r.arrival) with
              | Some d, Some a -> vstart -. a > d
              | _ -> false
            in
            if late then begin
              incr shed;
              Obs.Counter.incr c_shed;
              if Obs.enabled () then
                Obs.Span.with_
                  ~attrs:
                    [
                      ("request", Obs.Int r.Workload.id);
                      ("shape", Obs.Int r.shape);
                    ]
                  "serve:shed" ignore;
              (match cfg.recorder with
              | None -> ()
              | Some rec_ ->
                Telemetry.Flight_recorder.trigger rec_ "shed";
                Telemetry.Flight_recorder.push rec_
                  {
                    (* shed happens before planning, so no fingerprint *)
                    Telemetry.Flight_recorder.id = r.Workload.id;
                    fingerprint = "";
                    strategy = "";
                    attrs = [ ("shape", Obs.Int r.shape) ];
                    counters = [];
                    latency =
                      (match r.arrival with Some a -> vstart -. a | None -> 0.0);
                    predicted = 0.0;
                    observed = 0.0;
                    outcome = Telemetry.Flight_recorder.Shed;
                  });
              None
            end
            else begin
              let prepared =
                Obs.Span.with_ "serve:plan" @@ fun () ->
                match cfg.cache with
                | Some c -> snd (Plan_cache.find c shapes.(r.shape).Workload.query)
                | None -> Engine.prepare shapes.(r.shape).Workload.query
              in
              (* adaptive routing: re-pick the strategy (honouring a
                 pick persisted on the cache entry), so admission prices
                 — and execution runs — the arm the optimizer chose *)
              let prepared =
                match (cfg.force_strategy, cfg.optimizer) with
                | Some s, _ -> apply_force s prepared
                | None, None -> prepared
                | None, Some opt ->
                  let pinned =
                    Option.bind cfg.cache (fun c ->
                        Option.map
                          (fun pk -> pk.Plan_cache.pick_strategy)
                          (Plan_cache.pick c ~canon:prepared.Engine.canon))
                  in
                  (Optimizer.decide opt ?pinned tree prepared)
                    .Optimizer.d_prepared
              in
              let bound = naive_bound prepared tree in
              let over_bound =
                match cfg.deadline with
                | Some d -> bound > d *. cfg.ops_per_second
                | None -> false
              in
              if over_bound then begin
                incr rejected;
                Obs.Counter.incr c_rejected;
                degraded := (prepared.Engine.fp, bound) :: !degraded;
                if Obs.enabled () then
                  Obs.Span.with_
                    ~attrs:
                      [
                        ("request", Obs.Int r.Workload.id);
                        ("fingerprint", Obs.Str prepared.Engine.fp);
                        ("bound", Obs.Int (int_of_float bound));
                      ]
                    "serve:degrade" ignore;
                (match cfg.recorder with
                | None -> ()
                | Some rec_ ->
                  Telemetry.Flight_recorder.trigger rec_ "degrade";
                  Telemetry.Flight_recorder.push rec_
                    {
                      Telemetry.Flight_recorder.id = r.Workload.id;
                      fingerprint = prepared.Engine.fp;
                      strategy = strategy_of prepared;
                      attrs = [];
                      counters = [];
                      latency = 0.0;
                      predicted = bound;
                      observed = 0.0;
                      outcome = Telemetry.Flight_recorder.Rejected;
                    });
                None
              end
              else Some (r, prepared, bound)
            end)
          chunk
      in
      (match admitted with
      | [] -> vnow := vstart
      | _ -> (
        let plans = Array.of_list (List.map (fun (_, p, _) -> p) admitted) in
        (* one scope per request, so the counters each evaluation bumps
           are attributed to that request's profile *)
        let exec_one ((r : Workload.request), (p : Engine.prepared), bound) =
          let t0 = cfg.clock () in
          let answer, profile =
            Obs.Scope.collect
              ~attrs:
                [
                  ("fingerprint", Obs.Str p.Engine.fp);
                  ("strategy", Obs.Str (strategy_of p));
                ]
              (Printf.sprintf "request-%d" r.Workload.id)
              (fun () ->
                let a = p.Engine.exec tree in
                if cfg.inject_overbudget then
                  (* un-priced work: double the admission
                     bound, so observed/predicted ≥ 2 *)
                  Obs.Counter.add c_injected
                    (2 * max 1 (int_of_float (Float.min bound 1e8)));
                a)
          in
          Obs.Scope.note profile;
          (answer, profile, cfg.clock () -. t0)
        in
        let execute () =
          if cfg.share then
            (* per-rep telemetry: the hook re-prices the rep (same bound
               as admission — [naive_bound] is deterministic) and feeds
               the store once per distinct plan *)
            let on_profile p profile =
              record_telemetry ~id:(-1) ~p ~bound:(naive_bound p tree) ~profile
                ~wall:profile.Obs.profile_duration
            in
            Batch.run_prepared ?pool:cfg.pool
              ~stream_prefilter:cfg.stream_prefilter ~on_profile tree plans
          else
            let answers =
              match cfg.pool with
              | Some pool when Pool.size pool > 1 && List.length admitted > 1 ->
                (* each admitted request is one pool task under its own
                   Obs shard; shards merge (and telemetry records) here
                   on the admitting domain in admission order once the
                   job drains, so counters, flight-recorder entries and
                   answers match the sequential path *)
                let adm = Array.of_list admitted in
                let tasks =
                  Array.map
                    (fun item () ->
                      let sh = Obs.Shard.create () in
                      let out = Obs.Shard.run sh (fun () -> exec_one item) in
                      (out, sh))
                    adm
                in
                let results = Pool.run pool tasks in
                Array.mapi
                  (fun i ((answer, profile, wall), sh) ->
                    Obs.Shard.merge sh;
                    let (r : Workload.request), p, bound = adm.(i) in
                    record_telemetry ~id:r.Workload.id ~p ~bound ~profile
                      ~wall;
                    answer)
                  results
              | _ ->
                Array.of_list
                  (List.map
                     (fun (((r : Workload.request), p, bound) as item) ->
                       let answer, profile, wall = exec_one item in
                       record_telemetry ~id:r.Workload.id ~p ~bound ~profile
                         ~wall;
                       answer)
                     admitted)
            in
            {
              Batch.answers;
              distinct = Array.length plans;
              stream_pruned = 0;
            }
        in
        let t0 = cfg.clock () in
        match execute () with
        | exception _ ->
          errors := !errors + List.length admitted;
          vnow :=
            if cfg.wall_clock then cfg.clock () -. t_start
            else vstart +. (cfg.clock () -. t0)
        | result ->
          let dt = cfg.clock () -. t0 in
          let vdone =
            if cfg.wall_clock then cfg.clock () -. t_start else vstart +. dt
          in
          vnow := vdone;
          distinct := !distinct + result.Batch.distinct;
          pruned := !pruned + result.Batch.stream_pruned;
          List.iteri
            (fun i ((r : Workload.request), _, _) ->
              incr served;
              Obs.Counter.incr c_served;
              nodes := !nodes + Nodeset.cardinal result.Batch.answers.(i);
              let latency =
                match r.arrival with
                | Some a -> vdone -. a (* queueing + service *)
                | None -> dt
              in
              Obs.Histogram.observe latency_hist latency)
            admitted));
      fire_ticks ();
      chunks rest
  in
  chunks reqs;
  let elapsed = cfg.clock () -. t_start in
  {
    requests = !total;
    served = !served;
    rejected = !rejected;
    shed = !shed;
    errors = !errors;
    distinct_evaluated = !distinct;
    stream_pruned = !pruned;
    result_nodes = !nodes;
    elapsed;
    throughput = (if elapsed > 0.0 then float_of_int !served /. elapsed else 0.0);
    latency = Obs.Histogram.summary latency_hist;
    cache = Option.map Plan_cache.stats cfg.cache;
    degraded = List.rev !degraded;
    residual_violations = !residual_violations;
  }

let to_text ?telemetry s =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "requests:    %d\n" s.requests;
  pr "served:      %d\n" s.served;
  if s.rejected > 0 || s.shed > 0 || s.errors > 0 then begin
    pr "rejected:    %d (%s)\n" s.rejected reject_reason;
    pr "shed:        %d (deadline passed before admission)\n" s.shed;
    pr "errors:      %d\n" s.errors
  end;
  if s.residual_violations > 0 then
    pr "residuals:   %d requests over their predicted cost\n"
      s.residual_violations;
  pr "evaluated:   %d distinct plans (%d stream-pruned)\n" s.distinct_evaluated
    s.stream_pruned;
  pr "answers:     %d result nodes\n" s.result_nodes;
  pr "elapsed:     %.3f s  (%.0f req/s)\n" s.elapsed s.throughput;
  let l = s.latency in
  if l.Obs.count > 0 then
    pr "latency:     p50 %.3f ms  p90 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n"
      (1e3 *. l.Obs.p50) (1e3 *. l.Obs.p90) (1e3 *. l.Obs.p95)
      (1e3 *. l.Obs.p99) (1e3 *. l.Obs.max);
  (match s.cache with
  | None -> ()
  | Some c ->
    pr "plan cache:  %d hits, %d misses, %d evictions (%d/%d entries)\n"
      c.Plan_cache.hits c.Plan_cache.misses c.Plan_cache.evictions
      c.Plan_cache.size c.Plan_cache.capacity);
  (* which plans admission control refused, and the bound it priced *)
  (match s.degraded with
  | [] -> ()
  | ds ->
    let tally = Hashtbl.create 8 in
    List.iter
      (fun (fp, bound) ->
        let n, _ = Option.value ~default:(0, bound) (Hashtbl.find_opt tally fp) in
        Hashtbl.replace tally fp (n + 1, bound))
      ds;
    pr "degraded:    %d plans priced over the deadline budget\n"
      (Hashtbl.length tally);
    Hashtbl.iter
      (fun fp (n, bound) -> pr "  %-28s x%-5d bound %.3g ops\n" fp n bound)
      tally);
  (* the [treequery top]-style end-of-run table *)
  (match telemetry with
  | Some store when not (Telemetry.Cost_store.is_empty store) ->
    Buffer.add_string buf (Telemetry.Cost_store.to_table store)
  | _ -> ());
  Buffer.contents buf
