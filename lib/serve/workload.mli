(** Workload generation for the serving driver: query shapes over the
    XMark-flavoured vocabulary of {!Treekit.Generator}, and open- or
    closed-loop request streams over them.

    Everything is driven by an explicit [Random.State.t] so a (seed,
    shape-count, request-count) triple names the workload exactly —
    replayable across runs and in CI. *)

type shape = {
  source : string;  (** concrete syntax, re-parseable *)
  query : Treequery.Engine.query;
}

val shapes : rng:Random.State.t -> count:int -> shape array
(** [count] query shapes with pairwise-distinct canonical forms: a mix of
    Core XPath path expressions (child/descendant chains with qualifiers,
    some streamable) and conjunctive queries (chains over
    child/descendant/following — the [following] ones exercise the
    rewrite strategy, whose plan is the expensive one to cache).
    @raise Failure if the vocabulary cannot yield [count] distinct
    shapes. *)

type request = {
  id : int;
  shape : int;  (** index into the shape array *)
  arrival : float option;
      (** [Some t]: open loop, arrives [t] seconds after the run starts,
          whether or not the server is ready.  [None]: closed loop, the
          client issues it when the server finishes the previous one. *)
}

type kind =
  | Closed_loop
  | Open_loop of { rate : float }  (** arrivals at [rate] requests/s *)

val kind_of_string : string -> (kind, string) result
(** ["closed"] or ["open:<rate>"] (e.g. ["open:500"]). *)

val requests :
  rng:Random.State.t -> shapes:int -> count:int -> kind -> request list
(** [count] requests with uniformly drawn shape indices, in arrival
    order. *)

val requests_split :
  seed:int -> shapes:int -> count:int -> kind -> request list
(** Like {!requests}, but request [i]'s shape is drawn from its own RNG
    state derived by splitting [(seed, i)] under a stable salt (the
    {!Check.Gen} idiom) instead of one sequentially threaded state.  The
    stream is therefore a pure function of [(seed, shapes, count)] —
    independent of evaluation order, chunking, or domain count — which is
    what keeps parallel wall-clock runs replayable against sequential
    ones. *)

(** {1 Standing-query churn streams} *)

type registration_event =
  | Register of { id : int; shape : int }
      (** register shape [shape] under subscription ID [id] (= the event
          index, so IDs are strictly increasing and unique) *)
  | Unregister of { id : int }
      (** unregister the subscription registered by event [id]; may be a
          no-op if that event was not a registration or was already
          unregistered *)

val registrations_split :
  seed:int -> shapes:int -> count:int -> churn:float -> registration_event list
(** A seeded register/unregister churn stream for the standing-query
    index: [count] events, each an unregistration with probability
    [churn] (event 0 always registers).  Event [i]'s coin flips come
    from its own [(seed, i, salt)]-derived RNG (the {!requests_split}
    idiom), so the stream is deterministic and prefix-stable: the
    [count=k] stream equals the first k events of any longer stream.
    Register events take shape indices [0, 1, 2, …] in order, so the
    registered queries have pairwise-distinct canonicals whenever the
    backing {!shapes} array does; an unregistration targets a uniformly
    drawn earlier event index.
    @raise Invalid_argument when [churn] is outside [0, 1)
    @raise Failure when the register events outnumber [shapes] *)
