(** The serving loop: admission control, deadlines, batching and latency
    accounting over one tree.

    Requests are processed in admission order, [batch] at a time, through
    {!Batch.run_prepared}; plans come from the {!Plan_cache} when one is
    configured.  Time is discrete-event simulated: service durations are
    measured with the real [clock], queueing is virtual, so an open-loop
    workload whose arrival rate exceeds the service rate builds queueing
    delay (and sheds requests whose deadline passed before admission)
    without the driver ever sleeping.

    Admission control is the paper's complexity map used as a gatekeeper:
    each prepared query carries a strategy, the strategy a naive operation
    bound (e.g. O(n·|Q|²) for bottom-up Core XPath, exponential in |Q| for
    the rewrite strategy); a request whose bound exceeds what the deadline
    affords at [ops_per_second] is rejected up-front with
    ["degraded: naive bound exceeded"] rather than allowed to blow the
    deadline for everyone queued behind it. *)

type config = {
  cache : Plan_cache.t option;
  concurrency : int;  (** requests admitted (in flight) together; ≥ 1 *)
  share : bool;
      (** batch mode: run each in-flight group through
          {!Batch.run_prepared} (plan dedup, grouped seed scans) instead
          of one evaluation per request *)
  stream_prefilter : bool;
      (** with [share]: also decide the group's streamable queries in one
          SAX pass (see {!Batch.run_prepared}) *)
  deadline : float option;  (** per-request seconds, for shed + reject *)
  ops_per_second : float;
      (** calibration for the admission bound (elementary operations the
          evaluator is assumed to sustain per second) *)
  clock : unit -> float;
  telemetry : Telemetry.Cost_store.t option;
      (** per-fingerprint cost store fed one observation per served
          request (per distinct plan in [share] mode): service latency
          (the scope duration, not queueing), the admission bound as
          predicted cost, and the profile counter deltas as observed
          cost.  Residual violations (observed/predicted over the
          store's threshold) are counted in [stats] and bump
          [serve_residual_violations]. *)
  recorder : Telemetry.Flight_recorder.t option;
      (** flight recorder pushed one entry per request outcome (served,
          shed, rejected, residual violation); shed/degrade/violation
          also {!Telemetry.Flight_recorder.trigger} it *)
  optimizer : Optimizer.t option;
      (** adaptive strategy selection: every planned request is
          re-routed through {!Optimizer.decide} — a pick persisted on
          the plan-cache entry is honoured (exploration skipped), and
          admission control prices the {e picked} arm's bound, not the
          planner default's.  Each served request's latency and observed
          cost feed {!Optimizer.observe} (after the cost store, so the
          EWMAs decisions read are fresh); on convergence the winning
          strategy and its observed mean cost are stored with
          {!Plan_cache.set_pick}. *)
  force_strategy : Treequery.Engine.strategy option;
      (** pin every request to one strategy (re-prepared once per
          canonical shape; shapes the strategy cannot evaluate keep the
          planner default).  Wins over [optimizer] — the fixed arms of
          the auto-vs-fixed serving benchmark are exactly this. *)
  inject_overbudget : bool;
      (** fault injection for the telemetry smoke tests: bump the
          [serve_injected_work] counter by twice each request's
          admission bound inside its scope, so every served request's
          observed cost provably exceeds its prediction.  Applies to the
          non-[share] path. *)
  tick_every : float option;  (** virtual seconds between telemetry ticks *)
  on_tick : (int -> float -> unit) option;
      (** [f i vt] fires after the chunk during which virtual time
          passed tick [i]'s deadline [vt = (i+1)·tick_every] — the
          driver's periodic OpenMetrics snapshot hook, deterministic
          under a fake clock because it is driven by virtual time *)
  pool : Pool.t option;
      (** execute each chunk's admitted requests (batch reps in [share]
          mode) in parallel on the pool's domains, one {!Obs.Shard} per
          task, merged on the admitting domain in admission order —
          answers, counter totals, telemetry feed and flight-recorder
          entries are identical to the sequential path.  The caller must
          {!Treekit.Tree.seal} the tree first and keeps ownership of the
          pool ({!Pool.shutdown}).  [None] (the default) preserves the
          sequential loop exactly. *)
  wall_clock : bool;
      (** honour open-loop arrival times in real time: the loop [sleep]s
          until each chunk's last arrival instead of advancing a virtual
          clock, and latency/throughput are measured against [clock]
          itself.  [false] (the default) keeps the deterministic
          discrete-event twin. *)
  sleep : float -> unit;
      (** how to wait in [wall_clock] mode.  The library does not link
          [unix], so the CLI injects [Unix.sleepf]; the default no-op
          treats every arrival as already due (pure back-pressure). *)
}

val config :
  ?cache:Plan_cache.t ->
  ?concurrency:int ->
  ?share:bool ->
  ?stream_prefilter:bool ->
  ?deadline:float ->
  ?ops_per_second:float ->
  ?clock:(unit -> float) ->
  ?telemetry:Telemetry.Cost_store.t ->
  ?recorder:Telemetry.Flight_recorder.t ->
  ?optimizer:Optimizer.t ->
  ?force_strategy:Treequery.Engine.strategy ->
  ?inject_overbudget:bool ->
  ?tick_every:float ->
  ?on_tick:(int -> float -> unit) ->
  ?pool:Pool.t ->
  ?wall_clock:bool ->
  ?sleep:(float -> unit) ->
  unit ->
  config
(** Defaults: no cache, [concurrency = 1], [share = false],
    [stream_prefilter = false], no deadline, [ops_per_second = 5e7],
    [clock = Obs.now], no telemetry, no recorder, no optimizer,
    [inject_overbudget = false], no ticks, no pool,
    [wall_clock = false], [sleep] a no-op. *)

val reject_reason : string
(** ["degraded: naive bound exceeded"] — the message attached to
    admission-control rejections. *)

val naive_bound : Treequery.Engine.prepared -> Treekit.Tree.t -> float
(** Elementary-operation estimate of running this plan on this tree,
    from the paper's per-strategy bounds. *)

type stats = {
  requests : int;
  served : int;
  rejected : int;  (** admission control: {!reject_reason} *)
  shed : int;  (** open loop: deadline already passed at admission *)
  errors : int;
  distinct_evaluated : int;  (** evaluations after batch dedup *)
  stream_pruned : int;
  result_nodes : int;  (** Σ answer cardinalities over served requests *)
  elapsed : float;  (** wall seconds for the whole run *)
  throughput : float;  (** served / elapsed *)
  latency : Obs.histogram_summary;  (** queueing + service per request *)
  cache : Plan_cache.stats option;
  degraded : (string * float) list;
      (** admission-control rejections in order: the plan fingerprint and
          the operation bound it was priced at *)
  residual_violations : int;
      (** served requests whose observed cost exceeded their admission
          bound by more than the cost store's threshold; 0 when no
          [telemetry] store is configured *)
}

val run :
  config ->
  Treekit.Tree.t ->
  Workload.shape array ->
  Workload.request list ->
  stats
(** Serve the requests; the run is wrapped in a [serve] span (attributed
    with |D|, request count, concurrency and share mode) with per-phase
    child spans ([serve:plan], [serve:batch], …, plus one
    [serve:shed]/[serve:degrade] marker per refused request carrying the
    fingerprint and bound it priced) and feeds the [serve_latency]
    histogram (cleared at the start of each run).  When observability is
    enabled, each request's evaluation runs in an {!Obs.Scope} — one
    profile per request (per distinct plan in [share] mode), so a
    captured report attributes counters to requests rather than one
    global blob. *)

val to_text : ?telemetry:Telemetry.Cost_store.t -> stats -> string
(** Multi-line human-readable summary with latency quantiles.
    [telemetry] appends the {!Telemetry.Cost_store.to_table} end-of-run
    table (top fingerprints by p99, residual outliers). *)
