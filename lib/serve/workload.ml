module Engine = Treequery.Engine

type shape = { source : string; query : Engine.query }

(* labels the XMark-flavoured generator actually emits, so shapes hit
   nonempty label relations on generated trees *)
let vocab =
  [|
    "site"; "regions"; "item"; "name"; "description"; "mailbox"; "mail";
    "date"; "people"; "person"; "address"; "city"; "country";
    "open_auctions"; "open_auction"; "bidder"; "increase";
    "closed_auctions"; "closed_auction"; "price"; "seller"; "buyer";
    "annotation"; "itemref"; "personref"; "author"; "category"; "location";
  |]

let pick rng a = a.(Random.State.int rng (Array.length a))

let gen_xpath rng =
  let buf = Buffer.create 48 in
  let steps = 1 + Random.State.int rng 3 in
  for _ = 1 to steps do
    Buffer.add_string buf (if Random.State.bool rng then "//" else "/");
    Buffer.add_string buf (pick rng vocab);
    if Random.State.int rng 3 = 0 then
      match Random.State.int rng 3 with
      | 0 -> Printf.bprintf buf "[%s]" (pick rng vocab)
      | 1 -> Printf.bprintf buf "[%s//%s]" (pick rng vocab) (pick rng vocab)
      | _ -> Printf.bprintf buf "[%s/%s]" (pick rng vocab) (pick rng vocab)
  done;
  Buffer.contents buf

let cq_axes = [| "child"; "descendant"; "following" |]

let gen_cq rng =
  let buf = Buffer.create 64 in
  let n = 2 + Random.State.int rng 2 in
  Printf.bprintf buf "q(X0) :- lab(X0, \"%s\")" (pick rng vocab);
  for i = 1 to n - 1 do
    Printf.bprintf buf ", %s(X%d, X%d), lab(X%d, \"%s\")" (pick rng cq_axes)
      (i - 1) i i (pick rng vocab)
  done;
  Buffer.contents buf

let gen_shape rng =
  (* 4/5 XPath, 1/5 conjunctive *)
  if Random.State.int rng 5 < 4 then
    let s = gen_xpath rng in
    { source = s; query = Engine.parse_xpath s }
  else
    let s = gen_cq rng in
    { source = s; query = Engine.parse_cq s }

let shapes ~rng ~count =
  let seen = Hashtbl.create (2 * count) in
  let out = ref [] in
  let found = ref 0 in
  let attempts = ref 0 in
  while !found < count do
    incr attempts;
    if !attempts > 200 * count then
      failwith
        (Printf.sprintf "Workload.shapes: only %d distinct shapes after %d attempts"
           !found !attempts);
    let s = gen_shape rng in
    let canon = Engine.canonical s.query in
    if not (Hashtbl.mem seen canon) then begin
      Hashtbl.add seen canon ();
      out := s :: !out;
      incr found
    end
  done;
  Array.of_list (List.rev !out)

type request = { id : int; shape : int; arrival : float option }

type kind = Closed_loop | Open_loop of { rate : float }

let kind_of_string s =
  match String.lowercase_ascii s with
  | "closed" -> Ok Closed_loop
  | s when String.length s > 5 && String.sub s 0 5 = "open:" -> (
    match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some rate when rate > 0.0 -> Ok (Open_loop { rate })
    | _ -> Error "open-loop rate must be a positive number, e.g. open:500")
  | _ -> Error "workload must be \"closed\" or \"open:<rate>\""

let requests ~rng ~shapes ~count kind =
  List.init count (fun i ->
      {
        id = i;
        shape = Random.State.int rng shapes;
        arrival =
          (match kind with
          | Closed_loop -> None
          | Open_loop { rate } -> Some (float_of_int i /. rate));
      })

(* Seed-split streams for parallel runs: request [i]'s shape comes from
   its own RNG state derived from [(seed, i, salt)] — the same stable
   salt-hash idiom as [Check.Gen.rng_for] — instead of one sequentially
   threaded state.  Any partition of the id range (across chunks,
   domains, or replayed subranges) then draws exactly the same stream,
   so parallel runs are replayable and independent of domain count. *)
let salt_hash s =
  String.fold_left (fun h c -> ((h * 131) + Char.code c) land 0x3FFFFFFF) 7 s

let split_salt = salt_hash "workload-request"

let request_rng ~seed i = Random.State.make [| seed; i; split_salt |]

let requests_split ~seed ~shapes ~count kind =
  List.init count (fun i ->
      {
        id = i;
        shape = Random.State.int (request_rng ~seed i) shapes;
        arrival =
          (match kind with
          | Closed_loop -> None
          | Open_loop { rate } -> Some (float_of_int i /. rate));
      })

(* ------------------------------------------------------------------ *)
(* Standing-query churn streams *)

type registration_event =
  | Register of { id : int; shape : int }
  | Unregister of { id : int }

let registration_salt = salt_hash "workload-registration"

let registration_rng ~seed i = Random.State.make [| seed; i; registration_salt |]

(* Event [i]'s coin flips come from its own split RNG (the
   [requests_split] idiom), so the stream is prefix-stable: the [count=k]
   stream is exactly the first k events of any longer stream with the
   same seed.  Register events consume shape indices in order (0, 1, 2,
   …), so every registered query has a distinct canonical form whenever
   the backing shape array does ([Workload.shapes] guarantees that). *)
let registrations_split ~seed ~shapes ~count ~churn =
  if churn < 0.0 || churn >= 1.0 then
    invalid_arg "Workload.registrations_split: churn must be in [0, 1)";
  let rec build i registered acc =
    if i = count then List.rev acc
    else
      let rng = registration_rng ~seed i in
      let unregister = i > 0 && Random.State.float rng 1.0 < churn in
      if unregister then
        (* a uniformly drawn earlier event index; applying it is a no-op
           when that event was itself an unregistration or the target is
           already gone — churn application must be idempotent *)
        build (i + 1) registered (Unregister { id = Random.State.int rng i } :: acc)
      else begin
        if registered >= shapes then
          failwith
            (Printf.sprintf
               "Workload.registrations_split: %d register events need more \
                than the %d available shapes"
               (registered + 1) shapes);
        build (i + 1) (registered + 1) (Register { id = i; shape = registered } :: acc)
      end
  in
  build 0 0 []
