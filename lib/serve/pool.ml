(* Fixed-size work-stealing domain pool for the serving layer.

   [size] counts participants including the caller's domain: a pool of
   size k spawns k-1 worker domains and the submitting domain works
   alongside them during [run], so `--domains 1` is the sequential twin
   (no domains spawned, tasks run in order on the caller).

   Each participant owns a deque of task indices guarded by a plain
   mutex; tasks are dealt round-robin at submission, a participant pops
   from the front of its own deque and steals from the back of the
   others when empty.  Tasks here are coarse (one query evaluation or
   batch rep, typically 10µs–10ms), so a mutex per deque costs noise
   compared to the work it hands out — the stealing structure is what
   matters: an unlucky deal (one deque full of slow plans) rebalances
   instead of serialising the tail.

   Jobs are dispatched by generation: workers sleep on a condition
   variable between jobs, [run] installs the job and bumps the
   generation, workers wake, drain, and the last finished task signals
   the caller.  Results land in a per-task slot array, so [run] returns
   them in submission order no matter which domain ran what. *)

type job = {
  tasks : (unit -> unit) array;  (* index-addressed closures, result capture inside *)
  deques : int list ref array;  (* per-participant pending task indices *)
  deque_locks : Mutex.t array;
  completed : int Atomic.t;
}

type t = {
  size : int;
  lock : Mutex.t;  (* guards job/generation/shutdown *)
  work_cv : Condition.t;  (* workers wait here for a new generation *)
  done_cv : Condition.t;  (* the caller waits here for job completion *)
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable running : bool;  (* a [run] is in flight (pools are not reentrant) *)
}

let size t = t.size

(* pop own front, else steal another participant's back; [me] indexes
   the participant *)
let grab (j : job) me =
  let n = Array.length j.deques in
  let try_own () =
    Mutex.lock j.deque_locks.(me);
    let r =
      match !(j.deques.(me)) with
      | [] -> None
      | x :: rest ->
        j.deques.(me) := rest;
        Some x
    in
    Mutex.unlock j.deque_locks.(me);
    r
  in
  let try_steal victim =
    Mutex.lock j.deque_locks.(victim);
    let r =
      match List.rev !(j.deques.(victim)) with
      | [] -> None
      | x :: rest_rev ->
        j.deques.(victim) := List.rev rest_rev;
        Some x
    in
    Mutex.unlock j.deque_locks.(victim);
    r
  in
  match try_own () with
  | Some _ as r -> r
  | None ->
    let rec steal k =
      if k >= n then None
      else
        let victim = (me + k) mod n in
        if victim = me then steal (k + 1)
        else match try_steal victim with Some _ as r -> r | None -> steal (k + 1)
    in
    steal 1

let drain t (j : job) me =
  let total = Array.length j.tasks in
  let rec loop () =
    match grab j me with
    | None -> ()
    | Some i ->
      j.tasks.(i) ();
      let done_now = 1 + Atomic.fetch_and_add j.completed 1 in
      if done_now = total then begin
        (* last task: wake the caller (who may be idling in [run]) *)
        Mutex.lock t.lock;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.lock
      end;
      loop ()
  in
  loop ()

let worker t me () =
  let rec live gen =
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = gen do
      Condition.wait t.work_cv t.lock
    done;
    let stop = t.stop in
    let gen = t.generation in
    let job = t.job in
    Mutex.unlock t.lock;
    if not stop then begin
      (match job with Some j -> drain t j me | None -> ());
      live gen
    end
  in
  live 0

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      domains = [];
      running = false;
    }
  in
  t.domains <- List.init (domains - 1) (fun k -> Domain.spawn (worker t (k + 1)));
  t

let run (type a) t (thunks : (unit -> a) array) : a array =
  let total = Array.length thunks in
  if t.stop then invalid_arg "Pool.run: pool is shut down"
  else if total = 0 then [||]
  else if t.size <= 1 || total = 1 then
    (* sequential twin: in-order on the calling domain, nothing shared *)
    Array.map (fun f -> f ()) thunks
  else begin
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.run: pool is shut down"
    end;
    if t.running then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.run: pool is already running a job"
    end;
    t.running <- true;
    Mutex.unlock t.lock;
    let results : a option array = Array.make total None in
    let first_exn = Atomic.make None in
    let tasks =
      Array.mapi
        (fun i f () ->
          match f () with
          | x -> results.(i) <- Some x
          | exception e ->
            (* remember the first failure (and its backtrace is lost to
               the domain boundary anyway); remaining tasks still run so
               the job always drains *)
            ignore (Atomic.compare_and_set first_exn None (Some e)))
        thunks
    in
    let n = t.size in
    let deques = Array.init n (fun _ -> ref []) in
    (* deal round-robin, preserving order within each deque *)
    for i = total - 1 downto 0 do
      deques.(i mod n) := i :: !(deques.(i mod n))
    done;
    let j =
      {
        tasks;
        deques;
        deque_locks = Array.init n (fun _ -> Mutex.create ());
        completed = Atomic.make 0;
      }
    in
    Mutex.lock t.lock;
    t.job <- Some j;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.lock;
    (* the caller is participant 0: work until the deques are dry, then
       wait for in-flight stolen tasks to finish *)
    drain t j 0;
    Mutex.lock t.lock;
    while Atomic.get j.completed < total do
      Condition.wait t.done_cv t.lock
    done;
    t.job <- None;
    t.running <- false;
    Mutex.unlock t.lock;
    (match Atomic.get first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some x -> x | None -> invalid_arg "Pool.run: missing result")
      results
  end

let shutdown t =
  Mutex.lock t.lock;
  let ds = t.domains in
  t.domains <- [];
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.lock;
  List.iter Domain.join ds
