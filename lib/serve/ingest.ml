module Engine = Treequery.Engine
module Index = Subscribe.Index
module Tree = Treekit.Tree

let salt_hash s =
  String.fold_left (fun h c -> ((h * 131) + Char.code c) land 0x3FFFFFFF) 7 s

let shapes_salt = salt_hash "ingest-shapes"

let doc_salt = salt_hash "ingest-document"

let doc_rng ~seed i = Random.State.make [| seed; i; doc_salt |]

type config = {
  seed : int;
  registrations : int;  (** churn-stream event count *)
  docs : int;
  churn : float;
  scale : int;  (** XMark scale of each generated document *)
  pool : Pool.t option;  (** [None] = sequential, chunk size 1 *)
  one_at_a_time : bool;  (** the differential twin: no shared index *)
  on_chunk : (int -> int -> unit) option;
      (** (docs so far, fired so far) after each merged chunk *)
}

type summary = {
  events : int;
  registered : int;
  unregistered : int;  (** unregistrations that hit a live ID *)
  live : int;
  entries : int;
  trie_states : int;
  class_counts : (string * int) list;
  docs_matched : int;
  fired_total : int;
  fired_per_doc : int array;
  active_work : int;
  elapsed : float;
}

let c_ingest_docs = Obs.Counter.make "ingest_documents"

(* The ingest loop: apply the seeded churn stream, stream generated
   documents through the index (or through one-at-a-time evaluation of
   every live registration — the twin the CI smoke compares against),
   chunked by pool size for parallel per-document matching.

   Churn interleaving: with [churn = 0] the whole stream is applied
   before the first document (a pure registration phase); with
   [churn > 0] event slices are applied at fixed epoch boundaries (a
   function of the document count alone, NOT of pool size) so
   subscriptions come and go mid-stream while fired sets stay a pure
   function of (seed, registrations, docs, churn) — identical for every
   [--domains] count and between the indexed run and the one-at-a-time
   twin.  Within an epoch, documents are matched in pool-sized parallel
   chunks against the same index state. *)
let run cfg =
  let t0 = Obs.now () in
  let events =
    Array.of_list
      (Workload.registrations_split ~seed:cfg.seed ~shapes:cfg.registrations
         ~count:cfg.registrations ~churn:cfg.churn)
  in
  let n_register =
    Array.fold_left
      (fun acc -> function Workload.Register _ -> acc + 1 | _ -> acc)
      0 events
  in
  let shapes =
    Workload.shapes
      ~rng:(Random.State.make [| cfg.seed; shapes_salt |])
      ~count:n_register
  in
  let unregistered = ref 0 in
  (* the two modes behind one pair of closures *)
  let index = Index.create () in
  let twin : (int, Engine.prepared) Hashtbl.t = Hashtbl.create 1024 in
  let twin_plans : Engine.prepared option array = Array.make (max 1 n_register) None in
  let twin_plan shape =
    match twin_plans.(shape) with
    | Some p -> p
    | None ->
      let p = Engine.prepare shapes.(shape).Workload.query in
      twin_plans.(shape) <- Some p;
      p
  in
  let apply ev =
    match ev with
    | Workload.Register { id; shape } ->
      if cfg.one_at_a_time then Hashtbl.replace twin id (twin_plan shape)
      else ignore (Index.register index ~id shapes.(shape).Workload.query)
    | Workload.Unregister { id } ->
      let hit =
        if cfg.one_at_a_time then (
          let was = Hashtbl.mem twin id in
          Hashtbl.remove twin id;
          was)
        else Index.unregister index ~id
      in
      if hit then incr unregistered
  in
  let nsess = match cfg.pool with None -> 1 | Some p -> max 1 (Pool.size p) in
  let sessions =
    if cfg.one_at_a_time then [||] else Array.init nsess (fun _ -> Index.session index)
  in
  let match_doc slot tree =
    Obs.Counter.incr c_ingest_docs;
    if cfg.one_at_a_time then begin
      let fired = ref 0 in
      Hashtbl.iter
        (fun _ p -> if p.Engine.exec_boolean tree then incr fired)
        twin;
      (!fired, 0)
    end
    else begin
      let s = sessions.(slot) in
      let fired = Index.match_tree s tree in
      (List.length fired, Index.doc_active_work s)
    end
  in
  let e_total = Array.length events in
  let applied = ref 0 in
  let apply_through upto =
    while !applied < upto do
      apply events.(!applied);
      incr applied
    done
  in
  if cfg.churn = 0.0 then apply_through e_total;
  let fired_per_doc = Array.make (max 1 cfg.docs) 0 in
  let active_work = ref 0 in
  let fired_so_far = ref 0 in
  (* churn epochs partition the document stream independently of pool
     size: epoch [e] covers docs [e·docs/E, (e+1)·docs/E) *)
  let epochs = min cfg.docs 16 in
  for e = 0 to epochs - 1 do
    let lo = e * cfg.docs / epochs and ehi = (e + 1) * cfg.docs / epochs in
    if cfg.churn > 0.0 then apply_through (ehi * e_total / cfg.docs);
    let c = ref lo in
    while !c < ehi do
      let hi = min ehi (!c + nsess) in
      let chunk =
        Array.init (hi - !c) (fun k ->
            let i = !c + k in
            let tree =
              Treekit.Generator.xmark ~rng:(doc_rng ~seed:cfg.seed i) ~scale:cfg.scale ()
            in
            Tree.seal tree;
            (k, tree))
      in
      let results =
        match cfg.pool with
        | Some pool when hi - !c > 1 ->
          Pool.run pool (Array.map (fun (k, tree) -> fun () -> match_doc k tree) chunk)
        | _ -> Array.map (fun (k, tree) -> match_doc k tree) chunk
      in
      Array.iteri
        (fun k (fired, work) ->
          fired_per_doc.(!c + k) <- fired;
          fired_so_far := !fired_so_far + fired;
          active_work := !active_work + work)
        results;
      c := hi;
      (match cfg.on_chunk with
      | Some f -> f hi !fired_so_far
      | None -> ())
    done
  done;
  apply_through e_total;
  let live = if cfg.one_at_a_time then Hashtbl.length twin else Index.live index in
  {
    events = e_total;
    registered = n_register;
    unregistered = !unregistered;
    live;
    entries = (if cfg.one_at_a_time then live else Index.entries index);
    trie_states = (if cfg.one_at_a_time then 0 else Index.trie_states index);
    class_counts = (if cfg.one_at_a_time then [] else Index.class_counts index);
    docs_matched = cfg.docs;
    fired_total = Array.fold_left ( + ) 0 (if cfg.docs = 0 then [||] else fired_per_doc);
    fired_per_doc = (if cfg.docs = 0 then [||] else fired_per_doc);
    active_work = !active_work;
    elapsed = Obs.now () -. t0;
  }

let summary_json s =
  Obs.Json.Obj
    [
      ("events", Obs.Json.Num (float_of_int s.events));
      ("registered", Obs.Json.Num (float_of_int s.registered));
      ("unregistered", Obs.Json.Num (float_of_int s.unregistered));
      ("live", Obs.Json.Num (float_of_int s.live));
      ("entries", Obs.Json.Num (float_of_int s.entries));
      ("trie_states", Obs.Json.Num (float_of_int s.trie_states));
      ( "classes",
        Obs.Json.Obj
          (List.map
             (fun (c, n) -> (c, Obs.Json.Num (float_of_int n)))
             s.class_counts) );
      ("docs", Obs.Json.Num (float_of_int s.docs_matched));
      ("fired_total", Obs.Json.Num (float_of_int s.fired_total));
      ( "fired_per_doc",
        Obs.Json.Arr
          (Array.to_list
             (Array.map (fun n -> Obs.Json.Num (float_of_int n)) s.fired_per_doc))
      );
      ("active_work", Obs.Json.Num (float_of_int s.active_work));
      ("elapsed_s", Obs.Json.Num s.elapsed);
    ]
