module Engine = Treequery.Engine

let c_hit = Obs.Counter.make "plan_cache_hit"
let c_miss = Obs.Counter.make "plan_cache_miss"
let c_evict = Obs.Counter.make "plan_cache_evict"

type pick = { pick_strategy : string; pick_cost : float }

(* intrusive doubly-linked recency list; [head] is most recent *)
type entry = {
  key : string;
  prepared : Engine.prepared;
  mutable stamp : float;  (* insertion time, for TTL *)
  mutable hits : int;  (* lookups served by this entry *)
  mutable pick : pick option;  (* converged optimizer decision, if any *)
  mutable prev : entry option;
  mutable next : entry option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  expirations : int;
  size : int;
  capacity : int;
}

type t = {
  table : (string, entry) Hashtbl.t;
  capacity : int;
  ttl : float option;
  clock : unit -> float;
  (* One mutex for the whole cache, not a striped lock: the LRU recency
     list is a single doubly-linked chain, and every hit mutates it
     ([touch]), so stripes would still contend on the list and buy
     nothing.  The parallel server keeps all lookups on the admitting
     domain anyway (workers receive already-prepared plans), so in
     practice this lock is uncontended — it exists so the API stays safe
     if a future front-end looks plans up from several domains. *)
  lock : Mutex.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable expirations : int;
}

let create ?(capacity = 128) ?ttl ?(clock = Obs.now) () =
  if capacity < 0 then invalid_arg "Plan_cache.create: negative capacity";
  {
    table = Hashtbl.create (max 16 capacity);
    capacity;
    ttl;
    clock;
    lock = Mutex.create ();
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    expirations = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  unlink t e;
  push_front t e

let remove t e =
  unlink t e;
  Hashtbl.remove t.table e.key

let expired t e =
  match t.ttl with None -> false | Some ttl -> t.clock () -. e.stamp > ttl

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    remove t e;
    t.evictions <- t.evictions + 1;
    Obs.Counter.incr c_evict

let insert t key prepared =
  if t.capacity > 0 then begin
    while Hashtbl.length t.table >= t.capacity do
      evict_lru t
    done;
    let e =
      { key; prepared; stamp = t.clock (); hits = 0; pick = None;
        prev = None; next = None }
    in
    Hashtbl.replace t.table key e;
    push_front t e
  end

let find t query =
  let key = Engine.canonical query in
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e when not (expired t e) ->
    t.hits <- t.hits + 1;
    e.hits <- e.hits + 1;
    Obs.Counter.incr c_hit;
    touch t e;
    (`Hit, e.prepared)
  | found ->
    (match found with
    | Some e ->
      remove t e;
      t.expirations <- t.expirations + 1
    | None -> ());
    t.misses <- t.misses + 1;
    Obs.Counter.incr c_miss;
    let prepared = Engine.prepare query in
    insert t key prepared;
    (`Miss, prepared)

let size t = locked t @@ fun () -> Hashtbl.length t.table

(* Optimizer-state persistence.  The pick rides the entry: eviction and
   TTL expiry drop it with the entry, so a re-planned shape re-explores
   — exactly the forget-on-churn semantics the optimizer wants.  Both
   accessors tolerate a missing (evicted) entry: a decide/observe pair
   may straddle an eviction. *)
let pick t ~canon =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table canon with
  | Some e when not (expired t e) -> e.pick
  | _ -> None

let set_pick t ~canon ~strategy ~cost =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table canon with
  | Some e when not (expired t e) ->
    e.pick <- Some { pick_strategy = strategy; pick_cost = cost }
  | _ -> ()

type entry_stats = {
  fingerprint : string;
  canon : string;
  entry_hits : int;
  entry_pick : pick option;
}

(* walk the recency list head→tail so the result is MRU-first — the
   fingerprint stats hook the telemetry layer reads *)
let entries t =
  locked t @@ fun () ->
  let rec go acc = function
    | None -> List.rev acc
    | Some e ->
      go
        ({
           fingerprint = e.prepared.Engine.fp;
           canon = e.key;
           entry_hits = e.hits;
           entry_pick = e.pick;
         }
         :: acc)
        e.next
  in
  go [] t.head

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    expirations = t.expirations;
    size = Hashtbl.length t.table;
    capacity = t.capacity;
  }

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
