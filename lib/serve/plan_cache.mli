(** LRU plan cache keyed by canonical query fingerprint.

    The serving layer pays query planning — strategy selection and, for
    the rewrite strategy, the exponential-in-|Q| union of acyclic queries
    (Theorem 5.1) — once per query {e shape}: two requests whose queries
    are alpha-equivalent or parenthesization variants share one entry
    because the key is {!Treequery.Engine.canonical}.  The full canonical
    string is the key (a 64-bit fingerprint collision can never serve the
    wrong plan); the short {!Treequery.Engine.fingerprint} is only the
    display name.

    Eviction is least-recently-used at a fixed capacity; entries may also
    carry a TTL after which a lookup re-plans (and counts as a miss).
    Lookups bump the [plan_cache_hit] / [plan_cache_miss] /
    [plan_cache_evict] observability counters when tracing is enabled;
    {!stats} is always counted.

    Every operation takes the cache's internal mutex (a single lock, not
    a striped one: the LRU recency chain is one doubly-linked list that
    every hit mutates, so stripes would contend on it anyway), making
    the API safe to call from any domain.  The parallel server keeps
    lookups on the admitting domain, so the lock is uncontended there —
    it exists so sharing the cache across domains stays correct. *)

type t

type stats = {
  hits : int;
  misses : int;  (** includes TTL expirations *)
  evictions : int;  (** capacity evictions only *)
  expirations : int;  (** TTL expirations *)
  size : int;
  capacity : int;
}

val create : ?capacity:int -> ?ttl:float -> ?clock:(unit -> float) -> unit -> t
(** [capacity] (default 128) bounds the number of cached plans; 0 disables
    caching (every lookup misses and nothing is stored).  [ttl] is in
    seconds of [clock] time (default: no expiry); [clock] defaults to
    {!Obs.now} so tests can inject a fake clock. *)

val find : t -> Treequery.Engine.query -> [ `Hit | `Miss ] * Treequery.Engine.prepared
(** The cached plan for the query's canonical form, preparing (and
    storing) it on a miss.  The returned outcome feeds
    [Treequery.Engine.explain ~plan_cache]. *)

val stats : t -> stats

(** {1 Optimizer-state persistence}

    A converged adaptive-optimizer decision rides the cache entry it
    belongs to, so a warm fleet skips exploration: the serving layer
    stores the picked strategy (and the observed cost it converged at)
    after the optimizer settles, and reads it back on later lookups.
    The pick shares the entry's lifetime — LRU eviction and TTL expiry
    drop it, so a re-planned shape re-explores. *)

type pick = {
  pick_strategy : string;  (** {!Treequery.Engine.strategy_name} of the winner *)
  pick_cost : float;  (** observed mean cost (counter ops) at convergence *)
}

val pick : t -> canon:string -> pick option
(** The stored pick for a canonical form, if the entry is live (present
    and not TTL-expired). *)

val set_pick : t -> canon:string -> strategy:string -> cost:float -> unit
(** Persist a converged decision on the live entry for [canon]; a no-op
    when the entry was evicted or expired in the meantime. *)

type entry_stats = {
  fingerprint : string;  (** display name ({!Treequery.Engine.fingerprint}) *)
  canon : string;  (** the full canonical key *)
  entry_hits : int;  (** lookups served by this entry since insertion *)
  entry_pick : pick option;  (** persisted optimizer decision, if converged *)
}

val entries : t -> entry_stats list
(** Per-entry fingerprint stats, most-recently-used first — the hook the
    telemetry layer (and [--stats-json]) reads to report which cached
    plans a serving run actually reused. *)

val size : t -> int

val clear : t -> unit
(** Drop all entries; keeps the counters. *)
