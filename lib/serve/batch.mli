(** Shared-work execution of a batch of queries against one tree.

    Three kinds of sharing, in pipeline order:

    + {b plan dedup} — requests with the same canonical form evaluate
      once and share the answer node-set (aliased, so treat answers as
      read-only);
    + {b seed-scan grouping} — the distinct labels mentioned across the
      whole batch are materialised through {!Treekit.Tree.label_set}
      up-front, one O(occurrences) scan per label, so every query's
      per-label seed scan afterwards is a cache hit;
    + {b stream prefilter} (opt-in) — when at least two distinct queries
      fall in the streamable conjunctive forward fragment (Section 5),
      they are all subscribed to one {!Streamq.Filter_engine} and decided
      in a single pass over the document's event stream; the non-matching
      ones short-circuit to the empty answer without touching the
      evaluator (sound because
      [Xpath_filter.matches t p ⇔ Eval.query t p ≠ ∅]).  Off by default:
      with the output-sensitive evaluator, a per-batch O(‖A‖·Σ|Qᵢ|)
      document pass only pays for itself when evaluations are expensive
      (large outputs) or answers are discarded (SDI-style notification),
      so the caller chooses.

    Work done is recorded in the [serve_batch_*] / [serve_stream_pruned]
    observability counters and under a [serve:batch] span. *)

type result = {
  answers : Treekit.Nodeset.t array;  (** per request, in input order;
                                          duplicates alias one set *)
  distinct : int;  (** distinct canonical forms in the batch *)
  stream_pruned : int;  (** queries answered by the stream prefilter *)
}

val run_prepared :
  ?pool:Pool.t ->
  ?stream_prefilter:bool ->
  ?on_profile:(Treequery.Engine.prepared -> Obs.profile -> unit) ->
  Treekit.Tree.t ->
  Treequery.Engine.prepared array ->
  result
(** Evaluate already-prepared queries with the sharing above.
    [stream_prefilter] defaults to [false].  [on_profile] is called once
    per distinct plan with its execution's {!Obs.Scope} profile (empty
    when observability is disabled) — the serving layer's telemetry feed
    in share mode; the profile is also recorded for
    {!Obs.Report.capture} either way.

    [pool] (with size > 1) evaluates the distinct representatives in
    parallel across the pool's domains, one {!Obs.Shard} per rep, merged
    (and [on_profile] called) in rep order on the calling domain after
    the job drains — answers, counter totals and profile order are
    identical to the sequential path.  Seal the tree
    ({!Treekit.Tree.seal}) before passing a pool; dedup, prewarm and the
    stream prefilter stay on the calling domain (prewarm doubles as the
    label-index seal point for the batch's labels). *)

val run :
  ?stream_prefilter:bool ->
  ?cache:Plan_cache.t ->
  Treekit.Tree.t ->
  Treequery.Engine.query array ->
  result
(** Convenience: look each query up in [cache] (or
    {!Treequery.Engine.prepare} it when no cache is given), then
    {!run_prepared}. *)
