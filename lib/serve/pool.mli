(** Fixed-size work-stealing pool of OCaml 5 domains for the serving
    layer's parallel execution.

    A pool of size [k] spawns [k-1] worker domains once, at creation;
    the domain calling {!run} works alongside them, so [k] is the true
    degree of parallelism and a pool of size 1 spawns nothing and runs
    tasks sequentially in submission order — the deterministic twin the
    virtual-time tests rely on.

    Tasks are dealt round-robin over per-participant deques; an idle
    participant pops its own deque front-first and steals from the back
    of the others, so a skewed deal (one deque full of slow plans)
    rebalances instead of serialising the tail.  Deques are guarded by
    plain mutexes — tasks here are whole query evaluations, coarse
    enough that lock traffic is noise.

    Anything a task touches must be safe to read concurrently: trees
    {!Treekit.Tree.seal}ed before publication, prepared plans (immutable
    closures), and observability routed through per-task
    {!Obs.Shard}s.  The pool itself makes no attempt to isolate
    effects. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains:k ()] spawns [k-1] worker domains (default
    [k = 1]: no domains, sequential execution).  Workers idle on a
    condition variable between jobs.  @raise Invalid_argument when
    [k < 1]. *)

val size : t -> int
(** The participant count [k] given at creation (including the
    caller). *)

val run : t -> (unit -> 'a) array -> 'a array
(** Execute every thunk and return their results in submission order.
    Blocks until all tasks completed; the calling domain participates.
    If any task raises, the first exception observed is re-raised after
    the whole job has drained (every task still runs).  Not reentrant —
    one job at a time per pool; nested or concurrent {!run} calls raise
    [Invalid_argument].  With [size t = 1] (or a single task) this is
    exactly [Array.map (fun f -> f ()) tasks]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; {!run} afterwards
    raises [Invalid_argument].  Call once the pool is no longer needed —
    a pool left un-shutdown keeps its domains blocked on the condition
    variable until process exit. *)
