module Engine = Treequery.Engine
module Tree = Treekit.Tree
module Nodeset = Treekit.Nodeset

let c_requests = Obs.Counter.make "serve_batch_requests"
let c_shared = Obs.Counter.make "serve_batch_shared"
let c_label_scans = Obs.Counter.make "serve_label_scans"
let c_pruned = Obs.Counter.make "serve_stream_pruned"

type result = {
  answers : Treekit.Nodeset.t array;
  distinct : int;
  stream_pruned : int;
}

(* ------------------------------------------------------------------ *)
(* labels mentioned by a query, for grouping the per-label seed scans *)

let rec labels_of_path acc = function
  | Xpath.Ast.Step { quals; _ } -> List.fold_left labels_of_qual acc quals
  | Xpath.Ast.Seq (a, b) | Xpath.Ast.Union (a, b) ->
    labels_of_path (labels_of_path acc a) b

and labels_of_qual acc = function
  | Xpath.Ast.Exists p -> labels_of_path acc p
  | Xpath.Ast.Lab l -> l :: acc
  | Xpath.Ast.And (a, b) | Xpath.Ast.Or (a, b) ->
    labels_of_qual (labels_of_qual acc a) b
  | Xpath.Ast.Not q -> labels_of_qual acc q

let labels_of_cq (q : Cqtree.Query.t) acc =
  List.fold_left
    (fun acc -> function
      | Cqtree.Query.U (Cqtree.Query.Lab l, _) -> l :: acc
      | _ -> acc)
    acc q.atoms

let labels_of_query = function
  | Engine.Xpath_query p -> labels_of_path [] p
  | Engine.Cq_query q -> labels_of_cq q []
  | Engine.Positive_query u ->
    List.fold_left (fun acc q -> labels_of_cq q acc) [] u.Cqtree.Positive.disjuncts
  | Engine.Datalog_query p ->
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc -> function
            | Mdatalog.Ast.U (Mdatalog.Ast.Lab l, _) -> l :: acc
            | _ -> acc)
          acc r.Mdatalog.Ast.body)
      [] p.Mdatalog.Ast.rules
  | Engine.Axis_datalog_query _ -> []

let prewarm_labels tree (reps : Engine.prepared array) =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (p : Engine.prepared) ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem seen l) then begin
            Hashtbl.add seen l ();
            ignore (Tree.label_set tree l);
            Obs.Counter.incr c_label_scans
          end)
        (labels_of_query p.Engine.source))
    reps

(* ------------------------------------------------------------------ *)

let streamable (p : Engine.prepared) =
  match p.Engine.source with
  | Engine.Xpath_query path when Streamq.Xpath_filter.supported path -> Some path
  | _ -> None

(* one event-stream pass deciding every streamable query in the batch;
   returns [true] at rep index i iff that query certainly has an empty
   answer *)
let stream_prune tree (reps : Engine.prepared array) =
  let empty = Array.make (Array.length reps) false in
  let subscribed = ref [] in
  let fe = Streamq.Filter_engine.create () in
  Array.iteri
    (fun i p ->
      match streamable p with
      | Some path -> (
        match Streamq.Filter_engine.subscribe_xpath fe path with
        | Some id -> subscribed := (id, i) :: !subscribed
        | None -> ())
      | None -> ())
    reps;
  (* a lone streamable query gains nothing from an extra document pass *)
  if List.length !subscribed >= 2 then begin
    let matched = Streamq.Filter_engine.match_document fe tree in
    List.iter
      (fun (id, i) ->
        if not (List.mem id matched) then begin
          empty.(i) <- true;
          Obs.Counter.incr c_pruned
        end)
      !subscribed
  end;
  empty

(* ------------------------------------------------------------------ *)

let run_prepared ?pool ?(stream_prefilter = false) ?on_profile tree
    (prepared : Engine.prepared array) =
  Obs.Span.with_ "serve:batch" @@ fun () ->
  let n = Array.length prepared in
  Obs.Counter.add c_requests n;
  (* dedup by canonical form, keeping first-appearance order *)
  let slot_of_canon = Hashtbl.create 16 in
  let rev_reps = ref [] in
  let ndistinct = ref 0 in
  let slot =
    Array.map
      (fun (p : Engine.prepared) ->
        match Hashtbl.find_opt slot_of_canon p.Engine.canon with
        | Some s ->
          Obs.Counter.incr c_shared;
          s
        | None ->
          let s = !ndistinct in
          incr ndistinct;
          Hashtbl.add slot_of_canon p.Engine.canon s;
          rev_reps := p :: !rev_reps;
          s)
      prepared
  in
  let reps = Array.of_list (List.rev !rev_reps) in
  Obs.Span.with_ "serve:seed-scans" (fun () -> prewarm_labels tree reps);
  let pruned_empty =
    if stream_prefilter then
      Obs.Span.with_ "serve:stream-prefilter" (fun () -> stream_prune tree reps)
    else Array.make (Array.length reps) false
  in
  let stream_pruned = Array.fold_left (fun a b -> if b then a + 1 else a) 0 pruned_empty in
  let rep_answers =
    Obs.Span.with_ "serve:execute" @@ fun () ->
    (* in share mode the unit of work is the distinct plan, so the scope
       is per representative: the shared evaluation is attributed once,
       and the per-rep profile counters sum to at most the global
       snapshot (aliased requests ride along for free) *)
    let exec_rep i (p : Engine.prepared) =
      Obs.Scope.collect
        ~attrs:
          [
            ("fingerprint", Obs.Str p.Engine.fp);
            ("strategy", Obs.Str (Engine.strategy_name p.Engine.strategy));
            ("aliased", Obs.Int (n - Array.length reps));
          ]
        (Printf.sprintf "rep-%d" i)
        (fun () ->
          if pruned_empty.(i) then Nodeset.create (Tree.size tree)
          else p.Engine.exec tree)
    in
    match pool with
    | Some pool when Pool.size pool > 1 && Array.length reps > 1 ->
      (* parallel: each rep is one pool task under its own Obs shard;
         shards merge on this domain in rep order once the job drained,
         so counter totals and profile order match the sequential path *)
      let tasks =
        Array.mapi
          (fun i (p : Engine.prepared) () ->
            let sh = Obs.Shard.create () in
            let answer, profile = Obs.Shard.run sh (fun () ->
                let answer, profile = exec_rep i p in
                Obs.Scope.note profile;
                (answer, profile))
            in
            (answer, profile, sh))
          reps
      in
      let results = Pool.run pool tasks in
      Array.mapi
        (fun i (answer, profile, sh) ->
          Obs.Shard.merge sh;
          (match on_profile with Some f -> f reps.(i) profile | None -> ());
          answer)
        results
    | _ ->
      Array.mapi
        (fun i (p : Engine.prepared) ->
          let answer, profile = exec_rep i p in
          Obs.Scope.note profile;
          (match on_profile with Some f -> f p profile | None -> ());
          answer)
        reps
  in
  {
    answers = Array.map (fun s -> rep_answers.(s)) slot;
    distinct = !ndistinct;
    stream_pruned;
  }

let run ?stream_prefilter ?cache tree queries =
  let prepared =
    Obs.Span.with_ "serve:plan" @@ fun () ->
    Array.map
      (fun q ->
        match cache with
        | Some c -> snd (Plan_cache.find c q)
        | None -> Engine.prepare q)
      queries
  in
  run_prepared ?stream_prefilter tree prepared
