(* Weighted-sample quantile digest (GK/CKMS family) and a time-decayed
   EWMA.  See sketch.mli for the exactness and mergeability contract. *)

module Quantile = struct
  type t = {
    capacity : int;
    (* (value, weight) ascending by value; equal values always coalesce,
       so while [List.length tuples <= capacity] the digest is exact *)
    mutable tuples : (float * int) list;
    mutable ntuples : int;
    mutable pending : float list; (* unsorted recent adds *)
    mutable npending : int;
    mutable count : int;
    mutable min_v : float;
    mutable max_v : float;
    mutable sum : float;
  }

  let create ?(capacity = 128) () =
    if capacity < 2 then invalid_arg "Sketch.Quantile.create: capacity must be >= 2";
    {
      capacity;
      tuples = [];
      ntuples = 0;
      pending = [];
      npending = 0;
      count = 0;
      min_v = 0.0;
      max_v = 0.0;
      sum = 0.0;
    }

  (* merge two ascending tuple lists, coalescing equal values (exact) *)
  let rec merge_sorted a b =
    match (a, b) with
    | [], l | l, [] -> l
    | (va, wa) :: ra, (vb, wb) :: rb ->
      if va < vb then (va, wa) :: merge_sorted ra b
      else if vb < va then (vb, wb) :: merge_sorted a rb
      else (va, wa + wb) :: merge_sorted ra rb

  (* shrink to capacity: repeatedly merge the adjacent pair with the
     smallest combined weight (first such pair on ties), keeping the
     heavier member's value (the later one on ties).  Deterministic, so
     merge stays commutative even over capacity; any answer's rank error
     is bounded by the largest weight this creates. *)
  let compact capacity tuples ntuples =
    let arr = Array.of_list tuples in
    let n = ref ntuples in
    while !n > capacity do
      let best = ref 0 and best_w = ref max_int in
      for i = 0 to !n - 2 do
        let w = snd arr.(i) + snd arr.(i + 1) in
        if w < !best_w then begin
          best := i;
          best_w := w
        end
      done;
      let va, wa = arr.(!best) and vb, wb = arr.(!best + 1) in
      arr.(!best) <- ((if wa > wb then va else vb), wa + wb);
      for i = !best + 1 to !n - 2 do
        arr.(i) <- arr.(i + 1)
      done;
      decr n
    done;
    (Array.to_list (Array.sub arr 0 !n), !n)

  let flush t =
    if t.npending > 0 then begin
      let fresh =
        List.sort_uniq compare t.pending
        |> List.map (fun v ->
               (v, List.length (List.filter (fun x -> x = v) t.pending)))
      in
      t.pending <- [];
      t.npending <- 0;
      let merged = merge_sorted t.tuples fresh in
      let n = List.length merged in
      let tuples, n =
        if n > t.capacity then compact t.capacity merged n else (merged, n)
      in
      t.tuples <- tuples;
      t.ntuples <- n
    end

  let add t v =
    if t.count = 0 || v < t.min_v then t.min_v <- v;
    if t.count = 0 || v > t.max_v then t.max_v <- v;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    t.pending <- v :: t.pending;
    t.npending <- t.npending + 1;
    if t.npending >= t.capacity then flush t

  let count t = t.count
  let min_value t = if t.count = 0 then 0.0 else t.min_v
  let max_value t = if t.count = 0 then 0.0 else t.max_v
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let quantile t q =
    if t.count = 0 then 0.0
    else begin
      flush t;
      let target =
        let r = int_of_float (ceil (q *. float_of_int t.count)) in
        if r < 1 then 1 else if r > t.count then t.count else r
      in
      let rec walk cum = function
        | [] -> t.max_v (* unreachable: weights sum to count *)
        | (v, w) :: rest -> if cum + w >= target then v else walk (cum + w) rest
      in
      walk 0 t.tuples
    end

  let tuples t =
    flush t;
    t.tuples

  let merge a b =
    flush a;
    flush b;
    let capacity = max a.capacity b.capacity in
    let merged = merge_sorted a.tuples b.tuples in
    let n = List.length merged in
    let tuples, ntuples =
      if n > capacity then compact capacity merged n else (merged, n)
    in
    {
      capacity;
      tuples;
      ntuples;
      pending = [];
      npending = 0;
      count = a.count + b.count;
      min_v =
        (if a.count = 0 then b.min_v
         else if b.count = 0 then a.min_v
         else Float.min a.min_v b.min_v);
      max_v =
        (if a.count = 0 then b.max_v
         else if b.count = 0 then a.max_v
         else Float.max a.max_v b.max_v);
      sum = a.sum +. b.sum;
    }
end

module Ewma = struct
  type t = {
    half_life : float;
    clock : unit -> float;
    mutable count : int;
    mutable mean : float;
    mutable var : float;
    mutable last : float;
  }

  let create ?(half_life = 30.0) ?(clock = Obs.now) () =
    if half_life <= 0.0 then invalid_arg "Sketch.Ewma.create: half_life must be > 0";
    { half_life; clock; count = 0; mean = 0.0; var = 0.0; last = 0.0 }

  let observe t v =
    let now = t.clock () in
    if t.count = 0 then begin
      t.mean <- v;
      t.var <- 0.0
    end
    else begin
      let dt = Float.max 0.0 (now -. t.last) in
      (* decay weight from elapsed clock time; when the clock is frozen
         (fake clocks, closed loops) fall back to the cumulative-average
         weight 1/(n+1) so samples are never silently dropped *)
      let alpha =
        Float.max
          (1.0 -. (0.5 ** (dt /. t.half_life)))
          (1.0 /. float_of_int (t.count + 1))
      in
      let diff = v -. t.mean in
      let incr = alpha *. diff in
      t.mean <- t.mean +. incr;
      t.var <- (1.0 -. alpha) *. (t.var +. (diff *. incr))
    end;
    t.count <- t.count + 1;
    t.last <- now

  let count t = t.count
  let mean t = t.mean
  let variance t = t.var
  let std t = sqrt t.var
end
