(* Fixed-size ring buffer of recent request profiles.  See
   flight_recorder.mli. *)

type outcome = Served | Shed | Rejected | Violation

let outcome_to_string = function
  | Served -> "served"
  | Shed -> "shed"
  | Rejected -> "rejected"
  | Violation -> "residual-violation"

let outcome_of_string = function
  | "served" -> Some Served
  | "shed" -> Some Shed
  | "rejected" -> Some Rejected
  | "residual-violation" -> Some Violation
  | _ -> None

type entry = {
  id : int;
  fingerprint : string;
  strategy : string;
  attrs : (string * Obs.attr) list;
  counters : (string * int) list;
  latency : float;
  predicted : float;
  observed : float;
  outcome : outcome;
}

type t = {
  ring : entry option array;
  mutable next : int; (* slot the next push lands in *)
  mutable total : int;
  mutable trigger : string option;
  mutable trigger_count : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity must be >= 1";
  { ring = Array.make capacity None; next = 0; total = 0; trigger = None; trigger_count = 0 }

let capacity t = Array.length t.ring

let push t e =
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let length t = min t.total (Array.length t.ring)

let total t = t.total

let entries t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = if t.total <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let trigger t reason =
  if t.trigger = None then t.trigger <- Some reason;
  t.trigger_count <- t.trigger_count + 1

let triggered t = t.trigger
let trigger_count t = t.trigger_count

(* ---- JSON ---- *)

let json_of_attr = function
  | Obs.Int i -> Obs.Json.Num (float_of_int i)
  | Obs.Str s -> Obs.Json.Str s

let json_of_entry e =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Num (float_of_int e.id));
      ("fingerprint", Obs.Json.Str e.fingerprint);
      ("strategy", Obs.Json.Str e.strategy);
      ("attrs", Obs.Json.Obj (List.map (fun (k, v) -> (k, json_of_attr v)) e.attrs));
      ( "counters",
        Obs.Json.Obj
          (List.map (fun (k, v) -> (k, Obs.Json.Num (float_of_int v))) e.counters) );
      ("latency_ms", Obs.Json.Num (e.latency *. 1000.0));
      ("predicted_ops", Obs.Json.Num e.predicted);
      ("observed_ops", Obs.Json.Num e.observed);
      ("outcome", Obs.Json.Str (outcome_to_string e.outcome));
    ]

let to_json t =
  Obs.Json.Obj
    ([
       ("capacity", Obs.Json.Num (float_of_int (capacity t)));
       ("total", Obs.Json.Num (float_of_int t.total));
     ]
    @ (match t.trigger with
      | None -> []
      | Some r ->
        [
          ("trigger", Obs.Json.Str r);
          ("trigger_count", Obs.Json.Num (float_of_int t.trigger_count));
        ])
    @ [ ("entries", Obs.Json.Arr (List.map json_of_entry (entries t))) ])

exception Malformed of string

let attr_of_json = function
  | Obs.Json.Num f -> Obs.Int (int_of_float f)
  | Obs.Json.Str s -> Obs.Str s
  | _ -> raise (Malformed "attr value")

let num key j =
  match Obs.Json.member key j with
  | Some (Obs.Json.Num f) -> f
  | _ -> raise (Malformed ("missing number " ^ key))

let str key j =
  match Obs.Json.member key j with
  | Some (Obs.Json.Str s) -> s
  | _ -> raise (Malformed ("missing string " ^ key))

let entry_of_json j =
  let kvs key of_v =
    match Obs.Json.member key j with
    | Some (Obs.Json.Obj kvs) -> List.map (fun (k, v) -> (k, of_v v)) kvs
    | _ -> raise (Malformed ("missing object " ^ key))
  in
  {
    id = int_of_float (num "id" j);
    fingerprint = str "fingerprint" j;
    strategy = str "strategy" j;
    attrs = kvs "attrs" attr_of_json;
    counters =
      kvs "counters" (function
        | Obs.Json.Num f -> int_of_float f
        | _ -> raise (Malformed "counter value"));
    latency = num "latency_ms" j /. 1000.0;
    predicted = num "predicted_ops" j;
    observed = num "observed_ops" j;
    outcome =
      (match outcome_of_string (str "outcome" j) with
      | Some o -> o
      | None -> raise (Malformed "outcome"));
  }

let of_json j =
  let cap = int_of_float (num "capacity" j) in
  let t = create ~capacity:cap () in
  (match Obs.Json.member "entries" j with
  | Some (Obs.Json.Arr es) -> List.iter (fun e -> push t (entry_of_json e)) es
  | _ -> raise (Malformed "missing entries"));
  (* restore the pushed-ever count and trigger state; [t.next] already
     points at the oldest retained slot after the pushes above *)
  t.total <- int_of_float (num "total" j);
  (match Obs.Json.member "trigger" j with
  | Some (Obs.Json.Str r) ->
    t.trigger <- Some r;
    t.trigger_count <- int_of_float (num "trigger_count" j)
  | _ -> ());
  t
