(** The per-fingerprint cost store: observed work and latency per
    (plan fingerprint × strategy), with a residual tracker comparing
    each request's observed cost against the admission-time
    {!Serve.Server.naive_bound} price.

    This is the online twin of [treequery attest]'s slope gate: attest
    verifies the paper's bounds offline by sweeping input sizes; the
    store watches the same bounds per served request, flagging any
    request whose observed/predicted operation ratio exceeds
    [threshold].  Observed cost is the sum of the request's
    {!Obs.Scope} profile counter deltas — the same elementary-operation
    counters the bounds are claimed against — so with observability
    disabled the gate never fires (observed = 0).

    The adaptive optimizer reads {!ewma_latency} (and {!summaries}) to
    refine the static {!Obs.Bound} priors with live per-shape
    statistics, and reports every routing decision through
    {!record_pick}, so the exposition shows which strategy each
    fingerprint converged on. *)

type t

type summary = {
  fingerprint : string;
  strategy : string;
  served : int;
  p50 : float;  (** latency quantiles, seconds; exact under sketch capacity *)
  p90 : float;
  p95 : float;
  p99 : float;
  max_latency : float;
  mean_latency : float;
  ewma_mean : float;  (** time-decayed latency mean (recent window) *)
  ewma_std : float;
  predicted_total : float;  (** Σ admission bounds, elementary ops *)
  observed_total : float;  (** Σ profile counter deltas *)
  residual : float;  (** observed_total / predicted_total; 0 when unpriced *)
  max_ratio : float;  (** worst single-request observed/predicted *)
  violations : int;  (** requests whose ratio exceeded the threshold *)
  picks : int;  (** optimizer decisions routed to this cell *)
  counters : (string * int) list;  (** cumulative counter deltas, sorted *)
}

val create :
  ?sketch_capacity:int ->
  ?threshold:float ->
  ?half_life:float ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [sketch_capacity] (default 128) sizes each latency sketch;
    [threshold] (default 1.0) is the observed/predicted ratio above
    which a request counts as a residual violation; [half_life]
    (default 30 s) and [clock] (default {!Obs.now}) parameterise the
    EWMA — injectable for deterministic tests. *)

val observe :
  t ->
  fingerprint:string ->
  strategy:string ->
  predicted:float ->
  observed:float ->
  latency:float ->
  counters:(string * int) list ->
  bool
(** Record one served request; [true] iff it is a residual violation
    ([predicted > 0] and [observed /. predicted > threshold]). *)

val threshold : t -> float

val violations : t -> int
(** Total residual violations across all keys. *)

val is_empty : t -> bool

val record_pick : t -> fingerprint:string -> strategy:string -> unit
(** Count one optimizer routing decision against the cell (creating it
    if needed).  Surfaced as [picks] in summaries/JSON and as a
    [serve_fp_picks] series in {!openmetrics}. *)

val ewma_latency : t -> fingerprint:string -> strategy:string -> float option
(** The cell's time-decayed latency mean, in O(1) — [None] until the
    cell has served at least one observation.  The adaptive optimizer
    scores its arms with this, so routing tracks the same online
    estimate the sketches export. *)

val summaries : t -> summary list
(** All keys, sorted by (fingerprint, strategy). *)

val top_by_p99 : ?k:int -> t -> summary list
(** The [k] (default 5) keys with the highest latency p99, descending. *)

val outliers : t -> summary list
(** Keys whose worst observed/predicted ratio exceeds the threshold,
    sorted by [max_ratio] descending. *)

val to_json : t -> Obs.Json.t
(** [{"threshold": τ, "violations": n, "fingerprints": [summary…]}] —
    the per-fingerprint section of [--telemetry-out] and the
    ["telemetry"] member spliced into [--stats-json]. *)

val openmetrics : t -> Obs.Openmetrics.summary list
(** One labelled [serve_fp_latency] summary series per
    (fingerprint × strategy), plus one [serve_fp_picks] count series per
    cell the optimizer routed to, for {!Obs.Openmetrics.render}'s
    [extra]. *)

val to_table : ?k:int -> t -> string
(** The [treequery top]-style end-of-run table: top-[k] (default 5)
    fingerprints by p99 plus residual outliers.  Empty string when no
    requests were recorded. *)
