(* Per-(fingerprint × strategy) cost statistics with residual tracking.
   See cost_store.mli. *)

type cell = {
  fingerprint : string;
  strategy : string;
  latency : Sketch.Quantile.t;
  ewma : Sketch.Ewma.t;
  mutable served : int;
  mutable predicted_total : float;
  mutable observed_total : float;
  mutable max_ratio : float;
  mutable violations : int;
  mutable picks : int; (* optimizer decisions routed to this cell *)
  counters : (string, int) Hashtbl.t; (* cumulative deltas *)
}

type t = {
  sketch_capacity : int;
  threshold : float;
  half_life : float;
  clock : unit -> float;
  cells : (string * string, cell) Hashtbl.t;
  mutable total_violations : int;
}

type summary = {
  fingerprint : string;
  strategy : string;
  served : int;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  max_latency : float;
  mean_latency : float;
  ewma_mean : float;
  ewma_std : float;
  predicted_total : float;
  observed_total : float;
  residual : float;
  max_ratio : float;
  violations : int;
  picks : int;
  counters : (string * int) list;
}

let create ?(sketch_capacity = 128) ?(threshold = 1.0) ?(half_life = 30.0)
    ?(clock = Obs.now) () =
  if threshold <= 0.0 then invalid_arg "Cost_store.create: threshold must be > 0";
  {
    sketch_capacity;
    threshold;
    half_life;
    clock;
    cells = Hashtbl.create 32;
    total_violations = 0;
  }

let cell t ~fingerprint ~strategy =
  let key = (fingerprint, strategy) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c =
      {
        fingerprint;
        strategy;
        latency = Sketch.Quantile.create ~capacity:t.sketch_capacity ();
        ewma = Sketch.Ewma.create ~half_life:t.half_life ~clock:t.clock ();
        served = 0;
        predicted_total = 0.0;
        observed_total = 0.0;
        max_ratio = 0.0;
        violations = 0;
        picks = 0;
        counters = Hashtbl.create 16;
      }
    in
    Hashtbl.add t.cells key c;
    c

let observe t ~fingerprint ~strategy ~predicted ~observed ~latency ~counters =
  let c = cell t ~fingerprint ~strategy in
  c.served <- c.served + 1;
  Sketch.Quantile.add c.latency latency;
  Sketch.Ewma.observe c.ewma latency;
  c.predicted_total <- c.predicted_total +. predicted;
  c.observed_total <- c.observed_total +. observed;
  List.iter
    (fun (k, v) ->
      Hashtbl.replace c.counters k
        (v + Option.value ~default:0 (Hashtbl.find_opt c.counters k)))
    counters;
  let ratio = if predicted > 0.0 then observed /. predicted else 0.0 in
  if ratio > c.max_ratio then c.max_ratio <- ratio;
  let violation = predicted > 0.0 && ratio > t.threshold in
  if violation then begin
    c.violations <- c.violations + 1;
    t.total_violations <- t.total_violations + 1
  end;
  violation

let threshold t = t.threshold
let violations t = t.total_violations
let is_empty t = Hashtbl.length t.cells = 0

(* the adaptive optimizer's telemetry hooks: pick counters per cell
   (surfaced in summaries, JSON and the OpenMetrics exposition) and an
   O(1) read of a cell's latency EWMA so decisions track the same online
   estimate the sketches feed *)
let record_pick t ~fingerprint ~strategy =
  let c = cell t ~fingerprint ~strategy in
  c.picks <- c.picks + 1

let ewma_latency t ~fingerprint ~strategy =
  match Hashtbl.find_opt t.cells (fingerprint, strategy) with
  | Some c when c.served > 0 -> Some (Sketch.Ewma.mean c.ewma)
  | _ -> None

let summary_of_cell (c : cell) : summary =
  let q = Sketch.Quantile.quantile c.latency in
  {
    fingerprint = c.fingerprint;
    strategy = c.strategy;
    served = c.served;
    p50 = q 0.5;
    p90 = q 0.9;
    p95 = q 0.95;
    p99 = q 0.99;
    max_latency = Sketch.Quantile.max_value c.latency;
    mean_latency = Sketch.Quantile.mean c.latency;
    ewma_mean = Sketch.Ewma.mean c.ewma;
    ewma_std = Sketch.Ewma.std c.ewma;
    predicted_total = c.predicted_total;
    observed_total = c.observed_total;
    residual =
      (if c.predicted_total > 0.0 then c.observed_total /. c.predicted_total
       else 0.0);
    max_ratio = c.max_ratio;
    violations = c.violations;
    picks = c.picks;
    counters =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.counters []
      |> List.sort compare;
  }

let summaries t =
  Hashtbl.fold (fun _ c acc -> summary_of_cell c :: acc) t.cells []
  |> List.sort (fun a b -> compare (a.fingerprint, a.strategy) (b.fingerprint, b.strategy))

let top_by_p99 ?(k = 5) t =
  summaries t
  |> List.sort (fun a b -> compare (b.p99, b.served) (a.p99, a.served))
  |> List.filteri (fun i _ -> i < k)

let outliers t =
  summaries t
  |> List.filter (fun s -> s.max_ratio > t.threshold)
  |> List.sort (fun a b -> compare b.max_ratio a.max_ratio)

let json_of_summary (s : summary) =
  Obs.Json.Obj
    [
      ("fingerprint", Obs.Json.Str s.fingerprint);
      ("strategy", Obs.Json.Str s.strategy);
      ("served", Obs.Json.Num (float_of_int s.served));
      ("p50_ms", Obs.Json.Num (s.p50 *. 1000.0));
      ("p90_ms", Obs.Json.Num (s.p90 *. 1000.0));
      ("p95_ms", Obs.Json.Num (s.p95 *. 1000.0));
      ("p99_ms", Obs.Json.Num (s.p99 *. 1000.0));
      ("max_ms", Obs.Json.Num (s.max_latency *. 1000.0));
      ("mean_ms", Obs.Json.Num (s.mean_latency *. 1000.0));
      ("ewma_mean_ms", Obs.Json.Num (s.ewma_mean *. 1000.0));
      ("ewma_std_ms", Obs.Json.Num (s.ewma_std *. 1000.0));
      ("predicted_ops", Obs.Json.Num s.predicted_total);
      ("observed_ops", Obs.Json.Num s.observed_total);
      ("residual", Obs.Json.Num s.residual);
      ("max_ratio", Obs.Json.Num s.max_ratio);
      ("violations", Obs.Json.Num (float_of_int s.violations));
      ("picks", Obs.Json.Num (float_of_int s.picks));
      ( "counters",
        Obs.Json.Obj
          (List.map
             (fun (k, v) -> (k, Obs.Json.Num (float_of_int v)))
             s.counters) );
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("threshold", Obs.Json.Num t.threshold);
      ("violations", Obs.Json.Num (float_of_int t.total_violations));
      ("fingerprints", Obs.Json.Arr (List.map json_of_summary (summaries t)));
    ]

let openmetrics t =
  let latency =
    List.map
      (fun (s : summary) ->
        {
          Obs.Openmetrics.metric = "serve_fp_latency";
          labels = [ ("fingerprint", s.fingerprint); ("strategy", s.strategy) ];
          quantiles =
            [ ("0.5", s.p50); ("0.9", s.p90); ("0.95", s.p95); ("0.99", s.p99) ];
          sum = s.mean_latency *. float_of_int s.served;
          count = s.served;
        })
      (summaries t)
  in
  (* one pick-count series per cell the optimizer actually routed to *)
  let picks =
    List.filter_map
      (fun (s : summary) ->
        if s.picks = 0 then None
        else
          Some
            {
              Obs.Openmetrics.metric = "serve_fp_picks";
              labels =
                [ ("fingerprint", s.fingerprint); ("strategy", s.strategy) ];
              quantiles = [];
              sum = 0.0;
              count = s.picks;
            })
      (summaries t)
  in
  latency @ picks

let to_table ?(k = 5) t =
  if is_empty t then ""
  else begin
    let buf = Buffer.create 512 in
    let pr fmt = Printf.bprintf buf fmt in
    pr "top %d fingerprints by p99 latency:\n" k;
    pr "  %-28s %-18s %6s %9s %9s %9s %8s\n" "fingerprint" "strategy" "served"
      "p50 ms" "p99 ms" "residual" "viol";
    List.iter
      (fun (s : summary) ->
        pr "  %-28s %-18s %6d %9.3f %9.3f %9.3f %8d\n" s.fingerprint s.strategy
          s.served (1e3 *. s.p50) (1e3 *. s.p99) s.residual s.violations)
      (top_by_p99 ~k t);
    (match outliers t with
    | [] -> ()
    | os ->
      pr "residual outliers (observed/predicted > %.2f):\n" t.threshold;
      List.iter
        (fun (s : summary) ->
          pr "  %-28s %-18s worst ratio %.3f over %d violations\n" s.fingerprint
            s.strategy s.max_ratio s.violations)
        os);
    Buffer.contents buf
  end
