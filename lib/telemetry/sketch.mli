(** Streaming statistics for the serving layer's per-fingerprint cost
    store: a mergeable quantile sketch and a time-decayed EWMA, both
    allocation-light and (for the EWMA) injectable-clock like
    {!Serve.Plan_cache}.

    The quantile sketch is a weighted-sample digest in the GK/CKMS
    family: it keeps at most [capacity] (value, weight) tuples sorted by
    value.  While the number of distinct stored tuples is within
    capacity the sketch is {e exact} — [quantile t q] equals the exact
    rank-[⌈q·n⌉] order statistic of everything observed — which is what
    the [sketch-quantile] differential oracle checks.  Beyond capacity,
    adjacent tuples are merged greedily (smallest combined weight first,
    deterministically), so the rank error of any answer is bounded by
    the largest merged tuple weight over the total count.  Merging two
    sketches concatenates their tuples and re-compacts: the operation is
    commutative, and associative whenever the combined sketch stays
    within capacity (tested by [test_telemetry]). *)

module Quantile : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 128) bounds the stored tuples; must be ≥ 2. *)

  val add : t -> float -> unit
  (** Observe one sample. *)

  val count : t -> int
  (** Samples observed (including merged-in ones). *)

  val quantile : t -> float -> float
  (** [quantile t q] for q ∈ [0, 1]: the value whose cumulative weight
      first reaches rank ⌈q·count⌉ (clamped to [1, count]); 0 when
      empty.  Exact while the sketch is under capacity. *)

  val min_value : t -> float
  (** Exact; 0 when empty. *)

  val max_value : t -> float
  (** Exact; 0 when empty. *)

  val sum : t -> float
  (** Exact running sum of all samples. *)

  val mean : t -> float

  val merge : t -> t -> t
  (** A fresh sketch over both inputs (inputs unchanged); capacity is
      the larger of the two.  Commutative; exact (hence associative)
      while the union fits in capacity. *)

  val tuples : t -> (float * int) list
  (** The stored (value, weight) tuples, ascending — for tests and
      debugging. *)
end

(** Exponentially-weighted moving average of mean and variance with a
    configurable half-life in {e clock} seconds: a sample observed one
    half-life after the previous one moves the mean halfway to it.  The
    clock is injectable (default {!Obs.now}) so tests are
    deterministic. *)
module Ewma : sig
  type t

  val create : ?half_life:float -> ?clock:(unit -> float) -> unit -> t
  (** [half_life] (default 30 s) must be > 0. *)

  val observe : t -> float -> unit

  val count : t -> int

  val mean : t -> float
  (** 0 when no samples yet. *)

  val variance : t -> float

  val std : t -> float
end
