(** Crash-grade flight recorder: a fixed-size ring buffer of the most
    recent request profiles, dumped to JSON when something goes wrong
    (shed, degrade, residual violation) or on demand — so post-hoc
    debugging of a bad serving window needs no re-run.

    Pushing is O(1) into a pre-sized circular array; once the buffer
    wraps, exactly the last [capacity] entries are retained (tested in
    [test_telemetry]).  The recorder itself never writes a file: it
    remembers the first trigger reason, and the driver decides at end of
    run whether {!triggered} warrants dumping {!to_json}. *)

type outcome = Served | Shed | Rejected | Violation

val outcome_to_string : outcome -> string
(** ["served"] / ["shed"] / ["rejected"] / ["residual-violation"] *)

type entry = {
  id : int;  (** request id; -1 for batch representatives *)
  fingerprint : string;  (** "" when the request was shed before planning *)
  strategy : string;
  attrs : (string * Obs.attr) list;
  counters : (string * int) list;  (** the request's profile counter deltas *)
  latency : float;  (** seconds *)
  predicted : float;  (** admission bound, elementary ops; 0 when unpriced *)
  observed : float;  (** Σ profile counter deltas *)
  outcome : outcome;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) must be ≥ 1. *)

val capacity : t -> int

val push : t -> entry -> unit

val length : t -> int
(** Entries currently retained (≤ capacity). *)

val total : t -> int
(** Entries ever pushed. *)

val entries : t -> entry list
(** Oldest-first; the last [capacity] pushes. *)

val trigger : t -> string -> unit
(** Note a dump-worthy event.  The first reason is kept (with a count of
    all subsequent ones) so the dump names what went wrong first. *)

val triggered : t -> string option
(** The first trigger reason, if any. *)

val trigger_count : t -> int

val to_json : t -> Obs.Json.t

exception Malformed of string

val of_json : Obs.Json.t -> t
(** Inverse of {!to_json} — [entries], [capacity], [total] and the
    trigger state round-trip exactly. @raise Malformed *)
