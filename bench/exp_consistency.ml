(* Experiments F5, F6, P610, T51 — the arc-consistency / X-property and
   rewriting artifacts of Sections 5 and 6. *)
open Treekit
open Bench_util
module Q = Cqtree.Query

(* ------------------------------------------------------------------ *)
(* Figure 5 / Proposition 6.6 / Theorem 6.8 *)

let figure5 () =
  header "Figure 5 — the X-property: axis/order matrix (Prop. 6.6 + dichotomy frontier)";
  let trees =
    List.map
      (fun seed -> Generator.random ~seed ~n:12 ~labels:Generator.labels_abc ())
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  let holds axis kind = List.for_all (fun t -> Actree.Xproperty.check t axis kind) trees in
  let axes =
    [
      Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Next_sibling;
      Axis.Following_sibling; Axis.Following_sibling_or_self; Axis.Following;
    ]
  in
  row "%-28s %6s %6s %6s\n" "axis" "<pre" "<post" "<bflr";
  let all_ok = ref true in
  List.iter
    (fun a ->
      row "%-28s" (Axis.name a);
      List.iter
        (fun k ->
          let measured = holds a k in
          let predicted = List.mem (a, k) Actree.Xproperty.proposition_66 in
          (* Prop 6.6 lists where it provably holds; elsewhere it must fail
             on some tree in our sample (the paper: 6.6 is exhaustive) *)
          if measured <> predicted then all_ok := false;
          row " %6s" (if measured then "X" else "-"))
        Order.all_kinds;
      row "\n")
    axes;
  record "X-property matrix = Proposition 6.6 exactly" !all_ok;

  subheader "Theorem 6.5: evaluation through the X-property";
  row "%10s %22s %20s\n" "n" "arc-consistency(ms)" "naive backtrack(ms)";
  (* a cyclic query over tau1 — out of reach for Yannakakis, polynomial via
     the X-property *)
  let q =
    Q.of_string
      {| q :- lab(X, "a"), lab(Y, "b"), lab(Z, "c"),
             descendant(X, Y), descendant(Y, Z), descendant(X, Z). |}
  in
  let agreement = ref true in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:(n + 3) ~n ~labels:Generator.labels_abc () in
      let t_ac = time (fun () -> Actree.Xeval.boolean q t) in
      let t_naive = time (fun () -> Cqtree.Naive.boolean q t) in
      (match Actree.Xeval.boolean q t with
      | Some b -> if b <> Cqtree.Naive.boolean q t then agreement := false
      | None -> agreement := false);
      row "%10d %22.3f %20.3f\n" n (ms t_ac) (ms t_naive))
    [ 500; 1_000; 2_000; 4_000 ];
  record "Theorem 6.5 evaluation agrees with naive on a cyclic tau1 query" !agreement

(* ------------------------------------------------------------------ *)
(* Figure 6 / Propositions 6.9, 6.10 *)

let figure6 () =
  header "Figure 6 — backtracking-free enumeration from the AC pre-valuation";
  let q =
    Q.of_string
      {| q(X, Y, Z) :- lab(X, "site"), descendant(X, Y), lab(Y, "item"),
                       descendant(Y, Z), lab(Z, "name"). |}
  in
  row "query: %s\n" (Q.to_string q);
  row "%8s %10s %14s %14s %18s\n" "scale" "|output|" "fig6(ms)" "yann(ms)" "naive backtrack(ms)";
  let consistent = ref true in
  List.iter
    (fun scale ->
      let t = Generator.xmark ~seed:scale ~scale () in
      let fig6 () =
        match Actree.Enumerate.solutions q t with Some s -> s | None -> []
      in
      let t_fig6 = time fig6 in
      let t_yann = time (fun () -> Cqtree.Yannakakis.solutions q t) in
      let t_naive = time (fun () -> Cqtree.Naive.solutions q t) in
      let out = fig6 () in
      if out <> Cqtree.Naive.solutions q t then consistent := false;
      row "%8d %10d %14.3f %14.3f %18.3f\n" scale (List.length out) (ms t_fig6)
        (ms t_yann) (ms t_naive))
    [ 2; 4; 8; 16 ];
  record "Figure 6 enumeration = naive backtracking answers" !consistent;

  subheader "Prop 6.10: holistic path join (PathStack)";
  let specs =
    [ (Some "site", Actree.Twigjoin.Descendant_edge);
      (Some "item", Actree.Twigjoin.Descendant_edge);
      (Some "mail", Actree.Twigjoin.Descendant_edge) ]
  in
  row "%8s %10s %16s %14s\n" "scale" "|output|" "pathstack(ms)" "yann(ms)";
  let ok = ref true in
  List.iter
    (fun scale ->
      let t = Generator.xmark ~seed:scale ~scale () in
      let t_ps = time (fun () -> Actree.Twigjoin.path_stack t specs) in
      let twig = Actree.Twigjoin.path specs in
      let q = Actree.Twigjoin.to_query twig in
      let t_y = time (fun () -> Cqtree.Yannakakis.solutions q t) in
      let out = Actree.Twigjoin.path_stack t specs in
      if out <> Cqtree.Yannakakis.solutions q t then ok := false;
      row "%8d %10d %16.3f %14.3f\n" scale (List.length out) (ms t_ps) (ms t_y))
    [ 4; 8; 16; 32 ];
  record "PathStack = Yannakakis on //site//item//mail" !ok

(* ------------------------------------------------------------------ *)
(* Theorem 5.1 *)

let thm51 () =
  header "Theorem 5.1 — rewriting conjunctive queries into unions of acyclic queries";
  row "%28s %10s %10s %16s\n" "query family (k shared anc.)" "branches" "queries" "all acyclic?";
  let all_acyclic = ref true in
  List.iter
    (fun k ->
      (* k variables all ancestors of one target — the shared-target shape
         that drives the case analysis *)
      let atoms =
        Q.U (Q.Lab "a", "T")
        :: List.init k (fun i ->
               Q.A (Axis.Descendant, Printf.sprintf "X%d" i, "T"))
      in
      let q = { Q.head = [ "T" ]; atoms } in
      let r = Cqtree.Rewrite.rewrite q in
      let acyclic = List.for_all Cqtree.Join_tree.is_acyclic r.queries in
      if not acyclic then all_acyclic := false;
      row "%28d %10d %10d %16b\n" k r.branches_explored (List.length r.queries) acyclic)
    [ 1; 2; 3; 4; 5 ];
  record "Theorem 5.1 outputs are acyclic" !all_acyclic;

  subheader "rewritten queries evaluate linearly in the data";
  let q =
    Q.of_string
      {| q(Z) :- lab(X, "a"), lab(Y, "b"), descendant(X, Z), descendant(Y, Z). |}
  in
  row "query: %s\n" (Q.to_string q);
  row "%10s %14s %18s\n" "n" "rewrite(ms)" "naive(ms)";
  let series = ref [] in
  let agree = ref true in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:n ~n ~labels:Generator.labels_abc () in
      let t_rw = time (fun () -> Cqtree.Rewrite.unary q t) in
      (if n <= 1_000 then
         let a = Cqtree.Rewrite.unary q t and b = Cqtree.Naive.unary q t in
         if not (Nodeset.equal a b) then agree := false);
      let t_naive =
        if n <= 1_000 then ms (time (fun () -> Cqtree.Naive.unary q t)) else nan
      in
      series := (n, t_rw) :: !series;
      row "%10d %14.3f %18.3f\n" n (ms t_rw) t_naive)
    [ 500; 1_000; 2_000; 4_000; 8_000 ];
  let e = fitted_exponent !series in
  row "fitted data-complexity exponent after rewriting: %.2f (theory: ~1)\n" e;
  record "rewrite+Yannakakis agrees with naive" !agree;
  record "rewrite+Yannakakis data complexity ~linear (exponent < 1.5)" (e < 1.5);

  subheader "forward XPath from the rewriting (Section 5)";
  let r = Cqtree.Rewrite.rewrite q in
  let ok = ref true in
  List.iteri
    (fun i q' ->
      match Xpath.Of_cq.forward_xpath q' with
      | Some p ->
        if not (Xpath.Ast.is_forward p) then ok := false;
        if i < 3 then row "  branch %d: %s\n" i (Xpath.Ast.to_string p)
      | None -> ok := false)
    r.queries;
  row "  (%d branches total)\n" (List.length r.queries);
  record "every rewritten branch converts to forward XPath" !ok

let thm41 () =
  header "Theorem 4.1 — bounded tree-width evaluation: O(n^(k+1)) vs naive n^|vars|";
  (* two triangles sharing an edge: 4 variables, tree-width 2 — the
     decomposition evaluates with n^3 bags while naive search is n^4 *)
  let q =
    Q.of_string
      {| q :- child(X, Y), child(Y, Z), descendant(X, Z),
              child(Y, W), descendant(X, W), lab(W, "c"). |}
  in
  row "query: %s\n" (Q.to_string q);
  row "variables: 4, decomposition width: %d\n" (Cqtree.Bounded_tw.decomposition_width q);
  row "(the point is the GUARANTEED n^(k+1) bound for a cyclic query,\n";
  row " instance-independent — naive backtracking has no such guarantee)\n";
  row "%8s %18s %12s\n" "n" "tree-decomp(ms)" "answers";
  let agree = ref true in
  let series = ref [] in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:(n + 3) ~n ~labels:Generator.labels_abc () in
      let t_tw = time (fun () -> Cqtree.Bounded_tw.boolean q t) in
      if n <= 100 && Cqtree.Bounded_tw.boolean q t <> Cqtree.Naive.boolean q t then
        agree := false;
      series := (n, t_tw) :: !series;
      row "%8d %18.2f %12b\n" n (ms t_tw) (Cqtree.Bounded_tw.boolean q t))
    [ 50; 100; 200 ];
  let e = fitted_exponent !series in
  row "fitted exponent (decomposition route): %.2f (theory: <= 3 for width 2)\n" e;
  record "Theorem 4.1 evaluation agrees with naive" !agree;
  record "Theorem 4.1 within the n^(k+1) bound (exponent < 3.4)" (e < 3.4)
