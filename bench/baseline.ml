(* A small deterministic "core suite" used for recorded baselines.

   [run_baseline file] measures each experiment's wall time (tracing
   disabled) and its Obs counters (one traced run), then writes a JSON
   snapshot; [check file] re-runs the suite and fails when the
   work-witnessing counters regress versus the recorded expectations.
   All seeds are fixed, so the counters are exact machine-independent
   expectations; only the wall times vary between hosts. *)

module Generator = Treekit.Generator

type experiment = { name : string; run : unit -> unit }

let xpath_on tree query () = ignore (Xpath.Eval.query tree (Xpath.Parser.parse query))

let core_suite () =
  let xmark8 = Generator.xmark ~seed:3 ~scale:8 () in
  let xmark_big = Generator.xmark ~seed:3 ~scale:2048 () in
  let xmark64 = Generator.xmark ~seed:3 ~scale:64 () in
  let t4k = Generator.random ~seed:4017 ~n:4_000 ~labels:Generator.labels_abc () in
  let t2k = Generator.random ~seed:2011 ~n:2_000 ~labels:Generator.labels_abc () in
  let twig_q =
    Cqtree.Query.of_string
      {| q(X, Y) :- lab(X, "item"), descendant(X, Y), lab(Y, "date"). |}
  in
  let datalog_p = Mdatalog.Examples.has_ancestor_labeled "b" in
  let pathstack_specs =
    [ (Some "item", Actree.Twigjoin.Descendant_edge);
      (Some "mail", Actree.Twigjoin.Descendant_edge) ]
  in
  [
    (* the acceptance query: a selective //a[b]-style descendant step *)
    { name = "xpath-selective/xmark8"; run = xpath_on xmark8 "//mail[date]" };
    { name = "xpath-selective/xmark2048"; run = xpath_on xmark_big "//mail[date]" };
    { name = "xpath-dense/random4k";
      run = xpath_on t4k "//a[b and not(descendant::c)]/following-sibling::*" };
    { name = "yannakakis-twig/xmark64";
      run = (fun () -> ignore (Cqtree.Yannakakis.solutions twig_q xmark64)) };
    { name = "structural-join/descendant-view-2k";
      run =
        (let xasr = Relkit.Structural_join.store t2k in
         fun () -> ignore (Relkit.Structural_join.descendant_view xasr)) };
    { name = "twig-pathstack/xmark64";
      run = (fun () -> ignore (Actree.Twigjoin.path_stack xmark64 pathstack_specs)) };
    { name = "datalog-ancestor/random4k";
      run = (fun () -> ignore (Mdatalog.Eval.run datalog_p t4k)) };
    (* the serving layer end to end: 2k closed-loop requests over 100
       shapes, warm-from-scratch cache — plan_cache_miss is exactly the
       number of distinct canonical forms, so canonicalization regressions
       (hash splits) show up as a gated counter increase *)
    { name = "serve-batch/xmark64-2k";
      run =
        (fun () ->
          let rng = Random.State.make [| 11; 0xda7a |] in
          let shapes = Serve.Workload.shapes ~rng ~count:100 in
          let reqs =
            Serve.Workload.requests ~rng ~shapes:100 ~count:2_000
              Serve.Workload.Closed_loop
          in
          let cache = Serve.Plan_cache.create ~capacity:128 () in
          let cfg =
            Serve.Server.config ~cache ~concurrency:250 ~share:true
              ~stream_prefilter:true ()
          in
          ignore (Serve.Server.run cfg xmark64 shapes reqs)) };
  ]

(* wall time with tracing off, then counters from one traced run *)
let measure e =
  let wall = Obs.with_enabled false (fun () -> Bench_util.time e.run) in
  Obs.reset ();
  Obs.with_enabled true e.run;
  let counters = Obs.Counter.snapshot () in
  Obs.reset ();
  (wall, counters)

let json_of_measurement name wall counters =
  Obs.Json.Obj
    [
      ("name", Obs.Json.Str name);
      ("wall_s", Obs.Json.Num wall);
      ( "counters",
        Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Num (float_of_int v))) counters)
      );
    ]

let run_suite () =
  Bench_util.header "Core-suite baseline (fixed seeds)";
  List.map
    (fun e ->
      let wall, counters = measure e in
      Printf.printf "%-40s %10.2f ms  %s\n" e.name (Bench_util.ms wall)
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters));
      json_of_measurement e.name wall counters)
    (core_suite ())

let run_baseline file =
  let entries = run_suite () in
  let json = Obs.Json.Obj [ ("experiments", Obs.Json.Arr entries) ] in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "baseline written to %s\n" file

(* ------------------------------------------------------------------ *)
(* Regression check against a committed baseline. *)

(* only the deterministic work-witnessing counters gate CI; the others are
   printed for information *)
let gating = [ "nodes_visited"; "tuples_materialised"; "plan_cache_miss" ]

let read_json file =
  let ic = open_in_bin file in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Obs.Json.of_string contents

let expectations json =
  (* accept either a bare baseline file or the committed before/after shape,
     in which case the "after" section holds the expectations *)
  let root =
    match Obs.Json.member "after" json with Some a -> a | None -> json
  in
  match Obs.Json.member "experiments" root with
  | Some (Obs.Json.Arr entries) ->
    List.filter_map
      (fun e ->
        match (Obs.Json.member "name" e, Obs.Json.member "counters" e) with
        | Some (Obs.Json.Str name), Some (Obs.Json.Obj counters) ->
          Some
            ( name,
              List.filter_map
                (fun (k, v) ->
                  match v with
                  | Obs.Json.Num f -> Some (k, int_of_float f)
                  | _ -> None)
                counters )
        | _ -> None)
      entries
  | _ -> failwith "baseline file: missing \"experiments\" array"

let check file =
  let expected = expectations (read_json file) in
  let failures = ref [] in
  List.iter
    (fun e ->
      match List.assoc_opt e.name expected with
      | None -> Printf.printf "%-40s (no recorded expectation, skipped)\n" e.name
      | Some exp_counters ->
        let _, counters = measure e in
        List.iter
          (fun key ->
            match (List.assoc_opt key counters, List.assoc_opt key exp_counters) with
            | Some now, Some before when now > before ->
              failures := (e.name, key, before, now) :: !failures;
              Printf.printf "%-40s %s REGRESSED: %d -> %d\n" e.name key before now
            | Some now, Some before ->
              Printf.printf "%-40s %s ok: %d (expected <= %d)\n" e.name key now before
            | _ -> ())
          gating)
    (core_suite ());
  if !failures <> [] then begin
    Printf.printf "baseline check FAILED (%d regressions)\n" (List.length !failures);
    exit 1
  end
  else Printf.printf "baseline check ok\n"
