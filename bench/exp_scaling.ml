(* Experiments F7, P42, S5 and ablations — the complexity map of Section 7
   measured empirically. *)
open Treekit
open Bench_util
module Q = Cqtree.Query

let sizes = [ 2_000; 4_000; 8_000; 16_000 ]

let tree_of n = Generator.random ~seed:(n * 13 + 1) ~n ~labels:Generator.labels_abc ()

(* ------------------------------------------------------------------ *)

let figure7_data_complexity () =
  header "Figure 7 — empirical data complexity per language/engine";
  let experiments =
    [
      ( "monadic datalog (Thm 3.2)",
        "O(n)",
        fun t ->
          ignore (Mdatalog.Eval.run (Mdatalog.Examples.has_ancestor_labeled "b") t) );
      ( "TMNF datalog",
        "O(n)",
        let tm = Mdatalog.Tmnf.of_program (Mdatalog.Examples.has_ancestor_labeled "b") in
        fun t -> ignore (Mdatalog.Eval.run tm t) );
      ( "Core XPath bottom-up",
        "O(n)",
        let p = Xpath.Parser.parse "//a[b and not(descendant::c)]/following-sibling::*" in
        fun t -> ignore (Xpath.Eval.query t p) );
      ( "acyclic CQ, Yannakakis (4.2)",
        "O(n)",
        let q =
          Q.of_string
            {| q(X) :- lab(X, "a"), child(X, Y), lab(Y, "b"), descendant(X, Z), lab(Z, "c"). |}
        in
        fun t -> ignore (Cqtree.Yannakakis.unary q t) );
      ( "cyclic CQ via X-prop (6.5)",
        "O(n)",
        let q =
          Q.of_string
            {| q :- lab(X, "a"), lab(Y, "b"), descendant(X, Y), descendant(Y, Z), descendant(X, Z). |}
        in
        fun t -> ignore (Actree.Xeval.boolean q t) );
      ( "streaming path matcher",
        "O(n)",
        let p = Streamq.Path_pattern.of_string "//a/b//c" in
        fun t -> ignore (Streamq.Path_matcher.select t p) );
      ( "mon. datalog[X] (Sect. 7)",
        "O(n)",
        let p =
          Mdatalog.Axis_datalog.parse
            {| even(X) :- root(X).
               odd(Y) :- even(X), child(X, Y).
               even(Y) :- odd(X), child(X, Y).
               ?- even. |}
        in
        fun t -> ignore (Mdatalog.Axis_datalog.run p t) );
    ]
  in
  row "%-32s %8s" "engine" "bound";
  List.iter (fun n -> row " %9s" (Printf.sprintf "n=%d" n)) sizes;
  row " %9s\n" "exponent";
  let all_linear = ref true in
  List.iter
    (fun (name, bound, run) ->
      let series =
        List.map
          (fun n ->
            let t = tree_of n in
            (n, time (fun () -> run t)))
          sizes
      in
      let e = fitted_exponent series in
      if e > 1.45 then all_linear := false;
      row "%-32s %8s" name bound;
      List.iter (fun (_, t) -> row " %8.2fms" (ms t)) series;
      row " %9.2f\n" e)
    experiments;
  record "all linear-time engines have fitted exponent < 1.45" !all_linear;

  subheader "exponential naive search vs the polynomial techniques";
  (* a Descendant chain of a-labeled variables whose last variable wants a
     label that never occurs: unsatisfiable, so naive backtracking explores
     every partial chain embedding (exponential in k on deep documents)
     while Yannakakis prunes bottom-up in linear time *)
  let deep =
    Generator.random_deep ~seed:4 ~n:250 ~labels:[| "a" |] ~descend_bias:0.7 ()
  in
  let chain k =
    let atoms =
      List.init k (fun i -> Q.U (Q.Lab (if i = k - 1 then "zzz" else "a"),
                                 Printf.sprintf "V%d" i))
      @ List.init (k - 1) (fun i ->
            Q.A (Axis.Descendant, Printf.sprintf "V%d" i, Printf.sprintf "V%d" (i + 1)))
    in
    { Q.head = []; atoms }
  in
  row "(document: deep a-labeled tree, n = %d, height = %d)\n"
    (Tree.size deep) (Tree.height deep);
  row "%6s %26s %18s\n" "k" "naive backtracking(ms)" "yannakakis(ms)";
  List.iter
    (fun k ->
      let q = chain k in
      let t_naive = time (fun () -> Cqtree.Naive.boolean q deep) in
      let t_y = time (fun () -> Cqtree.Yannakakis.boolean q deep) in
      row "%6d %26.3f %18.3f\n" k (ms t_naive) (ms t_y))
    [ 2; 3; 4 ]

let figure7_combined_complexity () =
  subheader "combined complexity: growth in |Q| at fixed n (Core XPath, PTime)";
  let t = tree_of 4_000 in
  row "%8s %14s %16s\n" "|Q|" "bottom-up(ms)" "via datalog(ms)";
  List.iter
    (fun k ->
      let p = Xpath.Generator.star_chain ~length:k in
      let t_eval = time (fun () -> Xpath.Eval.query t p) in
      let t_dl = time (fun () -> Xpath.To_datalog.eval_via_datalog t p) in
      row "%8d %14.3f %16.3f\n" (Xpath.Ast.size p) (ms t_eval) (ms t_dl))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)

let prop42 () =
  header "Prop 4.2 — unary conjunctive Core XPath in O(||A|| * |Q|)";
  let p = Xpath.Parser.parse "descendant::a[child::b]/following-sibling::*[descendant::c]" in
  let cq = Option.get (Xpath.To_cq.to_query p) in
  row "query: %s\n" (Xpath.Ast.to_string p);
  row "%10s %16s %16s %14s\n" "n" "yannakakis(ms)" "bottom-up(ms)" "spec(ms)";
  let agree = ref true in
  let series = ref [] in
  List.iter
    (fun n ->
      let t = tree_of n in
      let t_y = time (fun () -> Cqtree.Yannakakis.unary cq t) in
      let t_e = time (fun () -> Xpath.Eval.query t p) in
      let t_s =
        if n <= 4_000 then ms (time (fun () -> Xpath.Semantics.query t p)) else nan
      in
      if not (Nodeset.equal (Cqtree.Yannakakis.unary cq t) (Xpath.Eval.query t p)) then
        agree := false;
      series := (n, t_y) :: !series;
      row "%10d %16.3f %16.3f %14.3f\n" n (ms t_y) (ms t_e) t_s)
    sizes;
  let e = fitted_exponent !series in
  row "fitted exponent (Yannakakis route): %.2f\n" e;
  record "Prop 4.2: conjunctive XPath via Yannakakis = bottom-up" !agree;
  record "Prop 4.2: linear data complexity (exponent < 1.45)" (e < 1.45)

(* ------------------------------------------------------------------ *)

let naive_blowup () =
  header "Naive spec semantics vs bottom-up algebra (the [33] observation)";
  row "(descendant-or-self chains: rule (P3) re-evaluates the tail path\n";
  row " from every intermediate node, so the literal semantics costs\n";
  row " ~n^k on a k-step chain while the set-at-a-time algebra stays linear)\n";
  let t = Generator.path ~n:400 () in
  row "document: path tree, n = %d\n" (Tree.size t);
  row "%8s %16s %16s\n" "steps" "spec-literal(ms)" "bottom-up(ms)";
  List.iter
    (fun k ->
      let p = Xpath.Generator.star_chain ~length:k in
      let t_naive = time (fun () -> Xpath.Semantics.query t p) in
      let t_fast = time (fun () -> Xpath.Eval.query t p) in
      row "%8d %16.3f %16.3f\n" k (ms t_naive) (ms t_fast))
    [ 1; 2; 3 ];
  let p3 = Xpath.Generator.star_chain ~length:3 in
  let slow = time (fun () -> Xpath.Semantics.query t p3) in
  let fast = time (fun () -> Xpath.Eval.query t p3) in
  record "bottom-up beats spec-literal on star chains (>= 10x)" (fast *. 10.0 < slow)

(* ------------------------------------------------------------------ *)

let stream_memory () =
  header "Streaming memory: O(depth), tight per [40] (Section 7)";
  let p = Streamq.Path_pattern.of_string "//a//b" in
  subheader "fixed size (n = 8191), varying depth";
  row "%10s %10s %14s\n" "depth" "n" "peak frames";
  List.iter
    (fun (mk, label) ->
      let t = mk () in
      let stats = Streamq.Path_matcher.run t p ~on_match:(fun _ -> ()) in
      ignore label;
      row "%10d %10d %14d\n" (Tree.height t + 1) (Tree.size t) stats.peak_depth)
    [
      ((fun () -> Generator.full ~fanout:2 ~depth:12 ()), "binary");
      ((fun () -> Generator.random_deep ~seed:5 ~n:8191 ~labels:Generator.labels_abc ~descend_bias:0.7 ()), "deep-bias");
      ((fun () -> Generator.random_deep ~seed:5 ~n:8191 ~labels:Generator.labels_abc ~descend_bias:0.95 ()), "deeper");
      ((fun () -> Generator.path ~n:8191 ()), "path");
    ];
  subheader "fixed depth (complete binary, depth 9), varying size — peak must not move";
  let peaks =
    List.map
      (fun fanout ->
        let t = Generator.full ~fanout ~depth:9 () in
        let stats = Streamq.Path_matcher.run t p ~on_match:(fun _ -> ()) in
        row "%10d %10d %14d\n" (Tree.height t + 1) (Tree.size t) stats.peak_depth;
        stats.peak_depth)
      [ 2; 3 ]
  in
  record "streaming memory tracks depth, not size"
    (match peaks with [ a; b ] -> a = b | _ -> false);

  subheader "selective dissemination: one pass, many subscriptions";
  let t = Generator.xmark ~seed:7 ~scale:200 () in
  row "document: xmark, n = %d\n" (Tree.size t);
  row "%14s %14s %10s\n" "subscriptions" "time(ms)" "matched";
  List.iter
    (fun k ->
      let eng = Streamq.Filter_engine.create () in
      for i = 0 to k - 1 do
        ignore
          (Streamq.Filter_engine.subscribe eng
             (Streamq.Path_pattern.random ~seed:i ~length:(1 + (i mod 3))
                ~labels:
                  [| "site"; "item"; "person"; "mail"; "name"; "bidder"; "zzz" |]
                ()))
      done;
      let t_match = time (fun () -> Streamq.Filter_engine.match_document eng t) in
      let matched = List.length (Streamq.Filter_engine.match_document eng t) in
      row "%14d %14.2f %10d\n" k (ms t_match) matched)
    [ 10; 100; 1000 ]

(* ------------------------------------------------------------------ *)

let ablation_ac () =
  header "Ablation — Prop 6.2 Horn-SAT reduction vs direct worklist AC";
  row "(the Horn program materialises every R(v,w) pair: ||A||*|Q| with\n";
  row " transitive axes is quadratic in n; the worklist engine uses O(n)\n";
  row " axis images instead — same fixpoint, tested equal)\n";
  let q =
    Q.of_string {| q(X) :- lab(X, "a"), descendant(X, Y), lab(Y, "b"). |}
  in
  row "%8s %16s %18s %20s\n" "n" "direct(ms)" "hornsat(ms)" "horn program size";
  List.iter
    (fun n ->
      let t = tree_of n in
      let t_direct = time (fun () -> Actree.Arc_consistency.direct q t) in
      let t_horn = time (fun () -> Actree.Arc_consistency.via_hornsat q t) in
      let size = Actree.Arc_consistency.hornsat_program_size q t in
      row "%8d %16.3f %18.3f %20d\n" n (ms t_direct) (ms t_horn) size)
    [ 250; 500; 1_000; 2_000 ];
  let t = tree_of 500 in
  record "Horn-SAT and worklist AC agree"
    (match Actree.Arc_consistency.(direct q t, via_hornsat q t) with
    | None, None -> true
    | Some a, Some b -> Actree.Prevaluation.equal a b
    | _ -> false)

let ablation_twig () =
  header "Ablation — twig joins vs generic engines on XMark twigs";
  let twig =
    {
      Actree.Twigjoin.label = Some "person";
      children =
        [
          (Actree.Twigjoin.Child_edge, { label = Some "name"; children = [] });
          ( Actree.Twigjoin.Descendant_edge,
            { label = Some "emailaddress"; children = [] } );
        ];
    }
  in
  let q = Actree.Twigjoin.to_query twig in
  row "twig: person[/name][//emailaddress]\n";
  row "%8s %10s %14s %12s %12s\n" "scale" "|out|" "twigstack(ms)" "yann(ms)" "fig6(ms)";
  let ok = ref true in
  List.iter
    (fun scale ->
      let t = Generator.xmark ~seed:scale ~scale () in
      let t_tw = time (fun () -> Actree.Twigjoin.solutions t twig) in
      let t_y = time (fun () -> Cqtree.Yannakakis.solutions q t) in
      let t_f6 = time (fun () -> Actree.Enumerate.solutions q t) in
      let out = Actree.Twigjoin.solutions t twig in
      if out <> Cqtree.Yannakakis.solutions q t then ok := false;
      row "%8d %10d %14.3f %12.3f %12.3f\n" scale (List.length out) (ms t_tw)
        (ms t_y) (ms t_f6))
    [ 8; 16; 32 ];
  record "twig join = Yannakakis on XMark twig" !ok
