(* Timing, curve fitting and table printing shared by all experiments. *)

let time_once f =
  let t0 = Sys.time () in
  let r = f () in
  let t1 = Sys.time () in
  (t1 -. t0, r)

(* median-of-repeats cpu time in seconds; slow operations (>100ms) are
   measured once, fast ones repeat until ~20ms total *)
let time ?(min_total = 0.02) f =
  let first, _ = time_once f in
  if first > 0.1 then first
  else begin
    let samples = ref [ first ] in
    let total = ref first in
    let runs = ref 1 in
    while !total < min_total || !runs < 3 do
      let dt, _ = time_once f in
      samples := dt :: !samples;
      total := !total +. dt;
      incr runs
    done;
    let sorted = List.sort compare !samples in
    List.nth sorted (List.length sorted / 2)
  end

let ms t = t *. 1000.0

(* least-squares slope of log t against log n — the empirical complexity
   exponent of a (n, t) series *)
let fitted_exponent series =
  let pts =
    List.filter_map
      (fun (n, t) ->
        if t > 0.0 then Some (log (float_of_int n), log t) else None)
      series
  in
  match pts with
  | [] | [ _ ] -> nan
  | _ ->
    let k = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    ((k *. sxy) -. (sx *. sy)) /. ((k *. sxx) -. (sx *. sx))

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

let verdict name ok =
  Printf.printf "[%s] %s\n" (if ok then "MATCH" else "MISMATCH") name

(* global tally so the harness can end with a summary *)
let checks : (string * bool) list ref = ref []

let record name ok =
  checks := (name, ok) :: !checks;
  verdict name ok

(* one machine-greppable line per experiment with the nonzero Obs
   counters recorded while it ran *)
let obs_snapshot name =
  match Obs.Counter.snapshot () with
  | [] -> ()
  | counters ->
    let report = { Obs.Report.empty with counters } in
    Printf.printf "obs-snapshot %s %s\n" name (Obs.Report.to_json report)

let summary () =
  let total = List.length !checks in
  let bad = List.filter (fun (_, ok) -> not ok) !checks in
  Printf.printf "\n%s\n" (String.make 66 '=');
  Printf.printf "Reproduction summary: %d/%d checks match the paper.\n"
    (total - List.length bad) total;
  List.iter (fun (name, _) -> Printf.printf "  MISMATCH: %s\n" name) bad
