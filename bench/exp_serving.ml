(* Serving-layer experiment (PR 4, extended by PR 6): plan cache +
   batch executor + online telemetry.

   10k requests drawn from 100 distinct query shapes against one
   xmark-2048 document, three ways:

     cold      one request at a time, parse + plan + evaluate from
               scratch every time (what a naive server would do);
     warm      batch mode through the serving layer: plans come from a
               warm LRU cache keyed by canonical form, each in-flight
               group of requests shares plan dedup, grouped label seed
               scans and one stream-prefilter pass;
     telemetry the warm configuration plus the PR 6 cost store and
               flight recorder (per-fingerprint latency sketches, EWMA,
               residual tracking, ring-buffer entries).

   The recorded acceptance: warm batch throughput >= 3x cold with
   plan_cache_hit >= 9,900 of the 10,000 lookups, and telemetry
   bookkeeping adds < 3% to warm wall time (min-of-2 runs each). *)

module Engine = Treequery.Engine

let requests_total = 10_000
let shape_count = 100
let concurrency = 500

let workload () =
  let tree = Treekit.Generator.xmark ~seed:3 ~scale:2048 () in
  let rng = Random.State.make [| 7; 0xda7a |] in
  let shapes = Serve.Workload.shapes ~rng ~count:shape_count in
  let reqs =
    Serve.Workload.requests ~rng ~shapes:shape_count ~count:requests_total
      Serve.Workload.Closed_loop
  in
  (tree, shapes, reqs)

(* what a naive server does per request: parse, plan, evaluate *)
let cold_run tree (shapes : Serve.Workload.shape array) reqs () =
  let reparse (s : Serve.Workload.shape) =
    match s.query with
    | Engine.Cq_query _ -> Engine.parse_cq s.source
    | _ -> Engine.parse_xpath s.source
  in
  List.iter
    (fun (r : Serve.Workload.request) ->
      ignore (Engine.eval (reparse shapes.(r.shape)) tree))
    reqs

let summary_json (l : Obs.histogram_summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Num (float_of_int l.Obs.count));
      ("p50_s", Obs.Json.Num l.Obs.p50);
      ("p95_s", Obs.Json.Num l.Obs.p95);
      ("p99_s", Obs.Json.Num l.Obs.p99);
      ("max_s", Obs.Json.Num l.Obs.max);
    ]

(* runs the comparison, records the acceptance checks, returns the JSON
   fragment for BENCH_pr4.json *)
let run_core () =
  Bench_util.header "Serving layer: cold one-at-a-time vs warm batch (xmark2048)";
  let tree, shapes, reqs = workload () in
  Printf.printf "document: %d nodes; %d requests over %d shapes\n"
    (Treekit.Tree.size tree) requests_total shape_count;
  let wall_cold, () = Bench_util.time_once (cold_run tree shapes reqs) in
  let cold_rps = float_of_int requests_total /. wall_cold in
  Printf.printf "cold  one-at-a-time   %8.3f s  %9.0f req/s\n" wall_cold cold_rps;
  let cache = Serve.Plan_cache.create ~capacity:128 () in
  (* warm the cache over the distinct shapes, then measure *)
  Array.iter
    (fun (s : Serve.Workload.shape) -> ignore (Serve.Plan_cache.find cache s.query))
    shapes;
  Obs.Counter.reset_all ();
  let cfg = Serve.Server.config ~cache ~concurrency ~share:true () in
  let wall_warm, stats =
    Bench_util.time_once (fun () -> Serve.Server.run cfg tree shapes reqs)
  in
  let warm_rps = float_of_int requests_total /. wall_warm in
  Printf.printf "warm  batch(%d)+cache %8.3f s  %9.0f req/s\n" concurrency
    wall_warm warm_rps;
  let speedup = wall_cold /. wall_warm in
  let hits =
    (Serve.Plan_cache.stats cache).Serve.Plan_cache.hits
  in
  Printf.printf "speedup %.2fx; plan-cache hits %d/%d; %d distinct evaluations, %d stream-pruned\n"
    speedup hits requests_total stats.Serve.Server.distinct_evaluated
    stats.Serve.Server.stream_pruned;
  Bench_util.record "serving: warm batch >= 3x cold throughput" (speedup >= 3.0);
  Bench_util.record "serving: plan_cache_hit >= 9900"
    (hits >= 9_900 && stats.Serve.Server.served = requests_total);
  Bench_util.record "serving: zero errors" (stats.Serve.Server.errors = 0);
  (* telemetry overhead: the same warm configuration with the PR 6 cost
     store + flight recorder attached, min-of-2 runs on each side so a
     single scheduler hiccup cannot decide the check *)
  let min_of_2 f =
    let w1, r = Bench_util.time_once f in
    let w2, _ = Bench_util.time_once f in
    (Float.min w1 w2, r)
  in
  let plain () =
    Obs.Counter.reset_all ();
    Serve.Server.run cfg tree shapes reqs
  in
  let wall_plain, _ = min_of_2 plain in
  let store = Telemetry.Cost_store.create () in
  let recorder = Telemetry.Flight_recorder.create () in
  let cfg_tel =
    Serve.Server.config ~cache ~concurrency ~share:true ~telemetry:store
      ~recorder ()
  in
  let tel () =
    Obs.Counter.reset_all ();
    Serve.Server.run cfg_tel tree shapes reqs
  in
  let wall_tel, stats_tel = min_of_2 tel in
  let tel_rps = float_of_int requests_total /. wall_tel in
  let overhead = (wall_tel -. wall_plain) /. wall_plain in
  let nkeys = List.length (Telemetry.Cost_store.summaries store) in
  Printf.printf
    "telemetry on        %8.3f s  %9.0f req/s  (%+.2f%% vs %0.3f s plain; %d \
     fingerprint keys, %d residual violations)\n"
    wall_tel tel_rps (overhead *. 100.0) wall_plain nkeys
    stats_tel.Serve.Server.residual_violations;
  Bench_util.record "serving: telemetry overhead < 3%" (overhead < 0.03);
  Bench_util.record "serving: telemetry served in full"
    (nkeys > 0 && stats_tel.Serve.Server.served = requests_total);
  Obs.Json.Obj
    [
      ("tree_nodes", Obs.Json.Num (float_of_int (Treekit.Tree.size tree)));
      ("requests", Obs.Json.Num (float_of_int requests_total));
      ("shapes", Obs.Json.Num (float_of_int shape_count));
      ("concurrency", Obs.Json.Num (float_of_int concurrency));
      ( "cold",
        Obs.Json.Obj
          [
            ("wall_s", Obs.Json.Num wall_cold);
            ("throughput_rps", Obs.Json.Num cold_rps);
          ] );
      ( "warm_batch",
        Obs.Json.Obj
          [
            ("wall_s", Obs.Json.Num wall_warm);
            ("throughput_rps", Obs.Json.Num warm_rps);
            ("plan_cache_hit", Obs.Json.Num (float_of_int hits));
            ( "plan_cache_miss",
              Obs.Json.Num
                (float_of_int (Serve.Plan_cache.stats cache).Serve.Plan_cache.misses)
            );
            ( "distinct_evaluated",
              Obs.Json.Num (float_of_int stats.Serve.Server.distinct_evaluated) );
            ( "stream_pruned",
              Obs.Json.Num (float_of_int stats.Serve.Server.stream_pruned) );
            ("latency", summary_json stats.Serve.Server.latency);
          ] );
      ("speedup", Obs.Json.Num speedup);
      ( "telemetry",
        Obs.Json.Obj
          [
            ("wall_plain_s", Obs.Json.Num wall_plain);
            ("wall_s", Obs.Json.Num wall_tel);
            ("throughput_rps", Obs.Json.Num tel_rps);
            ("overhead_frac", Obs.Json.Num overhead);
            ("fingerprint_keys", Obs.Json.Num (float_of_int nkeys));
            ( "residual_violations",
              Obs.Json.Num
                (float_of_int stats_tel.Serve.Server.residual_violations) );
            ( "flight_entries",
              Obs.Json.Num
                (float_of_int (Telemetry.Flight_recorder.total recorder)) );
          ] );
    ]

let serving () = ignore (run_core ())

(* ------------------------------------------------------------------ *)
(* PR 7: parallel wall-clock serving.  The same xmark-2048 document,
   closed-loop requests from the seed-split stream (identical for every
   domain count), served chunk-by-chunk with the per-chunk evaluations
   executed on a work-stealing domain pool.  The acceptance gate —
   4-domain throughput >= 2.5x the 1-domain wall-clock baseline — only
   makes sense when the host actually exposes >= 4 cores; on smaller
   machines the measured ratio is still recorded in BENCH_pr7.json with
   an explicit skip marker, and the answers-match check always runs. *)

let pr7_requests = 4_000
let pr7_domains = 4
let pr7_concurrency = 64
let pr7_required_speedup = 2.5

let run_pr7 () =
  Bench_util.header
    (Printf.sprintf
       "Parallel serving: 1 domain vs %d domains, wall clock (xmark2048)"
       pr7_domains);
  let tree = Treekit.Generator.xmark ~seed:3 ~scale:2048 () in
  Treekit.Tree.seal tree;
  let rng = Random.State.make [| 7; 0xda7a |] in
  let shapes = Serve.Workload.shapes ~rng ~count:shape_count in
  let reqs =
    Serve.Workload.requests_split ~seed:7 ~shapes:shape_count
      ~count:pr7_requests Serve.Workload.Closed_loop
  in
  Printf.printf "document: %d nodes; %d requests over %d shapes, chunks of %d\n"
    (Treekit.Tree.size tree) pr7_requests shape_count pr7_concurrency;
  let cache = Serve.Plan_cache.create ~capacity:128 () in
  Array.iter
    (fun (s : Serve.Workload.shape) -> ignore (Serve.Plan_cache.find cache s.query))
    shapes;
  let min_of_2 f =
    let w1, r = Bench_util.time_once f in
    let w2, _ = Bench_util.time_once f in
    (Float.min w1 w2, r)
  in
  let measure ?pool () =
    let cfg =
      Serve.Server.config ~cache ~concurrency:pr7_concurrency ~wall_clock:true
        ?pool ()
    in
    min_of_2 (fun () ->
        Obs.Counter.reset_all ();
        Serve.Server.run cfg tree shapes reqs)
  in
  let wall1, s1 = measure () in
  Printf.printf "1 domain    %8.3f s  %9.0f req/s\n" wall1
    (float_of_int pr7_requests /. wall1);
  let pool = Serve.Pool.create ~domains:pr7_domains () in
  let wall4, s4 =
    Fun.protect
      ~finally:(fun () -> Serve.Pool.shutdown pool)
      (fun () -> measure ~pool ())
  in
  let ratio = wall1 /. wall4 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "%d domains   %8.3f s  %9.0f req/s  (%.2fx; host has %d core%s)\n"
    pr7_domains wall4
    (float_of_int pr7_requests /. wall4)
    ratio cores
    (if cores = 1 then "" else "s");
  Bench_util.record "serving: parallel answers match sequential"
    (s1.Serve.Server.result_nodes = s4.Serve.Server.result_nodes
    && s1.Serve.Server.served = pr7_requests
    && s4.Serve.Server.served = pr7_requests
    && s4.Serve.Server.errors = 0);
  let gate_enforced = cores >= pr7_domains in
  if gate_enforced then
    Bench_util.record
      (Printf.sprintf "serving: %d-domain wall-clock >= %.1fx 1-domain"
         pr7_domains pr7_required_speedup)
      (ratio >= pr7_required_speedup)
  else
    Printf.printf
      "speedup gate skipped: host exposes %d core(s), the %.1fx gate needs >= %d\n"
      cores pr7_required_speedup pr7_domains;
  let side name wall (s : Serve.Server.stats) =
    ( name,
      Obs.Json.Obj
        [
          ("wall_s", Obs.Json.Num wall);
          ( "throughput_rps",
            Obs.Json.Num (float_of_int pr7_requests /. wall) );
          ("served", Obs.Json.Num (float_of_int s.Serve.Server.served));
          ( "result_nodes",
            Obs.Json.Num (float_of_int s.Serve.Server.result_nodes) );
          ("latency", summary_json s.Serve.Server.latency);
        ] )
  in
  Obs.Json.Obj
    [
      ("tree_nodes", Obs.Json.Num (float_of_int (Treekit.Tree.size tree)));
      ("requests", Obs.Json.Num (float_of_int pr7_requests));
      ("shapes", Obs.Json.Num (float_of_int shape_count));
      ("concurrency", Obs.Json.Num (float_of_int pr7_concurrency));
      ("domains", Obs.Json.Num (float_of_int pr7_domains));
      side "domains_1" wall1 s1;
      side (Printf.sprintf "domains_%d" pr7_domains) wall4 s4;
      ("speedup", Obs.Json.Num ratio);
      ("host_cores", Obs.Json.Num (float_of_int cores));
      ( "speedup_gate",
        Obs.Json.Obj
          [
            ("required", Obs.Json.Num pr7_required_speedup);
            ( "status",
              Obs.Json.Str (if gate_enforced then "enforced" else "skipped") );
            ( "reason",
              Obs.Json.Str
                (if gate_enforced then ""
                 else
                   Printf.sprintf "host exposes %d core(s), gate needs >= %d"
                     cores pr7_domains) );
          ] );
    ]

let parallel () = ignore (run_pr7 ())

(* BENCH_pr7.json: the core-suite baseline plus the parallel-serving
   comparison, the same shape `bench --check` accepts *)
let write_pr7_json file =
  let parallel_json = run_pr7 () in
  let baseline_entries = Baseline.run_suite () in
  let json =
    Obs.Json.Obj
      [
        ( "after",
          Obs.Json.Obj [ ("experiments", Obs.Json.Arr baseline_entries) ] );
        ("serving_parallel", parallel_json);
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "parallel serving benchmark written to %s\n" file

(* BENCH_pr4.json: the core-suite baseline ("after", checked in CI by
   `bench --check`) plus the serving comparison above *)
let write_json file =
  let serving_json = run_core () in
  let baseline_entries = Baseline.run_suite () in
  let json =
    Obs.Json.Obj
      [
        ( "after",
          Obs.Json.Obj [ ("experiments", Obs.Json.Arr baseline_entries) ] );
        ("serving", serving_json);
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "serving benchmark written to %s\n" file
