(* Serving-layer experiment (PR 4, extended by PR 6): plan cache +
   batch executor + online telemetry.

   10k requests drawn from 100 distinct query shapes against one
   xmark-2048 document, three ways:

     cold      one request at a time, parse + plan + evaluate from
               scratch every time (what a naive server would do);
     warm      batch mode through the serving layer: plans come from a
               warm LRU cache keyed by canonical form, each in-flight
               group of requests shares plan dedup, grouped label seed
               scans and one stream-prefilter pass;
     telemetry the warm configuration plus the PR 6 cost store and
               flight recorder (per-fingerprint latency sketches, EWMA,
               residual tracking, ring-buffer entries).

   The recorded acceptance: warm batch throughput >= 3x cold with
   plan_cache_hit >= 9,900 of the 10,000 lookups, and telemetry
   bookkeeping adds < 3% to warm wall time (min-of-2 runs each). *)

module Engine = Treequery.Engine

let requests_total = 10_000
let shape_count = 100
let concurrency = 500

let workload () =
  let tree = Treekit.Generator.xmark ~seed:3 ~scale:2048 () in
  let rng = Random.State.make [| 7; 0xda7a |] in
  let shapes = Serve.Workload.shapes ~rng ~count:shape_count in
  let reqs =
    Serve.Workload.requests ~rng ~shapes:shape_count ~count:requests_total
      Serve.Workload.Closed_loop
  in
  (tree, shapes, reqs)

(* what a naive server does per request: parse, plan, evaluate *)
let cold_run tree (shapes : Serve.Workload.shape array) reqs () =
  let reparse (s : Serve.Workload.shape) =
    match s.query with
    | Engine.Cq_query _ -> Engine.parse_cq s.source
    | _ -> Engine.parse_xpath s.source
  in
  List.iter
    (fun (r : Serve.Workload.request) ->
      ignore (Engine.eval (reparse shapes.(r.shape)) tree))
    reqs

let summary_json (l : Obs.histogram_summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Num (float_of_int l.Obs.count));
      ("p50_s", Obs.Json.Num l.Obs.p50);
      ("p95_s", Obs.Json.Num l.Obs.p95);
      ("p99_s", Obs.Json.Num l.Obs.p99);
      ("max_s", Obs.Json.Num l.Obs.max);
    ]

(* runs the comparison, records the acceptance checks, returns the JSON
   fragment for BENCH_pr4.json *)
let run_core () =
  Bench_util.header "Serving layer: cold one-at-a-time vs warm batch (xmark2048)";
  let tree, shapes, reqs = workload () in
  Printf.printf "document: %d nodes; %d requests over %d shapes\n"
    (Treekit.Tree.size tree) requests_total shape_count;
  let wall_cold, () = Bench_util.time_once (cold_run tree shapes reqs) in
  let cold_rps = float_of_int requests_total /. wall_cold in
  Printf.printf "cold  one-at-a-time   %8.3f s  %9.0f req/s\n" wall_cold cold_rps;
  let cache = Serve.Plan_cache.create ~capacity:128 () in
  (* warm the cache over the distinct shapes, then measure *)
  Array.iter
    (fun (s : Serve.Workload.shape) -> ignore (Serve.Plan_cache.find cache s.query))
    shapes;
  Obs.Counter.reset_all ();
  let cfg = Serve.Server.config ~cache ~concurrency ~share:true () in
  let wall_warm, stats =
    Bench_util.time_once (fun () -> Serve.Server.run cfg tree shapes reqs)
  in
  let warm_rps = float_of_int requests_total /. wall_warm in
  Printf.printf "warm  batch(%d)+cache %8.3f s  %9.0f req/s\n" concurrency
    wall_warm warm_rps;
  let speedup = wall_cold /. wall_warm in
  let hits =
    (Serve.Plan_cache.stats cache).Serve.Plan_cache.hits
  in
  Printf.printf "speedup %.2fx; plan-cache hits %d/%d; %d distinct evaluations, %d stream-pruned\n"
    speedup hits requests_total stats.Serve.Server.distinct_evaluated
    stats.Serve.Server.stream_pruned;
  Bench_util.record "serving: warm batch >= 3x cold throughput" (speedup >= 3.0);
  Bench_util.record "serving: plan_cache_hit >= 9900"
    (hits >= 9_900 && stats.Serve.Server.served = requests_total);
  Bench_util.record "serving: zero errors" (stats.Serve.Server.errors = 0);
  (* telemetry overhead: the same warm configuration with the PR 6 cost
     store + flight recorder attached, min-of-2 runs on each side so a
     single scheduler hiccup cannot decide the check *)
  let min_of_2 f =
    let w1, r = Bench_util.time_once f in
    let w2, _ = Bench_util.time_once f in
    (Float.min w1 w2, r)
  in
  let plain () =
    Obs.Counter.reset_all ();
    Serve.Server.run cfg tree shapes reqs
  in
  let wall_plain, _ = min_of_2 plain in
  let store = Telemetry.Cost_store.create () in
  let recorder = Telemetry.Flight_recorder.create () in
  let cfg_tel =
    Serve.Server.config ~cache ~concurrency ~share:true ~telemetry:store
      ~recorder ()
  in
  let tel () =
    Obs.Counter.reset_all ();
    Serve.Server.run cfg_tel tree shapes reqs
  in
  let wall_tel, stats_tel = min_of_2 tel in
  let tel_rps = float_of_int requests_total /. wall_tel in
  let overhead = (wall_tel -. wall_plain) /. wall_plain in
  let nkeys = List.length (Telemetry.Cost_store.summaries store) in
  Printf.printf
    "telemetry on        %8.3f s  %9.0f req/s  (%+.2f%% vs %0.3f s plain; %d \
     fingerprint keys, %d residual violations)\n"
    wall_tel tel_rps (overhead *. 100.0) wall_plain nkeys
    stats_tel.Serve.Server.residual_violations;
  Bench_util.record "serving: telemetry overhead < 3%" (overhead < 0.03);
  Bench_util.record "serving: telemetry served in full"
    (nkeys > 0 && stats_tel.Serve.Server.served = requests_total);
  Obs.Json.Obj
    [
      ("tree_nodes", Obs.Json.Num (float_of_int (Treekit.Tree.size tree)));
      ("requests", Obs.Json.Num (float_of_int requests_total));
      ("shapes", Obs.Json.Num (float_of_int shape_count));
      ("concurrency", Obs.Json.Num (float_of_int concurrency));
      ( "cold",
        Obs.Json.Obj
          [
            ("wall_s", Obs.Json.Num wall_cold);
            ("throughput_rps", Obs.Json.Num cold_rps);
          ] );
      ( "warm_batch",
        Obs.Json.Obj
          [
            ("wall_s", Obs.Json.Num wall_warm);
            ("throughput_rps", Obs.Json.Num warm_rps);
            ("plan_cache_hit", Obs.Json.Num (float_of_int hits));
            ( "plan_cache_miss",
              Obs.Json.Num
                (float_of_int (Serve.Plan_cache.stats cache).Serve.Plan_cache.misses)
            );
            ( "distinct_evaluated",
              Obs.Json.Num (float_of_int stats.Serve.Server.distinct_evaluated) );
            ( "stream_pruned",
              Obs.Json.Num (float_of_int stats.Serve.Server.stream_pruned) );
            ("latency", summary_json stats.Serve.Server.latency);
          ] );
      ("speedup", Obs.Json.Num speedup);
      ( "telemetry",
        Obs.Json.Obj
          [
            ("wall_plain_s", Obs.Json.Num wall_plain);
            ("wall_s", Obs.Json.Num wall_tel);
            ("throughput_rps", Obs.Json.Num tel_rps);
            ("overhead_frac", Obs.Json.Num overhead);
            ("fingerprint_keys", Obs.Json.Num (float_of_int nkeys));
            ( "residual_violations",
              Obs.Json.Num
                (float_of_int stats_tel.Serve.Server.residual_violations) );
            ( "flight_entries",
              Obs.Json.Num
                (float_of_int (Telemetry.Flight_recorder.total recorder)) );
          ] );
    ]

let serving () = ignore (run_core ())

(* ------------------------------------------------------------------ *)
(* PR 7: parallel wall-clock serving.  The same xmark-2048 document,
   closed-loop requests from the seed-split stream (identical for every
   domain count), served chunk-by-chunk with the per-chunk evaluations
   executed on a work-stealing domain pool.  The acceptance gate —
   4-domain throughput >= 2.5x the 1-domain wall-clock baseline — only
   makes sense when the host actually exposes >= 4 cores; on smaller
   machines the measured ratio is still recorded in BENCH_pr7.json with
   an explicit skip marker, and the answers-match check always runs. *)

let pr7_requests = 4_000
let pr7_domains = 4
let pr7_concurrency = 64
let pr7_required_speedup = 2.5

let run_pr7 () =
  Bench_util.header
    (Printf.sprintf
       "Parallel serving: 1 domain vs %d domains, wall clock (xmark2048)"
       pr7_domains);
  let tree = Treekit.Generator.xmark ~seed:3 ~scale:2048 () in
  Treekit.Tree.seal tree;
  let rng = Random.State.make [| 7; 0xda7a |] in
  let shapes = Serve.Workload.shapes ~rng ~count:shape_count in
  let reqs =
    Serve.Workload.requests_split ~seed:7 ~shapes:shape_count
      ~count:pr7_requests Serve.Workload.Closed_loop
  in
  Printf.printf "document: %d nodes; %d requests over %d shapes, chunks of %d\n"
    (Treekit.Tree.size tree) pr7_requests shape_count pr7_concurrency;
  let cache = Serve.Plan_cache.create ~capacity:128 () in
  Array.iter
    (fun (s : Serve.Workload.shape) -> ignore (Serve.Plan_cache.find cache s.query))
    shapes;
  let min_of_2 f =
    let w1, r = Bench_util.time_once f in
    let w2, _ = Bench_util.time_once f in
    (Float.min w1 w2, r)
  in
  let measure ?pool () =
    let cfg =
      Serve.Server.config ~cache ~concurrency:pr7_concurrency ~wall_clock:true
        ?pool ()
    in
    min_of_2 (fun () ->
        Obs.Counter.reset_all ();
        Serve.Server.run cfg tree shapes reqs)
  in
  let wall1, s1 = measure () in
  Printf.printf "1 domain    %8.3f s  %9.0f req/s\n" wall1
    (float_of_int pr7_requests /. wall1);
  let pool = Serve.Pool.create ~domains:pr7_domains () in
  let wall4, s4 =
    Fun.protect
      ~finally:(fun () -> Serve.Pool.shutdown pool)
      (fun () -> measure ~pool ())
  in
  let ratio = wall1 /. wall4 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "%d domains   %8.3f s  %9.0f req/s  (%.2fx; host has %d core%s)\n"
    pr7_domains wall4
    (float_of_int pr7_requests /. wall4)
    ratio cores
    (if cores = 1 then "" else "s");
  Bench_util.record "serving: parallel answers match sequential"
    (s1.Serve.Server.result_nodes = s4.Serve.Server.result_nodes
    && s1.Serve.Server.served = pr7_requests
    && s4.Serve.Server.served = pr7_requests
    && s4.Serve.Server.errors = 0);
  let gate_enforced = cores >= pr7_domains in
  if gate_enforced then
    Bench_util.record
      (Printf.sprintf "serving: %d-domain wall-clock >= %.1fx 1-domain"
         pr7_domains pr7_required_speedup)
      (ratio >= pr7_required_speedup)
  else
    Printf.printf
      "speedup gate skipped: host exposes %d core(s), the %.1fx gate needs >= %d\n"
      cores pr7_required_speedup pr7_domains;
  let side name wall (s : Serve.Server.stats) =
    ( name,
      Obs.Json.Obj
        [
          ("wall_s", Obs.Json.Num wall);
          ( "throughput_rps",
            Obs.Json.Num (float_of_int pr7_requests /. wall) );
          ("served", Obs.Json.Num (float_of_int s.Serve.Server.served));
          ( "result_nodes",
            Obs.Json.Num (float_of_int s.Serve.Server.result_nodes) );
          ("latency", summary_json s.Serve.Server.latency);
        ] )
  in
  Obs.Json.Obj
    [
      ("tree_nodes", Obs.Json.Num (float_of_int (Treekit.Tree.size tree)));
      ("requests", Obs.Json.Num (float_of_int pr7_requests));
      ("shapes", Obs.Json.Num (float_of_int shape_count));
      ("concurrency", Obs.Json.Num (float_of_int pr7_concurrency));
      ("domains", Obs.Json.Num (float_of_int pr7_domains));
      side "domains_1" wall1 s1;
      side (Printf.sprintf "domains_%d" pr7_domains) wall4 s4;
      ("speedup", Obs.Json.Num ratio);
      ("host_cores", Obs.Json.Num (float_of_int cores));
      ( "speedup_gate",
        Obs.Json.Obj
          [
            ("required", Obs.Json.Num pr7_required_speedup);
            ( "status",
              Obs.Json.Str (if gate_enforced then "enforced" else "skipped") );
            ( "reason",
              Obs.Json.Str
                (if gate_enforced then ""
                 else
                   Printf.sprintf "host exposes %d core(s), gate needs >= %d"
                     cores pr7_domains) );
          ] );
    ]

let parallel () = ignore (run_pr7 ())

(* BENCH_pr7.json: the core-suite baseline plus the parallel-serving
   comparison, the same shape `bench --check` accepts *)
let write_pr7_json file =
  let parallel_json = run_pr7 () in
  let baseline_entries = Baseline.run_suite () in
  let json =
    Obs.Json.Obj
      [
        ( "after",
          Obs.Json.Obj [ ("experiments", Obs.Json.Arr baseline_entries) ] );
        ("serving_parallel", parallel_json);
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "parallel serving benchmark written to %s\n" file

(* ------------------------------------------------------------------ *)
(* PR 8: adaptive strategy selection.  A mixed workload (XPath and
   conjunctive shapes) served with `--strategy auto` — the optimizer
   explores briefly, converges per shape, persists picks in the plan
   cache — against the same workload pinned to each fixed strategy that
   is a candidate for at least one shape (shapes a strategy cannot
   evaluate fall back to the planner default, exactly like
   `serve --strategy <name>`).

   Two auto measurements: a {e cold} run (fresh optimizer, empty cache —
   the measured wall includes exploration, which is dominated by the
   trials of arms whose static estimate underprices them) and the {e
   warm fleet} (a fresh optimizer sharing the cache the cold run
   persisted its picks into, so every decision is a cached pick and
   exploration is skipped — the steady state a restarted server starts
   in).

   The recorded acceptance: warm auto's wall time is within 10% of the
   best fixed strategy's, the warm fleet explores zero times, and every
   arm serves the same answers.  Every measured arm takes the minimum
   over at least 2 runs — and over as many more as fit a fixed time
   budget, because the fast arms finish in ~25 ms where scheduler jitter
   alone is worth more than the 10% gate. *)

let pr8_requests = 800
let pr8_shape_count = 8

let pr8_workload () =
  let tree = Treekit.Generator.xmark ~seed:5 ~scale:48 () in
  let rng = Random.State.make [| 11; 0xda7a |] in
  let shapes = Serve.Workload.shapes ~rng ~count:pr8_shape_count in
  let reqs =
    Serve.Workload.requests ~rng ~shapes:pr8_shape_count ~count:pr8_requests
      Serve.Workload.Closed_loop
  in
  (tree, shapes, reqs)

let run_pr8 () =
  Bench_util.header
    "Adaptive optimizer: --strategy auto vs every fixed strategy (mixed workload)";
  let tree, shapes, reqs = pr8_workload () in
  Printf.printf "document: %d nodes; %d requests over %d shapes\n"
    (Treekit.Tree.size tree) pr8_requests pr8_shape_count;
  let side name wall (s : Serve.Server.stats) =
    Obs.Json.Obj
      [
        ("strategy", Obs.Json.Str name);
        ("wall_s", Obs.Json.Num wall);
        ("throughput_rps", Obs.Json.Num (float_of_int pr8_requests /. wall));
        ("served", Obs.Json.Num (float_of_int s.Serve.Server.served));
        ("result_nodes", Obs.Json.Num (float_of_int s.Serve.Server.result_nodes));
        ("latency", summary_json s.Serve.Server.latency);
      ]
  in
  (* the fixed arms: every strategy that is a candidate for at least one
     workload shape *)
  let arms =
    List.sort_uniq compare
      (List.concat_map
         (fun (s : Serve.Workload.shape) -> Engine.strategies s.query)
         (Array.to_list shapes))
  in
  (* cold auto first: fresh everything, one run — the measured wall
     includes exploration, and the converged picks persist in the
     cache the warm arm below reads *)
  let auto_cache = Serve.Plan_cache.create ~capacity:128 () in
  let cold_store = Telemetry.Cost_store.create () in
  (* 8 trials per plausible arm before converging: ~28µs requests are
     noisy enough that the default 2 lets a scheduler hiccup elect an
     arm that is genuinely slower on that shape, and a converged pick is
     deliberately sticky — so buy pick quality with a longer (still
     cheap, ~300 of 800 requests) exploration phase *)
  let cold_opt = Optimizer.create ~seed:11 ~min_trials:8 ~store:cold_store () in
  let cold_wall, cold_stats =
    Bench_util.time_once (fun () ->
        Obs.Counter.reset_all ();
        Serve.Server.run
          (Serve.Server.config ~cache:auto_cache ~telemetry:cold_store
             ~optimizer:cold_opt ())
          tree shapes reqs)
  in
  let cold_ostats = Optimizer.stats cold_opt in
  Printf.printf
    "auto  cold (exploring)       %8.3f s  %9.0f req/s  (%d shapes, %d converged, %d exploratory decisions)\n"
    cold_wall
    (float_of_int pr8_requests /. cold_wall)
    cold_ostats.Optimizer.entries cold_ostats.Optimizer.converged
    cold_ostats.Optimizer.explorations;
  (* measured arms: every fixed strategy, plus the warm auto fleet — a
     fresh optimizer per run sharing the cold run's cache, so every
     decision is a persisted pick and no exploration happens.  No cost
     store on the warm arm: the fixed arms carry none either, so the
     comparison is routing overhead only.

     Sampling is round-robin interleaved — every arm gets a run, then
     every arm again — because the floor comparison below is decided by
     a few percent, and CPU clock drift across a sequentially-measured
     20-second window skews arms measured late vs early.  Two full
     rounds for everything (the min-of-2 the recorded acceptance
     requires), then more rounds for the arms fast enough that jitter
     rather than work decides their floor. *)
  let warm_opt = ref None in
  let measured =
    List.map
      (fun strat ->
        ( Engine.strategy_name strat,
          fun () ->
            let cache = Serve.Plan_cache.create ~capacity:128 () in
            Serve.Server.config ~cache ~force_strategy:strat () ))
      arms
    @ [
        ( "auto-warm",
          fun () ->
            let opt = Optimizer.create ~seed:11 () in
            warm_opt := Some opt;
            Serve.Server.config ~cache:auto_cache ~optimizer:opt () );
      ]
  in
  let n_arms = List.length measured in
  let walls = Array.make n_arms infinity in
  let stats_of = Array.make n_arms None in
  let rounds = 20 and fast_cutoff = 0.25 in
  for round = 1 to rounds do
    List.iteri
      (fun i (_, mk) ->
        if round <= 2 || walls.(i) < fast_cutoff then begin
          let w, s =
            Bench_util.time_once (fun () ->
                Obs.Counter.reset_all ();
                Serve.Server.run (mk ()) tree shapes reqs)
          in
          if w < walls.(i) then walls.(i) <- w;
          if stats_of.(i) = None then stats_of.(i) <- Some s
        end)
      measured
  done;
  let result i = (walls.(i), Option.get stats_of.(i)) in
  let fixed =
    List.mapi
      (fun i (name, _) ->
        let wall, st = result i in
        Printf.printf "fixed %-28s %8.3f s  %9.0f req/s\n" name wall
          (float_of_int pr8_requests /. wall);
        (name, wall, st))
      (List.filteri (fun i _ -> i < n_arms - 1) measured)
  in
  let auto_wall, auto_stats = result (n_arms - 1) in
  let warm_ostats =
    match !warm_opt with
    | Some o -> Optimizer.stats o
    | None -> assert false
  in
  Printf.printf
    "auto  warm (cached picks)    %8.3f s  %9.0f req/s  (%d exploratory decisions)\n"
    auto_wall
    (float_of_int pr8_requests /. auto_wall)
    warm_ostats.Optimizer.explorations;
  let best_name, best_wall, _ =
    List.fold_left
      (fun (bn, bw, bs) (n, w, s) -> if w < bw then (n, w, s) else (bn, bw, bs))
      (List.hd fixed) (List.tl fixed)
  in
  let ratio = auto_wall /. best_wall in
  Printf.printf "best fixed: %s at %.3f s; warm auto/best = %.3f\n" best_name
    best_wall ratio;
  Bench_util.record "serving: warm auto within 10% of best fixed strategy"
    (ratio <= 1.10);
  Bench_util.record "serving: cold auto converged on every shape"
    (cold_ostats.Optimizer.entries = pr8_shape_count
    && cold_ostats.Optimizer.converged = cold_ostats.Optimizer.entries);
  Bench_util.record "serving: warm fleet skips exploration"
    (warm_ostats.Optimizer.explorations = 0);
  let answers_agree =
    List.for_all
      (fun (_, _, (s : Serve.Server.stats)) ->
        s.Serve.Server.served = pr8_requests
        && s.Serve.Server.result_nodes
           = auto_stats.Serve.Server.result_nodes)
      fixed
    && auto_stats.Serve.Server.served = pr8_requests
    && cold_stats.Serve.Server.result_nodes
       = auto_stats.Serve.Server.result_nodes
  in
  Bench_util.record "serving: every arm serves identical answers" answers_agree;
  Obs.Json.Obj
    [
      ("tree_nodes", Obs.Json.Num (float_of_int (Treekit.Tree.size tree)));
      ("requests", Obs.Json.Num (float_of_int pr8_requests));
      ("shapes", Obs.Json.Num (float_of_int pr8_shape_count));
      ("fixed", Obs.Json.Arr (List.map (fun (n, w, s) -> side n w s) fixed));
      ("auto_cold", side "auto-cold" cold_wall cold_stats);
      ("auto_warm", side "auto-warm" auto_wall auto_stats);
      ( "optimizer",
        Obs.Json.Obj
          [
            ( "entries",
              Obs.Json.Num (float_of_int cold_ostats.Optimizer.entries) );
            ( "converged",
              Obs.Json.Num (float_of_int cold_ostats.Optimizer.converged) );
            ( "explorations",
              Obs.Json.Num (float_of_int cold_ostats.Optimizer.explorations) );
            ( "warm_explorations",
              Obs.Json.Num (float_of_int warm_ostats.Optimizer.explorations) );
          ] );
      ("best_fixed", Obs.Json.Str best_name);
      ("auto_over_best", Obs.Json.Num ratio);
      ("gate_max_ratio", Obs.Json.Num 1.10);
    ]

let auto_vs_fixed () = ignore (run_pr8 ())

(* BENCH_pr8.json: the core-suite baseline plus the auto-vs-fixed
   comparison, the same shape `bench --check` accepts *)
let write_pr8_json file =
  let pr8_json = run_pr8 () in
  let baseline_entries = Baseline.run_suite () in
  let json =
    Obs.Json.Obj
      [
        ( "after",
          Obs.Json.Obj [ ("experiments", Obs.Json.Arr baseline_entries) ] );
        ("serving_auto", pr8_json);
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "adaptive-optimizer benchmark written to %s\n" file

(* ------------------------------------------------------------------ *)
(* PR 10: ops-plane overhead.  The same warm xmark-2048 workload as the
   core comparison, twice:

     plain    warm batch serving, nothing attached;
     scraped  identical configuration plus the live ops plane: an
              [on_tick] publisher freezing a snapshot every 250 ms of
              serving time on the admitting path, an HTTP listener on
              a loopback port, and a dedicated scraper domain pulling
              /metrics every 100 ms for the whole measurement window —
              both cadences well past a real deployment (Prometheus
              default scrape interval is 15 s), and on a single-core
              host every scrape's cost lands on the serving CPU.

   Rounds are interleaved (plain, scraped, plain, scraped, …) with the
   wall floor taken per side, so clock drift across the window cannot
   masquerade as ops-plane cost.  The recorded acceptance: the fully
   scraped configuration adds < 3% to plain wall time (enforced when
   the host has a core each for the serving, listener and scraper
   domains — same host-shape guard as the PR 7 speedup gate), every
   scrape parses (terminal `# EOF`), and the served-request counter is
   monotone across consecutive scrapes of one run. *)

let run_pr10 () =
  Bench_util.header "Ops plane: warm serving vs serving + live /metrics scrapes";
  let tree, shapes, reqs = workload () in
  Printf.printf "document: %d nodes; %d requests over %d shapes\n"
    (Treekit.Tree.size tree) requests_total shape_count;
  let cache = Serve.Plan_cache.create ~capacity:128 () in
  Array.iter
    (fun (s : Serve.Workload.shape) ->
      ignore (Serve.Plan_cache.find cache s.query))
    shapes;
  let publisher = Opsplane.Snapshot.create ~version:"bench" () in
  let publish () =
    ignore
      (Opsplane.Snapshot.publish
         ~gauges:
           [
             Obs.Openmetrics.gauge "serve_plan_cache_size"
               (float_of_int
                  (Serve.Plan_cache.stats cache).Serve.Plan_cache.size);
           ]
         publisher)
  in
  let cfg_plain = Serve.Server.config ~cache ~concurrency ~share:true () in
  let cfg_ops =
    Serve.Server.config ~cache ~concurrency ~share:true ~tick_every:0.25
      ~on_tick:(fun _i _vt -> publish ()) ()
  in
  (* cross-scrape aggregates, accumulated over every round *)
  let scrapes = ref 0 in
  let scrape_failures = ref 0 in
  let non_monotone = ref 0 in
  let peak_served = ref 0 in
  let served_of body =
    let v = ref (-1) in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "treequery_serve_requests_served_total"; n ] ->
          v := int_of_string n
        | _ -> ())
      (String.split_on_char '\n' body);
    !v
  in
  (* one timed ops-side run: listener up, scraper domain pulling
     /metrics every 100 ms, publisher ticking every 250 ms of serving
     time.  Both cadences are far past a real deployment (Prometheus
     scrapes every 15 s by default), and on a single-core host every
     scrape and publish lands on the serving CPU.  The scraper checks
     each body parses (terminal `# EOF`) and that the served counter
     never decreases within the run. *)
  let ops_run () =
    Obs.Counter.reset_all ();
    publish ();
    let listener =
      Opsplane.Listener.start
        ~handler:(Opsplane.Router.handle (Opsplane.Router.make publisher))
        ()
    in
    let port = Opsplane.Listener.port listener in
    let stop = Atomic.make false in
    (* shared so the main domain can wait for the scraper to observe
       the final published totals before tearing down *)
    let peak = Atomic.make 0 in
    let scraper =
      Domain.spawn (fun () ->
          (* (scrape count, failures, non-monotone drops) *)
          let n = ref 0 and bad = ref 0 and drops = ref 0 in
          let last = ref 0 in
          while not (Atomic.get stop) do
            Unix.sleepf 0.1;
            match Opsplane.Listener.get ~port "/metrics" with
            | 200, body ->
              incr n;
              let trimmed = String.trim body in
              let eof_ok =
                String.length trimmed >= 5
                && String.sub trimmed (String.length trimmed - 5) 5 = "# EOF"
              in
              if not eof_ok then incr bad;
              let served = Stdlib.max 0 (served_of body) in
              if served < !last then incr drops;
              last := served;
              if served > Atomic.get peak then Atomic.set peak served
            | _, _ -> incr bad
          done;
          (!n, !bad, !drops))
    in
    let wall, stats = Bench_util.time_once (fun () -> Serve.Server.run cfg_ops tree shapes reqs) in
    publish ();
    (* wait until one scrape has observed the final total (bounded, so
       a broken run still terminates) rather than racing the scraper's
       100 ms cadence against a fixed sleep on a loaded host *)
    let deadline = Unix.gettimeofday () +. 10.0 in
    while
      Atomic.get peak < requests_total && Unix.gettimeofday () < deadline
    do
      Unix.sleepf 0.02
    done;
    Atomic.set stop true;
    let n, bad, drops = Domain.join scraper in
    let peak = Atomic.get peak in
    Opsplane.Listener.stop listener;
    scrapes := !scrapes + n;
    scrape_failures := !scrape_failures + bad;
    non_monotone := !non_monotone + drops;
    if peak > !peak_served then peak_served := peak;
    (wall, stats)
  in
  let plain_run () =
    Obs.Counter.reset_all ();
    Bench_util.time_once (fun () -> Serve.Server.run cfg_plain tree shapes reqs)
  in
  (* interleave the sides round-robin (the run_pr8 idiom): the floor
     comparison below is decided by a few percent, and CPU clock drift
     across a sequentially-measured window skews whichever side is
     measured last.  min-of-4 per side so one scheduler hiccup cannot
     decide the gate on a single-core host. *)
  let rounds = 4 in
  let wall_plain = ref infinity and wall_ops = ref infinity in
  let stats_ops = ref None in
  for _round = 1 to rounds do
    let wp, _ = plain_run () in
    if wp < !wall_plain then wall_plain := wp;
    let wo, so = ops_run () in
    if wo < !wall_ops then wall_ops := wo;
    if !stats_ops = None then stats_ops := Some so
  done;
  let wall_plain = !wall_plain and wall_ops = !wall_ops in
  let stats_ops = Option.get !stats_ops in
  let publishes = Opsplane.Snapshot.seq publisher in
  let overhead = (wall_ops -. wall_plain) /. wall_plain in
  Printf.printf "plain   warm batch          %8.3f s  %9.0f req/s\n" wall_plain
    (float_of_int requests_total /. wall_plain);
  Printf.printf
    "scraped warm batch          %8.3f s  %9.0f req/s  (%+.2f%% vs plain; %d \
     publishes, %d scrapes, peak served %d)\n"
    wall_ops
    (float_of_int requests_total /. wall_ops)
    (overhead *. 100.0) publishes !scrapes !peak_served;
  (* the overhead gate needs the listener and scraper domains parked on
     their own cores: the OCaml 5 minor GC is a stop-the-world
     rendezvous across resident domains, and on a host with fewer cores
     than domains every collection pays a scheduling round-trip that
     has nothing to do with the ops plane (a parked do-nothing domain
     already costs > 100% there).  Same host-shape guard as the PR 7
     speedup gate. *)
  let cores = Domain.recommended_domain_count () in
  let gate_enforced = cores >= 3 in
  if gate_enforced then
    Bench_util.record "ops plane: overhead < 3%" (overhead < 0.03)
  else
    Printf.printf
      "overhead gate skipped: host exposes %d core(s), the serving, listener \
       and scraper domains need one each\n"
      cores;
  Bench_util.record "ops plane: scrapes well-formed (# EOF, HTTP 200)"
    (!scrapes > 0 && !scrape_failures = 0);
  Bench_util.record "ops plane: scraped counters monotone" (!non_monotone = 0);
  Bench_util.record "ops plane: scraper saw the workload"
    (!peak_served = requests_total
    && stats_ops.Serve.Server.served = requests_total);
  Obs.Json.Obj
    [
      ("tree_nodes", Obs.Json.Num (float_of_int (Treekit.Tree.size tree)));
      ("requests", Obs.Json.Num (float_of_int requests_total));
      ("shapes", Obs.Json.Num (float_of_int shape_count));
      ("rounds", Obs.Json.Num (float_of_int rounds));
      ("wall_plain_s", Obs.Json.Num wall_plain);
      ("wall_scraped_s", Obs.Json.Num wall_ops);
      ("overhead_frac", Obs.Json.Num overhead);
      ("publishes", Obs.Json.Num (float_of_int publishes));
      ("scrapes", Obs.Json.Num (float_of_int !scrapes));
      ("scrape_failures", Obs.Json.Num (float_of_int !scrape_failures));
      ("peak_served", Obs.Json.Num (float_of_int !peak_served));
      ("host_cores", Obs.Json.Num (float_of_int cores));
      ( "overhead_gate",
        Obs.Json.Obj
          [
            ("max_overhead_frac", Obs.Json.Num 0.03);
            ( "status",
              Obs.Json.Str (if gate_enforced then "enforced" else "skipped") );
            ( "reason",
              Obs.Json.Str
                (if gate_enforced then ""
                 else
                   Printf.sprintf
                     "host exposes %d core(s), the serving, listener and \
                      scraper domains need one each"
                     cores) );
          ] );
    ]

let ops_plane () = ignore (run_pr10 ())

(* BENCH_pr10.json: the core-suite baseline ("after", checked in CI by
   `bench --check`) plus the ops-plane overhead comparison *)
let write_pr10_json file =
  let pr10_json = run_pr10 () in
  let baseline_entries = Baseline.run_suite () in
  let json =
    Obs.Json.Obj
      [
        ( "after",
          Obs.Json.Obj [ ("experiments", Obs.Json.Arr baseline_entries) ] );
        ("ops_plane", pr10_json);
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "ops-plane benchmark written to %s\n" file

(* BENCH_pr4.json: the core-suite baseline ("after", checked in CI by
   `bench --check`) plus the serving comparison above *)
let write_json file =
  let serving_json = run_core () in
  let baseline_entries = Baseline.run_suite () in
  let json =
    Obs.Json.Obj
      [
        ( "after",
          Obs.Json.Obj [ ("experiments", Obs.Json.Arr baseline_entries) ] );
        ("serving", serving_json);
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "serving benchmark written to %s\n" file
