(* PR9: the standing-query index's scaling claim.

   Register N distinct path spines (the class the merged prefix-sharing
   trie covers — see DESIGN.md: twig/general registrations keep per-entry
   matchers, so the merged-structure claim is benchmarked on spines) and
   stream the same XMark documents through (a) the shared index — one SAX
   pass per document — and (b) the one-at-a-time twin that executes every
   registration's compiled Boolean plan.  The twin's per-document cost is
   Θ(N · document); the index's is document + active trie states + fired
   set, flat in N once the spine prefixes saturate the vocabulary.

   Gates (replayed by `bench --check BENCH_pr9.json` in CI):
   - both arms fire identical per-document counts at every N,
   - the shared index is ≥ 5× the twin at N = 10k,
   - attest-style scaling: per-document index cost divided by its cost
     witness (document events + active trie states + fired set) stays
     within a small constant as N grows 100× — the cost is proportional
     to document + matched set, not to the registration count (the twin,
     by contrast, degrades linearly in N). *)

module PP = Streamq.Path_pattern
module E = Treequery.Engine
module Index = Subscribe.Index
module Tree = Treekit.Tree

(* the XMark element vocabulary (Generator.xmark), so registered spines
   actually walk the benchmark documents *)
let vocab =
  [|
    "site"; "regions"; "africa"; "asia"; "europe"; "namerica"; "item";
    "location"; "quantity"; "name"; "description"; "parlist"; "mailbox";
    "mail"; "from"; "to"; "date"; "categories"; "category"; "people";
    "person"; "emailaddress"; "address"; "street"; "city"; "country";
    "profile"; "interest"; "education"; "watches"; "open_auctions";
    "open_auction"; "initial"; "reserve"; "bidder"; "time"; "personref";
    "increase"; "itemref"; "seller"; "annotation"; "author"; "happiness";
    "closed_auctions"; "closed_auction"; "buyer"; "price";
  |]

let distinct_spines ~rng n =
  let seen = Hashtbl.create (2 * n) in
  let acc = ref [] in
  while Hashtbl.length seen < n do
    let length = 1 + Random.State.int rng 4 in
    let p = PP.random ~rng ~length ~labels:vocab () in
    let key = PP.to_string p in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      acc := p :: !acc
    end
  done;
  Array.of_list (List.rev !acc)

let populations = [ 1_000; 10_000; 100_000 ]

let n_docs = 10

let doc_scale = 10

let make_docs () =
  Array.init n_docs (fun i ->
      let t = Treekit.Generator.xmark ~seed:(7_000 + i) ~scale:doc_scale () in
      Tree.seal t;
      t)

type arm = {
  a_wall_per_doc : float;
  a_fired_per_doc : int array;
}

let index_arm pats docs =
  let idx = Index.create () in
  Array.iteri
    (fun i p -> ignore (Index.register idx ~id:i (E.Xpath_query (PP.to_xpath p))))
    pats;
  let sess = Index.session idx in
  (* one unmeasured warm-up pass: session refresh and trie-pass array
     growth happen once per churn, not per document *)
  ignore (Index.match_tree sess docs.(0));
  let fired = Array.make (Array.length docs) 0 in
  let work = ref 0 in
  let wall, () =
    Bench_util.time_once (fun () ->
        Array.iteri
          (fun i t ->
            fired.(i) <- List.length (Index.match_tree sess t);
            work := !work + Index.doc_active_work sess)
          docs)
  in
  ( idx,
    { a_wall_per_doc = wall /. float_of_int (Array.length docs); a_fired_per_doc = fired },
    !work / Array.length docs )

let twin_arm pats docs =
  let plans = Array.map (fun p -> E.prepare (E.Xpath_query (PP.to_xpath p))) pats in
  let fired = Array.make (Array.length docs) 0 in
  let wall, () =
    Bench_util.time_once (fun () ->
        Array.iteri
          (fun i t ->
            let n = ref 0 in
            Array.iter (fun (pl : E.prepared) -> if pl.exec_boolean t then incr n) plans;
            fired.(i) <- !n)
          docs)
  in
  { a_wall_per_doc = wall /. float_of_int (Array.length docs); a_fired_per_doc = fired }

let run () =
  Bench_util.header "Standing-query index: shared trie vs one-at-a-time (PR9)";
  let rng = Random.State.make [| 0x5049 |] in
  let all_pats = distinct_spines ~rng (List.fold_left max 0 populations) in
  let docs = make_docs () in
  let doc_nodes =
    Array.fold_left (fun a t -> a + Tree.size t) 0 docs / Array.length docs
  in
  Printf.printf "documents: %d XMark docs, ~%d nodes each\n" (Array.length docs)
    doc_nodes;
  Printf.printf "%10s %10s %12s %12s %12s %8s\n" "N" "trie-states"
    "index s/doc" "twin s/doc" "speedup" "fired/doc";
  let rows =
    List.map
      (fun n ->
        let pats = Array.sub all_pats 0 n in
        (* twin docs shrink at the top population: per-doc cost is the
           reported unit either way, and 100k plans x 10 docs is minutes
           of redundant work for the same number *)
        let twin_docs =
          if n >= 100_000 then Array.sub docs 0 2 else docs
        in
        let idx, ix, work_per_doc = index_arm pats docs in
        let tw = twin_arm pats twin_docs in
        let fired_agree =
          Array.for_all
            (fun i -> ix.a_fired_per_doc.(i) = tw.a_fired_per_doc.(i))
            (Array.init (Array.length twin_docs) (fun i -> i))
        in
        Bench_util.record
          (Printf.sprintf "subscribe: fired sets identical at N=%d" n)
          fired_agree;
        let speedup = tw.a_wall_per_doc /. ix.a_wall_per_doc in
        let fired_avg =
          Array.fold_left ( + ) 0 ix.a_fired_per_doc
          / Array.length ix.a_fired_per_doc
        in
        Printf.printf "%10d %10d %12.5f %12.5f %11.1fx %8d\n" n
          (Index.trie_states idx) ix.a_wall_per_doc tw.a_wall_per_doc speedup
          fired_avg;
        (n, Index.trie_states idx, ix, tw, speedup, fired_avg, work_per_doc))
      populations
  in
  let find n' = List.find (fun (n, _, _, _, _, _, _) -> n = n') rows in
  let per_doc n' =
    let _, _, ix, _, _, _, _ = find n' in
    ix.a_wall_per_doc
  in
  let speedup_at n' =
    let _, _, _, _, s, _, _ = find n' in
    s
  in
  (* the cost witness of trie.mli: O(events · active states + fired) —
     per-doc seconds per unit of witness must not grow with N *)
  let cost_per_witness n' =
    let _, _, ix, _, _, fired_avg, work = find n' in
    ix.a_wall_per_doc /. float_of_int ((2 * doc_nodes) + work + fired_avg)
  in
  Bench_util.record "subscribe: shared index >= 5x one-at-a-time at 10k"
    (speedup_at 10_000 >= 5.0);
  let lo = List.fold_left min max_int populations
  and hi = List.fold_left max 0 populations in
  let witness_ratio = cost_per_witness hi /. cost_per_witness lo in
  let per_doc_ratio = per_doc hi /. per_doc lo in
  Printf.printf
    "index cost per witness unit %dk/%dk = %.2fx; raw per-doc cost = %.2fx \
     over a %dx registration increase (one-at-a-time degrades ~%dx)\n"
    (hi / 1000) (lo / 1000) witness_ratio per_doc_ratio (hi / lo) (hi / lo);
  Bench_util.record
    "subscribe: per-doc cost tracks document+matched set, not registrations"
    (witness_ratio <= 3.0);
  Bench_util.record "subscribe: per-doc cost sublinear in registrations"
    (per_doc_ratio <= float_of_int (hi / lo) /. 4.0);
  Obs.Json.Obj
    [
      ("docs", Obs.Json.Num (float_of_int (Array.length docs)));
      ("doc_nodes_avg", Obs.Json.Num (float_of_int doc_nodes));
      ( "populations",
        Obs.Json.Arr
          (List.map
             (fun (n, states, ix, tw, speedup, fired_avg, work) ->
               Obs.Json.Obj
                 [
                   ("registrations", Obs.Json.Num (float_of_int n));
                   ("trie_states", Obs.Json.Num (float_of_int states));
                   ("index_s_per_doc", Obs.Json.Num ix.a_wall_per_doc);
                   ("one_at_a_time_s_per_doc", Obs.Json.Num tw.a_wall_per_doc);
                   ("speedup", Obs.Json.Num speedup);
                   ("fired_per_doc_avg", Obs.Json.Num (float_of_int fired_avg));
                   ("active_work_per_doc", Obs.Json.Num (float_of_int work));
                 ])
             rows) );
      ("speedup_at_10k", Obs.Json.Num (speedup_at 10_000));
      ("gate_min_speedup_at_10k", Obs.Json.Num 5.0);
      ("cost_per_witness_ratio", Obs.Json.Num witness_ratio);
      ("gate_max_witness_ratio", Obs.Json.Num 3.0);
      ("per_doc_ratio", Obs.Json.Num per_doc_ratio);
      ( "gate_max_per_doc_ratio",
        Obs.Json.Num (float_of_int (hi / lo) /. 4.0) );
    ]

(* BENCH_pr9.json: the core-suite baseline ("after", checked in CI by
   `bench --check`) plus the subscription-scaling comparison *)
let write_pr9_json file =
  let subscribe_json = run () in
  let baseline_entries = Baseline.run_suite () in
  let json =
    Obs.Json.Obj
      [
        ( "after",
          Obs.Json.Obj [ ("experiments", Obs.Json.Arr baseline_entries) ] );
        ("subscribe", subscribe_json);
      ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string json ^ "\n"));
  Printf.printf "standing-query benchmark written to %s\n" file
