(* Experiments: dynamic labeling under updates (Section 2's labeling
   schemes) and the relational Yannakakis algorithm (Section 4's
   eager-projection point). *)
open Treekit
open Bench_util

let dynlabel () =
  header "Dynamic labeling — order maintenance and ORDPATH under insertions (Sect. 2)";
  row "(static pre/post renumbers everything per insertion; order maintenance\n";
  row " relabels an amortised-small window; ORDPATH never relabels but its\n";
  row " labels grow)\n";
  row "%10s %16s %18s %14s %14s %16s\n" "inserts" "ordmaint(ms)" "relabeled items"
    "ordpath(ms)" "max |label|" "rebuild(ms)";
  let ok = ref true in
  List.iter
    (fun n ->
      let rng = Random.State.make [| n |] in
      let t_dyn, (doc, handles) =
        time_once (fun () ->
            let doc = Dynlabel.create "r" in
            let handles = Array.make (n + 1) (Dynlabel.root doc) in
            for i = 1 to n do
              let v = handles.(Random.State.int rng i) in
              handles.(i) <- Dynlabel.insert_last_child doc v "x"
            done;
            (doc, handles))
      in
      (* baseline: recompute the static pre/post labels after each insert
         (O(i) each, quadratic overall; the shape does not matter for the
         relabeling cost, so a growing path stands in) — small sizes only *)
      let t_rebuild =
        if n <= 4_000 then
          ms
            (fst
               (time_once (fun () ->
                    for i = 1 to n do
                      ignore
                        (Tree.of_parent_vector
                           ~parents:(Array.init (i + 1) (fun j -> j - 1))
                           ~labels:(Array.make (i + 1) "x") ())
                    done)))
        else nan
      in
      (* the same workload through ORDPATH *)
      let rng2 = Random.State.make [| n |] in
      let t_op, opdoc =
        time_once (fun () ->
            let opdoc = Treekit.Ordpath.create "r" in
            let handles = Array.make (n + 1) (Treekit.Ordpath.root opdoc) in
            for i = 1 to n do
              let v = handles.(Random.State.int rng2 i) in
              handles.(i) <- Treekit.Ordpath.insert_last_child opdoc v "x"
            done;
            opdoc)
      in
      (* correctness spot check *)
      let tree, pre_of = Dynlabel.snapshot doc in
      for _ = 1 to 1_000 do
        let u = handles.(Random.State.int rng (n + 1)) in
        let v = handles.(Random.State.int rng (n + 1)) in
        if
          Dynlabel.is_ancestor doc u v
          <> Tree.is_ancestor tree (pre_of u) (pre_of v)
        then ok := false
      done;
      row "%10d %16.2f %18d %14.2f %14d %16.2f\n" n (ms t_dyn)
        (Dynlabel.relabel_count doc) (ms t_op)
        (Treekit.Ordpath.max_label_length opdoc) t_rebuild)
    [ 1_000; 4_000; 16_000; 64_000 ];
  record "dynamic labels agree with the static snapshot" !ok;

  subheader "adversarial workload: repeated insertion at one gap";
  row "%10s %16s %18s %14s %14s\n" "inserts" "ordmaint(ms)" "relabeled items"
    "ordpath(ms)" "max |label|";
  List.iter
    (fun n ->
      let t_om, omdoc =
        time_once (fun () ->
            let doc = Dynlabel.create "r" in
            let r = Dynlabel.root doc in
            for _ = 1 to n do
              ignore (Dynlabel.insert_first_child doc r "x")
            done;
            doc)
      in
      let t_op, opdoc =
        time_once (fun () ->
            let doc = Treekit.Ordpath.create "r" in
            let r = Treekit.Ordpath.root doc in
            for _ = 1 to n do
              ignore (Treekit.Ordpath.insert_first_child doc r "x")
            done;
            doc)
      in
      row "%10d %16.2f %18d %14.2f %14d\n" n (ms t_om)
        (Dynlabel.relabel_count omdoc) (ms t_op)
        (Treekit.Ordpath.max_label_length opdoc))
    [ 2_000; 8_000; 32_000 ];
  row "(front-insertion hammering: order maintenance pays with relabeling\n";
  row " while ORDPATH extends into negative components at constant length;\n";
  row " ORDPATH's own pathology — label growth — needs alternating bisection\n";
  row " and is exercised by the test suite)\n"

let relational_yannakakis () =
  header "Relational Yannakakis — eager projection beats naive joins (Section 4)";
  row "(star query q(X) :- R1(X,Y1), R2(X,Y2), R3(X,Y3): the naive join\n";
  row " materialises |R|^3-ish intermediates, the join tree projects early)\n";
  let module R = Relkit.Relation in
  let module A = Relkit.Acyclic in
  row "%10s %18s %14s %10s\n" "|R|" "yannakakis(ms)" "naive(ms)" "answers";
  let consistent = ref true in
  List.iter
    (fun m ->
      let rng = Random.State.make [| m |] in
      let mk () =
        R.of_rows ~arity:2
          (List.init m (fun _ ->
               [| Random.State.int rng 20; Random.State.int rng m |]))
      in
      let q =
        {
          A.head = [ "x" ];
          body =
            [
              A.make_atom (mk ()) [ "x"; "y1" ];
              A.make_atom (mk ()) [ "x"; "y2" ];
              A.make_atom (mk ()) [ "x"; "y3" ];
            ];
        }
      in
      let t_y = time (fun () -> A.solutions q) in
      let t_n = if m <= 400 then ms (time (fun () -> A.naive_solutions q)) else nan in
      let answers =
        match A.solutions q with Some r -> R.cardinality r | None -> -1
      in
      if m <= 400 then begin
        match A.solutions q with
        | Some fast -> if not (R.equal fast (A.naive_solutions q)) then consistent := false
        | None -> consistent := false
      end;
      row "%10d %18.2f %14.2f %10d\n" m (ms t_y) t_n answers)
    [ 200; 400; 800; 1_600 ];
  record "relational Yannakakis = naive join" !consistent
