(* The benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the recorded
   outcomes), then runs one Bechamel micro-benchmark per experiment id. *)

let experiments =
  [
    ("table1", Exp_structures.table1);
    ("figure1", Exp_structures.figure1);
    ("figure2", Exp_structures.figure2);
    ("figure3", Exp_structures.figure3);
    ("figure4", Exp_structures.figure4);
    ("figure5", Exp_consistency.figure5);
    ("figure6", Exp_consistency.figure6);
    ("thm51", Exp_consistency.thm51);
    ("thm41", Exp_consistency.thm41);
    ("figure7-data", Exp_scaling.figure7_data_complexity);
    ("figure7-combined", Exp_scaling.figure7_combined_complexity);
    ("prop42", Exp_scaling.prop42);
    ("naive-blowup", Exp_scaling.naive_blowup);
    ("stream-memory", Exp_scaling.stream_memory);
    ("ablation-ac", Exp_scaling.ablation_ac);
    ("ablation-twig", Exp_scaling.ablation_twig);
    ("mso-automata", Exp_mso.mso_automata);
    ("corollary52", Exp_mso.corollary52);
    ("fo2", Exp_mso.fo2);
    ("qualified-streaming", Exp_mso.qualified_streaming);
    ("dynlabel", Exp_updates.dynlabel);
    ("yannakakis-relational", Exp_updates.relational_yannakakis);
    ("serving", Exp_serving.serving);
    ("serving-parallel", Exp_serving.parallel);
    ("serving-auto", Exp_serving.auto_vs_fixed);
    ("subscribe", fun () -> ignore (Exp_subscribe.run ()));
    ("serving-ops", Exp_serving.ops_plane);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure id. *)

let bechamel_tests () =
  let open Bechamel in
  let open Treekit in
  let tree n = Generator.random ~seed:(n + 17) ~n ~labels:Generator.labels_abc () in
  let t1k = tree 1_000 and t4k = tree 4_000 in
  let xmark = Generator.xmark ~seed:3 ~scale:8 () in
  let minoux_formula =
    let f = Hornsat.create ~nvars:4_000 in
    let rng = Random.State.make [| 99 |] in
    for _ = 1 to 4_000 do
      ignore
        (Hornsat.add_rule f
           ~head:(Random.State.int rng 4_000)
           ~body:(List.init (Random.State.int rng 3) (fun _ -> Random.State.int rng 4_000)))
    done;
    ignore (Hornsat.add_rule f ~head:0 ~body:[]);
    f
  in
  let cyclic_q =
    Cqtree.Query.of_string
      {| q :- lab(X, "a"), lab(Y, "b"), descendant(X, Y), descendant(Y, Z), descendant(X, Z). |}
  in
  let twig_q =
    Cqtree.Query.of_string
      {| q(X, Y) :- lab(X, "item"), descendant(X, Y), lab(Y, "date"). |}
  in
  let rewrite_q =
    Cqtree.Query.of_string
      {| q(Z) :- lab(X, "a"), descendant(X, Z), lab(Y, "b"), descendant(Y, Z). |}
  in
  let xpath_q = Xpath.Parser.parse "//a[b and not(descendant::c)]/following-sibling::*" in
  let conj_xpath = Xpath.Parser.parse "descendant::a[child::b]/following-sibling::*" in
  let conj_cq = Option.get (Xpath.To_cq.to_query conj_xpath) in
  let pattern = Streamq.Path_pattern.of_string "//a/b//c" in
  let pathstack_specs =
    [ (Some "item", Actree.Twigjoin.Descendant_edge);
      (Some "mail", Actree.Twigjoin.Descendant_edge) ]
  in
  let datalog_p = Mdatalog.Examples.has_ancestor_labeled "b" in
  [
    Test.make ~name:"table1/brute-force-cell"
      (Staged.stage (fun () ->
           Cqtree.Sat_table.brute_force Axis.Descendant Axis.Child ~max_size:4));
    Test.make ~name:"figure1/binary-rep-roundtrip"
      (Staged.stage (fun () -> Binary_rep.to_tree (Binary_rep.of_tree t1k)));
    Test.make ~name:"figure2/stack-structural-join"
      (let all = List.init 1_000 Fun.id in
       Staged.stage (fun () ->
           Relkit.Structural_join.stack_join t1k ~ancestors:all ~descendants:all));
    Test.make ~name:"figure3/minoux-solve"
      (Staged.stage (fun () -> Hornsat.solve minoux_formula));
    Test.make ~name:"figure3/datalog-eval"
      (Staged.stage (fun () -> Mdatalog.Eval.run datalog_p t4k));
    Test.make ~name:"figure4/width2-decomposition"
      (Staged.stage (fun () -> Treewidth.Decomposition.of_data_tree t4k));
    Test.make ~name:"figure5/arc-consistency-cyclic"
      (Staged.stage (fun () -> Actree.Xeval.boolean cyclic_q t4k));
    Test.make ~name:"figure6/enumerate-satisfactions"
      (Staged.stage (fun () -> Actree.Enumerate.solutions twig_q xmark));
    Test.make ~name:"thm51/rewrite"
      (Staged.stage (fun () -> Cqtree.Rewrite.rewrite rewrite_q));
    Test.make ~name:"figure7/xpath-bottom-up"
      (Staged.stage (fun () -> Xpath.Eval.query t4k xpath_q));
    Test.make ~name:"prop42/yannakakis-conjunctive-xpath"
      (Staged.stage (fun () -> Cqtree.Yannakakis.unary conj_cq t4k));
    Test.make ~name:"prop610/pathstack"
      (Staged.stage (fun () -> Actree.Twigjoin.path_stack xmark pathstack_specs));
    Test.make ~name:"stream/path-matcher"
      (Staged.stage (fun () -> Streamq.Path_matcher.select t4k pattern));
    Test.make ~name:"mso/automaton-run"
      (let auto =
         Automata.Automaton.conj
           (Automata.Automaton.every_a_has_b_descendant "a" "b")
           (Automata.Automaton.count_label_mod "c" ~modulus:3 ~residue:1)
       in
       Staged.stage (fun () -> Automata.Automaton.run auto t4k));
    Test.make ~name:"cor52/positive-union"
      (let u =
         Cqtree.Positive.of_strings
           [ {| q :- lab(X, "a"), descendant(X, Y), lab(Y, "b"). |};
             {| q :- lab(X, "b"), following(X, Y), lab(Y, "c"). |} ]
       in
       Staged.stage (fun () -> Cqtree.Positive.boolean u t4k));
    Test.make ~name:"check/differential-sweep"
      (* generation + all 13 oracles on 10 case indices: the cost of one
         unit of `treequery check`, so throughput regressions in any
         engine or in the harness itself show up here *)
      (Staged.stage (fun () ->
           Check.Runner.run { Check.Runner.default with cases = 10 }));
  ]

let run_bechamel () =
  let open Bechamel in
  Bench_util.header "Bechamel micro-benchmarks (one per experiment id)";
  let grouped = Test.make_grouped ~name:"treequery" ~fmt:"%s %s" (bechamel_tests ()) in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.25) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some [ e ] -> e
          | _ -> nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-48s %14.1f ns/run\n" name ns)
    (List.sort compare rows)

(* pull "--flag FILE" out of an argument list *)
let rec extract_opt flag = function
  | [] -> (None, [])
  | f :: v :: rest when f = flag ->
    let found, rest = extract_opt flag rest in
    ((match found with Some _ -> found | None -> Some v), rest)
  | a :: rest ->
    let found, rest = extract_opt flag rest in
    (found, a :: rest)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let skip_bechamel = List.mem "--no-bechamel" args in
  let args = List.filter (fun a -> a <> "--no-bechamel") args in
  let baseline_file, args = extract_opt "--baseline" args in
  let check_file, args = extract_opt "--check" args in
  let serving_file, args = extract_opt "--serving-json" args in
  let pr7_file, args = extract_opt "--pr7-json" args in
  let pr8_file, args = extract_opt "--pr8-json" args in
  let pr9_file, args = extract_opt "--pr9-json" args in
  let pr10_file, args = extract_opt "--pr10-json" args in
  Obs.set_clock Unix.gettimeofday;
  (match baseline_file with Some f -> Baseline.run_baseline f | None -> ());
  (match check_file with Some f -> Baseline.check f | None -> ());
  (match serving_file with
  | Some f ->
    Obs.with_enabled true (fun () -> Exp_serving.write_json f);
    if List.exists (fun (_, ok) -> not ok) !Bench_util.checks then exit 1
  | None -> ());
  (match pr7_file with
  | Some f ->
    Obs.with_enabled true (fun () -> Exp_serving.write_pr7_json f);
    if List.exists (fun (_, ok) -> not ok) !Bench_util.checks then exit 1
  | None -> ());
  (match pr8_file with
  | Some f ->
    Obs.with_enabled true (fun () -> Exp_serving.write_pr8_json f);
    if List.exists (fun (_, ok) -> not ok) !Bench_util.checks then exit 1
  | None -> ());
  (match pr9_file with
  | Some f ->
    Obs.with_enabled true (fun () -> Exp_subscribe.write_pr9_json f);
    if List.exists (fun (_, ok) -> not ok) !Bench_util.checks then exit 1
  | None -> ());
  (match pr10_file with
  | Some f ->
    Obs.with_enabled true (fun () -> Exp_serving.write_pr10_json f);
    if List.exists (fun (_, ok) -> not ok) !Bench_util.checks then exit 1
  | None -> ());
  if
    baseline_file <> None || check_file <> None || serving_file <> None
    || pr7_file <> None || pr8_file <> None || pr9_file <> None
    || pr10_file <> None
  then exit 0;
  let selected = if args = [] then List.map fst experiments else args in
  Obs.set_enabled true;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        (* per-experiment counter snapshot: BENCH_*.json trajectories can
           track work done (propagations, semijoins, events), not just
           wall-clock *)
        Obs.reset ();
        f ();
        Bench_util.obs_snapshot name
      | None ->
        Printf.printf "unknown experiment %s (available: %s)\n" name
          (String.concat ", " (List.map fst experiments)))
    selected;
  Obs.set_enabled false;
  if (not skip_bechamel) && args = [] then run_bechamel ();
  Bench_util.summary ()
