(* Experiments: MSO/tree automata (Sections 3, 4, 7) and positive FO
   (Corollary 5.2). *)
open Treekit
open Bench_util
module A = Automata.Automaton

let mso_automata () =
  header "MSO via tree automata — linear data complexity (Thm 4.4 special case)";
  let auto =
    A.conj
      (A.every_a_has_b_descendant "a" "b")
      (A.disj (A.count_label_mod "c" ~modulus:3 ~residue:1) (A.adjacent_children "b" "c"))
  in
  row "automaton: %s (%d states, %d monoid elements)\n" auto.A.name auto.A.states
    auto.A.monoid_size;
  row "%10s %14s %16s %14s\n" "n" "bottom-up(ms)" "streaming(ms)" "agree";
  let series = ref [] in
  let all_agree = ref true in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:(n + 5) ~n ~labels:Generator.labels_abc () in
      let t_mem = time (fun () -> A.run auto t) in
      let t_str = time (fun () -> A.run_events auto (Event.to_seq t)) in
      let agree = A.run auto t = A.run_events auto (Event.to_seq t) in
      if not agree then all_agree := false;
      series := (n, t_mem) :: !series;
      row "%10d %14.3f %16.3f %14b\n" n (ms t_mem) (ms t_str) agree)
    [ 4_000; 8_000; 16_000; 32_000 ];
  let e = fitted_exponent !series in
  row "fitted exponent: %.2f (theory: 1.00)\n" e;
  record "MSO automaton evaluation is linear (exponent < 1.45)" (e < 1.45);
  record "streaming automaton run = bottom-up run" !all_agree;

  subheader "streaming MSO with O(depth) memory ([60, 70], Section 7)";
  row "%10s %10s %14s\n" "depth" "n" "peak frames";
  List.iter
    (fun mk ->
      let t = mk () in
      let _, peak = A.run_events_stats auto (Event.to_seq t) in
      row "%10d %10d %14d\n" (Tree.height t + 1) (Tree.size t) peak)
    [
      (fun () -> Generator.full ~fanout:2 ~depth:12 ());
      (fun () -> Generator.random_deep ~seed:3 ~n:8191 ~labels:Generator.labels_abc ~descend_bias:0.9 ());
      (fun () -> Generator.path ~n:8191 ());
    ];
  let t = Generator.full ~fanout:2 ~depth:12 () in
  let _, peak = A.run_events_stats auto (Event.to_seq t) in
  record "automaton streaming memory = depth" (peak = Tree.height t + 1)

let corollary52 () =
  header "Corollary 5.2 — fixed positive Boolean FO queries in O(||A||)";
  let u =
    Cqtree.Positive.of_strings
      [
        {| q :- lab(X, "a"), descendant(X, Y), lab(Y, "b"), descendant(Z, Y), lab(Z, "c"). |};
        {| q :- lab(X, "b"), following(X, Y), lab(Y, "c"), child(Z, Y). |};
      ]
  in
  Format.printf "%a@." Cqtree.Positive.pp u;
  row "%10s %18s %14s\n" "n" "rewrite-union(ms)" "naive(ms)";
  let series = ref [] in
  let agree = ref true in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:(n * 7 + 2) ~n ~labels:Generator.labels_abc () in
      let t_u = time (fun () -> Cqtree.Positive.boolean u t) in
      let t_naive =
        if n <= 2_000 then begin
          if Cqtree.Positive.boolean u t <> Cqtree.Positive.boolean_naive u t then
            agree := false;
          ms (time (fun () -> Cqtree.Positive.boolean_naive u t))
        end
        else nan
      in
      series := (n, t_u) :: !series;
      row "%10d %18.3f %14.3f\n" n (ms t_u) t_naive)
    [ 2_000; 4_000; 8_000; 16_000 ];
  let e = fitted_exponent !series in
  row "fitted exponent: %.2f (theory: 1.00 for fixed queries)\n" e;
  record "Corollary 5.2: positive union agrees with naive" !agree;
  record "Corollary 5.2: linear data complexity (exponent < 1.45)" (e < 1.45)

let fo2 () =
  header "Core XPath -> FO2 (Marx [57]) — the O(||A||^2 * |Q|) route";
  let p = Xpath.Parser.parse "//a[b and not(descendant::c)]/following-sibling::*" in
  let phi = Folang.Of_xpath.unary p in
  row "query:   %s\n" (Xpath.Ast.to_string p);
  row "formula: %d nodes, %d variable names (must be <= 2)\n"
    (Folang.Formula.size phi) (Folang.Formula.variable_count phi);
  row "%10s %14s %18s %14s\n" "n" "fo2 eval(ms)" "bottom-up(ms)" "agree";
  let series = ref [] in
  let ok = ref (Folang.Formula.variable_count phi <= 2) in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:(n + 11) ~n ~labels:Generator.labels_abc () in
      let t_fo = time (fun () -> Folang.Eval.unary t phi) in
      let t_bu = time (fun () -> Xpath.Eval.query t p) in
      let agree = Nodeset.equal (Folang.Eval.unary t phi) (Xpath.Eval.query t p) in
      if not agree then ok := false;
      series := (n, t_fo) :: !series;
      row "%10d %14.2f %18.3f %14b\n" n (ms t_fo) (ms t_bu) agree)
    [ 100; 200; 400; 800 ];
  let e = fitted_exponent !series in
  row "fitted FO2 exponent: %.2f (theory: <= 2; the bottom-up engine is linear)\n" e;
  record "FO2 translation agrees with the XPath engines, 2 variables" !ok;
  record "FO2 evaluation within the quadratic bound (exponent < 2.4)" (e < 2.4)

let qualified_streaming () =
  header "Streaming XPath with qualifiers ([61]) — one pass, O(depth) memory";
  let queries =
    [ "//open_auction[bidder]/annotation";
      "//person[profile[interest]]//emailaddress";
      "//item[mailbox//mail[from]]" ]
  in
  row "%-44s %8s %12s %12s\n" "query" "match" "stream(ms)" "eval(ms)";
  let ok = ref true in
  let t = Generator.xmark ~seed:11 ~scale:120 () in
  row "document: xmark, n = %d, depth = %d\n" (Tree.size t) (Tree.height t);
  List.iter
    (fun qs ->
      let p = Xpath.Parser.parse qs in
      match Streamq.Xpath_filter.matches t p with
      | None ->
        ok := false;
        row "%-44s %8s\n" qs "UNSUPPORTED"
      | Some got ->
        let want = not (Nodeset.is_empty (Xpath.Eval.query t p)) in
        if got <> want then ok := false;
        let t_s = time (fun () -> Streamq.Xpath_filter.matches t p) in
        let t_e = time (fun () -> Xpath.Eval.query t p) in
        row "%-44s %8b %12.3f %12.3f\n" qs got (ms t_s) (ms t_e))
    queries;
  record "qualified streaming filter = in-memory evaluation" !ok
