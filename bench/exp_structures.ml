(* Experiments T1, F1, F2, F3, F4 — the representation- and
   datalog-technique artifacts of the paper. *)
open Treekit
open Bench_util

let fig2_tree () =
  Tree.of_builder
    (Tree.Node
       ( "a",
         [
           Node ("b", [ Node ("a", []); Node ("c", []) ]);
           Node ("a", [ Node ("b", []); Node ("d", []) ]);
         ] ))

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let table1 () =
  header "Table 1 — satisfiability of R(x,z) ∧ S(y,z) ∧ x <pre y";
  let axes = Cqtree.Sat_table.axes in
  let name a =
    match a with
    | Axis.Child -> "Child"
    | Axis.Descendant -> "Child+"
    | Axis.Next_sibling -> "NextSibling"
    | Axis.Following_sibling -> "NextSibling+"
    | _ -> Axis.name a
  in
  row "%-14s" "R \\ S";
  List.iter (fun s -> row "%-14s" (name s)) axes;
  row "\n";
  let all_match = ref true in
  List.iter
    (fun r ->
      row "%-14s" (name r);
      List.iter
        (fun s ->
          let paper = Cqtree.Sat_table.sat r s in
          let measured = Cqtree.Sat_table.brute_force r s ~max_size:5 in
          if paper <> measured then all_match := false;
          row "%-14s" (if measured then "sat" else "unsat"))
        axes;
      row "\n")
    axes;
  row "(each cell decided by exhaustive search over all %d ordered trees with <= 5 nodes)\n"
    (List.length
       (List.concat_map (fun n -> Generator.all_shapes ~n) [ 1; 2; 3; 4; 5 ]));
  record "Table 1 equals the paper's matrix" !all_match

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

let figure1 () =
  header "Figure 1 — binary FirstChild/NextSibling representation";
  (* the figure's own 6-node tree: n1(n2(n3), n4(n5), n6) has FirstChild
     edges n1→n2, n2→n3, n4→n5 and NextSibling edges n2→n4, n4→n6 — we use
     the shape matching the figure's edge lists *)
  let t =
    Tree.of_builder
      (Tree.Node ("n", [ Node ("n", [ Node ("n", []); Node ("n", []) ]); Node ("n", [ Node ("n", []) ]) ]))
  in
  let b = Binary_rep.of_tree t in
  Format.printf "%a@." Binary_rep.pp b;
  let roundtrip = Tree.equal t (Binary_rep.to_tree b) in
  record "binary representation roundtrips" roundtrip;
  record "edge counts: |FirstChild| + |NextSibling| = n - 1"
    (List.length b.first_child + List.length b.next_sibling = Tree.size t - 1)

(* ------------------------------------------------------------------ *)
(* Figure 2 + Example 2.1: XASR and structural joins *)

let figure2 () =
  header "Figure 2 — XASR storage scheme";
  let t = fig2_tree () in
  Format.printf "tree: %a@." Tree.pp t;
  Format.printf "%a@." Labeling.pp (Labeling.xasr t);
  let expected =
    [
      (1, 7, None); (2, 3, Some 1); (3, 1, Some 2); (4, 2, Some 2);
      (5, 6, Some 1); (6, 4, Some 5); (7, 5, Some 5);
    ]
  in
  let rows = Labeling.xasr t in
  let ok =
    List.for_all2
      (fun (pre, post, par) (r : Labeling.row) ->
        r.pre = pre && r.post = post && r.parent_pre = par)
      expected (Array.to_list rows)
  in
  record "XASR rows equal Figure 2(b)" ok;

  subheader "Example 2.1: structural join vs. iterated Child joins";
  row "%8s %14s %14s %14s %14s %10s\n" "n" "stack-join(ms)" "merge-view(ms)" "theta-join(ms)"
    "iterated(ms)" "pairs";
  let consistent = ref true in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:n ~n ~labels:Generator.labels_abc () in
      let all = List.init n Fun.id in
      let t_stack =
        time (fun () -> Relkit.Structural_join.stack_join t ~ancestors:all ~descendants:all)
      in
      let xasr = Relkit.Structural_join.store t in
      let t_merge = time (fun () -> Relkit.Structural_join.descendant_view xasr) in
      let t_theta = time (fun () -> Relkit.Structural_join.descendant_view_theta xasr) in
      let t_iter = time (fun () -> Relkit.Structural_join.iterated_child_join t) in
      let pairs =
        List.length (Relkit.Structural_join.stack_join t ~ancestors:all ~descendants:all)
      in
      let ok =
        Relkit.Relation.equal
          (Relkit.Structural_join.descendant_view xasr)
          (Relkit.Structural_join.iterated_child_join t)
        && Relkit.Relation.equal
             (Relkit.Structural_join.descendant_view xasr)
             (Relkit.Structural_join.descendant_view_theta xasr)
      in
      if not ok then consistent := false;
      row "%8d %14.2f %14.2f %14.2f %14.2f %10d\n" n (ms t_stack) (ms t_merge) (ms t_theta)
        (ms t_iter) pairs)
    [ 200; 400; 800; 1600 ];
  record "all four join strategies agree" !consistent;
  row
    "shape check: the single-pass structural join dominates; avoiding the\n\
     transitive-closure computation is the point of the XASR (Section 2).\n"

(* ------------------------------------------------------------------ *)
(* Figure 3 + Example 3.3: Minoux's algorithm *)

let figure3 () =
  header "Figure 3 — Minoux's linear-time Horn-SAT algorithm";
  subheader "Example 3.3 trace";
  let f, names = Mdatalog.Examples.example_33_formula () in
  let st = Hornsat.init_state f in
  row "size:  %s\n"
    (String.concat " "
       (List.map (fun (r, s) -> Printf.sprintf "r%d=%d" r s) st.size));
  row "head:  %s\n"
    (String.concat " "
       (List.map (fun (r, h) -> Printf.sprintf "r%d=%s" r names.(h)) st.head));
  row "rules: %s\n"
    (String.concat " "
       (List.map
          (fun (p, rs) ->
            Printf.sprintf "%s=[%s]" names.(p)
              (String.concat ";" (List.map (fun r -> "r" ^ string_of_int r) rs)))
          st.rules));
  row "queue: [%s]\n" (String.concat "; " (List.map (fun v -> names.(v)) st.queue));
  let order = List.map (fun v -> names.(v)) (Hornsat.solve_order f) in
  row "derivation order: %s\n" (String.concat " " order);
  record "Example 3.3: queue = [1;2;3], derives 1..6 in order"
    (st.queue = [ 0; 1; 2 ] && order = [ "1"; "2"; "3"; "4"; "5"; "6" ]);

  subheader "scaling on derivation chains: Minoux O(m) vs naive fixpoint O(m^2)";
  (* the chain v_i <- v_{i+1} with the only fact at the end and rules stored
     in ascending order makes every naive pass derive one variable *)
  row "%10s %12s %14s %12s\n" "size" "minoux(ms)" "ns/atom" "brute(ms)";
  let series = ref [] in
  List.iter
    (fun m ->
      let f = Hornsat.create ~nvars:m in
      for i = 0 to m - 2 do
        ignore (Hornsat.add_rule f ~head:i ~body:[ i + 1 ])
      done;
      ignore (Hornsat.add_rule f ~head:(m - 1) ~body:[]);
      let t_minoux = time (fun () -> Hornsat.solve f) in
      let t_brute =
        if m <= 16_000 then ms (time (fun () -> Hornsat.solve_brute f)) else nan
      in
      let size = Hornsat.size_of_formula f in
      series := (size, t_minoux) :: !series;
      row "%10d %12.3f %14.1f %12.3f\n" size (ms t_minoux)
        (t_minoux /. float_of_int size *. 1e9)
        t_brute)
    [ 4_000; 16_000; 64_000; 256_000 ];
  let e = fitted_exponent !series in
  row "fitted exponent of Minoux: %.2f (theory: 1.00)\n" e;
  record "Minoux scales linearly (exponent < 1.35)" (e < 1.35)

(* ------------------------------------------------------------------ *)
(* Figure 4: trees have tree-width 2 *)

let figure4 () =
  header "Figure 4 — (Child, NextSibling)-trees have tree-width 2";
  let t =
    Tree.of_builder
      (Tree.Node
         ( "v",
           [
             Node ("v", [ Node ("v", []); Node ("v", []) ]);
             Node
               ( "v",
                 [
                   Node ("v", [ Node ("v", []); Node ("v", []) ]);
                   Node ("v", []);
                   Node ("v", []);
                 ] );
             Node ("v", [ Node ("v", []) ]);
             Node ("v", [ Node ("v", []); Node ("v", []) ]);
           ] ))
  in
  let g = Treewidth.Graph.of_tree_structure t in
  let d = Treewidth.Decomposition.of_data_tree t in
  row "the 15-node example: %d vertices, %d Child+NextSibling edges\n"
    (Treewidth.Graph.vertex_count g) (Treewidth.Graph.edge_count g);
  Format.printf "%a@." Treewidth.Decomposition.pp d;
  let valid = Treewidth.Decomposition.validate g d = Ok () in
  let w = Treewidth.Decomposition.width d in
  let exact = Treewidth.Decomposition.exact_treewidth g in
  row "constructed width: %d; exact tree-width: %d\n" w exact;
  record "Figure 4: decomposition valid, width 2, exact tree-width 2"
    (valid && w = 2 && exact = 2);

  subheader "random trees";
  row "%8s %18s %12s\n" "n" "constructed width" "valid";
  let all_ok = ref true in
  List.iter
    (fun n ->
      let t = Generator.random ~seed:n ~n ~labels:Generator.labels_abc () in
      let g = Treewidth.Graph.of_tree_structure t in
      let d = Treewidth.Decomposition.of_data_tree t in
      let ok = Treewidth.Decomposition.validate g d = Ok () in
      if not ok then all_ok := false;
      row "%8d %18d %12b\n" n (Treewidth.Decomposition.width d) ok)
    [ 100; 1_000; 10_000 ];
  record "width-2 decompositions valid on random trees" !all_ok
