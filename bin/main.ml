(* The `treequery` command-line interface.

   Subcommands:
     eval      parse a query (XPath / CQ / datalog) and evaluate it on a
               document (XML file, inline XML, or a generated workload)
     explain   show the engine's plan and the paper's complexity bound
     filter    stream a document through forward path subscriptions
     serve     run a request workload through the serving layer
     subscribe stream documents past a registered standing-query population
     generate  emit a synthetic XML document *)

open Cmdliner
module Engine = Treequery.Engine
module Tree = Treekit.Tree
module Nodeset = Treekit.Nodeset

(* wall-clock span durations (the default Obs clock is processor time) *)
let () = Obs.set_clock Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* document sources *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_document ~xml_file ~xml ~random ~xmark ~seed =
  match xml_file, xml, random, xmark with
  | Some path, None, None, None -> Treekit.Xml.parse (read_file path)
  | None, Some text, None, None -> Treekit.Xml.parse text
  | None, None, Some n, None ->
    Treekit.Generator.random ~seed ~n ~labels:Treekit.Generator.labels_abc ()
  | None, None, None, Some scale -> Treekit.Generator.xmark ~seed ~scale ()
  | None, None, None, None ->
    failwith "no document: use --xml-file, --xml, --random or --xmark"
  | _ -> failwith "give exactly one of --xml-file, --xml, --random, --xmark"

let xml_file_arg =
  Arg.(value & opt (some file) None & info [ "xml-file" ] ~docv:"FILE" ~doc:"XML document to query.")

let xml_arg =
  Arg.(value & opt (some string) None & info [ "xml" ] ~docv:"XML" ~doc:"Inline XML document.")

let random_arg =
  Arg.(value & opt (some int) None & info [ "random" ] ~docv:"N" ~doc:"Random tree with $(docv) nodes.")

let xmark_arg =
  Arg.(value & opt (some int) None & info [ "xmark" ] ~docv:"SCALE" ~doc:"XMark-like document at scale $(docv).")

(* query in one of the five languages *)
let parse_query ~xpath ~cq ~datalog ~positive ~axis_datalog =
  match xpath, cq, datalog, positive, axis_datalog with
  | Some q, None, None, [], None -> Engine.parse_xpath q
  | None, Some q, None, [], None -> Engine.parse_cq q
  | None, None, Some q, [], None -> Engine.parse_datalog q
  | None, None, None, (_ :: _ as qs), None -> Engine.parse_positive qs
  | None, None, None, [], Some q -> Engine.parse_axis_datalog q
  | _ ->
    failwith
      "give exactly one of --xpath, --cq, --datalog, --positive (repeatable),        --axis-datalog"

let xpath_arg =
  Arg.(value & opt (some string) None & info [ "xpath" ] ~docv:"QUERY" ~doc:"Core XPath query.")

let cq_arg =
  Arg.(value & opt (some string) None & info [ "cq" ] ~docv:"QUERY" ~doc:"Conjunctive query (datalog-rule notation).")

let datalog_arg =
  Arg.(value & opt (some string) None & info [ "datalog" ] ~docv:"PROGRAM" ~doc:"Monadic datalog program with a ?- query directive.")

let positive_arg =
  Arg.(value & opt_all string [] & info [ "positive" ] ~docv:"QUERY" ~doc:"Disjunct of a positive FO query (repeatable; the union is evaluated).")

let axis_datalog_arg =
  Arg.(value & opt (some string) None & info [ "axis-datalog" ] ~docv:"PROGRAM" ~doc:"Monadic datalog over axis relations with a ?- query directive.")

(* ------------------------------------------------------------------ *)
(* options every run-something subcommand shares: generator seed and the
   observability sinks (one spec, applied with $ common_term) *)

type common = {
  seed : int;
  trace : bool;
  stats_json : string option;
  trace_out : string option;
}

let common_term =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Record tracing spans and counters; print the span tree to stderr after the run.")
  in
  let stats_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the observability report (per-phase span durations, counters, latency histograms and per-request profiles) as JSON to $(docv); '-' for stdout.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Stream completed spans to $(docv) as Chrome trace-event JSON (open in Perfetto or chrome://tracing).")
  in
  let mk seed trace stats_json trace_out = { seed; trace; stats_json; trace_out } in
  Term.(const mk $ seed_arg $ trace_arg $ stats_json_arg $ trace_out_arg)

(* [observe common f] runs [f] with observability enabled when any sink
   asks for it, then emits the report (and the streamed Perfetto trace
   when [--trace-out] is given).  [extra] forces collection for
   subcommand-specific sinks (serve's [--metrics-out] and telemetry),
   which receive the captured report through [emit]; [augment] rewrites
   the [--stats-json] document (serve splices in its telemetry section).
   All sinks go through [Obs.Json.write_file]/[write_raw], which close
   the fd under [Fun.protect] and treat "-" as stdout.  Returns
   [f ()]'s result. *)
let observe ?(extra = false) ?(augment = fun j -> j) ?(emit = fun _ -> ()) common f =
  let observing =
    common.trace || common.stats_json <> None || common.trace_out <> None || extra
  in
  if not observing then f ()
  else begin
    Obs.set_enabled true;
    Obs.reset ();
    let sink = Option.map (fun _ -> Obs.Trace.start_stream ()) common.trace_out in
    let result = f () in
    let report = Obs.Report.capture () in
    Obs.set_enabled false;
    (match (sink, common.trace_out) with
    | Some s, Some path -> Obs.Json.write_file path (Obs.Trace.stop_stream s)
    | _ -> ());
    if common.trace then prerr_string (Obs.Report.to_text report);
    (match common.stats_json with
    | None -> ()
    | Some path -> Obs.Json.write_file path (augment (Obs.Report.to_json_value report)));
    emit report;
    result
  end

(* the error taxonomy is the same for every subcommand *)
let handle_errors f =
  try f () with
  | Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
  | Treekit.Xml.Parse_error m -> `Error (false, "XML: " ^ m)
  | Treekit.Parse_error.Error { pos; msg } ->
    `Error (false, Treekit.Parse_error.to_string ~pos ~msg)
  | Mdatalog.Parser.Syntax_error m -> `Error (false, "datalog: " ^ m)

(* ------------------------------------------------------------------ *)
(* --ops-listen: the live ops plane.  A publisher holds the latest
   immutable observability snapshot (published by the admitting domain
   with a single atomic swap); the HTTP listener serves /metrics,
   /healthz, /readyz, /statusz, /tracez and /flightz from a dedicated
   domain without ever touching serving-path state. *)

let all_strategy_names =
  String.concat ","
    (List.map Engine.strategy_name
       [
         Engine.Xpath_bottom_up; Engine.Cq_yannakakis;
         Engine.Cq_arc_consistency; Engine.Cq_rewrite;
         Engine.Datalog_hornsat; Engine.Positive_rewrite;
         Engine.Datalog_fixpoint; Engine.Xpath_fo2;
       ])

let ops_publisher () =
  Opsplane.Snapshot.create ~version:"1.0.0" ~strategies:all_strategy_names ()

let start_ops_listener ~publisher port =
  let router = Opsplane.Router.make publisher in
  let l =
    Opsplane.Listener.start ~port ~handler:(Opsplane.Router.handle router) ()
  in
  Printf.printf
    "ops:         listening on http://127.0.0.1:%d (/metrics /healthz /readyz \
     /statusz /tracez /flightz)\n\
     %!"
    (Opsplane.Listener.port l);
  l

(* ------------------------------------------------------------------ *)

let eval_cmd =
  let run xpath cq datalog positive axis_datalog xml_file xml random xmark show_labels common =
    handle_errors @@ fun () ->
    let answer, doc, q =
      observe common (fun () ->
          let doc =
            Obs.Span.with_ "load-document" (fun () ->
                load_document ~xml_file ~xml ~random ~xmark ~seed:common.seed)
          in
          let q =
            Obs.Span.with_ "parse-query" (fun () ->
                parse_query ~xpath ~cq ~datalog ~positive ~axis_datalog)
          in
          (Engine.solutions q doc, doc, q))
    in
    Printf.printf "document: %d nodes, depth %d\n" (Tree.size doc) (Tree.height doc);
    Printf.printf "strategy: %s\n" (Engine.strategy_name (Engine.plan q));
    Printf.printf "answers:  %d\n" (List.length answer);
    List.iter
      (fun tuple ->
        let cell v =
          if show_labels then Printf.sprintf "%d:%s" v (Tree.label doc v)
          else string_of_int v
        in
        print_endline
          ("  (" ^ String.concat ", " (List.map cell (Array.to_list tuple)) ^ ")"))
      answer;
    `Ok ()
  in
  let labels_arg =
    Arg.(value & flag & info [ "labels" ] ~doc:"Show node labels next to node ids.")
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a query on a document")
    Term.(
      ret
        (const run $ xpath_arg $ cq_arg $ datalog_arg $ positive_arg
       $ axis_datalog_arg $ xml_file_arg $ xml_arg $ random_arg $ xmark_arg
       $ labels_arg $ common_term))

let explain_cmd =
  let run xpath cq datalog positive axis_datalog strategy xml_file xml random
      xmark common =
    handle_errors @@ fun () ->
    let text =
      observe common (fun () ->
          let q =
            Obs.Span.with_ "parse-query" (fun () ->
                parse_query ~xpath ~cq ~datalog ~positive ~axis_datalog)
          in
          match strategy with
          | "default" -> Engine.explain q
          | "auto" ->
            (* the adaptive pick needs document statistics; a generated
               1024-node document stands in when none is given *)
            let doc =
              if xml_file = None && xml = None && random = None && xmark = None
              then
                Treekit.Generator.random ~seed:common.seed ~n:1024
                  ~labels:Treekit.Generator.labels_abc ()
              else load_document ~xml_file ~xml ~random ~xmark ~seed:common.seed
            in
            let opt = Optimizer.create ~epsilon:0.0 ~seed:common.seed () in
            let d = Optimizer.seeded_decision opt doc (Engine.prepare q) in
            Engine.explain
              ~auto:(d.Optimizer.d_strategy, Optimizer.explain_decision d)
              q
          | s -> failwith (Printf.sprintf "--strategy must be \"default\" or \"auto\" (got %S)" s))
    in
    print_string text;
    `Ok ()
  in
  let strategy_arg =
    Arg.(
      value & opt string "default"
      & info [ "strategy" ] ~docv:"MODE"
          ~doc:"\"default\" shows the planner's pick; \"auto\" additionally runs the adaptive optimizer's seeded decision (against the given document, or a generated 1024-node one) and reports the candidate arms, the pick and why.")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the evaluation plan and complexity bound")
    Term.(
      ret
        (const run $ xpath_arg $ cq_arg $ datalog_arg $ positive_arg
       $ axis_datalog_arg $ strategy_arg $ xml_file_arg $ xml_arg $ random_arg
       $ xmark_arg $ common_term))

let filter_cmd =
  let run patterns xml_file xml random xmark common =
    handle_errors @@ fun () ->
    let doc, matched =
      observe common (fun () ->
          let doc =
            Obs.Span.with_ "load-document" (fun () ->
                load_document ~xml_file ~xml ~random ~xmark ~seed:common.seed)
          in
          let engine = Streamq.Filter_engine.create () in
          List.iter
            (fun p ->
              ignore
                (Streamq.Filter_engine.subscribe engine (Streamq.Path_pattern.of_string p)))
            patterns;
          (doc, Streamq.Filter_engine.match_document engine doc))
    in
    Printf.printf "document: %d nodes, depth %d\n" (Tree.size doc) (Tree.height doc);
    List.iteri
      (fun i p ->
        Printf.printf "%-6s %s\n" (if List.mem i matched then "MATCH" else "-") p)
      patterns;
    `Ok ()
  in
  let patterns_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATTERN" ~doc:"Forward path patterns, e.g. //a/b.")
  in
  Cmd.v
    (Cmd.info "filter" ~doc:"Stream a document through path subscriptions")
    Term.(
      ret
        (const run $ patterns_arg $ xml_file_arg $ xml_arg $ random_arg $ xmark_arg
       $ common_term))

let serve_cmd =
  let run xml_file xml random xmark requests concurrency shapes cache_size ttl
      deadline_ms batch stream_prefilter workload domains wall_clock strategy
      optimizer_out metrics_out metrics_every telemetry_out residual_threshold
      flight_out dump_flight inject_overbudget ops_listen common =
    handle_errors @@ fun () ->
    let kind =
      match Serve.Workload.kind_of_string workload with
      | Ok k -> k
      | Error m -> failwith m
    in
    if domains < 1 then failwith "--domains must be >= 1";
    if metrics_every <> None && metrics_out = None && ops_listen = None then
      failwith "--metrics-every requires --metrics-out or --ops-listen";
    (* --strategy: "default" (the planner's static pick), "auto" (the
       adaptive optimizer) or a fixed strategy name to pin *)
    let strategy_mode =
      match strategy with
      | "default" -> `Default
      | "auto" -> `Auto
      | name -> (
        match Engine.strategy_of_name name with
        | Some s -> `Fixed s
        | None ->
          failwith
            (Printf.sprintf
               "unknown --strategy %S (use \"default\", \"auto\" or a strategy name)"
               name))
    in
    if optimizer_out <> None && strategy_mode <> `Auto then
      failwith "--optimizer-out requires --strategy auto";
    (* per-fingerprint telemetry rides along whenever a sink wants it:
       any telemetry flag, or --stats-json (which then carries the
       per-fingerprint summaries) *)
    let telemetry_on =
      telemetry_out <> None || flight_out <> None || dump_flight
      || inject_overbudget || metrics_every <> None || common.stats_json <> None
      || ops_listen <> None
      (* auto-routing reads the cost store's latency EWMAs, so the
         adaptive optimizer always rides with telemetry *)
      || strategy_mode = `Auto
    in
    let store =
      if telemetry_on then
        Some (Telemetry.Cost_store.create ~threshold:residual_threshold ())
      else None
    in
    let recorder =
      if telemetry_on then Some (Telemetry.Flight_recorder.create ()) else None
    in
    let optimizer =
      match strategy_mode with
      | `Auto -> Some (Optimizer.create ~seed:common.seed ?store ())
      | `Default | `Fixed _ -> None
    in
    let snapshots = ref 0 in
    (* one publisher feeds every exposition: the --metrics-out file and
       the HTTP /metrics endpoint render the identical snapshot *)
    let publisher =
      if ops_listen <> None || metrics_out <> None then Some (ops_publisher ())
      else None
    in
    let live_cache : Serve.Plan_cache.t option ref = ref None in
    let live_gauges () =
      let g = Obs.Openmetrics.gauge in
      (match !live_cache with
      | Some c ->
        let st = Serve.Plan_cache.stats c in
        [
          g ~help:"Plans currently cached." "serve_plan_cache_size"
            (float_of_int st.Serve.Plan_cache.size);
          g ~help:"Plan-cache capacity." "serve_plan_cache_capacity"
            (float_of_int st.Serve.Plan_cache.capacity);
        ]
      | None -> [])
      @ (match optimizer with
        | Some o ->
          let os = Optimizer.stats o in
          [
            g ~help:"Query shapes tracked by the adaptive optimizer."
              "serve_optimizer_entries" (float_of_int os.Optimizer.entries);
            g ~help:"Query shapes whose strategy choice has converged."
              "serve_optimizer_converged" (float_of_int os.Optimizer.converged);
          ]
        | None -> [])
      @ [ g ~help:"Serving domains (work-stealing pool size)." "serve_domains"
            (float_of_int domains) ]
    in
    let live_status () =
      [
        ("domains", string_of_int domains);
        ("workload", workload);
        ("strategy", strategy);
      ]
      @ (match !live_cache with
        | Some c ->
          let st = Serve.Plan_cache.stats c in
          let looked = st.Serve.Plan_cache.hits + st.Serve.Plan_cache.misses in
          [
            ( "cache",
              Printf.sprintf "%d/%d entries, %.1f%% hit rate"
                st.Serve.Plan_cache.size st.Serve.Plan_cache.capacity
                (100.0 *. float_of_int st.Serve.Plan_cache.hits
                /. float_of_int (max 1 looked)) );
          ]
        | None -> [])
      @
      match optimizer with
      | Some o ->
        let os = Optimizer.stats o in
        [
          ( "optimizer",
            Printf.sprintf "%d shapes, %d converged" os.Optimizer.entries
              os.Optimizer.converged );
        ]
      | None -> []
    in
    let publish ?report () =
      match publisher with
      | None -> None
      | Some p ->
        Some
          (Opsplane.Snapshot.publish ?report ?telemetry:store ?recorder
             ~gauges:(live_gauges ()) ~status:(live_status ()) p)
    in
    let write_metrics report =
      match (publish ~report (), publisher, metrics_out) with
      | Some snap, Some p, Some path ->
        Obs.Json.write_raw path (Opsplane.Snapshot.to_openmetrics p snap)
      | _ -> ()
    in
    let augment j =
      let j =
        match (store, j) with
        | Some s, Obs.Json.Obj kvs when not (Telemetry.Cost_store.is_empty s) ->
          Obs.Json.Obj (kvs @ [ ("telemetry", Telemetry.Cost_store.to_json s) ])
        | _ -> j
      in
      match (optimizer, j) with
      | Some o, Obs.Json.Obj kvs ->
        Obs.Json.Obj (kvs @ [ ("optimizer", Optimizer.to_json o) ])
      | _ -> j
    in
    (* ops scrapes want fresh snapshots even without --metrics-every:
       default a 1s publication cadence when only --ops-listen is given *)
    let tick_every =
      match metrics_every with
      | Some e -> Some e
      | None -> if ops_listen <> None then Some 1.0 else None
    in
    let listener =
      match (ops_listen, publisher) with
      | Some port, Some p ->
        (* publish seq 1 before any request so /readyz flips and early
           scrapes see the build identity over an empty report *)
        ignore (publish ());
        Some (start_ops_listener ~publisher:p port)
      | _ -> None
    in
    let run_and_report () =
    let doc, stats =
      observe
        ~extra:(metrics_out <> None || telemetry_on)
        ~augment ~emit:write_metrics common
        (fun () ->
          let doc =
            Obs.Span.with_ "load-document" (fun () ->
                load_document ~xml_file ~xml ~random ~xmark ~seed:common.seed)
          in
          let rng = Random.State.make [| common.seed; 0xda7a |] in
          let shapes = Serve.Workload.shapes ~rng ~count:shapes in
          let reqs =
            (* wall-clock runs use the seed-split stream so the request
               sequence is a pure function of the seed — replayable
               against any --domains count; the virtual-time twin keeps
               the original sequentially threaded stream bit-for-bit *)
            if wall_clock then
              Serve.Workload.requests_split ~seed:common.seed
                ~shapes:(Array.length shapes) ~count:requests kind
            else
              Serve.Workload.requests ~rng ~shapes:(Array.length shapes)
                ~count:requests kind
          in
          let cache =
            if cache_size > 0 then
              Some (Serve.Plan_cache.create ~capacity:cache_size ?ttl ())
            else None
          in
          live_cache := cache;
          let pool =
            if domains > 1 then Some (Serve.Pool.create ~domains ()) else None
          in
          (* publish the tree before worker domains read it: force the
             lazy label index and BFLR order on this domain *)
          if pool <> None then Tree.seal doc;
          let cfg =
            Serve.Server.config ?cache ~concurrency ~share:batch
              ~stream_prefilter
              ?deadline:(Option.map (fun ms -> ms /. 1000.0) deadline_ms)
              ?telemetry:store ?recorder ?optimizer
              ?force_strategy:
                (match strategy_mode with `Fixed s -> Some s | _ -> None)
              ~inject_overbudget
              ?tick_every
              ?on_tick:
                (Option.map
                   (fun _ _i _vt ->
                     incr snapshots;
                     write_metrics (Obs.Report.capture ()))
                   tick_every)
              ?pool ~wall_clock
              ?sleep:(if wall_clock then Some Unix.sleepf else None)
              ()
          in
          Fun.protect
            ~finally:(fun () -> Option.iter Serve.Pool.shutdown pool)
            (fun () -> (doc, Serve.Server.run cfg doc shapes reqs)))
    in
    Printf.printf "document:    %d nodes, depth %d\n" (Tree.size doc)
      (Tree.height doc);
    if domains > 1 || wall_clock then
      Printf.printf "domains:     %d%s\n" domains
        (if wall_clock then " (wall-clock)" else "");
    (match strategy_mode with
    | `Fixed s -> Printf.printf "strategy:    %s (pinned)\n" (Engine.strategy_name s)
    | `Default | `Auto -> ());
    print_string (Serve.Server.to_text ?telemetry:store stats);
    (* the adaptive run's routing summary: per-fingerprint convergence
       and the strategies it settled on *)
    (match optimizer with
    | None -> ()
    | Some o ->
      let os = Optimizer.stats o in
      Printf.printf
        "optimizer:   %d shapes, %d converged, %d decisions (%d exploratory)\n"
        os.Optimizer.entries os.Optimizer.converged os.Optimizer.decisions
        os.Optimizer.explorations;
      let settled =
        List.filter_map
          (fun (r : Optimizer.entry_report) ->
            match r.Optimizer.r_choice with
            | Some c when r.Optimizer.r_converged ->
              Some (r.Optimizer.r_fingerprint, c)
            | _ -> None)
          (Optimizer.report o)
      in
      List.iteri
        (fun i (fp, c) ->
          if i < 8 then Printf.printf "  %-28s -> %s\n" fp c)
        settled;
      if List.length settled > 8 then
        Printf.printf "  ... and %d more (see --optimizer-out)\n"
          (List.length settled - 8);
      match optimizer_out with
      | None -> ()
      | Some path -> Obs.Json.write_file path (Optimizer.to_json o));
    if metrics_every <> None then
      Printf.printf "metrics:     %d periodic snapshots (every %gs virtual)\n"
        !snapshots
        (Option.get metrics_every);
    (* the cost-store summaries and a flight-recorder digest, for post-hoc
       reading without re-running *)
    (match (telemetry_out, store) with
    | Some path, Some s ->
      let flight =
        match recorder with
        | None -> []
        | Some r ->
          [
            ( "flight",
              Obs.Json.Obj
                ([
                   ("capacity", Obs.Json.Num (float_of_int (Telemetry.Flight_recorder.capacity r)));
                   ("recorded", Obs.Json.Num (float_of_int (Telemetry.Flight_recorder.length r)));
                   ("total", Obs.Json.Num (float_of_int (Telemetry.Flight_recorder.total r)));
                 ]
                @
                match Telemetry.Flight_recorder.triggered r with
                | None -> []
                | Some t ->
                  [
                    ("trigger", Obs.Json.Str t);
                    ( "trigger_count",
                      Obs.Json.Num (float_of_int (Telemetry.Flight_recorder.trigger_count r)) );
                  ]) );
          ]
      in
      Obs.Json.write_file path
        (Obs.Json.Obj (("cost_store", Telemetry.Cost_store.to_json s) :: flight))
    | _ -> ());
    (* dump the ring buffer when something went wrong (or on demand) *)
    (match recorder with
    | Some r -> (
      let trigger = Telemetry.Flight_recorder.triggered r in
      match (flight_out, dump_flight || trigger <> None) with
      | Some path, true ->
        Obs.Json.write_file path (Telemetry.Flight_recorder.to_json r);
        Printf.printf "flight:      dumped %d entries to %s (trigger: %s)\n"
          (Telemetry.Flight_recorder.length r)
          path
          (Option.value ~default:"on-demand" trigger)
      | Some path, false ->
        Printf.printf "flight:      no trigger fired; %s not written\n" path
      | None, _ -> ())
    | None -> ());
    if stats.Serve.Server.errors > 0 then
      `Error (false, Printf.sprintf "%d requests failed" stats.Serve.Server.errors)
    else `Ok ()
    in
    (match listener with
    | None -> run_and_report ()
    | Some l ->
      Fun.protect ~finally:(fun () -> Opsplane.Listener.stop l) run_and_report)
  in
  let requests_arg =
    Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"N" ~doc:"Number of requests to serve.")
  in
  let concurrency_arg =
    Arg.(value & opt int 1 & info [ "concurrency" ] ~docv:"N" ~doc:"Requests admitted (in flight) together.")
  in
  let shapes_arg =
    Arg.(value & opt int 100 & info [ "shapes" ] ~docv:"N" ~doc:"Distinct query shapes in the workload.")
  in
  let cache_size_arg =
    Arg.(value & opt int 128 & info [ "cache-size" ] ~docv:"N" ~doc:"Plan-cache capacity; 0 disables caching.")
  in
  let ttl_arg =
    Arg.(value & opt (some float) None & info [ "ttl" ] ~docv:"SECONDS" ~doc:"Plan-cache entry time-to-live.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline; enables admission control (reject \"degraded: naive bound exceeded\") and open-loop shedding.")
  in
  let batch_arg =
    Arg.(value & flag & info [ "batch" ] ~doc:"Share work across in-flight requests (plan dedup, grouped label seed scans).")
  in
  let stream_prefilter_arg =
    Arg.(value & flag & info [ "stream-prefilter" ] ~doc:"With --batch: decide the streamable queries of each in-flight group in one SAX pass, short-circuiting non-matching ones to empty answers (pays off when evaluations are expensive or answers are discarded).")
  in
  let workload_arg =
    Arg.(value & opt string "closed" & info [ "workload" ] ~docv:"KIND" ~doc:"\"closed\" (next request after the previous answer) or \"open:<rate>\" (fixed arrival rate in requests/s).")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Execute each chunk's admitted requests in parallel on $(docv) OCaml domains (a work-stealing pool; the calling domain participates). 1 keeps the sequential loop.")
  in
  let wall_clock_arg =
    Arg.(value & flag & info [ "wall-clock" ] ~doc:"Honour open-loop arrival times in real time (sleeping between arrivals) instead of the deterministic virtual clock, and draw the request stream by seed-splitting so it is identical for every --domains count.")
  in
  let strategy_arg =
    Arg.(value & opt string "default" & info [ "strategy" ] ~docv:"MODE" ~doc:"\"default\" uses the planner's static pick per query; \"auto\" routes each shape through the adaptive optimizer (seeded cost estimates refined online by observed latency, converged picks persisted in the plan cache); a strategy name (e.g. \"bottom-up-xpath\") pins every shape that strategy can evaluate.")
  in
  let optimizer_out_arg =
    Arg.(value & opt (some string) None & info [ "optimizer-out" ] ~docv:"FILE" ~doc:"With --strategy auto: write the optimizer's per-fingerprint arm table (seeded estimates, trials, latency EWMAs, converged choices) as JSON to $(docv); '-' for stdout.")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write an OpenMetrics text exposition of the run's counters, latency histograms and per-fingerprint latency summaries to $(docv).")
  in
  let metrics_every_arg =
    Arg.(value & opt (some float) None & info [ "metrics-every" ] ~docv:"SECONDS" ~doc:"With --metrics-out: overwrite the exposition every $(docv) seconds of virtual serving time (deterministic under the discrete-event clock), not just once at end of run.")
  in
  let telemetry_out_arg =
    Arg.(value & opt (some string) None & info [ "telemetry-out" ] ~docv:"FILE" ~doc:"Write the per-fingerprint cost-store summaries (latency sketch quantiles, observed vs predicted cost, residual violations) and a flight-recorder digest as JSON to $(docv); '-' for stdout.")
  in
  let residual_threshold_arg =
    Arg.(value & opt float 1.0 & info [ "residual-threshold" ] ~docv:"RATIO" ~doc:"Observed/predicted cost ratio above which a served request counts as a residual violation (and triggers the flight recorder).")
  in
  let flight_out_arg =
    Arg.(value & opt (some string) None & info [ "flight-out" ] ~docv:"FILE" ~doc:"Dump the flight recorder (ring buffer of recent request profiles) to $(docv) when a shed/degrade/residual-violation trigger fired during the run, or unconditionally with --dump-flight.")
  in
  let dump_flight_arg =
    Arg.(value & flag & info [ "dump-flight" ] ~doc:"Write the flight-recorder dump even when no trigger fired.")
  in
  let inject_overbudget_arg =
    Arg.(value & flag & info [ "inject-overbudget" ] ~doc:"Fault injection: burn un-priced counter work inside every served request so its observed cost exceeds the admission bound; the run must then trip the residual gate (used by the telemetry smoke tests).")
  in
  let ops_listen_arg =
    Arg.(value & opt (some int) None & info [ "ops-listen" ] ~docv:"PORT" ~doc:"Serve the live ops plane on http://127.0.0.1:$(docv) for the duration of the run: /metrics (OpenMetrics), /healthz, /readyz, /statusz, /tracez and /flightz, fed by lock-free snapshots published on the --metrics-every cadence (default 1s). 0 binds an ephemeral port (printed at startup).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a query workload against one document through the plan cache and batch executor")
    Term.(
      ret
        (const run $ xml_file_arg $ xml_arg $ random_arg $ xmark_arg
       $ requests_arg $ concurrency_arg $ shapes_arg $ cache_size_arg
       $ ttl_arg $ deadline_arg $ batch_arg $ stream_prefilter_arg
       $ workload_arg $ domains_arg $ wall_clock_arg $ strategy_arg
       $ optimizer_out_arg $ metrics_out_arg $ metrics_every_arg
       $ telemetry_out_arg $ residual_threshold_arg $ flight_out_arg
       $ dump_flight_arg $ inject_overbudget_arg $ ops_listen_arg
       $ common_term))

(* ------------------------------------------------------------------ *)
(* subscribe: the serving model inverted — a churning population of
   registered standing queries, a stream of generated documents, one SAX
   pass per document through the shared Subscribe.Index *)

let subscribe_cmd =
  let run registrations docs churn scale domains one_at_a_time ops_listen
      common =
    handle_errors @@ fun () ->
    if registrations < 1 then failwith "--registrations must be >= 1";
    if docs < 1 then failwith "--docs must be >= 1";
    if churn < 0.0 || churn >= 1.0 then failwith "--churn must be in [0, 1)";
    if domains < 1 then failwith "--domains must be >= 1";
    let pool =
      if domains > 1 then Some (Serve.Pool.create ~domains ()) else None
    in
    let summary = ref None in
    let augment j =
      match (!summary, j) with
      | Some s, Obs.Json.Obj kvs ->
        Obs.Json.Obj (kvs @ [ ("subscribe", Serve.Ingest.summary_json s) ])
      | _ -> j
    in
    let publisher = Option.map (fun _ -> ops_publisher ()) ops_listen in
    (* publish from the ingest loop's on_chunk hook, rate-limited so a
       small-document run doesn't spend its time freezing reports *)
    let last_pub = ref neg_infinity in
    let publish ?(force = false) ~docs_done ~fired () =
      match publisher with
      | None -> ()
      | Some p ->
        let now = Unix.gettimeofday () in
        if force || now -. !last_pub >= 0.25 then begin
          last_pub := now;
          ignore
            (Opsplane.Snapshot.publish
               ~gauges:
                 [
                   Obs.Openmetrics.gauge ~help:"Documents matched so far."
                     "subscribe_docs_matched" (float_of_int docs_done);
                   Obs.Openmetrics.gauge
                     ~help:"Subscription firings so far." "subscribe_fired"
                     (float_of_int fired);
                 ]
               ~status:
                 [
                   ("domains", string_of_int domains);
                   ("registrations", string_of_int registrations);
                   ("docs", Printf.sprintf "%d/%d matched" docs_done docs);
                   ("fired", string_of_int fired);
                 ]
               p)
        end
    in
    let listener =
      match (ops_listen, publisher) with
      | Some port, Some p ->
        publish ~force:true ~docs_done:0 ~fired:0 ();
        Some (start_ops_listener ~publisher:p port)
      | _ -> None
    in
    let s =
      observe ~extra:(ops_listen <> None) ~augment common (fun () ->
          Fun.protect
            ~finally:(fun () -> Option.iter Serve.Pool.shutdown pool)
            (fun () ->
              let s =
                Serve.Ingest.run
                  {
                    Serve.Ingest.seed = common.seed;
                    registrations;
                    docs;
                    churn;
                    scale;
                    pool;
                    one_at_a_time;
                    on_chunk =
                      (match publisher with
                      | Some _ ->
                        Some (fun d f -> publish ~docs_done:d ~fired:f ())
                      | None -> None);
                  }
              in
              summary := Some s;
              s))
    in
    publish ~force:true ~docs_done:s.Serve.Ingest.docs_matched
      ~fired:s.Serve.Ingest.fired_total ();
    Option.iter Opsplane.Listener.stop listener;
    let open Serve.Ingest in
    Printf.printf "registrations: %d events (%d register, %d unregister, %d live)\n"
      s.events s.registered s.unregistered s.live;
    Printf.printf "index:       %d entries (dedup %d ids), %d trie states%s\n"
      s.entries s.live s.trie_states
      (if one_at_a_time then " [one-at-a-time twin]" else "");
    List.iter
      (fun (cls, n) -> if n > 0 then Printf.printf "  class %-10s %d\n" cls n)
      s.class_counts;
    if domains > 1 then Printf.printf "domains:     %d\n" domains;
    Printf.printf "documents:   %d matched (xmark scale %d)\n" s.docs_matched scale;
    Printf.printf "fired:       %d subscription firings (%.1f per doc)\n"
      s.fired_total
      (float_of_int s.fired_total /. float_of_int (max 1 s.docs_matched));
    if not one_at_a_time then
      Printf.printf "active work: %d trie state activations (%.1f per doc)\n"
        s.active_work
        (float_of_int s.active_work /. float_of_int (max 1 s.docs_matched));
    Printf.printf "elapsed:     %.3fs\n" s.elapsed;
    `Ok ()
  in
  let registrations_arg =
    Arg.(value & opt int 1000 & info [ "registrations" ] ~docv:"N" ~doc:"Length of the registration event stream (register/unregister events; the live population is about $(docv)·(1-churn)).")
  in
  let docs_arg =
    Arg.(value & opt int 100 & info [ "docs" ] ~docv:"M" ~doc:"Number of generated documents streamed past the index.")
  in
  let churn_arg =
    Arg.(value & opt float 0.0 & info [ "churn" ] ~docv:"R" ~doc:"Probability in [0,1) that a registration event is an unregistration of an earlier subscription; with $(docv) > 0 the event stream is interleaved between document chunks (mid-stream churn).")
  in
  let scale_arg =
    Arg.(value & opt int 2 & info [ "scale" ] ~docv:"SCALE" ~doc:"XMark scale of each generated document (about 36·$(docv) nodes).")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Match each chunk of documents in parallel on $(docv) OCaml domains, one index session per slot; 1 keeps the sequential loop.")
  in
  let one_at_a_time_arg =
    Arg.(value & flag & info [ "one-at-a-time" ] ~doc:"Differential twin: evaluate every live registration's compiled plan against each document instead of the shared index (same fired counts, per-document cost proportional to registrations).")
  in
  let ops_listen_arg =
    Arg.(value & opt (some int) None & info [ "ops-listen" ] ~docv:"PORT" ~doc:"Serve the live ops plane on http://127.0.0.1:$(docv) for the duration of the run (snapshots published per matched document chunk). 0 binds an ephemeral port.")
  in
  Cmd.v
    (Cmd.info "subscribe"
       ~doc:"Stream generated documents past a churning population of registered standing queries (pub/sub matching through the shared subscription index)")
    Term.(
      ret
        (const run $ registrations_arg $ docs_arg $ churn_arg $ scale_arg
       $ domains_arg $ one_at_a_time_arg $ ops_listen_arg $ common_term))

let check_cmd =
  let run cases from max_nodes oracle_names list_oracles inject failures_out common =
    handle_errors @@ fun () ->
    if list_oracles then begin
      List.iter
        (fun (o : Check.Oracles.t) ->
          Printf.printf "%-18s %s\n" o.name o.theorem)
        Check.Oracles.all;
      `Ok ()
    end
    else begin
      let named =
        match oracle_names with
        | [] -> Check.Oracles.all
        | names ->
          List.map
            (fun n ->
              match Check.Oracles.find n with
              | Some o -> o
              | None when n = Check.Fault.oracle.Check.Oracles.name ->
                Check.Fault.oracle
              | None when n = Check.Fault.control.Check.Oracles.name ->
                Check.Fault.control
              | None ->
                failwith
                  (Printf.sprintf "unknown oracle %s (try --list-oracles)" n))
            names
      in
      let oracles = if inject then named @ [ Check.Fault.oracle ] else named in
      let cfg =
        {
          Check.Runner.default with
          seed = common.seed;
          cases;
          from;
          max_nodes;
          oracles;
        }
      in
      let stats = observe common (fun () -> Check.Runner.run cfg) in
      print_string (Check.Runner.to_text stats);
      (match failures_out with
      | None -> ()
      | Some path ->
        Obs.Json.write_raw path
          (String.concat ""
             (List.map
                (fun (d : Check.Runner.discrepancy) ->
                  Printf.sprintf
                    "treequery check --seed %d --from %d --cases 1 --oracles %s\n"
                    d.seed d.case_index d.oracle_name)
                stats.Check.Runner.discrepancies)));
      if Check.Runner.discrepancy_count stats = 0 then `Ok ()
      else `Error (false, "differential check found discrepancies")
    end
  in
  let cases_arg =
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc:"Number of case indices to run per oracle.")
  in
  let from_arg =
    Arg.(value & opt int 0 & info [ "from" ] ~docv:"K" ~doc:"First case index (repro lines use this to replay one case).")
  in
  let max_nodes_arg =
    Arg.(value & opt int 40 & info [ "max-nodes" ] ~docv:"N" ~doc:"Tree-size ceiling (per-oracle caps still apply below it).")
  in
  let oracles_arg =
    Arg.(value & opt_all string [] & info [ "oracles" ] ~docv:"NAME" ~doc:"Run only these oracles (repeatable; default: the full registry).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list-oracles" ] ~doc:"List registered oracles and the theorems they guard, then exit.")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject" ] ~doc:"Also run the fault-injection oracle (a deliberately broken intersection kernel); the run is then expected to fail.")
  in
  let failures_out_arg =
    Arg.(value & opt (some string) None & info [ "failures-out" ] ~docv:"FILE" ~doc:"Write one replay command line per discrepancy to $(docv) (for CI artifacts).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Cross-check every engine against its independent twin on random cases")
    Term.(
      ret
        (const run $ cases_arg $ from_arg $ max_nodes_arg $ oracles_arg
       $ list_arg $ inject_arg $ failures_out_arg $ common_term))

let attest_cmd =
  let run tolerance out inject list_bounds common =
    handle_errors @@ fun () ->
    if list_bounds then begin
      List.iter
        (fun (b : Obs.Bound.t) ->
          Printf.printf "%-24s %-24s vs %-18s <= n^%.1f  %s\n" b.Obs.Bound.id
            b.Obs.Bound.counter b.Obs.Bound.term b.Obs.Bound.exponent
            b.Obs.Bound.claim)
        (Obs.Bound.all ());
      `Ok ()
    end
    else begin
      let outcomes =
        observe common (fun () -> Attest.run ~inject ~seed:common.seed ~tolerance ())
      in
      print_string (Attest.to_text outcomes);
      Obs.Json.write_file out (Attest.to_json ~seed:common.seed ~tolerance outcomes);
      Printf.printf "report written to %s\n" out;
      if Attest.all_ok outcomes then `Ok ()
      else `Error (false, "a fitted slope exceeds its claimed exponent")
    end
  in
  let tolerance_arg =
    Arg.(value & opt float 0.15 & info [ "tolerance" ] ~docv:"T" ~doc:"Slack added to each claimed exponent before a fitted slope counts as a violation.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_pr5.json" & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the attestation report.")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject" ] ~doc:"Also sweep a deliberately superlinear fault counter; the run is then expected to fail.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list-bounds" ] ~doc:"List the registered complexity bounds and the claims they attest, then exit.")
  in
  Cmd.v
    (Cmd.info "attest"
       ~doc:"Fit scaling sweeps against the paper's complexity claims and fail on a superlinear regression")
    Term.(ret (const run $ tolerance_arg $ out_arg $ inject_arg $ list_arg $ common_term))

let generate_cmd =
  let run random xmark common =
    handle_errors @@ fun () ->
    let doc =
      load_document ~xml_file:None ~xml:None ~random ~xmark ~seed:common.seed
    in
    print_endline (Treekit.Xml.to_string doc);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit a synthetic XML document")
    Term.(ret (const run $ random_arg $ xmark_arg $ common_term))

let () =
  let doc = "process queries on tree-structured data efficiently" in
  let info = Cmd.info "treequery" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            eval_cmd; explain_cmd; filter_cmd; serve_cmd; subscribe_cmd;
            generate_cmd; check_cmd; attest_cmd;
          ]))
