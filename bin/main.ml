(* The `treequery` command-line interface.

   Subcommands:
     eval      parse a query (XPath / CQ / datalog) and evaluate it on a
               document (XML file, inline XML, or a generated workload)
     explain   show the engine's plan and the paper's complexity bound
     filter    stream a document through forward path subscriptions
     generate  emit a synthetic XML document *)

open Cmdliner
module Engine = Treequery.Engine
module Tree = Treekit.Tree
module Nodeset = Treekit.Nodeset

(* wall-clock span durations (the default Obs clock is processor time) *)
let () = Obs.set_clock Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* document sources *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_document ~xml_file ~xml ~random ~xmark ~seed =
  match xml_file, xml, random, xmark with
  | Some path, None, None, None -> Treekit.Xml.parse (read_file path)
  | None, Some text, None, None -> Treekit.Xml.parse text
  | None, None, Some n, None ->
    Treekit.Generator.random ~seed ~n ~labels:Treekit.Generator.labels_abc ()
  | None, None, None, Some scale -> Treekit.Generator.xmark ~seed ~scale ()
  | None, None, None, None ->
    failwith "no document: use --xml-file, --xml, --random or --xmark"
  | _ -> failwith "give exactly one of --xml-file, --xml, --random, --xmark"

let xml_file_arg =
  Arg.(value & opt (some file) None & info [ "xml-file" ] ~docv:"FILE" ~doc:"XML document to query.")

let xml_arg =
  Arg.(value & opt (some string) None & info [ "xml" ] ~docv:"XML" ~doc:"Inline XML document.")

let random_arg =
  Arg.(value & opt (some int) None & info [ "random" ] ~docv:"N" ~doc:"Random tree with $(docv) nodes.")

let xmark_arg =
  Arg.(value & opt (some int) None & info [ "xmark" ] ~docv:"SCALE" ~doc:"XMark-like document at scale $(docv).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")

(* query in one of the five languages *)
let parse_query ~xpath ~cq ~datalog ~positive ~axis_datalog =
  match xpath, cq, datalog, positive, axis_datalog with
  | Some q, None, None, [], None -> Engine.parse_xpath q
  | None, Some q, None, [], None -> Engine.parse_cq q
  | None, None, Some q, [], None -> Engine.parse_datalog q
  | None, None, None, (_ :: _ as qs), None -> Engine.parse_positive qs
  | None, None, None, [], Some q -> Engine.parse_axis_datalog q
  | _ ->
    failwith
      "give exactly one of --xpath, --cq, --datalog, --positive (repeatable),        --axis-datalog"

let xpath_arg =
  Arg.(value & opt (some string) None & info [ "xpath" ] ~docv:"QUERY" ~doc:"Core XPath query.")

let cq_arg =
  Arg.(value & opt (some string) None & info [ "cq" ] ~docv:"QUERY" ~doc:"Conjunctive query (datalog-rule notation).")

let datalog_arg =
  Arg.(value & opt (some string) None & info [ "datalog" ] ~docv:"PROGRAM" ~doc:"Monadic datalog program with a ?- query directive.")

let positive_arg =
  Arg.(value & opt_all string [] & info [ "positive" ] ~docv:"QUERY" ~doc:"Disjunct of a positive FO query (repeatable; the union is evaluated).")

let axis_datalog_arg =
  Arg.(value & opt (some string) None & info [ "axis-datalog" ] ~docv:"PROGRAM" ~doc:"Monadic datalog over axis relations with a ?- query directive.")

(* ------------------------------------------------------------------ *)
(* observability plumbing shared by the eval and filter subcommands *)

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Record tracing spans and counters; print the span tree to stderr after the run.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the observability report (per-phase span durations and counters) as JSON to $(docv); '-' for stdout.")

(* [observe ~trace ~stats_json f] runs [f] with observability enabled when
   either flag asks for it, then emits the report.  Returns [f ()]'s
   result. *)
let observe ~trace ~stats_json f =
  let observing = trace || stats_json <> None in
  if not observing then f ()
  else begin
    Obs.set_enabled true;
    Obs.reset ();
    let result = f () in
    let report = Obs.Report.capture () in
    Obs.set_enabled false;
    if trace then prerr_string (Obs.Report.to_text report);
    (match stats_json with
    | None -> ()
    | Some "-" -> print_endline (Obs.Report.to_json report)
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Obs.Report.to_json report);
          output_char oc '\n'));
    result
  end

(* ------------------------------------------------------------------ *)

let eval_cmd =
  let run xpath cq datalog positive axis_datalog xml_file xml random xmark seed show_labels trace stats_json =
    try
      let answer, doc, q =
        observe ~trace ~stats_json (fun () ->
            let doc =
              Obs.Span.with_ "load-document" (fun () ->
                  load_document ~xml_file ~xml ~random ~xmark ~seed)
            in
            let q =
              Obs.Span.with_ "parse-query" (fun () ->
                  parse_query ~xpath ~cq ~datalog ~positive ~axis_datalog)
            in
            (Engine.solutions q doc, doc, q))
      in
      Printf.printf "document: %d nodes, depth %d\n" (Tree.size doc) (Tree.height doc);
      Printf.printf "strategy: %s\n" (Engine.strategy_name (Engine.plan q));
      Printf.printf "answers:  %d\n" (List.length answer);
      List.iter
        (fun tuple ->
          let cell v =
            if show_labels then Printf.sprintf "%d:%s" v (Tree.label doc v)
            else string_of_int v
          in
          print_endline
            ("  (" ^ String.concat ", " (List.map cell (Array.to_list tuple)) ^ ")"))
        answer;
      `Ok ()
    with
    | Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
    | Treekit.Xml.Parse_error m -> `Error (false, "XML: " ^ m)
    | Treekit.Parse_error.Error { pos; msg } ->
      `Error (false, Treekit.Parse_error.to_string ~pos ~msg)
    | Mdatalog.Parser.Syntax_error m -> `Error (false, "datalog: " ^ m)
  in
  let labels_arg =
    Arg.(value & flag & info [ "labels" ] ~doc:"Show node labels next to node ids.")
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate a query on a document")
    Term.(
      ret
        (const run $ xpath_arg $ cq_arg $ datalog_arg $ positive_arg
       $ axis_datalog_arg $ xml_file_arg $ xml_arg $ random_arg $ xmark_arg
       $ seed_arg $ labels_arg $ trace_arg $ stats_json_arg))

let explain_cmd =
  let run xpath cq datalog positive axis_datalog =
    try
      let q = parse_query ~xpath ~cq ~datalog ~positive ~axis_datalog in
      print_string (Engine.explain q);
      `Ok ()
    with
    | Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
    | Treekit.Parse_error.Error { pos; msg } ->
      `Error (false, Treekit.Parse_error.to_string ~pos ~msg)
    | Mdatalog.Parser.Syntax_error m -> `Error (false, "datalog: " ^ m)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the evaluation plan and complexity bound")
    Term.(
      ret (const run $ xpath_arg $ cq_arg $ datalog_arg $ positive_arg $ axis_datalog_arg))

let filter_cmd =
  let run patterns xml_file xml random xmark seed trace stats_json =
    try
      let doc, matched =
        observe ~trace ~stats_json (fun () ->
            let doc =
              Obs.Span.with_ "load-document" (fun () ->
                  load_document ~xml_file ~xml ~random ~xmark ~seed)
            in
            let engine = Streamq.Filter_engine.create () in
            List.iter
              (fun p ->
                ignore
                  (Streamq.Filter_engine.subscribe engine (Streamq.Path_pattern.of_string p)))
              patterns;
            (doc, Streamq.Filter_engine.match_document engine doc))
      in
      Printf.printf "document: %d nodes, depth %d\n" (Tree.size doc) (Tree.height doc);
      List.iteri
        (fun i p ->
          Printf.printf "%-6s %s\n" (if List.mem i matched then "MATCH" else "-") p)
        patterns;
      `Ok ()
    with
    | Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
    | Treekit.Parse_error.Error { pos; msg } ->
      `Error (false, Treekit.Parse_error.to_string ~pos ~msg)
    | Treekit.Xml.Parse_error m -> `Error (false, "XML: " ^ m)
  in
  let patterns_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATTERN" ~doc:"Forward path patterns, e.g. //a/b.")
  in
  Cmd.v
    (Cmd.info "filter" ~doc:"Stream a document through path subscriptions")
    Term.(
      ret
        (const run $ patterns_arg $ xml_file_arg $ xml_arg $ random_arg $ xmark_arg
       $ seed_arg $ trace_arg $ stats_json_arg))

let check_cmd =
  let run seed cases from max_nodes oracle_names list_oracles inject
      failures_out trace stats_json =
    try
      if list_oracles then begin
        List.iter
          (fun (o : Check.Oracles.t) ->
            Printf.printf "%-18s %s\n" o.name o.theorem)
          Check.Oracles.all;
        `Ok ()
      end
      else begin
        let named =
          match oracle_names with
          | [] -> Check.Oracles.all
          | names ->
            List.map
              (fun n ->
                match Check.Oracles.find n with
                | Some o -> o
                | None when n = Check.Fault.oracle.Check.Oracles.name ->
                  Check.Fault.oracle
                | None when n = Check.Fault.control.Check.Oracles.name ->
                  Check.Fault.control
                | None ->
                  failwith
                    (Printf.sprintf "unknown oracle %s (try --list-oracles)" n))
              names
        in
        let oracles = if inject then named @ [ Check.Fault.oracle ] else named in
        let cfg =
          {
            Check.Runner.default with
            seed;
            cases;
            from;
            max_nodes;
            oracles;
          }
        in
        let stats = observe ~trace ~stats_json (fun () -> Check.Runner.run cfg) in
        print_string (Check.Runner.to_text stats);
        (match failures_out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              List.iter
                (fun (d : Check.Runner.discrepancy) ->
                  Printf.fprintf oc
                    "treequery check --seed %d --from %d --cases 1 --oracles %s\n"
                    d.seed d.case_index d.oracle_name)
                stats.Check.Runner.discrepancies));
        if Check.Runner.discrepancy_count stats = 0 then `Ok ()
        else `Error (false, "differential check found discrepancies")
      end
    with Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
  in
  let cases_arg =
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc:"Number of case indices to run per oracle.")
  in
  let from_arg =
    Arg.(value & opt int 0 & info [ "from" ] ~docv:"K" ~doc:"First case index (repro lines use this to replay one case).")
  in
  let max_nodes_arg =
    Arg.(value & opt int 40 & info [ "max-nodes" ] ~docv:"N" ~doc:"Tree-size ceiling (per-oracle caps still apply below it).")
  in
  let oracles_arg =
    Arg.(value & opt_all string [] & info [ "oracles" ] ~docv:"NAME" ~doc:"Run only these oracles (repeatable; default: the full registry).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list-oracles" ] ~doc:"List registered oracles and the theorems they guard, then exit.")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject" ] ~doc:"Also run the fault-injection oracle (a deliberately broken intersection kernel); the run is then expected to fail.")
  in
  let failures_out_arg =
    Arg.(value & opt (some string) None & info [ "failures-out" ] ~docv:"FILE" ~doc:"Write one replay command line per discrepancy to $(docv) (for CI artifacts).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Cross-check every engine against its independent twin on random cases")
    Term.(
      ret
        (const run $ seed_arg $ cases_arg $ from_arg $ max_nodes_arg
       $ oracles_arg $ list_arg $ inject_arg $ failures_out_arg $ trace_arg
       $ stats_json_arg))

let generate_cmd =
  let run random xmark seed =
    try
      let doc = load_document ~xml_file:None ~xml:None ~random ~xmark ~seed in
      print_endline (Treekit.Xml.to_string doc);
      `Ok ()
    with Failure m | Invalid_argument m | Sys_error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit a synthetic XML document")
    Term.(ret (const run $ random_arg $ xmark_arg $ seed_arg))

let () =
  let doc = "process queries on tree-structured data efficiently" in
  let info = Cmd.info "treequery" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ eval_cmd; explain_cmd; filter_cmd; generate_cmd; check_cmd ]))
