(* Selective dissemination of information (SDI) — the stream-processing
   application from the paper's introduction: many subscribers register
   path queries; each incoming document is scanned ONCE, in document order,
   with memory bounded by the document depth, and routed to the subscribers
   whose query matches.

   Run with:  dune exec examples/dissemination.exe *)

open Treekit

let subscriptions =
  [
    ("alice", "//open_auction//bidder");
    ("bob", "/regions//item");
    ("carol", "//person/profile");
    ("dave", "//closed_auction/price");
    ("erin", "//category/name");
    ("frank", "//annotation//zzz");
  ]

let () =
  (* register the subscriptions *)
  let engine = Streamq.Filter_engine.create () in
  let ids =
    List.map
      (fun (who, pattern) ->
        let id =
          Streamq.Filter_engine.subscribe engine (Streamq.Path_pattern.of_string pattern)
        in
        (id, who, pattern))
      subscriptions
  in
  Printf.printf "%d subscriptions registered.\n\n" (List.length ids);

  (* a stream of incoming documents (XMark-like auction sites of varying
     size and content) *)
  let documents =
    List.map (fun seed -> (seed, Generator.xmark ~seed ~scale:(2 + (seed mod 5)) ())) [ 1; 2; 3; 4; 5 ]
  in
  List.iter
    (fun (seed, doc) ->
      let matched = Streamq.Filter_engine.match_document engine doc in
      Printf.printf "document #%d (%d nodes, depth %d) -> deliver to: %s\n" seed
        (Tree.size doc) (Tree.height doc)
        (if matched = [] then "(nobody)"
         else
           String.concat ", "
             (List.map
                (fun id ->
                  let _, who, _ = List.find (fun (i, _, _) -> i = id) ids in
                  who)
                matched)))
    documents;

  (* the streaming guarantee: peak memory is one small frame per level of
     the document, never proportional to its size (Section 7's depth lower
     bound is tight) *)
  print_newline ();
  let wide = Generator.xmark ~seed:42 ~scale:60 () in
  let deep = Generator.random_deep ~seed:42 ~n:Tree.(size wide) ~labels:[| "a"; "b" |] ~descend_bias:0.9 () in
  List.iter
    (fun (name, doc) ->
      let stats =
        Streamq.Path_matcher.run doc
          (Streamq.Path_pattern.of_string "//a//b")
          ~on_match:(fun _ -> ())
      in
      Printf.printf "%-14s n=%6d depth=%5d -> peak stack frames: %d\n" name
        (Tree.size doc) (Tree.height doc) stats.peak_depth)
    [ ("wide (xmark)", wide); ("deep (skewed)", deep) ];

  (* cross-check against the in-memory engine *)
  let doc = Generator.xmark ~seed:9 ~scale:4 () in
  let consistent =
    List.for_all
      (fun (_, pattern) ->
        let p = Streamq.Path_pattern.of_string pattern in
        Nodeset.equal
          (Streamq.Path_matcher.select doc p)
          (Xpath.Eval.query doc (Streamq.Path_pattern.to_xpath p)))
      subscriptions
  in
  Printf.printf "\nstreaming results equal the in-memory XPath engine: %b\n" consistent
