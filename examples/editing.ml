(* Querying a document that is being edited — the update side of Section 2's
   labeling schemes.  A feed of auction events (new items, new bids) grows a
   document through Treekit.Dynlabel; structural tests stay O(1) under the
   maintained order labels, and periodic snapshots are queried with the
   static engines.

   Run with:  dune exec examples/editing.exe *)

open Treekit
module D = Dynlabel

let () =
  let rng = Random.State.make [| 2026 |] in
  (* skeleton: site(regions(africa, asia), open_auctions) *)
  let doc = D.create "site" in
  let site = D.root doc in
  let regions = D.insert_last_child doc site "regions" in
  let region_nodes =
    Array.map (D.insert_last_child doc regions) [| "africa"; "asia" |]
  in
  let auctions = D.insert_last_child doc site "open_auctions" in
  let items = ref [] in

  (* replay a feed of 50 000 events *)
  let t0 = Sys.time () in
  let n_events = 50_000 in
  for _ = 1 to n_events do
    if !items = [] || Random.State.int rng 3 = 0 then begin
      let region = region_nodes.(Random.State.int rng 2) in
      let item = D.insert_last_child doc region "item" in
      ignore (D.insert_last_child doc item "name");
      let auction = D.insert_last_child doc auctions "open_auction" in
      ignore (D.insert_last_child doc auction "initial");
      items := item :: !items
    end
    else begin
      let item = List.nth !items (Random.State.int rng (List.length !items)) in
      ignore (D.insert_last_child doc item "bid")
    end
  done;
  let dt = (Sys.time () -. t0) *. 1000.0 in
  Printf.printf "replayed %d feed events -> document of %d nodes in %.1f ms\n"
    n_events (D.size doc) dt;
  Printf.printf "order-maintenance relabelings: %d positions total (%.4f per event)\n"
    (D.relabel_count doc)
    (float_of_int (D.relabel_count doc) /. float_of_int n_events);

  (* O(1) structural tests on the live document *)
  let some_item = List.hd !items in
  Printf.printf "\nlive tests (no traversal, label comparisons only):\n";
  Printf.printf "  regions is an ancestor of the last item: %b\n"
    (D.is_ancestor doc regions some_item);
  Printf.printf "  the auctions section follows the regions section: %b\n"
    (D.is_following doc regions auctions);

  (* freeze and query with the full engines *)
  let tree, _ = D.snapshot doc in
  let busy = Xpath.Parser.parse "//item[bid][bid/following-sibling::bid]" in
  let t0 = Sys.time () in
  let answer = Xpath.Eval.query tree busy in
  let dt = (Sys.time () -. t0) *. 1000.0 in
  Printf.printf
    "\nsnapshot query //item[bid][bid/following-sibling::bid] (items with >= 2 bids):\n";
  Printf.printf "  %d of %d items, evaluated in %.2f ms on %d nodes\n"
    (Nodeset.cardinal answer)
    (List.length !items) dt (Tree.size tree);

  (* the same snapshot through the planner *)
  let q =
    Treequery.Engine.parse_cq
      {| q(I) :- lab(I, "item"), child(I, B), lab(B, "bid"), next-sibling(B, C), lab(C, "bid"). |}
  in
  Printf.printf "  cross-check via the CQ engine: %d answers (%s)\n"
    (List.length (Treequery.Engine.solutions q tree))
    (Treequery.Engine.strategy_name (Treequery.Engine.plan q))
