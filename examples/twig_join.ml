(* Holistic twig joins on a bibliography-like collection (Section 6 of the
   paper: the stack-based twig algorithms are an optimised special case of
   arc-consistency-based processing).

   The pattern  book[/author][//affiliation]  is matched four ways:
   PathStack/TwigStack, Yannakakis over the join tree, the Figure 6
   enumeration from the arc-consistent pre-valuation, and naive
   backtracking — all must agree; the interesting part is how they get
   there.

   Run with:  dune exec examples/twig_join.exe *)

open Treekit
module TW = Actree.Twigjoin

let bibliography scale =
  (* a synthetic DBLP-flavoured collection *)
  let rng = Random.State.make [| scale |] in
  let leaf l = Tree.Node (l, []) in
  let author () =
    Tree.Node
      ( "author",
        if Random.State.bool rng then
          [ leaf "name"; Tree.Node ("affiliation", [ leaf "city" ]) ]
        else [ leaf "name" ] )
  in
  let book i =
    Tree.Node
      ( "book",
        [ leaf "title"; leaf "year" ]
        @ List.init (1 + (i mod 3)) (fun _ -> author ())
        @ (if i mod 4 = 0 then [ Tree.Node ("publisher", [ leaf "city" ]) ] else []) )
  in
  let article i =
    Tree.Node ("article", [ leaf "title"; author (); leaf "journal"; leaf ("y" ^ string_of_int i) ])
  in
  Tree.of_builder
    (Tree.Node
       ( "dblp",
         List.concat
           (List.init scale (fun i -> [ book i; article i ])) ))

let () =
  let doc = bibliography 200 in
  Format.printf "collection: %d nodes@." (Tree.size doc);

  (* the twig *)
  let twig =
    {
      TW.label = Some "book";
      children =
        [
          (TW.Child_edge, { TW.label = Some "author"; children = [] });
          (TW.Descendant_edge, { TW.label = Some "affiliation"; children = [] });
        ];
    }
  in
  let q = TW.to_query twig in
  Format.printf "twig as a conjunctive query: %s@.@." (Cqtree.Query.to_string q);

  let time f =
    let t0 = Sys.time () in
    let r = f () in
    ((Sys.time () -. t0) *. 1000.0, r)
  in
  let t_twig, via_twig = time (fun () -> TW.solutions doc twig) in
  let t_yann, via_yann = time (fun () -> Cqtree.Yannakakis.solutions q doc) in
  let t_fig6, via_fig6 =
    time (fun () -> Option.get (Actree.Enumerate.solutions q doc))
  in
  let t_naive, via_naive = time (fun () -> Cqtree.Naive.solutions q doc) in
  Format.printf "%-28s %8s %10s@." "algorithm" "ms" "matches";
  Format.printf "%-28s %8.2f %10d@." "TwigStack (stack-based)" t_twig (List.length via_twig);
  Format.printf "%-28s %8.2f %10d@." "Yannakakis (semijoins)" t_yann (List.length via_yann);
  Format.printf "%-28s %8.2f %10d@." "Figure 6 (AC enumeration)" t_fig6 (List.length via_fig6);
  Format.printf "%-28s %8.2f %10d@." "naive backtracking" t_naive (List.length via_naive);
  Format.printf "all agree: %b@.@."
    (via_twig = via_yann && via_yann = via_fig6 && via_fig6 = via_naive);

  (* what the holistic processing actually computes first: the maximal
     arc-consistent pre-valuation is a COMPACT representation of all
     matches (Prop. 6.9) — domain sizes vs number of full matches *)
  (match Actree.Arc_consistency.direct (Cqtree.Query.normalize_forward q) doc with
  | Some pv ->
    Format.printf "arc-consistent pre-valuation (compact answer representation):@.";
    List.iter
      (fun (x, s) -> Format.printf "  Theta(%s): %d nodes@." x (Nodeset.cardinal s))
      pv;
    Format.printf "full matches enumerated from it: %d@." (List.length via_fig6)
  | None -> Format.printf "query unsatisfiable@.");

  (* and a root-to-leaf path query through PathStack proper *)
  let specs =
    [ (Some "book", TW.Descendant_edge); (Some "author", TW.Child_edge);
      (Some "affiliation", TW.Descendant_edge) ]
  in
  let t_ps, ps = time (fun () -> TW.path_stack doc specs) in
  Format.printf "@.PathStack //book/author//affiliation: %d matches in %.2fms@."
    (List.length ps) t_ps
