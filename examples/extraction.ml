(* Web information extraction with monadic datalog — the application that
   motivated the monadic-datalog results the survey builds on (Gottlob &
   Koch: monadic datalog captures the expressive power of web wrappers).

   We extract "product offers" from an HTML-ish page: a wrapper marks every
   table row that sits inside the results table AND has a price cell,
   skipping advertisement rows.  Monadic datalog expresses this with unary
   marking predicates over τ⁺ — and runs in time O(|P| * |Dom|)
   (Theorem 3.2).

   Run with:  dune exec examples/extraction.exe *)

open Treekit

let page =
  Xml.parse
    {|<html>
        <body>
          <div>
            <table>
              <tr><td/><td/></tr>
            </table>
          </div>
          <div>
            <results>
              <table>
                <tr><name/><price/></tr>
                <tr><ad/></tr>
                <tr><name/><price/><discount/></tr>
                <tr><name/></tr>
              </table>
            </results>
          </div>
          <footer>
            <table><tr><price/></tr></table>
          </footer>
        </body>
      </html>|}

(* The wrapper program.  Note the idioms:
   - "inside the results section" is the ancestor-marking recursion of the
     paper's Example 3.1;
   - "has a price cell" walks the children with FirstChild/NextSibling;
   - negation-free: the ad filter is expressed positively. *)
let wrapper =
  Mdatalog.Parser.parse
    {|
      % mark everything below a <results> element
      below_results(X) :- lab(Y, "results"), child(Y, X).
      below_results(X) :- below_results(Y), child(Y, X).

      % rows with a <price> child
      has_price(R) :- child(R, C), lab(C, "price").

      % rows with a <name> child (ads have neither name nor price)
      has_name(R) :- child(R, C), lab(C, "name").

      offer(R) :- lab(R, "tr"), below_results(R), has_price(R), has_name(R).
      ?- offer.
    |}

let () =
  Format.printf "page (%d nodes):@.%a@." (Tree.size page) Xml.pp page;
  let offers = Mdatalog.Eval.run wrapper page in
  Format.printf "extracted offer rows (pre-order ids): %a@." Nodeset.pp offers;
  Nodeset.iter
    (fun r ->
      let cells = List.map (Tree.label page) (Tree.children page r) in
      Format.printf "  row %d: cells = %s@." r (String.concat ", " cells))
    offers;

  (* the engine side: the program grounds to a propositional Horn formula
     solved by Minoux's algorithm; grounding size is linear in the page *)
  Format.printf "@.ground Horn program size: %d atoms (page has %d nodes)@."
    (Mdatalog.Eval.ground_size wrapper page)
    (Tree.size page);

  (* the same extraction as Core XPath, for comparison *)
  let xpath = Xpath.Parser.parse "//results//tr[child::price and child::name]" in
  let via_xpath = Xpath.Eval.query page xpath in
  Format.printf "same wrapper as Core XPath agrees: %b@."
    (Nodeset.equal offers via_xpath);

  (* and in TMNF — the normal form every monadic datalog program over trees
     compiles to (Definition 3.4) *)
  let tmnf = Mdatalog.Tmnf.of_program wrapper in
  Format.printf "TMNF translation: %d rules (all in normal form: %b), same answers: %b@."
    (List.length tmnf.rules) (Mdatalog.Tmnf.is_tmnf tmnf)
    (Nodeset.equal offers (Mdatalog.Eval.run tmnf page))
