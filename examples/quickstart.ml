(* Quickstart: build a document, run the same query in the three languages,
   and ask the engine to explain its plan.

   Run with:  dune exec examples/quickstart.exe *)

open Treekit
module Engine = Treequery.Engine

let () =
  (* 1. A document.  Trees can be built from XML text, from a recursive
     builder value, or with the random generators. *)
  let doc =
    Xml.parse
      {|<library>
          <shelf>
            <book><title/><author/></book>
            <book><title/></book>
          </shelf>
          <shelf>
            <journal><title/></journal>
            <book><title/><author/><author/></book>
          </shelf>
        </library>|}
  in
  Format.printf "document (%d nodes): %a@.@." (Tree.size doc) Tree.pp doc;

  (* 2. Core XPath: books having an author, anywhere in the document. *)
  let xq = Engine.parse_xpath "//book[author]" in
  Format.printf "XPath    //book[author]          -> %a@." Nodeset.pp
    (Engine.eval xq doc);

  (* 3. The same query as a conjunctive query (datalog-rule notation). *)
  let cq = Engine.parse_cq {| q(B) :- lab(B, "book"), child(B, A), lab(A, "author"). |} in
  Format.printf "CQ       q(B) :- book, author    -> %a@." Nodeset.pp
    (Engine.eval cq doc);

  (* 4. And as a monadic datalog program over τ⁺. *)
  let dq =
    Engine.parse_datalog
      {| haschild_author(B) :- child(B, A), lab(A, "author").
         answer(B) :- lab(B, "book"), haschild_author(B).
         ?- answer. |}
  in
  Format.printf "datalog  answer(B)               -> %a@.@." Nodeset.pp
    (Engine.eval dq doc);

  (* 5. Every engine reports how it will evaluate a query and which
     complexity bound from the paper applies. *)
  print_endline (Engine.explain cq);

  (* a cyclic query over the descendant axis: Yannakakis does not apply,
     but the X-property does (Section 6 of the paper) *)
  let cyclic =
    Engine.parse_cq
      {| q(X) :- descendant(X, Y), descendant(Y, Z), descendant(X, Z), lab(Z, "title"). |}
  in
  print_endline (Engine.explain cyclic);
  Format.printf "cyclic query answer -> %a@." Nodeset.pp (Engine.eval cyclic doc);

  (* 6. Node labels of an answer, for display *)
  let names =
    List.map (Tree.label doc) (Nodeset.elements (Engine.eval xq doc))
  in
  Format.printf "labels of the XPath answer: %s@." (String.concat ", " names)
