(* Cross-cutting edge cases: degenerate shapes, adversarial labels, deep
   documents, and robustness of every engine on the smallest inputs. *)
open Treekit
open Helpers
module Q = Cqtree.Query

let single = Tree.of_builder (Tree.Node ("only", []))

let test_single_node_everywhere () =
  (* every engine must handle the one-node tree *)
  check_nodeset "xpath self" (Nodeset.of_list 1 [ 0 ])
    (Xpath.Eval.query single (Xpath.Parser.parse "self::only"));
  check_nodeset "xpath child" (Nodeset.create 1)
    (Xpath.Eval.query single (Xpath.Parser.parse "child::only"));
  let q = Q.of_string {| q(X) :- lab(X, "only"). |} in
  Alcotest.(check bool) "yannakakis" true
    (Nodeset.mem (Cqtree.Yannakakis.unary q single) 0);
  Alcotest.(check bool) "rewrite" true (Cqtree.Rewrite.boolean q single);
  Alcotest.(check bool) "xeval" true (Actree.Xeval.boolean { q with head = [] } single = Some true);
  Alcotest.(check bool) "fig6" true
    (Actree.Enumerate.solutions q single = Some [ [| 0 |] ]);
  Alcotest.(check bool) "datalog" true
    (Nodeset.mem
       (Mdatalog.Eval.run (Mdatalog.Parser.parse {| p(X) :- root(X). ?- p. |}) single)
       0);
  Alcotest.(check bool) "streaming" true
    (Streamq.Path_matcher.matches single (Streamq.Path_pattern.of_string "//only")
    = false);
  (* the root is not its own descendant: //only finds nothing *)
  Alcotest.(check bool) "automata" true
    (Automata.Automaton.run (Automata.Automaton.exists_label "only") single)

let test_deep_documents () =
  (* recursion-depth safety on a 100k-deep path across the engines *)
  let deep = Generator.path ~label:"a" ~n:100_000 () in
  Alcotest.(check int) "events" 200_000 (List.length (Event.to_list deep) * 1);
  let p = Xpath.Parser.parse "//a[not(child::*)]" in
  Alcotest.(check int) "one leaf" 1 (Nodeset.cardinal (Xpath.Eval.query deep p));
  let stats =
    Streamq.Path_matcher.run deep (Streamq.Path_pattern.of_string "//a/a")
      ~on_match:(fun _ -> ())
  in
  Alcotest.(check int) "peak = depth" 100_000 stats.peak_depth;
  let auto = Automata.Automaton.count_label_mod "a" ~modulus:7 ~residue:(100_000 mod 7) in
  Alcotest.(check bool) "automaton on deep tree" true
    (Automata.Automaton.run_events auto (Event.to_seq deep));
  (* structural join over the full path: n-1 child pairs, output-sensitive *)
  let pairs =
    Relkit.Structural_join.stack_join deep ~ancestors:[ 0 ] ~descendants:[ 99_999 ]
  in
  Alcotest.(check (list (pair int int))) "deep ancestor pair" [ (0, 99_999) ] pairs

let test_adversarial_labels () =
  (* labels that look like syntax must survive interning, XML and engines
     (the XML writer only guarantees name-like labels, so test the rest) *)
  let weird = [ "with space"; "quote\"inside"; "<angle>"; ""; "ünïcode" ] in
  let t =
    Tree.of_builder (Tree.Node ("root", List.map (fun l -> Tree.Node (l, [])) weird))
  in
  List.iteri
    (fun i l -> Alcotest.(check string) (Printf.sprintf "label %d" i) l (Tree.label t (i + 1)))
    weird;
  Alcotest.(check int) "label set" 1 (Nodeset.cardinal (Tree.label_set t "<angle>"));
  (* CQ with an exotic label via the AST (the parser only accepts quoted
     strings without embedded quotes) *)
  let q = { Q.head = [ "X" ]; atoms = [ Q.U (Q.Lab "with space", "X") ] } in
  Alcotest.(check int) "query answers" 1
    (Nodeset.cardinal (Cqtree.Yannakakis.unary q t))

let test_all_roots_and_leaves () =
  let t = fig2_tree () in
  (* Boolean query satisfiable only at the root *)
  let q = Q.of_string {| q :- root(X), lab(X, "a"). |} in
  Alcotest.(check bool) "root query" true (Cqtree.Yannakakis.boolean q t);
  let q2 = Q.of_string {| q :- root(X), lab(X, "b"). |} in
  Alcotest.(check bool) "root mismatch" false (Cqtree.Yannakakis.boolean q2 t);
  (* leaves through four different engines *)
  let via_xpath = Xpath.Eval.query t (Xpath.Parser.parse "//*[not(child::*)]") in
  let via_cq = Cqtree.Yannakakis.unary (Q.of_string {| q(X) :- leaf(X). |}) t in
  let via_fo =
    Folang.Eval.unary t
      (Folang.Formula.Not
         (Folang.Formula.Exists ("y", Folang.Formula.Axis (Axis.Child, "x", "y"))))
  in
  check_nodeset "xpath = cq" via_cq via_xpath;
  check_nodeset "fo = cq" via_cq via_fo

let test_star_documents () =
  (* a 10k-star: wide, flat; sibling axes get long chains *)
  let star = Generator.star ~n:10_000 () in
  let q =
    Q.of_string {| q(X) :- following-sibling(X, Y), lastsibling(Y), firstsibling(X). |}
  in
  (* only the first child pairs with the last sibling *)
  let answers = Cqtree.Yannakakis.unary q star in
  Alcotest.(check int) "first child only" 1 (Nodeset.cardinal answers);
  Alcotest.(check bool) "node 1" true (Nodeset.mem answers 1);
  let p = Streamq.Path_pattern.of_string "/*/*" in
  Alcotest.(check int) "no grandchildren" 0
    (Nodeset.cardinal (Streamq.Path_matcher.select star p))

let test_empty_answers_compose () =
  let t = fig2_tree () in
  (* rewriting an unsatisfiable query produces the empty union or dead
     branches; all evaluation paths must return empty, not crash *)
  let q =
    Q.of_string
      {| q(X) :- child(X, Y), child(Y, X). |}
  in
  Alcotest.(check bool) "naive" true (Cqtree.Naive.solutions q t = []);
  Alcotest.(check bool) "rewrite" true (Cqtree.Rewrite.solutions q t = []);
  check_nodeset "rewrite unary" (Nodeset.create 7) (Cqtree.Rewrite.unary q t);
  let u = Cqtree.Positive.make [ q; q ] in
  Alcotest.(check bool) "positive union" true (Cqtree.Positive.solutions u t = [])

let test_engine_on_all_languages_single_node () =
  let module E = Treequery.Engine in
  Alcotest.(check bool) "xpath" true
    (E.eval_boolean (E.parse_xpath "self::only") single);
  Alcotest.(check bool) "cq" true
    (E.eval_boolean (E.parse_cq {| q :- lab(X, "only"). |}) single);
  Alcotest.(check bool) "datalog" true
    (E.eval_boolean (E.parse_datalog {| p(X) :- leaf(X). ?- p. |}) single)

let test_big_alphabet () =
  (* a tree where every node has a distinct label: interning and label
     indexes must stay correct *)
  let n = 2_000 in
  let t =
    Tree.of_parent_vector
      ~parents:(Array.init n (fun v -> v - 1))
      ~labels:(Array.init n (fun v -> "L" ^ string_of_int v))
      ()
  in
  Alcotest.(check int) "distinct labels" n (Label.count (Tree.label_table t));
  Alcotest.(check (list int)) "unique member" [ 1234 ] (Tree.nodes_with_label t "L1234");
  let q = Q.of_string {| q(X) :- lab(X, "L777"), ancestor(X, Y), lab(Y, "L0"). |} in
  Alcotest.(check int) "one answer" 1 (List.length (Cqtree.Yannakakis.solutions q t))

let suite =
  [
    Alcotest.test_case "single-node tree, every engine" `Quick test_single_node_everywhere;
    Alcotest.test_case "100k-deep documents" `Quick test_deep_documents;
    Alcotest.test_case "adversarial labels" `Quick test_adversarial_labels;
    Alcotest.test_case "roots and leaves across engines" `Quick test_all_roots_and_leaves;
    Alcotest.test_case "10k star" `Quick test_star_documents;
    Alcotest.test_case "empty answers compose" `Quick test_empty_answers_compose;
    Alcotest.test_case "engine on a single node" `Quick test_engine_on_all_languages_single_node;
    Alcotest.test_case "2k distinct labels" `Quick test_big_alphabet;
  ]
